package hadfl

import "testing"

func fastOpts(seed int64) Options {
	return Options{Powers: []float64{4, 2, 2, 1}, TargetEpochs: 8, Seed: seed}
}

func TestRunDefaults(t *testing.T) {
	res, err := Run(fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != SchemeHADFL {
		t.Fatalf("scheme %q", res.Scheme)
	}
	if res.Accuracy < 0.5 {
		t.Fatalf("accuracy %.2f", res.Accuracy)
	}
	if res.Time <= 0 || res.Rounds == 0 || res.DeviceBytes == 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if res.ServerBytes != 0 {
		t.Fatal("HADFL must not use a central server")
	}
}

func TestRunSchemeValidation(t *testing.T) {
	if _, err := RunScheme("nope", fastOpts(1)); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	opts := fastOpts(1)
	opts.Model = "transformer"
	if _, err := Run(opts); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestCompareAllSchemes(t *testing.T) {
	results, err := Compare(fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Schemes()) {
		t.Fatalf("%d results for %d schemes", len(results), len(Schemes()))
	}
	if _, ok := results[SchemeAsyncFL]; !ok {
		t.Fatal("asyncfl missing from Compare results")
	}
	for scheme, r := range results {
		if r.Accuracy < 0.4 {
			t.Fatalf("%s accuracy %.2f", scheme, r.Accuracy)
		}
	}
}

func TestSpeedupBetweenResults(t *testing.T) {
	results, err := Compare(fastOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	h := results[SchemeHADFL]
	d := results[SchemeDistributed]
	target := minAcc(h.Accuracy, d.Accuracy) * 0.9
	sp, ok := Speedup(h, d, target)
	if !ok {
		t.Fatalf("no common accuracy target %.2f", target)
	}
	if sp <= 0 {
		t.Fatalf("speedup %v", sp)
	}
}

func minAcc(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func TestRunWithFailure(t *testing.T) {
	opts := fastOpts(4)
	opts.FailAt = map[int]float64{3: 50}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.4 {
		t.Fatalf("accuracy with failure %.2f", res.Accuracy)
	}
}

func TestRunNonIID(t *testing.T) {
	if testing.Short() {
		t.Skip("non-IID run in -short mode")
	}
	opts := fastOpts(5)
	opts.NonIIDAlpha = 0.3
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy <= 0.2 {
		t.Fatalf("non-IID accuracy %.2f", res.Accuracy)
	}
}

func TestVGGModelOption(t *testing.T) {
	opts := fastOpts(6)
	opts.Model = "vgg"
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.4 {
		t.Fatalf("vgg accuracy %.2f", res.Accuracy)
	}
}
