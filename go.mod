module hadfl

go 1.22
