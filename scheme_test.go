package hadfl

import (
	"context"
	"errors"
	"testing"
	"time"

	"hadfl/internal/core"
	"hadfl/internal/metrics"
)

func TestRegisterSchemeRejectsDuplicatesAndEmptyNames(t *testing.T) {
	if err := RegisterScheme(NewScheme("", nil)); err == nil {
		t.Fatal("empty scheme name registered")
	}
	for _, builtin := range Schemes() {
		if err := RegisterScheme(NewScheme(builtin, nil)); err == nil {
			t.Fatalf("duplicate registration of %q accepted", builtin)
		}
	}
}

func TestRegisteredSchemeIsListedAndRunnable(t *testing.T) {
	const name = "test-constant"
	// A degenerate scheme: no training, returns the initial model.
	MustRegisterScheme(NewScheme(name, func(_ context.Context, c *core.Cluster, _ core.RunConfig) (*core.Result, error) {
		return newConstantResult(c), nil
	}))
	defer unregisterScheme(name)

	if !ValidScheme(name) {
		t.Fatalf("ValidScheme(%q) = false after registration", name)
	}
	found := false
	for _, s := range Schemes() {
		if s == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("Schemes() = %v, missing %q", Schemes(), name)
	}
	// Fingerprinting and running both dispatch through the registry.
	if _, err := Fingerprint(name, fastOpts(1)); err != nil {
		t.Fatalf("Fingerprint for registered scheme: %v", err)
	}
	res, err := RunContext(context.Background(), name, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != name || len(res.FinalParams) == 0 {
		t.Fatalf("degenerate result %+v", res)
	}

	unregisterScheme(name)
	if ValidScheme(name) {
		t.Fatalf("ValidScheme(%q) = true after unregister", name)
	}
}

// TestRunContextCancelMidRun is the cancellation acceptance check: for
// every registered scheme, canceling the context after the first
// progress callback stops the run within one device step/round and
// surfaces ctx.Err().
func TestRunContextCancelMidRun(t *testing.T) {
	for _, scheme := range Schemes() {
		t.Run(scheme, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			opts := fastOpts(9)
			// A budget far beyond the test's patience: only prompt
			// cancellation lets the run return in time.
			opts.TargetEpochs = 1e6
			opts.OnRound = func(RoundUpdate) { cancel() }

			done := make(chan error, 1)
			go func() {
				_, err := RunContext(ctx, scheme, opts)
				done <- err
			}()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatalf("%s did not stop after cancellation", scheme)
			}
		})
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, scheme := range Schemes() {
		if _, err := RunContext(ctx, scheme, fastOpts(1)); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", scheme, err)
		}
	}
}

func TestRunContextDeadline(t *testing.T) {
	// A 50ms deadline expires during the mutual-negotiation warmup, so
	// this also covers the pre-round cancellation path (WarmupCtx).
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	opts := fastOpts(10)
	opts.TargetEpochs = 1e6
	start := time.Now()
	_, err := RunContext(ctx, SchemeHADFL, opts)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline honored only after %v", elapsed)
	}
}

func TestCompareContextPropagatesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := fastOpts(11)
	opts.TargetEpochs = 1e6
	opts.OnRound = func(RoundUpdate) { cancel() }
	done := make(chan error, 1)
	go func() {
		_, err := CompareContext(ctx, opts)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("CompareContext did not stop after cancellation")
	}
}

// newConstantResult fabricates a minimal valid result from the
// cluster's initial parameters (test-scheme helper).
func newConstantResult(c *core.Cluster) *core.Result {
	loss, acc := c.Evaluate(c.InitParams)
	series := &metrics.Series{Name: "test-constant"}
	series.Add(metrics.Point{Epoch: 0, Time: 1, Loss: loss, Accuracy: acc})
	return &core.Result{
		Series:      series,
		Comm:        core.NewCommStats(),
		Rounds:      1,
		FinalParams: append([]float64(nil), c.InitParams...),
	}
}
