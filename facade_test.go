package hadfl

import (
	"math"
	"path/filepath"
	"testing"

	"hadfl/internal/coordinator"
)

func TestEvaluateParamsMatchesRunResult(t *testing.T) {
	opts := fastOpts(21)
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalParams) == 0 {
		t.Fatal("no final params")
	}
	_, acc, err := EvaluateParams(opts, res.FinalParams)
	if err != nil {
		t.Fatal(err)
	}
	// The final round's recorded accuracy equals re-evaluating the final
	// parameters on the same test split.
	last := res.Series.Points[len(res.Series.Points)-1]
	if math.Abs(acc-last.Accuracy) > 1e-9 {
		t.Fatalf("EvaluateParams %.4f vs recorded %.4f", acc, last.Accuracy)
	}
}

func TestEvaluateParamsRejectsWrongLength(t *testing.T) {
	opts := fastOpts(22)
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("truncated parameter vector did not panic on SetParameters")
		}
	}()
	EvaluateParams(opts, res.FinalParams[:len(res.FinalParams)-1])
}

func TestSnapshotPersistenceRoundTrip(t *testing.T) {
	opts := fastOpts(23)
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	store := coordinator.NewModelStore(1)
	store.Save(res.Rounds, res.FinalParams)
	if err := store.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	round, params, err := coordinator.ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if round != res.Rounds || len(params) != len(res.FinalParams) {
		t.Fatalf("snapshot round %d len %d", round, len(params))
	}
	_, acc, err := EvaluateParams(opts, params)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.3 {
		t.Fatalf("persisted model accuracy %.2f", acc)
	}
}

func TestOnRoundCallbackForBaselineSchemes(t *testing.T) {
	for _, scheme := range []string{SchemeFedAvg, SchemeDistributed, SchemeAsyncFL} {
		opts := fastOpts(25)
		calls := 0
		opts.OnRound = func(u RoundUpdate) {
			calls++
			if u.Round <= 0 || u.Time <= 0 {
				t.Errorf("%s: bad update %+v", scheme, u)
			}
			if u.Scheme != scheme {
				t.Errorf("update attributed to %q, want %q", u.Scheme, scheme)
			}
			if len(u.Selected) != 0 || u.Bypassed != 0 {
				t.Errorf("%s: baseline update carries ring fields: %+v", scheme, u)
			}
		}
		res, err := RunScheme(scheme, opts)
		if err != nil {
			t.Fatal(err)
		}
		if calls == 0 {
			t.Fatalf("%s: OnRound never fired", scheme)
		}
		if scheme == SchemeFedAvg && calls != res.Rounds {
			t.Fatalf("fedavg: %d callbacks for %d rounds", calls, res.Rounds)
		}
	}
}

func TestOnRoundCallbackThroughFacade(t *testing.T) {
	opts := fastOpts(24)
	calls := 0
	opts.OnRound = func(u RoundUpdate) {
		calls++
		if u.Time <= 0 || len(u.Selected) == 0 {
			t.Errorf("bad update %+v", u)
		}
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Rounds {
		t.Fatalf("%d callbacks for %d rounds", calls, res.Rounds)
	}
}
