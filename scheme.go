package hadfl

// The scheme registry: training schemes are pluggable data, not
// compiled-in switch arms. Each scheme is a named strategy for driving
// a core.Cluster to a core.Result; the built-ins (HADFL, its
// hierarchical grouped variant, the paper's two synchronous baselines,
// and the async-FL related-work scheme) register themselves at init,
// and everything scheme-shaped in the public API — RunScheme, Schemes,
// ValidScheme, Fingerprint, Compare, the serve layer's listing, the
// CLIs — derives from the registry, so a newly registered scheme is
// immediately runnable, cacheable and listable everywhere.

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"hadfl/internal/baselines"
	"hadfl/internal/core"
)

// Scheme names registered by this package.
const (
	SchemeHADFL        = "hadfl"
	SchemeFedAvg       = "decentralized-fedavg"
	SchemeDistributed  = "distributed"
	SchemeAsyncFL      = "asyncfl"
	SchemeHADFLGrouped = "hadfl-grouped"
)

// Scheme is one pluggable training scheme. Run must honor ctx
// (returning ctx.Err() promptly — within about one device step — once
// it is canceled), must be deterministic given cfg.Seed, and must treat
// cfg.Parallelism and cfg.OnRound as pure throughput/observability
// knobs that never change the result, since Canonical/Fingerprint
// exclude them when content-addressing results.
type Scheme interface {
	// Name is the registry key, e.g. "hadfl".
	Name() string
	// Run trains on the cluster under the shared run configuration.
	Run(ctx context.Context, c *core.Cluster, cfg core.RunConfig) (*core.Result, error)
}

// NewScheme adapts a function to the Scheme interface.
func NewScheme(name string, run func(ctx context.Context, c *core.Cluster, cfg core.RunConfig) (*core.Result, error)) Scheme {
	return schemeFunc{name: name, run: run}
}

type schemeFunc struct {
	name string
	run  func(ctx context.Context, c *core.Cluster, cfg core.RunConfig) (*core.Result, error)
}

func (s schemeFunc) Name() string { return s.name }
func (s schemeFunc) Run(ctx context.Context, c *core.Cluster, cfg core.RunConfig) (*core.Result, error) {
	return s.run(ctx, c, cfg)
}

// registry is the process-level scheme table. Registration order is
// preserved so Schemes() is stable: built-ins first (in the canonical
// paper order), then custom schemes as they registered.
var registry = struct {
	sync.RWMutex
	byName map[string]Scheme
	order  []string
}{byName: make(map[string]Scheme)}

// RegisterScheme adds a scheme to the process-level registry, making it
// runnable through RunContext/RunScheme, listable through Schemes, and
// content-addressable through Fingerprint. It fails on an empty name or
// a duplicate registration (schemes are identities, not overridable
// handlers). Call it from an init function or before runs start.
func RegisterScheme(s Scheme) error {
	name := s.Name()
	if name == "" {
		return fmt.Errorf("hadfl: RegisterScheme with empty name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[name]; dup {
		return fmt.Errorf("hadfl: scheme %q already registered", name)
	}
	registry.byName[name] = s
	registry.order = append(registry.order, name)
	return nil
}

// MustRegisterScheme is RegisterScheme, panicking on error; intended
// for init-time registration of a package's schemes.
func MustRegisterScheme(s Scheme) {
	if err := RegisterScheme(s); err != nil {
		panic(err)
	}
}

// unregisterScheme removes a scheme (tests only — production schemes
// are registered for the life of the process).
func unregisterScheme(name string) {
	registry.Lock()
	defer registry.Unlock()
	delete(registry.byName, name)
	for i, n := range registry.order {
		if n == name {
			registry.order = append(registry.order[:i], registry.order[i+1:]...)
			break
		}
	}
}

// lookupScheme resolves a registered scheme by name.
func lookupScheme(name string) (Scheme, bool) {
	registry.RLock()
	defer registry.RUnlock()
	s, ok := registry.byName[name]
	return s, ok
}

// Schemes returns the registered scheme names in registration order:
// the built-ins (hadfl, decentralized-fedavg, distributed, asyncfl,
// hadfl-grouped) followed by any custom registrations.
func Schemes() []string {
	registry.RLock()
	defer registry.RUnlock()
	return append([]string(nil), registry.order...)
}

// ValidScheme reports whether name is a registered scheme.
func ValidScheme(name string) bool {
	_, ok := lookupScheme(name)
	return ok
}

// unknownSchemeError names the known schemes so a typo'd request is
// self-correcting at the CLI and HTTP layers.
func unknownSchemeError(name string) error {
	known := Schemes()
	sort.Strings(known)
	return fmt.Errorf("hadfl: unknown scheme %q (registered: %v)", name, known)
}

// --- Built-in schemes. Each overlays the façade's shared RunConfig
// onto its Default*Config via core.RunConfig.Apply, so unset fields
// keep the paper-profile defaults.

func init() {
	MustRegisterScheme(NewScheme(SchemeHADFL, runSchemeHADFL))
	MustRegisterScheme(NewScheme(SchemeFedAvg, runSchemeFedAvg))
	MustRegisterScheme(NewScheme(SchemeDistributed, runSchemeDistributed))
	MustRegisterScheme(NewScheme(SchemeAsyncFL, runSchemeAsyncFL))
	MustRegisterScheme(NewScheme(SchemeHADFLGrouped, runSchemeHADFLGrouped))
}

func runSchemeHADFL(ctx context.Context, c *core.Cluster, rc core.RunConfig) (*core.Result, error) {
	cfg := core.DefaultConfig()
	cfg.Apply(rc)
	return core.RunHADFL(ctx, c, cfg)
}

func runSchemeFedAvg(ctx context.Context, c *core.Cluster, rc core.RunConfig) (*core.Result, error) {
	cfg := baselines.DefaultFedAvgConfig()
	cfg.Apply(rc)
	return baselines.RunFedAvg(ctx, c, cfg)
}

func runSchemeDistributed(ctx context.Context, c *core.Cluster, rc core.RunConfig) (*core.Result, error) {
	cfg := baselines.DefaultDistributedConfig()
	cfg.Apply(rc)
	return baselines.RunDistributed(ctx, c, cfg)
}

func runSchemeAsyncFL(ctx context.Context, c *core.Cluster, rc core.RunConfig) (*core.Result, error) {
	cfg := baselines.DefaultAsyncFLConfig()
	cfg.Apply(rc)
	return baselines.RunAsyncFL(ctx, c, cfg)
}

func runSchemeHADFLGrouped(ctx context.Context, c *core.Cluster, rc core.RunConfig) (*core.Result, error) {
	cfg := core.DefaultGroupedConfig()
	cfg.Base.Apply(rc)
	return core.RunHADFLGrouped(ctx, c, cfg)
}
