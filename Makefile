GO ?= go

.PHONY: check ci cover fmt fmt-check lint vet build test test-short test-race test-race-short alloc-guard fuzz-short e2e-dispatch loadgen-smoke bench bench-json bench-eval bench-dispatch bench-wire bench-serve serve

check: fmt-check vet lint build test-short

# ci is the full pre-merge gate: formatting, vet, the project-invariant
# lint suite (before the test stages, so invariant breaks fail fast),
# the short suite, the short suite under the race detector, the
# allocation guards (the zero-alloc train/eval steps plus the
# whole-run allocation budget), the wire-codec fuzz smoke, the
# dispatch e2e suite under -race, and the coverage report with its
# floor.
ci: fmt-check vet lint test-short test-race-short alloc-guard fuzz-short e2e-dispatch loadgen-smoke cover

# lint runs hadfl-lint, the repo's own analyzer suite (internal/lint):
# detmap, walltime, poolleaf, metriccatalog, ctxbg — the determinism,
# concurrency, and telemetry contracts as machine-checked gates. See
# DESIGN.md "Static analysis"; suppress a finding at the site with
# `//lint:ignore <analyzer> <reason>`.
lint:
	$(GO) run ./cmd/hadfl-lint ./...

# COVER_FLOOR is the minimum total statement coverage (percent) the
# short suite must keep; make ci fails below it instead of letting
# coverage drift silently. Current total is ~77.7%.
COVER_FLOOR ?= 75.0

# cover runs the short suite with coverage, prints the total, and
# enforces COVER_FLOOR; coverage.out is left behind for
# `go tool cover -html=coverage.out`.
cover:
	$(GO) test -short -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | awk '{print $$NF}' | tr -d '%'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { if (t+0 < f+0) { print "coverage " t "% is below the " f "% floor"; exit 1 } }'

# fuzz-short runs each p2p wire-codec fuzz target for a few seconds —
# not a soak, a smoke: decoder panics and round-trip breaks on easy
# inputs fail the gate. (go's -fuzz takes one target per invocation.)
FUZZTIME ?= 5s
fuzz-short:
	$(GO) test ./internal/p2p -run '^$$' -fuzz 'FuzzUnmarshal$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/p2p -run '^$$' -fuzz 'FuzzDispatchBody$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/p2p -run '^$$' -fuzz 'FuzzUnpackBytes$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/p2p -run '^$$' -fuzz 'FuzzChunkReassembly$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/p2p -run '^$$' -fuzz 'FuzzCodecDecode$$' -fuzztime $(FUZZTIME)

# e2e-dispatch is the remote-execution acceptance gate: the simnet
# end-to-end suite (byte-identical dispatched results, cancel and
# worker-crash fault injection, heartbeat loss, local fallback) under
# the race detector. -short trims the saturation and full-registry
# sweeps; `go test ./internal/serve/dispatch` runs everything.
e2e-dispatch:
	$(GO) test -race -short ./internal/serve/dispatch

# alloc-guard pins the hot-path allocation contracts explicitly (they
# also run inside test-short; this target is the named gate so a perf
# regression fails loudly on its own line).
alloc-guard:
	$(GO) test -run 'ZeroAlloc' ./internal/nn ./internal/eval ./internal/serve
	$(GO) test -run 'TestRunAllocationBudget' .

# loadgen-smoke is the serving-layer acceptance gate inside make ci: a
# ~2s in-process hadfl-loadgen run (self-hosted synthetic server) that
# fails on any harness-level error or missing request class. The full
# snapshot is `make bench-serve`.
loadgen-smoke:
	$(GO) run ./cmd/hadfl-loadgen -duration 2s -concurrency 16 -corpus 8 \
		-run-cost 500us -curve-points 8 -fail-on-errors -out /dev/null

fmt: fmt-check

# -s also demands the simplified forms (x[a:len(x)] → x[a:], redundant
# composite-literal types, ...), so simplifiable code fails the gate.
fmt-check:
	@out="$$(gofmt -s -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -s needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test-short:
	$(GO) test -short ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# test-race runs the fixed-seed parallel-determinism contract (and the
# kernel bit-determinism tests) under the race detector.
test-race:
	$(GO) test -race -run 'TestParallelDeterminism' .
	$(GO) test -race ./internal/tensor ./internal/core ./internal/baselines

# test-race-short is the race-detector slice of make ci: the
# determinism contract plus the concurrency-heavy packages, with slow
# tests skipped.
test-race-short:
	$(GO) test -race -short -run 'TestParallelDeterminism|TestRunContext|TestCompareContext' .
	$(GO) test -race -short ./internal/tensor ./internal/core ./internal/baselines ./internal/serve

# bench-json snapshots the compute-core benchmarks (tensor kernels, nn
# training steps, the end-to-end HADFL round) into BENCH_compute.json
# so the perf trajectory is recorded; diff it across PRs.
# Each step is its own recipe line so any bench failure aborts before
# the old snapshot is replaced.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/tensor ./internal/nn > BENCH_compute.txt.tmp
	$(GO) test -run '^$$' -bench 'BenchmarkHADFLRound' -benchtime 3x -benchmem . >> BENCH_compute.txt.tmp
	$(GO) run ./cmd/hadfl-benchjson < BENCH_compute.txt.tmp > BENCH_compute.json.tmp
	rm BENCH_compute.txt.tmp
	mv BENCH_compute.json.tmp BENCH_compute.json
	@echo wrote BENCH_compute.json

# bench-dispatch snapshots the remote-execution overhead (the same
# tiny run through the local registry vs the full simnet dispatch
# round trip) into BENCH_dispatch.json; the gap between the two
# benchmarks is the protocol's per-job cost.
bench-dispatch:
	$(GO) test -run '^$$' -bench 'BenchmarkDispatch' -benchtime 5x -benchmem ./internal/serve/dispatch > BENCH_dispatch.txt.tmp
	$(GO) run ./cmd/hadfl-benchjson -note 'dispatch-overhead benchmark snapshot (local registry vs simnet dispatch of one tiny run); regenerate with `make bench-dispatch`' < BENCH_dispatch.txt.tmp > BENCH_dispatch.json.tmp
	rm BENCH_dispatch.txt.tmp
	mv BENCH_dispatch.json.tmp BENCH_dispatch.json
	@echo wrote BENCH_dispatch.json

# bench-wire snapshots bytes-on-wire per parameter codec for one
# reference job (the tiny benchmark run's trained vector, encoded
# against its initial model) into BENCH_wire.json; the wire-B/raw-B
# metrics per codec row are the compression trajectory.
bench-wire:
	$(GO) test -run '^$$' -bench 'BenchmarkWireCodec' -benchtime 5x -benchmem ./internal/serve/dispatch > BENCH_wire.txt.tmp
	$(GO) run ./cmd/hadfl-benchjson -note 'wire-codec benchmark snapshot (bytes on the dispatch wire per parameter codec for one tiny reference job); regenerate with `make bench-wire`' < BENCH_wire.txt.tmp > BENCH_wire.json.tmp
	rm BENCH_wire.txt.tmp
	mv BENCH_wire.json.tmp BENCH_wire.json
	@echo wrote BENCH_wire.json

# bench-eval snapshots the evaluation-engine trajectory (engine vs the
# legacy double-forward path: evals/sec and allocs per evaluation) into
# BENCH_eval.json; diff it across PRs like BENCH_compute.json.
bench-eval:
	$(GO) test -run '^$$' -bench 'BenchmarkEvaluate' -benchmem ./internal/eval > BENCH_eval.txt.tmp
	$(GO) run ./cmd/hadfl-benchjson -note 'evaluation-engine benchmark snapshot; regenerate with `make bench-eval`' < BENCH_eval.txt.tmp > BENCH_eval.json.tmp
	rm BENCH_eval.txt.tmp
	mv BENCH_eval.json.tmp BENCH_eval.json
	@echo wrote BENCH_eval.json

# bench-serve snapshots the serving layer's traffic-shaped throughput:
# hadfl-loadgen drives an in-process synthetic hadfl-serve with the
# default mixed workload (cache hits, fresh runs, coalescing dups,
# polls, curves, SSE, cancels) and writes per-class latency percentiles
# + throughput into BENCH_serve.json; diff it across PRs like the other
# BENCH files. Point it at a live deployment with
# `go run ./cmd/hadfl-loadgen -addr http://host:8080`.
bench-serve:
	$(GO) run ./cmd/hadfl-loadgen -duration 10s -concurrency 64 \
		-out BENCH_serve.json.tmp
	mv BENCH_serve.json.tmp BENCH_serve.json
	@echo wrote BENCH_serve.json

serve:
	$(GO) run ./cmd/hadfl-serve -addr :8080
