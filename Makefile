GO ?= go

.PHONY: check ci fmt fmt-check vet build test test-short test-race test-race-short bench bench-json serve

check: fmt-check vet build test-short

# ci is the full pre-merge gate: formatting, vet, the short suite, and
# the short suite under the race detector.
ci: fmt-check vet test-short test-race-short

fmt: fmt-check

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test-short:
	$(GO) test -short ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# test-race runs the fixed-seed parallel-determinism contract (and the
# kernel bit-determinism tests) under the race detector.
test-race:
	$(GO) test -race -run 'TestParallelDeterminism' .
	$(GO) test -race ./internal/tensor ./internal/core ./internal/baselines

# test-race-short is the race-detector slice of make ci: the
# determinism contract plus the concurrency-heavy packages, with slow
# tests skipped.
test-race-short:
	$(GO) test -race -short -run 'TestParallelDeterminism|TestRunContext|TestCompareContext' .
	$(GO) test -race -short ./internal/tensor ./internal/core ./internal/baselines ./internal/serve

# bench-json snapshots the compute-core benchmarks (tensor kernels, nn
# training steps, the end-to-end HADFL round) into BENCH_compute.json
# so the perf trajectory is recorded; diff it across PRs.
# Each step is its own recipe line so any bench failure aborts before
# the old snapshot is replaced.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/tensor ./internal/nn > BENCH_compute.txt.tmp
	$(GO) test -run '^$$' -bench 'BenchmarkHADFLRound' -benchtime 3x -benchmem . >> BENCH_compute.txt.tmp
	$(GO) run ./cmd/hadfl-benchjson < BENCH_compute.txt.tmp > BENCH_compute.json.tmp
	rm BENCH_compute.txt.tmp
	mv BENCH_compute.json.tmp BENCH_compute.json
	@echo wrote BENCH_compute.json

serve:
	$(GO) run ./cmd/hadfl-serve -addr :8080
