GO ?= go

.PHONY: check fmt vet build test test-short bench serve

check: fmt vet build test-short

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test-short:
	$(GO) test -short ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

serve:
	$(GO) run ./cmd/hadfl-serve -addr :8080
