package hadfl

import (
	"math"
	"math/rand"
	"testing"

	"hadfl/internal/core"
	"hadfl/internal/dataset"
	"hadfl/internal/nn"
	"hadfl/internal/tensor"
)

// The evaluation-engine determinism contract, the inference-side
// companion of TestParallelDeterminism: cluster evaluation must return
// the same loss and accuracy bits at every tensor parallelism level
// (batches shard across the kernel worker pool) and at every scoring
// batch size (per-sample losses land by dataset position and reduce in
// fixed chunks). Parallelism and EvalBatchSize are throughput knobs,
// never numerics knobs.
func TestEvalDeterminismAcrossParallelismAndBatchSizes(t *testing.T) {
	prev := tensor.Parallelism()
	defer tensor.SetParallelism(prev)

	full := dataset.Synthetic(dataset.SyntheticConfig{
		Samples: 1300, Features: 16, Classes: 5, ModesPerClass: 2, NoiseStd: 0.4, Seed: 42,
	})
	train, test := full.Split(1000)
	build := func(evalBatch int) *core.Cluster {
		c, err := core.BuildCluster(core.ClusterSpec{
			Powers:       []float64{4, 2, 2, 1},
			BaseStepTime: 1,
			Arch: func(rng *rand.Rand) *nn.Model {
				return nn.NewResMLP(rng, 16, 24, 1, 5)
			},
			Train: train, Test: test,
			BatchSize: 20, LR: 0.1, Momentum: 0.9,
			Seed:          42,
			EvalBatchSize: evalBatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	// All clusters share the seed, hence the initial parameter vector;
	// scoring it must give one answer everywhere.
	var wantLoss, wantAcc uint64
	first := true
	for _, batch := range []int{16, 64, 0 /* default */, 300 /* whole set */} {
		for _, par := range []int{1, 2, 8} {
			tensor.SetParallelism(par)
			c := build(batch)
			loss, acc := c.Evaluate(c.InitParams)
			tensor.SetParallelism(1)
			if first {
				wantLoss, wantAcc = math.Float64bits(loss), math.Float64bits(acc)
				first = false
				continue
			}
			if math.Float64bits(loss) != wantLoss || math.Float64bits(acc) != wantAcc {
				t.Fatalf("batch %d, parallelism %d: (%v, %v) differs from reference bits",
					batch, par, loss, acc)
			}
		}
	}
}
