// hadfl-sim runs one training scheme on a simulated heterogeneous
// cluster and prints the training curve and summary.
//
// Examples:
//
//	hadfl-sim -scheme hadfl -powers 4,2,2,1 -epochs 30
//	hadfl-sim -scheme decentralized-fedavg -model vgg -noniid 0.3
//	hadfl-sim -scheme hadfl -csv curve.csv
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"hadfl"
	"hadfl/internal/coordinator"
	"hadfl/internal/metrics"
)

// errBadFlags signals that the FlagSet already printed the problem and
// usage; main exits without re-printing.
var errBadFlags = errors.New("invalid command line")

func main() {
	log.SetFlags(0)
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errBadFlags) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run writes results to out; flag errors and usage go to errOut.
func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("hadfl-sim", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		scheme = fs.String("scheme", hadfl.SchemeHADFL,
			"training scheme: "+strings.Join(hadfl.Schemes(), " | ")+" (or 'list' to print them)")
		model   = fs.String("model", "resnet", "resnet (residual) | vgg (plain)")
		powers  = fs.String("powers", "4,2,2,1", "comma-separated computing-power ratios")
		epochs  = fs.Float64("epochs", 30, "target dataset epochs")
		noniid  = fs.Float64("noniid", 0, "Dirichlet alpha for non-IID split (0 = IID)")
		full    = fs.Bool("full", false, "use the convolutional workload (slower)")
		seed    = fs.Int64("seed", 1, "random seed")
		csv     = fs.String("csv", "", "write the training curve to this CSV file")
		fail    = fs.String("fail", "", "failure schedule, e.g. '1=60,3=120' (device=virtual time)")
		verbose = fs.Bool("v", false, "print per-round progress")
		save    = fs.String("save", "", "persist the final model snapshot to this file")
		load    = fs.String("load", "", "skip training; evaluate a persisted snapshot instead")
		par     = fs.Int("parallelism", 0, "concurrent devices per round (0 = GOMAXPROCS, 1 = sequential; never changes results)")
		tpar    = fs.Int("tensor-workers", 0, "tensor kernel worker pool size (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errBadFlags
	}

	if *scheme == "list" {
		// The registry drives this listing: a newly registered scheme
		// appears here with no CLI change.
		for _, name := range hadfl.Schemes() {
			fmt.Fprintln(out, name)
		}
		return nil
	}
	pw, err := parsePowers(*powers)
	if err != nil {
		return err
	}
	failAt, err := parseFailures(*fail)
	if err != nil {
		return err
	}
	hadfl.SetComputeParallelism(*tpar)
	opts := hadfl.Options{
		Powers:       pw,
		Model:        *model,
		Full:         *full,
		TargetEpochs: *epochs,
		NonIIDAlpha:  *noniid,
		Seed:         *seed,
		FailAt:       failAt,
		Parallelism:  *par,
	}
	if err := opts.Validate(); err != nil {
		return err
	}
	if *load != "" {
		round, params, err := coordinator.ReadSnapshotFile(*load)
		if err != nil {
			return err
		}
		loss, acc, err := hadfl.EvaluateParams(opts, params)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "snapshot        : %s (round %d, %d params)\n", *load, round, len(params))
		fmt.Fprintf(out, "test loss       : %.4f\n", loss)
		fmt.Fprintf(out, "test accuracy   : %.2f%%\n", 100*acc)
		return nil
	}
	if *verbose {
		opts.OnRound = func(u hadfl.RoundUpdate) {
			extra := ""
			if u.Bypassed > 0 {
				extra = fmt.Sprintf("  bypassed=%d", u.Bypassed)
			}
			fmt.Fprintf(out, "round %3d  t=%8.1fs  loss=%.4f  acc=%5.1f%%  ring=%v%s\n",
				u.Round, u.Time, u.Loss, 100*u.Accuracy, u.Selected, extra)
		}
	}
	res, err := hadfl.RunScheme(*scheme, opts)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "scheme          : %s\n", res.Scheme)
	fmt.Fprintf(out, "model           : %s  powers %v\n", *model, opts.Powers)
	fmt.Fprintf(out, "max accuracy    : %.2f%%\n", 100*res.Accuracy)
	fmt.Fprintf(out, "time to max     : %.2f virtual s\n", res.Time)
	fmt.Fprintf(out, "rounds          : %d\n", res.Rounds)
	fmt.Fprintf(out, "device traffic  : %.2f MB\n", float64(res.DeviceBytes)/1e6)
	fmt.Fprintf(out, "server traffic  : %.2f MB\n", float64(res.ServerBytes)/1e6)

	if *save != "" {
		store := coordinator.NewModelStore(1)
		store.Save(res.Rounds, res.FinalParams)
		if err := store.WriteFile(*save); err != nil {
			return err
		}
		fmt.Fprintf(out, "snapshot saved  : %s\n", *save)
	}
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := metrics.WriteCSV(f, []*metrics.Series{res.Series}); err != nil {
			return err
		}
		fmt.Fprintf(out, "curve written   : %s (%d points)\n", *csv, res.Series.Len())
	}
	return nil
}

func parsePowers(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid power %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFailures(s string) (map[int]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[int]float64{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("invalid failure spec %q", part)
		}
		id, err1 := strconv.Atoi(strings.TrimSpace(kv[0]))
		at, err2 := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("invalid failure spec %q", part)
		}
		out[id] = at
	}
	return out, nil
}
