// hadfl-sim runs one training scheme on a simulated heterogeneous
// cluster and prints the training curve and summary.
//
// Examples:
//
//	hadfl-sim -scheme hadfl -powers 4,2,2,1 -epochs 30
//	hadfl-sim -scheme decentralized-fedavg -model vgg -noniid 0.3
//	hadfl-sim -scheme hadfl -csv curve.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"hadfl"
	"hadfl/internal/coordinator"
	"hadfl/internal/metrics"
)

func main() {
	log.SetFlags(0)
	var (
		scheme  = flag.String("scheme", hadfl.SchemeHADFL, "hadfl | decentralized-fedavg | distributed")
		model   = flag.String("model", "resnet", "resnet (residual) | vgg (plain)")
		powers  = flag.String("powers", "4,2,2,1", "comma-separated computing-power ratios")
		epochs  = flag.Float64("epochs", 30, "target dataset epochs")
		noniid  = flag.Float64("noniid", 0, "Dirichlet alpha for non-IID split (0 = IID)")
		full    = flag.Bool("full", false, "use the convolutional workload (slower)")
		seed    = flag.Int64("seed", 1, "random seed")
		csv     = flag.String("csv", "", "write the training curve to this CSV file")
		fail    = flag.String("fail", "", "failure schedule, e.g. '1=60,3=120' (device=virtual time)")
		verbose = flag.Bool("v", false, "print per-round progress (hadfl scheme only)")
		save    = flag.String("save", "", "persist the final model snapshot to this file")
		load    = flag.String("load", "", "skip training; evaluate a persisted snapshot instead")
	)
	flag.Parse()

	opts := hadfl.Options{
		Powers:       parsePowers(*powers),
		Model:        *model,
		Full:         *full,
		TargetEpochs: *epochs,
		NonIIDAlpha:  *noniid,
		Seed:         *seed,
		FailAt:       parseFailures(*fail),
	}
	if *load != "" {
		round, params, err := coordinator.ReadSnapshotFile(*load)
		if err != nil {
			log.Fatal(err)
		}
		loss, acc, err := hadfl.EvaluateParams(opts, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot        : %s (round %d, %d params)\n", *load, round, len(params))
		fmt.Printf("test loss       : %.4f\n", loss)
		fmt.Printf("test accuracy   : %.2f%%\n", 100*acc)
		return
	}
	if *verbose {
		opts.OnRound = func(u hadfl.RoundUpdate) {
			extra := ""
			if u.Bypassed > 0 {
				extra = fmt.Sprintf("  bypassed=%d", u.Bypassed)
			}
			fmt.Printf("round %3d  t=%8.1fs  loss=%.4f  acc=%5.1f%%  ring=%v%s\n",
				u.Round, u.Time, u.Loss, 100*u.Accuracy, u.Selected, extra)
		}
	}
	res, err := hadfl.RunScheme(*scheme, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheme          : %s\n", res.Scheme)
	fmt.Printf("model           : %s  powers %v\n", *model, opts.Powers)
	fmt.Printf("max accuracy    : %.2f%%\n", 100*res.Accuracy)
	fmt.Printf("time to max     : %.2f virtual s\n", res.Time)
	fmt.Printf("rounds          : %d\n", res.Rounds)
	fmt.Printf("device traffic  : %.2f MB\n", float64(res.DeviceBytes)/1e6)
	fmt.Printf("server traffic  : %.2f MB\n", float64(res.ServerBytes)/1e6)

	if *save != "" {
		store := coordinator.NewModelStore(1)
		store.Save(res.Rounds, res.FinalParams)
		if err := store.WriteFile(*save); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot saved  : %s\n", *save)
	}
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := metrics.WriteCSV(f, []*metrics.Series{res.Series}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("curve written   : %s (%d points)\n", *csv, res.Series.Len())
	}
}

func parsePowers(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			log.Fatalf("invalid power %q", part)
		}
		out = append(out, v)
	}
	return out
}

func parseFailures(s string) map[int]float64 {
	if s == "" {
		return nil
	}
	out := map[int]float64{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			log.Fatalf("invalid failure spec %q", part)
		}
		id, err1 := strconv.Atoi(strings.TrimSpace(kv[0]))
		at, err2 := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err1 != nil || err2 != nil {
			log.Fatalf("invalid failure spec %q", part)
		}
		out[id] = at
	}
	return out
}
