package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hadfl"
)

func TestParsePowers(t *testing.T) {
	got, err := parsePowers("4, 2,2,1")
	if err != nil || len(got) != 4 || got[0] != 4 || got[3] != 1 {
		t.Fatalf("got %v err %v", got, err)
	}
	for _, bad := range []string{"", "a,b", "1,-2", "1,0"} {
		if _, err := parsePowers(bad); err == nil {
			t.Errorf("parsePowers(%q) accepted", bad)
		}
	}
}

func TestParseFailures(t *testing.T) {
	got, err := parseFailures("1=60, 3=120")
	if err != nil || len(got) != 2 || got[1] != 60 || got[3] != 120 {
		t.Fatalf("got %v err %v", got, err)
	}
	if got, err := parseFailures(""); err != nil || got != nil {
		t.Fatalf("empty spec: %v %v", got, err)
	}
	for _, bad := range []string{"1", "x=1", "1=y"} {
		if _, err := parseFailures(bad); err == nil {
			t.Errorf("parseFailures(%q) accepted", bad)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var sb, eb strings.Builder
	if err := run([]string{"-powers", "nope"}, &sb, &eb); err == nil {
		t.Fatal("bad powers accepted")
	}
	if err := run([]string{"-scheme", "quantum", "-epochs", "1"}, &sb, &eb); err == nil {
		t.Fatal("bad scheme accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &sb, &eb); !errors.Is(err, errBadFlags) {
		t.Fatalf("unknown flag: err = %v", err)
	}
	// Flag diagnostics go to errOut, not the result stream.
	if sb.Len() != 0 || !strings.Contains(eb.String(), "definitely-not-a-flag") {
		t.Fatalf("stdout %q stderr %q", sb.String(), eb.String())
	}
	// -h prints usage and succeeds.
	eb.Reset()
	if err := run([]string{"-h"}, &sb, &eb); err != nil {
		t.Fatalf("-h: %v", err)
	}
	if !strings.Contains(eb.String(), "Usage of hadfl-sim") {
		t.Fatalf("-h output %q", eb.String())
	}
}

func TestRunTinyTrainingEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real training run in -short mode")
	}
	dir := t.TempDir()
	csv := filepath.Join(dir, "curve.csv")
	snap := filepath.Join(dir, "model.bin")
	var sb strings.Builder
	err := run([]string{
		"-powers", "2,1", "-epochs", "2", "-seed", "7", "-v",
		"-csv", csv, "-save", snap,
	}, &sb, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"scheme          : hadfl", "max accuracy", "rounds", "curve written", "snapshot saved"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if data, err := os.ReadFile(csv); err != nil || !strings.HasPrefix(string(data), "series,epoch,time,loss,accuracy") {
		t.Fatalf("csv: %v %q", err, data)
	}

	// The persisted snapshot evaluates through the -load path.
	sb.Reset()
	if err := run([]string{"-powers", "2,1", "-seed", "7", "-load", snap}, &sb, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "test accuracy") {
		t.Fatalf("load output:\n%s", sb.String())
	}
}

func TestSchemeListPrintsRegistry(t *testing.T) {
	var sb, eb strings.Builder
	if err := run([]string{"-scheme", "list"}, &sb, &eb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(sb.String())
	want := hadfl.Schemes()
	if len(lines) != len(want) {
		t.Fatalf("-scheme list printed %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}
