// hadfl-loadgen drives a hadfl-serve instance with a configurable mix
// of concurrent traffic — cache-hit submissions, fresh runs, coalescing
// duplicates, status polls (with and without ?curve=1), SSE subscribers
// and client cancels — and records per-class latency percentiles,
// throughput and error counts as a JSON snapshot (BENCH_serve.json via
// `make bench-serve`), so serving-layer optimizations are proven
// against traffic-shaped load instead of micro-benchmarks.
//
// With -addr it targets a live external server. Without it (the
// default) it self-hosts an in-process hadfl-serve on a loopback
// listener whose runner is synthetic — a fixed result of -curve-points
// points after -run-cost of simulated compute — so the harness
// measures the serving hot path (cache, encoding, rate limiting, HTTP)
// rather than training throughput. Requests still cross a real TCP
// loopback socket either way.
//
// Examples:
//
//	hadfl-loadgen -duration 10s -concurrency 64 -out BENCH_serve.json
//	hadfl-loadgen -addr http://127.0.0.1:8080 -mix hit=50,poll=50
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"hadfl"
	"hadfl/internal/metrics"
	"hadfl/internal/serve"
)

var errBadFlags = errors.New("invalid command line")

func main() {
	log.SetFlags(0)
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errBadFlags) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// The driven request classes. POST-shaped classes differ in what the
// server should do with them: "hit" targets the pre-seeded completed
// corpus, "fresh" mints a unique seed per request, "dup" clusters
// requests onto a rotating seed so concurrent duplicates coalesce.
var classNames = []string{"hit", "fresh", "dup", "poll", "curve", "sse", "cancel"}

const defaultMix = "hit=40,fresh=10,dup=10,poll=20,curve=10,sse=5,cancel=5"

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("hadfl-loadgen", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		addr        = fs.String("addr", "", "target server base URL (empty = self-host an in-process synthetic server)")
		duration    = fs.Duration("duration", 10*time.Second, "measured load duration")
		concurrency = fs.Int("concurrency", 64, "concurrent client workers")
		mixSpec     = fs.String("mix", defaultMix, "request-class weights, name=weight comma-separated ("+strings.Join(classNames, "|")+")")
		seed        = fs.Int64("seed", 1, "base seed for the traffic generators")
		corpus      = fs.Int("corpus", 16, "distinct pre-completed jobs backing the hit/poll/curve/sse classes")
		outPath     = fs.String("out", "-", "snapshot destination (- = stdout)")
		note        = fs.String("note", "serve-layer load snapshot; regenerate with `make bench-serve`", "note field recorded in the snapshot")
		runCost     = fs.Duration("run-cost", 2*time.Millisecond, "self-hosted synthetic runner's simulated compute per fresh run")
		curvePoints = fs.Int("curve-points", 32, "self-hosted synthetic runner's curve length (round events per run)")
		srvWorkers  = fs.Int("serve-workers", 0, "self-hosted pool workers (0 = GOMAXPROCS)")
		srvQueue    = fs.Int("serve-queue", 256, "self-hosted pool queue depth")
		cacheMax    = fs.Int("cache-max", 1024, "self-hosted cache bound (LRU past it)")
		failOnErrs  = fs.Bool("fail-on-errors", false, "exit non-zero if any request class recorded harness-level errors (the CI smoke gate)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errBadFlags
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintf(errOut, "hadfl-loadgen: %v\n", err)
		return errBadFlags
	}
	if *concurrency < 1 || *corpus < 1 || *duration <= 0 {
		fmt.Fprintln(errOut, "hadfl-loadgen: -concurrency, -corpus and -duration must be positive")
		return errBadFlags
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	target := *addr
	if target != "" && !strings.Contains(target, "://") {
		// Accept the host:port form hadfl-serve's own -addr uses.
		target = "http://" + target
	}
	targetLabel := target
	if target == "" {
		base, shutdown, err := selfHost(selfHostConfig{
			workers: *srvWorkers, queue: *srvQueue, cacheMax: *cacheMax,
			runCost: *runCost, curvePoints: *curvePoints,
		})
		if err != nil {
			return err
		}
		defer shutdown()
		target = base
		targetLabel = "self-hosted synthetic server"
	}
	target = strings.TrimRight(target, "/")

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *concurrency * 2,
		MaxIdleConnsPerHost: *concurrency * 2,
	}}
	defer client.CloseIdleConnections()

	g := &loadgen{
		client:  client,
		target:  target,
		mix:     mix,
		seed:    *seed,
		nCorpus: *corpus,
	}
	fmt.Fprintf(errOut, "hadfl-loadgen: seeding %d-job corpus on %s\n", *corpus, targetLabel)
	if err := g.seedCorpus(ctx); err != nil {
		return fmt.Errorf("hadfl-loadgen: corpus seeding: %w", err)
	}
	fmt.Fprintf(errOut, "hadfl-loadgen: driving %s of load (%d workers, mix %s)\n", *duration, *concurrency, *mixSpec)
	snap := g.drive(ctx, *duration, *concurrency)
	snap.Note = *note
	snap.Target = targetLabel
	snap.Mix = mix
	g.attachServerCounters(ctx, &snap)

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath == "-" {
		if _, err := out.Write(data); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(errOut, "hadfl-loadgen: wrote %s (%d requests, %.1f req/s)\n", *outPath, snap.TotalRequests, snap.ThroughputRPS)
	}
	if *failOnErrs && snap.ErrorsTotal > 0 {
		return fmt.Errorf("hadfl-loadgen: %d harness-level errors recorded", snap.ErrorsTotal)
	}
	return nil
}

// parseMix parses "hit=40,poll=20,..." into weights; unknown class
// names and non-positive totals are rejected.
func parseMix(spec string) (map[string]int, error) {
	known := map[string]bool{}
	for _, n := range classNames {
		known[n] = true
	}
	mix := map[string]int{}
	total := 0
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		name, val, ok := strings.Cut(kv, "=")
		if !ok || !known[name] {
			return nil, fmt.Errorf("bad mix entry %q (classes: %s)", kv, strings.Join(classNames, ", "))
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", kv)
		}
		mix[name] = w
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("mix %q has no positive weights", spec)
	}
	return mix, nil
}

// selfHostConfig sizes the in-process server backing the default mode.
type selfHostConfig struct {
	workers, queue, cacheMax int
	runCost                  time.Duration
	curvePoints              int
}

// selfHost starts an in-process hadfl-serve with a synthetic runner on
// a loopback listener and returns its base URL plus a shutdown hook.
// Rate limiting is disabled: the harness measures the hot path, not the
// limiter's configured ceiling (drive an external server to see 429s).
func selfHost(cfg selfHostConfig) (base string, shutdown func(), err error) {
	srv, err := serve.New(serve.Config{
		Workers:         cfg.workers,
		QueueDepth:      cfg.queue,
		CacheMaxEntries: cfg.cacheMax,
		JobTimeout:      time.Minute,
		Runner:          syntheticRunner(cfg.runCost, cfg.curvePoints),
	})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		closeCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Close(closeCtx)
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	shutdown = func() {
		closeCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Close(closeCtx)
		_ = httpSrv.Shutdown(closeCtx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// syntheticRunner returns a serve.Runner that spends cost of wall time,
// reports points round updates and returns a fixed-shape result — the
// serving layer's traffic shape without training compute underneath.
func syntheticRunner(cost time.Duration, points int) serve.Runner {
	return func(ctx context.Context, scheme string, opts hadfl.Options, onRound func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
		if cost > 0 {
			select {
			case <-time.After(cost):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		series := &metrics.Series{Name: scheme}
		for i := 1; i <= points; i++ {
			p := metrics.Point{
				Epoch:    float64(i),
				Time:     float64(i) * 12.5,
				Loss:     2.0 / float64(i),
				Accuracy: 1 - 0.5/float64(i),
			}
			series.Add(p)
			if onRound != nil {
				onRound(hadfl.RoundUpdate{Scheme: scheme, Round: i, Time: p.Time, Loss: p.Loss, Accuracy: p.Accuracy})
			}
		}
		return &hadfl.Result{
			Scheme:   scheme,
			Accuracy: 1 - 0.5/float64(max(points, 1)),
			Time:     float64(points) * 12.5,
			Rounds:   points,
			Series:   series,
		}, nil
	}
}

// loadgen holds the shared driving state.
type loadgen struct {
	client  *http.Client
	target  string
	mix     map[string]int
	seed    int64
	nCorpus int

	corpusBodies []string // completed jobs, the hit/poll targets
	corpusIDs    []string

	freshSeq  atomic.Int64 // unique seeds for the fresh class
	cancelSeq atomic.Int64 // unique seeds for the cancel class
	dupSeq    atomic.Int64 // clustered seeds for the dup class
}

// dupWindow is how many consecutive dup-class requests share one seed:
// the first is a miss that starts the run, the rest coalesce onto it
// (or hit, once it completes).
const dupWindow = 8

func runBody(seed int64) string {
	return fmt.Sprintf(`{"scheme":"hadfl","options":{"powers":[2,1],"targetEpochs":1,"seed":%d}}`, seed)
}

// seedCorpus submits the corpus jobs and polls until every one is done,
// so the hit/poll/curve/sse classes exercise the completed-result path
// from the first measured request.
func (g *loadgen) seedCorpus(ctx context.Context) error {
	for i := 0; i < g.nCorpus; i++ {
		body := runBody(9_000_000 + g.seed*1000 + int64(i))
		st, _, err := g.post(ctx, body)
		if err != nil {
			return err
		}
		if st.ID == "" {
			return fmt.Errorf("corpus submission %d returned no job id", i)
		}
		g.corpusBodies = append(g.corpusBodies, body)
		g.corpusIDs = append(g.corpusIDs, st.ID)
	}
	deadline := time.Now().Add(30 * time.Second)
	for _, id := range g.corpusIDs {
		for {
			if time.Now().After(deadline) {
				return fmt.Errorf("corpus job %s did not finish in time", id)
			}
			st, code, err := g.get(ctx, "/runs/"+id)
			if err != nil {
				return err
			}
			if code != http.StatusOK {
				return fmt.Errorf("corpus poll %s = HTTP %d", id, code)
			}
			if st.State == "done" {
				break
			}
			if st.State == "failed" || st.State == "canceled" {
				return fmt.Errorf("corpus job %s reached %s: %s", id, st.State, st.Error)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	return nil
}

// wireStatus is the slice of serve.JobStatus the harness reads.
type wireStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Cache string `json:"cache"`
	Error string `json:"error"`
}

func (g *loadgen) post(ctx context.Context, body string) (wireStatus, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.target+"/runs", strings.NewReader(body))
	if err != nil {
		return wireStatus{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	return g.do(req)
}

func (g *loadgen) get(ctx context.Context, path string) (wireStatus, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, g.target+path, nil)
	if err != nil {
		return wireStatus{}, 0, err
	}
	return g.do(req)
}

func (g *loadgen) do(req *http.Request) (wireStatus, int, error) {
	resp, err := g.client.Do(req)
	if err != nil {
		return wireStatus{}, 0, err
	}
	defer resp.Body.Close()
	var st wireStatus
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return wireStatus{}, resp.StatusCode, err
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return st, resp.StatusCode, nil
}

// classResult is one measured request: its driven class, latency, and
// outcome. disposition carries the server-reported cache field for
// POST-shaped classes.
type classResult struct {
	class       string
	seconds     float64
	err         bool
	rateLimited bool
	queueFull   bool
	disposition string
}

// drive runs the measured load phase and aggregates the snapshot.
func (g *loadgen) drive(ctx context.Context, duration time.Duration, concurrency int) Snapshot {
	picks := make([]string, 0, len(classNames))
	weights := make([]int, 0, len(classNames))
	total := 0
	for _, n := range classNames { // fixed order → deterministic thresholds
		if w := g.mix[n]; w > 0 {
			picks = append(picks, n)
			weights = append(weights, w)
			total += w
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()
	results := make([][]classResult, concurrency)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(g.seed + int64(w)*7919))
			var local []classResult
			for runCtx.Err() == nil {
				r := rng.Intn(total)
				class := picks[len(picks)-1]
				for i, wt := range weights {
					if r < wt {
						class = picks[i]
						break
					}
					r -= wt
				}
				res := g.one(runCtx, rng, class)
				if runCtx.Err() != nil {
					break // deadline hit mid-request; don't count the abort
				}
				local = append(local, res...)
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0).Seconds()

	merged := map[string][]float64{}
	errs := map[string]int{}
	counts := map[string]int{}
	dispositions := map[string]int{}
	rateLimited, queueFull := 0, 0
	for _, local := range results {
		for _, r := range local {
			counts[r.class]++
			if r.err {
				errs[r.class]++
				continue
			}
			if r.rateLimited {
				rateLimited++
				continue
			}
			if r.queueFull {
				queueFull++
				continue
			}
			merged[r.class] = append(merged[r.class], r.seconds)
			if r.disposition != "" {
				dispositions[r.disposition]++
			}
		}
	}

	snap := Snapshot{
		HostCPUs:     runtime.NumCPU(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		DurationSec:  elapsed,
		Concurrency:  concurrency,
		Dispositions: dispositions,
		RateLimited:  rateLimited,
		QueueFull:    queueFull,
	}
	for _, name := range classNames {
		n := counts[name]
		if n == 0 {
			continue
		}
		cs := ClassStats{Name: name, Count: n, Errors: errs[name]}
		if samples := merged[name]; len(samples) > 0 {
			sort.Float64s(samples)
			cs.P50Ms = 1000 * quantile(samples, 0.50)
			cs.P95Ms = 1000 * quantile(samples, 0.95)
			cs.P99Ms = 1000 * quantile(samples, 0.99)
			cs.MaxMs = 1000 * samples[len(samples)-1]
			sum := 0.0
			for _, s := range samples {
				sum += s
			}
			cs.MeanMs = 1000 * sum / float64(len(samples))
		}
		cs.RPS = float64(n) / elapsed
		snap.TotalRequests += n
		snap.ErrorsTotal += cs.Errors
		snap.Classes = append(snap.Classes, cs)
	}
	snap.ThroughputRPS = float64(snap.TotalRequests) / elapsed
	return snap
}

// one issues the requests for a single pick of class and returns the
// measured results (the cancel class measures two: its POST and its
// DELETE).
func (g *loadgen) one(ctx context.Context, rng *rand.Rand, class string) []classResult {
	measure := func(class string, f func() (wireStatus, int, error)) (classResult, wireStatus) {
		t0 := time.Now()
		st, code, err := f()
		res := classResult{class: class, seconds: time.Since(t0).Seconds()}
		switch {
		case err != nil:
			res.err = true
		case code == http.StatusTooManyRequests:
			res.rateLimited = true
		case code == http.StatusServiceUnavailable:
			res.queueFull = true // backpressure, not a harness failure
		case code >= 300:
			res.err = true
		default:
			res.disposition = st.Cache
		}
		return res, st
	}
	switch class {
	case "hit":
		body := g.corpusBodies[rng.Intn(len(g.corpusBodies))]
		res, _ := measure(class, func() (wireStatus, int, error) { return g.post(ctx, body) })
		return []classResult{res}
	case "fresh":
		body := runBody(100_000 + g.freshSeq.Add(1))
		res, _ := measure(class, func() (wireStatus, int, error) { return g.post(ctx, body) })
		return []classResult{res}
	case "dup":
		body := runBody(200_000 + g.dupSeq.Add(1)/dupWindow)
		res, _ := measure(class, func() (wireStatus, int, error) { return g.post(ctx, body) })
		return []classResult{res}
	case "poll":
		id := g.corpusIDs[rng.Intn(len(g.corpusIDs))]
		res, _ := measure(class, func() (wireStatus, int, error) { return g.get(ctx, "/runs/"+id) })
		return []classResult{res}
	case "curve":
		id := g.corpusIDs[rng.Intn(len(g.corpusIDs))]
		res, _ := measure(class, func() (wireStatus, int, error) { return g.get(ctx, "/runs/"+id+"?curve=1") })
		return []classResult{res}
	case "sse":
		id := g.corpusIDs[rng.Intn(len(g.corpusIDs))]
		t0 := time.Now()
		err := g.readSSE(ctx, id)
		return []classResult{{class: class, seconds: time.Since(t0).Seconds(), err: err != nil}}
	case "cancel":
		body := runBody(500_000 + g.cancelSeq.Add(1))
		postRes, st := measure("fresh", func() (wireStatus, int, error) { return g.post(ctx, body) })
		if postRes.err || postRes.rateLimited || st.ID == "" {
			return []classResult{postRes}
		}
		delRes, _ := measure(class, func() (wireStatus, int, error) { return g.del(ctx, "/runs/"+st.ID) })
		return []classResult{postRes, delRes}
	}
	return nil
}

func (g *loadgen) del(ctx context.Context, path string) (wireStatus, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, g.target+path, nil)
	if err != nil {
		return wireStatus{}, 0, err
	}
	return g.do(req)
}

// readSSE consumes a job's full event stream; completed jobs replay
// their history and close, so the measured latency is replay + close.
func (g *loadgen) readSSE(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, g.target+"/runs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("sse: HTTP %d", resp.StatusCode)
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// attachServerCounters best-effort embeds a few serve-side counters
// from GET /stats so the snapshot can be sanity-checked against the
// server's own view of the traffic (cache hits vs misses, completions).
func (g *loadgen) attachServerCounters(ctx context.Context, snap *Snapshot) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, g.target+"/stats", nil)
	if err != nil {
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var stats struct {
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return
	}
	snap.ServerCounters = map[string]int64{}
	for _, name := range []string{
		"cache_hits_total", "cache_misses_total", "runs_completed_total",
		"runs_canceled_total", "rate_limited_total", "queue_rejections_total",
		"cancels_requested_total", "sse_streams_total", "http_response_bytes_total",
	} {
		if v, ok := stats.Metrics.Counters[name]; ok {
			snap.ServerCounters[name] = v
		}
	}
}

// quantile returns the nearest-rank q-quantile of sorted samples.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// ClassStats is one request class's aggregate in the snapshot.
type ClassStats struct {
	Name   string  `json:"name"`
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	RPS    float64 `json:"rps"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Snapshot is the emitted BENCH_serve.json document. HostCPUs records
// the snapshotting host's logical core count, like the other BENCH
// files, so later diffs know what hardware the numbers came from.
type Snapshot struct {
	Note           string           `json:"note"`
	Target         string           `json:"target"`
	HostCPUs       int              `json:"host_cpus"`
	GoMaxProcs     int              `json:"go_max_procs"`
	DurationSec    float64          `json:"duration_sec"`
	Concurrency    int              `json:"concurrency"`
	Mix            map[string]int   `json:"mix"`
	TotalRequests  int              `json:"total_requests"`
	ErrorsTotal    int              `json:"errors_total"`
	RateLimited    int              `json:"rate_limited"`
	QueueFull      int              `json:"queue_full"`
	ThroughputRPS  float64          `json:"throughput_rps"`
	Dispositions   map[string]int   `json:"dispositions"`
	Classes        []ClassStats     `json:"classes"`
	ServerCounters map[string]int64 `json:"server_counters,omitempty"`
}
