package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadgenSmoke drives the self-hosted synthetic server for about a
// second at smoke scale and checks the emitted snapshot is coherent:
// every driven class appears, latencies are populated, the server-side
// counters rode along, and no class saw harness-level errors.
func TestLoadgenSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var stderr bytes.Buffer
	err := run([]string{
		"-duration", "1s",
		"-concurrency", "8",
		"-corpus", "4",
		"-run-cost", "500us",
		"-curve-points", "4",
		"-out", out,
	}, os.Stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
	if snap.HostCPUs <= 0 {
		t.Errorf("host_cpus = %d, want > 0", snap.HostCPUs)
	}
	if snap.TotalRequests <= 0 || snap.ThroughputRPS <= 0 {
		t.Errorf("no traffic recorded: total=%d rps=%.1f", snap.TotalRequests, snap.ThroughputRPS)
	}
	got := map[string]ClassStats{}
	for _, c := range snap.Classes {
		got[c.Name] = c
	}
	for _, name := range classNames {
		c, ok := got[name]
		if !ok {
			t.Errorf("class %q missing from snapshot", name)
			continue
		}
		if c.Count <= 0 {
			t.Errorf("class %q recorded no requests", name)
		}
		if c.Errors > 0 {
			t.Errorf("class %q saw %d errors", name, c.Errors)
		}
		if c.P50Ms <= 0 || c.P99Ms < c.P50Ms {
			t.Errorf("class %q has incoherent percentiles: p50=%v p99=%v", name, c.P50Ms, c.P99Ms)
		}
	}
	if snap.Dispositions["hit"] <= 0 {
		t.Errorf("no cache-hit dispositions observed: %v", snap.Dispositions)
	}
	if len(snap.ServerCounters) == 0 {
		t.Error("server counters missing from snapshot")
	}
	if snap.ServerCounters["cache_hits_total"] <= 0 {
		t.Errorf("server reported no cache hits: %v", snap.ServerCounters)
	}
}

// TestParseMix pins the mix grammar: valid specs round-trip, unknown
// classes and empty totals are rejected.
func TestParseMix(t *testing.T) {
	mix, err := parseMix("hit=3, poll=1")
	if err != nil {
		t.Fatal(err)
	}
	if mix["hit"] != 3 || mix["poll"] != 1 {
		t.Errorf("parseMix = %v", mix)
	}
	if _, err := parseMix(defaultMix); err != nil {
		t.Errorf("default mix rejected: %v", err)
	}
	for _, bad := range []string{"", "bogus=1", "hit", "hit=-1", "hit=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted, want error", bad)
		}
	}
}

// TestBadFlags pins the CLI contract: unparsable flags and bad values
// return errBadFlags (exit 2) with a diagnostic, not a crash.
func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-mix", "bogus=1"},
		{"-concurrency", "0"},
		{"-duration", "-1s"},
		{"-nope"},
	} {
		var stderr bytes.Buffer
		err := run(args, os.Stdout, &stderr)
		if err == nil {
			t.Errorf("run(%v) succeeded, want errBadFlags", args)
			continue
		}
		if !strings.Contains(err.Error(), "invalid command line") {
			t.Errorf("run(%v) = %v, want errBadFlags", args, err)
		}
	}
}
