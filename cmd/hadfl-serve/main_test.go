package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"hadfl/internal/p2p"
	"hadfl/internal/serve/dispatch"
)

func TestRunRejectsBadFlags(t *testing.T) {
	var sb, eb strings.Builder
	if err := run([]string{"-not-a-flag"}, &sb, &eb, nil, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if sb.Len() != 0 || !strings.Contains(eb.String(), "not-a-flag") {
		t.Fatalf("stdout %q stderr %q", sb.String(), eb.String())
	}
	if err := run([]string{"-addr", "256.256.256.256:99999"}, &sb, &eb, nil, nil); err == nil {
		t.Fatal("unbindable address accepted")
	}
}

// TestServeSmoke exercises the binary's main path: flag parsing, bind,
// one full HTTP request/response cycle against a live run, shutdown.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real training run in -short mode")
	}
	var sb strings.Builder
	ready := make(chan net.Addr, 1)
	quit := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-grace", "5s"}, &sb, io.Discard, ready, quit)
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("server died early: %v (output %q)", err, sb.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr.String()

	resp, err := http.Post(base+"/runs", "application/json",
		strings.NewReader(`{"scheme":"hadfl","options":{"powers":[2,1],"targetEpochs":2,"seed":7}}`))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || submitted.ID == "" {
		t.Fatalf("POST /runs = %d %+v", resp.StatusCode, submitted)
	}

	deadline := time.Now().Add(30 * time.Second)
	var final struct {
		State  string `json:"state"`
		Result *struct {
			Accuracy float64 `json:"accuracy"`
		} `json:"result"`
	}
	for {
		r, err := http.Get(fmt.Sprintf("%s/runs/%s", base, submitted.ID))
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&final)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if final.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run stuck in state %q", final.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if final.Result == nil || final.Result.Accuracy <= 0 {
		t.Fatalf("result %+v", final.Result)
	}

	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hr.StatusCode)
	}

	close(quit)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never shut down")
	}
	if out := sb.String(); !strings.Contains(out, "listening on") || !strings.Contains(out, "shutting down") {
		t.Fatalf("output:\n%s", out)
	}
}

// TestServeDispatchSmoke boots a worker node (the same transport and
// serve loop cmd/hadfl-worker wraps — that binary has its own smoke
// test) and a hadfl-serve pointed at it with -dispatch, submits a run
// over HTTP and verifies it executed remotely (dispatch_remote_total
// on /stats) and returned a real result — the dispatch integration
// path over real sockets.
func TestServeDispatchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real training run over TCP in -short mode")
	}
	workerNode, err := p2p.ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer workerNode.Close()
	worker, err := dispatch.NewWorker(dispatch.WorkerConfig{
		Transport: workerNode,
		AddPeer:   workerNode.AddPeer,
	})
	if err != nil {
		t.Fatal(err)
	}
	workerCtx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		_ = worker.Serve(workerCtx)
	}()
	workerAddr := workerNode.Addr()

	var sb strings.Builder
	ready := make(chan net.Addr, 1)
	quit := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-grace", "5s",
			"-dispatch", workerAddr}, &sb, io.Discard, ready, quit)
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("server died early: %v (output %q)", err, sb.String())
	case <-time.After(15 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr.String()

	resp, err := http.Post(base+"/runs", "application/json",
		strings.NewReader(`{"scheme":"hadfl","options":{"powers":[2,1],"targetEpochs":2,"seed":11}}`))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if submitted.ID == "" {
		t.Fatalf("POST /runs: no job id (status %d)", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(base + "/runs/" + submitted.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State  string `json:"state"`
			Error  string `json:"error"`
			Result *struct {
				Accuracy    float64 `json:"accuracy"`
				CurvePoints int     `json:"curvePoints"`
			} `json:"result"`
		}
		err = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			if st.Result == nil || st.Result.Accuracy <= 0 || st.Result.CurvePoints == 0 {
				t.Fatalf("dispatched result %+v", st.Result)
			}
			break
		}
		if st.State == "failed" {
			t.Fatalf("dispatched job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("run stuck in state %q", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	sr, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	err = json.NewDecoder(sr.Body).Decode(&stats)
	sr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Metrics.Counters["dispatch_remote_total"] != 1 {
		t.Fatalf("dispatch_remote_total = %d, want 1 (counters %v)",
			stats.Metrics.Counters["dispatch_remote_total"], stats.Metrics.Counters)
	}

	close(quit)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("serve shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never shut down")
	}
	stopWorker()
	select {
	case <-workerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never shut down")
	}
	if !strings.Contains(sb.String(), "dispatching to 1 workers") {
		t.Fatalf("serve output:\n%s", sb.String())
	}
}
