// hadfl-serve exposes the HADFL simulator as a long-lived HTTP
// service: a bounded job queue drained by a worker pool, a
// content-addressed result cache (identical requests are served
// without retraining; concurrent duplicates coalesce onto one run),
// and per-round progress streaming over SSE. See internal/serve for
// the API.
//
// With -dispatch, jobs execute on remote hadfl-worker nodes over the
// internal/p2p dispatch protocol (load-balanced, retried on worker
// loss, falling back to local execution when no worker is live); a
// bare hadfl-serve behaves exactly as before.
//
// Examples:
//
//	hadfl-serve -addr :8080 -workers 4 -job-timeout 5m
//	hadfl-serve -addr :8080 -dispatch 127.0.0.1:7071,127.0.0.1:7072
//	curl -s localhost:8080/runs -d '{"scheme":"hadfl","options":{"powers":[4,2,2,1],"targetEpochs":8,"seed":1}}'
//	curl -N localhost:8080/runs/<id>/events
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hadfl"
	"hadfl/internal/metrics"
	"hadfl/internal/p2p"
	"hadfl/internal/serve"
	"hadfl/internal/serve/dispatch"
	"hadfl/internal/trace"
)

// errBadFlags signals that the FlagSet already printed the problem and
// usage; main exits without re-printing.
var errBadFlags = errors.New("invalid command line")

func main() {
	log.SetFlags(0)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil, nil); err != nil {
		if errors.Is(err, errBadFlags) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run parses flags (errors and usage go to errOut), binds the listener
// and serves until the process is signaled or quit is closed. When
// ready is non-nil the bound address is sent on it once the listener
// is up (the smoke test's hook).
func run(args []string, out, errOut io.Writer, ready chan<- net.Addr, quit <-chan struct{}) error {
	fs := flag.NewFlagSet("hadfl-serve", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		workers    = fs.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)")
		queueDepth = fs.Int("queue", 64, "waiting jobs beyond the running ones")
		jobTimeout = fs.Duration("job-timeout", 10*time.Minute, "per-run wall limit (0 = none)")
		rate       = fs.Float64("rate", 50, "sustained POST /runs per second (0 = unlimited)")
		burst      = fs.Int("burst", 100, "POST /runs burst size")
		grace      = fs.Duration("grace", 30*time.Second, "shutdown grace for running jobs")
		cacheMax   = fs.Int("cache-max", 1024, "max cached results before LRU eviction (0 = unbounded)")
		runPar     = fs.Int("run-parallelism", 0, "per-run device concurrency when a request leaves it unset (0 = sequential)")
		tpar       = fs.Int("tensor-workers", 0, "tensor kernel worker pool size (0 = GOMAXPROCS)")
		storeDir   = fs.String("store-dir", "", "persist completed results here and rehydrate them on boot (empty = in-memory only)")
		dispatchTo = fs.String("dispatch", "", "comma-separated hadfl-worker addresses to execute runs on (empty = run locally); the i-th address must be the worker started with -id i")
		dispAddr   = fs.String("dispatch-listen", "127.0.0.1:0", "p2p listen address for worker replies (with -dispatch)")
		dispWait   = fs.Duration("dispatch-wait", 3*time.Second, "how long to wait at boot for workers to register (with -dispatch)")
		wireCodec  = fs.String("wire-codec", "", "preferred parameter wire codec for dispatched results: raw64 (default, bit-exact), f32, delta or topk; workers not advertising it fall back to raw64")
		breakerN   = fs.Int("breaker-threshold", 5, "consecutive transient failures that open a worker's circuit breaker (0 = breaker off)")
		breakerCD  = fs.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker waits before a half-open trial job is admitted")
		retryBO    = fs.Duration("retry-backoff", 50*time.Millisecond, "base jittered delay between retry attempts of one job, doubling per retry (0 = no backoff)")
		hedgeAfter = fs.Duration("hedge-after", 0, "launch a hedged duplicate of a run still in flight after this delay, first result wins (0 = hedging off); adapts to the observed p95 RTT once warmed up")
		logLevel   = fs.String("log-level", "warn", "structured log threshold: debug, info, warn, error, or off")
		withPprof  = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errBadFlags
	}

	hadfl.SetComputeParallelism(*tpar)
	logger, err := trace.NewLogger(errOut, *logLevel)
	if err != nil {
		fmt.Fprintf(errOut, "hadfl-serve: %v\n", err)
		return errBadFlags
	}
	reg := metrics.NewRegistry()
	// One tracer ring for the whole process: the serve pool's job spans
	// and the dispatcher's remote spans land in the same /debug/traces.
	tracer := trace.NewTracer(0)
	var runner serve.Runner
	var disp *dispatch.Dispatcher
	if *dispatchTo != "" {
		node, err := p2p.ListenTCP(0, *dispAddr)
		if err != nil {
			return err
		}
		var ids []int
		for i, addr := range strings.Split(*dispatchTo, ",") {
			id := i + 1 // a worker's -id is its 1-based position in this list
			node.AddPeer(id, strings.TrimSpace(addr))
			ids = append(ids, id)
		}
		// Flag semantics: 0 means "off"; the Config encodes off as a
		// negative value (its own 0 means "use the default").
		breakerThreshold := *breakerN
		if breakerThreshold == 0 {
			breakerThreshold = -1
		}
		retryBackoff := *retryBO
		if retryBackoff == 0 {
			retryBackoff = -1
		}
		disp, err = dispatch.New(dispatch.Config{
			Transport:        node,
			Workers:          ids,
			ReplyAddr:        node.Addr(),
			Codec:            *wireCodec,
			BreakerThreshold: breakerThreshold,
			BreakerCooldown:  *breakerCD,
			RetryBackoff:     retryBackoff,
			HedgeAfter:       *hedgeAfter,
			Metrics:          reg,
			Tracer:           tracer,
			Logger:           logger,
		})
		if err != nil {
			node.Close()
			return err
		}
		runner = disp.Run
		waitCtx, cancelWait := context.WithTimeout(context.Background(), *dispWait)
		if err := disp.WaitReady(waitCtx, len(ids)); err != nil {
			fmt.Fprintf(out, "hadfl-serve: %d of %d workers registered within %s; missing ones join via heartbeat\n",
				disp.LiveWorkers(), len(ids), *dispWait)
		}
		cancelWait()
		fmt.Fprintf(out, "hadfl-serve dispatching to %d workers (p2p %s)\n", len(ids), node.Addr())
	}
	srv, err := serve.New(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		JobTimeout:      *jobTimeout,
		RatePerSec:      *rate,
		Burst:           *burst,
		CacheMaxEntries: *cacheMax,
		RunParallelism:  *runPar,
		StoreDir:        *storeDir,
		Runner:          runner,
		Metrics:         reg,
		Tracer:          tracer,
		Logger:          logger,
	})
	if err != nil {
		if disp != nil {
			disp.Close()
		}
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		// Nothing is running yet, so the close is immediate — but it
		// must happen: a caller that keeps the process alive (tests
		// drive run() directly) would otherwise leak the pool and the
		// dispatcher's listener, goroutines and worker hellos.
		closeCtx, cancelClose := context.WithTimeout(context.Background(), time.Second)
		_ = srv.Close(closeCtx)
		cancelClose()
		if disp != nil {
			_ = disp.Close()
		}
		return err
	}
	fmt.Fprintf(out, "hadfl-serve listening on %s (workers=%d queue=%d job-timeout=%s)\n",
		ln.Addr(), *workers, *queueDepth, *jobTimeout)

	var handler http.Handler = srv.Handler()
	if *withPprof {
		// Compose rather than registering on the service mux: pprof is
		// opt-in diagnostics, kept out of serve.New so embedding callers
		// never expose it by accident.
		root := http.NewServeMux()
		root.Handle("/", srv.Handler())
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = root
	}
	httpSrv := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	if ready != nil {
		ready <- ln.Addr()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	case <-quit:
	}

	fmt.Fprintln(out, "hadfl-serve shutting down")
	// Close the pool first: once every job is terminal the SSE streams
	// end on their own, so Shutdown below isn't wedged behind
	// long-lived /events connections waiting on running jobs.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Close(shutdownCtx); err != nil {
		fmt.Fprintf(out, "hadfl-serve: running jobs canceled after grace: %v\n", err)
	}
	if disp != nil {
		// The pool has drained, so no dispatched run is in flight.
		if err := disp.Close(); err != nil {
			fmt.Fprintf(out, "hadfl-serve: dispatcher close: %v\n", err)
		}
	}
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer httpCancel()
	return httpSrv.Shutdown(httpCtx)
}
