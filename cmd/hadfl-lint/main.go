// Command hadfl-lint runs the project-invariant analyzer suite
// (internal/lint) over the module and prints one line per finding:
//
//	file:line:col: [analyzer] message
//
// Exit status: 0 clean, 1 findings, 2 usage or load error. Findings
// are suppressed at the site with //lint:ignore <analyzer> <reason>.
//
// Usage:
//
//	hadfl-lint [-root dir] [-list] [pattern ...]
//
// Patterns are module-relative package dirs ("internal/core",
// "./internal/serve/..."); the default "./..." analyzes the whole
// module. The module root is located by walking up from the working
// directory to the nearest go.mod unless -root is given.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hadfl/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hadfl-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", "", "module root (default: nearest go.mod above the working directory)")
	list := fs.Bool("list", false, "print the registered analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *root == "" {
		r, err := findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "hadfl-lint:", err)
			return 2
		}
		*root = r
	}
	pkgs, err := lint.LoadModule(*root)
	if err != nil {
		fmt.Fprintln(stderr, "hadfl-lint:", err)
		return 2
	}
	if pkgs = filterPackages(pkgs, fs.Args()); pkgs == nil {
		fmt.Fprintln(stderr, "hadfl-lint: no packages match", fs.Args())
		return 2
	}
	diags := lint.Run(pkgs)
	for _, d := range diags {
		if rel, err := filepath.Rel(*root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "hadfl-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// filterPackages keeps the packages selected by the argument patterns.
// "./..." (or no patterns) selects everything; "dir/..." selects the
// subtree; a plain dir selects that one package.
func filterPackages(pkgs []*lint.Package, patterns []string) []*lint.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	match := func(dir string) bool {
		for _, p := range patterns {
			p = strings.TrimPrefix(filepath.ToSlash(p), "./")
			if p == "..." || p == dir {
				return true
			}
			if sub, ok := strings.CutSuffix(p, "/..."); ok {
				if sub == "" || dir == sub || strings.HasPrefix(dir, sub+"/") {
					return true
				}
			}
		}
		return false
	}
	var out []*lint.Package
	for _, pkg := range pkgs {
		if match(pkg.Dir) {
			out = append(out, pkg)
		}
	}
	return out
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s (use -root)", dir)
		}
		dir = parent
	}
}
