package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, errOut.String())
	}
	for _, name := range []string{"detmap", "walltime", "poolleaf", "metriccatalog", "ctxbg"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestRepoIsClean drives the real module through the driver — the
// same gate as `make lint`.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-root", root, "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("hadfl-lint over the repo = exit %d:\n%s%s", code, out.String(), errOut.String())
	}
}

// TestFindingsExitNonZero seeds a violation in a scratch module and
// checks the driver reports it at file:line with the analyzer tag and
// exits 1.
func TestFindingsExitNonZero(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "internal", "core")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package core

func visit(m map[int]int) {
	for k := range m {
		_ = k
	}
}
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-root", root, "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("run = %d, want 1; stdout %q stderr %q", code, out.String(), errOut.String())
	}
	got := out.String()
	wantLoc := filepath.Join("internal", "core", "bad.go") + ":4:"
	if !strings.Contains(got, wantLoc) || !strings.Contains(got, "[detmap]") {
		t.Errorf("output missing %q with [detmap] tag:\n%s", wantLoc, got)
	}
}

// TestPatternFilter: a pattern that matches no packages is a usage
// error; a pattern selecting a clean subtree passes even when another
// subtree has findings.
func TestPatternFilter(t *testing.T) {
	root := t.TempDir()
	for _, d := range []string{filepath.Join("internal", "core"), filepath.Join("internal", "trace")} {
		if err := os.MkdirAll(filepath.Join(root, d), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	bad := "package core\n\nfunc visit(m map[int]int) {\n\tfor k := range m {\n\t\t_ = k\n\t}\n}\n"
	if err := os.WriteFile(filepath.Join(root, "internal", "core", "bad.go"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "internal", "trace", "ok.go"), []byte("package trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-root", root, "internal/trace"}, &out, &errOut); code != 0 {
		t.Errorf("clean subtree = exit %d:\n%s%s", code, out.String(), errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-root", root, "internal/nothere"}, &out, &errOut); code != 2 {
		t.Errorf("no-match pattern = exit %d, want 2", code)
	}
}
