// hadfl-node runs one HADFL training device over real TCP: it trains a
// model on its local shard of a synthetic dataset, emulating its
// assigned computing power with per-step sleeps (exactly the paper's
// methodology), and exchanges parameters peer-to-peer with the other
// nodes via the fault-tolerant gossip ring.
//
// Example (worker 0 of 3, twice the power of its peers):
//
//	hadfl-node -id 0 -listen 127.0.0.1:7001 -power 2 -k 3 \
//	    -coordinator 127.0.0.1:7000 \
//	    -peers 1=127.0.0.1:7002,2=127.0.0.1:7003
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"hadfl/internal/dataset"
	"hadfl/internal/nn"
	"hadfl/internal/p2p"
	"hadfl/internal/runtime"
)

const coordinatorID = 1000

func main() {
	log.SetFlags(0)
	var (
		id      = flag.Int("id", 0, "this worker's id (0..k-1)")
		listen  = flag.String("listen", "127.0.0.1:7001", "address to listen on")
		coord   = flag.String("coordinator", "127.0.0.1:7000", "coordinator address")
		peers   = flag.String("peers", "", "other workers: id=host:port,...")
		power   = flag.Float64("power", 1, "emulated computing power ratio")
		k       = flag.Int("k", 4, "total worker count (for data partitioning)")
		sleepMS = flag.Int("sleep-ms", 20, "per-step sleep at power 1 (heterogeneity emulation)")
		seed    = flag.Int64("seed", 1, "random seed (same on all workers)")
	)
	flag.Parse()
	if *id < 0 || *id >= *k {
		log.Fatalf("id %d outside [0,%d)", *id, *k)
	}

	node, err := p2p.ListenTCP(*id, *listen)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	node.AddPeer(coordinatorID, *coord)
	if *peers != "" {
		for _, part := range strings.Split(*peers, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
			if len(kv) != 2 {
				log.Fatalf("invalid peer spec %q", part)
			}
			var pid int
			if _, err := fmt.Sscanf(kv[0], "%d", &pid); err != nil {
				log.Fatalf("invalid peer id %q", kv[0])
			}
			node.AddPeer(pid, kv[1])
		}
	}

	// Every worker generates the same dataset and model init from the
	// shared seed, then takes its own shard — the live equivalent of the
	// coordinator's initial model dispatch.
	full := dataset.Synthetic(dataset.SyntheticConfig{
		Samples: 4000, Features: 32, Classes: 10, ModesPerClass: 2,
		NoiseStd: 0.45, Seed: *seed,
	})
	train, test := full.Split(3200)
	parts := dataset.PartitionIID(train, *k, rand.New(rand.NewSource(*seed+1)))
	model := nn.NewResMLP(rand.New(rand.NewSource(*seed+2)), 32, 32, 2, 10)

	worker, err := runtime.NewWorker(runtime.WorkerConfig{
		ID:        *id,
		CoordID:   coordinatorID,
		Power:     *power,
		SleepUnit: time.Duration(*sleepMS) * time.Millisecond,
		Model:     model,
		Opt:       nn.NewSGD(0.05, 0.9, 0),
		Loader:    dataset.NewLoader(parts[*id], 64, rand.New(rand.NewSource(*seed+10+int64(*id)))),
		RingOpt: p2p.RingOptions{
			DataTimeout:      5 * time.Second,
			HandshakeTimeout: 2 * time.Second,
			MaxReforms:       3,
		},
		ConfigTimeout: 120 * time.Second,
		BcastTimeout:  30 * time.Second,
	}, node)
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("worker %d listening on %s (power %.1f, shard %d samples)",
		*id, node.Addr(), *power, parts[*id].Len())
	rounds, err := worker.Run()
	if err != nil {
		log.Fatal(err)
	}
	acc := model.Accuracy(test.X, test.Y)
	log.Printf("worker %d finished: %d rounds, version %d, test accuracy %.1f%%",
		*id, rounds, worker.Version(), 100*acc)
}
