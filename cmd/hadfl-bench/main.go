// hadfl-bench regenerates the paper's evaluation artifacts: the six
// panels of Fig. 3, Table I, and the ablations (see DESIGN.md's
// experiment index).
//
// Examples:
//
//	hadfl-bench -table 1
//	hadfl-bench -fig 3c -out fig3c.csv
//	hadfl-bench -ablation worst
//	hadfl-bench -all -outdir results/
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"hadfl/internal/experiments"
	"hadfl/internal/metrics"
)

func main() {
	log.SetFlags(0)
	var (
		table    = flag.Int("table", 0, "regenerate Table N (1)")
		fig      = flag.String("fig", "", "regenerate figure panel (3a..3f, or 3 for all panels)")
		ablation = flag.String("ablation", "", "worst | comm | selection | predictor | grouping | async | bandwidth | grouped | scale")
		all      = flag.Bool("all", false, "regenerate everything")
		full     = flag.Bool("full", false, "use the convolutional workloads (much slower)")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "", "CSV output file for -fig")
		outdir   = flag.String("outdir", "", "directory for -all outputs")
	)
	flag.Parse()
	fast := !*full

	// Ctrl-C aborts mid-run: the experiments thread ctx down to every
	// device step (the ctxbg lint contract), so cancellation is prompt
	// even in -full mode.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ran := false
	if *all {
		runAll(ctx, fast, *seed, *outdir)
		return
	}
	if *table == 1 {
		ran = true
		runTable1(ctx, fast, *seed)
	}
	if *fig != "" {
		ran = true
		runFigure(ctx, *fig, fast, *seed, *out)
	}
	if *ablation != "" {
		ran = true
		runAblation(ctx, *ablation, fast, *seed)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func runTable1(ctx context.Context, fast bool, seed int64) {
	fmt.Println("Table I — time required to reach the maximum test accuracy")
	fmt.Println("(virtual seconds; hadfl-speedup = scheme time ÷ HADFL time)")
	fmt.Println()
	rows, err := experiments.Table1(ctx, fast, seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := experiments.RenderTable1(rows).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func runFigure(ctx context.Context, panel string, fast bool, seed int64, out string) {
	series, err := experiments.Figure3(ctx, fast, seed)
	if err != nil {
		log.Fatal(err)
	}
	series = filterPanel(series, panel)
	if len(series) == 0 {
		log.Fatalf("no series match panel %q (want 3, 3a..3f)", panel)
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(os.Stderr, "figure %s: %d series\n", panel, len(series))
	if err := metrics.WriteCSV(w, series); err != nil {
		log.Fatal(err)
	}
}

// filterPanel keeps the series relevant to one Fig. 3 panel: panels a–c
// are the resnet workload, d–f the vgg workload; the x-axis distinction
// (epoch vs time) is in the CSV columns.
func filterPanel(series []*metrics.Series, panel string) []*metrics.Series {
	panel = strings.ToLower(strings.TrimSpace(panel))
	if panel == "3" {
		return series
	}
	var workload string
	switch panel {
	case "3a", "3b", "3c":
		workload = "/resnet/"
	case "3d", "3e", "3f":
		workload = "/vgg/"
	default:
		return nil
	}
	var out []*metrics.Series
	for _, s := range series {
		if strings.Contains(s.Name, workload) {
			out = append(out, s)
		}
	}
	return out
}

func runAblation(ctx context.Context, name string, fast bool, seed int64) {
	switch name {
	case "worst":
		normal, worst, err := experiments.WorstCase(ctx, fast, seed)
		if err != nil {
			log.Fatal(err)
		}
		nb, _ := normal.Series.MaxAccuracy()
		wb, _ := worst.Series.MaxAccuracy()
		fmt.Println("Worst-case selection ablation (§IV-B upper bound of accuracy loss)")
		fmt.Printf("  normal Eq.8 selection : %.1f%% max accuracy\n", 100*nb.Accuracy)
		fmt.Printf("  always-two-slowest    : %.1f%% max accuracy\n", 100*wb.Accuracy)
	case "comm":
		rows, err := experiments.CommVolume(ctx, fast, seed)
		if err != nil {
			log.Fatal(err)
		}
		t := &metrics.Table{Header: []string{"scheme", "device-bytes", "server-bytes", "rounds", "device-bytes/round"}}
		for _, r := range rows {
			t.AddRow(r.Scheme,
				fmt.Sprintf("%d", r.DeviceBytes),
				fmt.Sprintf("%d", r.ServerBytes),
				fmt.Sprintf("%d", r.Rounds),
				fmt.Sprintf("%d", r.PerRoundDev))
		}
		fmt.Println("Communication volume (paper §II-B / §III-D: HADFL keeps the 2·K·M")
		fmt.Println("device volume of FedAvg with zero central-server traffic)")
		fmt.Println()
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	case "selection":
		series, err := experiments.SelectionAblation(ctx, fast, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Selection-function ablation (Eq. 8 Gaussian-at-Q3 vs alternatives)")
		for _, s := range series {
			b, _ := s.MaxAccuracy()
			tt, _, _ := s.TimeToMaxAccuracy()
			fmt.Printf("  %-22s max acc %.1f%%  at %.1f s\n", s.Name, 100*b.Accuracy, tt)
		}
	case "predictor":
		adaptive, static := experiments.PredictorAblation(seed, 80, 0.5)
		fmt.Println("Version-predictor ablation (Eq. 7 smoothing vs static Eq. 6 estimate,")
		fmt.Println("device compute power halves mid-run)")
		fmt.Printf("  adaptive (Brown α=0.5) MAE : %.2f versions\n", adaptive)
		fmt.Printf("  static warm-up estimate MAE: %.2f versions\n", static)
	case "grouping":
		groups, schedule := experiments.GroupingDemo([]int{0, 1, 2, 3, 4, 5, 6, 7}, 3, 4, 8, seed)
		fmt.Println("Grouping schedule (Fig. 2a): 8 devices, groups of ≤3,")
		fmt.Println("inter-group sync every 4 intra-group rounds")
		for i, g := range groups {
			fmt.Printf("  group %d: %v\n", i, g)
		}
		fmt.Printf("  schedule: %v\n", schedule)
	case "async":
		rows, err := experiments.AsyncComparison(ctx, fast, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("HADFL vs staleness-weighted async centralized FL ([6][7])")
		t := &metrics.Table{Header: []string{"scheme", "max-acc", "time-to-max", "server-bytes", "device-bytes"}}
		for _, r := range rows {
			t.AddRow(r.Scheme,
				fmt.Sprintf("%.1f%%", 100*r.MaxAccuracy),
				fmt.Sprintf("%.1f s", r.TimeToMax),
				fmt.Sprintf("%d", r.ServerBytes),
				fmt.Sprintf("%d", r.DeviceBytes))
		}
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	case "bandwidth":
		rows, err := experiments.HetBandwidth(ctx, fast, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Heterogeneous network bandwidth (paper future work)")
		t := &metrics.Table{Header: []string{"link profile", "max-acc", "time-to-max", "total-time"}}
		for _, r := range rows {
			t.AddRow(r.Profile,
				fmt.Sprintf("%.1f%%", 100*r.MaxAccuracy),
				fmt.Sprintf("%.1f s", r.TimeToMax),
				fmt.Sprintf("%.1f s", r.TotalTime))
		}
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	case "grouped":
		flat, grouped, err := experiments.GroupedComparison(ctx, fast, seed)
		if err != nil {
			log.Fatal(err)
		}
		fb, _ := flat.MaxAccuracy()
		gb, _ := grouped.MaxAccuracy()
		ft, _, _ := flat.TimeToMaxAccuracy()
		gt, _, _ := grouped.TimeToMaxAccuracy()
		fmt.Println("Flat vs hierarchical (Fig. 2a) HADFL on an 8-device federation")
		fmt.Printf("  flat    : %.1f%% max accuracy at %.1f s\n", 100*fb.Accuracy, ft)
		fmt.Printf("  grouped : %.1f%% max accuracy at %.1f s\n", 100*gb.Accuracy, gt)
	case "scale":
		rows, err := experiments.Scale(ctx, fast, seed, []int{4, 8, 16})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Scalability sweep (paper future work: larger-scale systems)")
		t := &metrics.Table{Header: []string{"devices", "variant", "max-acc", "time-to-max", "bytes/device", "rounds"}}
		for _, r := range rows {
			t.AddRow(fmt.Sprintf("%d", r.Devices), r.Variant,
				fmt.Sprintf("%.1f%%", 100*r.MaxAccuracy),
				fmt.Sprintf("%.1f s", r.TimeToMax),
				fmt.Sprintf("%d", r.BytesPerDev),
				fmt.Sprintf("%d", r.Rounds))
		}
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown ablation %q", name)
	}
}

func runAll(ctx context.Context, fast bool, seed int64, outdir string) {
	if outdir != "" {
		if err := os.MkdirAll(outdir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	runTable1(ctx, fast, seed)
	fmt.Println()
	if outdir != "" {
		series, err := experiments.Figure3(ctx, fast, seed)
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(outdir, "figure3.csv")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := metrics.WriteCSV(f, series); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("figure 3 data → %s\n\n", path)
	}
	for _, ab := range []string{"worst", "comm", "selection", "predictor", "grouping", "async", "bandwidth", "grouped", "scale"} {
		runAblation(ctx, ab, fast, seed)
		fmt.Println()
	}
}
