// hadfl-coordinator runs the HADFL cloud coordinator over real TCP.
// Workers (cmd/hadfl-node) connect as peers; the coordinator profiles
// them in the mutual-negotiation phase, then orchestrates training
// rounds. Model parameters never pass through this process.
//
// Example (3 workers on localhost):
//
//	hadfl-coordinator -listen 127.0.0.1:7000 \
//	    -workers 0=127.0.0.1:7001,1=127.0.0.1:7002,2=127.0.0.1:7003 \
//	    -rounds 10 -np 2
//
// Start the workers first (they listen immediately and block waiting
// for the coordinator's warm-up request).
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"hadfl/internal/p2p"
	"hadfl/internal/runtime"
	"hadfl/internal/strategy"
)

// coordinatorID is the transport id reserved for the coordinator.
const coordinatorID = 1000

func main() {
	log.SetFlags(0)
	var (
		listen  = flag.String("listen", "127.0.0.1:7000", "address to listen on")
		workers = flag.String("workers", "", "worker peers: id=host:port,...")
		rounds  = flag.Int("rounds", 10, "training rounds")
		np      = flag.Int("np", 2, "devices selected per partial aggregation")
		tsync   = flag.Int("tsync", 1, "sync period in hyperperiods")
		alpha   = flag.Float64("alpha", 0.5, "version-predictor smoothing factor")
		seed    = flag.Int64("seed", 1, "random seed")
		timeout = flag.Duration("report-timeout", 60*time.Second, "per-round report timeout")
	)
	flag.Parse()
	if *workers == "" {
		log.Fatal("missing -workers")
	}

	node, err := p2p.ListenTCP(coordinatorID, *listen)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	var ids []int
	for _, part := range strings.Split(*workers, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			log.Fatalf("invalid worker spec %q", part)
		}
		var id int
		if _, err := fmt.Sscanf(kv[0], "%d", &id); err != nil {
			log.Fatalf("invalid worker id %q", kv[0])
		}
		node.AddPeer(id, kv[1])
		ids = append(ids, id)
	}
	sort.Ints(ids)

	lc, err := runtime.NewLiveCoordinator(runtime.CoordinatorConfig{
		ID:            coordinatorID,
		Workers:       ids,
		Strategy:      strategy.Config{Tsync: *tsync, Np: *np},
		Alpha:         *alpha,
		Rounds:        *rounds,
		ReportTimeout: *timeout,
		Seed:          *seed,
	}, node)
	if err != nil {
		log.Fatal(err)
	}
	lc.OnRound = func(s runtime.RoundStatus) {
		var reported []int
		for id := range s.Reports {
			reported = append(reported, id)
		}
		sort.Ints(reported)
		log.Printf("round %d: selected=%v ring=%v mean-loss=%.4f reports=%v",
			s.Round, s.Plan.Selected, s.Plan.Ring, s.MeanLoss, reported)
	}

	log.Printf("coordinator listening on %s, %d workers, %d rounds", node.Addr(), len(ids), *rounds)
	if err := lc.Run(); err != nil {
		log.Fatal(err)
	}
	log.Printf("done: %d rounds orchestrated", *rounds)
}
