// hadfl-benchjson converts `go test -bench` output on stdin into a
// JSON benchmark snapshot on stdout, so `make bench-json` can record
// the compute-core perf trajectory (ns/op, allocs/op, custom metrics)
// in BENCH_compute.json and later PRs can diff against it.
//
//	go test -run '^$' -bench . -benchmem ./internal/tensor | hadfl-benchjson
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. Go appends "-<GOMAXPROCS>" to
// benchmark names on multi-core hosts; the suffix is split into Procs
// so snapshots from machines with different core counts still match
// entry-by-entry on Name.
type Benchmark struct {
	Package    string             `json:"package,omitempty"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Ratio compares a parallel benchmark against its serial twin (Name
// and NameParallel): Speedup > 1 means the parallel kernel won. On a
// single-core host the ratios hover around 1 and mostly measure
// dispatch overhead — check HostCPUs before reading anything into
// them.
type Ratio struct {
	Name       string  `json:"name"`
	SerialNs   float64 `json:"serial_ns_op"`
	ParallelNs float64 `json:"parallel_ns_op"`
	Speedup    float64 `json:"speedup"`
}

// Snapshot is the emitted document. HostCPUs records how many logical
// cores the snapshotting host had, so later diffs know whether the
// parallel numbers had real hardware underneath them.
type Snapshot struct {
	Note             string      `json:"note"`
	CPU              string      `json:"cpu,omitempty"`
	HostCPUs         int         `json:"host_cpus"`
	ParallelVsSerial []Ratio     `json:"parallel_vs_serial,omitempty"`
	Benchmarks       []Benchmark `json:"benchmarks"`
}

func main() {
	note := flag.String("note", "compute-core benchmark snapshot; regenerate with `make bench-json`",
		"note field recorded in the snapshot")
	flag.Parse()
	snap, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hadfl-benchjson: %v\n", err)
		os.Exit(1)
	}
	snap.Note = *note
	snap.HostCPUs = runtime.NumCPU()
	snap.ParallelVsSerial = ratios(snap.Benchmarks)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintf(os.Stderr, "hadfl-benchjson: %v\n", err)
		os.Exit(1)
	}
}

// ratios pairs every "<Name>Parallel" benchmark with its serial twin
// "<Name>" and records the serial/parallel speedup.
func ratios(benches []Benchmark) []Ratio {
	serial := make(map[string]float64, len(benches))
	for _, b := range benches {
		if !strings.HasSuffix(b.Name, "Parallel") {
			serial[b.Name] = b.Metrics["ns/op"]
		}
	}
	var out []Ratio
	for _, b := range benches {
		base, ok := strings.CutSuffix(b.Name, "Parallel")
		if !ok {
			continue
		}
		sNs, ok := serial[base]
		if !ok || sNs <= 0 {
			continue
		}
		pNs := b.Metrics["ns/op"]
		if pNs <= 0 {
			continue
		}
		out = append(out, Ratio{
			Name:       base,
			SerialNs:   sNs,
			ParallelNs: pNs,
			Speedup:    sNs / pNs,
		})
	}
	return out
}

// parse scans benchmark output. Result lines have the shape
//
//	BenchmarkName-8   	 200	  746890 ns/op	 2229 B/op	 0 allocs/op
//
// i.e. a name, an iteration count, then value/unit pairs; `pkg:` and
// `cpu:` context lines annotate subsequent results.
func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Note: "compute-core benchmark snapshot; regenerate with `make bench-json`"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue // gofmt'd result lines have name, count, then pairs
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name, procs := fields[0], 0
		if i := strings.LastIndex(name, "-"); i > 0 {
			if p, err := strconv.Atoi(name[i+1:]); err == nil && p > 0 {
				name, procs = name[:i], p
			}
		}
		b := Benchmark{
			Package:    pkg,
			Name:       name,
			Procs:      procs,
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found on stdin")
	}
	return snap, nil
}
