// hadfl-benchjson converts `go test -bench` output on stdin into a
// JSON benchmark snapshot on stdout, so `make bench-json` can record
// the compute-core perf trajectory (ns/op, allocs/op, custom metrics)
// in BENCH_compute.json and later PRs can diff against it.
//
//	go test -run '^$' -bench . -benchmem ./internal/tensor | hadfl-benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. Go appends "-<GOMAXPROCS>" to
// benchmark names on multi-core hosts; the suffix is split into Procs
// so snapshots from machines with different core counts still match
// entry-by-entry on Name.
type Benchmark struct {
	Package    string             `json:"package,omitempty"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is the emitted document.
type Snapshot struct {
	Note       string      `json:"note"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	snap, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hadfl-benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintf(os.Stderr, "hadfl-benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse scans benchmark output. Result lines have the shape
//
//	BenchmarkName-8   	 200	  746890 ns/op	 2229 B/op	 0 allocs/op
//
// i.e. a name, an iteration count, then value/unit pairs; `pkg:` and
// `cpu:` context lines annotate subsequent results.
func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Note: "compute-core benchmark snapshot; regenerate with `make bench-json`"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue // gofmt'd result lines have name, count, then pairs
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name, procs := fields[0], 0
		if i := strings.LastIndex(name, "-"); i > 0 {
			if p, err := strconv.Atoi(name[i+1:]); err == nil && p > 0 {
				name, procs = name[:i], p
			}
		}
		b := Benchmark{
			Package:    pkg,
			Name:       name,
			Procs:      procs,
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found on stdin")
	}
	return snap, nil
}
