package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: hadfl/internal/nn
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTrainStepResMLP     	     200	    746890 ns/op	    2229 B/op	       0 allocs/op
BenchmarkHADFLRound 	       3	 488536968 ns/op	         5.000 rounds/run	300252600 B/op	  158988 allocs/op
BenchmarkTable1/resnet/het=3,3,1,1-4 	       2	 900000000 ns/op
PASS
ok  	hadfl/internal/nn	5.745s
`
	snap, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(snap.Benchmarks))
	}
	b := snap.Benchmarks[0]
	if b.Name != "BenchmarkTrainStepResMLP" || b.Package != "hadfl/internal/nn" || b.Iterations != 200 || b.Procs != 0 {
		t.Fatalf("benchmark header parsed wrong: %+v", b)
	}
	multi := snap.Benchmarks[2]
	if multi.Name != "BenchmarkTable1/resnet/het=3,3,1,1" || multi.Procs != 4 {
		t.Fatalf("GOMAXPROCS suffix not split: %+v", multi)
	}
	if b.Metrics["ns/op"] != 746890 || b.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics parsed wrong: %v", b.Metrics)
	}
	if snap.Benchmarks[1].Metrics["rounds/run"] != 5 {
		t.Fatalf("custom metric parsed wrong: %v", snap.Benchmarks[1].Metrics)
	}
	if !strings.Contains(snap.CPU, "Xeon") {
		t.Fatalf("cpu line not captured: %q", snap.CPU)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("expected an error for input without benchmark lines")
	}
}
