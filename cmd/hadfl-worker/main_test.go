package main

import (
	"context"
	"io"
	"strings"
	"testing"
	"time"

	"hadfl"
	"hadfl/internal/p2p"
	"hadfl/internal/serve/dispatch"
)

func TestRunRejectsBadFlags(t *testing.T) {
	var sb, eb strings.Builder
	if err := run([]string{"-not-a-flag"}, &sb, &eb, nil, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-id", "0"}, &sb, &eb, nil, nil); err == nil {
		t.Fatal("dispatcher-reserved id accepted")
	}
	if err := run([]string{"-listen", "256.256.256.256:99999"}, &sb, &eb, nil, nil); err == nil {
		t.Fatal("unbindable address accepted")
	}
}

// TestWorkerSmoke boots the binary's main path on a loopback port and
// drives it with a real dispatcher: registration, heartbeat liveness,
// one dispatched run round-tripping over actual TCP, shutdown.
func TestWorkerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real training run over TCP in -short mode")
	}
	var sb strings.Builder
	ready := make(chan string, 1)
	quit := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-listen", "127.0.0.1:0", "-id", "1"}, &sb, io.Discard, ready, quit)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("worker died early: %v (output %q)", err, sb.String())
	case <-time.After(10 * time.Second):
		t.Fatal("worker never became ready")
	}

	node, err := p2p.ListenTCP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	node.AddPeer(1, addr)
	d, err := dispatch.New(dispatch.Config{
		Transport:      node,
		Workers:        []int{1},
		ReplyAddr:      node.Addr(),
		HeartbeatEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := d.WaitReady(ctx, 1); err != nil {
		t.Fatalf("worker never registered: %v", err)
	}

	rounds := 0
	res, err := d.Run(ctx, hadfl.SchemeHADFL,
		hadfl.Options{Powers: []float64{2, 1}, TargetEpochs: 2, Seed: 7},
		func(hadfl.RoundUpdate) { rounds++ })
	if err != nil {
		t.Fatalf("dispatched run over TCP: %v", err)
	}
	if res.Accuracy <= 0 || res.Rounds == 0 || len(res.FinalParams) == 0 || rounds == 0 {
		t.Fatalf("degenerate dispatched result %+v (rounds streamed %d)", res, rounds)
	}

	close(quit)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker never shut down")
	}
	if out := sb.String(); !strings.Contains(out, "listening on") || !strings.Contains(out, "shutting down") {
		t.Fatalf("output:\n%s", out)
	}
}
