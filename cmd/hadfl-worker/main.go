// hadfl-worker is one remote-execution node for hadfl-serve's
// dispatcher: it listens on a p2p TCP transport, registers with any
// dispatcher that hellos it, acks liveness heartbeats, executes
// dispatched runs through the scheme registry (streaming per-round
// telemetry back), and aborts runs cooperatively on cancel frames or
// propagated deadlines. See internal/serve/dispatch for the protocol.
//
// A worker's -id must match its position in the dispatcher's worker
// list: `hadfl-serve -dispatch addr1,addr2` addresses the worker at
// addr1 as id 1 and addr2 as id 2.
//
// Example (one serve node, two workers):
//
//	hadfl-worker -id 1 -listen 127.0.0.1:7071 &
//	hadfl-worker -id 2 -listen 127.0.0.1:7072 &
//	hadfl-serve -dispatch 127.0.0.1:7071,127.0.0.1:7072
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"

	"hadfl"
	"hadfl/internal/p2p"
	"hadfl/internal/serve/dispatch"
)

// errBadFlags signals that the FlagSet already printed the problem and
// usage; main exits without re-printing.
var errBadFlags = errors.New("invalid command line")

func main() {
	log.SetFlags(0)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil, nil); err != nil {
		if errors.Is(err, errBadFlags) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run parses flags (errors and usage go to errOut), binds the p2p
// listener and serves dispatch frames until the process is signaled or
// quit is closed. When ready is non-nil the bound address is sent on
// it once the listener is up (the smoke test's hook).
func run(args []string, out, errOut io.Writer, ready chan<- string, quit <-chan struct{}) error {
	fs := flag.NewFlagSet("hadfl-worker", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		listen   = fs.String("listen", "127.0.0.1:7071", "p2p listen address for dispatch frames")
		id       = fs.Int("id", 1, "worker node id (position in the dispatcher's -dispatch list, 1-based)")
		capacity = fs.Int("capacity", 1, "concurrent dispatched runs before busy-rejecting")
		tpar     = fs.Int("tensor-workers", 0, "tensor kernel worker pool size (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errBadFlags
	}
	if *id <= 0 {
		fmt.Fprintln(errOut, "hadfl-worker: -id must be positive (dispatchers reserve id 0)")
		return errBadFlags
	}

	hadfl.SetComputeParallelism(*tpar)
	node, err := p2p.ListenTCP(*id, *listen)
	if err != nil {
		return err
	}
	defer node.Close()
	w, err := dispatch.NewWorker(dispatch.WorkerConfig{
		Transport: node,
		Capacity:  *capacity,
		AddPeer:   node.AddPeer,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "hadfl-worker %d listening on %s (capacity=%d)\n", *id, node.Addr(), *capacity)
	if ready != nil {
		ready <- node.Addr()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if quit != nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		go func() {
			select {
			case <-quit:
				cancel()
			case <-ctx.Done():
			}
		}()
	}
	err = w.Serve(ctx)
	fmt.Fprintln(out, "hadfl-worker shutting down")
	if errors.Is(err, context.Canceled) {
		return nil // signaled: in-flight runs were canceled cooperatively
	}
	return err
}
