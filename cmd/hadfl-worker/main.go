// hadfl-worker is one remote-execution node for hadfl-serve's
// dispatcher: it listens on a p2p TCP transport, registers with any
// dispatcher that hellos it, acks liveness heartbeats, executes
// dispatched runs through the scheme registry (streaming per-round
// telemetry back), and aborts runs cooperatively on cancel frames or
// propagated deadlines. See internal/serve/dispatch for the protocol.
//
// A worker's -id must match its position in the dispatcher's worker
// list: `hadfl-serve -dispatch addr1,addr2` addresses the worker at
// addr1 as id 1 and addr2 as id 2.
//
// Example (one serve node, two workers):
//
//	hadfl-worker -id 1 -listen 127.0.0.1:7071 &
//	hadfl-worker -id 2 -listen 127.0.0.1:7072 &
//	hadfl-serve -dispatch 127.0.0.1:7071,127.0.0.1:7072
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hadfl"
	"hadfl/internal/metrics"
	"hadfl/internal/p2p"
	"hadfl/internal/serve/dispatch"
	"hadfl/internal/trace"
)

// errBadFlags signals that the FlagSet already printed the problem and
// usage; main exits without re-printing.
var errBadFlags = errors.New("invalid command line")

func main() {
	log.SetFlags(0)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil, nil); err != nil {
		if errors.Is(err, errBadFlags) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run parses flags (errors and usage go to errOut), binds the p2p
// listener and serves dispatch frames until the process is signaled or
// quit is closed. When ready is non-nil the bound address is sent on
// it once the listener is up (the smoke test's hook).
func run(args []string, out, errOut io.Writer, ready chan<- string, quit <-chan struct{}) error {
	fs := flag.NewFlagSet("hadfl-worker", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		listen    = fs.String("listen", "127.0.0.1:7071", "p2p listen address for dispatch frames")
		id        = fs.Int("id", 1, "worker node id (position in the dispatcher's -dispatch list, 1-based)")
		capacity  = fs.Int("capacity", 1, "concurrent dispatched runs before busy-rejecting")
		tpar      = fs.Int("tensor-workers", 0, "tensor kernel worker pool size (0 = GOMAXPROCS)")
		wireCodec = fs.String("wire-codec", "", "comma-separated parameter wire codecs to advertise, in preference order (empty = all registered; raw64 is always included)")
		httpAddr  = fs.String("http", "", "observability HTTP listen address serving /metrics, /debug/traces and /healthz (empty = disabled)")
		logLevel  = fs.String("log-level", "warn", "structured log threshold: debug, info, warn, error, or off")
		withPprof = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (with -http)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errBadFlags
	}
	if *id <= 0 {
		fmt.Fprintln(errOut, "hadfl-worker: -id must be positive (dispatchers reserve id 0)")
		return errBadFlags
	}

	hadfl.SetComputeParallelism(*tpar)
	logger, err := trace.NewLogger(errOut, *logLevel)
	if err != nil {
		fmt.Fprintf(errOut, "hadfl-worker: %v\n", err)
		return errBadFlags
	}
	reg := metrics.NewRegistry()
	tracer := trace.NewTracer(0)
	start := time.Now()
	node, err := p2p.ListenTCP(*id, *listen)
	if err != nil {
		return err
	}
	defer node.Close()
	var codecs []string
	if *wireCodec != "" {
		for _, name := range strings.Split(*wireCodec, ",") {
			codecs = append(codecs, strings.TrimSpace(name))
		}
	}
	w, err := dispatch.NewWorker(dispatch.WorkerConfig{
		Transport: node,
		Capacity:  *capacity,
		AddPeer:   node.AddPeer,
		Codecs:    codecs,
		Metrics:   reg,
		Tracer:    tracer,
		Logger:    logger,
	})
	if err != nil {
		return err
	}
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", metrics.Handler(reg, start))
		mux.Handle("GET /debug/traces", tracer.Handler())
		mux.HandleFunc("GET /healthz", func(hw http.ResponseWriter, _ *http.Request) {
			hw.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(hw, "{\"status\":\"ok\",\"running\":%d}\n", w.ActiveRuns())
		})
		if *withPprof {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		obsSrv := &http.Server{Handler: mux}
		go func() { _ = obsSrv.Serve(ln) }()
		defer func() {
			closeCtx, cancel := context.WithTimeout(context.Background(), time.Second)
			_ = obsSrv.Shutdown(closeCtx)
			cancel()
		}()
		fmt.Fprintf(out, "hadfl-worker %d observability HTTP on %s\n", *id, ln.Addr())
	}
	fmt.Fprintf(out, "hadfl-worker %d listening on %s (capacity=%d)\n", *id, node.Addr(), *capacity)
	if ready != nil {
		ready <- node.Addr()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if quit != nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		go func() {
			select {
			case <-quit:
				cancel()
			case <-ctx.Done():
			}
		}()
	}
	err = w.Serve(ctx)
	fmt.Fprintln(out, "hadfl-worker shutting down")
	if errors.Is(err, context.Canceled) {
		return nil // signaled: in-flight runs were canceled cooperatively
	}
	return err
}
