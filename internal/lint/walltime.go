package lint

import (
	"fmt"
	"go/ast"
)

// walltime: no wall-clock reads and no process-global math/rand in the
// deterministic packages. time.Now/Since/Until values leak into
// results or control flow and differ per run; the global rand is
// seeded per process and shared across goroutines. Timing belongs in
// the serve/dispatch/trace/metrics layers; randomness in run paths
// must come from a seeded rand.New(rand.NewSource(seed)) instance so a
// fingerprint pins the whole trajectory. Telemetry-only timing inside
// a deterministic package can be suppressed with a reason.
var walltimeAnalyzer = &Analyzer{
	Name:    "walltime",
	Doc:     "wall-clock or global math/rand in a deterministic package",
	Applies: isDeterministicDir,
	Run:     runWalltime,
}

// seededRandCtors are the math/rand package-level functions that build
// deterministic, caller-seeded sources rather than touching the global
// generator.
var seededRandCtors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// wallClockFuncs are the time package functions that read the clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWalltime(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Files {
		timeAlias := importAlias(file.AST, "time")
		randAlias := importAlias(file.AST, "math/rand")
		if timeAlias == "" && randAlias == "" {
			continue
		}
		ast.Inspect(file.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel := selectorOn(call.Fun, timeAlias); wallClockFuncs[sel] {
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(call.Pos()),
					Analyzer: "walltime",
					Message: fmt.Sprintf("%s.%s in a deterministic package: wall-clock belongs in serve/dispatch/trace/metrics layers",
						timeAlias, sel),
				})
			}
			if sel := selectorOn(call.Fun, randAlias); sel != "" && !seededRandCtors[sel] {
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(call.Pos()),
					Analyzer: "walltime",
					Message: fmt.Sprintf("global %s.%s is process-seeded: use a rand.New(rand.NewSource(seed)) instance so the run stays fingerprint-deterministic",
						randAlias, sel),
				})
			}
			return true
		})
	}
	return diags
}
