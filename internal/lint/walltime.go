package lint

import (
	"fmt"
	"go/ast"
)

// walltime: no wall-clock reads and no process-global math/rand in the
// deterministic packages. time.Now/Since/Until values leak into
// results or control flow and differ per run; the global rand is
// seeded per process and shared across goroutines. Timing belongs in
// the serve/dispatch/trace/metrics layers; randomness in run paths
// must come from a seeded rand.New(rand.NewSource(seed)) instance so a
// fingerprint pins the whole trajectory. Telemetry-only timing inside
// a deterministic package can be suppressed with a reason.
//
// The analyzer also covers the clock-injected packages: code whose
// retry/backoff/hedge schedules must be testable without sleeping.
// There the rule is that every clock read and every delay goes through
// the struct's injected now/sleep seam — direct time.Now/Since/Until
// *and* time.Sleep are violations (tickers and timers stay legal: they
// wait without reading the clock, and the injected sleep is built on
// them).
var walltimeAnalyzer = &Analyzer{
	Name:    "walltime",
	Doc:     "wall-clock or global math/rand in a deterministic or clock-injected package",
	Applies: func(dir string) bool { return isDeterministicDir(dir) || clockInjectedDirs[dir] },
	Run:     runWalltime,
}

// clockInjectedDirs are the packages that carry an injected clock
// (now/sleep/jitter fields wired to the wall clock in production,
// substituted in tests): the walltime analyzer bans direct
// time.Now/Since/Until/Sleep there so retry and backoff schedules
// never depend on real time. Assigning time.Now as a function value to
// the injection seam is fine — only calls are flagged.
var clockInjectedDirs = map[string]bool{
	"internal/serve/dispatch": true,
}

// seededRandCtors are the math/rand package-level functions that build
// deterministic, caller-seeded sources rather than touching the global
// generator.
var seededRandCtors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// wallClockFuncs are the time package functions that read the clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWalltime(pkg *Package) []Diagnostic {
	injected := clockInjectedDirs[pkg.Dir]
	var diags []Diagnostic
	for _, file := range pkg.Files {
		timeAlias := importAlias(file.AST, "time")
		randAlias := importAlias(file.AST, "math/rand")
		if timeAlias == "" && randAlias == "" {
			continue
		}
		ast.Inspect(file.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel := selectorOn(call.Fun, timeAlias)
			switch {
			case injected && (wallClockFuncs[sel] || sel == "Sleep"):
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(call.Pos()),
					Analyzer: "walltime",
					Message: fmt.Sprintf("%s.%s in a clock-injected package: go through the injected now/sleep seam so schedules stay testable without sleeping",
						timeAlias, sel),
				})
			case !injected && wallClockFuncs[sel]:
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(call.Pos()),
					Analyzer: "walltime",
					Message: fmt.Sprintf("%s.%s in a deterministic package: wall-clock belongs in serve/dispatch/trace/metrics layers",
						timeAlias, sel),
				})
			}
			// The global-rand rule polices byte-determinism, so it applies
			// only in the deterministic set; clock-injected packages may
			// seed their own jitter sources (and do).
			if !injected {
				if sel := selectorOn(call.Fun, randAlias); sel != "" && !seededRandCtors[sel] {
					diags = append(diags, Diagnostic{
						Pos:      pkg.Fset.Position(call.Pos()),
						Analyzer: "walltime",
						Message: fmt.Sprintf("global %s.%s is process-seeded: use a rand.New(rand.NewSource(seed)) instance so the run stays fingerprint-deterministic",
							randAlias, sel),
					})
				}
			}
			return true
		})
	}
	return diags
}
