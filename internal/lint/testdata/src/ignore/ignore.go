// Fixture for //lint:ignore handling: a directive silences exactly
// the named analyzer on exactly its own line or the next one; unknown
// analyzer names and missing reasons are themselves diagnostics.
package ignore

import "context"

func suppressedNextLine() {
	//lint:ignore ctxbg fixture: directive covers the next line
	ctx := context.Background()
	_ = ctx
}

func suppressedSameLine() {
	ctx := context.Background() //lint:ignore ctxbg fixture: same-line directive
	_ = ctx
}

func wrongAnalyzer() {
	//lint:ignore detmap a valid directive for a different analyzer suppresses nothing here
	ctx := context.Background() // want ctxbg context.Background
	_ = ctx
}

func outOfRange() {
	//lint:ignore ctxbg the directive reaches only the next line, not two lines down
	x := 1
	_ = x
	ctx := context.Background() // want ctxbg context.Background
	_ = ctx
}

func unknownName() {
	//lint:ignore nosuchanalyzer the name is not a registered analyzer
	// want-1 ignore unknown analyzer
	ctx := context.Background() // want ctxbg context.Background
	_ = ctx
}

func missingReason() {
	//lint:ignore ctxbg
	// want-1 ignore needs a reason
	ctx := context.Background() // want ctxbg context.Background
	_ = ctx
}
