// Fixture for the walltime analyzer's clock-injected mode: packages in
// clockInjectedDirs (labeled internal/serve/dispatch by the test) must
// route every clock read and delay through their injected now/sleep
// seam, so direct time.Now/Since/Until/Sleep calls are violations.
// Timers, tickers, and assigning time.Now as a function value to the
// seam stay legal, and the global math/rand rule does not apply here.
package walltimedispatch

import (
	"math/rand"
	"time"
)

type dispatcher struct {
	now   func() time.Time
	sleep func(d time.Duration) bool
}

func newDispatcher() *dispatcher {
	return &dispatcher{now: time.Now} // the seam: a value, not a call — legal
}

func (d *dispatcher) retryLoop() {
	start := time.Now()          // want walltime time.Now in a clock-injected package
	time.Sleep(time.Millisecond) // want walltime time.Sleep in a clock-injected package
	_ = time.Since(start)        // want walltime time.Since in a clock-injected package
	_ = time.Until(start)        // want walltime time.Until in a clock-injected package

	t0 := d.now() // through the seam: legal
	_ = d.now().Sub(t0)
	_ = d.sleep(time.Millisecond)

	tick := time.NewTicker(time.Second) // waits without reading the clock: legal
	tick.Stop()
	tm := time.NewTimer(time.Second) // likewise
	tm.Stop()

	// Jitter sources are seeded instances — the global-rand rule is a
	// byte-determinism rule and stays out of clock-injected packages.
	rng := rand.New(rand.NewSource(1))
	_ = rng.Int63n(10)
	_ = rand.Intn(10) // global rand, but not a deterministic package: legal here
}
