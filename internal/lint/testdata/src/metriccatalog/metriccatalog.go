// Fixture for the metriccatalog analyzer: names reaching a
// metrics.Registry must resolve against the canonical catalog (the
// real one — internal/metrics/names.go).
package metriccatalog

import (
	"sync"

	"hadfl/internal/metrics"
)

type server struct {
	reg    *metrics.Registry
	series *metrics.Series
}

func observe(s *server, scheme string, pt metrics.Point) {
	s.reg.Inc("runs_started_total")                          // canonical: fine
	s.reg.Inc("made_up_total")                               // want metriccatalog not in the canonical catalog
	s.reg.Observe("queue_wait_seconds", 0.1)                 // canonical histogram: fine
	s.reg.Inc("runs_scheme_" + metrics.SanitizeName(scheme)) // documented prefix: fine
	s.reg.Inc("bogus_" + metrics.SanitizeName(scheme))       // want metriccatalog not a documented dynamic family
	name := "runs_started_total"
	s.reg.Inc(name) // want metriccatalog without metrics.SanitizeName

	var wg sync.WaitGroup
	wg.Add(1)        // not a Registry: fine
	s.series.Add(pt) // metrics.Series, not a Registry: fine
}

func fresh() {
	reg := metrics.NewRegistry()
	reg.SetGauge("pool_workers", 1)  // canonical: fine
	reg.SetGauge("mystery_gauge", 1) // want metriccatalog not in the canonical catalog
}
