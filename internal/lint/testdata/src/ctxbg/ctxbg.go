// Fixture for the ctxbg analyzer: context.Background()/TODO() in
// internal library code.
package ctxbg

import "context"

type key struct{}

func runAll() {
	ctx := context.Background() // want ctxbg context.Background
	_ = ctx
	todo := context.TODO() // want ctxbg context.TODO
	_ = todo
}

func threaded(ctx context.Context) context.Context {
	return context.WithValue(ctx, key{}, 1) // deriving from the caller's ctx: fine
}
