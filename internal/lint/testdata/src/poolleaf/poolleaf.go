// Fixture for the poolleaf analyzer: pool tasks handed to parallelFor
// must be leaves. The fixture declares its own parallelFor (the
// analyzer is package-local, like the invariant).
package poolleaf

func parallelFor(n, grain int, fn func(lo, hi int)) { fn(0, n) }

func vecScale(dst []float64, a float64) {
	parallelFor(len(dst), 1, func(lo, hi int) { // a proper leaf: fine
		for i := lo; i < hi; i++ {
			dst[i] *= a
		}
	})
}

func badTransitive(dst []float64) {
	parallelFor(len(dst), 1, func(lo, hi int) {
		vecScale(dst[lo:hi], 2) // want poolleaf vecScale reaches parallelFor
	})
}

func badDirect(dst []float64) {
	parallelFor(len(dst), 1, func(lo, hi int) {
		parallelFor(hi-lo, 1, func(a, b int) {}) // want poolleaf parallelFor reaches parallelFor
	})
}

func scaleAll(lo, hi int) {
	parallelFor(hi-lo, 1, func(a, b int) {})
}

func badNamed(dst []float64) {
	parallelFor(len(dst), 1, scaleAll) // want poolleaf scaleAll reaches parallelFor
}

func leafBody(lo, hi int) {}

func goodNamed(dst []float64) {
	parallelFor(len(dst), 1, leafBody) // named leaf: fine
}
