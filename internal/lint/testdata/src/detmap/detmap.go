// Fixture for the detmap analyzer: range-over-map detection in
// deterministic packages. Expected findings are annotated with
// `// want <analyzer> <message substring>` on the offending line.
package detmap

type set map[int]bool

type stats struct {
	perDevice map[int]int64
	names     []string
}

func newIndex() map[string]int { return nil }

func sum(s *stats, m map[int]float64, ids []int) {
	for range m { // want detmap range over map m
	}
	for _, v := range s.perDevice { // want detmap range over map perDevice
		_ = v
	}
	for k := range map[string]int{"a": 1} { // want detmap range over map literal
		_ = k
	}
	for k := range make(map[int]int) { // want detmap range over map make
		_ = k
	}
	for k := range newIndex() { // want detmap newIndex(...)
		_ = k
	}
	var alive set
	for id := range alive { // want detmap range over map alive
		_ = id
	}
	for _, name := range s.names { // slice field: fine
		_ = name
	}
	for _, id := range ids { // slice param: fine
		_ = id
	}
}
