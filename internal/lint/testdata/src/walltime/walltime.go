// Fixture for the walltime analyzer: wall-clock reads and global
// math/rand in deterministic packages.
package walltime

import (
	"math/rand"
	"time"
)

func trainStep(seed int64) float64 {
	start := time.Now()                   // want walltime time.Now
	_ = time.Since(start)                 // want walltime time.Since
	_ = time.Until(start)                 // want walltime time.Until
	jitter := rand.Float64()              // want walltime global rand.Float64
	rand.Shuffle(3, func(i, j int) {})    // want walltime global rand.Shuffle
	rng := rand.New(rand.NewSource(seed)) // seeded instance: fine
	return jitter * rng.Float64()
}

func zero() time.Time {
	var t time.Time // type reference alone: fine
	return t
}
