package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"

	"hadfl/internal/metrics"
)

// metriccatalog: every metric name that reaches a metrics.Registry
// must be part of the documented surface. The runtime tripwire
// (names_test + assertCanonicalNames) only fires for code paths a test
// happens to execute; this analyzer makes the same contract a
// compile-time gate. A string literal passed to a Registry method must
// resolve against the internal/metrics/names.go catalog (exact name or
// documented prefix+suffix); a dynamic name must be built from a
// documented prefix plus metrics.SanitizeName(...). Receivers are
// resolved syntactically: any name declared as [*]metrics.Registry in
// the package, or assigned from metrics.NewRegistry().
var metriccatalogAnalyzer = &Analyzer{
	Name: "metriccatalog",
	Doc:  "metric name passed to a Registry is not in the canonical catalog (internal/metrics/names.go)",
	// The metrics package itself is exempt: registry.go and
	// prometheus.go pass caller-supplied names through by design.
	Applies: func(dir string) bool { return dir != "internal/metrics" },
	Run:     runMetricCatalog,
}

// registryMethods are the Registry methods whose first argument is a
// metric name.
var registryMethods = map[string]bool{
	"Inc": true, "Add": true, "SetGauge": true, "AddGauge": true,
	"Observe": true, "ObserveSince": true, "ObserveBytes": true,
}

func runMetricCatalog(pkg *Package) []Diagnostic {
	// Index names declared as [*]metrics.Registry, per the package's
	// import alias for the metrics package (checked per file below;
	// the index accepts any file's alias).
	aliases := map[string]bool{}
	for _, file := range pkg.Files {
		if a := importAlias(file.AST, metricsImportPath); a != "" {
			aliases[a] = true
		}
	}
	if len(aliases) == 0 {
		return nil // package never touches the metrics registry
	}
	isRegistryType := func(e ast.Expr) bool {
		s, ok := e.(*ast.SelectorExpr)
		if !ok || s.Sel.Name != "Registry" {
			return false
		}
		id, ok := s.X.(*ast.Ident)
		return ok && aliases[id.Name]
	}
	idx := buildTypeIndex(pkg, isRegistryType)
	// x := metrics.NewRegistry() constructor assignments.
	for _, file := range pkg.Files {
		alias := importAlias(file.AST, metricsImportPath)
		if alias == "" {
			continue
		}
		ast.Inspect(file.AST, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" || i >= len(as.Rhs) {
					continue
				}
				if call, ok := as.Rhs[i].(*ast.CallExpr); ok && isPkgSelector(call.Fun, alias, "NewRegistry") {
					idx.names[id.Name] = true
				}
			}
			return true
		})
	}

	var diags []Diagnostic
	for _, file := range pkg.Files {
		alias := importAlias(file.AST, metricsImportPath)
		ast.Inspect(file.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registryMethods[sel.Sel.Name] {
				return true
			}
			if recv := terminalName(sel.X); recv == "" || !idx.names[recv] {
				return true // not a recognizable Registry receiver
			}
			if d, bad := checkMetricName(pkg, call.Args[0], alias); bad {
				diags = append(diags, d)
			}
			return true
		})
	}
	return diags
}

// checkMetricName validates the name expression passed to a Registry
// method.
func checkMetricName(pkg *Package, arg ast.Expr, metricsAlias string) (Diagnostic, bool) {
	pos := pkg.Fset.Position(arg.Pos())
	if lit, ok := stringLit(arg); ok {
		if metrics.IsCanonical(lit) {
			return Diagnostic{}, false
		}
		return Diagnostic{Pos: pos, Analyzer: "metriccatalog",
			Message: fmt.Sprintf("metric name %q is not in the canonical catalog — add it to internal/metrics/names.go", lit)}, true
	}
	// Dynamic name: require a SanitizeName call somewhere in the
	// expression, and if it is prefix+SanitizeName, the prefix must be
	// a documented dynamic family.
	sanitized := false
	ast.Inspect(arg, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPkgSelector(call.Fun, metricsAlias, "SanitizeName") {
			sanitized = true
		}
		return true
	})
	if !sanitized {
		return Diagnostic{Pos: pos, Analyzer: "metriccatalog",
			Message: "dynamic metric name built without metrics.SanitizeName — use a canonical literal or a documented prefix + SanitizeName"}, true
	}
	if prefix, ok := leadingLit(arg); ok {
		if _, documented := metrics.CanonicalPrefixes()[prefix]; !documented {
			return Diagnostic{Pos: pos, Analyzer: "metriccatalog",
				Message: fmt.Sprintf("metric-name prefix %q is not a documented dynamic family — add it to canonicalPrefixes in internal/metrics/names.go", prefix)}, true
		}
	}
	return Diagnostic{}, false
}

// stringLit unwraps a string literal (possibly parenthesized).
func stringLit(e ast.Expr) (string, bool) {
	if p, ok := e.(*ast.ParenExpr); ok {
		return stringLit(p.X)
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// leadingLit returns the leftmost string literal of a + concatenation
// chain, the shape "prefix_" + SanitizeName(x) takes.
func leadingLit(e ast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.BinaryExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return stringLit(e)
		}
	}
}
