package lint

import (
	"fmt"
	"go/ast"
)

// detmap: no range-over-map in the deterministic packages. Go
// randomizes map iteration order per range, so any loop whose body's
// effects depend on visit order (float accumulation, append, emit)
// would produce different bytes run to run — and the serve cache,
// dispatch retries/hedging, and the delta/topk wire codecs all assume
// reruns are bit-identical. Iterate sorted keys instead, or suppress
// with a reason when the body is provably order-independent (e.g. an
// integer sum).
var detmapAnalyzer = &Analyzer{
	Name:    "detmap",
	Doc:     "range over a map in a deterministic package (iteration order breaks byte-determinism)",
	Applies: isDeterministicDir,
	Run:     runDetmap,
}

func runDetmap(pkg *Package) []Diagnostic {
	isMapType := func(e ast.Expr) bool {
		_, ok := e.(*ast.MapType)
		return ok
	}
	mapTypes := localTypeNames(pkg, isMapType)
	mapExpr := func(e ast.Expr) bool {
		if isMapType(e) {
			return true
		}
		id, ok := e.(*ast.Ident)
		return ok && mapTypes[id.Name]
	}
	idx := buildTypeIndex(pkg, mapExpr)

	var diags []Diagnostic
	for _, file := range pkg.Files {
		ast.Inspect(file.AST, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if what, ok := rangedMap(rng.X, idx, mapExpr); ok {
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(rng.Pos()),
					Analyzer: "detmap",
					Message: fmt.Sprintf("range over map %s: iteration order is randomized and breaks byte-determinism; iterate sorted keys",
						what),
				})
			}
			return true
		})
	}
	return diags
}

// rangedMap reports whether the ranged expression is recognizably a
// map, and names it for the diagnostic.
func rangedMap(x ast.Expr, idx *typeIndex, mapExpr func(ast.Expr) bool) (string, bool) {
	switch x := x.(type) {
	case *ast.Ident:
		if idx.names[x.Name] {
			return x.Name, true
		}
	case *ast.SelectorExpr:
		if idx.names[x.Sel.Name] {
			return x.Sel.Name, true
		}
	case *ast.CompositeLit:
		if x.Type != nil && mapExpr(x.Type) {
			return "literal", true
		}
	case *ast.CallExpr:
		if fn, ok := x.Fun.(*ast.Ident); ok {
			if fn.Name == "make" && len(x.Args) > 0 && mapExpr(x.Args[0]) {
				return "make(...)", true
			}
			if idx.funcs[fn.Name] {
				return fn.Name + "(...)", true
			}
		}
	case *ast.ParenExpr:
		return rangedMap(x.X, idx, mapExpr)
	}
	return "", false
}
