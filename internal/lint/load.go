package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadModule parses every non-test Go file under root into packages
// keyed by directory. It skips testdata (fixture files hold deliberate
// violations), hidden and underscore-prefixed directories, and
// generated-artifact-free by construction (the module has no vendor
// tree). Files only need to parse, not compile.
func LoadModule(root string) ([]*Package, error) {
	fset := token.NewFileSet()
	byDir := map[string]*Package{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path == root {
				return nil
			}
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		dir := filepath.ToSlash(rel)
		if dir == "." {
			dir = ""
		}
		pkg := byDir[dir]
		if pkg == nil {
			pkg = &Package{Dir: dir, Fset: fset}
			byDir[dir] = pkg
		}
		return pkg.parseFile(path)
	})
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(byDir))
	for _, pkg := range byDir {
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Dir < pkgs[j].Dir })
	return pkgs, nil
}

// LoadDir parses the non-test Go files of one directory as a package
// with the given module-relative dir label (fixture tests use the
// label to exercise analyzer applicability rules).
func LoadDir(dir, asDir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: asDir, Fset: token.NewFileSet()}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		if err := pkg.parseFile(filepath.Join(dir, e.Name())); err != nil {
			return nil, err
		}
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return pkg, nil
}

func (pkg *Package) parseFile(path string) error {
	f, err := parser.ParseFile(pkg.Fset, path, nil, parser.ParseComments)
	if err != nil {
		return fmt.Errorf("lint: parse %s: %w", path, err)
	}
	if pkg.Name == "" {
		pkg.Name = f.Name.Name
	}
	pkg.Files = append(pkg.Files, &File{Name: path, AST: f})
	return nil
}

// importAlias returns the identifier a file binds the given import
// path to ("" when the file does not import it). A plain import uses
// the path's base name; dot and blank imports return "" — the
// analyzers' selector matching cannot see through those.
func importAlias(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." || imp.Name.Name == "_" {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}
