package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// ctxbg: internal library code must thread context from its callers
// (the PR 3 contract: cancellation and deadlines reach every runner
// through one ctx chain). A context.Background()/TODO() deep in
// internal/ silently detaches everything below it from the caller's
// lifetime — jobs that "cannot be canceled" have exactly this shape.
// Roots that legitimately own a lifecycle (a server's base context)
// carry a //lint:ignore with the reason. main packages under cmd/ and
// the examples are callers, not library code, and are exempt.
var ctxbgAnalyzer = &Analyzer{
	Name:    "ctxbg",
	Doc:     "context.Background()/TODO() in internal library code (ctx must thread from callers)",
	Applies: func(dir string) bool { return strings.HasPrefix(dir, "internal/") },
	Run:     runCtxbg,
}

func runCtxbg(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Files {
		alias := importAlias(file.AST, "context")
		if alias == "" {
			continue
		}
		ast.Inspect(file.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel := selectorOn(call.Fun, alias)
			if sel != "Background" && sel != "TODO" {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(call.Pos()),
				Analyzer: "ctxbg",
				Message: fmt.Sprintf("%s.%s() in internal library code: thread ctx from the caller so cancellation and deadlines propagate",
					alias, sel),
			})
			return true
		})
	}
	return diags
}
