package lint

import (
	"fmt"
	"go/ast"
)

// poolleaf: every task handed to the kernel pool must be a leaf. The
// tensor package's parallelFor shards work across pool workers; a
// shard body that itself calls parallelFor (directly, or through any
// package function that reaches it, i.e. every blocked kernel) can
// park a pool worker waiting on inner tasks that sit behind it in the
// queue — the deadlock documented in internal/tensor/parallel.go.
// Engine-level sharding (internal/eval) uses its own goroutines for
// exactly this reason. The analyzer builds the package-local call
// graph, computes which functions transitively reach parallelFor, and
// flags any such call inside a function literal passed to parallelFor
// (and named functions passed as the body argument).
var poolleafAnalyzer = &Analyzer{
	Name:    "poolleaf",
	Doc:     "pool task passed to parallelFor is not a leaf (it reaches parallelFor itself)",
	Applies: func(dir string) bool { return dir == "internal/tensor" },
	Run:     runPoolleaf,
}

// parallelEntry is the kernel pool's sharding entry point.
const parallelEntry = "parallelFor"

func runPoolleaf(pkg *Package) []Diagnostic {
	// Package-local call graph over top-level func/method decls,
	// edges keyed by callee identifier (plain `f(...)` calls only —
	// method values and closures assigned to variables are beyond a
	// syntactic pass and not how the kernels are written).
	calls := map[string]map[string]bool{}
	for _, file := range pkg.Files {
		for _, decl := range file.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			callees := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						callees[id.Name] = true
					}
				}
				return true
			})
			calls[fd.Name.Name] = callees
		}
	}
	// reaches: functions that submit to the pool, transitively.
	reaches := map[string]bool{parallelEntry: true}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if reaches[fn] {
				continue
			}
			for callee := range callees {
				if reaches[callee] {
					reaches[fn] = true
					changed = true
					break
				}
			}
		}
	}

	var diags []Diagnostic
	flag := func(pos ast.Node, callee string) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(pos.Pos()),
			Analyzer: "poolleaf",
			Message: fmt.Sprintf("pool task is not a leaf: %s reaches %s — tasks submitted to the kernel pool must never submit to it again (parallel.go invariant)",
				callee, parallelEntry),
		})
	}
	for _, file := range pkg.Files {
		ast.Inspect(file.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != parallelEntry {
				return true
			}
			for _, arg := range call.Args {
				switch arg := arg.(type) {
				case *ast.FuncLit:
					ast.Inspect(arg.Body, func(inner ast.Node) bool {
						ic, ok := inner.(*ast.CallExpr)
						if !ok {
							return true
						}
						if id, ok := ic.Fun.(*ast.Ident); ok && reaches[id.Name] {
							flag(ic, id.Name)
						}
						return true
					})
				case *ast.Ident:
					if reaches[arg.Name] {
						flag(arg, arg.Name)
					}
				}
			}
			return true
		})
	}
	return diags
}
