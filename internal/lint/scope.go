package lint

import "go/ast"

// The package-scope resolver. Without go/types the analyzers cannot
// ask "what is the static type of this expression", so they settle for
// the next best thing: a package-wide index of *names* (variables,
// parameters, struct fields, results) whose declaration syntactically
// carries a type of interest. Resolution is by terminal identifier —
// `s.DeviceBytes` matches if any declaration in the package names a
// map-typed `DeviceBytes`. That trades a small false-positive surface
// (same name, different type, same package) for zero compilation
// requirements; //lint:ignore covers the residue.

// typeIndex records, for one package, which names are declared with a
// matching type and which package-level functions return one.
type typeIndex struct {
	names map[string]bool // vars, params, fields, receivers
	funcs map[string]bool // package-level funcs whose first result matches
}

// buildTypeIndex walks every file of pkg and indexes declarations whose
// type satisfies match. match sees the declared type expression with
// pointer stars stripped.
func buildTypeIndex(pkg *Package, match func(ast.Expr) bool) *typeIndex {
	idx := &typeIndex{names: map[string]bool{}, funcs: map[string]bool{}}
	matchDeref := func(e ast.Expr) bool {
		for {
			star, ok := e.(*ast.StarExpr)
			if !ok {
				return match(e)
			}
			e = star.X
		}
	}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if !matchDeref(f.Type) {
				continue
			}
			for _, n := range f.Names {
				idx.names[n.Name] = true
			}
		}
	}
	for _, file := range pkg.Files {
		ast.Inspect(file.AST, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				addFields(n.Recv)
				addFields(n.Type.Params)
				if n.Type.Results != nil && len(n.Type.Results.List) > 0 &&
					matchDeref(n.Type.Results.List[0].Type) {
					idx.funcs[n.Name.Name] = true
				}
			case *ast.StructType:
				addFields(n.Fields)
			case *ast.ValueSpec:
				if n.Type != nil && matchDeref(n.Type) {
					for _, name := range n.Names {
						idx.names[name.Name] = true
					}
				}
			case *ast.AssignStmt:
				// x := <expr of matching type> — recognized for
				// composite literals, make(T, ...), &T{...}, and calls
				// to already-indexed package-level constructors.
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" || i >= len(n.Rhs) {
						continue
					}
					if t := rhsType(n.Rhs[i]); t != nil && matchDeref(t) {
						idx.names[id.Name] = true
					} else if call, ok := n.Rhs[i].(*ast.CallExpr); ok {
						if fn, ok := call.Fun.(*ast.Ident); ok && idx.funcs[fn.Name] {
							idx.names[id.Name] = true
						}
					}
				}
			}
			return true
		})
	}
	return idx
}

// rhsType extracts the syntactic type a right-hand side constructs, or
// nil when the expression's type is not evident.
func rhsType(e ast.Expr) ast.Expr {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return e.Type
	case *ast.UnaryExpr:
		if cl, ok := e.X.(*ast.CompositeLit); ok {
			return cl.Type
		}
	case *ast.CallExpr:
		if fn, ok := e.Fun.(*ast.Ident); ok && fn.Name == "make" && len(e.Args) > 0 {
			return e.Args[0]
		}
	}
	return nil
}

// terminalName returns the last identifier of an expression used as a
// value — `c.reg` → "reg", `reg` → "reg" — or "" when there is none.
func terminalName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.ParenExpr:
		return terminalName(e.X)
	}
	return ""
}

// isPkgSelector reports whether e is `alias.sel` for the given import
// alias (alias "" never matches).
func isPkgSelector(e ast.Expr, alias, sel string) bool {
	if alias == "" {
		return false
	}
	s, ok := e.(*ast.SelectorExpr)
	if !ok || s.Sel.Name != sel {
		return false
	}
	id, ok := s.X.(*ast.Ident)
	return ok && id.Name == alias
}

// selectorOn returns the selector name if e is `alias.<sel>(...)`'s
// function expression for the given alias, else "".
func selectorOn(e ast.Expr, alias string) string {
	if alias == "" {
		return ""
	}
	s, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := s.X.(*ast.Ident)
	if !ok || id.Name != alias {
		return ""
	}
	return s.Sel.Name
}

// localTypeNames collects package-level named types whose definition
// satisfies match (e.g. `type Set map[int]bool`), chasing one level of
// aliasing per pass until stable.
func localTypeNames(pkg *Package, match func(ast.Expr) bool) map[string]bool {
	names := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, file := range pkg.Files {
			for _, decl := range file.AST.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || names[ts.Name.Name] {
						continue
					}
					if match(ts.Type) {
						names[ts.Name.Name] = true
						changed = true
					} else if id, ok := ts.Type.(*ast.Ident); ok && names[id.Name] {
						names[ts.Name.Name] = true
						changed = true
					}
				}
			}
		}
	}
	return names
}

// metricsImportPath is the canonical catalog's home; metriccatalog and
// the registry-receiver index key off it.
const metricsImportPath = "hadfl/internal/metrics"
