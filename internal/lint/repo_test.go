package lint

import (
	"path/filepath"
	"testing"
)

// TestRepoCleanUnderLint is the gate the Makefile's lint target
// mirrors: the whole module, under every registered analyzer, with
// zero findings. Any invariant break (or undocumented suppression)
// fails here before it reaches a reviewer.
func TestRepoCleanUnderLint(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from %s — loader is missing the module", len(pkgs), root)
	}
	for _, d := range Run(pkgs) {
		t.Errorf("%s", d)
	}
}
