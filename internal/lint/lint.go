// Package lint implements hadfl-lint: a stdlib-only static-analysis
// suite (go/parser + go/ast + go/token, nothing else) that mechanically
// enforces the project invariants the HADFL reproduction rests on —
// byte-determinism of run paths, the kernel-pool leaf rule, the
// canonical metric-name catalog, and context threading.
//
// The analyzers are deliberately syntactic: without go/types they
// resolve declarations per package (see scope.go), which makes them
// heuristic — they can miss a violation smuggled through an interface,
// but they never need the package to compile and they run in
// milliseconds over the whole module. Every diagnostic is suppressible
// at the site with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory; an unknown analyzer name in a directive is itself a
// diagnostic (analyzer "ignore"), so suppressions cannot rot silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the driver's output format: file:line:col: [analyzer] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A File is one parsed source file of a package.
type File struct {
	Name string // path as parsed (also in token positions)
	AST  *ast.File
}

// A Package is the unit analyzers run on: the non-test files of one
// directory, plus the module-relative directory path analyzers use to
// decide applicability.
type Package struct {
	Dir   string // module-relative, slash-separated ("internal/core"); "" for the root
	Name  string
	Fset  *token.FileSet
	Files []*File
}

// An Analyzer checks one project invariant.
type Analyzer struct {
	Name string
	Doc  string // one-line: the invariant it enforces
	// Applies reports whether the analyzer runs on the package at the
	// given module-relative dir; nil means every package.
	Applies func(dir string) bool
	Run     func(pkg *Package) []Diagnostic
}

// analyzers is the registered suite, in report order.
var analyzers = []*Analyzer{
	detmapAnalyzer,
	walltimeAnalyzer,
	poolleafAnalyzer,
	metriccatalogAnalyzer,
	ctxbgAnalyzer,
}

// Analyzers returns the registered suite (shared backing array; treat
// as read-only).
func Analyzers() []*Analyzer { return analyzers }

// deterministicDirs are the packages whose run paths must be
// byte-deterministic: the serve cache keys on hadfl.Fingerprint,
// dispatch retries and hedging assume reruns are bit-identical, and
// the delta/topk wire codecs derive reference vectors independently on
// both ends. detmap and walltime police exactly this set.
var deterministicDirs = map[string]bool{
	"internal/core":      true,
	"internal/nn":        true,
	"internal/tensor":    true,
	"internal/eval":      true,
	"internal/aggregate": true,
	"internal/baselines": true,
}

func isDeterministicDir(dir string) bool { return deterministicDirs[dir] }

// Run applies the full registered suite to pkgs: analyzers, directive
// validation, and suppression filtering. Diagnostics come back sorted
// by file, line, column, analyzer.
func Run(pkgs []*Package) []Diagnostic { return RunAnalyzers(pkgs, analyzers) }

// RunAnalyzers is Run restricted to a chosen analyzer set (the fixture
// tests use it to aim one analyzer at one fixture package). Directive
// validation knows only the chosen set, so an ignore naming an
// unlisted analyzer is reported as unknown.
func RunAnalyzers(pkgs []*Package, as []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range as {
		for _, pkg := range pkgs {
			if a.Applies != nil && !a.Applies(pkg.Dir) {
				continue
			}
			diags = append(diags, a.Run(pkg)...)
		}
	}

	known := make(map[string]bool, len(as))
	for _, a := range as {
		known[a.Name] = true
	}
	var directives []directive
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, dir := range scanDirectives(pkg.Fset, f.AST) {
				if !known[dir.analyzer] {
					names := make([]string, 0, len(as))
					for _, a := range as {
						names = append(names, a.Name)
					}
					diags = append(diags, Diagnostic{
						Pos:      dir.pos,
						Analyzer: "ignore",
						Message: fmt.Sprintf("lint:ignore names unknown analyzer %q (known: %s)",
							dir.analyzer, strings.Join(names, ", ")),
					})
					continue
				}
				if dir.reason == "" {
					diags = append(diags, Diagnostic{
						Pos:      dir.pos,
						Analyzer: "ignore",
						Message:  fmt.Sprintf("lint:ignore %s needs a reason: //lint:ignore <analyzer> <reason>", dir.analyzer),
					})
					continue
				}
				directives = append(directives, dir)
			}
		}
	}

	diags = suppress(diags, directives)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// A directive is one well-formed //lint:ignore comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
}

// scanDirectives extracts every lint:ignore directive in a file,
// well-formed or not (validation happens in RunAnalyzers).
func scanDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // /* */ comments are not directives
			}
			text, ok = strings.CutPrefix(strings.TrimLeft(text, " \t"), "lint:ignore")
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			d := directive{pos: fset.Position(c.Pos())}
			if len(fields) > 0 {
				d.analyzer = fields[0]
			}
			if len(fields) > 1 {
				d.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// suppress drops diagnostics covered by a directive for the same
// analyzer in the same file on the same line or the line directly
// above. Directive-validation diagnostics (analyzer "ignore") are
// never suppressible.
func suppress(diags []Diagnostic, directives []directive) []Diagnostic {
	if len(directives) == 0 {
		return diags
	}
	covered := make(map[string]bool, 2*len(directives))
	for _, d := range directives {
		covered[fmt.Sprintf("%s\x00%s\x00%d", d.pos.Filename, d.analyzer, d.pos.Line)] = true
		covered[fmt.Sprintf("%s\x00%s\x00%d", d.pos.Filename, d.analyzer, d.pos.Line+1)] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "ignore" &&
			covered[fmt.Sprintf("%s\x00%s\x00%d", d.Pos.Filename, d.Analyzer, d.Pos.Line)] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
