package lint

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// The fixture harness: each analyzer runs against
// testdata/src/<name>/, whose files annotate every expected finding
// with `// want[<±offset>] <analyzer> <message substring>` on (or
// offset from) the offending line. The harness fails on any
// unexpected diagnostic and any unmatched expectation, so fixtures
// pin both hits and non-hits.

type expectation struct {
	file     string
	line     int
	analyzer string
	substr   string
	matched  bool
}

func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text, ok = strings.CutPrefix(strings.TrimSpace(text), "want")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				offset := 0
				if len(text) > 0 && (text[0] == '+' || text[0] == '-') {
					i := strings.IndexAny(text, " \t")
					if i < 0 {
						t.Fatalf("%s:%d: malformed want offset %q", pos.Filename, pos.Line, text)
					}
					n, err := strconv.Atoi(text[:i])
					if err != nil {
						t.Fatalf("%s:%d: malformed want offset %q: %v", pos.Filename, pos.Line, text[:i], err)
					}
					offset, text = n, text[i:]
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					t.Fatalf("%s:%d: want needs `<analyzer> <substring>`, got %q", pos.Filename, pos.Line, text)
				}
				wants = append(wants, &expectation{
					file:     pos.Filename,
					line:     pos.Line + offset,
					analyzer: fields[0],
					substr:   strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return wants
}

// runFixture loads testdata/src/<name> as a package labeled asDir and
// checks the chosen analyzers' diagnostics against the fixture's want
// annotations.
func runFixture(t *testing.T, name, asDir string, as ...*Analyzer) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", name), asDir)
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers([]*Package{pkg}, as)
	wants := collectWants(t, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line &&
				w.analyzer == d.Analyzer && strings.Contains(d.Message, w.substr) {
				w.matched, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected [%s] diagnostic containing %q, got none", w.file, w.line, w.analyzer, w.substr)
		}
	}
}

func TestDetmapFixture(t *testing.T) {
	runFixture(t, "detmap", "internal/core", detmapAnalyzer)
}

func TestWalltimeFixture(t *testing.T) {
	runFixture(t, "walltime", "internal/nn", walltimeAnalyzer)
}

func TestWalltimeDispatchFixture(t *testing.T) {
	runFixture(t, "walltimedispatch", "internal/serve/dispatch", walltimeAnalyzer)
}

func TestPoolleafFixture(t *testing.T) {
	runFixture(t, "poolleaf", "internal/tensor", poolleafAnalyzer)
}

func TestMetricCatalogFixture(t *testing.T) {
	runFixture(t, "metriccatalog", "internal/serve", metriccatalogAnalyzer)
}

func TestCtxbgFixture(t *testing.T) {
	runFixture(t, "ctxbg", "internal/serve", ctxbgAnalyzer)
}

// TestIgnoreFixture proves //lint:ignore silences exactly the named
// analyzer on exactly its line (or the next), and that malformed
// directives are diagnostics themselves. detmap rides along so the
// "valid directive, different analyzer" case uses a known name.
func TestIgnoreFixture(t *testing.T) {
	runFixture(t, "ignore", "internal/serve", ctxbgAnalyzer, detmapAnalyzer)
}

// TestAnalyzerScoping: deterministic-package analyzers must not fire
// outside their package set, and ctxbg must not fire outside
// internal/.
func TestAnalyzerScoping(t *testing.T) {
	for _, tc := range []struct {
		fixture string
		asDir   string
		an      *Analyzer
	}{
		{"detmap", "internal/serve", detmapAnalyzer},
		{"walltime", "cmd/hadfl-sim", walltimeAnalyzer},
		{"walltimedispatch", "internal/serve", walltimeAnalyzer},
		{"poolleaf", "internal/eval", poolleafAnalyzer},
		{"ctxbg", "cmd/hadfl-serve", ctxbgAnalyzer},
		{"metriccatalog", "internal/metrics", metriccatalogAnalyzer},
	} {
		pkg, err := LoadDir(filepath.Join("testdata", "src", tc.fixture), tc.asDir)
		if err != nil {
			t.Fatal(err)
		}
		if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{tc.an}); len(diags) > 0 {
			t.Errorf("%s labeled %s: analyzer should not apply, got %v", tc.fixture, tc.asDir, diags)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "ctxbg"), "internal/serve")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{ctxbgAnalyzer})
	if len(diags) == 0 {
		t.Fatal("expected diagnostics")
	}
	s := diags[0].String()
	want := fmt.Sprintf("%s:", filepath.Join("testdata", "src", "ctxbg", "ctxbg.go"))
	if !strings.HasPrefix(s, want) || !strings.Contains(s, "[ctxbg]") {
		t.Errorf("String() = %q, want %q prefix and [ctxbg] tag", s, want)
	}
}

// TestAnalyzersRegistered pins the suite: the five repo invariants
// stay enforced and names stay stable for lint:ignore directives.
func TestAnalyzersRegistered(t *testing.T) {
	want := []string{"detmap", "walltime", "poolleaf", "metriccatalog", "ctxbg"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("registered %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc line", a.Name)
		}
	}
}
