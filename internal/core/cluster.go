// Package core implements the HADFL training runtime (paper Alg. 1 and
// the §III-A workflow) over the simulated substrate: heterogeneous
// devices train asynchronously with per-device local steps; every
// Tsync×HE virtual seconds the coordinator's plan selects Np devices by
// the Eq. 8 probability; the selected ring performs a gossip all-reduce;
// the aggregate is broadcast to the rest.
//
// Virtual time is accumulated analytically (compute from the device cost
// model, communication from the p2p.CommModel α–β formulas), mirroring
// how the paper injects sleep() — see DESIGN.md. The message-level
// protocol (including fault-tolerant bypass) additionally runs for real
// in internal/p2p and the live cmd/ deployment path.
package core

import (
	"fmt"
	"math/rand"

	"hadfl/internal/dataset"
	"hadfl/internal/device"
	"hadfl/internal/eval"
	"hadfl/internal/nn"
)

// ClusterSpec describes a simulated heterogeneous federation: the
// paper's "computing power ratio" array plus the model/data/optimizer
// every device uses.
type ClusterSpec struct {
	// Powers is the computing-power ratio array, e.g. [4,2,2,1]; its
	// length is the device count K.
	Powers []float64
	// BaseStepTime is virtual seconds per mini-batch at power 1.
	BaseStepTime float64
	// Jitter is per-step log-normal noise (0 = deterministic).
	Jitter float64
	// Arch builds the model; all devices share one initialization.
	Arch nn.Arch
	// Train/Test data. Train is partitioned across devices.
	Train, Test *dataset.Dataset
	// NonIIDAlpha, if > 0, uses a Dirichlet(alpha) split; otherwise IID.
	NonIIDAlpha float64
	// BatchSize per device.
	BatchSize int
	// Optimizer hyper-parameters.
	LR, Momentum, WeightDecay float64
	// LRSchedule optionally drives the learning rate from each device's
	// local step count (overriding LR after warm-up).
	LRSchedule nn.LRSchedule
	// FailAt maps device id → virtual failure time (0 = never).
	FailAt map[int]float64
	// Seed drives all randomness (init, partition, jitter).
	Seed int64
	// EvalBatchSize is the evaluation engine's fixed scoring batch
	// size (0 = eval.DefaultBatchSize). A throughput/memory knob only:
	// the engine's results are bit-identical at every batch size.
	EvalBatchSize int
}

// Cluster is a ready-to-train federation.
type Cluster struct {
	Devices   []*device.Device
	Test      *dataset.Dataset
	BatchSize int
	// TrainSamples is the total training-set size across devices, used
	// to convert processed samples into epochs.
	TrainSamples int
	// InitParams is the shared initial parameter vector.
	InitParams []float64

	// evaluator is the cluster-owned batched evaluation engine every
	// runner scores aggregates through.
	evaluator *eval.Evaluator
}

// BuildCluster constructs the federation: one model replica, optimizer
// and data shard per device, all replicas starting from identical
// parameters (workflow step 2: initial model dispatch).
func BuildCluster(spec ClusterSpec) (*Cluster, error) {
	k := len(spec.Powers)
	if k == 0 {
		return nil, fmt.Errorf("core: empty Powers")
	}
	if spec.Arch == nil || spec.Train == nil || spec.Test == nil {
		return nil, fmt.Errorf("core: Arch, Train and Test are required")
	}
	if spec.BatchSize <= 0 {
		return nil, fmt.Errorf("core: BatchSize %d", spec.BatchSize)
	}
	if spec.BaseStepTime <= 0 {
		return nil, fmt.Errorf("core: BaseStepTime %v", spec.BaseStepTime)
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	ref := spec.Arch(rand.New(rand.NewSource(spec.Seed + 1000)))
	init := ref.Parameters()

	var parts []*dataset.Dataset
	if spec.NonIIDAlpha > 0 {
		parts = dataset.PartitionDirichlet(spec.Train, k, spec.NonIIDAlpha, rng)
	} else {
		parts = dataset.PartitionIID(spec.Train, k, rng)
	}

	ev, err := eval.New(eval.Config{
		Data:  spec.Test,
		Model: ref,
		NewReplica: func() *nn.Model {
			// Replica weights are overwritten by SetParameters before
			// every use, so the init seed is irrelevant.
			return spec.Arch(rand.New(rand.NewSource(spec.Seed + 1000)))
		},
		BatchSize: spec.EvalBatchSize,
	})
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		Test:         spec.Test,
		BatchSize:    spec.BatchSize,
		TrainSamples: spec.Train.Len(),
		InitParams:   append([]float64(nil), init...),
		evaluator:    ev,
	}
	for i, p := range spec.Powers {
		if p <= 0 {
			return nil, fmt.Errorf("core: power[%d] = %v", i, p)
		}
		m := spec.Arch(rand.New(rand.NewSource(spec.Seed + 2000 + int64(i))))
		m.SetParameters(init)
		opt := nn.NewSGD(spec.LR, spec.Momentum, spec.WeightDecay)
		loader := dataset.NewLoader(parts[i], spec.BatchSize, rand.New(rand.NewSource(spec.Seed+3000+int64(i))))
		cfg := device.Config{
			ID:           i,
			Power:        p,
			BaseStepTime: spec.BaseStepTime,
			Jitter:       spec.Jitter,
			FailAt:       spec.FailAt[i],
		}
		d := device.New(cfg, m, opt, loader, rand.New(rand.NewSource(spec.Seed+4000+int64(i))))
		d.Schedule = spec.LRSchedule
		c.Devices = append(c.Devices, d)
	}
	return c, nil
}

// Evaluate scores params against the test set through the
// cluster-owned evaluation engine: fixed-size batches, a single
// forward pass per batch producing loss and accuracy together, and
// bit-identical results at every parallelism level and batch size.
func (c *Cluster) Evaluate(params []float64) (loss, acc float64) {
	return c.evaluator.Evaluate(params)
}

// Evaluator exposes the cluster-owned evaluation engine (for direct
// EvaluateInto use or engine-level tests). Evaluations must be
// serialized; the runners evaluate between rounds, which does.
func (c *Cluster) Evaluator() *eval.Evaluator { return c.evaluator }

// EvalStats returns the engine's cumulative telemetry for this
// cluster's runs (batches scored, wall-clock seconds), which the serve
// layer exports as eval_batches_total / eval_seconds_total.
func (c *Cluster) EvalStats() eval.Stats { return c.evaluator.Stats() }

// EpochsProcessed converts a total step count (across devices) into
// dataset epochs: steps × batch / train-set size.
func (c *Cluster) EpochsProcessed(totalSteps int) float64 {
	return float64(totalSteps*c.BatchSize) / float64(c.TrainSamples)
}

// AliveAt returns the ids of devices alive at virtual time t.
func (c *Cluster) AliveAt(t float64) []int {
	var out []int
	for _, d := range c.Devices {
		if d.AliveAt(t) {
			out = append(out, d.Cfg.ID)
		}
	}
	return out
}

// Device returns the device with the given id.
func (c *Cluster) Device(id int) *device.Device {
	for _, d := range c.Devices {
		if d.Cfg.ID == id {
			return d
		}
	}
	panic(fmt.Sprintf("core: no device %d", id))
}

// CommStats accounts communication volume per party, the basis of the
// paper's 2·K·M claim and the central-server pressure comparison.
type CommStats struct {
	DeviceBytes map[int]int64 // bytes sent by each device
	ServerBytes int64         // bytes sent by the central server (0 for HADFL)
	Rounds      int
}

// NewCommStats returns empty accounting.
func NewCommStats() *CommStats {
	return &CommStats{DeviceBytes: make(map[int]int64)}
}

// TotalDeviceBytes sums all device traffic.
func (s *CommStats) TotalDeviceBytes() int64 {
	var t int64
	//lint:ignore detmap integer sum is order-independent; no bytes derive from visit order
	for _, b := range s.DeviceBytes {
		t += b
	}
	return t
}
