package core

import (
	"context"
	"testing"

	"hadfl/internal/nn"
)

func TestClusterWithLRSchedule(t *testing.T) {
	spec := testSpec(t, 61)
	spec.LRSchedule = nn.Chain{
		Head:      nn.WarmupLinear{Base: 0.1, Scale: 0.1, WarmupSteps: 20},
		HeadSteps: 20,
		Tail:      nn.CosineAnnealing{Base: 0.1, Floor: 0.005, TotalSteps: 400},
	}
	c, err := BuildCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.TargetEpochs = 10
	res, err := RunHADFL(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.Series.MaxAccuracy()
	if best.Accuracy < 0.6 {
		t.Fatalf("scheduled run reached only %.2f", best.Accuracy)
	}
	// Devices far along the schedule carry a decayed learning rate.
	fast := c.Devices[0]
	if fast.Version < 100 {
		t.Fatalf("fast device version %d, expected deep into the schedule", fast.Version)
	}
	if fast.Opt.LR >= 0.1 {
		t.Fatalf("LR %v did not decay along the cosine schedule", fast.Opt.LR)
	}
}

func TestScheduleDoesNotBreakWarmup(t *testing.T) {
	spec := testSpec(t, 62)
	spec.LRSchedule = nn.ConstantLR(0.05)
	c, err := BuildCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	d := c.Devices[0]
	lrBefore := d.Opt.LR
	d.WarmupCtx(context.Background(), 1, 0.1)
	// After warm-up, the base LR is restored (the schedule takes over on
	// the next TrainStep, not during warm-up).
	if d.Opt.LR != lrBefore {
		t.Fatalf("warm-up did not restore LR: %v vs %v", d.Opt.LR, lrBefore)
	}
	d.TrainStep()
	if d.Opt.LR != 0.05 {
		t.Fatalf("schedule not applied after warm-up: LR %v", d.Opt.LR)
	}
}
