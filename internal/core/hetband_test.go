package core

import (
	"context"
	"testing"

	"hadfl/internal/p2p"
)

func TestHeterogeneousBandwidthSlowsRounds(t *testing.T) {
	run := func(links map[int]p2p.Link) float64 {
		c, err := BuildCluster(testSpec(t, 31))
		if err != nil {
			t.Fatal(err)
		}
		cfg := smallConfig()
		cfg.TargetEpochs = 6
		cfg.DeviceLinks = links
		res, err := RunHADFL(context.Background(), c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Series.Points[len(res.Series.Points)-1].Time
	}
	uniform := run(nil)
	// Every device on a drastically slower link: every ring all-reduce
	// and broadcast is gated by it, so total time grows. (A single slow
	// device only matters in rounds that select it, which a short run
	// may never do — all-slow makes the assertion deterministic.)
	slow := p2p.Link{Latency: 2.0, Bandwidth: 1e5}
	slowLinks := map[int]p2p.Link{0: slow, 1: slow, 2: slow, 3: slow}
	skewed := run(slowLinks)
	if skewed <= uniform {
		t.Fatalf("slow link total time %v should exceed uniform %v", skewed, uniform)
	}
}

func TestDeviceLinksDoNotChangeLearning(t *testing.T) {
	// Link heterogeneity reshapes the time axis only — the parameter
	// trajectory (per round) is identical because selection randomness
	// and training are independent of comm costs.
	runParams := func(links map[int]p2p.Link) []float64 {
		c, err := BuildCluster(testSpec(t, 32))
		if err != nil {
			t.Fatal(err)
		}
		cfg := smallConfig()
		cfg.TargetEpochs = 4
		cfg.DeviceLinks = links
		res, err := RunHADFL(context.Background(), c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalParams
	}
	a := runParams(nil)
	b := runParams(map[int]p2p.Link{2: {Latency: 1, Bandwidth: 1e6}})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parameter %d differs: link model must not affect learning", i)
		}
	}
}
