package core

import (
	"fmt"
	"math/rand"
	"sort"

	"hadfl/internal/aggregate"
	"hadfl/internal/metrics"
	"hadfl/internal/p2p"
	"hadfl/internal/predict"
	"hadfl/internal/strategy"
)

// GroupedConfig configures the multi-group HADFL of the paper's
// Fig. 2(a): devices are divided into groups "to facilitate management
// and avoid possible system errors"; intra-group partial aggregation
// runs every round, and every InterEvery rounds an inter-group
// synchronization aggregates representatives across groups. The
// inter-group period is thus an integer multiple of the intra-group
// period, as §III-C specifies.
type GroupedConfig struct {
	Base Config
	// GroupSize is the maximum devices per group.
	GroupSize int
	// InterEvery runs an inter-group sync every this many rounds.
	InterEvery int
	// IntraNp devices are selected per group each intra-group round.
	IntraNp int
}

// DefaultGroupedConfig groups 4-device federations into pairs with an
// inter-group sync every 2 rounds.
func DefaultGroupedConfig() GroupedConfig {
	return GroupedConfig{
		Base:       DefaultConfig(),
		GroupSize:  2,
		InterEvery: 2,
		IntraNp:    1,
	}
}

// RunHADFLGrouped executes hierarchical HADFL on the cluster.
func RunHADFLGrouped(c *Cluster, cfg GroupedConfig) (*Result, error) {
	if cfg.GroupSize < 1 {
		return nil, fmt.Errorf("core: GroupSize %d", cfg.GroupSize)
	}
	if cfg.InterEvery < 1 {
		return nil, fmt.Errorf("core: InterEvery %d", cfg.InterEvery)
	}
	if cfg.IntraNp < 1 || cfg.IntraNp > cfg.GroupSize {
		return nil, fmt.Errorf("core: IntraNp %d outside [1,%d]", cfg.IntraNp, cfg.GroupSize)
	}
	base := cfg.Base
	if base.Alpha <= 0 || base.Alpha >= 1 {
		return nil, fmt.Errorf("core: alpha %v", base.Alpha)
	}
	rng := rand.New(rand.NewSource(base.Seed + 31))
	commModel := p2p.CommModel{Link: base.Link}
	comm := NewCommStats()
	series := &metrics.Series{Name: "hadfl-grouped"}
	tracker := predict.NewTracker(base.Alpha)

	// Warm-up: measure per-device timing, align initial models.
	now := 0.0
	totalSteps := 0
	warmupEnd := 0.0
	for _, d := range c.Devices {
		calc := d.Warmup(base.WarmupEpochs, base.WarmupLRScale)
		totalSteps += base.WarmupEpochs * d.Loader.BatchesPerEpoch()
		if calc > warmupEnd {
			warmupEnd = calc
		}
		tracker.Seed(d.Cfg.ID, predict.ExpectedVersion(
			float64(base.Strategy.Tsync)*d.EpochTime(), calc, base.WarmupEpochs))
	}
	now = warmupEnd
	vecs := make([][]float64, len(c.Devices))
	for i, d := range c.Devices {
		vecs[i] = d.Parameters()
	}
	global := aggregate.Mean(vecs)
	for _, d := range c.Devices {
		d.SetParameters(global)
	}
	paramBytes := 8 * len(global)
	loss0, acc0 := c.Evaluate(global)
	series.Add(metrics.Point{Epoch: c.EpochsProcessed(totalSteps), Time: now, Loss: loss0, Accuracy: acc0})

	// Fixed grouping for the whole run (the paper regroups only on
	// membership changes).
	var ids []int
	for _, d := range c.Devices {
		ids = append(ids, d.Cfg.ID)
	}
	groups := strategy.Groups(rng, ids, cfg.GroupSize)

	// Per-group plan generation: each group has its own hyperperiod from
	// its members' epoch times; the global round period is the maximum
	// over groups so the timeline stays aligned.
	groupPlan := func(g []int) (strategy.Plan, error) {
		var ests []strategy.DeviceEstimate
		for _, id := range g {
			d := c.Device(id)
			v, ok := tracker.Forecast(id, 1)
			if !ok {
				v = 0
			}
			ests = append(ests, strategy.DeviceEstimate{
				ID: id, EpochTime: d.EpochTime(),
				StepTime: d.EpochTime() / float64(d.Loader.BatchesPerEpoch()),
				Version:  v,
			})
		}
		np := cfg.IntraNp
		if np > len(ests) {
			np = len(ests)
		}
		sc := base.Strategy
		sc.Np = np
		return strategy.Generate(rng, sc, ests)
	}

	round := 0
	for ; round < base.MaxRounds && c.EpochsProcessed(totalSteps) < base.TargetEpochs; round++ {
		plans := make([]strategy.Plan, len(groups))
		roundPeriod := 0.0
		for gi, g := range groups {
			p, err := groupPlan(g)
			if err != nil {
				return nil, err
			}
			plans[gi] = p
			if p.SyncPeriod > roundPeriod {
				roundPeriod = p.SyncPeriod
			}
		}

		// Local training fills the global round period on every device.
		roundLoss, lossCount := 0.0, 0
		for _, d := range c.Devices {
			elapsed, steps := 0.0, 0
			for steps == 0 || elapsed+d.StepTime() <= roundPeriod {
				l, e := d.TrainStep()
				elapsed += e
				steps++
				roundLoss += l
				lossCount++
				if steps > 100000 {
					return nil, fmt.Errorf("core: runaway local loop on device %d", d.Cfg.ID)
				}
			}
			totalSteps += steps
		}
		now += roundPeriod

		inter := strategy.GroupSchedule(round+1, cfg.InterEvery)
		if inter {
			// Inter-group sync (Fig. 2b): the freshest member of each
			// group forms a cross-group ring; the aggregate is broadcast
			// to every device.
			var reps []int
			for _, g := range groups {
				best, bestV := g[0], -1.0
				for _, id := range g {
					if v := float64(c.Device(id).Version); v > bestV {
						best, bestV = id, v
					}
				}
				reps = append(reps, best)
			}
			sort.Ints(reps)
			repVecs := make([][]float64, len(reps))
			for i, id := range reps {
				repVecs[i] = c.Device(id).Parameters()
			}
			agg := aggregate.Mean(repVecs)
			now += commModel.RingAllReduceTime(len(reps), paramBytes)
			if len(reps) > 1 {
				per := int64(2 * paramBytes * (len(reps) - 1) / len(reps))
				for _, id := range reps {
					comm.DeviceBytes[id] += per
				}
			}
			for _, d := range c.Devices {
				if containsInt(reps, d.Cfg.ID) {
					d.SetParameters(agg)
				} else {
					d.SetParameters(aggregate.Merge(d.Parameters(), agg, base.MergeBeta))
				}
			}
			if len(c.Devices) > len(reps) {
				sender := reps[rng.Intn(len(reps))]
				comm.DeviceBytes[sender] += int64((len(c.Devices) - len(reps)) * paramBytes)
				now += commModel.BroadcastTime(len(c.Devices)-len(reps), paramBytes)
			}
			global = agg
		} else {
			// Intra-group partial sync in every group independently; the
			// slowest group's communication gates the round clock.
			worstComm := 0.0
			for gi, g := range groups {
				p := plans[gi]
				sel := p.Selected
				if len(sel) == 0 {
					continue
				}
				selVecs := make([][]float64, len(sel))
				for i, id := range sel {
					selVecs[i] = c.Device(id).Parameters()
				}
				agg := aggregate.Mean(selVecs)
				ct := commModel.RingAllReduceTime(len(sel), paramBytes)
				if len(sel) > 1 {
					per := int64(2 * paramBytes * (len(sel) - 1) / len(sel))
					for _, id := range sel {
						comm.DeviceBytes[id] += per
					}
				}
				for _, id := range sel {
					c.Device(id).SetParameters(agg)
				}
				var unsel []int
				for _, id := range g {
					if !containsInt(sel, id) {
						unsel = append(unsel, id)
					}
				}
				if len(unsel) > 0 {
					sender := sel[rng.Intn(len(sel))]
					comm.DeviceBytes[sender] += int64(len(unsel) * paramBytes)
					ct += commModel.BroadcastTime(len(unsel), paramBytes)
					for _, id := range unsel {
						d := c.Device(id)
						d.SetParameters(aggregate.Merge(d.Parameters(), agg, base.MergeBeta))
					}
				}
				if ct > worstComm {
					worstComm = ct
				}
				global = agg // last group's aggregate stands in for eval between inter syncs
			}
			now += worstComm
		}
		comm.Rounds++

		for _, d := range c.Devices {
			tracker.Observe(d.Cfg.ID, float64(d.Version))
		}
		loss := loss0
		if lossCount > 0 {
			loss = roundLoss / float64(lossCount)
		}
		_, acc := c.Evaluate(global)
		series.Add(metrics.Point{Epoch: c.EpochsProcessed(totalSteps), Time: now, Loss: loss, Accuracy: acc})
	}
	return &Result{Series: series, Comm: comm, Rounds: round, FinalParams: global}, nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
