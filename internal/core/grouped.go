package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"hadfl/internal/aggregate"
	"hadfl/internal/device"
	"hadfl/internal/metrics"
	"hadfl/internal/p2p"
	"hadfl/internal/predict"
	"hadfl/internal/strategy"
)

// GroupedConfig configures the multi-group HADFL of the paper's
// Fig. 2(a): devices are divided into groups "to facilitate management
// and avoid possible system errors"; intra-group partial aggregation
// runs every round, and every InterEvery rounds an inter-group
// synchronization aggregates representatives across groups. The
// inter-group period is thus an integer multiple of the intra-group
// period, as §III-C specifies.
//
// The scheme-independent knobs (TargetEpochs, Seed, Parallelism,
// OnRound) live in Base's embedded RunConfig, so the registered
// "hadfl-grouped" scheme overlays the façade's shared RunConfig onto
// these defaults like every other scheme.
type GroupedConfig struct {
	Base Config
	// GroupSize is the maximum devices per group.
	GroupSize int
	// InterEvery runs an inter-group sync every this many rounds.
	InterEvery int
	// IntraNp devices are selected per group each intra-group round.
	IntraNp int
}

// DefaultGroupedConfig groups 4-device federations into pairs with an
// inter-group sync every 2 rounds.
func DefaultGroupedConfig() GroupedConfig {
	return GroupedConfig{
		Base:       DefaultConfig(),
		GroupSize:  2,
		InterEvery: 2,
		IntraNp:    1,
	}
}

// RunHADFLGrouped executes hierarchical HADFL on the cluster. ctx
// cancels the run cooperatively — checked at every round boundary and
// inside every device's step loop, so cancellation takes effect within
// one device step and returns ctx.Err(); the checks never alter an
// uncancelled run. Devices train concurrently up to
// Base.Parallelism (0 = GOMAXPROCS), with per-device partials joined
// in device order so curves are byte-identical at every setting.
func RunHADFLGrouped(ctx context.Context, c *Cluster, cfg GroupedConfig) (*Result, error) {
	// The embedded RunConfig carries the façade's hierarchy knobs (it
	// is the scheme-independent transport; Apply copied them into
	// Base). Resolve them onto this config's own fields here, next to
	// their only reader, so direct GroupedConfig users and the façade
	// path share one overlay rule: a set RunConfig knob wins, zero
	// keeps the explicit (or default) field.
	if cfg.Base.RunConfig.GroupSize > 0 {
		cfg.GroupSize = cfg.Base.RunConfig.GroupSize
	}
	if cfg.Base.RunConfig.InterEvery > 0 {
		cfg.InterEvery = cfg.Base.RunConfig.InterEvery
	}
	if cfg.GroupSize < 1 {
		return nil, fmt.Errorf("core: GroupSize %d", cfg.GroupSize)
	}
	if cfg.InterEvery < 1 {
		return nil, fmt.Errorf("core: InterEvery %d", cfg.InterEvery)
	}
	if cfg.IntraNp < 1 || cfg.IntraNp > cfg.GroupSize {
		return nil, fmt.Errorf("core: IntraNp %d outside [1,%d]", cfg.IntraNp, cfg.GroupSize)
	}
	base := cfg.Base
	if base.Alpha <= 0 || base.Alpha >= 1 {
		return nil, fmt.Errorf("core: alpha %v", base.Alpha)
	}
	rng := rand.New(rand.NewSource(base.Seed + 31))
	commModel := p2p.CommModel{Link: base.Link}
	comm := NewCommStats()
	series := &metrics.Series{Name: "hadfl-grouped"}
	tracker := predict.NewTracker(base.Alpha)

	// Warm-up: measure per-device timing, align initial models.
	now := 0.0
	totalSteps := 0
	warmupEnd := 0.0
	for _, d := range c.Devices {
		calc := d.WarmupCtx(ctx, base.WarmupEpochs, base.WarmupLRScale)
		if err := ctx.Err(); err != nil {
			return nil, err // partial warmup: abandon calc, surface the abort
		}
		totalSteps += base.WarmupEpochs * d.Loader.BatchesPerEpoch()
		if calc > warmupEnd {
			warmupEnd = calc
		}
		tracker.Seed(d.Cfg.ID, predict.ExpectedVersion(
			float64(base.Strategy.Tsync)*d.EpochTime(), calc, base.WarmupEpochs))
	}
	now = warmupEnd
	// Reused parameter plumbing: one gather buffer per device, one
	// aggregation target and one merge scratch for the whole run.
	pg := NewParamGather(len(c.InitParams))
	global := make([]float64, len(c.InitParams))
	aggregate.MeanInto(global, pg.CollectAll(c))
	for _, d := range c.Devices {
		d.SetParameters(global)
	}
	aggBuf := make([]float64, len(global))
	mergeBuf := make([]float64, len(global))
	paramBytes := 8 * len(global)
	loss0, acc0 := c.Evaluate(global)
	series.Add(metrics.Point{Epoch: c.EpochsProcessed(totalSteps), Time: now, Loss: loss0, Accuracy: acc0})

	// Fixed grouping for the whole run (the paper regroups only on
	// membership changes).
	var ids []int
	for _, d := range c.Devices {
		ids = append(ids, d.Cfg.ID)
	}
	groups := strategy.Groups(rng, ids, cfg.GroupSize)

	// Per-group plan generation: each group has its own hyperperiod from
	// its members' epoch times; the global round period is the maximum
	// over groups so the timeline stays aligned.
	groupPlan := func(g []int) (strategy.Plan, error) {
		var ests []strategy.DeviceEstimate
		for _, id := range g {
			d := c.Device(id)
			v, ok := tracker.Forecast(id, 1)
			if !ok {
				v = 0
			}
			ests = append(ests, strategy.DeviceEstimate{
				ID: id, EpochTime: d.EpochTime(),
				StepTime: d.EpochTime() / float64(d.Loader.BatchesPerEpoch()),
				Version:  v,
			})
		}
		np := cfg.IntraNp
		if np > len(ests) {
			np = len(ests)
		}
		sc := base.Strategy
		sc.Np = np
		return strategy.Generate(rng, sc, ests)
	}

	par := ResolveParallelism(base.Parallelism)
	partials := make([]groupedDevResult, len(c.Devices))
	round := 0
	for ; round < base.MaxRounds && c.EpochsProcessed(totalSteps) < base.TargetEpochs; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		plans := make([]strategy.Plan, len(groups))
		roundPeriod := 0.0
		for gi, g := range groups {
			p, err := groupPlan(g)
			if err != nil {
				return nil, err
			}
			plans[gi] = p
			if p.SyncPeriod > roundPeriod {
				roundPeriod = p.SyncPeriod
			}
		}

		// Local training fills the global round period on every device,
		// concurrently up to par; partials join in device order so the
		// loss curve is byte-identical to the sequential schedule.
		trainOne := func(i int) {
			partials[i] = trainGroupedDevice(ctx, c.Devices[i], roundPeriod)
		}
		if par > 1 && len(c.Devices) > 1 {
			RunConcurrent(len(c.Devices), par, trainOne)
		} else {
			for i := range c.Devices {
				trainOne(i)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		roundLoss, lossCount := 0.0, 0
		for i, d := range c.Devices {
			if partials[i].runaway {
				return nil, fmt.Errorf("core: runaway local loop on device %d", d.Cfg.ID)
			}
			roundLoss += partials[i].lossSum
			lossCount += partials[i].steps
			totalSteps += partials[i].steps
		}
		now += roundPeriod

		inter := strategy.GroupSchedule(round+1, cfg.InterEvery)
		var reps []int
		if inter {
			// Inter-group sync (Fig. 2b): the freshest member of each
			// group forms a cross-group ring; the aggregate is broadcast
			// to every device.
			for _, g := range groups {
				best, bestV := g[0], -1.0
				for _, id := range g {
					if v := float64(c.Device(id).Version); v > bestV {
						best, bestV = id, v
					}
				}
				reps = append(reps, best)
			}
			sort.Ints(reps)
			agg := aggBuf
			aggregate.MeanInto(agg, pg.Collect(c, reps))
			now += commModel.RingAllReduceTime(len(reps), paramBytes)
			if len(reps) > 1 {
				per := int64(2 * paramBytes * (len(reps) - 1) / len(reps))
				for _, id := range reps {
					comm.DeviceBytes[id] += per
				}
			}
			for _, d := range c.Devices {
				if contains(reps, d.Cfg.ID) {
					d.SetParameters(agg)
				} else {
					d.ParametersInto(mergeBuf)
					aggregate.MergeInto(mergeBuf, mergeBuf, agg, base.MergeBeta)
					d.SetParameters(mergeBuf)
				}
			}
			if len(c.Devices) > len(reps) {
				sender := reps[rng.Intn(len(reps))]
				comm.DeviceBytes[sender] += int64((len(c.Devices) - len(reps)) * paramBytes)
				now += commModel.BroadcastTime(len(c.Devices)-len(reps), paramBytes)
			}
			copy(global, agg)
		} else {
			// Intra-group partial sync in every group independently; the
			// slowest group's communication gates the round clock.
			worstComm := 0.0
			for gi, g := range groups {
				p := plans[gi]
				sel := p.Selected
				if len(sel) == 0 {
					continue
				}
				agg := aggBuf
				aggregate.MeanInto(agg, pg.Collect(c, sel))
				ct := commModel.RingAllReduceTime(len(sel), paramBytes)
				if len(sel) > 1 {
					per := int64(2 * paramBytes * (len(sel) - 1) / len(sel))
					for _, id := range sel {
						comm.DeviceBytes[id] += per
					}
				}
				for _, id := range sel {
					c.Device(id).SetParameters(agg)
				}
				var unsel []int
				for _, id := range g {
					if !contains(sel, id) {
						unsel = append(unsel, id)
					}
				}
				if len(unsel) > 0 {
					sender := sel[rng.Intn(len(sel))]
					comm.DeviceBytes[sender] += int64(len(unsel) * paramBytes)
					ct += commModel.BroadcastTime(len(unsel), paramBytes)
					for _, id := range unsel {
						d := c.Device(id)
						d.ParametersInto(mergeBuf)
						aggregate.MergeInto(mergeBuf, mergeBuf, agg, base.MergeBeta)
						d.SetParameters(mergeBuf)
					}
				}
				if ct > worstComm {
					worstComm = ct
				}
				copy(global, agg) // last group's aggregate stands in for eval between inter syncs
			}
			now += worstComm
		}
		comm.Rounds++

		for _, d := range c.Devices {
			tracker.Observe(d.Cfg.ID, float64(d.Version))
		}
		loss := loss0
		if lossCount > 0 {
			loss = roundLoss / float64(lossCount)
		}
		_, acc := c.Evaluate(global)
		series.Add(metrics.Point{Epoch: c.EpochsProcessed(totalSteps), Time: now, Loss: loss, Accuracy: acc})
		if base.OnRound != nil {
			base.OnRound(RoundInfo{
				Round:    round,
				Time:     now,
				Selected: reps, // inter-group ring members; nil on intra rounds
				Loss:     loss,
				Accuracy: acc,
			})
		}
	}
	return &Result{Series: series, Comm: comm, Rounds: round, FinalParams: global}, nil
}

// groupedDevResult carries one device's local-training partials out of
// the (possibly concurrent) grouped training phase; joining them in
// device order keeps the reduction independent of scheduling.
type groupedDevResult struct {
	steps   int
	lossSum float64
	runaway bool
}

// trainGroupedDevice fills the round period with local steps on d. It
// touches only device-owned state, so distinct devices may run
// concurrently. A canceled ctx stops the loop early; the caller then
// abandons the partials and returns ctx.Err().
func trainGroupedDevice(ctx context.Context, d *device.Device, roundPeriod float64) groupedDevResult {
	var r groupedDevResult
	elapsed := 0.0
	for r.steps == 0 || elapsed+d.StepTime() <= roundPeriod {
		if ctx.Err() != nil {
			return r
		}
		l, e := d.TrainStep()
		elapsed += e
		r.steps++
		r.lossSum += l
		if r.steps > 100000 {
			r.runaway = true
			return r
		}
	}
	return r
}
