package core

import "hadfl/internal/device"

// ParamGather owns one reusable flat gather buffer per device, so the
// round loops (ring aggregation, warm-up alignment, full-population
// averages) stop allocating fresh Parameters() vectors every round.
// The returned slices are owned by the gatherer and valid until its
// next Collect/CollectAll call; aggregation consumes them immediately
// (aggregate.MeanInto), which every runner does.
type ParamGather struct {
	n   int
	buf map[int][]float64
	sel [][]float64
}

// NewParamGather returns a gatherer for n-parameter models.
func NewParamGather(n int) *ParamGather {
	return &ParamGather{n: n, buf: make(map[int][]float64)}
}

// Collect fills one buffer per id with that device's current
// parameters, in id order, and returns them.
func (g *ParamGather) Collect(c *Cluster, ids []int) [][]float64 {
	g.sel = g.sel[:0]
	for _, id := range ids {
		g.sel = append(g.sel, g.gather(c.Device(id)))
	}
	return g.sel
}

// CollectAll gathers every device in cluster order.
func (g *ParamGather) CollectAll(c *Cluster) [][]float64 {
	g.sel = g.sel[:0]
	for _, d := range c.Devices {
		g.sel = append(g.sel, g.gather(d))
	}
	return g.sel
}

func (g *ParamGather) gather(d *device.Device) []float64 {
	b := g.buf[d.Cfg.ID]
	if b == nil {
		b = make([]float64, g.n)
		g.buf[d.Cfg.ID] = b
	}
	return d.ParametersInto(b)
}
