package core

import (
	"context"
	"testing"
)

func TestGroupedHADFLConverges(t *testing.T) {
	c, err := BuildCluster(testSpec(t, 21))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGroupedConfig()
	cfg.Base.TargetEpochs = 12
	cfg.Base.MaxRounds = 300
	res, err := RunHADFLGrouped(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.Series.MaxAccuracy()
	if best.Accuracy < 0.6 {
		t.Fatalf("grouped HADFL reached only %.2f", best.Accuracy)
	}
	if res.Rounds == 0 || res.Comm.Rounds == 0 {
		t.Fatal("no rounds ran")
	}
	// Time strictly increases.
	pts := res.Series.Points
	for i := 1; i < len(pts); i++ {
		if pts[i].Time <= pts[i-1].Time {
			t.Fatalf("time not increasing at point %d", i)
		}
	}
}

func TestGroupedHADFLEightDevices(t *testing.T) {
	spec := testSpec(t, 22)
	spec.Powers = []float64{4, 4, 3, 2, 2, 2, 1, 1}
	c, err := BuildCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGroupedConfig()
	cfg.GroupSize = 3
	cfg.InterEvery = 3
	cfg.Base.TargetEpochs = 10
	res, err := RunHADFLGrouped(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.Series.MaxAccuracy()
	if best.Accuracy < 0.5 {
		t.Fatalf("8-device grouped run reached only %.2f", best.Accuracy)
	}
}

func TestGroupedHADFLInterGroupMixesKnowledge(t *testing.T) {
	// After an inter-group round every device holds (or has merged) the
	// cross-group aggregate, so the spread across devices shrinks.
	c, err := BuildCluster(testSpec(t, 23))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGroupedConfig()
	cfg.Base.TargetEpochs = 6
	cfg.Base.MergeBeta = 1 // unselected devices adopt the aggregate outright
	cfg.InterEvery = 1     // every round is inter-group
	res, err := RunHADFLGrouped(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// With InterEvery=1 and MergeBeta=1, after the final round every
	// device ends on the same parameters.
	p0 := c.Devices[0].Parameters()
	for i, d := range c.Devices[1:] {
		p := d.Parameters()
		for j := range p {
			if p[j] != p0[j] {
				t.Fatalf("device %d differs after inter-group sync", i+1)
			}
		}
	}
}

func TestGroupedHADFLValidation(t *testing.T) {
	c, err := BuildCluster(testSpec(t, 24))
	if err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*GroupedConfig){
		func(g *GroupedConfig) { g.GroupSize = 0 },
		func(g *GroupedConfig) { g.InterEvery = 0 },
		func(g *GroupedConfig) { g.IntraNp = 0 },
		func(g *GroupedConfig) { g.IntraNp = 99 },
		func(g *GroupedConfig) { g.Base.Alpha = 0 },
	} {
		cfg := DefaultGroupedConfig()
		mut(&cfg)
		if _, err := RunHADFLGrouped(context.Background(), c, cfg); err == nil {
			t.Errorf("invalid grouped config accepted")
		}
	}
}
