package core

import (
	"context"
	"math/rand"
	"testing"

	"hadfl/internal/dataset"
	"hadfl/internal/nn"
	"hadfl/internal/strategy"
)

// testSpec builds a small, fast federation: 4 devices with power
// [4,2,2,1] training an MLP on a 10-class synthetic task.
func testSpec(t *testing.T, seed int64) ClusterSpec {
	t.Helper()
	full := dataset.Synthetic(dataset.SyntheticConfig{
		Samples: 1200, Features: 16, Classes: 5, ModesPerClass: 2, NoiseStd: 0.4, Seed: seed,
	})
	train, test := full.Split(1000)
	return ClusterSpec{
		Powers:       []float64{4, 2, 2, 1},
		BaseStepTime: 1,
		Arch: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, 16, []int{24}, 5)
		},
		Train: train, Test: test,
		BatchSize: 20,
		LR:        0.1, Momentum: 0.9,
		Seed: seed,
	}
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.TargetEpochs = 12
	cfg.MaxRounds = 200
	return cfg
}

func TestBuildClusterSharedInit(t *testing.T) {
	c, err := BuildCluster(testSpec(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Devices) != 4 {
		t.Fatalf("%d devices", len(c.Devices))
	}
	p0 := c.Devices[0].Parameters()
	for i, d := range c.Devices {
		p := d.Parameters()
		for j := range p {
			if p[j] != p0[j] {
				t.Fatalf("device %d parameter %d differs at init", i, j)
			}
		}
	}
	if c.TrainSamples != 1000 {
		t.Fatalf("TrainSamples = %d", c.TrainSamples)
	}
}

func TestBuildClusterValidation(t *testing.T) {
	spec := testSpec(t, 1)
	for _, mut := range []func(*ClusterSpec){
		func(s *ClusterSpec) { s.Powers = nil },
		func(s *ClusterSpec) { s.Arch = nil },
		func(s *ClusterSpec) { s.BatchSize = 0 },
		func(s *ClusterSpec) { s.BaseStepTime = 0 },
		func(s *ClusterSpec) { s.Powers = []float64{1, -1} },
	} {
		s := spec
		mut(&s)
		if _, err := BuildCluster(s); err == nil {
			t.Errorf("mutated spec accepted: %+v", s)
		}
	}
}

func TestEpochsProcessed(t *testing.T) {
	c, err := BuildCluster(testSpec(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	// 50 steps × batch 20 = 1000 samples = 1 epoch of the 1000-sample set.
	if got := c.EpochsProcessed(50); got != 1 {
		t.Fatalf("EpochsProcessed = %v", got)
	}
}

func TestRunHADFLConverges(t *testing.T) {
	c, err := BuildCluster(testSpec(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunHADFL(context.Background(), c, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 {
		t.Fatal("no rounds ran")
	}
	if res.Series.Len() < 2 {
		t.Fatalf("series has %d points", res.Series.Len())
	}
	best, _ := res.Series.MaxAccuracy()
	if best.Accuracy < 0.7 {
		t.Fatalf("HADFL reached only %.2f accuracy", best.Accuracy)
	}
	// Time strictly increases.
	pts := res.Series.Points
	for i := 1; i < len(pts); i++ {
		if pts[i].Time <= pts[i-1].Time {
			t.Fatalf("time not increasing at %d: %v → %v", i, pts[i-1].Time, pts[i].Time)
		}
		if pts[i].Epoch < pts[i-1].Epoch {
			t.Fatalf("epochs decreased at %d", i)
		}
	}
	if len(res.FinalParams) == 0 {
		t.Fatal("no final params")
	}
}

func TestRunHADFLDeterministic(t *testing.T) {
	run := func() []float64 {
		c, err := BuildCluster(testSpec(t, 7))
		if err != nil {
			t.Fatal(err)
		}
		cfg := smallConfig()
		cfg.TargetEpochs = 4
		res, err := RunHADFL(context.Background(), c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalParams
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at param %d", i)
		}
	}
}

func TestRunHADFLCommVolume(t *testing.T) {
	c, err := BuildCluster(testSpec(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.TargetEpochs = 6
	res, err := RunHADFL(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Rounds == 0 {
		t.Fatal("no comm rounds")
	}
	// The paper's claim: total device volume per round ≈ 2·K'·M where K'
	// counts ring members (each ring member moves ~2M) plus the
	// broadcast M per unselected device; and the server moves nothing.
	if res.Comm.ServerBytes != 0 {
		t.Fatalf("HADFL server bytes %d, want 0", res.Comm.ServerBytes)
	}
	M := int64(8 * len(c.InitParams))
	perRound := res.Comm.TotalDeviceBytes() / int64(res.Comm.Rounds)
	k := int64(len(c.Devices))
	if perRound <= 0 || perRound > 2*k*M+1 {
		t.Fatalf("per-round device bytes %d exceed 2KM = %d", perRound, 2*k*M)
	}
}

func TestRunHADFLWithDeviceFailure(t *testing.T) {
	spec := testSpec(t, 3)
	spec.FailAt = map[int]float64{1: 30} // device 1 dies at t=30
	c, err := BuildCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.TargetEpochs = 10
	res, err := RunHADFL(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.Series.MaxAccuracy()
	if best.Accuracy < 0.6 {
		t.Fatalf("training with failure reached only %.2f", best.Accuracy)
	}
	// The dead device stops accumulating compute after t=30.
	dead := c.Device(1)
	if dead.AliveAt(31) {
		t.Fatal("device 1 should be dead at t=31")
	}
}

func TestRunHADFLAllDevicesFailStopsGracefully(t *testing.T) {
	spec := testSpec(t, 4)
	spec.FailAt = map[int]float64{0: 20, 1: 20, 2: 20, 3: 20}
	c, err := BuildCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.TargetEpochs = 100
	res, err := RunHADFL(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Series.Len() == 0 {
		t.Fatal("no points recorded before universal failure")
	}
}

func TestRunHADFLSelectOverride(t *testing.T) {
	c, err := BuildCluster(testSpec(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.TargetEpochs = 4
	var sawOverride bool
	cfg.SelectOverride = func(rng *rand.Rand, alive []int, versions map[int]float64, np int) []int {
		sawOverride = true
		// Worst-case ablation shape: pick the two lowest-version devices.
		return lowestVersions(alive, versions, np)
	}
	res, err := RunHADFL(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sawOverride {
		t.Fatal("SelectOverride never called")
	}
	if res.Rounds == 0 {
		t.Fatal("no rounds")
	}
}

// lowestVersions picks the np alive devices with the smallest versions.
func lowestVersions(alive []int, versions map[int]float64, np int) []int {
	out := append([]int(nil), alive...)
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if versions[out[j]] < versions[out[i]] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	if len(out) > np {
		out = out[:np]
	}
	return out
}

func TestRunHADFLConfigValidation(t *testing.T) {
	c, err := BuildCluster(testSpec(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*Config){
		func(cfg *Config) { cfg.Alpha = 0 },
		func(cfg *Config) { cfg.Alpha = 1 },
		func(cfg *Config) { cfg.WarmupEpochs = 0 },
		func(cfg *Config) { cfg.MergeBeta = 2 },
		func(cfg *Config) { cfg.Strategy = strategy.Config{Tsync: 0, Np: 2} },
		func(cfg *Config) { cfg.Strategy = strategy.Config{Tsync: 1, Np: 99} },
	} {
		cfg := smallConfig()
		mut(&cfg)
		if _, err := RunHADFL(context.Background(), c, cfg); err == nil {
			t.Errorf("invalid config accepted: %+v", cfg)
		}
	}
}

func TestEvaluateMatchesModelAccuracy(t *testing.T) {
	c, err := BuildCluster(testSpec(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	loss, acc := c.Evaluate(c.InitParams)
	if loss <= 0 {
		t.Fatalf("loss %v", loss)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v", acc)
	}
}
