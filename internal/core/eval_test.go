package core

import (
	"math"
	"math/rand"
	"testing"

	"hadfl/internal/nn"
	"hadfl/internal/tensor"
)

// countingLayer is a pass-through layer that counts how many input rows
// flow through Forward, so tests can pin how much forward work an
// evaluation performs.
type countingLayer struct {
	rows *int
}

func (l countingLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	*l.rows += x.Dim(0)
	return x
}
func (l countingLayer) Backward(grad *tensor.Tensor) *tensor.Tensor { return grad }
func (l countingLayer) Params() []*tensor.Tensor                    { return nil }
func (l countingLayer) Grads() []*tensor.Tensor                     { return nil }

// TestEvaluateSingleForward pins the fix for the double-forward bug:
// Cluster.Evaluate must push every test sample through the network
// exactly once per call — the loss and the accuracy both come from the
// same logits. (The pre-fix implementation ran the whole forward a
// second time inside Model.Accuracy, doubling evaluation cost.)
func TestEvaluateSingleForward(t *testing.T) {
	prev := tensor.Parallelism()
	tensor.SetParallelism(1) // serialize scoring so the row counter needs no lock
	defer tensor.SetParallelism(prev)

	spec := testSpec(t, 97)
	rows := 0
	baseArch := spec.Arch
	spec.Arch = func(rng *rand.Rand) *nn.Model {
		m := baseArch(rng)
		return nn.NewModel(m.Name, append([]nn.Layer{countingLayer{rows: &rows}}, m.Layers...)...)
	}
	c, err := BuildCluster(spec)
	if err != nil {
		t.Fatal(err)
	}

	testN := spec.Test.Len()
	rows = 0 // discard rows counted during cluster construction/warm-up
	loss, acc := c.Evaluate(c.InitParams)
	if rows != testN {
		t.Fatalf("Evaluate forwarded %d rows for a %d-sample test set, want exactly one pass", rows, testN)
	}

	// The single-pass result must match the naive two-pass reference.
	ref := baseArch(rand.New(rand.NewSource(99)))
	ref.SetParameters(c.InitParams)
	logits := ref.Forward(spec.Test.X, false)
	refLoss, _ := nn.SoftmaxCrossEntropy(logits, spec.Test.Y)
	refAcc := ref.Accuracy(spec.Test.X, spec.Test.Y)
	if math.Float64bits(acc) != math.Float64bits(refAcc) {
		t.Fatalf("accuracy %v differs from two-pass reference %v", acc, refAcc)
	}
	if math.Abs(loss-refLoss) > 1e-12*math.Max(1, math.Abs(refLoss)) {
		t.Fatalf("loss %v differs from two-pass reference %v", loss, refLoss)
	}
}

// TestEvaluateDeterministic pins that repeated evaluations of the same
// parameter vector return byte-identical results (the engine reuses
// buffers; reuse must never leak state between calls).
func TestEvaluateDeterministic(t *testing.T) {
	c, err := BuildCluster(testSpec(t, 98))
	if err != nil {
		t.Fatal(err)
	}
	l1, a1 := c.Evaluate(c.InitParams)
	l2, a2 := c.Evaluate(c.InitParams)
	if math.Float64bits(l1) != math.Float64bits(l2) || math.Float64bits(a1) != math.Float64bits(a2) {
		t.Fatalf("repeated Evaluate differs: (%v,%v) vs (%v,%v)", l1, a1, l2, a2)
	}
}
