package core

// RunConfig is the scheme-independent slice of a training run's
// configuration — the fields every scheme (HADFL, the synchronous
// baselines, asyncfl) interprets the same way. Scheme configs embed it,
// so the façade assembles one RunConfig per run and overlays it onto
// each scheme's defaults with Apply.
type RunConfig struct {
	// TargetEpochs stops the run once this many dataset epochs have
	// been processed across devices.
	TargetEpochs float64
	// Seed drives every random choice in the run (selection, rings,
	// data order); runs are deterministic given their seed.
	Seed int64
	// Parallelism bounds how many simulated devices train concurrently
	// inside each synchronization phase (0 = GOMAXPROCS, 1 =
	// sequential). It is a throughput knob only: per-device partials
	// join in a deterministic device order, so results are
	// byte-identical at every setting.
	Parallelism int
	// LocalSteps is the fixed per-round local-step budget E for the
	// schemes that use one (decentralized-fedavg pushes after E steps,
	// asyncfl pushes to the server after E steps). 0 means the scheme's
	// default; hadfl and distributed ignore it (HADFL derives local
	// steps from device power, distributed always runs one step per
	// iteration).
	LocalSteps int
	// GroupSize and InterEvery shape the hierarchical grouped scheme
	// (hadfl-grouped): the maximum devices per group and the inter-group
	// sync period in intra-group rounds. 0 means the scheme's default
	// (2 and 2); the non-hierarchical schemes ignore both. Unlike
	// Parallelism these change the result, so the façade includes them
	// in Canonical/Fingerprint.
	GroupSize  int
	InterEvery int
	// OnRound, when non-nil, receives telemetry after every
	// synchronization round (HADFL), gossip round (fedavg), evaluation
	// interval (distributed) or EvalEvery server updates (asyncfl). It
	// observes the run but never changes its outcome.
	OnRound func(RoundInfo)
}

// Apply overlays the set fields of o onto c: zero values in o keep c's
// (usually default) value. This is how scheme implementations merge the
// façade's shared RunConfig into their Default*Config.
func (c *RunConfig) Apply(o RunConfig) {
	if o.TargetEpochs > 0 {
		c.TargetEpochs = o.TargetEpochs
	}
	if o.Seed != 0 {
		c.Seed = o.Seed
	}
	if o.Parallelism != 0 {
		c.Parallelism = o.Parallelism
	}
	if o.LocalSteps > 0 {
		c.LocalSteps = o.LocalSteps
	}
	if o.GroupSize > 0 {
		c.GroupSize = o.GroupSize
	}
	if o.InterEvery > 0 {
		c.InterEvery = o.InterEvery
	}
	if o.OnRound != nil {
		c.OnRound = o.OnRound
	}
}
