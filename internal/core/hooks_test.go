package core

import (
	"context"
	"testing"
)

func TestOnRoundHookFires(t *testing.T) {
	c, err := BuildCluster(testSpec(t, 71))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.TargetEpochs = 6
	var infos []RoundInfo
	cfg.OnRound = func(ri RoundInfo) { infos = append(infos, ri) }
	res, err := RunHADFL(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != res.Rounds {
		t.Fatalf("%d hook calls for %d rounds", len(infos), res.Rounds)
	}
	prevTime := 0.0
	for i, ri := range infos {
		if ri.Round != i {
			t.Fatalf("round numbering: got %d at position %d", ri.Round, i)
		}
		if ri.Time <= prevTime {
			t.Fatalf("round %d time %v not increasing", i, ri.Time)
		}
		prevTime = ri.Time
		if len(ri.Selected) == 0 || len(ri.Selected) > 2 {
			t.Fatalf("round %d selected %v (Np=2)", i, ri.Selected)
		}
		if ri.Accuracy < 0 || ri.Accuracy > 1 {
			t.Fatalf("round %d accuracy %v", i, ri.Accuracy)
		}
		if len(ri.LocalSteps) != 4 {
			t.Fatalf("round %d LocalSteps %v", i, ri.LocalSteps)
		}
	}
}

func TestOnRoundReportsBypass(t *testing.T) {
	spec := testSpec(t, 72)
	spec.FailAt = map[int]float64{0: 25, 1: 25, 2: 25} // most devices die early
	c, err := BuildCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.TargetEpochs = 20
	sawBypass := false
	cfg.OnRound = func(ri RoundInfo) {
		if ri.Bypassed > 0 {
			sawBypass = true
		}
	}
	if _, err := RunHADFL(context.Background(), c, cfg); err != nil {
		t.Fatal(err)
	}
	if !sawBypass {
		t.Log("no bypass observed (dead devices were never selected) — acceptable but unusual")
	}
}
