package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"hadfl/internal/aggregate"
	"hadfl/internal/coordinator"
	"hadfl/internal/metrics"
	"hadfl/internal/p2p"
	"hadfl/internal/strategy"
)

// Config tunes a HADFL training run. The scheme-independent knobs
// (TargetEpochs, Seed, Parallelism, OnRound) live in the embedded
// RunConfig shared with the baseline schemes.
type Config struct {
	RunConfig
	// Strategy holds Tsync, Np and the Eq. 8 selection parameters.
	Strategy strategy.Config
	// Alpha is the Eq. 7 smoothing factor (0 < α < 1).
	Alpha float64
	// WarmupEpochs is the mutual-negotiation length; WarmupLRScale the
	// reduced learning-rate factor during it.
	WarmupEpochs  int
	WarmupLRScale float64
	// MergeBeta is how strongly unselected devices adopt the broadcast
	// aggregate (1 = replace local model; paper §III-D "integrate").
	MergeBeta float64
	// Link models the p2p network for communication-time charging.
	Link p2p.Link
	// DeviceLinks optionally overrides the link per device (the paper's
	// future-work axis "heterogeneous network bandwidth"): a ring
	// all-reduce is gated by its slowest member's link, and a broadcast
	// by the sender's.
	DeviceLinks map[int]p2p.Link
	// MaxRounds is a hard cap on synchronization rounds.
	MaxRounds int
	// FaultPenalty is the virtual seconds added to a sync round for each
	// bypassed dead device (timeout + handshake of §III-D).
	FaultPenalty float64
	// SelectOverride, when non-nil, replaces the plan's probability-based
	// selection — used by the worst-case and selection ablations. It
	// receives the alive device ids (sorted) and their current versions.
	SelectOverride func(rng *rand.Rand, alive []int, versions map[int]float64, np int) []int
	// LivenessTimeout is how stale a heartbeat may be before a device is
	// excluded from planning (virtual seconds).
	LivenessTimeout float64
}

// RoundInfo is per-round telemetry delivered to Config.OnRound.
type RoundInfo struct {
	Round      int
	Time       float64 // virtual time at round end
	Selected   []int   // ring members that actually aggregated
	Bypassed   int     // selected devices found dead and bypassed
	LocalSteps map[int]int
	Loss       float64
	Accuracy   float64
}

// DefaultConfig returns the configuration used by the paper-profile
// experiments: Tsync=1, Np=2 of 4 devices, α=0.5, full model adoption on
// broadcast.
func DefaultConfig() Config {
	return Config{
		RunConfig:       RunConfig{TargetEpochs: 60, Seed: 1},
		Strategy:        strategy.Config{Tsync: 1, Np: 2},
		Alpha:           0.5,
		WarmupEpochs:    1,
		WarmupLRScale:   0.1,
		MergeBeta:       1,
		Link:            p2p.Link{Latency: 0.005, Bandwidth: 1e9},
		MaxRounds:       10000,
		FaultPenalty:    0.3,
		LivenessTimeout: 1e18,
	}
}

// Result bundles a run's training curve and communication accounting.
type Result struct {
	Series *metrics.Series
	Comm   *CommStats
	Rounds int
	// FinalParams is the last aggregated model.
	FinalParams []float64
}

// RunHADFL executes Algorithm 1 on the cluster and returns the training
// curve (one point per synchronization round). ctx cancels the run
// cooperatively: it is checked at every round boundary and inside every
// device's local-step loop, so cancellation takes effect within one
// device step and returns ctx.Err(). The checks never alter the
// computation of an uncancelled run, preserving byte-determinism.
func RunHADFL(ctx context.Context, c *Cluster, cfg Config) (*Result, error) {
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 {
		return nil, fmt.Errorf("core: alpha %v outside (0,1)", cfg.Alpha)
	}
	if cfg.WarmupEpochs < 1 {
		return nil, fmt.Errorf("core: WarmupEpochs %d", cfg.WarmupEpochs)
	}
	if cfg.MergeBeta < 0 || cfg.MergeBeta > 1 {
		return nil, fmt.Errorf("core: MergeBeta %v", cfg.MergeBeta)
	}
	if err := cfg.Strategy.Validate(len(c.Devices)); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	coord := coordinator.New(cfg.Strategy, cfg.Alpha, 8, rng)
	comm := NewCommStats()
	series := &metrics.Series{Name: "hadfl"}
	// linkFor resolves a device's link; worstModel returns a comm model
	// gated by the slowest link among the given devices (heterogeneous
	// bandwidth support).
	linkFor := func(id int) p2p.Link {
		if l, ok := cfg.DeviceLinks[id]; ok {
			return l
		}
		return cfg.Link
	}
	worstModel := func(ids []int) p2p.CommModel {
		worst := cfg.Link
		seen := false
		for _, id := range ids {
			l := linkFor(id)
			if !seen || l.TransferTime(1<<20) > worst.TransferTime(1<<20) {
				worst, seen = l, true
			}
		}
		return p2p.CommModel{Link: worst}
	}
	// --- Mutual-negotiation phase (workflow steps 2–3). Devices warm up
	// in parallel; virtual time advances by the slowest warm-up.
	now := 0.0
	warmupEnd := 0.0
	totalSteps := 0
	for _, d := range c.Devices {
		calc := d.WarmupCtx(ctx, cfg.WarmupEpochs, cfg.WarmupLRScale)
		if err := ctx.Err(); err != nil {
			return nil, err // partial warmup: abandon calc, surface the abort
		}
		totalSteps += cfg.WarmupEpochs * d.Loader.BatchesPerEpoch()
		if calc > warmupEnd {
			warmupEnd = calc
		}
		err := coord.RegisterProfile(coordinator.DeviceProfile{
			ID:           d.Cfg.ID,
			EpochTime:    d.EpochTime(),
			StepTime:     d.EpochTime() / float64(d.Loader.BatchesPerEpoch()),
			WarmupTime:   calc,
			WarmupEpochs: cfg.WarmupEpochs,
		}, now)
		if err != nil {
			return nil, err
		}
	}
	now = warmupEnd

	// Devices synchronize the initial model after warm-up (Alg. 1 line 1):
	// average the warm-up models so everyone starts aligned. The
	// gatherer and the aggregation/merge buffers are reused every
	// round, so the round loop allocates no fresh parameter vectors.
	pg := NewParamGather(len(c.InitParams))
	global := make([]float64, len(c.InitParams))
	aggregate.MeanInto(global, pg.CollectAll(c))
	for _, d := range c.Devices {
		d.SetParameters(global)
	}
	aggBuf := make([]float64, len(global))
	mergeBuf := make([]float64, len(global))
	paramBytes := 8 * len(global)

	loss0, acc0 := c.Evaluate(global)
	series.Add(metrics.Point{Epoch: c.EpochsProcessed(totalSteps), Time: now, Loss: loss0, Accuracy: acc0})

	// --- Round loop (workflow steps 4–8).
	round := 0
	for ; round < cfg.MaxRounds && c.EpochsProcessed(totalSteps) < cfg.TargetEpochs; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Heartbeats from devices alive now.
		for _, d := range c.Devices {
			if d.AliveAt(now) {
				coord.Liveness.Heartbeat(d.Cfg.ID, now)
			} else {
				coord.Liveness.MarkDead(d.Cfg.ID)
			}
		}
		plan, avail, err := coord.NextPlan(now, cfg.LivenessTimeout)
		if err != nil {
			break // no devices left
		}

		// Local training: each available device fills the sync period
		// with local steps (Alg. 1 lines 13–19). Devices run at least
		// one step; jitter and drift shift the realized counts, which is
		// what the predictor has to track. Devices are independent
		// between syncs, so they train concurrently (bounded by
		// cfg.Parallelism); per-device partials join in avail order so
		// the curve is byte-identical to the sequential schedule.
		roundLoss := 0.0
		lossCount := 0
		results := trainDevices(ctx, c, avail, plan, ResolveParallelism(cfg.Parallelism))
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, r := range results {
			roundLoss += r.lossSum
			lossCount += r.steps
			totalSteps += r.steps
		}
		now += plan.SyncPeriod

		// Determine who is still alive at the sync instant; dead ring
		// members are bypassed (§III-D) at a time penalty.
		aliveSet := map[int]bool{}
		for _, id := range c.AliveAt(now) {
			aliveSet[id] = true
		}
		selected := plan.Selected
		if cfg.SelectOverride != nil {
			versions := map[int]float64{}
			var aliveIDs []int
			for _, id := range avail {
				if aliveSet[id] {
					aliveIDs = append(aliveIDs, id)
					versions[id] = float64(c.Device(id).Version)
				}
			}
			sort.Ints(aliveIDs)
			if len(aliveIDs) > 0 {
				np := cfg.Strategy.Np
				if np > len(aliveIDs) {
					np = len(aliveIDs)
				}
				selected = cfg.SelectOverride(rng, aliveIDs, versions, np)
			}
		}
		var ringAlive []int
		bypassed := 0
		for _, id := range selected {
			if aliveSet[id] {
				ringAlive = append(ringAlive, id)
			} else {
				bypassed++
				coord.Liveness.MarkDead(id)
			}
		}
		if len(ringAlive) == 0 {
			// Nobody to aggregate; charge the failed round and continue.
			now += cfg.FaultPenalty * float64(bypassed)
			continue
		}

		// Partial aggregation over the surviving ring via gossip
		// scatter-gather. Charge ring all-reduce time plus fault
		// penalties, and account 2·M·(np−1)/np bytes per ring member
		// (scatter-reduce + all-gather), the standard ring volume.
		agg := aggBuf
		aggregate.MeanInto(agg, pg.Collect(c, ringAlive))
		np := len(ringAlive)
		now += worstModel(ringAlive).RingAllReduceTime(np, paramBytes)
		now += cfg.FaultPenalty * float64(bypassed)
		if np > 1 {
			per := int64(2 * paramBytes * (np - 1) / np)
			for _, id := range ringAlive {
				comm.DeviceBytes[id] += per
			}
		}

		// Selected devices adopt the aggregate; a random ring member
		// broadcasts it to the unselected alive devices, which merge it
		// into their local models (non-blocking; the sender pays the
		// serialization time).
		for _, id := range ringAlive {
			c.Device(id).SetParameters(agg)
		}
		var unsel []int
		for _, id := range avail {
			if !aliveSet[id] {
				continue
			}
			if !contains(ringAlive, id) {
				unsel = append(unsel, id)
			}
		}
		if len(unsel) > 0 {
			sender := ringAlive[rng.Intn(len(ringAlive))]
			comm.DeviceBytes[sender] += int64(len(unsel) * paramBytes)
			now += (p2p.CommModel{Link: linkFor(sender)}).BroadcastTime(len(unsel), paramBytes)
			for _, id := range unsel {
				d := c.Device(id)
				d.ParametersInto(mergeBuf)
				aggregate.MergeInto(mergeBuf, mergeBuf, agg, cfg.MergeBeta)
				d.SetParameters(mergeBuf)
			}
		}
		comm.Rounds++

		// Report versions (workflow step 7) so the tracker can predict.
		for _, id := range avail {
			if aliveSet[id] {
				coord.ReportVersion(id, float64(c.Device(id).Version), now)
			}
		}
		coord.Backup(round, agg)

		loss := loss0
		if lossCount > 0 {
			loss = roundLoss / float64(lossCount)
		}
		_, acc := c.Evaluate(agg)
		series.Add(metrics.Point{
			Epoch: c.EpochsProcessed(totalSteps), Time: now, Loss: loss, Accuracy: acc,
		})
		copy(global, agg) // keep FinalParams off the reused aggBuf scratch
		if cfg.OnRound != nil {
			cfg.OnRound(RoundInfo{
				Round:      round,
				Time:       now,
				Selected:   append([]int(nil), ringAlive...),
				Bypassed:   bypassed,
				LocalSteps: plan.LocalSteps,
				Loss:       loss,
				Accuracy:   acc,
			})
		}
	}
	return &Result{Series: series, Comm: comm, Rounds: round, FinalParams: global}, nil
}

// devResult carries one device's local-training partials out of the
// (possibly concurrent) training phase. Summing partials in avail
// order keeps the floating-point reduction identical whether devices
// ran sequentially or concurrently.
type devResult struct {
	steps   int
	lossSum float64
}

// ResolveParallelism resolves a Parallelism config value: 0 (or
// negative) means GOMAXPROCS. Shared by the HADFL runner and the
// baseline schemes.
func ResolveParallelism(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// RunConcurrent executes fn(0..n-1) with at most par goroutines in
// flight (par < 1 is clamped to 1) and waits for all of them. fn
// calls must touch disjoint state; combine any shared totals after
// the join, in index order, so results stay independent of
// scheduling.
func RunConcurrent(n, par int, fn func(i int)) {
	if par < 1 {
		par = 1
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() {
				<-sem
				wg.Done()
			}()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// trainOneDevice runs device id's local steps for this sync period
// (Alg. 1 lines 13–19) and returns its partials. It touches only
// device-owned state (model, optimizer, loader, RNG), so distinct
// devices may run concurrently. A canceled ctx stops the step loop
// early; the caller then abandons the partials and returns ctx.Err(),
// so the early exit never reaches a result.
func trainOneDevice(ctx context.Context, c *Cluster, id int, plan strategy.Plan) devResult {
	d := c.Device(id)
	elapsed := 0.0
	steps := 0
	lossSum := 0.0
	target := plan.LocalSteps[id]
	for steps == 0 || (elapsed < plan.SyncPeriod && steps < 4*target+4) {
		if ctx.Err() != nil {
			break
		}
		l, e := d.TrainStep()
		elapsed += e
		steps++
		lossSum += l
		if elapsed+d.StepTime() > plan.SyncPeriod && steps >= 1 {
			break
		}
	}
	return devResult{steps: steps, lossSum: lossSum}
}

// trainDevices runs the local-training phase for every available
// device, at most par concurrently, and returns per-device partials
// indexed like avail.
func trainDevices(ctx context.Context, c *Cluster, avail []int, plan strategy.Plan, par int) []devResult {
	results := make([]devResult, len(avail))
	if par <= 1 || len(avail) <= 1 {
		for i, id := range avail {
			results[i] = trainOneDevice(ctx, c, id, plan)
		}
		return results
	}
	RunConcurrent(len(avail), par, func(i int) {
		results[i] = trainOneDevice(ctx, c, avail[i], plan)
	})
	return results
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
