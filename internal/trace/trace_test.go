package trace

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestStartRootAndChild(t *testing.T) {
	tr := NewTracer(0)
	ctx, root := Start(context.Background(), tr, "root")
	rc := root.Context()
	if !rc.Valid() || len(rc.TraceID) != 32 || len(rc.SpanID) != 16 {
		t.Fatalf("root context %+v", rc)
	}
	_, child := Start(ctx, tr, "child")
	cc := child.Context()
	if cc.TraceID != rc.TraceID {
		t.Fatalf("child trace %s != root trace %s", cc.TraceID, rc.TraceID)
	}
	child.SetAttr("k", "v")
	child.SetError(errors.New("boom"))
	child.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans", len(spans))
	}
	if spans[0].Name != "child" || spans[0].Parent != rc.SpanID {
		t.Fatalf("child span %+v", spans[0])
	}
	if spans[0].Attrs["k"] != "v" || spans[0].Error != "boom" {
		t.Fatalf("child span attrs/error %+v", spans[0])
	}
	if spans[1].Name != "root" || spans[1].Parent != "" {
		t.Fatalf("root span %+v", spans[1])
	}
	if spans[0].Duration() < 0 {
		t.Fatalf("negative duration %v", spans[0].Duration())
	}
}

func TestSpanEndIsOnce(t *testing.T) {
	tr := NewTracer(0)
	_, s := Start(context.Background(), tr, "once")
	s.End()
	s.End()
	if got := tr.Recorded(); got != 1 {
		t.Fatalf("recorded %d times", got)
	}
}

func TestNilSafety(t *testing.T) {
	var s *Span
	s.SetAttr("k", "v")
	s.SetError(errors.New("x"))
	s.End()
	if s.Context().Valid() {
		t.Fatal("nil span has a context")
	}
	var tr *Tracer
	tr.Record(SpanData{})
	if tr.Recorded() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer not inert")
	}
	// A span started with a nil recorder still propagates ids.
	ctx, s2 := Start(context.Background(), nil, "free")
	if !s2.Context().Valid() {
		t.Fatal("recorderless span has no identity")
	}
	if _, child := Start(ctx, nil, "kid"); child.Context().TraceID != s2.Context().TraceID {
		t.Fatal("recorderless span did not propagate")
	}
	s2.End()
}

func TestContextWithRemoteParent(t *testing.T) {
	// The wire path: a remote SpanContext re-roots spans on this side.
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	ctx := ContextWith(context.Background(), sc)
	got, ok := FromContext(ctx)
	if !ok || got != sc {
		t.Fatalf("FromContext = %+v, %v", got, ok)
	}
	_, s := Start(ctx, nil, "remote-child")
	if c := s.Context(); c.TraceID != sc.TraceID {
		t.Fatalf("remote child trace %s, want %s", c.TraceID, sc.TraceID)
	}
	// An invalid context must not be attached.
	if _, ok := FromContext(ContextWith(context.Background(), SpanContext{})); ok {
		t.Fatal("invalid span context attached")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Record(SpanData{TraceID: "t", SpanID: string(rune('a' + i))})
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans", len(spans))
	}
	if spans[0].SpanID != "c" || spans[2].SpanID != "e" {
		t.Fatalf("eviction kept %v", spans)
	}
	if tr.Recorded() != 5 {
		t.Fatalf("recorded = %d", tr.Recorded())
	}
}

func TestTracesGroupsByTraceID(t *testing.T) {
	tr := NewTracer(0)
	ctxA, a := Start(context.Background(), tr, "a")
	_, a2 := Start(ctxA, tr, "a2")
	a2.End()
	a.End()
	_, b := Start(context.Background(), tr, "b")
	b.End()
	traces := tr.Traces()
	if len(traces) != 2 {
		t.Fatalf("got %d traces", len(traces))
	}
	for _, trc := range traces {
		for _, sd := range trc.Spans {
			if sd.TraceID != trc.TraceID {
				t.Fatalf("span %s filed under trace %s", sd.TraceID, trc.TraceID)
			}
		}
	}
}

func TestHandlerServesJSON(t *testing.T) {
	tr := NewTracer(0)
	_, s := Start(context.Background(), tr, "handled")
	s.End()
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var body struct {
		Traces   []Trace `json:"traces"`
		Recorded int64   `json:"recorded"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Traces) != 1 || body.Traces[0].Spans[0].Name != "handled" || body.Recorded != 1 {
		t.Fatalf("body %+v", body)
	}
}

func TestBufferAndMultiRecorder(t *testing.T) {
	tr := NewTracer(0)
	buf := &Buffer{}
	rec := MultiRecorder(tr, nil, buf)
	_, s := Start(context.Background(), rec, "teed")
	s.End()
	if tr.Recorded() != 1 {
		t.Fatal("tracer missed the span")
	}
	drained := buf.Drain()
	if len(drained) != 1 || drained[0].Name != "teed" {
		t.Fatalf("buffer %v", drained)
	}
	if len(buf.Drain()) != 0 {
		t.Fatal("drain did not reset")
	}
}

func TestNopLoggerAndLoggerWith(t *testing.T) {
	l := NopLogger()
	l.Info("dropped", "k", "v") // must not panic or write anywhere
	var sb strings.Builder
	real, err := NewLogger(&sb, "info")
	if err != nil {
		t.Fatal(err)
	}
	ctx, s := Start(context.Background(), nil, "op")
	LoggerWith(ctx, real).Info("hello")
	if out := sb.String(); !strings.Contains(out, "traceID="+s.Context().TraceID) {
		t.Fatalf("log line missing traceID: %q", out)
	}
	// No span in ctx: logger passes through unchanged.
	if got := LoggerWith(context.Background(), real); got != real {
		t.Fatal("spanless context rewrapped the logger")
	}
}

func TestNewLoggerLevels(t *testing.T) {
	var sb strings.Builder
	l, err := NewLogger(&sb, "error")
	if err != nil {
		t.Fatal(err)
	}
	l.Warn("below threshold")
	if sb.Len() != 0 {
		t.Fatalf("warn leaked through error level: %q", sb.String())
	}
	l.Error("at threshold")
	if !strings.Contains(sb.String(), "at threshold") {
		t.Fatal("error record dropped")
	}
	if off, err := NewLogger(&sb, "off"); err != nil || off == nil {
		t.Fatalf("off level: %v", err)
	}
	if _, err := NewLogger(&sb, "loud"); err == nil {
		t.Fatal("unknown level accepted")
	}
}
