// Package trace is the repo's lightweight distributed-tracing layer:
// spans with TraceID/SpanID/parent lineage, context helpers to thread
// them through call trees, and a bounded in-memory Tracer ring that
// serves collected spans as JSON at GET /debug/traces.
//
// It is deliberately tiny — no sampling, no clock sync, no external
// exporter — because its one job is making a dispatched run legible:
// the serve pool opens a root span per job, the dispatcher opens child
// spans per remote attempt, the request frame carries the span context
// across the wire, and the worker's spans ship back on the terminal
// frame, so one job yields one trace with both sides' timings stitched
// under a single TraceID.
//
// Tracing is passive by contract: spans observe a run, they never
// influence it (the dispatch byte-determinism suite runs with tracing
// enabled to pin that).
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext is the propagated identity of a span: enough to parent
// remote children under the same trace, nothing else.
type SpanContext struct {
	TraceID string `json:"traceID"`
	SpanID  string `json:"spanID"`
}

// Valid reports whether sc carries both ids.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" && sc.SpanID != "" }

// SpanData is one finished span, ready for export. It is plain data
// (JSON-serializable) so worker-side spans can ride a dispatch result
// frame back to the dispatcher's exporter.
type SpanData struct {
	TraceID string            `json:"traceID"`
	SpanID  string            `json:"spanID"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	Start   time.Time         `json:"start"`
	End     time.Time         `json:"end"`
	Error   string            `json:"error,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Duration is the span's wall-clock extent.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// Recorder receives finished spans. *Tracer is the ring exporter;
// Buffer collects spans for shipment over the wire; MultiRecorder
// fans out to both.
type Recorder interface {
	Record(SpanData)
}

// Span is one in-flight timed operation. All methods are safe on a
// nil receiver, so instrumentation never needs a nil check.
type Span struct {
	mu    sync.Mutex
	data  SpanData
	rec   Recorder
	ended bool
}

// ctxKey carries a SpanContext through context.Context.
type ctxKey struct{}

// ContextWith returns ctx carrying sc, so spans started under it
// become sc's children. Use it on the receiving side of the wire to
// re-root a remote trace.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext returns the span context threaded through ctx, if any.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// Start opens a span named name: a child of the span context in ctx
// when one is present, otherwise the root of a fresh trace. The
// returned context carries the new span's context so further Start
// calls nest under it. rec may be nil (the span still exists and
// propagates ids; End just has nowhere to deliver it).
func Start(ctx context.Context, rec Recorder, name string) (context.Context, *Span) {
	s := &Span{
		rec: rec,
		data: SpanData{
			SpanID: NewSpanID(),
			Name:   name,
			Start:  time.Now(),
		},
	}
	if parent, ok := FromContext(ctx); ok {
		s.data.TraceID = parent.TraceID
		s.data.Parent = parent.SpanID
	} else {
		s.data.TraceID = NewTraceID()
	}
	return ContextWith(ctx, s.Context()), s
}

// Context returns the span's propagatable identity.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return SpanContext{TraceID: s.data.TraceID, SpanID: s.data.SpanID}
}

// SetAttr attaches a key/value annotation (last write per key wins).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]string, 4)
	}
	s.data.Attrs[key] = value
}

// SetError records err on the span (nil clears nothing and is a
// no-op, so `span.SetError(err)` needs no guard).
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.data.Error = err.Error()
	}
}

// End stamps the end time and delivers the span to its recorder.
// Second and later calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.End = time.Now()
	data, rec := s.data, s.rec
	s.mu.Unlock()
	if rec != nil {
		rec.Record(data)
	}
}

// idFallback seeds ids when crypto/rand is unavailable (never in
// practice); a process-unique counter keeps them distinct.
var idFallback atomic.Uint64

func randomID(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		binary.BigEndian.PutUint64(b[:8], idFallback.Add(1))
	}
	return hex.EncodeToString(b)
}

// NewTraceID returns a random 128-bit trace id (32 hex chars).
func NewTraceID() string { return randomID(16) }

// NewSpanID returns a random 64-bit span id (16 hex chars).
func NewSpanID() string { return randomID(8) }

// Buffer is a Recorder that accumulates spans in memory; the worker
// uses one per run so finished spans can ship back to the dispatcher
// on the terminal frame.
type Buffer struct {
	mu    sync.Mutex
	spans []SpanData
}

// Record appends the span.
func (b *Buffer) Record(d SpanData) {
	b.mu.Lock()
	b.spans = append(b.spans, d)
	b.mu.Unlock()
}

// Drain returns the collected spans and resets the buffer.
func (b *Buffer) Drain() []SpanData {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.spans
	b.spans = nil
	return out
}

// multiRecorder fans one span out to several recorders.
type multiRecorder []Recorder

func (m multiRecorder) Record(d SpanData) {
	for _, r := range m {
		if r != nil {
			r.Record(d)
		}
	}
}

// MultiRecorder returns a Recorder delivering to every non-nil rec.
func MultiRecorder(recs ...Recorder) Recorder {
	out := make(multiRecorder, 0, len(recs))
	for _, r := range recs {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}
