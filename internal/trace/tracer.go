package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultCapacity is the Tracer ring's span budget when the caller
// passes no explicit capacity.
const DefaultCapacity = 512

// Tracer is the bounded in-memory span exporter: a fixed-capacity
// ring holding the most recent finished spans, grouped into traces on
// demand and served as JSON by Handler. All methods are safe on a nil
// receiver, so components can be instrumented unconditionally and
// wired to a tracer (or not) by their owner.
type Tracer struct {
	mu       sync.Mutex
	capacity int
	buf      []SpanData
	next     int // ring write cursor once len(buf) == capacity
	recorded int64
}

// NewTracer returns a ring holding up to capacity spans
// (DefaultCapacity when capacity <= 0); the oldest spans are evicted
// first once full.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{capacity: capacity}
}

// Record adds a finished span, evicting the oldest past capacity.
func (t *Tracer) Record(d SpanData) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recorded++
	if len(t.buf) < t.capacity {
		t.buf = append(t.buf, d)
		return
	}
	t.buf[t.next] = d
	t.next = (t.next + 1) % t.capacity
}

// Recorded reports the total number of spans ever delivered (evicted
// ones included), so "how much did the ring drop" is answerable.
func (t *Tracer) Recorded() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recorded
}

// Spans returns the retained spans, oldest first. The slice is the
// caller's.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Trace is one trace's worth of retained spans, as served by Handler.
type Trace struct {
	TraceID string     `json:"traceID"`
	Start   time.Time  `json:"start"`
	Spans   []SpanData `json:"spans"`
}

// Traces groups the retained spans by TraceID. Traces are ordered
// newest first (by earliest span start); spans within a trace are
// ordered by start time, ties broken by SpanID so output is stable.
func (t *Tracer) Traces() []Trace {
	byID := make(map[string]*Trace)
	var order []*Trace
	for _, sd := range t.Spans() {
		tr := byID[sd.TraceID]
		if tr == nil {
			tr = &Trace{TraceID: sd.TraceID, Start: sd.Start}
			byID[sd.TraceID] = tr
			order = append(order, tr)
		}
		if sd.Start.Before(tr.Start) {
			tr.Start = sd.Start
		}
		tr.Spans = append(tr.Spans, sd)
	}
	for _, tr := range order {
		sort.Slice(tr.Spans, func(i, j int) bool {
			if !tr.Spans[i].Start.Equal(tr.Spans[j].Start) {
				return tr.Spans[i].Start.Before(tr.Spans[j].Start)
			}
			return tr.Spans[i].SpanID < tr.Spans[j].SpanID
		})
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].Start.After(order[j].Start) })
	out := make([]Trace, len(order))
	for i, tr := range order {
		out[i] = *tr
	}
	return out
}

// Handler serves the retained traces as JSON:
//
//	{"traces":[{"traceID":"…","start":"…","spans":[…]}, …]}
//
// Mount it at GET /debug/traces.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		traces := t.Traces()
		if traces == nil {
			traces = []Trace{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"traces":   traces,
			"recorded": t.Recorded(),
		})
	})
}

// discardHandler drops every record (slog.DiscardHandler exists only
// from Go 1.25; this module targets 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// NopLogger returns a logger that discards everything — the default
// for components whose owner wired no logger, so instrumentation
// never needs nil checks.
func NopLogger() *slog.Logger { return slog.New(discardHandler{}) }

// LoggerWith returns l annotated with ctx's trace identity (a traceID
// attr), or l unchanged when ctx carries no span — the glue that makes
// structured logs joinable against /debug/traces.
func LoggerWith(ctx context.Context, l *slog.Logger) *slog.Logger {
	if sc, ok := FromContext(ctx); ok {
		return l.With("traceID", sc.TraceID)
	}
	return l
}

// NewLogger builds the binaries' structured logger: slog text records
// to w at the named threshold ("debug", "info", "warn", "error"), or a
// discard logger for "off". Unknown names are an error so a typo in
// -log-level fails loudly instead of silencing logs.
func NewLogger(w io.Writer, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	case "off", "none":
		return NopLogger(), nil
	default:
		return nil, fmt.Errorf("trace: unknown log level %q (want debug, info, warn, error or off)", level)
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: lv})), nil
}
