package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// PartitionIID splits the dataset into k equal (±1) random parts, the
// "training data is split on four GPUs" setup of the paper's evaluation.
func PartitionIID(d *Dataset, k int, rng *rand.Rand) []*Dataset {
	if k <= 0 || k > d.Len() {
		panic(fmt.Sprintf("dataset: cannot split %d samples into %d parts", d.Len(), k))
	}
	perm := rng.Perm(d.Len())
	parts := make([]*Dataset, k)
	for i := 0; i < k; i++ {
		lo := i * d.Len() / k
		hi := (i + 1) * d.Len() / k
		parts[i] = d.Subset(perm[lo:hi])
	}
	return parts
}

// PartitionDirichlet splits the dataset into k parts whose per-class
// proportions follow Dir(alpha). Small alpha (e.g. 0.1) yields highly
// skewed non-IID splits; large alpha approaches IID. Every part is
// guaranteed at least one sample.
func PartitionDirichlet(d *Dataset, k int, alpha float64, rng *rand.Rand) []*Dataset {
	if k <= 0 || k > d.Len() {
		panic(fmt.Sprintf("dataset: cannot split %d samples into %d parts", d.Len(), k))
	}
	if alpha <= 0 {
		panic("dataset: Dirichlet alpha must be positive")
	}
	byClass := make([][]int, d.Classes)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	assign := make([][]int, k)
	for _, idx := range byClass {
		if len(idx) == 0 {
			continue
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		w := dirichlet(rng, alpha, k)
		// Convert weights to cumulative cut points over this class's samples.
		cum, pos := 0.0, 0
		for dev := 0; dev < k; dev++ {
			cum += w[dev]
			end := int(cum*float64(len(idx)) + 0.5)
			if dev == k-1 {
				end = len(idx)
			}
			if end > len(idx) {
				end = len(idx)
			}
			assign[dev] = append(assign[dev], idx[pos:end]...)
			pos = end
		}
	}
	// Guarantee non-empty parts by stealing from the largest.
	for dev := 0; dev < k; dev++ {
		if len(assign[dev]) > 0 {
			continue
		}
		largest := 0
		for j := 1; j < k; j++ {
			if len(assign[j]) > len(assign[largest]) {
				largest = j
			}
		}
		n := len(assign[largest])
		assign[dev] = append(assign[dev], assign[largest][n-1])
		assign[largest] = assign[largest][:n-1]
	}
	parts := make([]*Dataset, k)
	for i := range parts {
		sort.Ints(assign[i])
		parts[i] = d.Subset(assign[i])
	}
	return parts
}

// dirichlet samples a point from the symmetric Dirichlet(alpha) simplex
// using Gamma(alpha,1) marginals (Marsaglia–Tsang).
func dirichlet(rng *rand.Rand, alpha float64, k int) []float64 {
	w := make([]float64, k)
	sum := 0.0
	for i := range w {
		w[i] = gammaSample(rng, alpha)
		sum += w[i]
	}
	if sum == 0 {
		// Degenerate draw: fall back to uniform.
		for i := range w {
			w[i] = 1.0 / float64(k)
		}
		return w
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// gammaSample draws from Gamma(shape, 1) via Marsaglia–Tsang, with the
// standard boost for shape < 1.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / (3.0 * math.Sqrt(d))
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// PartitionShards sorts samples by label, cuts them into shardsPerDevice·k
// shards, and deals shards to devices — the classic extreme non-IID split
// from the FedAvg paper.
func PartitionShards(d *Dataset, k, shardsPerDevice int, rng *rand.Rand) []*Dataset {
	if k <= 0 || shardsPerDevice <= 0 {
		panic("dataset: PartitionShards needs positive k and shardsPerDevice")
	}
	total := k * shardsPerDevice
	if total > d.Len() {
		panic(fmt.Sprintf("dataset: %d shards exceed %d samples", total, d.Len()))
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return d.Y[idx[a]] < d.Y[idx[b]] })
	shardOrder := rng.Perm(total)
	parts := make([]*Dataset, k)
	per := d.Len() / total
	for dev := 0; dev < k; dev++ {
		var mine []int
		for s := 0; s < shardsPerDevice; s++ {
			shard := shardOrder[dev*shardsPerDevice+s]
			lo := shard * per
			hi := lo + per
			if shard == total-1 {
				hi = d.Len()
			}
			mine = append(mine, idx[lo:hi]...)
		}
		sort.Ints(mine)
		parts[dev] = d.Subset(mine)
	}
	return parts
}
