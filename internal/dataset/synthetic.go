package dataset

import (
	"fmt"
	"math/rand"

	"hadfl/internal/tensor"
)

// SyntheticConfig describes a synthetic classification task. Each class is
// a mixture of ModesPerClass Gaussian clusters in feature space, which
// keeps the task non-linearly-separable (a linear model cannot reach the
// accuracy ceiling) while remaining cheap to generate.
type SyntheticConfig struct {
	Samples       int     // total sample count
	Features      int     // feature dimension (vector datasets)
	Classes       int     // number of classes
	ModesPerClass int     // Gaussian modes per class (≥1); 2+ defeats linear models
	NoiseStd      float64 // within-cluster noise
	LabelNoise    float64 // probability a label is flipped uniformly
	Seed          int64
}

// DefaultSynthetic returns the configuration used by the fast experiment
// profiles: a 10-class, 32-feature task mirroring CIFAR-10's class
// count. The noise level is tuned so accuracy improves gradually over
// tens of epochs instead of saturating immediately — like CIFAR-10, the
// task must not hit its ceiling in the first rounds, or "time to max
// accuracy" (Table I's metric) degenerates into tie-breaking noise.
func DefaultSynthetic() SyntheticConfig {
	return SyntheticConfig{
		Samples:       4000,
		Features:      32,
		Classes:       10,
		ModesPerClass: 2,
		NoiseStd:      1.15,
		LabelNoise:    0.02,
		Seed:          1,
	}
}

// Synthetic generates a vector dataset according to cfg.
func Synthetic(cfg SyntheticConfig) *Dataset {
	if cfg.Samples <= 0 || cfg.Features <= 0 || cfg.Classes <= 1 {
		panic(fmt.Sprintf("dataset: invalid synthetic config %+v", cfg))
	}
	if cfg.ModesPerClass < 1 {
		cfg.ModesPerClass = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Cluster centres: unit-ish scale so NoiseStd controls difficulty.
	centres := make([][]float64, cfg.Classes*cfg.ModesPerClass)
	for i := range centres {
		c := make([]float64, cfg.Features)
		for j := range c {
			c[j] = rng.NormFloat64()
		}
		centres[i] = c
	}
	x := tensor.New(cfg.Samples, cfg.Features)
	y := make([]int, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		class := i % cfg.Classes // balanced classes
		mode := rng.Intn(cfg.ModesPerClass)
		centre := centres[class*cfg.ModesPerClass+mode]
		row := x.Data()[i*cfg.Features : (i+1)*cfg.Features]
		for j := range row {
			row[j] = centre[j] + cfg.NoiseStd*rng.NormFloat64()
		}
		if cfg.LabelNoise > 0 && rng.Float64() < cfg.LabelNoise {
			y[i] = rng.Intn(cfg.Classes)
		} else {
			y[i] = class
		}
	}
	shuffleInPlace(rng, x, y, cfg.Features)
	return &Dataset{X: x, Y: y, Classes: cfg.Classes}
}

// ImageConfig describes a synthetic image-classification task standing in
// for CIFAR-10: each class has a smooth base pattern (low-frequency random
// field) that samples perturb with noise.
type ImageConfig struct {
	Samples    int
	Channels   int
	Size       int // images are Size×Size
	Classes    int
	NoiseStd   float64
	LabelNoise float64
	Seed       int64
}

// DefaultImages returns the image-task configuration used by the conv
// experiment profiles (8×8×3 "tiny CIFAR").
func DefaultImages() ImageConfig {
	return ImageConfig{
		Samples:  2000,
		Channels: 3,
		Size:     8,
		Classes:  10,
		NoiseStd: 0.6,
		Seed:     1,
	}
}

// Images generates an image dataset according to cfg.
func Images(cfg ImageConfig) *Dataset {
	if cfg.Samples <= 0 || cfg.Channels <= 0 || cfg.Size <= 0 || cfg.Classes <= 1 {
		panic(fmt.Sprintf("dataset: invalid image config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sample := cfg.Channels * cfg.Size * cfg.Size
	// Base pattern per class: coarse 1/2-resolution random field upsampled
	// ×2, so patterns are smooth and convolution kernels have local
	// structure to latch onto.
	half := (cfg.Size + 1) / 2
	bases := make([][]float64, cfg.Classes)
	for c := range bases {
		coarse := make([]float64, cfg.Channels*half*half)
		for i := range coarse {
			coarse[i] = rng.NormFloat64()
		}
		base := make([]float64, sample)
		for ch := 0; ch < cfg.Channels; ch++ {
			for yy := 0; yy < cfg.Size; yy++ {
				for xx := 0; xx < cfg.Size; xx++ {
					base[(ch*cfg.Size+yy)*cfg.Size+xx] = coarse[(ch*half+yy/2)*half+xx/2]
				}
			}
		}
		bases[c] = base
	}
	x := tensor.New(cfg.Samples, cfg.Channels, cfg.Size, cfg.Size)
	y := make([]int, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		class := i % cfg.Classes
		row := x.Data()[i*sample : (i+1)*sample]
		base := bases[class]
		for j := range row {
			row[j] = base[j] + cfg.NoiseStd*rng.NormFloat64()
		}
		if cfg.LabelNoise > 0 && rng.Float64() < cfg.LabelNoise {
			y[i] = rng.Intn(cfg.Classes)
		} else {
			y[i] = class
		}
	}
	shuffleInPlace(rng, x, y, sample)
	return &Dataset{X: x, Y: y, Classes: cfg.Classes}
}

// shuffleInPlace applies one permutation to both samples and labels.
func shuffleInPlace(rng *rand.Rand, x *tensor.Tensor, y []int, sampleSize int) {
	n := len(y)
	tmp := make([]float64, sampleSize)
	rng.Shuffle(n, func(i, j int) {
		xi := x.Data()[i*sampleSize : (i+1)*sampleSize]
		xj := x.Data()[j*sampleSize : (j+1)*sampleSize]
		copy(tmp, xi)
		copy(xi, xj)
		copy(xj, tmp)
		y[i], y[j] = y[j], y[i]
	})
}
