package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: every epoch visits each sample exactly once (the loader's
// permutation covers the set), for any batch size dividing the data.
func TestPropertyLoaderEpochIsPermutation(t *testing.T) {
	f := func(seed int64, bRaw uint8) bool {
		n := 120
		batch := []int{4, 5, 6, 8, 10, 12}[int(bRaw)%6]
		d := Synthetic(SyntheticConfig{Samples: n, Features: 2, Classes: 3, NoiseStd: 0.2, Seed: seed})
		// Tag each sample by its first feature so batches reveal identity.
		for i := 0; i < n; i++ {
			d.X.Data()[i*2] = float64(i)
		}
		l := NewLoader(d, batch, rand.New(rand.NewSource(seed)))
		seen := make([]bool, n)
		for b := 0; b < n/batch; b++ {
			x, _ := l.Next()
			for r := 0; r < batch; r++ {
				id := int(x.At(r, 0))
				if id < 0 || id >= n || seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLoaderDeterministicGivenSeed(t *testing.T) {
	d := Synthetic(SyntheticConfig{Samples: 50, Features: 2, Classes: 2, NoiseStd: 0.2, Seed: 1})
	a := NewLoader(d, 10, rand.New(rand.NewSource(7)))
	b := NewLoader(d, 10, rand.New(rand.NewSource(7)))
	for i := 0; i < 10; i++ {
		xa, ya := a.Next()
		xb, yb := b.Next()
		if !xa.Equal(xb, 0) {
			t.Fatal("loader batches differ under identical seeds")
		}
		for j := range ya {
			if ya[j] != yb[j] {
				t.Fatal("loader labels differ under identical seeds")
			}
		}
	}
}

func TestImagesDeterministic(t *testing.T) {
	cfg := DefaultImages()
	a := Images(cfg)
	b := Images(cfg)
	if !a.X.Equal(b.X, 0) {
		t.Fatal("same seed must produce identical image data")
	}
	cfg.Seed++
	c := Images(cfg)
	if a.X.Equal(c.X, 0) {
		t.Fatal("different seed must change image data")
	}
}

func TestLoaderZeroBatchPanics(t *testing.T) {
	d := Synthetic(SyntheticConfig{Samples: 10, Features: 2, Classes: 2, NoiseStd: 0.2, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("batch=0 did not panic")
		}
	}()
	NewLoader(d, 0, rand.New(rand.NewSource(1)))
}
