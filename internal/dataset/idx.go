package dataset

import (
	"encoding/binary"
	"fmt"
	"io"

	"hadfl/internal/tensor"
)

// IDX is the binary format of the MNIST/Fashion-MNIST distribution
// files (idx3-ubyte images, idx1-ubyte labels). Supporting it lets a
// downstream user swap the synthetic workloads for real data without
// any new dependency: point ReadIDX at train-images-idx3-ubyte /
// train-labels-idx1-ubyte and train.

const (
	idxMagicImages = 0x00000803 // unsigned byte, 3 dimensions
	idxMagicLabels = 0x00000801 // unsigned byte, 1 dimension
)

// ReadIDXImages parses an idx3-ubyte stream into an [N, 1, H, W] tensor
// with pixel values scaled to [0, 1].
func ReadIDXImages(r io.Reader) (*tensor.Tensor, error) {
	var header [16]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("dataset: idx image header: %w", err)
	}
	magic := binary.BigEndian.Uint32(header[0:])
	if magic != idxMagicImages {
		return nil, fmt.Errorf("dataset: idx image magic %#x, want %#x", magic, idxMagicImages)
	}
	n := int(binary.BigEndian.Uint32(header[4:]))
	h := int(binary.BigEndian.Uint32(header[8:]))
	w := int(binary.BigEndian.Uint32(header[12:]))
	if n <= 0 || h <= 0 || w <= 0 || n > 1<<24 || h > 1<<12 || w > 1<<12 {
		return nil, fmt.Errorf("dataset: implausible idx dimensions %d×%d×%d", n, h, w)
	}
	raw := make([]byte, n*h*w)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("dataset: idx image data: %w", err)
	}
	t := tensor.New(n, 1, h, w)
	for i, b := range raw {
		t.Data()[i] = float64(b) / 255
	}
	return t, nil
}

// ReadIDXLabels parses an idx1-ubyte stream into an int slice.
func ReadIDXLabels(r io.Reader) ([]int, error) {
	var header [8]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("dataset: idx label header: %w", err)
	}
	magic := binary.BigEndian.Uint32(header[0:])
	if magic != idxMagicLabels {
		return nil, fmt.Errorf("dataset: idx label magic %#x, want %#x", magic, idxMagicLabels)
	}
	n := int(binary.BigEndian.Uint32(header[4:]))
	if n <= 0 || n > 1<<24 {
		return nil, fmt.Errorf("dataset: implausible idx label count %d", n)
	}
	raw := make([]byte, n)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("dataset: idx label data: %w", err)
	}
	out := make([]int, n)
	for i, b := range raw {
		out[i] = int(b)
	}
	return out, nil
}

// FromIDX assembles a Dataset from parallel image and label streams,
// inferring the class count from the labels.
func FromIDX(images, labels io.Reader) (*Dataset, error) {
	x, err := ReadIDXImages(images)
	if err != nil {
		return nil, err
	}
	y, err := ReadIDXLabels(labels)
	if err != nil {
		return nil, err
	}
	if x.Dim(0) != len(y) {
		return nil, fmt.Errorf("dataset: %d images vs %d labels", x.Dim(0), len(y))
	}
	classes := 0
	for _, v := range y {
		if v < 0 {
			return nil, fmt.Errorf("dataset: negative label %d", v)
		}
		if v+1 > classes {
			classes = v + 1
		}
	}
	if classes < 2 {
		return nil, fmt.Errorf("dataset: only %d classes in labels", classes)
	}
	return &Dataset{X: x, Y: y, Classes: classes}, nil
}

// WriteIDX serializes a Dataset with [N,1,H,W] images back into the IDX
// pair format — the inverse of FromIDX, used by tests and for exporting
// synthetic data to other toolchains.
func WriteIDX(d *Dataset, images, labels io.Writer) error {
	if d.X.Dims() != 4 || d.X.Dim(1) != 1 {
		return fmt.Errorf("dataset: WriteIDX needs [N,1,H,W] images, got %v", d.X.Shape())
	}
	n, h, w := d.X.Dim(0), d.X.Dim(2), d.X.Dim(3)
	var header [16]byte
	binary.BigEndian.PutUint32(header[0:], idxMagicImages)
	binary.BigEndian.PutUint32(header[4:], uint32(n))
	binary.BigEndian.PutUint32(header[8:], uint32(h))
	binary.BigEndian.PutUint32(header[12:], uint32(w))
	if _, err := images.Write(header[:]); err != nil {
		return err
	}
	raw := make([]byte, n*h*w)
	for i, v := range d.X.Data() {
		p := v * 255
		if p < 0 {
			p = 0
		}
		if p > 255 {
			p = 255
		}
		raw[i] = byte(p + 0.5)
	}
	if _, err := images.Write(raw); err != nil {
		return err
	}
	var lh [8]byte
	binary.BigEndian.PutUint32(lh[0:], idxMagicLabels)
	binary.BigEndian.PutUint32(lh[4:], uint32(n))
	if _, err := labels.Write(lh[:]); err != nil {
		return err
	}
	lraw := make([]byte, n)
	for i, y := range d.Y {
		if y < 0 || y > 255 {
			return fmt.Errorf("dataset: label %d not byte-encodable", y)
		}
		lraw[i] = byte(y)
	}
	_, err := labels.Write(lraw)
	return err
}
