package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// makeIDXDataset builds a small [N,1,H,W] dataset with byte-exact pixel
// values so the IDX round trip is lossless.
func makeIDXDataset(t *testing.T) *Dataset {
	t.Helper()
	cfg := ImageConfig{Samples: 30, Channels: 1, Size: 8, Classes: 3, NoiseStd: 0.3, Seed: 5}
	d := Images(cfg)
	// Quantize to the byte grid in [0,1].
	for i, v := range d.X.Data() {
		q := math.Round(math.Min(1, math.Max(0, (v+3)/6))*255) / 255
		d.X.Data()[i] = q
	}
	return d
}

func TestIDXRoundTrip(t *testing.T) {
	d := makeIDXDataset(t)
	var imgBuf, lblBuf bytes.Buffer
	if err := WriteIDX(d, &imgBuf, &lblBuf); err != nil {
		t.Fatal(err)
	}
	got, err := FromIDX(&imgBuf, &lblBuf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.Classes != d.Classes {
		t.Fatalf("len %d classes %d", got.Len(), got.Classes)
	}
	if !got.X.Equal(d.X, 1e-9) {
		t.Fatal("pixel data did not survive the round trip")
	}
	for i := range d.Y {
		if got.Y[i] != d.Y[i] {
			t.Fatalf("label %d changed", i)
		}
	}
}

func TestIDXRejectsBadMagic(t *testing.T) {
	if _, err := ReadIDXImages(strings.NewReader("not an idx file at all")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadIDXLabels(strings.NewReader("nope nope")); err == nil {
		t.Fatal("bad label magic accepted")
	}
}

func TestIDXRejectsTruncated(t *testing.T) {
	d := makeIDXDataset(t)
	var imgBuf, lblBuf bytes.Buffer
	if err := WriteIDX(d, &imgBuf, &lblBuf); err != nil {
		t.Fatal(err)
	}
	img := imgBuf.Bytes()
	if _, err := ReadIDXImages(bytes.NewReader(img[:len(img)-10])); err == nil {
		t.Fatal("truncated image stream accepted")
	}
	lbl := lblBuf.Bytes()
	if _, err := ReadIDXLabels(bytes.NewReader(lbl[:len(lbl)-5])); err == nil {
		t.Fatal("truncated label stream accepted")
	}
}

func TestFromIDXRejectsCountMismatch(t *testing.T) {
	d := makeIDXDataset(t)
	var imgBuf, lblBuf bytes.Buffer
	if err := WriteIDX(d, &imgBuf, &lblBuf); err != nil {
		t.Fatal(err)
	}
	// Build a label stream for a different count.
	small := d.Subset([]int{0, 1, 2})
	var imgBuf2, lblBuf2 bytes.Buffer
	if err := WriteIDX(small, &imgBuf2, &lblBuf2); err != nil {
		t.Fatal(err)
	}
	if _, err := FromIDX(&imgBuf, &lblBuf2); err == nil {
		t.Fatal("image/label count mismatch accepted")
	}
}

func TestWriteIDXRejectsMultiChannel(t *testing.T) {
	cfg := ImageConfig{Samples: 4, Channels: 3, Size: 4, Classes: 2, NoiseStd: 0.3, Seed: 5}
	d := Images(cfg)
	var a, b bytes.Buffer
	if err := WriteIDX(d, &a, &b); err == nil {
		t.Fatal("3-channel dataset accepted by IDX writer")
	}
}

func TestIDXDatasetTrains(t *testing.T) {
	// End-to-end: an IDX-loaded dataset plugs into the loader path.
	d := makeIDXDataset(t)
	var imgBuf, lblBuf bytes.Buffer
	if err := WriteIDX(d, &imgBuf, &lblBuf); err != nil {
		t.Fatal(err)
	}
	loaded, err := FromIDX(&imgBuf, &lblBuf)
	if err != nil {
		t.Fatal(err)
	}
	counts := loaded.ClassCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 30 {
		t.Fatalf("class counts %v", counts)
	}
}
