// Package dataset provides the synthetic classification workloads used in
// place of CIFAR-10 (see DESIGN.md for the substitution rationale), plus
// the partitioning schemes that distribute training data across federated
// devices: IID, Dirichlet non-IID, and label-shard splits.
package dataset

import (
	"fmt"
	"math/rand"

	"hadfl/internal/tensor"
)

// Dataset is a labelled classification set. X is either [N, D] feature
// vectors or [N, C, H, W] images; Y holds integer class labels.
type Dataset struct {
	X       *tensor.Tensor
	Y       []int
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.X.Dim(0) }

// sampleSize returns the number of scalars per sample.
func (d *Dataset) sampleSize() int { return d.X.Len() / d.Len() }

// Subset returns a new dataset containing the samples at idx (copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	ss := d.sampleSize()
	shape := append([]int{len(idx)}, d.X.Shape()[1:]...)
	x := tensor.New(shape...)
	y := make([]int, len(idx))
	for i, j := range idx {
		if j < 0 || j >= d.Len() {
			panic(fmt.Sprintf("dataset: subset index %d out of range [0,%d)", j, d.Len()))
		}
		copy(x.Data()[i*ss:(i+1)*ss], d.X.Data()[j*ss:(j+1)*ss])
		y[i] = d.Y[j]
	}
	return &Dataset{X: x, Y: y, Classes: d.Classes}
}

// Batch materializes the samples at idx as one input tensor and label
// slice, ready for a forward pass.
func (d *Dataset) Batch(idx []int) (*tensor.Tensor, []int) {
	sub := d.Subset(idx)
	return sub.X, sub.Y
}

// Split divides the dataset into a training set of n samples and a test
// set of the remainder, preserving order.
func (d *Dataset) Split(n int) (train, test *Dataset) {
	if n <= 0 || n >= d.Len() {
		panic(fmt.Sprintf("dataset: split point %d out of range (0,%d)", n, d.Len()))
	}
	trainIdx := make([]int, n)
	testIdx := make([]int, d.Len()-n)
	for i := range trainIdx {
		trainIdx[i] = i
	}
	for i := range testIdx {
		testIdx[i] = n + i
	}
	return d.Subset(trainIdx), d.Subset(testIdx)
}

// ClassCounts returns a histogram of labels.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// Loader iterates over a dataset in shuffled mini-batches. Each call to
// Next returns one batch; after the epoch is exhausted the loader
// reshuffles and starts over, so it can serve any number of local steps.
//
// Next reuses one batch buffer per loader: the returned tensor and
// label slice are valid until the next Next call. Training loops
// consume a batch within the step that fetched it, which keeps the
// per-step hot path free of per-batch allocations.
type Loader struct {
	ds    *Dataset
	batch int
	rng   *rand.Rand
	perm  []int
	pos   int

	batchX *tensor.Tensor
	batchY []int
}

// NewLoader creates a loader with the given batch size and rng.
func NewLoader(ds *Dataset, batch int, rng *rand.Rand) *Loader {
	if batch <= 0 {
		panic("dataset: batch size must be positive")
	}
	if batch > ds.Len() {
		batch = ds.Len()
	}
	l := &Loader{ds: ds, batch: batch, rng: rng}
	l.reshuffle()
	return l
}

func (l *Loader) reshuffle() {
	if l.perm == nil {
		l.perm = make([]int, l.ds.Len())
		for i := range l.perm {
			l.perm[i] = i
		}
	}
	l.rng.Shuffle(len(l.perm), func(i, j int) { l.perm[i], l.perm[j] = l.perm[j], l.perm[i] })
	l.pos = 0
}

// Next returns the next mini-batch, wrapping (with reshuffle) at epoch
// boundaries. The returned tensor and labels are owned by the loader
// and overwritten by the following Next call.
func (l *Loader) Next() (*tensor.Tensor, []int) {
	if l.pos+l.batch > len(l.perm) {
		l.reshuffle()
	}
	idx := l.perm[l.pos : l.pos+l.batch]
	l.pos += l.batch
	if l.batchX == nil {
		shape := append([]int{l.batch}, l.ds.X.Shape()[1:]...)
		l.batchX = tensor.New(shape...)
		l.batchY = make([]int, l.batch)
	}
	ss := l.ds.sampleSize()
	xd, sd := l.batchX.Data(), l.ds.X.Data()
	for i, j := range idx {
		copy(xd[i*ss:(i+1)*ss], sd[j*ss:(j+1)*ss])
		l.batchY[i] = l.ds.Y[j]
	}
	return l.batchX, l.batchY
}

// BatchesPerEpoch returns the number of full batches in one epoch.
func (l *Loader) BatchesPerEpoch() int { return l.ds.Len() / l.batch }

// BatchSize returns the loader's batch size.
func (l *Loader) BatchSize() int { return l.batch }
