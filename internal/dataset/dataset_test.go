package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSyntheticShapeAndBalance(t *testing.T) {
	cfg := SyntheticConfig{Samples: 1000, Features: 16, Classes: 10, ModesPerClass: 2, NoiseStd: 0.3, Seed: 1}
	d := Synthetic(cfg)
	if d.Len() != 1000 || d.X.Dim(1) != 16 {
		t.Fatalf("shape %v", d.X.Shape())
	}
	counts := d.ClassCounts()
	for c, n := range counts {
		if n != 100 {
			t.Fatalf("class %d count %d, want 100 (balanced, no label noise)", c, n)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	cfg := DefaultSynthetic()
	a := Synthetic(cfg)
	b := Synthetic(cfg)
	if !a.X.Equal(b.X, 0) {
		t.Fatal("same seed must produce identical data")
	}
	cfg.Seed = 2
	c := Synthetic(cfg)
	if a.X.Equal(c.X, 0) {
		t.Fatal("different seed must produce different data")
	}
}

func TestSyntheticLabelNoise(t *testing.T) {
	cfg := SyntheticConfig{Samples: 5000, Features: 4, Classes: 5, NoiseStd: 0.1, LabelNoise: 0.5, Seed: 3}
	d := Synthetic(cfg)
	// With 50% label noise roughly 40% of labels differ from i%classes
	// (half flipped, of which 1/5 land back on the original).
	flipped := 0
	for _, y := range d.Y {
		if y < 0 || y >= 5 {
			t.Fatalf("label %d out of range", y)
		}
	}
	_ = flipped
}

func TestImagesShape(t *testing.T) {
	cfg := ImageConfig{Samples: 100, Channels: 3, Size: 8, Classes: 10, NoiseStd: 0.5, Seed: 1}
	d := Images(cfg)
	sh := d.X.Shape()
	if sh[0] != 100 || sh[1] != 3 || sh[2] != 8 || sh[3] != 8 {
		t.Fatalf("image shape %v", sh)
	}
}

func TestImagesClassesSeparable(t *testing.T) {
	// Nearest-class-mean classification on clean-ish images should beat
	// chance by a wide margin — sanity check that the generator encodes
	// class structure.
	cfg := ImageConfig{Samples: 500, Channels: 1, Size: 8, Classes: 5, NoiseStd: 0.3, Seed: 7}
	d := Images(cfg)
	sample := d.X.Len() / d.Len()
	means := make([][]float64, 5)
	counts := make([]int, 5)
	for i := range means {
		means[i] = make([]float64, sample)
	}
	for i := 0; i < d.Len(); i++ {
		row := d.X.Data()[i*sample : (i+1)*sample]
		for j, v := range row {
			means[d.Y[i]][j] += v
		}
		counts[d.Y[i]]++
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for i := 0; i < d.Len(); i++ {
		row := d.X.Data()[i*sample : (i+1)*sample]
		best, bestD := -1, math.Inf(1)
		for c := range means {
			dist := 0.0
			for j, v := range row {
				dd := v - means[c][j]
				dist += dd * dd
			}
			if dist < bestD {
				best, bestD = c, dist
			}
		}
		if best == d.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(d.Len())
	if acc < 0.9 {
		t.Fatalf("nearest-mean accuracy %v, want ≥0.9 — generator lacks class structure", acc)
	}
}

func TestSubsetCopies(t *testing.T) {
	d := Synthetic(SyntheticConfig{Samples: 10, Features: 2, Classes: 2, NoiseStd: 0.1, Seed: 1})
	s := d.Subset([]int{0, 1})
	s.X.Data()[0] = 999
	if d.X.Data()[0] == 999 {
		t.Fatal("Subset must copy data")
	}
}

func TestSubsetOutOfRangePanics(t *testing.T) {
	d := Synthetic(SyntheticConfig{Samples: 10, Features: 2, Classes: 2, NoiseStd: 0.1, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range subset did not panic")
		}
	}()
	d.Subset([]int{10})
}

func TestSplit(t *testing.T) {
	d := Synthetic(SyntheticConfig{Samples: 100, Features: 2, Classes: 2, NoiseStd: 0.1, Seed: 1})
	train, test := d.Split(80)
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
}

func TestLoaderCoversEpoch(t *testing.T) {
	d := Synthetic(SyntheticConfig{Samples: 100, Features: 2, Classes: 2, NoiseStd: 0.1, Seed: 1})
	l := NewLoader(d, 10, rand.New(rand.NewSource(1)))
	if l.BatchesPerEpoch() != 10 {
		t.Fatalf("BatchesPerEpoch = %d", l.BatchesPerEpoch())
	}
	seen := 0
	for i := 0; i < 10; i++ {
		x, y := l.Next()
		if x.Dim(0) != 10 || len(y) != 10 {
			t.Fatalf("batch shape %v / %d", x.Shape(), len(y))
		}
		seen += len(y)
	}
	if seen != 100 {
		t.Fatalf("saw %d samples in one epoch", seen)
	}
	// Wrapping works: another call reshuffles.
	x, _ := l.Next()
	if x.Dim(0) != 10 {
		t.Fatal("loader did not wrap")
	}
}

func TestLoaderBatchLargerThanData(t *testing.T) {
	d := Synthetic(SyntheticConfig{Samples: 5, Features: 2, Classes: 2, NoiseStd: 0.1, Seed: 1})
	l := NewLoader(d, 100, rand.New(rand.NewSource(1)))
	x, _ := l.Next()
	if x.Dim(0) != 5 {
		t.Fatalf("clamped batch size: got %d", x.Dim(0))
	}
}

func TestPartitionIIDSizesAndCoverage(t *testing.T) {
	d := Synthetic(SyntheticConfig{Samples: 103, Features: 2, Classes: 2, NoiseStd: 0.1, Seed: 1})
	parts := PartitionIID(d, 4, rand.New(rand.NewSource(1)))
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != 103 {
		t.Fatalf("partitions cover %d samples, want 103", total)
	}
	for _, p := range parts {
		if p.Len() < 25 || p.Len() > 26 {
			t.Fatalf("unbalanced IID partition size %d", p.Len())
		}
	}
}

func TestPartitionDirichletSkew(t *testing.T) {
	d := Synthetic(SyntheticConfig{Samples: 2000, Features: 2, Classes: 10, NoiseStd: 0.1, Seed: 1})
	rng := rand.New(rand.NewSource(2))
	skewed := PartitionDirichlet(d, 4, 0.1, rng)
	uniform := PartitionDirichlet(d, 4, 100, rand.New(rand.NewSource(2)))
	// Measure label-distribution imbalance as max class share per device.
	imbalance := func(parts []*Dataset) float64 {
		worst := 0.0
		for _, p := range parts {
			counts := p.ClassCounts()
			for _, c := range counts {
				share := float64(c) / float64(p.Len())
				if share > worst {
					worst = share
				}
			}
		}
		return worst
	}
	if imbalance(skewed) <= imbalance(uniform) {
		t.Fatalf("alpha=0.1 imbalance %v should exceed alpha=100 imbalance %v",
			imbalance(skewed), imbalance(uniform))
	}
	// Coverage and non-emptiness.
	total := 0
	for _, p := range skewed {
		if p.Len() == 0 {
			t.Fatal("empty Dirichlet partition")
		}
		total += p.Len()
	}
	if total != 2000 {
		t.Fatalf("Dirichlet partitions cover %d, want 2000", total)
	}
}

func TestPartitionShards(t *testing.T) {
	d := Synthetic(SyntheticConfig{Samples: 1000, Features: 2, Classes: 10, NoiseStd: 0.1, Seed: 1})
	parts := PartitionShards(d, 4, 2, rand.New(rand.NewSource(3)))
	total := 0
	for _, p := range parts {
		total += p.Len()
		// Each device holds at most ~2 distinct labels (2 shards).
		distinct := 0
		for _, c := range p.ClassCounts() {
			if c > 0 {
				distinct++
			}
		}
		if distinct > 4 {
			t.Fatalf("shard partition has %d distinct labels, want ≤4", distinct)
		}
	}
	if total != 1000 {
		t.Fatalf("shard partitions cover %d, want 1000", total)
	}
}

// Property: every partitioner covers all samples exactly once.
func TestPropertyPartitionsAreExactCover(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%6) + 2
		d := Synthetic(SyntheticConfig{Samples: 300, Features: 3, Classes: 5, NoiseStd: 0.2, Seed: seed})
		rng := rand.New(rand.NewSource(seed))
		for _, parts := range [][]*Dataset{
			PartitionIID(d, k, rng),
			PartitionDirichlet(d, k, 0.5, rng),
		} {
			total := 0
			for _, p := range parts {
				total += p.Len()
			}
			if total != 300 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: Dirichlet weights sum to 1 and are non-negative.
func TestPropertyDirichletSimplex(t *testing.T) {
	f := func(seed int64, aRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := float64(aRaw%50)/10 + 0.05
		k := int(kRaw%10) + 1
		w := dirichlet(rng, alpha, k)
		sum := 0.0
		for _, v := range w {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGammaSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, shape := range []float64{0.3, 1, 2.5} {
		var s float64
		n := 20000
		for i := 0; i < n; i++ {
			s += gammaSample(rng, shape)
		}
		mean := s / float64(n)
		if math.Abs(mean-shape) > 0.1*shape+0.05 {
			t.Fatalf("Gamma(%v) sample mean %v, want ≈%v", shape, mean, shape)
		}
	}
}
