// Package device models a federated training device: its local model
// replica, optimizer, data shard, and — crucially for HADFL — its
// (simulated) heterogeneous computing power. The paper emulates slow GPUs
// with sleep(); here a Device charges virtual compute time per mini-batch
// through a cost model, optionally with multiplicative jitter and
// mid-run power drift, so the runtime-prediction machinery has something
// real to track.
package device

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"hadfl/internal/dataset"
	"hadfl/internal/nn"
	"hadfl/internal/tensor"
)

// Config describes one simulated device.
type Config struct {
	ID int
	// Power is the relative computing power (the paper's "computing
	// power ratio" arrays like [4,2,2,1]). A device with Power p takes
	// BaseStepTime/p virtual seconds per mini-batch.
	Power float64
	// BaseStepTime is the virtual seconds per mini-batch at Power 1.
	BaseStepTime float64
	// Jitter is the stddev of multiplicative log-normal noise on each
	// step's duration (0 = deterministic).
	Jitter float64
	// FailAt, if positive, crashes the device at that virtual time.
	FailAt float64
	// RecoverAt, if positive (> FailAt), brings it back.
	RecoverAt float64
}

// Device is a training participant. It is not safe for concurrent use;
// the simulation engine serializes all calls.
type Device struct {
	Cfg    Config
	Model  *nn.Model
	Opt    *nn.SGD
	Loader *dataset.Loader
	// Schedule, when non-nil, sets the learning rate from the device's
	// version before every step. Schedules are pure functions of the
	// step index, so asynchronous devices at different versions stay
	// consistent without coordination.
	Schedule nn.LRSchedule

	rng *rand.Rand

	// lossGrad is the reused ∂L/∂logits buffer for TrainStep.
	lossGrad *tensor.Tensor

	// Version counts completed local steps since the start of training
	// (the paper's parameter version v_{i,j}).
	Version int
	// StepsSinceSync counts local steps since the last synchronization.
	StepsSinceSync int
	// ComputeTime accumulates virtual seconds spent computing.
	ComputeTime float64
	// drift scales effective power at runtime (1 = nominal), letting
	// ablations model thermal throttling or contention.
	drift float64
}

// New constructs a device with its own model replica, optimizer and data
// loader. The model should already hold the global initial parameters.
func New(cfg Config, model *nn.Model, opt *nn.SGD, loader *dataset.Loader, rng *rand.Rand) *Device {
	if cfg.Power <= 0 {
		panic(fmt.Sprintf("device: non-positive power %v", cfg.Power))
	}
	if cfg.BaseStepTime <= 0 {
		panic(fmt.Sprintf("device: non-positive base step time %v", cfg.BaseStepTime))
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(int64(cfg.ID) + 1))
	}
	return &Device{Cfg: cfg, Model: model, Opt: opt, Loader: loader, rng: rng, drift: 1}
}

// SetDrift scales the device's effective power by factor (e.g. 0.5 =
// half speed). Used by the predictor ablation.
func (d *Device) SetDrift(factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("device: non-positive drift %v", factor))
	}
	d.drift = factor
}

// StepTime returns the virtual duration of the next mini-batch,
// including jitter and drift.
func (d *Device) StepTime() float64 {
	t := d.Cfg.BaseStepTime / (d.Cfg.Power * d.drift)
	if d.Cfg.Jitter > 0 {
		// Log-normal multiplicative jitter keeps durations positive.
		t *= jitterFactor(d.rng, d.Cfg.Jitter)
	}
	return t
}

func jitterFactor(rng *rand.Rand, sigma float64) float64 {
	return math.Exp(sigma * rng.NormFloat64())
}

// TrainStep performs one local SGD step (Alg. 1 lines 15–19) and returns
// the training loss and the virtual time the step took.
func (d *Device) TrainStep() (loss float64, elapsed float64) {
	if d.Schedule != nil {
		nn.ApplySchedule(d.Opt, d.Schedule, d.Version)
	}
	x, y := d.Loader.Next()
	logits := d.Model.Forward(x, true)
	d.lossGrad = tensor.Ensure(d.lossGrad, logits.Dim(0), logits.Dim(1))
	loss = nn.SoftmaxCrossEntropyInto(d.lossGrad, logits, y)
	d.Model.Backward(d.lossGrad)
	d.Opt.Step(d.Model)
	d.Version++
	d.StepsSinceSync++
	elapsed = d.StepTime()
	d.ComputeTime += elapsed
	return loss, elapsed
}

// TrainSteps runs n local steps, returning the mean loss and total
// virtual time.
func (d *Device) TrainSteps(n int) (meanLoss float64, elapsed float64) {
	if n <= 0 {
		panic(fmt.Sprintf("device: TrainSteps(%d)", n))
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		l, e := d.TrainStep()
		sum += l
		elapsed += e
	}
	return sum / float64(n), elapsed
}

// EpochTime returns the virtual duration of one full local epoch at
// nominal power (no jitter), the quantity the mutual-negotiation phase
// measures.
func (d *Device) EpochTime() float64 {
	return float64(d.Loader.BatchesPerEpoch()) * d.Cfg.BaseStepTime / d.Cfg.Power
}

// WarmupCtx runs the mutual-negotiation phase (paper §III-B): epochs
// of training at a reduced learning rate, returning the measured total
// calculation time T_i. The learning-rate reduction stabilizes the
// model before full training. A canceled ctx stops the step loop
// within one device step; the caller must then discard the partial
// calcTime and surface ctx.Err() — the checks never change an
// uncancelled warmup.
func (d *Device) WarmupCtx(ctx context.Context, epochs int, lrScale float64) (calcTime float64) {
	if epochs <= 0 {
		panic(fmt.Sprintf("device: Warmup(%d)", epochs))
	}
	origLR := d.Opt.LR
	origSchedule := d.Schedule
	d.Schedule = nil // the warm-up rate overrides any schedule
	d.Opt.LR = origLR * lrScale
	steps := epochs * d.Loader.BatchesPerEpoch()
	if steps < 1 {
		steps = epochs
	}
	for i := 0; i < steps; i++ {
		if ctx.Err() != nil {
			break
		}
		_, e := d.TrainStep()
		calcTime += e
	}
	d.Opt.LR = origLR
	d.Schedule = origSchedule
	return calcTime
}

// Parameters exposes the local model's flat parameter vector.
func (d *Device) Parameters() []float64 { return d.Model.Parameters() }

// ParametersInto writes the local model's flat parameter vector into
// dst (length NumParams) and returns it — the allocation-free gather
// path the round loops use.
func (d *Device) ParametersInto(dst []float64) []float64 { return d.Model.ParametersInto(dst) }

// SetParameters installs a new parameter vector (after aggregation or
// broadcast) and resets optimizer momentum, which belongs to the old
// iterate.
func (d *Device) SetParameters(p []float64) {
	d.Model.SetParameters(p)
	d.Opt.Reset()
	d.StepsSinceSync = 0
}

// AliveAt reports whether the device is up at virtual time t according
// to its failure schedule.
func (d *Device) AliveAt(t float64) bool {
	if d.Cfg.FailAt <= 0 {
		return true
	}
	if t < d.Cfg.FailAt {
		return true
	}
	return d.Cfg.RecoverAt > d.Cfg.FailAt && t >= d.Cfg.RecoverAt
}
