package device

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"hadfl/internal/dataset"
	"hadfl/internal/nn"
)

func newTestDevice(t *testing.T, cfg Config) *Device {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	ds := dataset.Synthetic(dataset.SyntheticConfig{
		Samples: 120, Features: 8, Classes: 3, ModesPerClass: 1, NoiseStd: 0.3, Seed: 1,
	})
	model := nn.NewMLP(rng, 8, []int{16}, 3)
	opt := nn.NewSGD(0.1, 0.9, 0)
	loader := dataset.NewLoader(ds, 12, rand.New(rand.NewSource(2)))
	return New(cfg, model, opt, loader, rand.New(rand.NewSource(3)))
}

func TestStepTimeInverseToPower(t *testing.T) {
	fast := newTestDevice(t, Config{ID: 0, Power: 4, BaseStepTime: 1})
	slow := newTestDevice(t, Config{ID: 1, Power: 1, BaseStepTime: 1})
	if math.Abs(fast.StepTime()-0.25) > 1e-12 {
		t.Fatalf("fast StepTime = %v", fast.StepTime())
	}
	if math.Abs(slow.StepTime()-1) > 1e-12 {
		t.Fatalf("slow StepTime = %v", slow.StepTime())
	}
}

func TestTrainStepAdvancesVersionAndTime(t *testing.T) {
	d := newTestDevice(t, Config{ID: 0, Power: 2, BaseStepTime: 1})
	loss, elapsed := d.TrainStep()
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	if d.Version != 1 || d.StepsSinceSync != 1 {
		t.Fatalf("version %d stepsSinceSync %d", d.Version, d.StepsSinceSync)
	}
	if math.Abs(elapsed-0.5) > 1e-12 || math.Abs(d.ComputeTime-0.5) > 1e-12 {
		t.Fatalf("elapsed %v computeTime %v", elapsed, d.ComputeTime)
	}
}

func TestTrainStepsLearns(t *testing.T) {
	d := newTestDevice(t, Config{ID: 0, Power: 1, BaseStepTime: 1})
	first, _ := d.TrainSteps(5)
	var last float64
	for i := 0; i < 20; i++ {
		last, _ = d.TrainSteps(5)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v → %v", first, last)
	}
}

func TestWarmupRestoresLR(t *testing.T) {
	d := newTestDevice(t, Config{ID: 0, Power: 2, BaseStepTime: 1})
	lr := d.Opt.LR
	calc := d.WarmupCtx(context.Background(), 1, 0.1)
	if d.Opt.LR != lr {
		t.Fatalf("LR after warmup %v, want %v", d.Opt.LR, lr)
	}
	// 1 epoch = 10 batches at 0.5s each.
	if math.Abs(calc-5) > 1e-9 {
		t.Fatalf("warmup calc time %v, want 5", calc)
	}
}

func TestWarmupTimeReflectsPower(t *testing.T) {
	fast := newTestDevice(t, Config{ID: 0, Power: 4, BaseStepTime: 1})
	slow := newTestDevice(t, Config{ID: 1, Power: 1, BaseStepTime: 1})
	tf := fast.WarmupCtx(context.Background(), 1, 0.1)
	ts := slow.WarmupCtx(context.Background(), 1, 0.1)
	if math.Abs(ts/tf-4) > 1e-9 {
		t.Fatalf("warmup ratio %v, want 4 (power 4:1)", ts/tf)
	}
}

func TestEpochTime(t *testing.T) {
	d := newTestDevice(t, Config{ID: 0, Power: 2, BaseStepTime: 1})
	// 120 samples / batch 12 = 10 batches; at 0.5s each → 5s.
	if math.Abs(d.EpochTime()-5) > 1e-12 {
		t.Fatalf("EpochTime = %v", d.EpochTime())
	}
}

func TestSetParametersResetsSyncCounterAndMomentum(t *testing.T) {
	d := newTestDevice(t, Config{ID: 0, Power: 1, BaseStepTime: 1})
	d.TrainSteps(3)
	if d.StepsSinceSync != 3 {
		t.Fatalf("StepsSinceSync = %d", d.StepsSinceSync)
	}
	p := d.Parameters()
	d.SetParameters(p)
	if d.StepsSinceSync != 0 {
		t.Fatal("SetParameters must reset StepsSinceSync")
	}
	if d.Version != 3 {
		t.Fatal("SetParameters must not reset the global version counter")
	}
}

func TestJitterChangesStepTime(t *testing.T) {
	d := newTestDevice(t, Config{ID: 0, Power: 1, BaseStepTime: 1, Jitter: 0.3})
	a, b := d.StepTime(), d.StepTime()
	if a == b {
		t.Fatal("jittered step times should differ")
	}
	if a <= 0 || b <= 0 {
		t.Fatal("step times must stay positive")
	}
}

func TestDriftScalesStepTime(t *testing.T) {
	d := newTestDevice(t, Config{ID: 0, Power: 1, BaseStepTime: 1})
	d.SetDrift(0.5)
	if math.Abs(d.StepTime()-2) > 1e-12 {
		t.Fatalf("StepTime with drift 0.5 = %v, want 2", d.StepTime())
	}
}

func TestAliveAtSchedule(t *testing.T) {
	never := newTestDevice(t, Config{ID: 0, Power: 1, BaseStepTime: 1})
	if !never.AliveAt(1e9) {
		t.Fatal("device with no schedule must always be alive")
	}
	dies := newTestDevice(t, Config{ID: 1, Power: 1, BaseStepTime: 1, FailAt: 10})
	if !dies.AliveAt(9.9) || dies.AliveAt(10) || dies.AliveAt(100) {
		t.Fatal("FailAt schedule wrong")
	}
	flaky := newTestDevice(t, Config{ID: 2, Power: 1, BaseStepTime: 1, FailAt: 10, RecoverAt: 20})
	if !flaky.AliveAt(5) || flaky.AliveAt(15) || !flaky.AliveAt(25) {
		t.Fatal("FailAt/RecoverAt schedule wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := dataset.Synthetic(dataset.SyntheticConfig{Samples: 10, Features: 2, Classes: 2, NoiseStd: 0.1, Seed: 1})
	model := nn.NewMLP(rng, 2, nil, 2)
	opt := nn.NewSGD(0.1, 0, 0)
	loader := dataset.NewLoader(ds, 2, rng)
	for _, cfg := range []Config{
		{Power: 0, BaseStepTime: 1},
		{Power: 1, BaseStepTime: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg, model, opt, loader, rng)
		}()
	}
}
