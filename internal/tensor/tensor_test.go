package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Len() != 6 {
		t.Fatalf("Len = %d, want 6", x.Len())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	if x.Dims() != 2 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatalf("shape = %v", x.Shape())
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][]int{{}, {0}, {2, -1}, {3, 0, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestFromSliceLengthCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Row-major layout: offset of [1,2,3] in [2,3,4] is 1*12 + 2*4 + 3 = 23.
	if x.Data()[23] != 7.5 {
		t.Fatalf("row-major offset wrong: %v", x.Data())
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	x.At(2, 0)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Data()[0] = 99
	if x.Data()[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Data()[0] = 42
	if x.Data()[0] != 42 {
		t.Fatal("Reshape must share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape with wrong element count did not panic")
		}
	}()
	x.Reshape(4, 2)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	if got := a.Add(b); !got.Equal(FromSlice([]float64{11, 22, 33, 44}, 2, 2), 0) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); !got.Equal(FromSlice([]float64{9, 18, 27, 36}, 2, 2), 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b); !got.Equal(FromSlice([]float64{10, 40, 90, 160}, 2, 2), 0) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Scale(3); !got.Equal(FromSlice([]float64{3, 6, 9, 12}, 2, 2), 0) {
		t.Errorf("Scale = %v", got)
	}
}

func TestInPlaceOpsReturnReceiver(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{3, 4}, 2)
	if got := a.AddInPlace(b); got != a {
		t.Fatal("AddInPlace must return receiver")
	}
	if a.Data()[0] != 4 || a.Data()[1] != 6 {
		t.Fatalf("AddInPlace result %v", a.Data())
	}
	a.SubInPlace(b)
	if a.Data()[0] != 1 || a.Data()[1] != 2 {
		t.Fatalf("SubInPlace result %v", a.Data())
	}
	a.MulInPlace(b)
	if a.Data()[0] != 3 || a.Data()[1] != 8 {
		t.Fatalf("MulInPlace result %v", a.Data())
	}
	a.AxpyInPlace(2, b)
	if a.Data()[0] != 9 || a.Data()[1] != 16 {
		t.Fatalf("AxpyInPlace result %v", a.Data())
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a, b := New(2, 2), New(4)
	for name, f := range map[string]func(){
		"Add": func() { a.Add(b) },
		"Sub": func() { a.Sub(b) },
		"Mul": func() { a.Mul(b) },
		"Dot": func() { a.Dot(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched shapes did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-1, 5, 2, 0}, 4)
	if x.Sum() != 6 {
		t.Errorf("Sum = %v", x.Sum())
	}
	if x.Mean() != 1.5 {
		t.Errorf("Mean = %v", x.Mean())
	}
	if v, i := x.Max(); v != 5 || i != 1 {
		t.Errorf("Max = %v at %d", v, i)
	}
	if got := x.Norm2(); math.Abs(got-math.Sqrt(30)) > 1e-12 {
		t.Errorf("Norm2 = %v", got)
	}
	y := FromSlice([]float64{1, 1, 1, 1}, 4)
	if x.Dot(y) != 6 {
		t.Errorf("Dot = %v", x.Dot(y))
	}
}

func TestApply(t *testing.T) {
	x := FromSlice([]float64{1, 4, 9}, 3)
	y := x.Apply(math.Sqrt)
	if !y.Equal(FromSlice([]float64{1, 2, 3}, 3), 1e-12) {
		t.Errorf("Apply = %v", y.Data())
	}
	if x.Data()[1] != 4 {
		t.Error("Apply mutated the receiver")
	}
	x.ApplyInPlace(func(v float64) float64 { return -v })
	if x.Data()[0] != -1 {
		t.Errorf("ApplyInPlace = %v", x.Data())
	}
}

func TestFillAndZero(t *testing.T) {
	x := New(3)
	x.Fill(2.5)
	if x.Sum() != 7.5 {
		t.Fatalf("Fill sum = %v", x.Sum())
	}
	x.Zero()
	if x.Sum() != 0 {
		t.Fatalf("Zero sum = %v", x.Sum())
	}
}

// Property: (a+b)-b == a element-wise for random tensors.
func TestPropertyAddSubInverse(t *testing.T) {
	f := func(seed int64, raw uint8) bool {
		n := int(raw%31) + 1
		rng := rand.New(rand.NewSource(seed))
		a := RandNormal(rng, 0, 10, n)
		b := RandNormal(rng, 0, 10, n)
		return a.Add(b).Sub(b).Equal(a, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Scale distributes over Add: s·(a+b) == s·a + s·b.
func TestPropertyScaleDistributes(t *testing.T) {
	f := func(seed int64, raw uint8) bool {
		n := int(raw%31) + 1
		rng := rand.New(rand.NewSource(seed))
		a := RandNormal(rng, 0, 5, n)
		b := RandNormal(rng, 0, 5, n)
		s := rng.Float64()*4 - 2
		left := a.Add(b).Scale(s)
		right := a.Scale(s).Add(b.Scale(s))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dot is symmetric and ‖a‖² == a·a.
func TestPropertyDotSymmetry(t *testing.T) {
	f := func(seed int64, raw uint8) bool {
		n := int(raw%31) + 1
		rng := rand.New(rand.NewSource(seed))
		a := RandNormal(rng, 0, 3, n)
		b := RandNormal(rng, 0, 3, n)
		if math.Abs(a.Dot(b)-b.Dot(a)) > 1e-9 {
			return false
		}
		return math.Abs(a.Dot(a)-a.Norm2()*a.Norm2()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringForms(t *testing.T) {
	small := FromSlice([]float64{1, 2}, 2)
	if small.String() == "" {
		t.Error("empty String for small tensor")
	}
	big := New(100)
	if big.String() == "" {
		t.Error("empty String for big tensor")
	}
}
