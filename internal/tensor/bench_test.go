package tensor

import (
	"math/rand"
	"testing"
)

// Kernel benchmarks for the compute core. Run serial-vs-parallel with:
//
//	go test -bench BenchmarkMatMul -benchmem ./internal/tensor
//
// Sizes mirror the training hot paths: the dense stack's [batch×width]
// products and the im2col matrices of the convolutional profile.

func benchMatMulInto(b *testing.B, m, k, n, par int) {
	prev := Parallelism()
	SetParallelism(par)
	defer SetParallelism(prev)
	rng := rand.New(rand.NewSource(1))
	a := RandNormal(rng, 0, 1, m, k)
	bb := RandNormal(rng, 0, 1, k, n)
	dst := New(m, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, bb)
	}
}

func BenchmarkMatMulInto64x64x64(b *testing.B)     { benchMatMulInto(b, 64, 64, 64, 1) }
func BenchmarkMatMulInto256(b *testing.B)          { benchMatMulInto(b, 256, 256, 256, 1) }
func BenchmarkMatMulInto256Parallel(b *testing.B)  { benchMatMulInto(b, 256, 256, 256, 8) }
func BenchmarkMatMulInto1024(b *testing.B)         { benchMatMulInto(b, 1024, 256, 256, 1) }
func BenchmarkMatMulInto1024Parallel(b *testing.B) { benchMatMulInto(b, 1024, 256, 256, 8) }

func benchTransB(b *testing.B, m, k, n, par int) {
	prev := Parallelism()
	SetParallelism(par)
	defer SetParallelism(prev)
	rng := rand.New(rand.NewSource(2))
	a := RandNormal(rng, 0, 1, m, k)
	w := RandNormal(rng, 0, 1, n, k)
	bias := RandNormal(rng, 0, 1, n)
	dst := New(m, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransBBiasInto(dst, a, w, bias)
	}
}

func BenchmarkDenseForwardFused512(b *testing.B)         { benchTransB(b, 512, 256, 256, 1) }
func BenchmarkDenseForwardFused512Parallel(b *testing.B) { benchTransB(b, 512, 256, 256, 8) }

func BenchmarkVecMean(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const n, k = 1 << 16, 4
	vecs := make([][]float64, k)
	for i := range vecs {
		v := make([]float64, n)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
	}
	dst := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VecMeanInto(dst, vecs)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := RandNormal(rng, 0, 1, 32, 3, 8, 8)
	cols := New(32*8*8, 3*3*3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2ColInto(cols, x, 3, 3, 1, 1)
	}
}
