package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConv2DShape(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{32, 3, 1, 1, 32},
		{32, 3, 2, 1, 16},
		{8, 2, 2, 0, 4},
		{5, 5, 1, 0, 1},
	}
	for _, c := range cases {
		if got := Conv2DShape(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("Conv2DShape(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

func TestConv2DShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for impossible conv shape")
		}
	}()
	Conv2DShape(2, 5, 1, 0)
}

// naiveConv computes convolution directly for verification.
func naiveConv(x, w *Tensor, stride, pad int) *Tensor {
	n, c, h, wd := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oc, kh, kw := w.shape[0], w.shape[2], w.shape[3]
	oh := Conv2DShape(h, kh, stride, pad)
	ow := Conv2DShape(wd, kw, stride, pad)
	out := New(n, oc, oh, ow)
	for ni := 0; ni < n; ni++ {
		for oci := 0; oci < oc; oci++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := 0.0
					for ci := 0; ci < c; ci++ {
						for ky := 0; ky < kh; ky++ {
							for kx := 0; kx < kw; kx++ {
								iy, ix := oy*stride+ky-pad, ox*stride+kx-pad
								if iy < 0 || iy >= h || ix < 0 || ix >= wd {
									continue
								}
								s += x.At(ni, ci, iy, ix) * w.At(oci, ci, ky, kx)
							}
						}
					}
					out.Set(s, ni, oci, oy, ox)
				}
			}
		}
	}
	return out
}

// im2colConv performs convolution through Im2Col + MatMul, the production
// path used by nn.Conv2D.
func im2colConv(x, w *Tensor, stride, pad int) *Tensor {
	n, h, wd := x.shape[0], x.shape[2], x.shape[3]
	oc, c, kh, kw := w.shape[0], w.shape[1], w.shape[2], w.shape[3]
	oh := Conv2DShape(h, kh, stride, pad)
	ow := Conv2DShape(wd, kw, stride, pad)
	cols := Im2Col(x, kh, kw, stride, pad) // [N·OH·OW, C·KH·KW]
	wmat := w.Reshape(oc, c*kh*kw)         // [OC, C·KH·KW]
	prod := MatMulTransB(cols, wmat)       // [N·OH·OW, OC]
	out := New(n, oc, oh, ow)              // transpose channel-last → channel-first
	for ni := 0; ni < n; ni++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := (ni*oh+oy)*ow + ox
				for oci := 0; oci < oc; oci++ {
					out.Set(prod.At(row, oci), ni, oci, oy, ox)
				}
			}
		}
	}
	return out
}

func TestIm2ColConvMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, cfg := range []struct{ n, c, h, w, oc, k, stride, pad int }{
		{1, 1, 5, 5, 1, 3, 1, 0},
		{2, 3, 8, 8, 4, 3, 1, 1},
		{1, 2, 7, 7, 3, 3, 2, 1},
		{2, 1, 6, 6, 2, 2, 2, 0},
	} {
		x := RandNormal(rng, 0, 1, cfg.n, cfg.c, cfg.h, cfg.w)
		w := RandNormal(rng, 0, 1, cfg.oc, cfg.c, cfg.k, cfg.k)
		got := im2colConv(x, w, cfg.stride, cfg.pad)
		want := naiveConv(x, w, cfg.stride, cfg.pad)
		if !got.Equal(want, 1e-9) {
			t.Errorf("im2col conv mismatch for %+v", cfg)
		}
	}
}

// Property: Col2Im is the adjoint of Im2Col: ⟨Im2Col(x), y⟩ == ⟨x, Col2Im(y)⟩.
// This is exactly the property backprop relies on.
func TestPropertyCol2ImAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, c := rng.Intn(2)+1, rng.Intn(3)+1
		h := rng.Intn(5) + 4
		k := rng.Intn(2) + 2
		stride := rng.Intn(2) + 1
		pad := rng.Intn(2)
		x := RandNormal(rng, 0, 1, n, c, h, h)
		cols := Im2Col(x, k, k, stride, pad)
		y := RandNormal(rng, 0, 1, cols.shape...)
		lhs := cols.Dot(y)
		rhs := x.Dot(Col2Im(y, n, c, h, h, k, k, stride, pad))
		return math.Abs(lhs-rhs) < 1e-8*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMaxPool2DKnown(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 1, 4, 4)
	out, arg := MaxPool2D(x, 2, 2)
	want := FromSlice([]float64{4, 8, 12, 16}, 1, 1, 2, 2)
	if !out.Equal(want, 0) {
		t.Fatalf("MaxPool2D = %v", out.Data())
	}
	// Gradient routing: each pooled grad goes back to the argmax position.
	grad := FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	back := MaxUnpool2D(grad, arg, x.Shape())
	if back.At(0, 0, 1, 1) != 1 || back.At(0, 0, 1, 3) != 2 || back.At(0, 0, 3, 1) != 3 || back.At(0, 0, 3, 3) != 4 {
		t.Fatalf("MaxUnpool2D = %v", back.Data())
	}
	if back.Sum() != grad.Sum() {
		t.Fatal("unpool must conserve gradient mass")
	}
}

func TestAvgPoolGlobal(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	out := AvgPoolGlobal(x)
	want := FromSlice([]float64{2.5, 25}, 1, 2)
	if !out.Equal(want, 1e-12) {
		t.Fatalf("AvgPoolGlobal = %v", out.Data())
	}
	grad := FromSlice([]float64{4, 8}, 1, 2)
	back := AvgUnpoolGlobal(grad, 2, 2)
	if back.At(0, 0, 0, 0) != 1 || back.At(0, 1, 1, 1) != 2 {
		t.Fatalf("AvgUnpoolGlobal = %v", back.Data())
	}
	if math.Abs(back.Sum()-grad.Sum()) > 1e-12 {
		t.Fatal("avg unpool must conserve gradient mass")
	}
}

// Property: max pooling output is always ≥ the mean of its window inputs,
// and unpooled gradients conserve total mass.
func TestPropertyPoolMassConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, c := rng.Intn(2)+1, rng.Intn(2)+1
		h := (rng.Intn(3) + 2) * 2
		x := RandNormal(rng, 0, 1, n, c, h, h)
		out, arg := MaxPool2D(x, 2, 2)
		grad := RandNormal(rng, 0, 1, out.shape...)
		back := MaxUnpool2D(grad, arg, x.Shape())
		return math.Abs(back.Sum()-grad.Sum()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInitializers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := XavierUniform(rng, 100, 100, 1000)
	limit := math.Sqrt(6.0 / 200.0)
	for _, v := range x.Data() {
		if v < -limit || v > limit {
			t.Fatalf("Xavier value %v outside ±%v", v, limit)
		}
	}
	h := HeNormal(rng, 50, 5000)
	std := math.Sqrt(2.0 / 50.0)
	var s, s2 float64
	for _, v := range h.Data() {
		s += v
		s2 += v * v
	}
	mean := s / float64(h.Len())
	variance := s2/float64(h.Len()) - mean*mean
	if math.Abs(mean) > 0.05 || math.Abs(math.Sqrt(variance)-std) > 0.05 {
		t.Fatalf("HeNormal stats mean=%v std=%v want std=%v", mean, math.Sqrt(variance), std)
	}
	u := RandUniform(rng, 2, 3, 100)
	for _, v := range u.Data() {
		if v < 2 || v >= 3 {
			t.Fatalf("RandUniform out of range: %v", v)
		}
	}
}
