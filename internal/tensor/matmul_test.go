package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !got.Equal(want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got.Data(), want.Data())
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandNormal(rng, 0, 1, 4, 4)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	if got := MatMul(a, id); !got.Equal(a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if got := MatMul(id, a); !got.Equal(a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulDimensionPanics(t *testing.T) {
	a, b := New(2, 3), New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with bad inner dims did not panic")
		}
	}()
	MatMul(a, b)
}

func TestMatMulTransAMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandNormal(rng, 0, 1, 5, 3) // k=5, m=3
	b := RandNormal(rng, 0, 1, 5, 4) // k=5, n=4
	got := MatMulTransA(a, b)
	want := MatMul(Transpose(a), b)
	if !got.Equal(want, 1e-10) {
		t.Fatal("MatMulTransA != Transpose+MatMul")
	}
}

func TestMatMulTransBMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandNormal(rng, 0, 1, 3, 5)
	b := RandNormal(rng, 0, 1, 4, 5)
	got := MatMulTransB(a, b)
	want := MatMul(a, Transpose(b))
	if !got.Equal(want, 1e-10) {
		t.Fatal("MatMulTransB != MatMul+Transpose")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandNormal(rng, 0, 1, 3, 7)
	if !Transpose(Transpose(a)).Equal(a, 0) {
		t.Fatal("(Aᵀ)ᵀ != A")
	}
}

func TestAddRowVectorAndSumRows(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	v := FromSlice([]float64{10, 20, 30}, 3)
	AddRowVector(a, v)
	want := FromSlice([]float64{11, 22, 33, 14, 25, 36}, 2, 3)
	if !a.Equal(want, 0) {
		t.Fatalf("AddRowVector = %v", a.Data())
	}
	s := SumRows(a)
	wantS := FromSlice([]float64{25, 47, 69}, 3)
	if !s.Equal(wantS, 0) {
		t.Fatalf("SumRows = %v", s.Data())
	}
}

// Property: matrix multiplication is associative: (AB)C == A(BC).
func TestPropertyMatMulAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n, p := rng.Intn(5)+1, rng.Intn(5)+1, rng.Intn(5)+1, rng.Intn(5)+1
		a := RandNormal(rng, 0, 1, m, k)
		b := RandNormal(rng, 0, 1, k, n)
		c := RandNormal(rng, 0, 1, n, p)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return left.Equal(right, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: (AB)ᵀ == Bᵀ Aᵀ.
func TestPropertyMatMulTransposeRule(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := rng.Intn(6)+1, rng.Intn(6)+1, rng.Intn(6)+1
		a := RandNormal(rng, 0, 1, m, k)
		b := RandNormal(rng, 0, 1, k, n)
		left := Transpose(MatMul(a, b))
		right := MatMul(Transpose(b), Transpose(a))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandNormal(rng, 0, 1, 64, 64)
	y := RandNormal(rng, 0, 1, 64, 64)
	dst := New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}
