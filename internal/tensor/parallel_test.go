package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// withParallelism runs fn at the given kernel parallelism, restoring
// the previous setting afterwards.
func withParallelism(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := Parallelism()
	SetParallelism(n)
	defer SetParallelism(prev)
	fn()
}

func bitsEqual(a, b *Tensor) bool {
	if !a.SameShape(b) {
		return false
	}
	for i, v := range a.Data() {
		if math.Float64bits(v) != math.Float64bits(b.Data()[i]) {
			return false
		}
	}
	return true
}

// Kernels must be bit-identical at every parallelism level: sharding
// partitions independent rows and all reductions keep a fixed order.
func TestKernelsBitDeterministicAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Odd sizes large enough to cross the serial threshold and split
	// into several row chunks.
	a := RandNormal(rng, 0, 1, 67, 129)
	b := RandNormal(rng, 0, 1, 129, 83)
	bt := Transpose(b) // 83×129, for TransB
	at := Transpose(a) // 129×67, for TransA
	bias := RandNormal(rng, 0, 1, 83)

	type result struct{ mm, ta, tb, tbb, sr *Tensor }
	compute := func() result {
		var r result
		r.mm = New(67, 83)
		MatMulInto(r.mm, a, b)
		r.ta = New(67, 83)
		MatMulTransAInto(r.ta, at, b)
		r.tb = New(67, 83)
		MatMulTransBInto(r.tb, a, bt)
		r.tbb = New(67, 83)
		MatMulTransBBiasInto(r.tbb, a, bt, bias)
		r.sr = New(129)
		SumRowsInto(r.sr, a.Reshape(67, 129))
		return r
	}
	var serial result
	withParallelism(t, 1, func() { serial = compute() })
	for _, p := range []int{2, 3, 8} {
		var par result
		withParallelism(t, p, func() { par = compute() })
		if !bitsEqual(serial.mm, par.mm) {
			t.Fatalf("MatMulInto differs at parallelism %d", p)
		}
		if !bitsEqual(serial.ta, par.ta) {
			t.Fatalf("MatMulTransAInto differs at parallelism %d", p)
		}
		if !bitsEqual(serial.tb, par.tb) {
			t.Fatalf("MatMulTransBInto differs at parallelism %d", p)
		}
		if !bitsEqual(serial.tbb, par.tbb) {
			t.Fatalf("MatMulTransBBiasInto differs at parallelism %d", p)
		}
		if !bitsEqual(serial.sr, par.sr) {
			t.Fatalf("SumRowsInto differs at parallelism %d", p)
		}
	}
}

func TestVecOpsBitDeterministicAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 3*vecGrain + 517 // several chunks plus a ragged tail
	mk := func() []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	x, y, z := mk(), mk(), mk()
	vecs := [][]float64{x, y, z}
	weights := []float64{0.2, 0.5, 0.3}

	type result struct {
		mean, wsum, lerp []float64
		dot, dist        float64
	}
	compute := func() result {
		var r result
		r.mean = make([]float64, n)
		VecMeanInto(r.mean, vecs)
		r.wsum = make([]float64, n)
		VecWeightedSumInto(r.wsum, vecs, weights)
		r.lerp = make([]float64, n)
		VecLerpInto(r.lerp, x, y, 0.7)
		r.dot = VecDot(x, y)
		r.dist = VecSquaredDistance(x, y)
		return r
	}
	var serial result
	withParallelism(t, 1, func() { serial = compute() })
	for _, p := range []int{2, 5} {
		var par result
		withParallelism(t, p, func() { par = compute() })
		for i := range serial.mean {
			if math.Float64bits(serial.mean[i]) != math.Float64bits(par.mean[i]) {
				t.Fatalf("VecMeanInto differs at parallelism %d, index %d", p, i)
			}
			if math.Float64bits(serial.wsum[i]) != math.Float64bits(par.wsum[i]) {
				t.Fatalf("VecWeightedSumInto differs at parallelism %d, index %d", p, i)
			}
			if math.Float64bits(serial.lerp[i]) != math.Float64bits(par.lerp[i]) {
				t.Fatalf("VecLerpInto differs at parallelism %d, index %d", p, i)
			}
		}
		if math.Float64bits(serial.dot) != math.Float64bits(par.dot) {
			t.Fatalf("VecDot differs at parallelism %d", p)
		}
		if math.Float64bits(serial.dist) != math.Float64bits(par.dist) {
			t.Fatalf("VecSquaredDistance differs at parallelism %d", p)
		}
	}
}

func TestIm2ColIntoMatchesAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := RandNormal(rng, 0, 1, 3, 2, 7, 7)
	want := Im2Col(x, 3, 3, 2, 1)
	got := New(want.Shape()...)
	got.Fill(42) // stale garbage must be fully overwritten
	Im2ColInto(got, x, 3, 3, 2, 1)
	if !bitsEqual(want, got) {
		t.Fatal("Im2ColInto differs from Im2Col")
	}
	img := New(3, 2, 7, 7)
	img.Fill(-1)
	Col2ImInto(img, got, 3, 3, 2, 1)
	if !bitsEqual(img, Col2Im(got, 3, 2, 7, 7, 3, 3, 2, 1)) {
		t.Fatal("Col2ImInto differs from Col2Im")
	}
}

func TestFusedBiasMatchesSeparate(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := RandNormal(rng, 0, 1, 5, 9)
	b := RandNormal(rng, 0, 1, 4, 9)
	bias := RandNormal(rng, 0, 1, 4)
	want := MatMulTransB(a, b)
	AddRowVector(want, bias)
	got := New(5, 4)
	MatMulTransBBiasInto(got, a, b, bias)
	if !want.Equal(got, 0) {
		t.Fatal("fused bias epilogue differs from matmul+AddRowVector")
	}
}

func TestMatMulAccVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := RandNormal(rng, 0, 1, 6, 4) // k=6, m=4
	b := RandNormal(rng, 0, 1, 6, 5) // k=6, n=5
	base := MatMulTransA(a, b)
	acc := base.Clone()
	MatMulTransAAccInto(acc, a, b)
	want := base.Scale(2)
	if !acc.Equal(want, 1e-12) {
		t.Fatal("MatMulTransAAccInto must accumulate, not overwrite")
	}
	sums := New(5)
	SumRowsAccInto(sums, base)
	SumRowsAccInto(sums, base)
	if !sums.Equal(SumRows(base).Scale(2), 1e-12) {
		t.Fatal("SumRowsAccInto must accumulate")
	}
}

func TestArenaReusesBuffers(t *testing.T) {
	var a Arena
	t1 := a.Get(4, 8)
	p1 := &t1.Data()[0]
	a.Put(t1)
	t2 := a.Get(8, 4) // same element count, different shape
	if &t2.Data()[0] != p1 {
		t.Fatal("Arena.Get did not reuse the freed buffer")
	}
	if t2.Dim(0) != 8 || t2.Dim(1) != 4 {
		t.Fatalf("Arena.Get shape %v, want [8 4]", t2.Shape())
	}
	z := a.GetZeroed(2)
	for _, v := range z.Data() {
		if v != 0 {
			t.Fatal("GetZeroed returned dirty buffer")
		}
	}
}

func TestEnsure(t *testing.T) {
	b := Ensure(nil, 3, 4)
	if b.Dim(0) != 3 || b.Dim(1) != 4 {
		t.Fatalf("Ensure(nil) shape %v", b.Shape())
	}
	same := Ensure(b, 3, 4)
	if same != b {
		t.Fatal("Ensure must return the same tensor for an identical shape")
	}
	resh := Ensure(b, 4, 3)
	if &resh.Data()[0] != &b.Data()[0] {
		t.Fatal("Ensure must reuse backing storage for equal element counts")
	}
	grown := Ensure(b, 5, 5)
	if grown.Len() != 25 {
		t.Fatalf("Ensure grew to %d elems, want 25", grown.Len())
	}
}

func TestSetParallelismClamps(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	SetParallelism(-3)
	if Parallelism() != 1 {
		t.Fatalf("Parallelism() = %d after SetParallelism(-3), want 1", Parallelism())
	}
	SetParallelism(6)
	if Parallelism() != 6 {
		t.Fatalf("Parallelism() = %d, want 6", Parallelism())
	}
}
