package tensor

// Arena is a scratch-buffer recycler for hot loops that need
// temporaries whose lifetime spans at most one forward/backward pass.
// Get pops a tensor with the requested element count from a
// size-bucketed free list (reshaping it in place) or allocates one on
// first use; Put returns it. In steady state a Get/Put cycle performs
// zero heap allocations — both the backing arrays and the Tensor
// headers are reused.
//
// An Arena is not safe for concurrent use; give each goroutine (each
// simulated device owns its model and therefore its layers' arenas)
// its own.
type Arena struct {
	free map[int][]*Tensor
}

// Get returns a tensor of the given shape with undefined contents.
// Call Zero (or GetZeroed) when the kernel needs a cleared buffer.
func (a *Arena) Get(shape ...int) *Tensor {
	n := checkShape(shape)
	if a.free == nil {
		a.free = make(map[int][]*Tensor)
	}
	bucket := a.free[n]
	if len(bucket) == 0 {
		return New(shape...)
	}
	t := bucket[len(bucket)-1]
	a.free[n] = bucket[:len(bucket)-1]
	t.shape = append(t.shape[:0], shape...)
	return t
}

// GetZeroed returns a zero-filled tensor of the given shape.
func (a *Arena) GetZeroed(shape ...int) *Tensor {
	t := a.Get(shape...)
	t.Zero()
	return t
}

// Put returns t to the arena for reuse. The caller must not touch t
// afterwards.
func (a *Arena) Put(t *Tensor) {
	if t == nil {
		return
	}
	if a.free == nil {
		a.free = make(map[int][]*Tensor)
	}
	n := len(t.data)
	a.free[n] = append(a.free[n], t)
}

// Ensure returns t when it already holds exactly the given shape, the
// usual steady-state case for per-layer activation and gradient
// buffers; otherwise it returns a fresh tensor. Contents are undefined
// after a reallocation, so callers must fully overwrite the buffer.
func Ensure(t *Tensor, shape ...int) *Tensor {
	n := checkShape(shape)
	if t == nil || len(t.data) != n {
		return New(shape...)
	}
	if len(t.shape) == len(shape) {
		same := true
		for i, d := range shape {
			if t.shape[i] != d {
				same = false
				break
			}
		}
		if same {
			return t
		}
	}
	t.shape = append(t.shape[:0], shape...)
	return t
}

// EnsureZeroed is Ensure followed by a Zero, for buffers that are
// accumulated into (scatter targets, gradient sums).
func EnsureZeroed(t *Tensor, shape ...int) *Tensor {
	t = Ensure(t, shape...)
	t.Zero()
	return t
}

// mustShape panics unless t has exactly the given shape. Like
// checkShape it formats errors without fmt, so variadic call sites do
// not heap-allocate their shape arguments.
func mustShape(op string, t *Tensor, shape ...int) {
	bad := len(t.shape) != len(shape)
	if !bad {
		for i, d := range shape {
			if t.shape[i] != d {
				bad = true
				break
			}
		}
	}
	if bad {
		panic("tensor: " + op + " shape " + shapeStr(t.shape) + ", want " + shapeStr(shape))
	}
}
