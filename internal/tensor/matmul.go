package tensor

import "fmt"

// MatMul returns the matrix product a·b for 2-D tensors a (m×k) and b (k×n).
// The inner loops are ordered i-k-j so the innermost traversal is contiguous
// in both b and the result, which matters for the conv-heavy training loops.
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions differ: %v · %v", a.shape, b.shape))
	}
	out := New(m, n)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a·b, reusing dst's storage. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	ad, bd, dd := a.data, b.data, dst.data
	for i := range dd {
		dd[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		drow := dd[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransA returns aᵀ·b for a (k×m) and b (k×n), producing m×n, without
// materializing the transpose.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA needs 2-D operands, got %v and %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimensions differ: %vᵀ · %v", a.shape, b.shape))
	}
	n := b.shape[1]
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	for p := 0; p < k; p++ {
		arow := ad[p*m : (p+1)*m]
		brow := bd[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := od[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB returns a·bᵀ for a (m×k) and b (n×k), producing m×n, without
// materializing the transpose.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB needs 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimensions differ: %v · %vᵀ", a.shape, b.shape))
	}
	n := b.shape[0]
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
	return out
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Transpose needs a 2-D tensor, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// AddRowVector adds the length-n vector v to every row of the m×n matrix a,
// in place, and returns a. Used to apply bias terms.
func AddRowVector(a, v *Tensor) *Tensor {
	if a.Dims() != 2 || v.Dims() != 1 || v.shape[0] != a.shape[1] {
		panic(fmt.Sprintf("tensor: AddRowVector shapes %v, %v", a.shape, v.shape))
	}
	m, n := a.shape[0], a.shape[1]
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		for j, bv := range v.data {
			row[j] += bv
		}
	}
	return a
}

// SumRows returns the length-n column-sum of the m×n matrix a. Used to
// reduce bias gradients over a batch.
func SumRows(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: SumRows needs a 2-D tensor, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}
