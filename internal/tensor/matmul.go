package tensor

import "fmt"

// Matrix kernels. All three product shapes (a·b, aᵀ·b, a·bᵀ) come in
// allocating, into, and (where the nn backward passes accumulate)
// into-accumulate forms, plus a fused matmul+bias epilogue for the
// dense/conv forward path. The into forms are cache-blocked over the
// inner dimension and shard independent output rows across the package
// worker pool (see parallel.go); per-element accumulation always runs
// in ascending inner-index order, so every variant is bit-deterministic
// at every parallelism level.
//
// Each kernel's sharded body is a named function — not a closure — and
// the serial path calls it directly, so kernels allocate nothing when
// Parallelism() is 1 or the matrix is below the sharding threshold.
// Only the parallel dispatch spends a few words on coordination.

// blockK is the inner-dimension tile: one tile of b (blockK rows)
// stays resident in cache while a chunk of output rows streams over it.
const blockK = 256

// MatMul returns the matrix product a·b for 2-D tensors a (m×k) and b (k×n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions differ: %v · %v", a.shape, b.shape))
	}
	out := New(m, n)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a·b, reusing dst's storage. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	ad, bd, dd := a.data, b.data, dst.data
	if runSerial(m * n * k) {
		matMulRows(dd, ad, bd, 0, m, k, n)
		return
	}
	parallelFor(m, rowGrain(m, 2*n*k), func(i0, i1 int) {
		matMulRows(dd, ad, bd, i0, i1, k, n)
	})
}

// matMulRows computes output rows [i0, i1) of dst = a·b, k-blocked so a
// tile of b stays cache-resident across the row chunk. Per element the
// accumulation over p is strictly ascending — identical to the naive
// i-k-j loop.
func matMulRows(dd, ad, bd []float64, i0, i1, k, n int) {
	for p0 := 0; p0 < k; p0 += blockK {
		p1 := p0 + blockK
		if p1 > k {
			p1 = k
		}
		for i := i0; i < i1; i++ {
			arow := ad[i*k : (i+1)*k]
			drow := dd[i*n : (i+1)*n]
			if p0 == 0 {
				for j := range drow {
					drow[j] = 0
				}
			}
			for p := p0; p < p1; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	}
}

// MatMulTransA returns aᵀ·b for a (k×m) and b (k×n), producing m×n,
// without materializing the transpose.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA needs 2-D operands, got %v and %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimensions differ: %vᵀ · %v", a.shape, b.shape))
	}
	out := New(m, b.shape[1])
	matMulTransAInto(out, a, b, false)
	return out
}

// MatMulTransAInto computes dst = aᵀ·b for a (k×m), b (k×n), dst (m×n).
func MatMulTransAInto(dst, a, b *Tensor) { matMulTransAInto(dst, a, b, false) }

// MatMulTransAAccInto computes dst += aᵀ·b, the dense/conv weight-
// gradient accumulation (dW += gradᵀ·x) without a temporary.
func MatMulTransAAccInto(dst, a, b *Tensor) { matMulTransAInto(dst, a, b, true) }

func matMulTransAInto(dst, a, b *Tensor, acc bool) {
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulTransAInto inner dimensions differ: %vᵀ · %v", a.shape, b.shape))
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	ad, bd, dd := a.data, b.data, dst.data
	if runSerial(m * n * k) {
		matMulTransARows(dd, ad, bd, 0, m, k, m, n, acc)
		return
	}
	parallelFor(m, rowGrain(m, 2*n*k), func(i0, i1 int) {
		matMulTransARows(dd, ad, bd, i0, i1, k, m, n, acc)
	})
}

// matMulTransARows computes output rows [i0, i1) of dst = aᵀ·b (or +=
// with acc), k-blocked; per element the accumulation over p ascends.
func matMulTransARows(dd, ad, bd []float64, i0, i1, k, m, n int, acc bool) {
	for p0 := 0; p0 < k; p0 += blockK {
		p1 := p0 + blockK
		if p1 > k {
			p1 = k
		}
		for i := i0; i < i1; i++ {
			drow := dd[i*n : (i+1)*n]
			if p0 == 0 && !acc {
				for j := range drow {
					drow[j] = 0
				}
			}
			for p := p0; p < p1; p++ {
				av := ad[p*m+i]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	}
}

// MatMulTransB returns a·bᵀ for a (m×k) and b (n×k), producing m×n,
// without materializing the transpose.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB needs 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m := a.shape[0]
	if b.shape[1] != a.shape[1] {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimensions differ: %v · %vᵀ", a.shape, b.shape))
	}
	out := New(m, b.shape[0])
	matMulTransBInto(out, a, b, nil)
	return out
}

// MatMulTransBInto computes dst = a·bᵀ for a (m×k), b (n×k), dst (m×n).
func MatMulTransBInto(dst, a, b *Tensor) { matMulTransBInto(dst, a, b, nil) }

// MatMulTransBBiasInto computes dst = a·bᵀ + bias broadcast over rows —
// the fused dense/conv forward epilogue (bias has n elements).
func MatMulTransBBiasInto(dst, a, b, bias *Tensor) {
	if bias.Dims() != 1 || bias.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMulTransBBiasInto bias %v, want [%d]", bias.shape, b.shape[0]))
	}
	matMulTransBInto(dst, a, b, bias.data)
}

func matMulTransBInto(dst, a, b *Tensor, bias []float64) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulTransBInto inner dimensions differ: %v · %vᵀ", a.shape, b.shape))
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	ad, bd, dd := a.data, b.data, dst.data
	if runSerial(m * n * k) {
		matMulTransBRows(dd, ad, bd, bias, 0, m, k, n)
		return
	}
	parallelFor(m, rowGrain(m, 2*n*k), func(i0, i1 int) {
		matMulTransBRows(dd, ad, bd, bias, i0, i1, k, n)
	})
}

// matMulTransBRows computes output rows [i0, i1) of dst = a·bᵀ (+bias):
// contiguous dot products, each summed in ascending p order.
func matMulTransBRows(dd, ad, bd, bias []float64, i0, i1, k, n int) {
	for i := i0; i < i1; i++ {
		arow := ad[i*k : (i+1)*k]
		drow := dd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			if bias != nil {
				s += bias[j]
			}
			drow[j] = s
		}
	}
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Transpose needs a 2-D tensor, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// AddRowVector adds the length-n vector v to every row of the m×n matrix a,
// in place, and returns a. Used to apply bias terms.
func AddRowVector(a, v *Tensor) *Tensor {
	if a.Dims() != 2 || v.Dims() != 1 || v.shape[0] != a.shape[1] {
		panic(fmt.Sprintf("tensor: AddRowVector shapes %v, %v", a.shape, v.shape))
	}
	m, n := a.shape[0], a.shape[1]
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		for j, bv := range v.data {
			row[j] += bv
		}
	}
	return a
}

// SumRows returns the length-n column-sum of the m×n matrix a. Used to
// reduce bias gradients over a batch.
func SumRows(a *Tensor) *Tensor {
	out := New(a.shape[1])
	SumRowsAccInto(out, a)
	return out
}

// SumRowsInto computes dst = column sums of a (dst has a.Dim(1) elems).
func SumRowsInto(dst, a *Tensor) {
	dst.Zero()
	SumRowsAccInto(dst, a)
}

// SumRowsAccInto computes dst += column sums of the m×n matrix a, the
// bias-gradient reduction (dB += Σ_batch grad). Rows accumulate in
// ascending order per column regardless of parallelism.
func SumRowsAccInto(dst, a *Tensor) {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: SumRowsAccInto needs a 2-D tensor, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	mustShape("SumRowsAccInto dst", dst, n)
	ad, dd := a.data, dst.data
	if runSerial(m * n * 8) {
		sumRowsCols(dd, ad, 0, n, m, n)
		return
	}
	parallelFor(n, rowGrain(n, 2*m), func(j0, j1 int) {
		sumRowsCols(dd, ad, j0, j1, m, n)
	})
}

// sumRowsCols accumulates columns [j0, j1) of the column-sum reduction,
// traversing rows in ascending order.
func sumRowsCols(dd, ad []float64, j0, j1, m, n int) {
	for i := 0; i < m; i++ {
		row := ad[i*n : (i+1)*n]
		for j := j0; j < j1; j++ {
			dd[j] += row[j]
		}
	}
}
