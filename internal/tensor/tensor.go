// Package tensor implements dense numeric tensors and the linear-algebra
// kernels the neural-network stack is built on: element-wise arithmetic,
// matrix multiplication, 2-D convolution via im2col, and pooling.
//
// Tensors store float64 data in row-major order. The package favours
// explicit, allocation-conscious APIs: most operations come in both an
// allocating form (Add) and an in-place form (AddInPlace) so hot training
// loops can avoid garbage pressure.
package tensor

import (
	"fmt"
	"math"
	"strconv"
)

// Tensor is a dense, row-major n-dimensional array of float64.
//
// The zero value is not usable; construct tensors with New, FromSlice, or
// one of the random initializers in init.go.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape. It panics if any
// dimension is non-positive or if no dimensions are given.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); the caller must not alias it afterwards unless that
// sharing is intended. It panics if len(data) does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("tensor: non-positive dimension in shape " + shapeStr(shape))
		}
		n *= d
	}
	return n
}

// shapeStr formats a shape like fmt's %v for []int, but reads only the
// element values, so passing a shape to it does not force the slice to
// escape. The hot-path shape checks (checkShape, mustShape, Ensure,
// AsShape) use it instead of fmt so their variadic arguments stay on
// the stack and steady-state training steps allocate nothing.
func shapeStr(shape []int) string {
	b := make([]byte, 0, 24)
	b = append(b, '[')
	for i, d := range shape {
		if i > 0 {
			b = append(b, ' ')
		}
		b = strconv.AppendInt(b, int64(d), 10)
	}
	b = append(b, ']')
	return string(b)
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Data returns the backing slice in row-major order. Mutating it mutates
// the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set assigns v to the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of t with a new shape sharing the same backing
// data. It panics if the element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// AsShape returns a view of t with the given shape, sharing t's
// backing data. When view (from a previous call) already aliases t, it
// is reshaped in place and returned, so steady-state callers — e.g. a
// layer viewing its weight tensor as a matrix every step — allocate
// nothing. The element counts must match.
func AsShape(view, t *Tensor, shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic("tensor: AsShape " + shapeStr(t.shape) + " to incompatible " + shapeStr(shape))
	}
	if view != nil && len(view.data) > 0 && &view.data[0] == &t.data[0] && len(view.data) == len(t.data) {
		view.shape = append(view.shape[:0], shape...)
		return view
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// SliceRows returns a view of rows [lo, hi) of t — a slice along the
// first dimension — sharing t's backing data. When view (from a
// previous call) is non-nil it is re-pointed in place and returned, so
// steady-state callers iterating a dataset in batches allocate
// nothing. The bounds must satisfy 0 <= lo < hi <= t.Dim(0).
func SliceRows(view, t *Tensor, lo, hi int) *Tensor {
	n := t.shape[0]
	if lo < 0 || hi > n || lo >= hi {
		panic("tensor: SliceRows [" + strconv.Itoa(lo) + "," + strconv.Itoa(hi) + ") of " + shapeStr(t.shape))
	}
	stride := len(t.data) / n
	if view == nil {
		view = &Tensor{}
	}
	view.shape = append(view.shape[:0], t.shape...)
	view.shape[0] = hi - lo
	view.data = t.data[lo*stride : hi*stride]
	return view
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	VecFill(t.data, v)
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

func (t *Tensor) mustSameShape(o *Tensor, op string) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, o.shape))
	}
}

// Add returns t + o element-wise.
func (t *Tensor) Add(o *Tensor) *Tensor {
	t.mustSameShape(o, "Add")
	r := t.Clone()
	for i, v := range o.data {
		r.data[i] += v
	}
	return r
}

// AddInPlace sets t = t + o element-wise and returns t.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	t.mustSameShape(o, "AddInPlace")
	VecAccumulate(t.data, o.data)
	return t
}

// Sub returns t - o element-wise.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	t.mustSameShape(o, "Sub")
	r := t.Clone()
	for i, v := range o.data {
		r.data[i] -= v
	}
	return r
}

// SubInPlace sets t = t - o element-wise and returns t.
func (t *Tensor) SubInPlace(o *Tensor) *Tensor {
	t.mustSameShape(o, "SubInPlace")
	VecSub(t.data, o.data)
	return t
}

// Mul returns the element-wise (Hadamard) product t ⊙ o.
func (t *Tensor) Mul(o *Tensor) *Tensor {
	t.mustSameShape(o, "Mul")
	r := t.Clone()
	for i, v := range o.data {
		r.data[i] *= v
	}
	return r
}

// MulInPlace sets t = t ⊙ o and returns t.
func (t *Tensor) MulInPlace(o *Tensor) *Tensor {
	t.mustSameShape(o, "MulInPlace")
	VecMul(t.data, o.data)
	return t
}

// Scale returns s·t.
func (t *Tensor) Scale(s float64) *Tensor {
	r := t.Clone()
	for i := range r.data {
		r.data[i] *= s
	}
	return r
}

// ScaleInPlace sets t = s·t and returns t.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	VecScale(t.data, s)
	return t
}

// AxpyInPlace sets t = t + a·o (BLAS axpy) and returns t.
func (t *Tensor) AxpyInPlace(a float64, o *Tensor) *Tensor {
	t.mustSameShape(o, "AxpyInPlace")
	VecAxpy(t.data, a, o.data)
	return t
}

// Apply returns a new tensor with f applied to every element.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	r := t.Clone()
	for i, v := range r.data {
		r.data[i] = f(v)
	}
	return r
}

// ApplyInPlace applies f to every element in place and returns t.
func (t *Tensor) ApplyInPlace(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.data)) }

// Max returns the maximum element and its flat index.
func (t *Tensor) Max() (float64, int) {
	best, arg := math.Inf(-1), -1
	for i, v := range t.data {
		if v > best {
			best, arg = v, i
		}
	}
	return best, arg
}

// Norm2 returns the Euclidean (L2) norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	return VecNorm2(t.data)
}

// Dot returns the inner product of the flattened tensors.
func (t *Tensor) Dot(o *Tensor) float64 {
	t.mustSameShape(o, "Dot")
	return VecDot(t.data, o.data)
}

// Equal reports whether t and o have the same shape and all elements are
// within tol of each other.
func (t *Tensor) Equal(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i, v := range t.data {
		if math.Abs(v-o.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small tensors fully and large tensors as a summary.
func (t *Tensor) String() string {
	if len(t.data) <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v[%d elems, ‖·‖₂=%.4g]", t.shape, len(t.data), t.Norm2())
}
