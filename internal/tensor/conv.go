package tensor

import "fmt"

// Conv2DShape returns the output spatial size of a 2-D convolution with the
// given input size, kernel size, stride and symmetric zero padding. It
// panics if the configuration yields a non-positive output size.
func Conv2DShape(in, kernel, stride, pad int) int {
	out := (in+2*pad-kernel)/stride + 1
	if out <= 0 {
		panic(fmt.Sprintf("tensor: conv output size %d for in=%d kernel=%d stride=%d pad=%d", out, in, kernel, stride, pad))
	}
	return out
}

// Im2Col unrolls the input image batch x with shape [N, C, H, W] into a
// matrix of shape [N·OH·OW, C·KH·KW] so convolution becomes one MatMul.
// Zero padding of pad pixels is applied on all sides.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col needs [N C H W], got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh := Conv2DShape(h, kh, stride, pad)
	ow := Conv2DShape(w, kw, stride, pad)
	cols := New(n*oh*ow, c*kh*kw)
	xd, cd := x.data, cols.data
	rowLen := c * kh * kw
	for ni := 0; ni < n; ni++ {
		imgBase := ni * c * h * w
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - pad
				row := ((ni*oh+oy)*ow + ox) * rowLen
				for ci := 0; ci < c; ci++ {
					chBase := imgBase + ci*h*w
					colBase := row + ci*kh*kw
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue // stays zero
						}
						rowBase := chBase + iy*w
						dst := colBase + ky*kw
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							cd[dst+kx] = xd[rowBase+ix]
						}
					}
				}
			}
		}
	}
	return cols
}

// Col2Im is the adjoint of Im2Col: it scatters (accumulates) the column
// matrix back into an image batch of shape [N, C, H, W]. It is used to
// back-propagate gradients through the im2col transform.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	oh := Conv2DShape(h, kh, stride, pad)
	ow := Conv2DShape(w, kw, stride, pad)
	rowLen := c * kh * kw
	if cols.Dims() != 2 || cols.shape[0] != n*oh*ow || cols.shape[1] != rowLen {
		panic(fmt.Sprintf("tensor: Col2Im cols shape %v, want [%d %d]", cols.shape, n*oh*ow, rowLen))
	}
	img := New(n, c, h, w)
	xd, cd := img.data, cols.data
	for ni := 0; ni < n; ni++ {
		imgBase := ni * c * h * w
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - pad
				row := ((ni*oh+oy)*ow + ox) * rowLen
				for ci := 0; ci < c; ci++ {
					chBase := imgBase + ci*h*w
					colBase := row + ci*kh*kw
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						rowBase := chBase + iy*w
						src := colBase + ky*kw
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							xd[rowBase+ix] += cd[src+kx]
						}
					}
				}
			}
		}
	}
	return img
}

// MaxPool2D applies max pooling with a square window and equal stride over
// x [N, C, H, W]. It returns the pooled tensor [N, C, OH, OW] and the flat
// argmax index (into x's data) for each output element, for backprop.
func MaxPool2D(x *Tensor, window, stride int) (*Tensor, []int) {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: MaxPool2D needs [N C H W], got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh := Conv2DShape(h, window, stride, 0)
	ow := Conv2DShape(w, window, stride, 0)
	out := New(n, c, oh, ow)
	arg := make([]int, out.Len())
	xd, od := x.data, out.data
	oi := 0
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			chBase := (ni*c + ci) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := -1
					bestV := 0.0
					for ky := 0; ky < window; ky++ {
						iy := oy*stride + ky
						for kx := 0; kx < window; kx++ {
							ix := ox*stride + kx
							idx := chBase + iy*w + ix
							if best == -1 || xd[idx] > bestV {
								best, bestV = idx, xd[idx]
							}
						}
					}
					od[oi] = bestV
					arg[oi] = best
					oi++
				}
			}
		}
	}
	return out, arg
}

// MaxUnpool2D scatters the pooled gradient grad back to the input shape
// using the argmax indices recorded by MaxPool2D.
func MaxUnpool2D(grad *Tensor, arg []int, inShape []int) *Tensor {
	if grad.Len() != len(arg) {
		panic(fmt.Sprintf("tensor: MaxUnpool2D grad len %d vs arg len %d", grad.Len(), len(arg)))
	}
	out := New(inShape...)
	for i, idx := range arg {
		out.data[idx] += grad.data[i]
	}
	return out
}

// AvgPoolGlobal averages each channel plane of x [N, C, H, W], returning
// [N, C]. Used for global average pooling heads.
func AvgPoolGlobal(x *Tensor) *Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: AvgPoolGlobal needs [N C H W], got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	out := New(n, c)
	plane := h * w
	inv := 1.0 / float64(plane)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * plane
			s := 0.0
			for i := 0; i < plane; i++ {
				s += x.data[base+i]
			}
			out.data[ni*c+ci] = s * inv
		}
	}
	return out
}

// AvgUnpoolGlobal spreads the [N, C] gradient evenly back over [N, C, H, W].
func AvgUnpoolGlobal(grad *Tensor, h, w int) *Tensor {
	if grad.Dims() != 2 {
		panic(fmt.Sprintf("tensor: AvgUnpoolGlobal needs [N C], got %v", grad.shape))
	}
	n, c := grad.shape[0], grad.shape[1]
	out := New(n, c, h, w)
	plane := h * w
	inv := 1.0 / float64(plane)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			g := grad.data[ni*c+ci] * inv
			base := (ni*c + ci) * plane
			for i := 0; i < plane; i++ {
				out.data[base+i] = g
			}
		}
	}
	return out
}
