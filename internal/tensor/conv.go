package tensor

import "fmt"

// Conv2DShape returns the output spatial size of a 2-D convolution with the
// given input size, kernel size, stride and symmetric zero padding. It
// panics if the configuration yields a non-positive output size.
func Conv2DShape(in, kernel, stride, pad int) int {
	out := (in+2*pad-kernel)/stride + 1
	if out <= 0 {
		panic(fmt.Sprintf("tensor: conv output size %d for in=%d kernel=%d stride=%d pad=%d", out, in, kernel, stride, pad))
	}
	return out
}

// Im2Col unrolls the input image batch x with shape [N, C, H, W] into a
// matrix of shape [N·OH·OW, C·KH·KW] so convolution becomes one MatMul.
// Zero padding of pad pixels is applied on all sides.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col needs [N C H W], got %v", x.shape))
	}
	n, c := x.shape[0], x.shape[1]
	oh := Conv2DShape(x.shape[2], kh, stride, pad)
	ow := Conv2DShape(x.shape[3], kw, stride, pad)
	cols := New(n*oh*ow, c*kh*kw)
	Im2ColInto(cols, x, kh, kw, stride, pad)
	return cols
}

// Im2ColInto is Im2Col reusing cols' storage ([N·OH·OW, C·KH·KW]).
// Images unroll independently, sharded across the worker pool.
func Im2ColInto(cols *Tensor, x *Tensor, kh, kw, stride, pad int) {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col needs [N C H W], got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh := Conv2DShape(h, kh, stride, pad)
	ow := Conv2DShape(w, kw, stride, pad)
	rowLen := c * kh * kw
	mustShape("Im2ColInto cols", cols, n*oh*ow, rowLen)
	xd, cd := x.data, cols.data
	if runSerial(n * oh * ow * rowLen * 4) {
		im2colRange(cd, xd, 0, n, c, h, w, oh, ow, kh, kw, stride, pad, rowLen)
		return
	}
	parallelFor(n, 1, func(n0, n1 int) {
		im2colRange(cd, xd, n0, n1, c, h, w, oh, ow, kh, kw, stride, pad, rowLen)
	})
}

// im2colRange unrolls images [n0, n1); images are independent, so the
// range shards freely across workers.
func im2colRange(cd, xd []float64, n0, n1, c, h, w, oh, ow, kh, kw, stride, pad, rowLen int) {
	if pad > 0 {
		// Padding positions are skipped below and must read as zero.
		seg := cd[n0*oh*ow*rowLen : n1*oh*ow*rowLen]
		for i := range seg {
			seg[i] = 0
		}
	}
	for ni := n0; ni < n1; ni++ {
		imgBase := ni * c * h * w
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - pad
				row := ((ni*oh+oy)*ow + ox) * rowLen
				for ci := 0; ci < c; ci++ {
					chBase := imgBase + ci*h*w
					colBase := row + ci*kh*kw
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue // stays zero
						}
						rowBase := chBase + iy*w
						dst := colBase + ky*kw
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							cd[dst+kx] = xd[rowBase+ix]
						}
					}
				}
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters (accumulates) the column
// matrix back into an image batch of shape [N, C, H, W]. It is used to
// back-propagate gradients through the im2col transform.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	img := New(n, c, h, w)
	Col2ImInto(img, cols, kh, kw, stride, pad)
	return img
}

// Col2ImInto is Col2Im scattering into img's storage (zeroed first).
// Images scatter independently, sharded across the worker pool.
func Col2ImInto(img *Tensor, cols *Tensor, kh, kw, stride, pad int) {
	if img.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Col2ImInto needs [N C H W] dst, got %v", img.shape))
	}
	n, c, h, w := img.shape[0], img.shape[1], img.shape[2], img.shape[3]
	oh := Conv2DShape(h, kh, stride, pad)
	ow := Conv2DShape(w, kw, stride, pad)
	rowLen := c * kh * kw
	if cols.Dims() != 2 || cols.shape[0] != n*oh*ow || cols.shape[1] != rowLen {
		panic(fmt.Sprintf("tensor: Col2Im cols shape %v, want [%d %d]", cols.shape, n*oh*ow, rowLen))
	}
	xd, cd := img.data, cols.data
	if runSerial(n * oh * ow * rowLen * 4) {
		col2imRange(xd, cd, 0, n, c, h, w, oh, ow, kh, kw, stride, pad, rowLen)
		return
	}
	parallelFor(n, 1, func(n0, n1 int) {
		col2imRange(xd, cd, n0, n1, c, h, w, oh, ow, kh, kw, stride, pad, rowLen)
	})
}

// col2imRange zeroes and scatter-accumulates images [n0, n1); each
// image's scatter touches only its own plane, so ranges shard freely.
func col2imRange(xd, cd []float64, n0, n1, c, h, w, oh, ow, kh, kw, stride, pad, rowLen int) {
	seg := xd[n0*c*h*w : n1*c*h*w]
	for i := range seg {
		seg[i] = 0
	}
	for ni := n0; ni < n1; ni++ {
		imgBase := ni * c * h * w
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - pad
				row := ((ni*oh+oy)*ow + ox) * rowLen
				for ci := 0; ci < c; ci++ {
					chBase := imgBase + ci*h*w
					colBase := row + ci*kh*kw
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						rowBase := chBase + iy*w
						src := colBase + ky*kw
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							xd[rowBase+ix] += cd[src+kx]
						}
					}
				}
			}
		}
	}
}

// MaxPool2D applies max pooling with a square window and equal stride over
// x [N, C, H, W]. It returns the pooled tensor [N, C, OH, OW] and the flat
// argmax index (into x's data) for each output element, for backprop.
func MaxPool2D(x *Tensor, window, stride int) (*Tensor, []int) {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: MaxPool2D needs [N C H W], got %v", x.shape))
	}
	n, c := x.shape[0], x.shape[1]
	oh := Conv2DShape(x.shape[2], window, stride, 0)
	ow := Conv2DShape(x.shape[3], window, stride, 0)
	out := New(n, c, oh, ow)
	arg := make([]int, out.Len())
	MaxPool2DInto(out, arg, x, window, stride)
	return out, arg
}

// MaxPool2DInto is MaxPool2D reusing out ([N, C, OH, OW]) and arg
// (len out.Len()).
func MaxPool2DInto(out *Tensor, arg []int, x *Tensor, window, stride int) {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: MaxPool2D needs [N C H W], got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh := Conv2DShape(h, window, stride, 0)
	ow := Conv2DShape(w, window, stride, 0)
	mustShape("MaxPool2DInto out", out, n, c, oh, ow)
	if len(arg) != out.Len() {
		panic(fmt.Sprintf("tensor: MaxPool2DInto arg len %d, want %d", len(arg), out.Len()))
	}
	xd, od := x.data, out.data
	if runSerial(n * c * h * w * 2) {
		maxPoolPlanes(od, xd, arg, 0, n*c, h, w, oh, ow, window, stride)
		return
	}
	parallelFor(n*c, 1, func(p0, p1 int) {
		maxPoolPlanes(od, xd, arg, p0, p1, h, w, oh, ow, window, stride)
	})
}

// maxPoolPlanes pools (image, channel) planes [p0, p1); planes are
// independent, so the range shards freely.
func maxPoolPlanes(od, xd []float64, arg []int, p0, p1, h, w, oh, ow, window, stride int) {
	plane := oh * ow
	for pc := p0; pc < p1; pc++ {
		chBase := pc * h * w
		oi := pc * plane
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := -1
				bestV := 0.0
				for ky := 0; ky < window; ky++ {
					iy := oy*stride + ky
					for kx := 0; kx < window; kx++ {
						ix := ox*stride + kx
						idx := chBase + iy*w + ix
						if best == -1 || xd[idx] > bestV {
							best, bestV = idx, xd[idx]
						}
					}
				}
				od[oi] = bestV
				arg[oi] = best
				oi++
			}
		}
	}
}

// MaxUnpool2D scatters the pooled gradient grad back to the input shape
// using the argmax indices recorded by MaxPool2D.
func MaxUnpool2D(grad *Tensor, arg []int, inShape []int) *Tensor {
	out := New(inShape...)
	MaxUnpool2DInto(out, grad, arg)
	return out
}

// MaxUnpool2DInto is MaxUnpool2D scattering into dst (zeroed first).
func MaxUnpool2DInto(dst, grad *Tensor, arg []int) {
	if grad.Len() != len(arg) {
		panic(fmt.Sprintf("tensor: MaxUnpool2D grad len %d vs arg len %d", grad.Len(), len(arg)))
	}
	dst.Zero()
	for i, idx := range arg {
		dst.data[idx] += grad.data[i]
	}
}

// AvgPoolGlobal averages each channel plane of x [N, C, H, W], returning
// [N, C]. Used for global average pooling heads.
func AvgPoolGlobal(x *Tensor) *Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: AvgPoolGlobal needs [N C H W], got %v", x.shape))
	}
	out := New(x.shape[0], x.shape[1])
	AvgPoolGlobalInto(out, x)
	return out
}

// AvgPoolGlobalInto is AvgPoolGlobal reusing out ([N, C]).
func AvgPoolGlobalInto(out, x *Tensor) {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: AvgPoolGlobal needs [N C H W], got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	mustShape("AvgPoolGlobalInto out", out, n, c)
	plane := h * w
	inv := 1.0 / float64(plane)
	for pc := 0; pc < n*c; pc++ {
		base := pc * plane
		s := 0.0
		for i := 0; i < plane; i++ {
			s += x.data[base+i]
		}
		out.data[pc] = s * inv
	}
}

// AvgUnpoolGlobal spreads the [N, C] gradient evenly back over [N, C, H, W].
func AvgUnpoolGlobal(grad *Tensor, h, w int) *Tensor {
	if grad.Dims() != 2 {
		panic(fmt.Sprintf("tensor: AvgUnpoolGlobal needs [N C], got %v", grad.shape))
	}
	out := New(grad.shape[0], grad.shape[1], h, w)
	AvgUnpoolGlobalInto(out, grad)
	return out
}

// AvgUnpoolGlobalInto is AvgUnpoolGlobal writing into out [N, C, H, W].
func AvgUnpoolGlobalInto(out, grad *Tensor) {
	if grad.Dims() != 2 || out.Dims() != 4 {
		panic(fmt.Sprintf("tensor: AvgUnpoolGlobalInto shapes %v, %v", out.shape, grad.shape))
	}
	n, c, h, w := out.shape[0], out.shape[1], out.shape[2], out.shape[3]
	mustShape("AvgUnpoolGlobalInto grad", grad, n, c)
	plane := h * w
	inv := 1.0 / float64(plane)
	for pc := 0; pc < n*c; pc++ {
		g := grad.data[pc] * inv
		base := pc * plane
		for i := 0; i < plane; i++ {
			out.data[base+i] = g
		}
	}
}
