package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The kernel worker pool. Blocked kernels shard independent output rows
// (or element chunks) across Parallelism() executors: the calling
// goroutine plus up to Parallelism()-1 pool workers. Because every
// shard owns a disjoint slice of the output and all per-element
// reductions run in a fixed order with fixed chunk boundaries, results
// are bit-identical for every parallelism level — parallelism is a
// throughput knob, never a numerics knob.

// pool is one generation of workers. SetParallelism replaces the whole
// generation; old workers drain outstanding tasks and exit.
type kernelPool struct {
	tasks chan func()
	quit  chan struct{}
}

func (p *kernelPool) worker() {
	for {
		select {
		case f := <-p.tasks:
			f()
		case <-p.quit:
			// Drain what was already submitted, then retire.
			for {
				select {
				case f := <-p.tasks:
					f()
				default:
					return
				}
			}
		}
	}
}

// trySubmit hands f to an idle-capable worker without blocking. A full
// queue (or parallelism 1) returns false and the caller runs the work
// itself, which keeps parallelFor deadlock-free even when kernels nest.
func (p *kernelPool) trySubmit(f func()) bool {
	select {
	case p.tasks <- f:
		return true
	default:
		return false
	}
}

var (
	parallelism atomic.Int64
	activePool  atomic.Pointer[kernelPool]
	parMu       sync.Mutex
)

func init() {
	SetParallelism(runtime.GOMAXPROCS(0))
}

// SetParallelism sets the number of executors the blocked kernels may
// use (the calling goroutine counts as one; n-1 pool workers are kept).
// n < 1 is clamped to 1, which makes every kernel run serially on the
// caller with zero coordination overhead. The default is GOMAXPROCS.
//
// Changing the parallelism never changes results — kernels partition
// independent work and keep all floating-point reduction orders fixed —
// so this is safe to tune per deployment. It must not be called while
// kernels are executing on other goroutines; set it at startup or
// between runs.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parMu.Lock()
	defer parMu.Unlock()
	var next *kernelPool
	if n > 1 {
		next = &kernelPool{
			tasks: make(chan func(), 4*n),
			quit:  make(chan struct{}),
		}
		for i := 0; i < n-1; i++ {
			go next.worker()
		}
	}
	prev := activePool.Swap(next)
	parallelism.Store(int64(n))
	if prev != nil {
		close(prev.quit)
	}
}

// Parallelism returns the current kernel executor count.
func Parallelism() int { return int(parallelism.Load()) }

// parallelFor runs fn over [0, n) split into chunks of the given grain.
// Chunk boundaries depend only on n and grain — never on the worker
// count — so any reduction that combines per-chunk partials in chunk
// order is deterministic across parallelism levels. fn shards must
// write disjoint state.
func parallelFor(n, grain int, fn func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	p := Parallelism()
	if p <= 1 || n <= grain {
		fn(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	var next atomic.Int64
	body := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	helpers := p - 1
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	var wg sync.WaitGroup
	if pool := activePool.Load(); pool != nil {
		for i := 0; i < helpers; i++ {
			wg.Add(1)
			if !pool.trySubmit(func() { defer wg.Done(); body() }) {
				wg.Done()
				break // pool saturated; the caller picks up the slack
			}
		}
	}
	body()
	wg.Wait()
}

// The pool invariant: every task submitted to the kernel pool is a
// leaf — it never itself submits to the pool and waits. parallelFor
// relies on this: a worker blocked inside a task could otherwise hold
// up inner kernels whose completion that same task is waiting on.
// Engine-level sharding that runs whole forward passes per shard (e.g.
// internal/eval) therefore uses its own bounded goroutines and leaves
// the pool to the kernels. This invariant is machine-checked: the
// poolleaf analyzer (internal/lint, `make lint`) rejects any func
// literal passed to parallelFor that reaches parallelFor again.

// rowGrain sizes a row chunk so each task carries roughly targetFlops
// of work, bounding scheduling overhead on small matrices.
func rowGrain(rows, flopsPerRow int) int {
	const targetFlops = 1 << 16
	if flopsPerRow <= 0 {
		flopsPerRow = 1
	}
	g := targetFlops / flopsPerRow
	if g < 1 {
		g = 1
	}
	if g > rows {
		g = rows
	}
	return g
}

// runSerial reports whether a kernel with the given total flop count
// should run on the caller alone: parallelism is off, or the work is
// too small to be worth sharding. Kernels check this *before* building
// their dispatch closure so the serial path allocates nothing.
func runSerial(totalFlops int) bool {
	const minParFlops = 1 << 15
	return Parallelism() <= 1 || totalFlops < minParFlops
}
