package tensor

import (
	"fmt"
	"math"
)

// The shared vector-math layer: chunked, optionally parallel kernels
// over flat []float64 vectors. The nn layers, the aggregation package
// (simulator and wire paths) and the tensor element-wise methods all
// route through these helpers so there is exactly one implementation
// of hot flat-vector arithmetic in the tree.
//
// Determinism contract: chunk boundaries depend only on the vector
// length (vecGrain), element-wise kernels own disjoint ranges, and
// reductions combine per-chunk partials in chunk order — so results
// are bit-identical at every parallelism level.
//
// Like the matrix kernels, every operation runs a closure-free serial
// loop when parallelism is 1 or the vector is a single chunk, keeping
// the steady-state training step allocation-free.

// vecGrain is the fixed chunk size for vector kernels. Fixed — not
// derived from the worker count — so reduction orders never change.
const vecGrain = 4096

// vecSerial reports whether a vector op of length n should run inline.
func vecSerial(n int) bool {
	return Parallelism() <= 1 || n <= vecGrain
}

func vecCheck(op string, dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: %s lengths %d vs %d", op, len(dst), len(src)))
	}
}

// VecFill sets every element of dst to v.
func VecFill(dst []float64, v float64) {
	if vecSerial(len(dst)) {
		for i := range dst {
			dst[i] = v
		}
		return
	}
	parallelFor(len(dst), vecGrain, func(lo, hi int) {
		d := dst[lo:hi]
		for i := range d {
			d[i] = v
		}
	})
}

// VecAccumulate sets dst += src element-wise (the reduce step of ring
// all-reduce). It panics on length mismatch.
func VecAccumulate(dst, src []float64) {
	vecCheck("VecAccumulate", dst, src)
	if vecSerial(len(dst)) {
		for i, v := range src {
			dst[i] += v
		}
		return
	}
	parallelFor(len(dst), vecGrain, func(lo, hi int) {
		d, s := dst[lo:hi], src[lo:hi]
		for i, v := range s {
			d[i] += v
		}
	})
}

// VecSub sets dst -= src element-wise.
func VecSub(dst, src []float64) {
	vecCheck("VecSub", dst, src)
	if vecSerial(len(dst)) {
		for i, v := range src {
			dst[i] -= v
		}
		return
	}
	parallelFor(len(dst), vecGrain, func(lo, hi int) {
		d, s := dst[lo:hi], src[lo:hi]
		for i, v := range s {
			d[i] -= v
		}
	})
}

// VecMul sets dst *= src element-wise (Hadamard product).
func VecMul(dst, src []float64) {
	vecCheck("VecMul", dst, src)
	if vecSerial(len(dst)) {
		for i, v := range src {
			dst[i] *= v
		}
		return
	}
	parallelFor(len(dst), vecGrain, func(lo, hi int) {
		d, s := dst[lo:hi], src[lo:hi]
		for i, v := range s {
			d[i] *= v
		}
	})
}

// VecScale sets v *= s element-wise (the 1/K step after an all-reduce).
func VecScale(v []float64, s float64) {
	if vecSerial(len(v)) {
		for i := range v {
			v[i] *= s
		}
		return
	}
	parallelFor(len(v), vecGrain, func(lo, hi int) {
		d := v[lo:hi]
		for i := range d {
			d[i] *= s
		}
	})
}

// VecAxpy sets dst += a·src (BLAS axpy).
func VecAxpy(dst []float64, a float64, src []float64) {
	vecCheck("VecAxpy", dst, src)
	if vecSerial(len(dst)) {
		for i, v := range src {
			dst[i] += a * v
		}
		return
	}
	parallelFor(len(dst), vecGrain, func(lo, hi int) {
		d, s := dst[lo:hi], src[lo:hi]
		for i, v := range s {
			d[i] += a * v
		}
	})
}

// vecMeanRange computes dst[lo:hi] of the element-wise mean,
// accumulating over vectors in slice order.
func vecMeanRange(dst []float64, vecs [][]float64, inv float64, lo, hi int) {
	d := dst[lo:hi]
	copy(d, vecs[0][lo:hi])
	for _, v := range vecs[1:] {
		s := v[lo:hi]
		for i, x := range s {
			d[i] += x
		}
	}
	for i := range d {
		d[i] *= inv
	}
}

// VecMeanInto sets dst[i] = mean_k(vecs[k][i]). Every vector must have
// len(dst) elements; the accumulation over vectors runs in slice order
// for every element, so the result is independent of parallelism.
func VecMeanInto(dst []float64, vecs [][]float64) {
	if len(vecs) == 0 {
		panic("tensor: VecMeanInto of no vectors")
	}
	for k, v := range vecs {
		if len(v) != len(dst) {
			panic(fmt.Sprintf("tensor: VecMeanInto vector %d length %d, want %d", k, len(v), len(dst)))
		}
	}
	inv := 1.0 / float64(len(vecs))
	if vecSerial(len(dst)) {
		vecMeanRange(dst, vecs, inv, 0, len(dst))
		return
	}
	parallelFor(len(dst), vecGrain, func(lo, hi int) {
		vecMeanRange(dst, vecs, inv, lo, hi)
	})
}

// vecWeightedSumRange computes dst[lo:hi] of the weighted sum,
// accumulating over vectors in slice order.
func vecWeightedSumRange(dst []float64, vecs [][]float64, weights []float64, lo, hi int) {
	d := dst[lo:hi]
	for i := range d {
		d[i] = 0
	}
	for k, v := range vecs {
		w := weights[k]
		if w == 0 {
			continue
		}
		s := v[lo:hi]
		for i, x := range s {
			d[i] += w * x
		}
	}
}

// VecWeightedSumInto sets dst[i] = Σ_k weights[k]·vecs[k][i]. The caller
// validates weights; accumulation runs in slice order per element.
func VecWeightedSumInto(dst []float64, vecs [][]float64, weights []float64) {
	if len(vecs) == 0 || len(vecs) != len(weights) {
		panic(fmt.Sprintf("tensor: VecWeightedSumInto %d vectors vs %d weights", len(vecs), len(weights)))
	}
	for k, v := range vecs {
		if len(v) != len(dst) {
			panic(fmt.Sprintf("tensor: VecWeightedSumInto vector %d length %d, want %d", k, len(v), len(dst)))
		}
	}
	if vecSerial(len(dst)) {
		vecWeightedSumRange(dst, vecs, weights, 0, len(dst))
		return
	}
	parallelFor(len(dst), vecGrain, func(lo, hi int) {
		vecWeightedSumRange(dst, vecs, weights, lo, hi)
	})
}

// VecLerpInto sets dst[i] = beta·b[i] + (1−beta)·a[i], the weighted
// merge used when a device integrates a broadcast model.
func VecLerpInto(dst, a, b []float64, beta float64) {
	vecCheck("VecLerpInto", dst, a)
	vecCheck("VecLerpInto", dst, b)
	ia := 1 - beta
	if vecSerial(len(dst)) {
		for i := range dst {
			dst[i] = beta*b[i] + ia*a[i]
		}
		return
	}
	parallelFor(len(dst), vecGrain, func(lo, hi int) {
		d, av, bv := dst[lo:hi], a[lo:hi], b[lo:hi]
		for i := range d {
			d[i] = beta*bv[i] + ia*av[i]
		}
	})
}

// VecDot returns Σ a[i]·b[i]. Partial sums are computed over fixed
// vecGrain chunks and combined in chunk order, so the value is
// identical at every parallelism level.
func VecDot(a, b []float64) float64 {
	vecCheck("VecDot", a, b)
	return vecReduce(len(a), func(lo, hi int) float64 {
		s := 0.0
		x, y := a[lo:hi], b[lo:hi]
		for i, v := range x {
			s += v * y[i]
		}
		return s
	})
}

// VecSquaredDistance returns Σ (a[i]−b[i])², with the same fixed-chunk
// determinism as VecDot.
func VecSquaredDistance(a, b []float64) float64 {
	vecCheck("VecSquaredDistance", a, b)
	return vecReduce(len(a), func(lo, hi int) float64 {
		s := 0.0
		x, y := a[lo:hi], b[lo:hi]
		for i, v := range x {
			d := v - y[i]
			s += d * d
		}
		return s
	})
}

// VecSum returns Σ v[i], computed over fixed vecGrain chunks whose
// partials combine in chunk order — so the bits depend only on len(v),
// not on the parallelism level or on how callers batched the writes
// that filled v (the evaluation engine's per-sample loss reduction).
// The serial path runs closure-free so steady-state evaluation stays
// allocation-free.
func VecSum(v []float64) float64 {
	if vecSerial(len(v)) {
		s := 0.0
		for lo := 0; lo < len(v); lo += vecGrain {
			hi := lo + vecGrain
			if hi > len(v) {
				hi = len(v)
			}
			cs := 0.0
			for _, x := range v[lo:hi] {
				cs += x
			}
			s += cs
		}
		return s
	}
	return vecReduce(len(v), func(lo, hi int) float64 {
		s := 0.0
		for _, x := range v[lo:hi] {
			s += x
		}
		return s
	})
}

// VecNorm2 returns the Euclidean norm of v.
func VecNorm2(v []float64) float64 {
	return math.Sqrt(VecDot(v, v))
}

// vecReduce evaluates partial over fixed vecGrain chunks and sums the
// partials in chunk order. The serial path uses the same chunking as
// the parallel one, so the reduction order — and therefore the bits —
// never depend on the worker count.
func vecReduce(n int, partial func(lo, hi int) float64) float64 {
	if vecSerial(n) {
		s := 0.0
		for lo := 0; lo < n; lo += vecGrain {
			hi := lo + vecGrain
			if hi > n {
				hi = n
			}
			s += partial(lo, hi)
		}
		return s
	}
	chunks := (n + vecGrain - 1) / vecGrain
	parts := make([]float64, chunks)
	parallelFor(n, vecGrain, func(lo, hi int) {
		parts[lo/vecGrain] = partial(lo, hi)
	})
	s := 0.0
	for _, p := range parts {
		s += p
	}
	return s
}
