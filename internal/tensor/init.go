package tensor

import (
	"math"
	"math/rand"
)

// RandNormal returns a tensor with i.i.d. N(mean, std²) entries drawn from
// rng. Passing the rng explicitly keeps every experiment reproducible.
func RandNormal(rng *rand.Rand, mean, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = mean + std*rng.NormFloat64()
	}
	return t
}

// RandUniform returns a tensor with i.i.d. U[lo, hi) entries drawn from rng.
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + (hi-lo)*rng.Float64()
	}
	return t
}

// XavierUniform returns a tensor initialized with the Glorot/Xavier uniform
// scheme for a layer with the given fan-in and fan-out.
func XavierUniform(rng *rand.Rand, fanIn, fanOut int, shape ...int) *Tensor {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return RandUniform(rng, -limit, limit, shape...)
}

// HeNormal returns a tensor initialized with the He/Kaiming normal scheme
// (std = sqrt(2/fanIn)), the standard choice before ReLU activations.
func HeNormal(rng *rand.Rand, fanIn int, shape ...int) *Tensor {
	std := math.Sqrt(2.0 / float64(fanIn))
	return RandNormal(rng, 0, std, shape...)
}
