// Package baselines implements the two comparison schemes of the
// paper's evaluation:
//
//   - Distributed training [12]: PyTorch-DDP/Horovod-style synchronous
//     data parallelism — every iteration all K devices compute one
//     mini-batch gradient, ring-all-reduce the gradients, and apply the
//     identical averaged update. Slow devices gate every iteration.
//   - Decentralized-FedAvg [11]: every device runs E local steps, then
//     all devices synchronously gossip-average their models (a full ring
//     all-reduce over K). Slow devices gate every round.
//
// Both run on the same Cluster, cost model and metrics as HADFL, so
// curves are directly comparable.
package baselines

import (
	"fmt"
	"math/rand"

	"hadfl/internal/aggregate"
	"hadfl/internal/core"
	"hadfl/internal/metrics"
	"hadfl/internal/nn"
	"hadfl/internal/p2p"
)

// DistributedConfig tunes the synchronous distributed-training baseline.
type DistributedConfig struct {
	Link         p2p.Link
	TargetEpochs float64
	MaxIters     int
	// EvalEvery evaluates the model every this many iterations.
	EvalEvery int
	Seed      int64
	// Parallelism bounds concurrent per-device gradient computation
	// within an iteration (0 = GOMAXPROCS, 1 = sequential). Results
	// are byte-identical at every setting.
	Parallelism int
	// OnRound, when non-nil, receives each evaluation point as it is
	// recorded (round = the iteration count so far). Long runs can be
	// observed — and aborted, by panicking across the callback — at
	// every EvalEvery iterations.
	OnRound func(round int, p metrics.Point)
}

// DefaultDistributedConfig mirrors core.DefaultConfig's budget.
func DefaultDistributedConfig() DistributedConfig {
	return DistributedConfig{
		Link:         p2p.Link{Latency: 0.005, Bandwidth: 1e9},
		TargetEpochs: 60,
		MaxIters:     1 << 20,
		EvalEvery:    20,
		Seed:         1,
	}
}

// RunDistributed executes synchronous data-parallel SGD on the cluster.
func RunDistributed(c *core.Cluster, cfg DistributedConfig) (*core.Result, error) {
	if cfg.EvalEvery <= 0 {
		return nil, fmt.Errorf("baselines: EvalEvery %d", cfg.EvalEvery)
	}
	series := &metrics.Series{Name: "distributed"}
	comm := core.NewCommStats()
	commModel := p2p.CommModel{Link: cfg.Link}
	k := len(c.Devices)
	paramBytes := 8 * len(c.InitParams)

	// All replicas start from the shared initial model.
	for _, d := range c.Devices {
		d.SetParameters(c.InitParams)
	}
	global := append([]float64(nil), c.InitParams...)
	now := 0.0
	totalSteps := 0
	loss0, acc0 := c.Evaluate(global)
	series.Add(metrics.Point{Epoch: 0, Time: 0, Loss: loss0, Accuracy: acc0})

	par := core.ResolveParallelism(cfg.Parallelism)
	grads := make([][]float64, k)
	losses := make([]float64, k)
	stepTimes := make([]float64, k)
	iter := 0
	for ; iter < cfg.MaxIters && c.EpochsProcessed(totalSteps) < cfg.TargetEpochs; iter++ {
		// Each device computes one gradient on its local batch,
		// concurrently up to par (devices touch only their own model,
		// loader and RNG). The barrier makes the iteration as slow as
		// the slowest device; partials join in device order so curves
		// are byte-identical at every parallelism.
		gradOne := func(i int) {
			d := c.Devices[i]
			x, y := d.Loader.Next()
			d.Model.ZeroGrads()
			logits := d.Model.Forward(x, true)
			l, g := nn.SoftmaxCrossEntropy(logits, y)
			d.Model.Backward(g)
			grads[i] = d.Model.GradientVector()
			losses[i] = l
			stepTimes[i] = d.StepTime()
		}
		if par > 1 && k > 1 {
			core.RunConcurrent(k, par, gradOne)
		} else {
			for i := range c.Devices {
				gradOne(i)
			}
		}
		slowest := 0.0
		lossSum := 0.0
		for i := range c.Devices {
			lossSum += losses[i]
			if stepTimes[i] > slowest {
				slowest = stepTimes[i]
			}
			totalSteps++
		}
		// Ring all-reduce of gradients across all K devices.
		avg := aggregate.Mean(grads)
		now += slowest + commModel.RingAllReduceTime(k, paramBytes)
		if k > 1 {
			per := int64(2 * paramBytes * (k - 1) / k)
			for _, d := range c.Devices {
				comm.DeviceBytes[d.Cfg.ID] += per
			}
		}
		// Identical update on every replica keeps them bit-equal; apply
		// through each device's optimizer (same hyper-parameters).
		for _, d := range c.Devices {
			d.Model.SetGradientVector(avg)
			d.Opt.Step(d.Model)
			d.Version++
		}
		comm.Rounds++

		if (iter+1)%cfg.EvalEvery == 0 {
			global = c.Devices[0].Parameters()
			_, acc := c.Evaluate(global)
			p := metrics.Point{
				Epoch: c.EpochsProcessed(totalSteps), Time: now,
				Loss: lossSum / float64(k), Accuracy: acc,
			}
			series.Add(p)
			if cfg.OnRound != nil {
				cfg.OnRound(iter+1, p)
			}
		}
	}
	global = c.Devices[0].Parameters()
	_, acc := c.Evaluate(global)
	series.Add(metrics.Point{Epoch: c.EpochsProcessed(totalSteps), Time: now, Loss: lastLoss(series), Accuracy: acc})
	return &core.Result{Series: series, Comm: comm, Rounds: iter, FinalParams: global}, nil
}

// FedAvgConfig tunes the Decentralized-FedAvg baseline.
type FedAvgConfig struct {
	// LocalSteps E is identical on every device (the homogeneity
	// assumption HADFL removes).
	LocalSteps   int
	Link         p2p.Link
	TargetEpochs float64
	MaxRounds    int
	Seed         int64
	// Parallelism bounds concurrent per-device local training within a
	// round (0 = GOMAXPROCS, 1 = sequential). Results are
	// byte-identical at every setting.
	Parallelism int
	// OnRound, when non-nil, receives each round's evaluation point as
	// it is recorded. Long runs can be observed — and aborted, by
	// panicking across the callback — at every synchronization round.
	OnRound func(round int, p metrics.Point)
}

// DefaultFedAvgConfig uses E=20 local steps per round.
func DefaultFedAvgConfig() FedAvgConfig {
	return FedAvgConfig{
		LocalSteps:   20,
		Link:         p2p.Link{Latency: 0.005, Bandwidth: 1e9},
		TargetEpochs: 60,
		MaxRounds:    1 << 20,
		Seed:         1,
	}
}

// RunFedAvg executes Decentralized-FedAvg: E local steps everywhere,
// then a synchronous full-population gossip average.
func RunFedAvg(c *core.Cluster, cfg FedAvgConfig) (*core.Result, error) {
	if cfg.LocalSteps <= 0 {
		return nil, fmt.Errorf("baselines: LocalSteps %d", cfg.LocalSteps)
	}
	series := &metrics.Series{Name: "decentralized-fedavg"}
	comm := core.NewCommStats()
	commModel := p2p.CommModel{Link: cfg.Link}
	k := len(c.Devices)
	paramBytes := 8 * len(c.InitParams)
	_ = rand.New(rand.NewSource(cfg.Seed))

	for _, d := range c.Devices {
		d.SetParameters(c.InitParams)
	}
	global := append([]float64(nil), c.InitParams...)
	now := 0.0
	totalSteps := 0
	loss0, acc0 := c.Evaluate(global)
	series.Add(metrics.Point{Epoch: 0, Time: 0, Loss: loss0, Accuracy: acc0})

	par := core.ResolveParallelism(cfg.Parallelism)
	losses := make([]float64, k)
	elapsedTimes := make([]float64, k)
	round := 0
	for ; round < cfg.MaxRounds && c.EpochsProcessed(totalSteps) < cfg.TargetEpochs; round++ {
		// E local steps on every device, concurrently up to par; the
		// synchronous barrier waits for the slowest. Partials join in
		// device order, keeping curves byte-identical at every
		// parallelism.
		trainOne := func(i int) {
			losses[i], elapsedTimes[i] = c.Devices[i].TrainSteps(cfg.LocalSteps)
		}
		if par > 1 && k > 1 {
			core.RunConcurrent(k, par, trainOne)
		} else {
			for i := range c.Devices {
				trainOne(i)
			}
		}
		slowest := 0.0
		lossSum := 0.0
		for i := range c.Devices {
			lossSum += losses[i]
			if elapsedTimes[i] > slowest {
				slowest = elapsedTimes[i]
			}
			totalSteps += cfg.LocalSteps
		}
		// Full-population gossip average (ring all-reduce over K).
		vecs := make([][]float64, k)
		for i, d := range c.Devices {
			vecs[i] = d.Parameters()
		}
		global = aggregate.Mean(vecs)
		now += slowest + commModel.RingAllReduceTime(k, paramBytes)
		if k > 1 {
			per := int64(2 * paramBytes * (k - 1) / k)
			for _, d := range c.Devices {
				comm.DeviceBytes[d.Cfg.ID] += per
			}
		}
		for _, d := range c.Devices {
			d.SetParameters(global)
		}
		comm.Rounds++

		_, acc := c.Evaluate(global)
		p := metrics.Point{
			Epoch: c.EpochsProcessed(totalSteps), Time: now,
			Loss: lossSum / float64(k), Accuracy: acc,
		}
		series.Add(p)
		if cfg.OnRound != nil {
			cfg.OnRound(round+1, p)
		}
	}
	return &core.Result{Series: series, Comm: comm, Rounds: round, FinalParams: global}, nil
}

func lastLoss(s *metrics.Series) float64 {
	if l, ok := s.FinalLoss(); ok {
		return l
	}
	return 0
}
