// Package baselines implements the comparison schemes of the paper's
// evaluation:
//
//   - Distributed training [12]: PyTorch-DDP/Horovod-style synchronous
//     data parallelism — every iteration all K devices compute one
//     mini-batch gradient, ring-all-reduce the gradients, and apply the
//     identical averaged update. Slow devices gate every iteration.
//   - Decentralized-FedAvg [11]: every device runs E local steps, then
//     all devices synchronously gossip-average their models (a full ring
//     all-reduce over K). Slow devices gate every round.
//   - Async-FL [6][7] (asyncfl.go): centralized asynchronous FL with
//     staleness-weighted aggregation — no barrier, but the server stays
//     in the data path.
//
// All run on the same Cluster, cost model and metrics as HADFL, so
// curves are directly comparable. Every runner takes a context and
// checks it at round and device-step boundaries: cancellation stops the
// run within one device step and returns ctx.Err(). The checks never
// change the computation of an uncancelled run.
package baselines

import (
	"context"
	"fmt"
	"math/rand"

	"hadfl/internal/aggregate"
	"hadfl/internal/core"
	"hadfl/internal/device"
	"hadfl/internal/metrics"
	"hadfl/internal/nn"
	"hadfl/internal/p2p"
	"hadfl/internal/tensor"
)

// DistributedConfig tunes the synchronous distributed-training baseline.
// The shared run knobs (TargetEpochs, Seed, Parallelism, OnRound) live
// in the embedded core.RunConfig; LocalSteps is ignored (every
// iteration is exactly one step per device).
type DistributedConfig struct {
	core.RunConfig
	Link     p2p.Link
	MaxIters int
	// EvalEvery evaluates the model every this many iterations;
	// OnRound receives each evaluation point (Round = iterations so
	// far).
	EvalEvery int
}

// DefaultDistributedConfig mirrors core.DefaultConfig's budget.
func DefaultDistributedConfig() DistributedConfig {
	return DistributedConfig{
		RunConfig: core.RunConfig{TargetEpochs: 60, Seed: 1},
		Link:      p2p.Link{Latency: 0.005, Bandwidth: 1e9},
		MaxIters:  1 << 20,
		EvalEvery: 20,
	}
}

// RunDistributed executes synchronous data-parallel SGD on the cluster.
func RunDistributed(ctx context.Context, c *core.Cluster, cfg DistributedConfig) (*core.Result, error) {
	if cfg.EvalEvery <= 0 {
		return nil, fmt.Errorf("baselines: EvalEvery %d", cfg.EvalEvery)
	}
	series := &metrics.Series{Name: "distributed"}
	comm := core.NewCommStats()
	commModel := p2p.CommModel{Link: cfg.Link}
	k := len(c.Devices)
	paramBytes := 8 * len(c.InitParams)

	// All replicas start from the shared initial model.
	for _, d := range c.Devices {
		d.SetParameters(c.InitParams)
	}
	global := append([]float64(nil), c.InitParams...)
	now := 0.0
	totalSteps := 0
	loss0, acc0 := c.Evaluate(global)
	series.Add(metrics.Point{Epoch: 0, Time: 0, Loss: loss0, Accuracy: acc0})

	par := core.ResolveParallelism(cfg.Parallelism)
	// Per-device gradient gather buffers and the averaged-update buffer
	// are allocated once and reused every iteration.
	grads := make([][]float64, k)
	for i := range grads {
		grads[i] = make([]float64, len(c.InitParams))
	}
	avg := make([]float64, len(c.InitParams))
	lossGrads := make([]*tensor.Tensor, k) // reused ∂L/∂logits buffers
	losses := make([]float64, k)
	stepTimes := make([]float64, k)
	iter := 0
	for ; iter < cfg.MaxIters && c.EpochsProcessed(totalSteps) < cfg.TargetEpochs; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Each device computes one gradient on its local batch,
		// concurrently up to par (devices touch only their own model,
		// loader and RNG). The barrier makes the iteration as slow as
		// the slowest device; partials join in device order so curves
		// are byte-identical at every parallelism.
		gradOne := func(i int) {
			if ctx.Err() != nil {
				return // canceled: the partials are abandoned below
			}
			d := c.Devices[i]
			x, y := d.Loader.Next()
			d.Model.ZeroGrads()
			logits := d.Model.Forward(x, true)
			lossGrads[i] = tensor.Ensure(lossGrads[i], logits.Dim(0), logits.Dim(1))
			losses[i] = nn.SoftmaxCrossEntropyInto(lossGrads[i], logits, y)
			d.Model.Backward(lossGrads[i])
			d.Model.GradientVectorInto(grads[i])
			stepTimes[i] = d.StepTime()
		}
		if par > 1 && k > 1 {
			core.RunConcurrent(k, par, gradOne)
		} else {
			for i := range c.Devices {
				gradOne(i)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		slowest := 0.0
		lossSum := 0.0
		for i := range c.Devices {
			lossSum += losses[i]
			if stepTimes[i] > slowest {
				slowest = stepTimes[i]
			}
			totalSteps++
		}
		// Ring all-reduce of gradients across all K devices.
		aggregate.MeanInto(avg, grads)
		now += slowest + commModel.RingAllReduceTime(k, paramBytes)
		if k > 1 {
			per := int64(2 * paramBytes * (k - 1) / k)
			for _, d := range c.Devices {
				comm.DeviceBytes[d.Cfg.ID] += per
			}
		}
		// Identical update on every replica keeps them bit-equal; apply
		// through each device's optimizer (same hyper-parameters).
		for _, d := range c.Devices {
			d.Model.SetGradientVector(avg)
			d.Opt.Step(d.Model)
			d.Version++
		}
		comm.Rounds++

		if (iter+1)%cfg.EvalEvery == 0 {
			c.Devices[0].ParametersInto(global)
			_, acc := c.Evaluate(global)
			p := metrics.Point{
				Epoch: c.EpochsProcessed(totalSteps), Time: now,
				Loss: lossSum / float64(k), Accuracy: acc,
			}
			series.Add(p)
			if cfg.OnRound != nil {
				cfg.OnRound(core.RoundInfo{
					Round: iter + 1, Time: p.Time, Loss: p.Loss, Accuracy: p.Accuracy,
				})
			}
		}
	}
	c.Devices[0].ParametersInto(global)
	_, acc := c.Evaluate(global)
	series.Add(metrics.Point{Epoch: c.EpochsProcessed(totalSteps), Time: now, Loss: lastLoss(series), Accuracy: acc})
	return &core.Result{Series: series, Comm: comm, Rounds: iter, FinalParams: global}, nil
}

// FedAvgConfig tunes the Decentralized-FedAvg baseline. The shared run
// knobs live in the embedded core.RunConfig; LocalSteps there is the
// per-round E, identical on every device (the homogeneity assumption
// HADFL removes), defaulting to 20.
type FedAvgConfig struct {
	core.RunConfig
	Link      p2p.Link
	MaxRounds int
}

// DefaultFedAvgConfig uses E=20 local steps per round.
func DefaultFedAvgConfig() FedAvgConfig {
	return FedAvgConfig{
		RunConfig: core.RunConfig{TargetEpochs: 60, Seed: 1, LocalSteps: 20},
		Link:      p2p.Link{Latency: 0.005, Bandwidth: 1e9},
		MaxRounds: 1 << 20,
	}
}

// RunFedAvg executes Decentralized-FedAvg: E local steps everywhere,
// then a synchronous full-population gossip average.
func RunFedAvg(ctx context.Context, c *core.Cluster, cfg FedAvgConfig) (*core.Result, error) {
	if cfg.LocalSteps <= 0 {
		return nil, fmt.Errorf("baselines: LocalSteps %d", cfg.LocalSteps)
	}
	series := &metrics.Series{Name: "decentralized-fedavg"}
	comm := core.NewCommStats()
	commModel := p2p.CommModel{Link: cfg.Link}
	k := len(c.Devices)
	paramBytes := 8 * len(c.InitParams)
	_ = rand.New(rand.NewSource(cfg.Seed))

	for _, d := range c.Devices {
		d.SetParameters(c.InitParams)
	}
	global := append([]float64(nil), c.InitParams...)
	now := 0.0
	totalSteps := 0
	loss0, acc0 := c.Evaluate(global)
	series.Add(metrics.Point{Epoch: 0, Time: 0, Loss: loss0, Accuracy: acc0})

	par := core.ResolveParallelism(cfg.Parallelism)
	losses := make([]float64, k)
	elapsedTimes := make([]float64, k)
	// Per-device gather buffers for the round-end gossip average,
	// allocated once and refilled in place every round.
	vecs := make([][]float64, k)
	for i := range vecs {
		vecs[i] = make([]float64, len(c.InitParams))
	}
	round := 0
	for ; round < cfg.MaxRounds && c.EpochsProcessed(totalSteps) < cfg.TargetEpochs; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// E local steps on every device, concurrently up to par; the
		// synchronous barrier waits for the slowest. Partials join in
		// device order, keeping curves byte-identical at every
		// parallelism.
		trainOne := func(i int) {
			losses[i], elapsedTimes[i] = trainStepsCtx(ctx, c.Devices[i], cfg.LocalSteps)
		}
		if par > 1 && k > 1 {
			core.RunConcurrent(k, par, trainOne)
		} else {
			for i := range c.Devices {
				trainOne(i)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		slowest := 0.0
		lossSum := 0.0
		for i := range c.Devices {
			lossSum += losses[i]
			if elapsedTimes[i] > slowest {
				slowest = elapsedTimes[i]
			}
			totalSteps += cfg.LocalSteps
		}
		// Full-population gossip average (ring all-reduce over K).
		for i, d := range c.Devices {
			d.ParametersInto(vecs[i])
		}
		aggregate.MeanInto(global, vecs)
		now += slowest + commModel.RingAllReduceTime(k, paramBytes)
		if k > 1 {
			per := int64(2 * paramBytes * (k - 1) / k)
			for _, d := range c.Devices {
				comm.DeviceBytes[d.Cfg.ID] += per
			}
		}
		for _, d := range c.Devices {
			d.SetParameters(global)
		}
		comm.Rounds++

		_, acc := c.Evaluate(global)
		p := metrics.Point{
			Epoch: c.EpochsProcessed(totalSteps), Time: now,
			Loss: lossSum / float64(k), Accuracy: acc,
		}
		series.Add(p)
		if cfg.OnRound != nil {
			cfg.OnRound(core.RoundInfo{
				Round: round + 1, Time: p.Time, Loss: p.Loss, Accuracy: p.Accuracy,
			})
		}
	}
	return &core.Result{Series: series, Comm: comm, Rounds: round, FinalParams: global}, nil
}

// trainStepsCtx runs up to n local steps on d, stopping early when ctx
// is canceled (the caller abandons the partials and returns ctx.Err(),
// so the truncated mean never reaches a result).
func trainStepsCtx(ctx context.Context, d *device.Device, n int) (meanLoss, elapsed float64) {
	sum := 0.0
	done := 0
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		l, e := d.TrainStep()
		sum += l
		elapsed += e
		done++
	}
	if done == 0 {
		return 0, 0
	}
	return sum / float64(done), elapsed
}

func lastLoss(s *metrics.Series) float64 {
	if l, ok := s.FinalLoss(); ok {
		return l
	}
	return 0
}
