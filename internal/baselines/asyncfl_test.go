package baselines

import (
	"context"
	"testing"
)

func TestAsyncFLConverges(t *testing.T) {
	c := testCluster(t, 11)
	cfg := DefaultAsyncFLConfig()
	cfg.TargetEpochs = 12
	res, err := RunAsyncFL(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.Series.MaxAccuracy()
	if best.Accuracy < 0.6 {
		t.Fatalf("async FL reached only %.2f", best.Accuracy)
	}
	if res.Rounds == 0 {
		t.Fatal("no server updates")
	}
}

func TestAsyncFLUsesCentralServer(t *testing.T) {
	c := testCluster(t, 12)
	cfg := DefaultAsyncFLConfig()
	cfg.TargetEpochs = 4
	res, err := RunAsyncFL(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The defining contrast to HADFL: the central server relays every
	// update (2M per update).
	if res.Comm.ServerBytes == 0 {
		t.Fatal("async centralized FL must load the server")
	}
	M := int64(8 * len(c.InitParams))
	want := 2 * M * int64(res.Rounds)
	if res.Comm.ServerBytes != want {
		t.Fatalf("server bytes %d, want %d", res.Comm.ServerBytes, want)
	}
}

func TestAsyncFLFastDeviceUpdatesMore(t *testing.T) {
	c := testCluster(t, 13) // powers [4,2,2,1]
	cfg := DefaultAsyncFLConfig()
	cfg.TargetEpochs = 6
	res, err := RunAsyncFL(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No barrier: the power-4 device pushes ~4× as many updates as the
	// power-1 device, visible in its upload bytes.
	fast := res.Comm.DeviceBytes[0]
	slow := res.Comm.DeviceBytes[3]
	if fast < 2*slow {
		t.Fatalf("fast device bytes %d not ≫ slow device %d", fast, slow)
	}
}

func TestAsyncFLTimeAdvancesMonotonically(t *testing.T) {
	c := testCluster(t, 14)
	cfg := DefaultAsyncFLConfig()
	cfg.TargetEpochs = 4
	res, err := RunAsyncFL(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series.Points
	for i := 1; i < len(pts); i++ {
		if pts[i].Time < pts[i-1].Time {
			t.Fatalf("time regressed at point %d", i)
		}
	}
}

func TestAsyncFLValidation(t *testing.T) {
	c := testCluster(t, 15)
	for _, mut := range []func(*AsyncFLConfig){
		func(cfg *AsyncFLConfig) { cfg.LocalSteps = 0 },
		func(cfg *AsyncFLConfig) { cfg.BaseMix = 0 },
		func(cfg *AsyncFLConfig) { cfg.BaseMix = 1.5 },
		func(cfg *AsyncFLConfig) { cfg.StalenessPower = -1 },
		func(cfg *AsyncFLConfig) { cfg.EvalEvery = 0 },
	} {
		cfg := DefaultAsyncFLConfig()
		mut(&cfg)
		if _, err := RunAsyncFL(context.Background(), c, cfg); err == nil {
			t.Errorf("invalid config accepted: %+v", cfg)
		}
	}
}

func TestAsyncFLStalenessWeighting(t *testing.T) {
	// With StalenessPower 0 every update mixes at BaseMix regardless of
	// staleness; with a large power, stale updates barely move the
	// global model. Both must run; the weighted variant should not be
	// wildly worse.
	run := func(power float64) float64 {
		c := testCluster(t, 16)
		cfg := DefaultAsyncFLConfig()
		cfg.TargetEpochs = 8
		cfg.StalenessPower = power
		res, err := RunAsyncFL(context.Background(), c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		best, _ := res.Series.MaxAccuracy()
		return best.Accuracy
	}
	uniform := run(0)
	weighted := run(1.0)
	if uniform < 0.5 || weighted < 0.5 {
		t.Fatalf("accuracy collapsed: uniform %.2f weighted %.2f", uniform, weighted)
	}
}
