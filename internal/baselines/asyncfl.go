package baselines

import (
	"context"
	"fmt"
	"math"

	"hadfl/internal/aggregate"
	"hadfl/internal/core"
	"hadfl/internal/metrics"
	"hadfl/internal/p2p"
	"hadfl/internal/simclock"
)

// AsyncFLConfig tunes the centralized asynchronous-FL baseline with
// staleness-weighted aggregation — the optimization family the paper's
// related work discusses ([6] Xie et al., [7] Lu et al.): devices push
// updates to a central server the moment they finish, and the server
// down-weights stale contributions:
//
//	w_global ← (1−β_s)·w_global + β_s·w_device
//	β_s = BaseMix · (staleness + 1)^(−StalenessPower)
//
// where staleness counts how many global updates landed since the
// device last pulled. This scheme removes the synchronous barrier but
// keeps the central server in the data path — exactly the combination
// HADFL argues against (server pressure + wasted stale work).
//
// The shared run knobs live in the embedded core.RunConfig; LocalSteps
// there is the E steps each device trains before pushing (default 12).
// The run is a single discrete-event simulation, so Parallelism is
// ignored.
type AsyncFLConfig struct {
	core.RunConfig
	BaseMix        float64 // β base in (0,1]
	StalenessPower float64 // exponent a ≥ 0 (0 = ignore staleness)
	Link           p2p.Link
	MaxUpdates     int
	EvalEvery      int // evaluate the global model every this many server updates
}

// DefaultAsyncFLConfig mirrors [6]'s polynomial staleness weighting.
func DefaultAsyncFLConfig() AsyncFLConfig {
	return AsyncFLConfig{
		RunConfig:      core.RunConfig{TargetEpochs: 60, Seed: 1, LocalSteps: 12},
		BaseMix:        0.6,
		StalenessPower: 0.5,
		Link:           p2p.Link{Latency: 0.005, Bandwidth: 1e9},
		MaxUpdates:     1 << 20,
		EvalEvery:      4,
	}
}

// RunAsyncFL executes the asynchronous baseline on the cluster, driven
// by the discrete-event engine: each device trains E steps, pushes its
// model to the server (paying upload time), receives the merged global
// (download time), and immediately starts the next cycle — no barriers,
// so fast devices update the server more often. A canceled ctx stops
// scheduling new work within one device step; the engine then drains
// and the run returns ctx.Err().
func RunAsyncFL(ctx context.Context, c *core.Cluster, cfg AsyncFLConfig) (*core.Result, error) {
	if cfg.LocalSteps <= 0 {
		return nil, fmt.Errorf("baselines: LocalSteps %d", cfg.LocalSteps)
	}
	if cfg.BaseMix <= 0 || cfg.BaseMix > 1 {
		return nil, fmt.Errorf("baselines: BaseMix %v", cfg.BaseMix)
	}
	if cfg.StalenessPower < 0 {
		return nil, fmt.Errorf("baselines: StalenessPower %v", cfg.StalenessPower)
	}
	if cfg.EvalEvery <= 0 {
		return nil, fmt.Errorf("baselines: EvalEvery %d", cfg.EvalEvery)
	}
	engine := simclock.New()
	series := &metrics.Series{Name: "async-fedavg"}
	comm := core.NewCommStats()

	global := append([]float64(nil), c.InitParams...)
	globalVersion := 0
	paramBytes := 8 * len(global)
	transfer := cfg.Link.TransferTime(paramBytes)
	totalSteps := 0
	serverUpdates := 0

	for _, d := range c.Devices {
		d.SetParameters(c.InitParams)
	}
	loss0, acc0 := c.Evaluate(global)
	series.Add(metrics.Point{Epoch: 0, Time: 0, Loss: loss0, Accuracy: acc0})

	// pulledAt tracks the global version each device last saw.
	pulledAt := make([]int, len(c.Devices))
	// devBuf is the reused per-device parameter gather buffer for the
	// server merge (events are serialized by the discrete-event engine,
	// so one buffer suffices).
	devBuf := make([]float64, len(global))

	done := func() bool {
		return ctx.Err() != nil ||
			c.EpochsProcessed(totalSteps) >= cfg.TargetEpochs ||
			serverUpdates >= cfg.MaxUpdates
	}

	var cycle func(devIdx int)
	cycle = func(devIdx int) {
		d := c.Devices[devIdx]
		meanLoss, elapsed := trainStepsCtx(ctx, d, cfg.LocalSteps)
		if ctx.Err() != nil {
			return // canceled mid-training: abandon the push
		}
		totalSteps += cfg.LocalSteps
		// Train, then upload: the merge lands after compute + transfer.
		engine.Schedule(simclock.Time(elapsed+transfer), func() {
			if ctx.Err() != nil {
				return
			}
			staleness := globalVersion - pulledAt[devIdx]
			if staleness < 0 {
				staleness = 0
			}
			beta := cfg.BaseMix * math.Pow(float64(staleness+1), -cfg.StalenessPower)
			dev := d.ParametersInto(devBuf)
			// MergeInto computes beta·dev + (1−beta)·global — the same
			// bits as the previous inline loop (addition commutes).
			aggregate.MergeInto(global, global, dev, beta)
			globalVersion++
			serverUpdates++
			// Up + down through the server.
			comm.DeviceBytes[d.Cfg.ID] += int64(paramBytes)
			comm.ServerBytes += int64(2 * paramBytes)
			comm.Rounds = serverUpdates

			if serverUpdates%cfg.EvalEvery == 0 {
				_, acc := c.Evaluate(global)
				p := metrics.Point{
					Epoch:    c.EpochsProcessed(totalSteps),
					Time:     float64(engine.Now()),
					Loss:     meanLoss,
					Accuracy: acc,
				}
				series.Add(p)
				if cfg.OnRound != nil {
					cfg.OnRound(core.RoundInfo{
						Round: serverUpdates, Time: p.Time, Loss: p.Loss, Accuracy: p.Accuracy,
					})
				}
			}
			if done() {
				return
			}
			// Download the merged model and start the next cycle.
			engine.Schedule(simclock.Time(transfer), func() {
				if done() {
					return
				}
				d.SetParameters(global)
				pulledAt[devIdx] = globalVersion
				cycle(devIdx)
			})
		})
	}
	for i := range c.Devices {
		if ctx.Err() != nil {
			break
		}
		cycle(i)
	}
	engine.Run(0)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	_, acc := c.Evaluate(global)
	lastLossV := loss0
	if l, ok := series.FinalLoss(); ok {
		lastLossV = l
	}
	series.Add(metrics.Point{
		Epoch: c.EpochsProcessed(totalSteps), Time: float64(engine.Now()),
		Loss: lastLossV, Accuracy: acc,
	})
	return &core.Result{Series: series, Comm: comm, Rounds: serverUpdates, FinalParams: global}, nil
}
