package baselines

import (
	"context"
	"math/rand"
	"testing"

	"hadfl/internal/core"
	"hadfl/internal/dataset"
	"hadfl/internal/nn"
)

func testCluster(t *testing.T, seed int64) *core.Cluster {
	t.Helper()
	full := dataset.Synthetic(dataset.SyntheticConfig{
		Samples: 1200, Features: 16, Classes: 5, ModesPerClass: 2, NoiseStd: 0.4, Seed: seed,
	})
	train, test := full.Split(1000)
	c, err := core.BuildCluster(core.ClusterSpec{
		Powers:       []float64{4, 2, 2, 1},
		BaseStepTime: 1,
		Arch: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, 16, []int{24}, 5)
		},
		Train: train, Test: test,
		BatchSize: 20,
		LR:        0.1, Momentum: 0.9,
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDistributedConverges(t *testing.T) {
	c := testCluster(t, 1)
	cfg := DefaultDistributedConfig()
	cfg.TargetEpochs = 12
	res, err := RunDistributed(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.Series.MaxAccuracy()
	if best.Accuracy < 0.7 {
		t.Fatalf("distributed training reached only %.2f", best.Accuracy)
	}
}

func TestDistributedReplicasStayIdentical(t *testing.T) {
	c := testCluster(t, 2)
	cfg := DefaultDistributedConfig()
	cfg.TargetEpochs = 2
	if _, err := RunDistributed(context.Background(), c, cfg); err != nil {
		t.Fatal(err)
	}
	p0 := c.Devices[0].Parameters()
	for i, d := range c.Devices[1:] {
		p := d.Parameters()
		for j := range p {
			if p[j] != p0[j] {
				t.Fatalf("replica %d diverged at param %d", i+1, j)
			}
		}
	}
}

func TestDistributedTimeGatedBySlowest(t *testing.T) {
	// Same total work, but a more skewed power distribution must take
	// longer wall-clock: the slowest device gates every iteration.
	run := func(powers []float64) float64 {
		full := dataset.Synthetic(dataset.SyntheticConfig{
			Samples: 600, Features: 8, Classes: 3, NoiseStd: 0.3, Seed: 9,
		})
		train, test := full.Split(500)
		c, err := core.BuildCluster(core.ClusterSpec{
			Powers: powers, BaseStepTime: 1,
			Arch:  func(rng *rand.Rand) *nn.Model { return nn.NewMLP(rng, 8, []int{8}, 3) },
			Train: train, Test: test, BatchSize: 10, LR: 0.05, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultDistributedConfig()
		cfg.TargetEpochs = 2
		res, err := RunDistributed(context.Background(), c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		last := res.Series.Points[len(res.Series.Points)-1]
		return last.Time
	}
	balanced := run([]float64{2, 2, 2, 2}) // every step takes 0.5s
	skewed := run([]float64{4, 4, 4, 1})   // straggler steps take 1s and gate the barrier
	if skewed <= balanced {
		t.Fatalf("skewed cluster time %v should exceed balanced %v", skewed, balanced)
	}
}

func TestFedAvgConverges(t *testing.T) {
	c := testCluster(t, 3)
	cfg := DefaultFedAvgConfig()
	cfg.TargetEpochs = 12
	cfg.LocalSteps = 10
	res, err := RunFedAvg(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.Series.MaxAccuracy()
	if best.Accuracy < 0.7 {
		t.Fatalf("fedavg reached only %.2f", best.Accuracy)
	}
	// All devices hold the aggregated model after each round.
	p0 := c.Devices[0].Parameters()
	p3 := c.Devices[3].Parameters()
	for j := range p0 {
		if p0[j] != p3[j] {
			t.Fatal("devices diverged after synchronous round")
		}
	}
}

func TestFedAvgValidation(t *testing.T) {
	c := testCluster(t, 4)
	cfg := DefaultFedAvgConfig()
	cfg.LocalSteps = 0
	if _, err := RunFedAvg(context.Background(), c, cfg); err == nil {
		t.Fatal("LocalSteps=0 accepted")
	}
	dcfg := DefaultDistributedConfig()
	dcfg.EvalEvery = 0
	if _, err := RunDistributed(context.Background(), c, dcfg); err == nil {
		t.Fatal("EvalEvery=0 accepted")
	}
}

func TestBothBaselinesAccountCommunication(t *testing.T) {
	c := testCluster(t, 5)
	cfg := DefaultFedAvgConfig()
	cfg.TargetEpochs = 3
	res, err := RunFedAvg(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.TotalDeviceBytes() == 0 || res.Comm.Rounds == 0 {
		t.Fatal("fedavg comm not accounted")
	}
	c2 := testCluster(t, 5)
	dcfg := DefaultDistributedConfig()
	dcfg.TargetEpochs = 1
	res2, err := RunDistributed(context.Background(), c2, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Comm.TotalDeviceBytes() == 0 {
		t.Fatal("distributed comm not accounted")
	}
	// Distributed training communicates every iteration; FedAvg every E
	// steps. Per epoch processed, distributed must send far more bytes.
	perEpochDist := float64(res2.Comm.TotalDeviceBytes()) / res2.Series.Points[len(res2.Series.Points)-1].Epoch
	perEpochFed := float64(res.Comm.TotalDeviceBytes()) / res.Series.Points[len(res.Series.Points)-1].Epoch
	if perEpochDist <= perEpochFed {
		t.Fatalf("distributed per-epoch bytes %v should exceed fedavg %v", perEpochDist, perEpochFed)
	}
}
