package experiments

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"hadfl/internal/core"
	"hadfl/internal/metrics"
	"hadfl/internal/predict"
	"hadfl/internal/strategy"
)

// CommRow summarizes one scheme's communication volume.
type CommRow struct {
	Scheme      string
	DeviceBytes int64 // total bytes sent by all devices
	ServerBytes int64 // bytes relayed through a central server
	Rounds      int
	PerRoundDev int64 // device bytes per synchronization round
}

// CommVolume reproduces the paper's communication analysis (§II-B and
// §III-D): HADFL and decentralized-FedAvg move ≈2·K·M bytes of device
// traffic per aggregation with zero central-server traffic, whereas a
// centralized FedAvg server relays 2·K·M per round itself; distributed
// training pays ring-all-reduce volume every iteration. The centralized
// row is computed analytically from the same model size for reference.
func CommVolume(ctx context.Context, fast bool, seed int64) ([]CommRow, error) {
	w := ResNetWorkload(fast, seed)
	w.TargetEpochs = w.TargetEpochs / 5 // volume shape needs few rounds
	cmp, err := RunComparison(ctx, w, Het4221, seed)
	if err != nil {
		return nil, err
	}
	row := func(name string, res *core.Result) CommRow {
		r := CommRow{Scheme: name, DeviceBytes: res.Comm.TotalDeviceBytes(), ServerBytes: res.Comm.ServerBytes, Rounds: res.Comm.Rounds}
		if r.Rounds > 0 {
			r.PerRoundDev = r.DeviceBytes / int64(r.Rounds)
		}
		return r
	}
	rows := []CommRow{
		row("hadfl", cmp.HADFL),
		row("decentralized-fedavg", cmp.FedAvg),
		row("distributed", cmp.Dist),
	}
	// Analytic centralized-FedAvg reference: every round each of K
	// devices uploads M and downloads M through the server.
	ch, err := clusterFor(w, Het4221, seed, nil)
	if err != nil {
		return nil, err
	}
	M := int64(8 * len(ch.InitParams))
	k := int64(len(Het4221))
	rounds := cmp.FedAvg.Comm.Rounds
	rows = append(rows, CommRow{
		Scheme:      "centralized-fedavg (analytic)",
		DeviceBytes: k * M * int64(rounds),
		ServerBytes: 2 * k * M * int64(rounds),
		Rounds:      rounds,
		PerRoundDev: k * M,
	})
	return rows, nil
}

// SelectionAblation compares the paper's Gaussian-at-Q3 probability
// selection (Eq. 8) against three alternatives the paper argues against:
// uniform random selection, always-freshest selection (wastes straggler
// effort), and always-stalest selection (the worst case of §IV-B).
func SelectionAblation(ctx context.Context, fast bool, seed int64) ([]*metrics.Series, error) {
	w := ResNetWorkload(fast, seed)
	powers := Het4221

	run := func(name string, override func(rng *rand.Rand, alive []int, versions map[int]float64, np int) []int) (*metrics.Series, error) {
		c, err := clusterFor(w, powers, seed, nil)
		if err != nil {
			return nil, err
		}
		cfg := hadflConfig(w, seed)
		cfg.SelectOverride = override
		res, err := core.RunHADFL(ctx, c, cfg)
		if err != nil {
			return nil, err
		}
		res.Series.Name = name
		return res.Series, nil
	}

	byVersion := func(alive []int, versions map[int]float64, np int, stalest bool) []int {
		out := append([]int(nil), alive...)
		sort.Slice(out, func(i, j int) bool {
			if stalest {
				return versions[out[i]] < versions[out[j]]
			}
			return versions[out[i]] > versions[out[j]]
		})
		if len(out) > np {
			out = out[:np]
		}
		sort.Ints(out)
		return out
	}

	var out []*metrics.Series
	gauss, err := run("select-gaussian-q3", nil)
	if err != nil {
		return nil, err
	}
	out = append(out, gauss)
	uniform, err := run("select-uniform", func(rng *rand.Rand, alive []int, versions map[int]float64, np int) []int {
		perm := rng.Perm(len(alive))
		sel := make([]int, 0, np)
		for _, i := range perm[:np] {
			sel = append(sel, alive[i])
		}
		sort.Ints(sel)
		return sel
	})
	if err != nil {
		return nil, err
	}
	out = append(out, uniform)
	freshest, err := run("select-freshest", func(rng *rand.Rand, alive []int, versions map[int]float64, np int) []int {
		return byVersion(alive, versions, np, false)
	})
	if err != nil {
		return nil, err
	}
	out = append(out, freshest)
	stalest, err := run("select-stalest", func(rng *rand.Rand, alive []int, versions map[int]float64, np int) []int {
		return byVersion(alive, versions, np, true)
	})
	if err != nil {
		return nil, err
	}
	out = append(out, stalest)
	return out, nil
}

// PredictorAblation quantifies the value of the Eq. 7 double-exponential
// smoothing predictor over the static Eq. 6 warm-up estimate, on a
// device whose compute power drifts mid-run (e.g. thermal throttling).
// It simulates the observed per-round version sequence of such a device
// and reports the mean absolute forecast error of both estimators —
// the design rationale of §III-B ("the system may be disturbed during
// training, causing varying training time").
func PredictorAblation(seed int64, rounds int, alpha float64) (adaptiveMAE, staticMAE float64) {
	if rounds <= 0 {
		rounds = 60
	}
	rng := rand.New(rand.NewSource(seed))
	// True versions: device completes ~40 steps/round, drops to ~20 after
	// the drift point, with ±10% noise.
	drift := rounds / 2
	brown := predict.NewBrown(alpha)
	static := 0.0
	var adaptErr, staticErr float64
	n := 0
	version := 0.0
	for j := 0; j < rounds; j++ {
		rate := 40.0
		if j >= drift {
			rate = 20.0
		}
		rate *= 1 + 0.1*rng.NormFloat64()
		version += rate
		if j == 0 {
			// Warm-up estimate: the first round's rate, as Eq. 6 would
			// compute from the negotiation phase.
			static = rate
			brown.Observe(version)
			continue
		}
		// Forecast made after round j-1 for round j.
		adaptPred := brown.Forecast(1)
		staticPred := version - rate + static // last actual + static rate
		adaptErr += math.Abs(adaptPred - version)
		staticErr += math.Abs(staticPred - version)
		n++
		brown.Observe(version)
	}
	return adaptErr / float64(n), staticErr / float64(n)
}

// GroupingDemo exercises the multi-group schedule of Fig. 2(a): it
// partitions ids into groups and reports, for each of the first rounds,
// whether the round is intra- or inter-group. Returned strings are
// "intra" / "inter" per round — a behavioural fixture for the grouping
// extension.
func GroupingDemo(ids []int, groupSize, interEvery, rounds int, seed int64) (groups [][]int, schedule []string) {
	rng := rand.New(rand.NewSource(seed))
	groups = strategy.Groups(rng, ids, groupSize)
	for r := 1; r <= rounds; r++ {
		if strategy.GroupSchedule(r, interEvery) {
			schedule = append(schedule, "inter")
		} else {
			schedule = append(schedule, "intra")
		}
	}
	return groups, schedule
}
