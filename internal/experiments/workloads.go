// Package experiments reproduces the paper's evaluation section: the six
// panels of Fig. 3 (loss/accuracy vs epoch, accuracy vs time, for a
// residual and a plain model under two heterogeneity distributions),
// Table I (time to maximum test accuracy for three schemes), the
// worst-case selection ablation of §IV-B, the communication-volume
// claim, and two design-choice ablations (selection function, version
// predictor). See DESIGN.md's experiment index.
package experiments

import (
	"fmt"
	"math/rand"

	"hadfl/internal/core"
	"hadfl/internal/dataset"
	"hadfl/internal/nn"
	"hadfl/internal/p2p"
	"hadfl/internal/strategy"
)

// Heterogeneity distributions evaluated in the paper.
var (
	Het3311 = []float64{3, 3, 1, 1}
	Het4221 = []float64{4, 2, 2, 1}
)

// Workload bundles a model family with its dataset and hyper-parameters.
type Workload struct {
	Name             string
	Arch             nn.Arch
	Train, Test      *dataset.Dataset
	BatchSize        int
	LR, Momentum     float64
	WeightDecay      float64
	BaseStepTime     float64
	TargetEpochs     float64
	FedAvgLocalSteps int
}

// ResNetWorkload returns the "ResNet-18-like" workload. fast=true uses a
// residual MLP on a synthetic vector task (seconds to train); fast=false
// uses the ResNetTiny convolutional model on synthetic images (the
// closer analogue, minutes to train).
func ResNetWorkload(fast bool, seed int64) Workload {
	if fast {
		train, test := vectorData(seed)
		return Workload{
			Name: "resnet",
			Arch: func(rng *rand.Rand) *nn.Model {
				return nn.NewResMLP(rng, 32, 32, 2, 10)
			},
			Train: train, Test: test,
			BatchSize: 64, LR: 0.01, Momentum: 0.9,
			BaseStepTime: 1, TargetEpochs: 50, FedAvgLocalSteps: 12,
		}
	}
	train, test := imageData(seed)
	return Workload{
		Name: "resnet",
		Arch: func(rng *rand.Rand) *nn.Model {
			return nn.NewResNetTiny(rng, 3, 8, 10)
		},
		Train: train, Test: test,
		BatchSize: 32, LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4,
		BaseStepTime: 1, TargetEpochs: 30, FedAvgLocalSteps: 12,
	}
}

// VGGWorkload returns the "VGG-16-like" (plain, non-residual) workload.
func VGGWorkload(fast bool, seed int64) Workload {
	if fast {
		train, test := vectorData(seed)
		return Workload{
			Name: "vgg",
			Arch: func(rng *rand.Rand) *nn.Model {
				return nn.NewPlainMLP(rng, 32, 32, 2, 10)
			},
			Train: train, Test: test,
			BatchSize: 64, LR: 0.01, Momentum: 0.9,
			BaseStepTime: 1, TargetEpochs: 50, FedAvgLocalSteps: 12,
		}
	}
	train, test := imageData(seed)
	return Workload{
		Name: "vgg",
		Arch: func(rng *rand.Rand) *nn.Model {
			return nn.NewVGGTiny(rng, 3, 8, 10)
		},
		Train: train, Test: test,
		BatchSize: 32, LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4,
		BaseStepTime: 1, TargetEpochs: 30, FedAvgLocalSteps: 12,
	}
}

func vectorData(seed int64) (train, test *dataset.Dataset) {
	cfg := dataset.DefaultSynthetic()
	cfg.Seed = seed
	full := dataset.Synthetic(cfg)
	return full.Split(full.Len() * 4 / 5)
}

func imageData(seed int64) (train, test *dataset.Dataset) {
	cfg := dataset.DefaultImages()
	cfg.Seed = seed
	full := dataset.Images(cfg)
	return full.Split(full.Len() * 4 / 5)
}

// clusterFor builds a fresh cluster for one scheme run. Each scheme gets
// its own cluster from the same seed so data split and initialization
// are identical across schemes.
func clusterFor(w Workload, powers []float64, seed int64, failAt map[int]float64) (*core.Cluster, error) {
	return core.BuildCluster(core.ClusterSpec{
		Powers:       powers,
		BaseStepTime: w.BaseStepTime,
		Arch:         w.Arch,
		Train:        w.Train,
		Test:         w.Test,
		BatchSize:    w.BatchSize,
		LR:           w.LR,
		Momentum:     w.Momentum,
		WeightDecay:  w.WeightDecay,
		FailAt:       failAt,
		Seed:         seed,
	})
}

// hadflConfig is the shared HADFL configuration of the paper profile:
// Tsync=1, Np=2 of 4 ("we choose two GPUs to perform partial
// synchronization each time").
func hadflConfig(w Workload, seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Strategy = strategy.Config{Tsync: 1, Np: 2}
	cfg.TargetEpochs = w.TargetEpochs
	cfg.Seed = seed
	cfg.Link = p2p.Link{Latency: 0.005, Bandwidth: 1e9}
	return cfg
}

// hetLabel formats a power array like the paper: "[3,3,1,1]".
func hetLabel(powers []float64) string {
	s := "["
	for i, p := range powers {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%g", p)
	}
	return s + "]"
}
