package experiments

import (
	"context"
	"testing"
)

func TestScaleSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep in -short mode")
	}
	rows, err := Scale(context.Background(), true, 81, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	// 4 devices → flat only; 8 devices → flat + grouped.
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	byKey := map[string]ScaleRow{}
	for _, r := range rows {
		byKey[r.Variant+"/"+itoa(r.Devices)] = r
		if r.MaxAccuracy < 0.5 {
			t.Fatalf("%s/%d accuracy %.2f", r.Variant, r.Devices, r.MaxAccuracy)
		}
		if r.Rounds == 0 || r.BytesPerDev == 0 {
			t.Fatalf("%s/%d degenerate: %+v", r.Variant, r.Devices, r)
		}
	}
	if _, ok := byKey["grouped/8"]; !ok {
		t.Fatal("missing grouped row at K=8")
	}
	// More devices process the epoch budget in less virtual time per
	// round-trip — at minimum the sweep must complete and report sane
	// monotone device counts.
	if byKey["flat/4"].Devices >= byKey["flat/8"].Devices {
		t.Fatal("device counts out of order")
	}
}

func TestRepeatPattern(t *testing.T) {
	p := repeatPattern(6)
	want := []float64{4, 2, 2, 1, 4, 2}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("repeatPattern(6) = %v", p)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
