package experiments

import (
	"context"
	"strings"
	"testing"

	"hadfl/internal/metrics"
)

func TestFigure3StructureAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 3 sweep in -short mode")
	}
	series, err := Figure3(context.Background(), true, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 3 schemes × 2 workloads × 2 heterogeneity distributions.
	if len(series) != 12 {
		t.Fatalf("%d series, want 12", len(series))
	}
	seen := map[string]bool{}
	for _, s := range series {
		if seen[s.Name] {
			t.Fatalf("duplicate series %q", s.Name)
		}
		seen[s.Name] = true
		if s.Len() < 2 {
			t.Fatalf("series %q has %d points", s.Name, s.Len())
		}
		parts := strings.Split(s.Name, "/")
		if len(parts) != 3 {
			t.Fatalf("series name %q not scheme/workload/het", s.Name)
		}
		// Loss starts high and ends lower (panels a/d shape).
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		if last.Loss >= first.Loss {
			t.Fatalf("series %q: loss did not decrease (%v → %v)", s.Name, first.Loss, last.Loss)
		}
		// Accuracy ends above chance for a 10-class task (panels b/e).
		best, _ := s.MaxAccuracy()
		if best.Accuracy < 0.3 {
			t.Fatalf("series %q max accuracy %.2f", s.Name, best.Accuracy)
		}
	}
	// Panel c/f shape: for each workload×het, HADFL reaches 60% accuracy
	// in less virtual time than both baselines.
	byName := map[string]*metrics.Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	for _, wl := range []string{"resnet", "vgg"} {
		for _, het := range []string{"[3,3,1,1]", "[4,2,2,1]"} {
			suffix := "/" + wl + "/" + het
			h, okH := byName["hadfl"+suffix].TimeToAccuracy(0.6)
			f, okF := byName["decentralized-fedavg"+suffix].TimeToAccuracy(0.6)
			d, okD := byName["distributed"+suffix].TimeToAccuracy(0.6)
			if !okH || !okF || !okD {
				t.Fatalf("%s: not all schemes reach 60%%", suffix)
			}
			if h >= f || h >= d {
				t.Fatalf("%s: HADFL %.1fs not fastest to 60%% (fedavg %.1fs, dist %.1fs)", suffix, h, f, d)
			}
		}
	}
}
