package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"hadfl/internal/baselines"
	"hadfl/internal/core"
	"hadfl/internal/metrics"
)

// Comparison holds one workload × heterogeneity sweep across the three
// schemes, the unit from which every Fig. 3 panel and Table I row is
// derived.
type Comparison struct {
	Workload string
	Het      string
	HADFL    *core.Result
	FedAvg   *core.Result
	Dist     *core.Result
}

// RunComparison trains the workload under all three schemes on identical
// clusters (same seed → same split, same initialization).
func RunComparison(ctx context.Context, w Workload, powers []float64, seed int64) (*Comparison, error) {
	ch, err := clusterFor(w, powers, seed, nil)
	if err != nil {
		return nil, err
	}
	hadfl, err := core.RunHADFL(ctx, ch, hadflConfig(w, seed))
	if err != nil {
		return nil, fmt.Errorf("hadfl: %w", err)
	}

	cf, err := clusterFor(w, powers, seed, nil)
	if err != nil {
		return nil, err
	}
	fcfg := baselines.DefaultFedAvgConfig()
	fcfg.TargetEpochs = w.TargetEpochs
	fcfg.LocalSteps = w.FedAvgLocalSteps
	fcfg.Seed = seed
	fedavg, err := baselines.RunFedAvg(ctx, cf, fcfg)
	if err != nil {
		return nil, fmt.Errorf("fedavg: %w", err)
	}

	cd, err := clusterFor(w, powers, seed, nil)
	if err != nil {
		return nil, err
	}
	dcfg := baselines.DefaultDistributedConfig()
	dcfg.TargetEpochs = w.TargetEpochs
	dcfg.Seed = seed
	dist, err := baselines.RunDistributed(ctx, cd, dcfg)
	if err != nil {
		return nil, fmt.Errorf("distributed: %w", err)
	}

	return &Comparison{
		Workload: w.Name,
		Het:      hetLabel(powers),
		HADFL:    hadfl,
		FedAvg:   fedavg,
		Dist:     dist,
	}, nil
}

// Figure3 regenerates the data behind all six panels of Fig. 3:
// loss-vs-epoch, accuracy-vs-epoch and accuracy-vs-time for the
// residual ("resnet") and plain ("vgg") workloads under both
// heterogeneity distributions. Each returned series is named
// scheme/workload/het; the panel projections (epoch vs time x-axis) are
// taken from the same points.
func Figure3(ctx context.Context, fast bool, seed int64) ([]*metrics.Series, error) {
	var out []*metrics.Series
	for _, w := range []Workload{ResNetWorkload(fast, seed), VGGWorkload(fast, seed)} {
		for _, powers := range [][]float64{Het3311, Het4221} {
			cmp, err := RunComparison(ctx, w, powers, seed)
			if err != nil {
				return nil, err
			}
			for _, pair := range []struct {
				scheme string
				res    *core.Result
			}{
				{"hadfl", cmp.HADFL},
				{"decentralized-fedavg", cmp.FedAvg},
				{"distributed", cmp.Dist},
			} {
				s := &metrics.Series{
					Name:   fmt.Sprintf("%s/%s/%s", pair.scheme, cmp.Workload, cmp.Het),
					Points: pair.res.Series.Points,
				}
				out = append(out, s)
			}
		}
	}
	return out, nil
}

// Table1Row is one row of the reproduced Table I.
type Table1Row struct {
	Scheme   string
	Workload string
	Het      string
	Accuracy float64 // maximum test accuracy reached
	Time     float64 // virtual seconds to reach it
	Speedup  float64 // HADFL time ÷ this scheme's time (1.0 for HADFL)
}

// Table1 regenerates Table I: the time each scheme needs to reach its
// maximum test accuracy, for both workloads and both heterogeneity
// distributions, plus the speedup of HADFL over each baseline.
func Table1(ctx context.Context, fast bool, seed int64) ([]Table1Row, error) {
	var rows []Table1Row
	for _, w := range []Workload{ResNetWorkload(fast, seed), VGGWorkload(fast, seed)} {
		for _, powers := range [][]float64{Het3311, Het4221} {
			cmp, err := RunComparison(ctx, w, powers, seed)
			if err != nil {
				return nil, err
			}
			ht, _, _ := cmp.HADFL.Series.TimeToMaxAccuracy()
			add := func(scheme string, res *core.Result) {
				t, acc, ok := res.Series.TimeToMaxAccuracy()
				if !ok {
					return
				}
				sp := 0.0
				if ht > 0 {
					sp = t / ht
				}
				rows = append(rows, Table1Row{
					Scheme: scheme, Workload: w.Name, Het: cmp.Het,
					Accuracy: acc, Time: t, Speedup: sp,
				})
			}
			add("distributed", cmp.Dist)
			add("decentralized-fedavg", cmp.FedAvg)
			add("hadfl", cmp.HADFL)
		}
	}
	return rows, nil
}

// RenderTable1 formats rows like the paper's Table I.
func RenderTable1(rows []Table1Row) *metrics.Table {
	t := &metrics.Table{Header: []string{"scheme", "workload", "het", "max-accuracy", "time", "hadfl-speedup"}}
	for _, r := range rows {
		t.AddRow(r.Scheme, r.Workload, r.Het,
			fmt.Sprintf("%.1f%%", 100*r.Accuracy),
			fmt.Sprintf("%.2f s", r.Time),
			fmt.Sprintf("%.2fx", r.Speedup))
	}
	return t
}

// WorstCase reproduces the §IV-B "upper bound of accuracy loss"
// ablation: HADFL with the normal Eq. 8 selection versus HADFL forced to
// always select the two devices with the worst computing power, on the
// [3,3,1,1] distribution.
func WorstCase(ctx context.Context, fast bool, seed int64) (normal, worst *core.Result, err error) {
	w := ResNetWorkload(fast, seed)
	cn, err := clusterFor(w, Het3311, seed, nil)
	if err != nil {
		return nil, nil, err
	}
	normal, err = core.RunHADFL(ctx, cn, hadflConfig(w, seed))
	if err != nil {
		return nil, nil, err
	}

	cw, err := clusterFor(w, Het3311, seed, nil)
	if err != nil {
		return nil, nil, err
	}
	cfg := hadflConfig(w, seed)
	// Devices 2 and 3 have power 1 (the worst); always select them.
	cfg.SelectOverride = func(rng *rand.Rand, alive []int, versions map[int]float64, np int) []int {
		// Lowest versions ≈ worst computing power.
		out := append([]int(nil), alive...)
		sort.Slice(out, func(i, j int) bool { return versions[out[i]] < versions[out[j]] })
		if len(out) > np {
			out = out[:np]
		}
		sort.Ints(out)
		return out
	}
	worst, err = core.RunHADFL(ctx, cw, cfg)
	if err != nil {
		return nil, nil, err
	}
	normal.Series.Name = "hadfl-normal"
	worst.Series.Name = "hadfl-worst-case"
	return normal, worst, nil
}
