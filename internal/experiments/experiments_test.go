package experiments

import (
	"context"
	"strings"
	"testing"
)

// The experiment tests run the fast profile with reduced epoch budgets;
// they check structure and qualitative shape, not absolute numbers.

func fastWorkload(name string, seed int64) Workload {
	var w Workload
	if name == "resnet" {
		w = ResNetWorkload(true, seed)
	} else {
		w = VGGWorkload(true, seed)
	}
	w.TargetEpochs = 10
	return w
}

func TestRunComparisonProducesAllSchemes(t *testing.T) {
	cmp, err := RunComparison(context.Background(), fastWorkload("resnet", 1), Het4221, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]interface{ Len() int }{
		"hadfl":  cmp.HADFL.Series,
		"fedavg": cmp.FedAvg.Series,
		"dist":   cmp.Dist.Series,
	} {
		if res.Len() < 2 {
			t.Fatalf("%s series has %d points", name, res.Len())
		}
	}
	if cmp.Het != "[4,2,2,1]" {
		t.Fatalf("het label %q", cmp.Het)
	}
}

func TestHADFLFasterThanBaselinesOnSkewedCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("25-epoch comparison in -short mode")
	}
	// The headline claim, in the paper's own metric (Table I): on a
	// heterogeneous cluster HADFL reaches its maximum test accuracy in
	// less virtual time than both synchronous baselines, because the
	// fast devices never idle. Uses a meaningful epoch budget so the
	// comparison is not dominated by warm-up.
	w := ResNetWorkload(true, 2)
	w.TargetEpochs = 25
	cmp, err := RunComparison(context.Background(), w, Het4221, 2)
	if err != nil {
		t.Fatal(err)
	}
	th, hAcc, _ := cmp.HADFL.Series.TimeToMaxAccuracy()
	tf, fAcc, _ := cmp.FedAvg.Series.TimeToMaxAccuracy()
	td, dAcc, _ := cmp.Dist.Series.TimeToMaxAccuracy()
	if th >= tf || th >= td {
		t.Fatalf("HADFL %.1fs not faster to max accuracy than fedavg %.1fs / dist %.1fs", th, tf, td)
	}
	// "With almost no loss of convergence accuracy": within a few points
	// of the synchronous schemes.
	if hAcc < fAcc-0.05 || hAcc < dAcc-0.05 {
		t.Fatalf("HADFL accuracy %.3f too far below fedavg %.3f / dist %.3f", hAcc, fAcc, dAcc)
	}
}

func TestTable1RowsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 1 sweep in -short mode")
	}
	rows, err := Table1(context.Background(), true, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 3 schemes × 2 workloads × 2 heterogeneity distributions.
	if len(rows) != 12 {
		t.Fatalf("%d rows, want 12", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Scheme+"/"+r.Workload+"/"+r.Het] = true
		if r.Accuracy <= 0 || r.Accuracy > 1 {
			t.Fatalf("accuracy %v", r.Accuracy)
		}
		if r.Time <= 0 {
			t.Fatalf("time %v", r.Time)
		}
		if r.Scheme == "hadfl" && (r.Speedup < 0.99 || r.Speedup > 1.01) {
			t.Fatalf("hadfl speedup %v, want 1.0", r.Speedup)
		}
	}
	if len(seen) != 12 {
		t.Fatalf("duplicate rows: %v", seen)
	}
	tbl := RenderTable1(rows)
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hadfl") {
		t.Fatal("rendered table missing hadfl rows")
	}
}

func TestWorstCaseUnderperformsNormal(t *testing.T) {
	if testing.Short() {
		t.Skip("worst-case sweep in -short mode")
	}
	normal, worst, err := WorstCase(context.Background(), true, 4)
	if err != nil {
		t.Fatal(err)
	}
	nBest, _ := normal.Series.MaxAccuracy()
	wBest, _ := worst.Series.MaxAccuracy()
	// §IV-B: the worst case still trains (bounded loss) but reaches a
	// lower ceiling — only the two slowest devices' data drives updates.
	if wBest.Accuracy <= 0.3 {
		t.Fatalf("worst case collapsed to %.2f", wBest.Accuracy)
	}
	if wBest.Accuracy > nBest.Accuracy+0.02 {
		t.Fatalf("worst case %.3f should not beat normal %.3f", wBest.Accuracy, nBest.Accuracy)
	}
}

func TestCommVolumeShape(t *testing.T) {
	rows, err := CommVolume(context.Background(), true, 5)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CommRow{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	hadfl, ok1 := byName["hadfl"]
	fedavg, ok2 := byName["decentralized-fedavg"]
	dist, ok3 := byName["distributed"]
	central, ok4 := byName["centralized-fedavg (analytic)"]
	if !ok1 || !ok2 || !ok3 || !ok4 {
		t.Fatalf("missing rows: %v", rows)
	}
	// Decentralized schemes put zero load on a central server.
	if hadfl.ServerBytes != 0 || fedavg.ServerBytes != 0 || dist.ServerBytes != 0 {
		t.Fatal("decentralized schemes must have zero server bytes")
	}
	if central.ServerBytes == 0 {
		t.Fatal("centralized reference must load the server")
	}
	// HADFL's per-round device volume must not exceed FedAvg's (paper:
	// same 2KM total, and only Np of K devices ring-reduce).
	if hadfl.PerRoundDev > fedavg.PerRoundDev {
		t.Fatalf("hadfl per-round %d exceeds fedavg %d", hadfl.PerRoundDev, fedavg.PerRoundDev)
	}
	// Distributed training communicates every iteration: far more rounds.
	if dist.Rounds <= fedavg.Rounds {
		t.Fatalf("distributed rounds %d should exceed fedavg rounds %d", dist.Rounds, fedavg.Rounds)
	}
}

func TestSelectionAblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep in -short mode")
	}
	series, err := SelectionAblation(context.Background(), true, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("%d variants", len(series))
	}
	best := map[string]float64{}
	for _, s := range series {
		b, ok := s.MaxAccuracy()
		if !ok {
			t.Fatalf("empty series %s", s.Name)
		}
		best[s.Name] = b.Accuracy
	}
	// The stalest-only variant is the paper's worst case; it must not be
	// the best performer.
	if best["select-stalest"] > best["select-gaussian-q3"]+0.03 {
		t.Fatalf("stalest-only %v beats gaussian %v", best["select-stalest"], best["select-gaussian-q3"])
	}
}

func TestPredictorAblationAdaptiveWins(t *testing.T) {
	adaptive, static := PredictorAblation(7, 80, 0.5)
	if adaptive <= 0 || static <= 0 {
		t.Fatalf("MAEs %v %v", adaptive, static)
	}
	if adaptive >= static {
		t.Fatalf("adaptive MAE %v should beat static %v under drift", adaptive, static)
	}
}

func TestGroupingDemo(t *testing.T) {
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7}
	groups, schedule := GroupingDemo(ids, 3, 4, 8, 1)
	if len(groups) != 3 {
		t.Fatalf("%d groups", len(groups))
	}
	if len(schedule) != 8 {
		t.Fatalf("%d schedule entries", len(schedule))
	}
	inter := 0
	for i, s := range schedule {
		if s == "inter" {
			inter++
			if (i+1)%4 != 0 {
				t.Fatalf("inter-group round at position %d", i+1)
			}
		}
	}
	if inter != 2 {
		t.Fatalf("%d inter-group rounds, want 2", inter)
	}
}

func TestHetLabel(t *testing.T) {
	if got := hetLabel([]float64{3, 3, 1, 1}); got != "[3,3,1,1]" {
		t.Fatalf("hetLabel = %q", got)
	}
}

func TestWorkloadProfiles(t *testing.T) {
	for _, fast := range []bool{true, false} {
		for _, w := range []Workload{ResNetWorkload(fast, 1), VGGWorkload(fast, 1)} {
			if w.Train.Len() == 0 || w.Test.Len() == 0 {
				t.Fatalf("workload %s (fast=%v) has empty data", w.Name, fast)
			}
			if w.Arch == nil || w.BatchSize <= 0 || w.TargetEpochs <= 0 {
				t.Fatalf("workload %s (fast=%v) misconfigured", w.Name, fast)
			}
		}
	}
}
