package experiments

import (
	"context"
	"hadfl/internal/core"
)

// EXT-SCALE: the paper's headline future-work item is deploying HADFL
// "on larger-scale systems". This sweep grows the federation (K = 4, 8,
// 16 devices) with a repeating heterogeneity pattern and measures how
// time-to-accuracy and per-device communication volume scale, for both
// flat HADFL and (at K ≥ 8) the grouped hierarchy.

// ScaleRow is one federation size's outcome.
type ScaleRow struct {
	Devices     int
	Variant     string // "flat" or "grouped"
	MaxAccuracy float64
	TimeToMax   float64
	BytesPerDev int64
	Rounds      int
}

// repeatPattern tiles the [4,2,2,1] heterogeneity pattern to k devices.
func repeatPattern(k int) []float64 {
	base := []float64{4, 2, 2, 1}
	out := make([]float64, k)
	for i := range out {
		out[i] = base[i%len(base)]
	}
	return out
}

// Scale runs the sweep. Np scales with K (K/2 selected per round, as in
// the paper's "typically ≤ K/2" remark).
func Scale(ctx context.Context, fast bool, seed int64, sizes []int) ([]ScaleRow, error) {
	if len(sizes) == 0 {
		sizes = []int{4, 8, 16}
	}
	w := ResNetWorkload(fast, seed)
	w.TargetEpochs = w.TargetEpochs / 2
	var rows []ScaleRow
	for _, k := range sizes {
		powers := repeatPattern(k)

		cf, err := clusterFor(w, powers, seed, nil)
		if err != nil {
			return nil, err
		}
		cfg := hadflConfig(w, seed)
		cfg.Strategy.Np = k / 2
		if cfg.Strategy.Np < 1 {
			cfg.Strategy.Np = 1
		}
		flat, err := core.RunHADFL(ctx, cf, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, scaleRow(k, "flat", flat))

		if k >= 8 {
			cg, err := clusterFor(w, powers, seed, nil)
			if err != nil {
				return nil, err
			}
			gcfg := core.DefaultGroupedConfig()
			gcfg.Base = hadflConfig(w, seed)
			gcfg.GroupSize = 4
			gcfg.IntraNp = 2
			gcfg.InterEvery = 2
			grouped, err := core.RunHADFLGrouped(ctx, cg, gcfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, scaleRow(k, "grouped", grouped))
		}
	}
	return rows, nil
}

func scaleRow(k int, variant string, res *core.Result) ScaleRow {
	tt, acc, _ := res.Series.TimeToMaxAccuracy()
	perDev := int64(0)
	if k > 0 {
		perDev = res.Comm.TotalDeviceBytes() / int64(k)
	}
	return ScaleRow{
		Devices: k, Variant: variant,
		MaxAccuracy: acc, TimeToMax: tt,
		BytesPerDev: perDev, Rounds: res.Rounds,
	}
}
