package experiments

import (
	"context"
	"fmt"

	"hadfl/internal/baselines"
	"hadfl/internal/core"
	"hadfl/internal/metrics"
	"hadfl/internal/p2p"
)

// EXT-ASYNC: HADFL versus the staleness-weighted asynchronous
// centralized FL of the paper's related work ([6][7]). The paper argues
// async-centralized removes the straggler barrier but keeps the server
// in the data path and wastes stale work; this experiment measures both
// effects.

// AsyncRow summarizes one scheme in the async comparison.
type AsyncRow struct {
	Scheme      string
	MaxAccuracy float64
	TimeToMax   float64
	ServerBytes int64
	DeviceBytes int64
}

// AsyncComparison runs HADFL and async-FedAvg on identical clusters.
func AsyncComparison(ctx context.Context, fast bool, seed int64) ([]AsyncRow, error) {
	w := ResNetWorkload(fast, seed)
	ch, err := clusterFor(w, Het4221, seed, nil)
	if err != nil {
		return nil, err
	}
	hadfl, err := core.RunHADFL(ctx, ch, hadflConfig(w, seed))
	if err != nil {
		return nil, err
	}
	ca, err := clusterFor(w, Het4221, seed, nil)
	if err != nil {
		return nil, err
	}
	acfg := baselines.DefaultAsyncFLConfig()
	acfg.TargetEpochs = w.TargetEpochs
	acfg.LocalSteps = w.FedAvgLocalSteps
	acfg.Seed = seed
	async, err := baselines.RunAsyncFL(ctx, ca, acfg)
	if err != nil {
		return nil, err
	}
	row := func(name string, res *core.Result) AsyncRow {
		tt, acc, _ := res.Series.TimeToMaxAccuracy()
		return AsyncRow{
			Scheme: name, MaxAccuracy: acc, TimeToMax: tt,
			ServerBytes: res.Comm.ServerBytes,
			DeviceBytes: res.Comm.TotalDeviceBytes(),
		}
	}
	return []AsyncRow{row("hadfl", hadfl), row("async-fedavg", async)}, nil
}

// EXT-BAND: heterogeneous network bandwidth (the paper's future-work
// axis). HADFL's ring all-reduce is gated by its slowest member's link,
// so a bandwidth-skewed cluster stretches the time axis.

// BandwidthRow is one link profile's outcome.
type BandwidthRow struct {
	Profile     string
	MaxAccuracy float64
	TimeToMax   float64
	TotalTime   float64
}

// HetBandwidth runs HADFL under uniform, mildly skewed, and severely
// skewed per-device links.
func HetBandwidth(ctx context.Context, fast bool, seed int64) ([]BandwidthRow, error) {
	w := ResNetWorkload(fast, seed)
	w.TargetEpochs = w.TargetEpochs / 2
	profiles := []struct {
		name  string
		links map[int]p2p.Link
	}{
		{"uniform (1 Gb/s)", nil},
		{"one slow device (10 Mb/s)", map[int]p2p.Link{
			3: {Latency: 0.02, Bandwidth: 1.25e6},
		}},
		{"all slow (10 Mb/s)", map[int]p2p.Link{
			0: {Latency: 0.02, Bandwidth: 1.25e6},
			1: {Latency: 0.02, Bandwidth: 1.25e6},
			2: {Latency: 0.02, Bandwidth: 1.25e6},
			3: {Latency: 0.02, Bandwidth: 1.25e6},
		}},
	}
	var rows []BandwidthRow
	for _, p := range profiles {
		c, err := clusterFor(w, Het4221, seed, nil)
		if err != nil {
			return nil, err
		}
		cfg := hadflConfig(w, seed)
		cfg.DeviceLinks = p.links
		res, err := core.RunHADFL(ctx, c, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.name, err)
		}
		tt, acc, _ := res.Series.TimeToMaxAccuracy()
		rows = append(rows, BandwidthRow{
			Profile: p.name, MaxAccuracy: acc, TimeToMax: tt,
			TotalTime: res.Series.Points[len(res.Series.Points)-1].Time,
		})
	}
	return rows, nil
}

// EXT-GROUP: flat HADFL versus the hierarchical grouping of Fig. 2(a)
// on a larger (8-device) federation.

// GroupedComparison returns the flat and grouped training curves.
func GroupedComparison(ctx context.Context, fast bool, seed int64) (flat, grouped *metrics.Series, err error) {
	w := ResNetWorkload(fast, seed)
	w.TargetEpochs = w.TargetEpochs / 2
	powers := []float64{4, 4, 3, 2, 2, 2, 1, 1}

	cf, err := clusterFor(w, powers, seed, nil)
	if err != nil {
		return nil, nil, err
	}
	cfg := hadflConfig(w, seed)
	cfg.Strategy.Np = 4
	flatRes, err := core.RunHADFL(ctx, cf, cfg)
	if err != nil {
		return nil, nil, err
	}

	cg, err := clusterFor(w, powers, seed, nil)
	if err != nil {
		return nil, nil, err
	}
	gcfg := core.DefaultGroupedConfig()
	gcfg.Base = hadflConfig(w, seed)
	gcfg.GroupSize = 4
	gcfg.IntraNp = 2
	gcfg.InterEvery = 2
	groupedRes, err := core.RunHADFLGrouped(ctx, cg, gcfg)
	if err != nil {
		return nil, nil, err
	}
	flatRes.Series.Name = "hadfl-flat-8dev"
	groupedRes.Series.Name = "hadfl-grouped-8dev"
	return flatRes.Series, groupedRes.Series, nil
}
