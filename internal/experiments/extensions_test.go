package experiments

import (
	"context"
	"testing"
)

func TestAsyncComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("async baseline comparison in -short mode")
	}
	rows, err := AsyncComparison(context.Background(), true, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	var hadfl, async AsyncRow
	for _, r := range rows {
		switch r.Scheme {
		case "hadfl":
			hadfl = r
		case "async-fedavg":
			async = r
		}
	}
	// The structural claim: async centralized FL loads the server with
	// every update; HADFL loads it with nothing.
	if hadfl.ServerBytes != 0 {
		t.Fatalf("hadfl server bytes %d", hadfl.ServerBytes)
	}
	if async.ServerBytes == 0 {
		t.Fatal("async-fedavg must load the server")
	}
	if hadfl.MaxAccuracy < 0.5 || async.MaxAccuracy < 0.5 {
		t.Fatalf("accuracies %.2f / %.2f", hadfl.MaxAccuracy, async.MaxAccuracy)
	}
}

func TestHetBandwidth(t *testing.T) {
	if testing.Short() {
		t.Skip("bandwidth sweep in -short mode")
	}
	rows, err := HetBandwidth(context.Background(), true, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Total time must be monotone in link slowness: uniform ≤ one-slow ≤
	// all-slow. (One-slow only binds in rounds that select the slow
	// device; all-slow binds always.)
	if rows[0].TotalTime > rows[2].TotalTime {
		t.Fatalf("uniform %v slower than all-slow %v", rows[0].TotalTime, rows[2].TotalTime)
	}
	if rows[1].TotalTime > rows[2].TotalTime {
		t.Fatalf("one-slow %v slower than all-slow %v", rows[1].TotalTime, rows[2].TotalTime)
	}
	for _, r := range rows {
		if r.MaxAccuracy < 0.5 {
			t.Fatalf("%s accuracy %.2f", r.Profile, r.MaxAccuracy)
		}
	}
}

func TestGroupedComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("grouped comparison in -short mode")
	}
	flat, grouped, err := GroupedComparison(context.Background(), true, 43)
	if err != nil {
		t.Fatal(err)
	}
	fb, ok1 := flat.MaxAccuracy()
	gb, ok2 := grouped.MaxAccuracy()
	if !ok1 || !ok2 {
		t.Fatal("empty series")
	}
	if fb.Accuracy < 0.5 || gb.Accuracy < 0.5 {
		t.Fatalf("accuracies %.2f / %.2f", fb.Accuracy, gb.Accuracy)
	}
}
