// Package strategy implements HADFL's training-strategy generation
// (paper §III-C): the hyperperiod computation, heterogeneity-aware
// local-step assignment, the probability-based device selection of Eq. 8,
// and the random directed-ring partial-synchronization topology.
package strategy

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Hyperperiod returns the least common multiple of the devices' per-epoch
// training times (paper: HE = LCM(Tᵢ/Ewarmup)), computed on a discrete
// grid of the given quantum (seconds). Times are rounded to the nearest
// quantum before the integer LCM; a zero quantum defaults to 1/20 of the
// fastest epoch time. The result is capped at maxFactor× the slowest
// epoch time (default 64 when maxFactor ≤ 0) to keep pathological
// near-coprime times from exploding the schedule; the cap is the smallest
// multiple of the slowest epoch time ≥ the true LCM would be truncated to.
func Hyperperiod(epochTimes []float64, quantum float64, maxFactor int) float64 {
	if len(epochTimes) == 0 {
		panic("strategy: Hyperperiod needs at least one device")
	}
	minT, maxT := epochTimes[0], epochTimes[0]
	for _, t := range epochTimes {
		if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			panic(fmt.Sprintf("strategy: invalid epoch time %v", t))
		}
		if t < minT {
			minT = t
		}
		if t > maxT {
			maxT = t
		}
	}
	if quantum <= 0 {
		quantum = minT / 20
	}
	if maxFactor <= 0 {
		maxFactor = 64
	}
	lcm := int64(1)
	cap64 := int64(math.Ceil(maxT/quantum)) * int64(maxFactor)
	for _, t := range epochTimes {
		ticks := int64(math.Round(t / quantum))
		if ticks < 1 {
			ticks = 1
		}
		lcm = lcm / gcd(lcm, ticks) * ticks
		if lcm > cap64 {
			lcm = cap64
			break
		}
	}
	return float64(lcm) * quantum
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LocalSteps assigns each device the number of local steps it can fit in
// one synchronization period (syncPeriod seconds), given its per-step
// compute time. Every device runs at least one step, so stragglers always
// contribute (paper §III-C: straggler efforts are never wasted).
func LocalSteps(syncPeriod float64, stepTimes []float64) []int {
	if syncPeriod <= 0 {
		panic(fmt.Sprintf("strategy: non-positive sync period %v", syncPeriod))
	}
	out := make([]int, len(stepTimes))
	for i, st := range stepTimes {
		if st <= 0 {
			panic(fmt.Sprintf("strategy: invalid step time %v for device %d", st, i))
		}
		e := int(syncPeriod / st)
		if e < 1 {
			e = 1
		}
		out[i] = e
	}
	return out
}

// Quartile3 returns the third quartile (75th percentile, linear
// interpolation) of vs — the centre µ of Eq. 8's Gaussian.
func Quartile3(vs []float64) float64 {
	if len(vs) == 0 {
		panic("strategy: Quartile3 of empty slice")
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := 0.75 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// SelectionProbs computes Eq. 8's selection distribution: each device's
// probability is the unit Gaussian density centred at µ = Quartile3 of
// the versions, normalized over devices. sigma scales the Gaussian width;
// sigma ≤ 0 selects a robust automatic width (half the interquartile
// range, floored at 1) so wide version spreads — common when compute
// ratios are large — do not collapse the distribution onto a single
// device. The paper's literal unit-variance form is sigma = 1.
func SelectionProbs(versions []float64, sigma float64) []float64 {
	n := len(versions)
	if n == 0 {
		panic("strategy: SelectionProbs of empty slice")
	}
	mu := Quartile3(versions)
	if sigma <= 0 {
		s := append([]float64(nil), versions...)
		sort.Float64s(s)
		q1pos := 0.25 * float64(n-1)
		lo := int(q1pos)
		frac := q1pos - float64(lo)
		q1 := s[lo]
		if lo+1 < n {
			q1 = s[lo]*(1-frac) + s[lo+1]*frac
		}
		sigma = (mu - q1) / 2
		if sigma < 1 {
			sigma = 1
		}
	}
	probs := make([]float64, n)
	sum := 0.0
	for i, v := range versions {
		z := (v - mu) / sigma
		probs[i] = math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
		sum += probs[i]
	}
	if sum == 0 {
		// All densities underflowed; fall back to uniform.
		for i := range probs {
			probs[i] = 1 / float64(n)
		}
		return probs
	}
	for i := range probs {
		probs[i] /= sum
	}
	return probs
}

// SelectDevices samples np distinct indices without replacement according
// to probs (renormalizing after each draw). It panics if np exceeds the
// number of devices.
func SelectDevices(rng *rand.Rand, probs []float64, np int) []int {
	n := len(probs)
	if np <= 0 || np > n {
		panic(fmt.Sprintf("strategy: cannot select %d of %d devices", np, n))
	}
	remaining := append([]float64(nil), probs...)
	chosen := make([]int, 0, np)
	taken := make([]bool, n)
	for len(chosen) < np {
		sum := 0.0
		for i, p := range remaining {
			if !taken[i] {
				sum += p
			}
		}
		var pick int
		if sum <= 0 {
			// Degenerate weights: pick uniformly among the untaken.
			k := rng.Intn(n - len(chosen))
			for i := 0; i < n; i++ {
				if !taken[i] {
					if k == 0 {
						pick = i
						break
					}
					k--
				}
			}
		} else {
			r := rng.Float64() * sum
			pick = -1
			for i, p := range remaining {
				if taken[i] {
					continue
				}
				r -= p
				if r <= 0 {
					pick = i
					break
				}
			}
			if pick < 0 { // float round-off: take the last untaken
				for i := n - 1; i >= 0; i-- {
					if !taken[i] {
						pick = i
						break
					}
				}
			}
		}
		taken[pick] = true
		chosen = append(chosen, pick)
	}
	sort.Ints(chosen)
	return chosen
}

// RandomRing returns the ids in a uniformly random cyclic order; device
// order[i] sends to order[(i+1) mod len]. This is the "randomly
// determined directed ring" partial-synchronization topology of §III-C.
func RandomRing(rng *rand.Rand, ids []int) []int {
	order := append([]int(nil), ids...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// Groups partitions device ids into ⌈n/size⌉ contiguous groups after a
// random shuffle, the multi-group management scheme of Fig. 2(a). The
// inter-group synchronization period is an integer multiple of the
// intra-group period (see GroupSchedule).
func Groups(rng *rand.Rand, ids []int, size int) [][]int {
	if size <= 0 {
		panic("strategy: group size must be positive")
	}
	shuffled := append([]int(nil), ids...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	var out [][]int
	for len(shuffled) > 0 {
		n := size
		if n > len(shuffled) {
			n = len(shuffled)
		}
		out = append(out, shuffled[:n])
		shuffled = shuffled[n:]
	}
	return out
}

// GroupSchedule reports whether round j is an inter-group round, given
// that inter-group synchronization happens every interEvery intra-group
// rounds (paper: "the inter-group synchronization period can be an
// integer multiple of the intra-group synchronization period").
func GroupSchedule(round, interEvery int) (interGroup bool) {
	if interEvery <= 0 {
		panic("strategy: interEvery must be positive")
	}
	return round > 0 && round%interEvery == 0
}
