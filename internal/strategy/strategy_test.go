package strategy

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHyperperiodSimpleRatios(t *testing.T) {
	// Paper's example: compute power 4:2:1 → epoch times 1,2,4 → LCM 4.
	he := Hyperperiod([]float64{1, 2, 4}, 0.001, 0)
	if math.Abs(he-4) > 1e-9 {
		t.Fatalf("Hyperperiod = %v, want 4", he)
	}
	// [3,3,1,1] → times 1,1,3,3 → LCM 3.
	he = Hyperperiod([]float64{1, 1, 3, 3}, 0.001, 0)
	if math.Abs(he-3) > 1e-9 {
		t.Fatalf("Hyperperiod = %v, want 3", he)
	}
}

func TestHyperperiodIsMultipleOfEach(t *testing.T) {
	times := []float64{0.5, 0.75, 1.5}
	he := Hyperperiod(times, 0.01, 0)
	for _, tt := range times {
		ratio := he / tt
		if math.Abs(ratio-math.Round(ratio)) > 1e-6 {
			t.Fatalf("hyperperiod %v not a multiple of %v", he, tt)
		}
	}
}

func TestHyperperiodCap(t *testing.T) {
	// Near-coprime times would explode; the cap bounds the result.
	times := []float64{0.997, 1.003, 1.013}
	he := Hyperperiod(times, 0.001, 8)
	if he > 1.013*8+1e-9 {
		t.Fatalf("Hyperperiod %v exceeds cap", he)
	}
}

func TestHyperperiodValidation(t *testing.T) {
	for _, times := range [][]float64{{}, {0}, {-1}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Hyperperiod(%v) did not panic", times)
				}
			}()
			Hyperperiod(times, 0, 0)
		}()
	}
}

func TestLocalStepsProportionalToPower(t *testing.T) {
	// Step times 1, 2, 4 (power 4:2:1) in a 8-second window → 8, 4, 2.
	steps := LocalSteps(8, []float64{1, 2, 4})
	want := []int{8, 4, 2}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("LocalSteps = %v, want %v", steps, want)
		}
	}
}

func TestLocalStepsMinimumOne(t *testing.T) {
	steps := LocalSteps(1, []float64{10})
	if steps[0] != 1 {
		t.Fatalf("straggler must run at least one step, got %d", steps[0])
	}
}

func TestQuartile3(t *testing.T) {
	cases := []struct {
		vs   []float64
		want float64
	}{
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 3.25},
		{[]float64{1, 2, 3, 4, 5}, 4},
		{[]float64{10, 10, 10}, 10},
	}
	for _, c := range cases {
		if got := Quartile3(c.vs); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quartile3(%v) = %v, want %v", c.vs, got, c.want)
		}
	}
}

func TestSelectionProbsSumToOne(t *testing.T) {
	versions := []float64{10, 20, 30, 40}
	for _, sigma := range []float64{0, 1, 5} {
		probs := SelectionProbs(versions, sigma)
		sum := 0.0
		for _, p := range probs {
			if p < 0 {
				t.Fatalf("negative probability %v", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probs sum %v (sigma=%v)", sum, sigma)
		}
	}
}

func TestSelectionPrefersMedialFreshVersions(t *testing.T) {
	// µ is the 3rd quartile: the device *at* Q3 gets the highest
	// probability; the most stale gets the lowest. The freshest device is
	// NOT the most likely — the paper's "medial versions" preference.
	versions := []float64{10, 20, 30, 40}
	probs := SelectionProbs(versions, 0)
	// Q3 of {10,20,30,40} = 32.5 → device 2 (v=30) closest.
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	if best != 2 {
		t.Fatalf("highest probability at device %d (probs %v), want 2 (nearest Q3)", best, probs)
	}
	if probs[0] >= probs[2] {
		t.Fatalf("most stale device should have lower probability: %v", probs)
	}
	if probs[3] >= probs[2] {
		t.Fatalf("freshest device should not beat the medial one: %v", probs)
	}
	// But the straggler still has nonzero probability (never discarded).
	if probs[0] <= 0 {
		t.Fatalf("straggler probability must stay positive: %v", probs)
	}
}

func TestSelectionProbsUnderflowFallsBackToUniform(t *testing.T) {
	// Hugely spread versions with sigma=1 underflow every density except
	// possibly one; with all underflowed we fall back to uniform.
	versions := []float64{0, 1e9, -1e9, 5e8}
	probs := SelectionProbs(versions, 1)
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("underflow fallback sums to %v", sum)
	}
}

func TestSelectDevicesWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	probs := []float64{0.1, 0.2, 0.3, 0.4}
	for trial := 0; trial < 100; trial++ {
		sel := SelectDevices(rng, probs, 3)
		if len(sel) != 3 {
			t.Fatalf("selected %d", len(sel))
		}
		seen := map[int]bool{}
		for _, s := range sel {
			if seen[s] {
				t.Fatalf("duplicate selection %v", sel)
			}
			seen[s] = true
			if s < 0 || s > 3 {
				t.Fatalf("selection out of range %v", sel)
			}
		}
	}
}

func TestSelectDevicesFrequencyTracksProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	probs := []float64{0.05, 0.05, 0.45, 0.45}
	counts := make([]int, 4)
	const trials = 5000
	for i := 0; i < trials; i++ {
		for _, s := range SelectDevices(rng, probs, 1) {
			counts[s]++
		}
	}
	if counts[2] < counts[0]*3 || counts[3] < counts[1]*3 {
		t.Fatalf("selection frequencies %v do not track probabilities %v", counts, probs)
	}
}

func TestSelectDevicesDegenerateWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sel := SelectDevices(rng, []float64{0, 0, 0}, 2)
	if len(sel) != 2 {
		t.Fatalf("degenerate weights selection %v", sel)
	}
}

func TestSelectDevicesPanicsOnBadNp(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	defer func() {
		if recover() == nil {
			t.Fatal("np > n did not panic")
		}
	}()
	SelectDevices(rng, []float64{1}, 2)
}

func TestRandomRingIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ids := []int{3, 7, 9, 11}
	ring := RandomRing(rng, ids)
	if len(ring) != 4 {
		t.Fatalf("ring size %d", len(ring))
	}
	sorted := append([]int(nil), ring...)
	sort.Ints(sorted)
	for i, id := range []int{3, 7, 9, 11} {
		if sorted[i] != id {
			t.Fatalf("ring %v is not a permutation of %v", ring, ids)
		}
	}
	// Original slice untouched.
	if ids[0] != 3 || ids[3] != 11 {
		t.Fatal("RandomRing mutated input")
	}
}

func TestGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ids := []int{0, 1, 2, 3, 4, 5, 6}
	groups := Groups(rng, ids, 3)
	if len(groups) != 3 {
		t.Fatalf("group count %d", len(groups))
	}
	total := 0
	seen := map[int]bool{}
	for _, g := range groups {
		total += len(g)
		for _, id := range g {
			if seen[id] {
				t.Fatalf("device %d in two groups", id)
			}
			seen[id] = true
		}
	}
	if total != 7 {
		t.Fatalf("groups cover %d devices", total)
	}
}

func TestGroupSchedule(t *testing.T) {
	if GroupSchedule(0, 3) {
		t.Fatal("round 0 must not be inter-group")
	}
	if !GroupSchedule(3, 3) || !GroupSchedule(6, 3) {
		t.Fatal("rounds 3 and 6 must be inter-group with interEvery=3")
	}
	if GroupSchedule(4, 3) {
		t.Fatal("round 4 must be intra-group")
	}
}

func TestGeneratePlan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	devs := []DeviceEstimate{
		{ID: 0, EpochTime: 1, StepTime: 0.1, Version: 30},
		{ID: 1, EpochTime: 2, StepTime: 0.2, Version: 15},
		{ID: 2, EpochTime: 2, StepTime: 0.2, Version: 15},
		{ID: 3, EpochTime: 4, StepTime: 0.4, Version: 8},
	}
	cfg := Config{Tsync: 1, Np: 2}
	plan, err := Generate(rng, cfg, devs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Hyperperiod-4) > 1e-9 {
		t.Fatalf("Hyperperiod = %v, want 4", plan.Hyperperiod)
	}
	if math.Abs(plan.SyncPeriod-4) > 1e-9 {
		t.Fatalf("SyncPeriod = %v", plan.SyncPeriod)
	}
	// Fast device runs 4× the steps of the slowest.
	if plan.LocalSteps[0] != 40 || plan.LocalSteps[3] != 10 {
		t.Fatalf("LocalSteps = %v", plan.LocalSteps)
	}
	if len(plan.Selected) != 2 || len(plan.Ring) != 2 {
		t.Fatalf("Selected %v Ring %v", plan.Selected, plan.Ring)
	}
	un := plan.Unselected([]int{0, 1, 2, 3})
	if len(un)+len(plan.Selected) != 4 {
		t.Fatalf("Unselected %v with Selected %v", un, plan.Selected)
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	devs := []DeviceEstimate{{ID: 0, EpochTime: 1, StepTime: 0.1, Version: 1}}
	if _, err := Generate(rng, Config{Tsync: 0, Np: 1}, devs); err == nil {
		t.Fatal("Tsync=0 must error")
	}
	if _, err := Generate(rng, Config{Tsync: 1, Np: 2}, devs); err == nil {
		t.Fatal("Np>devices must error")
	}
	if _, err := Generate(rng, Config{Tsync: 1, Np: 1}, nil); err == nil {
		t.Fatal("no devices must error")
	}
}

// Property: SelectionProbs always yields a probability distribution.
func TestPropertySelectionProbsDistribution(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%10) + 1
		rng := rand.New(rand.NewSource(seed))
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = rng.Float64() * 100
		}
		probs := SelectionProbs(vs, 0)
		sum := 0.0
		for _, p := range probs {
			if p < 0 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the hyperperiod is at least the largest epoch time and an
// integer multiple (on the quantum grid) of every epoch time when no cap
// is hit.
func TestPropertyHyperperiodBounds(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%4) + 1
		rng := rand.New(rand.NewSource(seed))
		times := make([]float64, n)
		maxT := 0.0
		for i := range times {
			times[i] = float64(rng.Intn(8)+1) * 0.5 // clean multiples of 0.5
			if times[i] > maxT {
				maxT = times[i]
			}
		}
		he := Hyperperiod(times, 0.5, 10000)
		if he < maxT-1e-9 {
			return false
		}
		for _, tt := range times {
			ratio := he / tt
			if math.Abs(ratio-math.Round(ratio)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: SelectDevices returns exactly np distinct, in-range indices.
func TestPropertySelectDevicesValid(t *testing.T) {
	f := func(seed int64, nRaw, npRaw uint8) bool {
		n := int(nRaw%8) + 1
		np := int(npRaw)%n + 1
		rng := rand.New(rand.NewSource(seed))
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		sel := SelectDevices(rng, probs, np)
		if len(sel) != np {
			return false
		}
		seen := map[int]bool{}
		for _, s := range sel {
			if s < 0 || s >= n || seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
