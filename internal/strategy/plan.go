package strategy

import (
	"fmt"
	"math/rand"
)

// DeviceEstimate is the per-device input to plan generation: the warm-up
// (or predicted) per-epoch compute time and the forecast parameter
// version for the coming round.
type DeviceEstimate struct {
	ID        int
	EpochTime float64 // seconds per local epoch
	StepTime  float64 // seconds per local step (mini-batch)
	Version   float64 // predicted parameter version
}

// Plan is one round's training configuration, produced by the strategy
// generator and shipped to devices (paper workflow step 4).
type Plan struct {
	Hyperperiod float64     // HE, seconds
	SyncPeriod  float64     // Tsync × HE, seconds
	LocalSteps  map[int]int // device id → E_k
	Selected    []int       // device ids chosen for partial aggregation
	Ring        []int       // directed ring over Selected (order = edges)
	Probs       map[int]float64
}

// Config are the tunables of plan generation.
type Config struct {
	Tsync     int     // sync every Tsync hyperperiods (positive integer)
	Np        int     // devices selected per partial aggregation
	Sigma     float64 // Eq. 8 Gaussian width; ≤0 = robust auto
	Quantum   float64 // hyperperiod grid; ≤0 = auto
	MaxFactor int     // hyperperiod cap multiplier; ≤0 = 64
}

// Validate checks the configuration against a device count.
func (c Config) Validate(devices int) error {
	if c.Tsync < 1 {
		return fmt.Errorf("strategy: Tsync %d must be ≥ 1", c.Tsync)
	}
	if c.Np < 1 || c.Np > devices {
		return fmt.Errorf("strategy: Np %d outside [1,%d]", c.Np, devices)
	}
	return nil
}

// Generate produces one round's Plan from per-device estimates.
func Generate(rng *rand.Rand, cfg Config, devs []DeviceEstimate) (Plan, error) {
	if err := cfg.Validate(len(devs)); err != nil {
		return Plan{}, err
	}
	if len(devs) == 0 {
		return Plan{}, fmt.Errorf("strategy: no devices")
	}
	epochTimes := make([]float64, len(devs))
	stepTimes := make([]float64, len(devs))
	versions := make([]float64, len(devs))
	for i, d := range devs {
		epochTimes[i] = d.EpochTime
		stepTimes[i] = d.StepTime
		versions[i] = d.Version
	}
	he := Hyperperiod(epochTimes, cfg.Quantum, cfg.MaxFactor)
	syncPeriod := float64(cfg.Tsync) * he
	steps := LocalSteps(syncPeriod, stepTimes)
	probs := SelectionProbs(versions, cfg.Sigma)
	selIdx := SelectDevices(rng, probs, cfg.Np)

	plan := Plan{
		Hyperperiod: he,
		SyncPeriod:  syncPeriod,
		LocalSteps:  make(map[int]int, len(devs)),
		Probs:       make(map[int]float64, len(devs)),
	}
	for i, d := range devs {
		plan.LocalSteps[d.ID] = steps[i]
		plan.Probs[d.ID] = probs[i]
	}
	for _, i := range selIdx {
		plan.Selected = append(plan.Selected, devs[i].ID)
	}
	plan.Ring = RandomRing(rng, plan.Selected)
	return plan, nil
}

// Unselected returns the device ids not chosen for partial aggregation,
// i.e. the K−Np broadcast targets of §III-D.
func (p Plan) Unselected(all []int) []int {
	sel := make(map[int]bool, len(p.Selected))
	for _, id := range p.Selected {
		sel[id] = true
	}
	var out []int
	for _, id := range all {
		if !sel[id] {
			out = append(out, id)
		}
	}
	return out
}
