package aggregate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanKnown(t *testing.T) {
	got := Mean([][]float64{{1, 2}, {3, 4}, {5, 6}})
	want := []float64{3, 4}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Mean = %v", got)
		}
	}
}

func TestMeanPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":    func() { Mean(nil) },
		"mismatch": func() { Mean([][]float64{{1}, {1, 2}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([][]float64{{0}, {10}}, []float64{3, 1})
	if math.Abs(got[0]-2.5) > 1e-12 {
		t.Fatalf("WeightedMean = %v", got)
	}
	// Zero-weight vectors contribute nothing.
	got = WeightedMean([][]float64{{5}, {100}}, []float64{1, 0})
	if got[0] != 5 {
		t.Fatalf("WeightedMean = %v", got)
	}
}

func TestWeightedMeanPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"negative": func() { WeightedMean([][]float64{{1}}, []float64{-1}) },
		"zero-sum": func() { WeightedMean([][]float64{{1}}, []float64{0}) },
		"count":    func() { WeightedMean([][]float64{{1}}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPartialMeanSelectsFlagged(t *testing.T) {
	vecs := [][]float64{{1, 1}, {3, 3}, {100, 100}}
	got := PartialMean(vecs, []bool{true, true, false})
	if got[0] != 2 || got[1] != 2 {
		t.Fatalf("PartialMean = %v", got)
	}
}

func TestPartialMeanPreservesScale(t *testing.T) {
	// The critical fix vs the paper's literal 1/K: averaging 2 of 4
	// identical models must return the same model, not half of it.
	w := []float64{10, -4, 2}
	vecs := [][]float64{w, w, w, w}
	got := PartialMean(vecs, []bool{true, false, true, false})
	for i := range w {
		if math.Abs(got[i]-w[i]) > 1e-12 {
			t.Fatalf("PartialMean shrank the model: %v", got)
		}
	}
}

func TestPartialMeanNoFlagsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no flagged devices did not panic")
		}
	}()
	PartialMean([][]float64{{1}}, []bool{false})
}

func TestMerge(t *testing.T) {
	local := []float64{0, 10}
	recv := []float64{10, 0}
	got := Merge(local, recv, 0.5)
	if got[0] != 5 || got[1] != 5 {
		t.Fatalf("Merge = %v", got)
	}
	replaced := Merge(local, recv, 1)
	if replaced[0] != 10 || replaced[1] != 0 {
		t.Fatalf("Merge beta=1 = %v", replaced)
	}
	kept := Merge(local, recv, 0)
	if kept[0] != 0 || kept[1] != 10 {
		t.Fatalf("Merge beta=0 = %v", kept)
	}
}

func TestMergeValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"len":  func() { Merge([]float64{1}, []float64{1, 2}, 0.5) },
		"beta": func() { Merge([]float64{1}, []float64{1}, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSumIntoAndScale(t *testing.T) {
	dst := []float64{1, 2}
	SumInto(dst, []float64{10, 20})
	if dst[0] != 11 || dst[1] != 22 {
		t.Fatalf("SumInto = %v", dst)
	}
	ScaleInPlace(dst, 0.5)
	if dst[0] != 5.5 || dst[1] != 11 {
		t.Fatalf("ScaleInPlace = %v", dst)
	}
}

func TestL2Distance(t *testing.T) {
	if d := L2Distance([]float64{0, 0}, []float64{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Fatalf("L2Distance = %v", d)
	}
}

// Property: Mean is idempotent on identical vectors and bounded by
// element-wise min/max.
func TestPropertyMeanBounds(t *testing.T) {
	f := func(seed int64, kRaw, nRaw uint8) bool {
		k := int(kRaw%5) + 1
		n := int(nRaw%10) + 1
		rng := rand.New(rand.NewSource(seed))
		vecs := make([][]float64, k)
		for i := range vecs {
			vecs[i] = make([]float64, n)
			for j := range vecs[i] {
				vecs[i][j] = rng.Float64()*10 - 5
			}
		}
		m := Mean(vecs)
		for j := 0; j < n; j++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for i := range vecs {
				lo = math.Min(lo, vecs[i][j])
				hi = math.Max(hi, vecs[i][j])
			}
			if m[j] < lo-1e-9 || m[j] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: WeightedMean with uniform weights equals Mean.
func TestPropertyWeightedMeanUniformIsMean(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%5) + 1
		rng := rand.New(rand.NewSource(seed))
		vecs := make([][]float64, k)
		w := make([]float64, k)
		for i := range vecs {
			vecs[i] = []float64{rng.Float64(), rng.Float64()}
			w[i] = 1
		}
		a, b := Mean(vecs), WeightedMean(vecs, w)
		return math.Abs(a[0]-b[0]) < 1e-12 && math.Abs(a[1]-b[1]) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Merge interpolates — each element lies between local and recv.
func TestPropertyMergeInterpolates(t *testing.T) {
	f := func(seed int64, betaRaw uint8) bool {
		beta := float64(betaRaw) / 255
		rng := rand.New(rand.NewSource(seed))
		local := []float64{rng.Float64() * 10}
		recv := []float64{rng.Float64() * 10}
		m := Merge(local, recv, beta)
		lo, hi := math.Min(local[0], recv[0]), math.Max(local[0], recv[0])
		return m[0] >= lo-1e-12 && m[0] <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
