// Package aggregate implements the model-aggregation arithmetic of
// HADFL and its baselines: FedAvg means, the flag-based partial
// aggregation of the paper's Eq. 5, weighted merges for broadcast
// integration, and gradient sums for ring all-reduce.
//
// All functions operate on flat []float64 parameter vectors (the wire
// format produced by nn.Model.Parameters), keeping the package agnostic
// to model architecture.
package aggregate

import (
	"fmt"
	"math"
)

// Mean returns the element-wise average of the vectors (FedAvg, Eq. 4).
// It panics on empty input or mismatched lengths.
func Mean(vectors [][]float64) []float64 {
	if len(vectors) == 0 {
		panic("aggregate: Mean of no vectors")
	}
	n := len(vectors[0])
	out := make([]float64, n)
	for _, v := range vectors {
		if len(v) != n {
			panic(fmt.Sprintf("aggregate: vector length %d, want %d", len(v), n))
		}
		for i, x := range v {
			out[i] += x
		}
	}
	inv := 1.0 / float64(len(vectors))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// WeightedMean returns Σ wᵢ·vᵢ / Σ wᵢ. Weights must be non-negative with
// a positive sum.
func WeightedMean(vectors [][]float64, weights []float64) []float64 {
	if len(vectors) == 0 || len(vectors) != len(weights) {
		panic(fmt.Sprintf("aggregate: %d vectors vs %d weights", len(vectors), len(weights)))
	}
	n := len(vectors[0])
	out := make([]float64, n)
	sum := 0.0
	for k, v := range vectors {
		if len(v) != n {
			panic(fmt.Sprintf("aggregate: vector length %d, want %d", len(v), n))
		}
		w := weights[k]
		if w < 0 {
			panic(fmt.Sprintf("aggregate: negative weight %v", w))
		}
		sum += w
		for i, x := range v {
			out[i] += w * x
		}
	}
	if sum <= 0 {
		panic("aggregate: weights sum to zero")
	}
	inv := 1.0 / sum
	for i := range out {
		out[i] *= inv
	}
	return out
}

// PartialMean implements the paper's Eq. 5 partial aggregation
// w(t+1) = Σ Flagₖ·wₖ normalized over the selected devices. The paper
// prints the normalizer as 1/K (all devices); dividing a sum of Np < K
// vectors by K would shrink the model every round, so we normalize by
// the number of selected devices — the reading consistent with the
// broadcast step that follows. flags[k] selects vectors[k].
func PartialMean(vectors [][]float64, flags []bool) []float64 {
	if len(vectors) == 0 || len(vectors) != len(flags) {
		panic(fmt.Sprintf("aggregate: %d vectors vs %d flags", len(vectors), len(flags)))
	}
	var sel [][]float64
	for k, f := range flags {
		if f {
			sel = append(sel, vectors[k])
		}
	}
	if len(sel) == 0 {
		panic("aggregate: PartialMean with no flagged device")
	}
	return Mean(sel)
}

// Merge integrates a received (broadcast) model into a local one:
// out = beta·recv + (1−beta)·local, the "integrate the received model
// parameters with local parameters" step for unselected devices
// (§III-D). beta=1 replaces the local model outright.
func Merge(local, recv []float64, beta float64) []float64 {
	if len(local) != len(recv) {
		panic(fmt.Sprintf("aggregate: Merge lengths %d vs %d", len(local), len(recv)))
	}
	if beta < 0 || beta > 1 {
		panic(fmt.Sprintf("aggregate: Merge beta %v outside [0,1]", beta))
	}
	out := make([]float64, len(local))
	for i := range out {
		out[i] = beta*recv[i] + (1-beta)*local[i]
	}
	return out
}

// SumInto accumulates src into dst element-wise (the reduce step of ring
// all-reduce). It panics on length mismatch.
func SumInto(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("aggregate: SumInto lengths %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += v
	}
}

// ScaleInPlace multiplies vec by s (the 1/K step after an all-reduce sum).
func ScaleInPlace(vec []float64, s float64) {
	for i := range vec {
		vec[i] *= s
	}
}

// L2Distance returns the Euclidean distance between two parameter
// vectors, used by convergence diagnostics and tests.
func L2Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("aggregate: L2Distance lengths %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
