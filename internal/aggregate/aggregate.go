// Package aggregate implements the model-aggregation arithmetic of
// HADFL and its baselines: FedAvg means, the flag-based partial
// aggregation of the paper's Eq. 5, weighted merges for broadcast
// integration, and gradient sums for ring all-reduce.
//
// All functions operate on flat []float64 parameter vectors (the wire
// format produced by nn.Model.Parameters), keeping the package agnostic
// to model architecture. The arithmetic itself lives in the shared
// vector-math layer (internal/tensor's Vec helpers), so the simulator
// and the wire paths (internal/p2p ring reduce, internal/runtime) run
// one chunked — and, on large models, parallel — implementation whose
// results are bit-identical at every parallelism level.
package aggregate

import (
	"fmt"
	"math"

	"hadfl/internal/tensor"
)

// Mean returns the element-wise average of the vectors (FedAvg, Eq. 4).
// It panics on empty input or mismatched lengths.
func Mean(vectors [][]float64) []float64 {
	if len(vectors) == 0 {
		panic("aggregate: Mean of no vectors")
	}
	out := make([]float64, len(vectors[0]))
	MeanInto(out, vectors)
	return out
}

// MeanInto writes the element-wise average into out, the allocation-free
// path for callers that reuse an aggregation buffer across rounds.
func MeanInto(out []float64, vectors [][]float64) {
	if len(vectors) == 0 {
		panic("aggregate: Mean of no vectors")
	}
	for _, v := range vectors {
		if len(v) != len(out) {
			panic(fmt.Sprintf("aggregate: vector length %d, want %d", len(v), len(out)))
		}
	}
	tensor.VecMeanInto(out, vectors)
}

// WeightedMean returns Σ wᵢ·vᵢ / Σ wᵢ. Weights must be non-negative with
// a positive sum.
func WeightedMean(vectors [][]float64, weights []float64) []float64 {
	if len(vectors) == 0 || len(vectors) != len(weights) {
		panic(fmt.Sprintf("aggregate: %d vectors vs %d weights", len(vectors), len(weights)))
	}
	n := len(vectors[0])
	sum := 0.0
	for k, v := range vectors {
		if len(v) != n {
			panic(fmt.Sprintf("aggregate: vector length %d, want %d", len(v), n))
		}
		if weights[k] < 0 {
			panic(fmt.Sprintf("aggregate: negative weight %v", weights[k]))
		}
		sum += weights[k]
	}
	if sum <= 0 {
		panic("aggregate: weights sum to zero")
	}
	out := make([]float64, n)
	tensor.VecWeightedSumInto(out, vectors, weights)
	tensor.VecScale(out, 1/sum)
	return out
}

// PartialMean implements the paper's Eq. 5 partial aggregation
// w(t+1) = Σ Flagₖ·wₖ normalized over the selected devices. The paper
// prints the normalizer as 1/K (all devices); dividing a sum of Np < K
// vectors by K would shrink the model every round, so we normalize by
// the number of selected devices — the reading consistent with the
// broadcast step that follows. flags[k] selects vectors[k].
func PartialMean(vectors [][]float64, flags []bool) []float64 {
	if len(vectors) == 0 || len(vectors) != len(flags) {
		panic(fmt.Sprintf("aggregate: %d vectors vs %d flags", len(vectors), len(flags)))
	}
	var sel [][]float64
	for k, f := range flags {
		if f {
			sel = append(sel, vectors[k])
		}
	}
	if len(sel) == 0 {
		panic("aggregate: PartialMean with no flagged device")
	}
	return Mean(sel)
}

// Merge integrates a received (broadcast) model into a local one:
// out = beta·recv + (1−beta)·local, the "integrate the received model
// parameters with local parameters" step for unselected devices
// (§III-D). beta=1 replaces the local model outright.
func Merge(local, recv []float64, beta float64) []float64 {
	out := make([]float64, len(local))
	MergeInto(out, local, recv, beta)
	return out
}

// MergeInto is Merge writing into a caller-owned buffer (which may
// alias local, the in-place integration case).
func MergeInto(out, local, recv []float64, beta float64) {
	if len(local) != len(recv) {
		panic(fmt.Sprintf("aggregate: Merge lengths %d vs %d", len(local), len(recv)))
	}
	if beta < 0 || beta > 1 {
		panic(fmt.Sprintf("aggregate: Merge beta %v outside [0,1]", beta))
	}
	tensor.VecLerpInto(out, local, recv, beta)
}

// SumInto accumulates src into dst element-wise (the reduce step of ring
// all-reduce). It panics on length mismatch.
func SumInto(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("aggregate: SumInto lengths %d vs %d", len(dst), len(src)))
	}
	tensor.VecAccumulate(dst, src)
}

// ScaleInPlace multiplies vec by s (the 1/K step after an all-reduce sum).
func ScaleInPlace(vec []float64, s float64) {
	tensor.VecScale(vec, s)
}

// L2Distance returns the Euclidean distance between two parameter
// vectors, used by convergence diagnostics and tests.
func L2Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("aggregate: L2Distance lengths %d vs %d", len(a), len(b)))
	}
	return math.Sqrt(tensor.VecSquaredDistance(a, b))
}
