package p2p

import (
	"bytes"
	"errors"
	"testing"
)

func TestDispatchFrameRoundTrip(t *testing.T) {
	bodies := [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte("seven77"),
		[]byte("eight888"),
		[]byte(`{"jobID":"abc","scheme":"hadfl"}`),
		bytes.Repeat([]byte{0xA5}, 1023),
	}
	for _, body := range bodies {
		m, err := NewDispatchFrame(KindDispatchRequest, 3, 42, body)
		if err != nil {
			t.Fatalf("NewDispatchFrame(%d bytes): %v", len(body), err)
		}
		if m.Round != 42 || m.To != 3 || m.Meta != len(body) {
			t.Fatalf("frame header mangled: %+v", m)
		}
		// Through the wire codec, as every transport sends it.
		decoded, err := Unmarshal(m.Marshal())
		if err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		got, err := DispatchBody(decoded)
		if err != nil {
			t.Fatalf("DispatchBody(%d bytes): %v", len(body), err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("body round trip: got %q want %q", got, body)
		}
	}
}

func TestDispatchBodyRejects(t *testing.T) {
	good, err := NewDispatchFrame(KindDispatchResult, 1, 7, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}

	notDispatch := good
	notDispatch.Kind = KindParams
	if _, err := DispatchBody(notDispatch); err == nil {
		t.Error("non-dispatch kind accepted")
	}

	wrongVersion := good
	wrongVersion.Version = DispatchVersion + 1
	if _, err := DispatchBody(wrongVersion); !errors.Is(err, ErrDispatchVersion) {
		t.Errorf("version mismatch: got %v, want ErrDispatchVersion", err)
	}

	truncated := good
	truncated.Payload = truncated.Payload[:0]
	if _, err := DispatchBody(truncated); err == nil {
		t.Error("truncated payload accepted")
	}

	negative := good
	negative.Meta = -1
	if _, err := DispatchBody(negative); err == nil {
		t.Error("negative body length accepted")
	}

	oversized := good
	oversized.Meta = MaxDispatchBody + 1
	if _, err := DispatchBody(oversized); err == nil {
		t.Error("oversized body length accepted")
	}

	// Meta claiming fewer bytes than the payload holds is a torn frame.
	short := good
	short.Meta = 0
	if _, err := DispatchBody(short); err == nil {
		t.Error("short body length over full payload accepted")
	}
}

func TestNewDispatchFrameRejects(t *testing.T) {
	if _, err := NewDispatchFrame(KindHeartbeat, 1, 1, nil); err == nil {
		t.Error("non-dispatch kind accepted")
	}
	if _, err := NewDispatchFrame(KindDispatchRound, 1, 1, make([]byte, MaxDispatchBody+1)); err == nil {
		t.Error("oversized body accepted")
	}
}

func TestIsDispatchKind(t *testing.T) {
	for _, k := range []Kind{KindDispatchHello, KindDispatchRequest, KindDispatchRound, KindDispatchResult, KindDispatchError, KindDispatchCancel} {
		if !IsDispatchKind(k) {
			t.Errorf("IsDispatchKind(%v) = false", k)
		}
	}
	for _, k := range []Kind{KindParams, KindHeartbeat, KindAck, Kind(0), Kind(255)} {
		if IsDispatchKind(k) {
			t.Errorf("IsDispatchKind(%v) = true", k)
		}
	}
}
