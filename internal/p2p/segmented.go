package p2p

import (
	"fmt"
	"math/rand"
	"time"
)

// SegmentedGossipOptions tunes the segmented-gossip exchange.
type SegmentedGossipOptions struct {
	// Segments S: the model is cut into S contiguous segments.
	Segments int
	// Replicas R: each segment is pushed to R randomly chosen peers.
	Replicas int
	// Window is how long a device keeps collecting inbound segments
	// after it finished pushing its own.
	Window time.Duration
	// Seed derives the per-device peer choices (combined with the round
	// and sender id, so runs are reproducible).
	Seed int64
}

// DefaultSegmentedGossipOptions splits into 4 segments, 2 replicas.
func DefaultSegmentedGossipOptions() SegmentedGossipOptions {
	return SegmentedGossipOptions{Segments: 4, Replicas: 2, Window: 200 * time.Millisecond, Seed: 1}
}

// SegmentedGossip implements the segmented gossip aggregation of the
// paper's related work ([8] Hu et al., [9] Jiang & Hu): instead of a
// full-model ring all-reduce, each device cuts its parameter vector
// into S segments and pushes every segment to R random peers; inbound
// segments are averaged element-wise into the local model. One call is
// one gossip round. It returns the updated local vector.
//
// Compared to HADFL's ring this trades convergence tightness for
// lower per-device burst volume (S·R/S = R model-fractions sent) and no
// ring coordination; the paper cites it as the closest decentralized
// prior work, so it ships here as a comparison primitive.
func SegmentedGossip(tr Transport, peers []int, round int, vec []float64, opt SegmentedGossipOptions) ([]float64, error) {
	if opt.Segments <= 0 || opt.Replicas <= 0 {
		return nil, fmt.Errorf("p2p: segmented gossip needs positive segments/replicas, got %d/%d", opt.Segments, opt.Replicas)
	}
	others := make([]int, 0, len(peers))
	for _, id := range peers {
		if id != tr.ID() {
			others = append(others, id)
		}
	}
	if len(others) == 0 {
		return append([]float64(nil), vec...), nil
	}
	if opt.Replicas > len(others) {
		opt.Replicas = len(others)
	}
	if opt.Window <= 0 {
		opt.Window = 200 * time.Millisecond
	}

	work := append([]float64(nil), vec...)
	bounds := chunkBounds(len(work), opt.Segments)

	// Push each segment to R peers chosen by a rng derived from
	// (seed, round, self) — deterministic per sender, different across
	// senders and rounds.
	rng := rand.New(rand.NewSource(opt.Seed ^ int64(round)<<20 ^ int64(tr.ID())<<4))
	for s := 0; s < opt.Segments; s++ {
		seg := work[bounds[s]:bounds[s+1]]
		perm := rng.Perm(len(others))
		for r := 0; r < opt.Replicas; r++ {
			to := others[perm[r]]
			if err := tr.Send(Message{
				Kind: KindParams, To: to, Round: round, Chunk: s, Meta: -1,
				Payload: append([]float64(nil), seg...),
			}); err != nil {
				return nil, err
			}
		}
	}

	// Collect inbound segments for the window; average each into the
	// matching slice. counts tracks how many contributions each segment
	// absorbed so the running mean stays unbiased.
	counts := make([]int, opt.Segments)
	deadline := time.Now().Add(opt.Window)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			break
		}
		m, ok := tr.Recv(remain)
		if !ok {
			break
		}
		switch m.Kind {
		case KindParams:
			if m.Round != round || m.Meta != -1 {
				continue // ring traffic or stale round
			}
			s := m.Chunk
			if s < 0 || s >= opt.Segments {
				continue
			}
			dst := work[bounds[s]:bounds[s+1]]
			if len(m.Payload) != len(dst) {
				continue
			}
			// Incremental mean over {local, recv1, recv2, ...}: after n
			// receptions dst holds the average of the local segment and
			// all n contributions.
			counts[s]++
			for i := range dst {
				dst[i] += (m.Payload[i] - dst[i]) / float64(counts[s]+1)
			}
		case KindHandshake, KindHeartbeat:
			_ = tr.Send(Message{Kind: KindAck, To: m.From, Round: m.Round})
		}
	}
	return work, nil
}
