package p2p

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDispatchBody feeds arbitrary wire bytes through the message
// decoder into the dispatch-frame validator: malformed, truncated and
// oversized frames must be rejected with an error, never a panic, and
// an accepted body must survive a re-encode round trip.
func FuzzDispatchBody(f *testing.F) {
	seed, _ := NewDispatchFrame(KindDispatchRequest, 2, 9, []byte(`{"scheme":"hadfl"}`))
	f.Add(seed.Marshal())
	empty, _ := NewDispatchFrame(KindDispatchCancel, 1, 3, nil)
	f.Add(empty.Marshal())
	// A dispatch kind whose Meta disagrees with its payload.
	torn := seed
	torn.Meta = 4096
	f.Add(torn.Marshal())
	f.Add([]byte{byte(KindDispatchResult), 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		body, err := DispatchBody(m)
		if err != nil {
			return // rejected frames are fine; panics are not
		}
		if len(body) > MaxDispatchBody {
			t.Fatalf("accepted body of %d bytes past the %d cap", len(body), MaxDispatchBody)
		}
		re, err := NewDispatchFrame(m.Kind, m.To, m.Round, body)
		if err != nil {
			t.Fatalf("accepted body does not re-encode: %v", err)
		}
		back, err := DispatchBody(re)
		if err != nil || !bytes.Equal(back, body) {
			t.Fatalf("body round trip broke: %v", err)
		}
	})
}

// FuzzUnpackBytes exercises the byte-packing layer directly with
// arbitrary payload words and claimed lengths.
func FuzzUnpackBytes(f *testing.F) {
	f.Add([]byte("hello world"), 11)
	f.Add([]byte{}, 0)
	f.Add([]byte{1, 2, 3}, -5)
	f.Add([]byte{1, 2, 3}, 1<<30)
	f.Fuzz(func(t *testing.T, words []byte, n int) {
		payload := make([]float64, len(words)/8)
		for i := range payload {
			payload[i] = math.Float64frombits(binary.LittleEndian.Uint64(words[i*8:]))
		}
		b, err := UnpackBytes(payload, n)
		if err != nil {
			return
		}
		if len(b) != n {
			t.Fatalf("UnpackBytes returned %d bytes for claimed length %d", len(b), n)
		}
		repacked := PackBytes(b)
		if len(repacked) != len(payload) {
			t.Fatalf("repack length %d != %d", len(repacked), len(payload))
		}
	})
}

// FuzzUnmarshal ensures the wire decoder never panics and that every
// successfully decoded message re-encodes to the same bytes (canonical
// round trip).
func FuzzUnmarshal(f *testing.F) {
	f.Add(Message{Kind: KindParams, From: 1, To: 2, Round: 3, Payload: []float64{1, 2}}.Marshal())
	f.Add(Message{Kind: KindHeartbeat}.Marshal())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		re := m.Marshal()
		if !bytes.Equal(re, data) {
			t.Fatalf("decoded message re-encodes differently:\n in  %x\n out %x", data, re)
		}
	})
}
