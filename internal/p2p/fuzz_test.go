package p2p

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal ensures the wire decoder never panics and that every
// successfully decoded message re-encodes to the same bytes (canonical
// round trip).
func FuzzUnmarshal(f *testing.F) {
	f.Add(Message{Kind: KindParams, From: 1, To: 2, Round: 3, Payload: []float64{1, 2}}.Marshal())
	f.Add(Message{Kind: KindHeartbeat}.Marshal())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		re := m.Marshal()
		if !bytes.Equal(re, data) {
			t.Fatalf("decoded message re-encodes differently:\n in  %x\n out %x", data, re)
		}
	})
}
