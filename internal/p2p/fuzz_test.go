package p2p

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDispatchBody feeds arbitrary wire bytes through the message
// decoder into the dispatch-frame validator: malformed, truncated and
// oversized frames must be rejected with an error, never a panic, and
// an accepted body must survive a re-encode round trip.
func FuzzDispatchBody(f *testing.F) {
	seed, _ := NewDispatchFrame(KindDispatchRequest, 2, 9, []byte(`{"scheme":"hadfl"}`))
	f.Add(seed.Marshal())
	empty, _ := NewDispatchFrame(KindDispatchCancel, 1, 3, nil)
	f.Add(empty.Marshal())
	// A dispatch kind whose Meta disagrees with its payload.
	torn := seed
	torn.Meta = 4096
	f.Add(torn.Marshal())
	f.Add([]byte{byte(KindDispatchResult), 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		body, err := DispatchBody(m)
		if err != nil {
			return // rejected frames are fine; panics are not
		}
		if len(body) > MaxDispatchBody {
			t.Fatalf("accepted body of %d bytes past the %d cap", len(body), MaxDispatchBody)
		}
		re, err := NewDispatchFrame(m.Kind, m.To, m.Round, body)
		if err != nil {
			t.Fatalf("accepted body does not re-encode: %v", err)
		}
		back, err := DispatchBody(re)
		if err != nil || !bytes.Equal(back, body) {
			t.Fatalf("body round trip broke: %v", err)
		}
	})
}

// FuzzUnpackBytes exercises the byte-packing layer directly with
// arbitrary payload words and claimed lengths.
func FuzzUnpackBytes(f *testing.F) {
	f.Add([]byte("hello world"), 11)
	f.Add([]byte{}, 0)
	f.Add([]byte{1, 2, 3}, -5)
	f.Add([]byte{1, 2, 3}, 1<<30)
	f.Fuzz(func(t *testing.T, words []byte, n int) {
		payload := make([]float64, len(words)/8)
		for i := range payload {
			payload[i] = math.Float64frombits(binary.LittleEndian.Uint64(words[i*8:]))
		}
		b, err := UnpackBytes(payload, n)
		if err != nil {
			return
		}
		if len(b) != n {
			t.Fatalf("UnpackBytes returned %d bytes for claimed length %d", len(b), n)
		}
		repacked := PackBytes(b)
		if len(repacked) != len(payload) {
			t.Fatalf("repack length %d != %d", len(repacked), len(payload))
		}
	})
}

// FuzzChunkReassembly drives the chunk-stream reassembler two ways:
// arbitrary wire bytes decoded into frames must never panic it, and a
// stream legitimately split from the fuzzed body must reassemble to
// exactly that body — with any single-byte corruption of a chunk
// payload caught by the trailer checksum.
func FuzzChunkReassembly(f *testing.F) {
	big := make([]byte, DispatchChunkBytes+99)
	for i := range big {
		big[i] = byte(i * 7)
	}
	f.Add(big[:300], uint16(0), byte(0))
	f.Add(big[:0], uint16(1), byte(1))
	f.Add([]byte("hello chunked world"), uint16(9), byte(3))
	f.Fuzz(func(t *testing.T, body []byte, flip uint16, arbitrary byte) {
		// Property 1: a legitimate split round-trips.
		frames, err := SplitChunks(KindDispatchResult, 1, 2, body)
		if err != nil {
			t.Fatalf("SplitChunks on a legal body: %v", err)
		}
		var s ChunkStream
		for _, m := range frames[:len(frames)-1] {
			if err := s.Add(m); err != nil {
				t.Fatalf("Add: %v", err)
			}
		}
		term := frames[len(frames)-1]
		var got []byte
		if term.Chunk == 0 {
			got, err = DispatchBody(term)
		} else {
			got, err = s.Finish(term)
		}
		if err != nil || !bytes.Equal(got, body) {
			t.Fatalf("round trip broke: %v", err)
		}
		// Property 2: arbitrary frames never panic the reassembler.
		// Mutate one frame at a fuzz-chosen position and replay.
		if len(frames) > 1 {
			i := int(flip) % (len(frames) - 1)
			corrupt := frames[i]
			words := append([]float64(nil), corrupt.Payload...)
			if len(words) > 0 {
				w := math.Float64bits(words[int(flip)%len(words)])
				words[int(flip)%len(words)] = math.Float64frombits(w ^ (1 << (arbitrary % 64)))
			}
			corrupt.Payload = words
			var cs ChunkStream
			ok := true
			for j, m := range frames[:len(frames)-1] {
				if j == i {
					m = corrupt
				}
				if err := cs.Add(m); err != nil {
					ok = false
					break
				}
			}
			if ok && len(words) > 0 {
				if _, err := cs.Finish(term); err == nil {
					t.Fatal("flipped payload bit slipped past the checksum")
				}
			}
		}
		// Property 3: a hostile frame stream (raw fuzz bytes as frames)
		// errors instead of panicking.
		var hs ChunkStream
		m := Message{Kind: KindDispatchChunk, Chunk: 0, Meta: int(flip), Version: DispatchVersion, Payload: PackBytes(body)}
		_ = hs.Add(m)
		_, _ = hs.Finish(Message{Kind: KindDispatchResult, Chunk: int(arbitrary), Meta: len(body), Version: DispatchVersion, Payload: PackBytes(body)})
	})
}

// FuzzCodecDecode feeds every registered parameter codec arbitrary
// section bytes, references and counts: malformed, truncated and
// oversized input must error, never panic — and the exactness bit must
// be honored: when Encode reports exact, Decode must reproduce the
// input vector bit for bit.
func FuzzCodecDecode(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{0, 0, 0, 0, 0, 0, 0, 64}, 1)
	f.Add([]byte{}, []byte{}, 0)
	f.Add(make([]byte, 64), make([]byte, 16), 8)
	f.Fuzz(func(t *testing.T, data []byte, refBytes []byte, count int) {
		ref := make([]float64, len(refBytes)/8)
		for i := range ref {
			ref[i] = math.Float64frombits(binary.LittleEndian.Uint64(refBytes[i*8:]))
		}
		for _, name := range ParamCodecNames() {
			codec, _ := ParamCodecByName(name)
			// Hostile decode: must not panic, must bound its output.
			if out, err := codec.Decode(data, ref, count); err == nil {
				if len(out) != count {
					t.Fatalf("%s: decoded %d params for count %d", name, len(out), count)
				}
			}
			// Encode → decode: the exactness contract. The fuzzed data
			// doubles as the input vector.
			params := make([]float64, len(data)/8)
			for i := range params {
				params[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
			}
			section, exact := codec.Encode(params, ref)
			out, err := codec.Decode(section, ref, len(params))
			if err != nil {
				t.Fatalf("%s: decode of own encoding failed: %v", name, err)
			}
			if exact {
				for i := range out {
					if math.Float64bits(out[i]) != math.Float64bits(params[i]) {
						t.Fatalf("%s: exactness bit set but [%d] %x != %x",
							name, i, math.Float64bits(out[i]), math.Float64bits(params[i]))
					}
				}
			}
		}
	})
}

// FuzzUnmarshal ensures the wire decoder never panics and that every
// successfully decoded message re-encodes to the same bytes (canonical
// round trip).
func FuzzUnmarshal(f *testing.F) {
	f.Add(Message{Kind: KindParams, From: 1, To: 2, Round: 3, Payload: []float64{1, 2}}.Marshal())
	f.Add(Message{Kind: KindHeartbeat}.Marshal())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		re := m.Marshal()
		if !bytes.Equal(re, data) {
			t.Fatalf("decoded message re-encodes differently:\n in  %x\n out %x", data, re)
		}
	})
}
