package p2p

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// runRing executes RingAllReduce concurrently on all live members and
// returns each node's result (nil for members that errored).
func runRing(t *testing.T, hub *ChanHub, ring []int, vecs map[int][]float64, opt RingOptions) (map[int][]float64, map[int][]int) {
	t.Helper()
	var mu sync.Mutex
	results := make(map[int][]float64)
	survivors := make(map[int][]int)
	var wg sync.WaitGroup
	for _, id := range ring {
		if vecs[id] == nil {
			continue // dead from the start
		}
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, surv, err := RingAllReduce(hub.Node(id), ring, 1, vecs[id], opt)
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				results[id] = res
				survivors[id] = surv
			}
		}()
	}
	wg.Wait()
	return results, survivors
}

func TestRingAllReduceSums(t *testing.T) {
	hub := NewChanHub()
	ring := []int{0, 1, 2, 3}
	vecs := map[int][]float64{}
	want := make([]float64, 10)
	rng := rand.New(rand.NewSource(1))
	for _, id := range ring {
		v := make([]float64, 10)
		for i := range v {
			v[i] = rng.NormFloat64()
			want[i] += v[i]
		}
		vecs[id] = v
	}
	results, _ := runRing(t, hub, ring, vecs, DefaultRingOptions())
	if len(results) != 4 {
		t.Fatalf("only %d nodes finished", len(results))
	}
	for id, res := range results {
		for i := range want {
			if math.Abs(res[i]-want[i]) > 1e-9 {
				t.Fatalf("node %d element %d: %v want %v", id, i, res[i], want[i])
			}
		}
	}
}

func TestRingAllReduceTwoNodes(t *testing.T) {
	hub := NewChanHub()
	ring := []int{5, 9}
	vecs := map[int][]float64{5: {1, 2, 3}, 9: {10, 20, 30}}
	results, _ := runRing(t, hub, ring, vecs, DefaultRingOptions())
	for id, res := range results {
		for i, want := range []float64{11, 22, 33} {
			if math.Abs(res[i]-want) > 1e-12 {
				t.Fatalf("node %d: %v", id, res)
			}
		}
	}
}

func TestRingAllReduceSingleNode(t *testing.T) {
	hub := NewChanHub()
	res, surv, err := RingAllReduce(hub.Node(3), []int{3}, 1, []float64{4, 5}, DefaultRingOptions())
	if err != nil || len(surv) != 1 || res[0] != 4 || res[1] != 5 {
		t.Fatalf("res=%v surv=%v err=%v", res, surv, err)
	}
}

func TestRingAllReduceVectorShorterThanRing(t *testing.T) {
	// 2-element vector over 4 nodes: some chunks are empty.
	hub := NewChanHub()
	ring := []int{0, 1, 2, 3}
	vecs := map[int][]float64{0: {1, 1}, 1: {2, 2}, 2: {3, 3}, 3: {4, 4}}
	results, _ := runRing(t, hub, ring, vecs, DefaultRingOptions())
	if len(results) != 4 {
		t.Fatalf("finished %d", len(results))
	}
	for id, res := range results {
		if math.Abs(res[0]-10) > 1e-12 || math.Abs(res[1]-10) > 1e-12 {
			t.Fatalf("node %d: %v", id, res)
		}
	}
}

func TestRingAllReduceBypassesDeadNode(t *testing.T) {
	// Node 2 is dead before the round starts. Survivors must detect it,
	// reform {0,1,3}, and produce the sum of their three vectors —
	// exactly the §III-D scenario (device 3 bypasses device 2).
	hub := NewChanHub()
	ring := []int{0, 1, 2, 3}
	hub.Kill(2)
	vecs := map[int][]float64{
		0: {1, 10}, 1: {2, 20}, 2: nil, 3: {4, 40},
	}
	opt := RingOptions{DataTimeout: 150 * time.Millisecond, HandshakeTimeout: 80 * time.Millisecond, MaxReforms: 3}
	results, survivors := runRing(t, hub, ring, vecs, opt)
	if len(results) != 3 {
		t.Fatalf("finished %d survivors, want 3", len(results))
	}
	want := []float64{7, 70}
	for id, res := range results {
		for i := range want {
			if math.Abs(res[i]-want[i]) > 1e-9 {
				t.Fatalf("node %d result %v, want %v", id, res, want)
			}
		}
		surv := survivors[id]
		if len(surv) != 3 {
			t.Fatalf("node %d sees %d survivors", id, len(surv))
		}
		for _, s := range surv {
			if s == 2 {
				t.Fatalf("dead node still in surviving ring %v", surv)
			}
		}
	}
}

func TestRingAllReduceTwoDeadNodes(t *testing.T) {
	hub := NewChanHub()
	ring := []int{0, 1, 2, 3, 4}
	hub.Kill(1)
	hub.Kill(3)
	vecs := map[int][]float64{0: {1}, 1: nil, 2: {4}, 3: nil, 4: {16}}
	opt := RingOptions{DataTimeout: 150 * time.Millisecond, HandshakeTimeout: 80 * time.Millisecond, MaxReforms: 4}
	results, _ := runRing(t, hub, ring, vecs, opt)
	if len(results) != 3 {
		t.Fatalf("finished %d, want 3", len(results))
	}
	for id, res := range results {
		if math.Abs(res[0]-21) > 1e-9 {
			t.Fatalf("node %d result %v, want 21", id, res[0])
		}
	}
}

func TestRingAllReduceNotInRing(t *testing.T) {
	hub := NewChanHub()
	_, _, err := RingAllReduce(hub.Node(9), []int{0, 1}, 1, []float64{1}, DefaultRingOptions())
	if err == nil {
		t.Fatal("node outside ring must error")
	}
}

func TestChanHubKillRevive(t *testing.T) {
	hub := NewChanHub()
	a, b := hub.Node(1), hub.Node(2)
	hub.Kill(2)
	if err := a.Send(Message{To: 2}); err != nil {
		t.Fatalf("send to dead node errored at transport layer: %v", err)
	}
	if _, ok := b.Recv(30 * time.Millisecond); ok {
		t.Fatal("dead node received")
	}
	hub.Revive(2)
	if err := a.Send(Message{To: 2}); err != nil {
		t.Fatal(err)
	}
	if m, ok := b.Recv(time.Second); !ok || m.From != 1 {
		t.Fatalf("revived node recv %v %v", m, ok)
	}
}

func TestChanHubEarlySendIsQueued(t *testing.T) {
	// Sends to a node that has not attached yet are queued, not lost —
	// otherwise concurrent ring members racing through startup would
	// drop each other's first chunks.
	hub := NewChanHub()
	a := hub.Node(1)
	if err := a.Send(Message{To: 42, Round: 9}); err != nil {
		t.Fatal(err)
	}
	late := hub.Node(42)
	m, ok := late.Recv(time.Second)
	if !ok || m.Round != 9 {
		t.Fatalf("queued message lost: %v %v", m, ok)
	}
}

func TestBroadcastReachesAllTargets(t *testing.T) {
	hub := NewChanHub()
	src := hub.Node(0)
	targets := []int{1, 2, 3}
	nodes := map[int]*ChanNode{}
	for _, id := range targets {
		nodes[id] = hub.Node(id)
	}
	Broadcast(src, targets, Message{Kind: KindBroadcast, Payload: []float64{42}, Round: 7})
	for _, id := range targets {
		m, ok := nodes[id].Recv(time.Second)
		if !ok || m.Kind != KindBroadcast || m.Round != 7 || m.Payload[0] != 42 {
			t.Fatalf("target %d got %+v ok=%v", id, m, ok)
		}
	}
}

func TestChunkBounds(t *testing.T) {
	b := chunkBounds(10, 4)
	if b[0] != 0 || b[4] != 10 {
		t.Fatalf("bounds %v", b)
	}
	for i := 0; i < 4; i++ {
		size := b[i+1] - b[i]
		if size < 2 || size > 3 {
			t.Fatalf("chunk %d size %d", i, size)
		}
	}
	// Degenerate: fewer elements than chunks.
	b = chunkBounds(2, 5)
	total := 0
	for i := 0; i < 5; i++ {
		total += b[i+1] - b[i]
	}
	if total != 2 {
		t.Fatalf("chunks cover %d of 2 elements", total)
	}
}
