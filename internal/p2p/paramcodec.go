package p2p

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Parameter wire codecs: pluggable encodings for the flat float64
// parameter vectors the dispatch plane ships home. A codec turns a
// vector into an opaque byte section (and back), optionally encoding
// against a reference vector both ends can derive — for dispatch, the
// run's deterministic initial model. Codecs self-report exactness per
// encode: raw64 and delta always reproduce the input bit for bit, f32
// and topk only when the input happens to survive (every value
// f32-round-trips, every dropped delta is exactly zero), and the
// receiver can use the bit to tell authoritative results from lossy
// approximations.
//
// The registry is process-level like the scheme registry: built-ins
// register at init, names are the negotiation currency (a worker
// advertises its codec names in the hello frame, the dispatcher picks
// one per job, unknown names fall back to raw64).

// Built-in codec names.
const (
	ParamCodecRaw64 = "raw64" // bit-exact little-endian float64, the default
	ParamCodecF32   = "f32"   // float32 narrowing, 2× smaller, lossy
	ParamCodecDelta = "delta" // XOR vs the reference, DEFLATE-compressed, exact
	ParamCodecTopK  = "topk"  // top-k |delta| sparsification, lossy unless sparse
)

// ParamCodec encodes parameter vectors for the wire.
type ParamCodec interface {
	// Name is the codec's registry and negotiation identity.
	Name() string
	// UsesRef reports whether Encode/Decode consult the reference
	// vector; callers skip deriving one for codecs that ignore it.
	UsesRef() bool
	// Encode returns params' wire section and whether Decode will
	// reproduce params bit for bit. ref may be nil or of any length
	// (mismatched references are treated as absent); Decode must be
	// given the same ref to reverse the encoding.
	Encode(params, ref []float64) (data []byte, exact bool)
	// Decode rebuilds a count-length vector from data. It returns an
	// error — never panics — on malformed, truncated or oversized
	// input (FuzzCodecDecode pins that), and bounds its allocations by
	// count, which callers validate against MaxDispatchStream.
	Decode(data []byte, ref []float64, count int) ([]float64, error)
}

var (
	paramCodecMu  sync.RWMutex
	paramCodecs   = make(map[string]ParamCodec)
	paramCodecSeq []string // registration order, for stable advertisement
)

// RegisterParamCodec adds a codec to the process-level registry.
// Like schemes, codecs are identities: duplicate names are rejected.
func RegisterParamCodec(c ParamCodec) error {
	paramCodecMu.Lock()
	defer paramCodecMu.Unlock()
	name := c.Name()
	if name == "" {
		return fmt.Errorf("p2p: param codec with empty name")
	}
	if _, dup := paramCodecs[name]; dup {
		return fmt.Errorf("p2p: param codec %q already registered", name)
	}
	paramCodecs[name] = c
	paramCodecSeq = append(paramCodecSeq, name)
	return nil
}

// ParamCodecByName looks a codec up; ok is false for unknown names.
func ParamCodecByName(name string) (ParamCodec, bool) {
	paramCodecMu.RLock()
	defer paramCodecMu.RUnlock()
	c, ok := paramCodecs[name]
	return c, ok
}

// ParamCodecNames returns every registered codec name in registration
// order (raw64 first — the fallback every fleet shares).
func ParamCodecNames() []string {
	paramCodecMu.RLock()
	defer paramCodecMu.RUnlock()
	return append([]string(nil), paramCodecSeq...)
}

func init() {
	for _, c := range []ParamCodec{raw64Codec{}, f32Codec{}, deltaCodec{}, topkCodec{}} {
		if err := RegisterParamCodec(c); err != nil {
			panic(err)
		}
	}
}

// maxParamCount bounds a decoded vector by the stream cap: count claims
// beyond it are forged (the encoded section could never have shipped).
const maxParamCount = MaxDispatchStream / 8

func checkCount(count int) error {
	if count < 0 || count > maxParamCount {
		return fmt.Errorf("p2p: param count %d outside [0, %d]", count, maxParamCount)
	}
	return nil
}

// raw64Codec is the identity encoding: 8 bytes per value, little-endian
// IEEE-754 bits. Always exact — the determinism suite's wire format.
type raw64Codec struct{}

func (raw64Codec) Name() string  { return ParamCodecRaw64 }
func (raw64Codec) UsesRef() bool { return false }

func (raw64Codec) Encode(params, _ []float64) ([]byte, bool) {
	data := make([]byte, 8*len(params))
	for i, v := range params {
		binary.LittleEndian.PutUint64(data[i*8:], math.Float64bits(v))
	}
	return data, true
}

func (raw64Codec) Decode(data []byte, _ []float64, count int) ([]float64, error) {
	if err := checkCount(count); err != nil {
		return nil, err
	}
	if len(data) != 8*count {
		return nil, fmt.Errorf("p2p: raw64 section is %d bytes, want %d for %d params", len(data), 8*count, count)
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out, nil
}

// f32Codec narrows to float32: half the bytes, ~7 significant decimal
// digits. Exact only when every value round-trips through float32.
type f32Codec struct{}

func (f32Codec) Name() string  { return ParamCodecF32 }
func (f32Codec) UsesRef() bool { return false }

func (f32Codec) Encode(params, _ []float64) ([]byte, bool) {
	data := make([]byte, 4*len(params))
	exact := true
	for i, v := range params {
		f := float32(v)
		// Bit-level comparison: exactness promises Decode reproduces the
		// input bit for bit, which a NaN payload or denormal would break
		// even when the values compare equal.
		if math.Float64bits(float64(f)) != math.Float64bits(v) {
			exact = false
		}
		binary.LittleEndian.PutUint32(data[i*4:], math.Float32bits(f))
	}
	return data, exact
}

func (f32Codec) Decode(data []byte, _ []float64, count int) ([]float64, error) {
	if err := checkCount(count); err != nil {
		return nil, err
	}
	if len(data) != 4*count {
		return nil, fmt.Errorf("p2p: f32 section is %d bytes, want %d for %d params", len(data), 4*count, count)
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[i*4:])))
	}
	return out, nil
}

// deltaCodec XORs each value's bits with the reference's and DEFLATEs
// the result. Parameters that barely moved from the initial model share
// sign, exponent and high mantissa bits with it, so the XOR stream is
// dense with zero bytes and compresses well — and the encoding is
// lossless whatever the data, making it the exact-but-smaller choice.
// A missing or length-mismatched reference degrades to XOR-with-zero
// (plain bits), still exact, just less compressible.
type deltaCodec struct{}

func (deltaCodec) Name() string  { return ParamCodecDelta }
func (deltaCodec) UsesRef() bool { return true }

func (deltaCodec) Encode(params, ref []float64) ([]byte, bool) {
	xored := make([]byte, 8*len(params))
	if len(ref) != len(params) {
		ref = nil
	}
	for i, v := range params {
		bits := math.Float64bits(v)
		if ref != nil {
			bits ^= math.Float64bits(ref[i])
		}
		binary.LittleEndian.PutUint64(xored[i*8:], bits)
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil { // impossible for a valid level; keep the contract total
		return xored, true
	}
	_, _ = w.Write(xored)
	_ = w.Close()
	return buf.Bytes(), true
}

func (deltaCodec) Decode(data []byte, ref []float64, count int) ([]float64, error) {
	if err := checkCount(count); err != nil {
		return nil, err
	}
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	xored := make([]byte, 8*count)
	if _, err := io.ReadFull(r, xored); err != nil {
		return nil, fmt.Errorf("p2p: delta section inflate: %w", err)
	}
	// The stream must end exactly at count values — trailing data means
	// a count/section mismatch.
	var extra [1]byte
	if n, _ := r.Read(extra[:]); n != 0 {
		return nil, fmt.Errorf("p2p: delta section longer than %d params", count)
	}
	if len(ref) != count {
		ref = nil
	}
	out := make([]float64, count)
	for i := range out {
		bits := binary.LittleEndian.Uint64(xored[i*8:])
		if ref != nil {
			bits ^= math.Float64bits(ref[i])
		}
		out[i] = math.Float64frombits(bits)
	}
	return out, nil
}

// topkFraction is the fraction of values the topk codec keeps — the
// largest |param - ref| movers; everything else decodes to its
// reference value. 12 bytes per kept entry vs 8 per raw value makes
// the section ≈0.15× raw at this setting.
const topkFraction = 0.1

// topkCodec ships only the k values that moved farthest from the
// reference, as (uint32 index, float64 value) pairs behind a one-byte
// flags header whose low bit is the exactness bit: set exactly when
// every dropped value equals its reference bit for bit, so the decode
// is provably lossless despite the sparsification.
type topkCodec struct{}

// topkFlagExact marks a topk section whose decode is bit-exact.
const topkFlagExact = 0x1

func (topkCodec) Name() string  { return ParamCodecTopK }
func (topkCodec) UsesRef() bool { return true }

func (topkCodec) Encode(params, ref []float64) ([]byte, bool) {
	if len(ref) != len(params) {
		ref = nil
	}
	refAt := func(i int) float64 {
		if ref == nil {
			return 0
		}
		return ref[i]
	}
	k := int(float64(len(params)) * topkFraction)
	if k < 1 {
		k = 1
	}
	if k > len(params) {
		k = len(params)
	}
	idx := make([]int, len(params))
	for i := range idx {
		idx[i] = i
	}
	// Largest movers first; ties to the lower index so the encoding is
	// deterministic for determinism-suite purposes.
	sort.Slice(idx, func(a, b int) bool {
		da, db := math.Abs(params[idx[a]]-refAt(idx[a])), math.Abs(params[idx[b]]-refAt(idx[b]))
		if da != db {
			return da > db
		}
		return idx[a] < idx[b]
	})
	kept := append([]int(nil), idx[:k]...)
	sort.Ints(kept) // index order on the wire: cache-friendly decode
	inKept := make(map[int]bool, k)
	for _, i := range kept {
		inKept[i] = true
	}
	exact := true
	for i, v := range params {
		if !inKept[i] && math.Float64bits(v) != math.Float64bits(refAt(i)) {
			exact = false
			break
		}
	}
	data := make([]byte, 5+12*k)
	if exact {
		data[0] = topkFlagExact
	}
	binary.LittleEndian.PutUint32(data[1:], uint32(k))
	off := 5
	for _, i := range kept {
		binary.LittleEndian.PutUint32(data[off:], uint32(i))
		binary.LittleEndian.PutUint64(data[off+4:], math.Float64bits(params[i]))
		off += 12
	}
	return data, exact
}

func (topkCodec) Decode(data []byte, ref []float64, count int) ([]float64, error) {
	if err := checkCount(count); err != nil {
		return nil, err
	}
	if len(data) < 5 {
		return nil, fmt.Errorf("p2p: topk section is %d bytes, want at least 5", len(data))
	}
	k := int(binary.LittleEndian.Uint32(data[1:]))
	if k > count {
		return nil, fmt.Errorf("p2p: topk keeps %d of %d params", k, count)
	}
	if len(data) != 5+12*k {
		return nil, fmt.Errorf("p2p: topk section is %d bytes, want %d for k=%d", len(data), 5+12*k, k)
	}
	if len(ref) != count {
		ref = nil
	}
	out := make([]float64, count)
	copy(out, ref)
	off := 5
	for n := 0; n < k; n++ {
		i := int(binary.LittleEndian.Uint32(data[off:]))
		if i >= count {
			return nil, fmt.Errorf("p2p: topk index %d outside %d params", i, count)
		}
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off+4:]))
		off += 12
	}
	return out, nil
}
