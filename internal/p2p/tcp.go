package p2p

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPNode is a Transport over real TCP sockets: it listens for inbound
// peer connections and lazily dials peers on first send. Frames are
// length-prefixed Marshal()ed messages. It backs the live deployment
// binaries (cmd/hadfl-node, cmd/hadfl-coordinator).
type TCPNode struct {
	id    int
	ln    net.Listener
	inbox chan Message

	mu      sync.Mutex
	peers   map[int]string // id → address
	conns   map[int]net.Conn
	inbound []net.Conn
	closed  bool
	wg      sync.WaitGroup
}

// maxFrame bounds inbound frame size (64 MiB) against corrupt length
// prefixes.
const maxFrame = 64 << 20

// sendBaseTimeout and sendFloorBytesPerSec bound each outbound frame
// write: a flat 2s floor (matching the dial timeout) plus time for the
// frame's size at a deliberately low assumed throughput, so a 16 MiB
// model frame on a slow WAN is not spuriously cut off while a peer
// that blackholes after connect — kernel send buffer full, no RST —
// cannot park Send in conn.Write forever holding the node mutex and
// wedging every other sender on this node. A hung write errors out,
// the connection is dropped and the next send re-dials.
const (
	sendBaseTimeout      = 2 * time.Second
	sendFloorBytesPerSec = 1 << 20 // 1 MiB/s ≈ 8 Mbps
)

// sendDeadline returns the write budget for a frame of n bytes.
func sendDeadline(n int) time.Duration {
	return sendBaseTimeout + time.Duration(n)*time.Second/sendFloorBytesPerSec
}

// ListenTCP starts a node listening on addr (e.g. "127.0.0.1:0").
func ListenTCP(id int, addr string) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("p2p: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		id:    id,
		ln:    ln,
		inbox: make(chan Message, 1024),
		peers: make(map[int]string),
		conns: make(map[int]net.Conn),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the listening address (useful with port 0).
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// ID implements Transport.
func (n *TCPNode) ID() int { return n.id }

// AddPeer registers a peer's address for outbound dials.
func (n *TCPNode) AddPeer(id int, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[id] = addr
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.inbound = append(n.inbound, conn)
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func (n *TCPNode) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(lenBuf[:])
		if size == 0 || size > maxFrame {
			return
		}
		frame := make([]byte, size)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		m, err := Unmarshal(frame)
		if err != nil {
			return
		}
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return
		}
		select {
		case n.inbox <- m:
		default:
			// Inbox full: drop, like a saturated receiver.
		}
	}
}

// Send implements Transport. Unknown or unreachable peers yield an
// error; transient write failures close the cached connection so the
// next send re-dials.
func (n *TCPNode) Send(m Message) error {
	m.From = n.id
	conn, err := n.connTo(m.To)
	if err != nil {
		return err
	}
	frame := m.Marshal()
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(frame)))
	n.mu.Lock()
	defer n.mu.Unlock()
	_ = conn.SetWriteDeadline(time.Now().Add(sendDeadline(len(frame))))
	if _, err := conn.Write(lenBuf[:]); err != nil {
		n.dropConn(m.To, conn)
		return fmt.Errorf("p2p: send to %d: %w", m.To, err)
	}
	if _, err := conn.Write(frame); err != nil {
		n.dropConn(m.To, conn)
		return fmt.Errorf("p2p: send to %d: %w", m.To, err)
	}
	_ = conn.SetWriteDeadline(time.Time{})
	return nil
}

// connTo returns a cached or freshly dialed connection to peer id.
func (n *TCPNode) connTo(id int) (net.Conn, error) {
	n.mu.Lock()
	if c, ok := n.conns[id]; ok {
		n.mu.Unlock()
		return c, nil
	}
	addr, ok := n.peers[id]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("p2p: unknown peer %d", id)
	}
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, fmt.Errorf("p2p: dial peer %d at %s: %w", id, addr, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if existing, ok := n.conns[id]; ok {
		c.Close()
		return existing, nil
	}
	n.conns[id] = c
	return c, nil
}

func (n *TCPNode) dropConn(id int, c net.Conn) {
	if n.conns[id] == c {
		delete(n.conns, id)
	}
	c.Close()
}

// Recv implements Transport.
func (n *TCPNode) Recv(timeout time.Duration) (Message, bool) {
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case m := <-n.inbox:
		return m, true
	case <-t.C:
		return Message{}, false
	}
}

// Close shuts down the listener and all connections.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	for id, c := range n.conns {
		c.Close()
		delete(n.conns, id)
	}
	for _, c := range n.inbound {
		c.Close()
	}
	n.inbound = nil
	n.mu.Unlock()
	err := n.ln.Close()
	n.wg.Wait()
	return err
}
