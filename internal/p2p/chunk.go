package p2p

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Chunk streaming: a dispatch body larger than one frame travels as a
// sequence of KindDispatchChunk frames followed by the terminal frame
// (result or error kind) carrying a fixed trailer instead of the body.
// The layout, per frame:
//
//	chunk i   Kind=KindDispatchChunk, Round=seq, Chunk=i (0-based),
//	          Meta=chunk byte length, Payload=packed chunk bytes
//	terminal  Kind=result/error kind, Round=seq, Chunk=n (the chunk
//	          count, > 0), Meta=12, Payload=packed trailer:
//	          uint64 total body length | uint32 CRC-32 (IEEE) of the
//	          whole body, little-endian
//
// A terminal frame with Chunk=0 is the monolithic single-frame body
// every sender used before chunking existed, so the two generations
// interoperate: receivers dispatch on the Chunk field, and senders only
// stream to peers that negotiated a modern exchange.
//
// Bounds: each chunk body obeys MaxDispatchBody like any other frame
// (the per-chunk bound UnpackBytes enforces), and a reassembled stream
// is capped at MaxDispatchStream — so a corrupt chunk count or length
// can demand neither one absurd allocation nor an unbounded buffer.

// DispatchChunkBytes is the target chunk size senders split at (4 MiB,
// a multiple of 8 so every non-final chunk is word-aligned). It is
// deliberately below MaxDispatchBody: receivers accept any chunk up to
// the frame bound, so the two constants can move independently.
const DispatchChunkBytes = 4 << 20

// MaxDispatchStream bounds a reassembled chunk-streamed body (1 GiB) —
// roomy enough for models two orders of magnitude past today's, tight
// enough that a forged chunk sequence cannot buffer without end.
const MaxDispatchStream = 1 << 30

// chunkTrailerLen is the terminal frame's body length when it closes a
// chunk stream: uint64 total length + uint32 CRC-32.
const chunkTrailerLen = 12

// ChunkCount reports how many chunk frames SplitChunks produces for a
// body of n bytes (0 means the body fits one monolithic frame).
func ChunkCount(n int) int {
	if n <= DispatchChunkBytes {
		return 0
	}
	return (n + DispatchChunkBytes - 1) / DispatchChunkBytes
}

// SplitChunks encodes body as dispatch frames: a single monolithic
// frame when it fits DispatchChunkBytes, otherwise a chunk sequence
// closed by a trailer-carrying terminal frame of the given kind. The
// whole body is byte-packed exactly once into one word buffer and each
// chunk's payload is a sub-slice of it, so a stream costs one payload
// allocation however many frames it spans (pinned by
// BenchmarkSplitChunks).
func SplitChunks(kind Kind, to, seq int, body []byte) ([]Message, error) {
	if !IsDispatchKind(kind) || kind == KindDispatchChunk {
		return nil, fmt.Errorf("p2p: %v cannot terminate a chunk stream", kind)
	}
	if len(body) > MaxDispatchStream {
		return nil, fmt.Errorf("p2p: dispatch body %d bytes exceeds stream cap %d", len(body), MaxDispatchStream)
	}
	n := ChunkCount(len(body))
	if n == 0 {
		m, err := NewDispatchFrame(kind, to, seq, body)
		if err != nil {
			return nil, err
		}
		return []Message{m}, nil
	}
	// One packing pass for the whole stream. DispatchChunkBytes is a
	// multiple of 8, so every non-final chunk's payload is a word-aligned
	// sub-slice; the final chunk's zero padding lives in the shared
	// backing array's tail, exactly where PackBytes would put it.
	words := PackBytes(body)
	const chunkWords = DispatchChunkBytes / 8
	frames := make([]Message, 0, n+1)
	for i := 0; i < n; i++ {
		lo := i * DispatchChunkBytes
		hi := lo + DispatchChunkBytes
		if hi > len(body) {
			hi = len(body)
		}
		frames = append(frames, Message{
			Kind:    KindDispatchChunk,
			To:      to,
			Round:   seq,
			Chunk:   i,
			Meta:    hi - lo,
			Version: DispatchVersion,
			Payload: words[i*chunkWords : (i*DispatchChunkBytes+(hi-lo)+7)/8],
		})
	}
	var trailer [chunkTrailerLen]byte
	binary.LittleEndian.PutUint64(trailer[:], uint64(len(body)))
	binary.LittleEndian.PutUint32(trailer[8:], crc32.ChecksumIEEE(body))
	term, err := NewDispatchFrame(kind, to, seq, trailer[:])
	if err != nil {
		return nil, err
	}
	term.Chunk = n
	return append(frames, term), nil
}

// SendChunked splits body with SplitChunks and sends every frame in
// order; it reports how many chunk frames preceded the terminal one.
// The first send error aborts the stream (the receiver's reassembler
// rejects the torn remainder by count, length or checksum).
func SendChunked(t Transport, kind Kind, to, seq int, body []byte) (chunks int, err error) {
	frames, err := SplitChunks(kind, to, seq, body)
	if err != nil {
		return 0, err
	}
	for _, m := range frames {
		if err := t.Send(m); err != nil {
			return len(frames) - 1, err
		}
	}
	return len(frames) - 1, nil
}

// ChunkStream reassembles one peer's chunk sequence. Add every
// KindDispatchChunk frame in arrival order (transports deliver
// per-peer frames in order), then hand the terminal frame to Finish.
// The zero value is ready to use. Methods never panic on malformed
// frames — every inconsistency is an error (FuzzChunkReassembly pins
// that), and after any error the stream is poisoned garbage the owner
// should drop.
type ChunkStream struct {
	buf  []byte
	next int
}

// Len reports how many body bytes have been buffered so far.
func (s *ChunkStream) Len() int { return len(s.buf) }

// Chunks reports how many chunk frames have been accepted so far.
func (s *ChunkStream) Chunks() int { return s.next }

// Add validates and buffers one chunk frame.
func (s *ChunkStream) Add(m Message) error {
	if m.Kind != KindDispatchChunk {
		return fmt.Errorf("p2p: %v is not a chunk frame", m.Kind)
	}
	if m.Version != DispatchVersion {
		return fmt.Errorf("%w, chunk has %v", ErrDispatchVersion, m.Version)
	}
	if m.Chunk != s.next {
		return fmt.Errorf("p2p: chunk %d out of order (want %d)", m.Chunk, s.next)
	}
	if m.Meta == 0 {
		return fmt.Errorf("p2p: empty chunk %d", m.Chunk)
	}
	part, err := UnpackBytes(m.Payload, m.Meta)
	if err != nil {
		return err
	}
	if len(s.buf)+len(part) > MaxDispatchStream {
		return fmt.Errorf("p2p: chunk stream exceeds cap %d", MaxDispatchStream)
	}
	s.buf = append(s.buf, part...)
	s.next++
	return nil
}

// Finish validates the stream-closing terminal frame (Chunk = chunk
// count > 0, body = total-length + CRC-32 trailer) against what Add
// buffered and returns the reassembled body.
func (s *ChunkStream) Finish(m Message) ([]byte, error) {
	if m.Chunk <= 0 {
		return nil, fmt.Errorf("p2p: terminal frame with chunk count %d does not close a stream", m.Chunk)
	}
	if m.Chunk != s.next {
		return nil, fmt.Errorf("p2p: terminal frame claims %d chunks, stream has %d", m.Chunk, s.next)
	}
	trailer, err := DispatchBody(m)
	if err != nil {
		return nil, err
	}
	if len(trailer) != chunkTrailerLen {
		return nil, fmt.Errorf("p2p: chunk trailer is %d bytes, want %d", len(trailer), chunkTrailerLen)
	}
	total := binary.LittleEndian.Uint64(trailer)
	if total != uint64(len(s.buf)) {
		return nil, fmt.Errorf("p2p: chunk stream reassembled %d bytes, trailer claims %d", len(s.buf), total)
	}
	if sum := crc32.ChecksumIEEE(s.buf); sum != binary.LittleEndian.Uint32(trailer[8:]) {
		return nil, fmt.Errorf("p2p: chunk stream checksum mismatch")
	}
	return s.buf, nil
}
