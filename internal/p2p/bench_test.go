package p2p

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"hadfl/internal/simclock"
)

func BenchmarkMessageMarshal(b *testing.B) {
	m := Message{Kind: KindParams, From: 1, To: 2, Round: 3, Payload: make([]float64, 4096)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := m.Marshal()
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(m.WireSize()))
}

func BenchmarkSimNetSend(b *testing.B) {
	e := simclock.New()
	net := NewSimNet(e, Link{Latency: 0.001, Bandwidth: 1e9}, rand.New(rand.NewSource(1)))
	net.Register(2, func(Message) {})
	m := Message{Kind: KindParams, From: 1, To: 2, Payload: make([]float64, 1024)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(m)
		e.Run(0)
	}
}

func BenchmarkRingAllReduce4(b *testing.B) {
	const n = 4
	vec := make([]float64, 4096)
	for i := range vec {
		vec[i] = float64(i)
	}
	opt := RingOptions{DataTimeout: 5 * time.Second, HandshakeTimeout: time.Second, MaxReforms: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub := NewChanHub()
		ring := []int{0, 1, 2, 3}
		var wg sync.WaitGroup
		for _, id := range ring {
			id := id
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, _, err := RingAllReduce(hub.Node(id), ring, i, vec, opt); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.SetBytes(int64(8 * len(vec) * n))
}
