package p2p

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"hadfl/internal/simclock"
)

func BenchmarkMessageMarshal(b *testing.B) {
	m := Message{Kind: KindParams, From: 1, To: 2, Round: 3, Payload: make([]float64, 4096)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := m.Marshal()
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(m.WireSize()))
}

func BenchmarkSimNetSend(b *testing.B) {
	e := simclock.New()
	net := NewSimNet(e, Link{Latency: 0.001, Bandwidth: 1e9}, rand.New(rand.NewSource(1)))
	net.Register(2, func(Message) {})
	m := Message{Kind: KindParams, From: 1, To: 2, Payload: make([]float64, 1024)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(m)
		e.Run(0)
	}
}

// BenchmarkPackBytes vs BenchmarkPackBytesInto pins the satellite
// contract: the into-variant with a warm buffer must not allocate.
func BenchmarkPackBytes(b *testing.B) {
	body := make([]byte, 1<<20)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = PackBytes(body)
	}
}

func BenchmarkPackBytesInto(b *testing.B) {
	body := make([]byte, 1<<20)
	buf := make([]float64, len(body)/8)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = PackBytesInto(buf, body)
	}
}

// BenchmarkSplitChunks pins the one-allocation-per-stream contract for
// chunk encoding: a multi-chunk body packs once, however many frames it
// spans.
func BenchmarkSplitChunks(b *testing.B) {
	body := make([]byte, 3*DispatchChunkBytes+12345)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SplitChunks(KindDispatchResult, 1, i, body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChunkRoundTrip measures the full split → reassemble → verify
// path a dispatched result body takes through the chunk layer.
func BenchmarkChunkRoundTrip(b *testing.B) {
	body := make([]byte, 2*DispatchChunkBytes+999)
	for i := range body {
		body[i] = byte(i)
	}
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frames, err := SplitChunks(KindDispatchResult, 1, i, body)
		if err != nil {
			b.Fatal(err)
		}
		var s ChunkStream
		for _, m := range frames[:len(frames)-1] {
			if err := s.Add(m); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.Finish(frames[len(frames)-1]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRingAllReduce4(b *testing.B) {
	const n = 4
	vec := make([]float64, 4096)
	for i := range vec {
		vec[i] = float64(i)
	}
	opt := RingOptions{DataTimeout: 5 * time.Second, HandshakeTimeout: time.Second, MaxReforms: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub := NewChanHub()
		ring := []int{0, 1, 2, 3}
		var wg sync.WaitGroup
		for _, id := range ring {
			id := id
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, _, err := RingAllReduce(hub.Node(id), ring, i, vec, opt); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.SetBytes(int64(8 * len(vec) * n))
}
