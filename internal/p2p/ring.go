package p2p

import (
	"errors"
	"fmt"
	"time"
)

// RingOptions tunes the fault-tolerant ring all-reduce.
type RingOptions struct {
	// DataTimeout is how long a node waits for the next data chunk before
	// suspecting its upstream neighbour has died (the paper's
	// "pre-specified waiting time").
	DataTimeout time.Duration
	// HandshakeTimeout is how long the suspecting node waits for a
	// handshake Ack before declaring the neighbour dead.
	HandshakeTimeout time.Duration
	// MaxReforms bounds how many bypasses one reduction tolerates.
	MaxReforms int
}

// DefaultRingOptions returns timeouts suitable for in-process and
// localhost transports.
func DefaultRingOptions() RingOptions {
	return RingOptions{
		DataTimeout:      200 * time.Millisecond,
		HandshakeTimeout: 100 * time.Millisecond,
		MaxReforms:       3,
	}
}

// ErrRingCollapsed is returned when bypassing failures leaves no live
// members.
var ErrRingCollapsed = errors.New("p2p: ring collapsed")

// ringState carries the failure knowledge a node accumulates during one
// all-reduce: the set of members it believes dead. The attempt number is
// defined as len(dead), so two nodes agree on the attempt exactly when
// they agree on the casualty list — which the Reform gossip drives them
// to. This makes the bypass protocol convergent under concurrent
// failures (two detectors announcing different deaths eventually merge
// both into every survivor's set).
type ringState struct {
	full []int // original ring, fixed
	dead map[int]bool
	// pending buffers data chunks that arrived "from the future": a peer
	// that learned of a casualty earlier restarts (and resends) before we
	// do, and dropping its chunks would starve us after our own restart.
	pending []Message
}

func (st *ringState) attempt() int { return len(st.dead) }

func (st *ringState) ring() []int {
	out := make([]int, 0, len(st.full))
	for _, id := range st.full {
		if !st.dead[id] {
			out = append(out, id)
		}
	}
	return out
}

// markDead records a casualty; reports whether it was new information.
func (st *ringState) markDead(id int) bool {
	if st.dead[id] {
		return false
	}
	st.dead[id] = true
	return true
}

// RingAllReduce performs a gossip scatter-gather (Horovod-style ring)
// all-reduce of vec across the devices in ring, over the blocking
// transport tr. Every participant must call it with the same ring slice
// and round number. It returns the element-wise SUM over the surviving
// participants' vectors, and the surviving ring (callers divide by its
// length for a mean).
//
// Fault tolerance (paper §III-D): if a node stops receiving data from
// its upstream neighbour, it sends a Handshake to confirm the neighbour
// is dead, then issues a Warning to the dead node's upstream and a
// Reform announcement to the survivors; everyone restarts the reduction
// on the shrunken ring with their original vectors.
func RingAllReduce(tr Transport, ring []int, round int, vec []float64, opt RingOptions) ([]float64, []int, error) {
	if opt.DataTimeout <= 0 {
		opt = DefaultRingOptions()
	}
	st := &ringState{full: append([]int(nil), ring...), dead: map[int]bool{}}
	for {
		if st.attempt() > opt.MaxReforms {
			return nil, nil, fmt.Errorf("p2p: all-reduce gave up after %d reforms", opt.MaxReforms)
		}
		cur := st.ring()
		switch len(cur) {
		case 0:
			return nil, nil, ErrRingCollapsed
		case 1:
			return append([]float64(nil), vec...), cur, nil
		}
		res, err := ringAttempt(tr, st, round, vec, opt)
		if err == nil {
			return res, cur, nil
		}
		var rf *reformError
		if errors.As(err, &rf) {
			continue // st.dead already updated; retry on the smaller ring
		}
		return nil, nil, err
	}
}

// reformError signals that new casualty information arrived and the
// attempt must restart.
type reformError struct{ dead int }

func (e *reformError) Error() string {
	return fmt.Sprintf("p2p: ring reformed around dead node %d", e.dead)
}

// ringAttempt runs one scatter-reduce + all-gather pass over the current
// surviving ring.
func ringAttempt(tr Transport, st *ringState, round int, vec []float64, opt RingOptions) ([]float64, error) {
	ring := st.ring()
	attempt := st.attempt()
	n := len(ring)
	me := indexOf(ring, tr.ID())
	if me < 0 {
		return nil, fmt.Errorf("p2p: node %d not in ring %v", tr.ID(), ring)
	}
	right := ring[(me+1)%n]
	left := ring[(me-1+n)%n]

	work := append([]float64(nil), vec...)
	bounds := chunkBounds(len(work), n)
	get := func(c int) []float64 { return work[bounds[c]:bounds[c+1]] }

	// Scatter-reduce: after n−1 steps node me owns the fully reduced
	// chunk (me+1) mod n.
	for s := 0; s < n-1; s++ {
		sendChunk := (me - s + 2*n) % n
		recvChunk := (me - s - 1 + 2*n) % n
		if err := tr.Send(Message{
			Kind: KindParams, To: right, Round: round,
			Chunk: sendChunk, Meta: attempt, Payload: append([]float64(nil), get(sendChunk)...),
		}); err != nil {
			return nil, err
		}
		m, err := recvData(tr, st, left, round, recvChunk, opt)
		if err != nil {
			return nil, err
		}
		dst := get(recvChunk)
		if len(m.Payload) != len(dst) {
			return nil, fmt.Errorf("p2p: chunk %d size %d, want %d", recvChunk, len(m.Payload), len(dst))
		}
		for i, v := range m.Payload {
			dst[i] += v
		}
	}
	// All-gather: circulate the reduced chunks.
	for s := 0; s < n-1; s++ {
		sendChunk := (me + 1 - s + 2*n) % n
		recvChunk := (me - s + 2*n) % n
		if err := tr.Send(Message{
			Kind: KindParams, To: right, Round: round,
			Chunk: sendChunk, Meta: attempt, Payload: append([]float64(nil), get(sendChunk)...),
		}); err != nil {
			return nil, err
		}
		m, err := recvData(tr, st, left, round, recvChunk, opt)
		if err != nil {
			return nil, err
		}
		copy(get(recvChunk), m.Payload)
	}
	return work, nil
}

// recvData waits for the expected data chunk, servicing control traffic
// (handshakes, reform gossip) while it waits. On upstream silence it
// runs the bypass protocol of §III-D. If the upstream turns out to be
// alive but stalled (itself waiting on a casualty elsewhere), the wait
// restarts — the eventual Reform gossip unblocks everyone.
func recvData(tr Transport, st *ringState, left, round, wantChunk int, opt RingOptions) (Message, error) {
	attempt := st.attempt()
	// A matching chunk may already sit in the pending buffer, stashed by
	// an earlier attempt that saw it arrive too early.
	for i, m := range st.pending {
		if m.Meta == attempt && m.Chunk == wantChunk && m.From == left && m.Round == round {
			st.pending = append(st.pending[:i], st.pending[i+1:]...)
			return m, nil
		}
	}
	deadline := time.Now().Add(opt.DataTimeout)
	probes := 0
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			m, err := bypass(tr, st, left, round, wantChunk, opt)
			if err == errUpstreamAlive {
				probes++
				if probes > opt.MaxReforms+3 {
					return Message{}, fmt.Errorf("p2p: node %d stalled waiting for chunk %d of round %d", tr.ID(), wantChunk, round)
				}
				deadline = time.Now().Add(opt.DataTimeout)
				continue
			}
			return m, err
		}
		m, ok := tr.Recv(remain)
		if !ok {
			continue // deadline branch handles the bypass
		}
		if out, err, handled := handleControl(tr, st, m, round, left, attempt, wantChunk); handled {
			if err != nil || out.Kind == KindParams {
				return out, err
			}
		}
	}
}

// handleControl processes one inbound message during a wait. It returns
// handled=false for messages that are silently ignored. When the message
// is the awaited data chunk it returns it; when it is novel casualty
// gossip it updates st and returns a *reformError.
func handleControl(tr Transport, st *ringState, m Message, round, left, attempt, wantChunk int) (Message, error, bool) {
	switch m.Kind {
	case KindParams:
		if m.Round == round && m.Meta == attempt && m.Chunk == wantChunk && m.From == left {
			return m, nil, true
		}
		if m.Round == round && m.Meta > attempt {
			// A peer ahead of us already restarted on a smaller ring;
			// keep its chunk for after our own restart.
			st.pending = append(st.pending, m)
		}
	case KindHandshake, KindHeartbeat:
		_ = tr.Send(Message{Kind: KindAck, To: m.From, Round: m.Round})
	case KindReform, KindWarning:
		if m.Round == round && st.markDead(m.Meta) {
			return Message{}, &reformError{dead: m.Meta}, true
		}
	}
	return Message{}, nil, false
}

// errUpstreamAlive signals that a handshake probe got an Ack: the
// upstream is alive but stalled, so the prober should resume waiting.
var errUpstreamAlive = errors.New("p2p: upstream alive but stalled")

// bypass implements the §III-D failure protocol from the viewpoint of
// the dead node's downstream neighbour: handshake to confirm death, warn
// the dead node's upstream, gossip the reform to all survivors.
func bypass(tr Transport, st *ringState, left, round, wantChunk int, opt RingOptions) (Message, error) {
	attempt := st.attempt()
	// "device 3 sends a handshake message to device 2 to confirm its
	// status."
	_ = tr.Send(Message{Kind: KindHandshake, To: left, Round: round})
	hsDeadline := time.Now().Add(opt.HandshakeTimeout)
	for {
		remain := time.Until(hsDeadline)
		if remain <= 0 {
			break
		}
		m, ok := tr.Recv(remain)
		if !ok {
			break
		}
		if m.Kind == KindAck && m.From == left {
			return Message{}, errUpstreamAlive
		}
		if out, herr, handled := handleControl(tr, st, m, round, left, attempt, wantChunk); handled {
			return out, herr
		}
	}
	// No Ack: declare left dead. Warn its upstream ("issues a warning to
	// device 1, the upstream of device 2") and gossip the reform to every
	// member of the original ring we still believe alive.
	ring := st.ring()
	n := len(ring)
	li := indexOf(ring, left)
	if li >= 0 {
		upstream := ring[(li-1+n)%n]
		if upstream != tr.ID() {
			_ = tr.Send(Message{Kind: KindWarning, To: upstream, Round: round, Meta: left})
		}
	}
	st.markDead(left)
	for _, id := range st.ring() {
		if id == tr.ID() {
			continue
		}
		_ = tr.Send(Message{Kind: KindReform, To: id, Round: round, Chunk: st.attempt(), Meta: left})
	}
	return Message{}, &reformError{dead: left}
}

// chunkBounds splits length len into n contiguous chunks, returning n+1
// boundaries. Chunks differ in size by at most one element; when
// len < n some chunks are empty, which the protocol tolerates.
func chunkBounds(length, n int) []int {
	b := make([]int, n+1)
	for i := 0; i <= n; i++ {
		b[i] = i * length / n
	}
	return b
}

func indexOf(ring []int, id int) int {
	for i, v := range ring {
		if v == id {
			return i
		}
	}
	return -1
}

// Broadcast sends m to each target (non-blocking from the protocol's
// perspective: sends are fire-and-forget). Used for the post-aggregation
// model broadcast to unselected devices.
func Broadcast(tr Transport, targets []int, m Message) {
	for _, to := range targets {
		mm := m
		mm.To = to
		_ = tr.Send(mm)
	}
}
