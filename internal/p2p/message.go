// Package p2p implements HADFL's decentralized data plane: the wire
// message format, a deterministic simulated network with latency,
// bandwidth, loss and crash modeling (used by all experiments), a real
// TCP transport for live deployments, and the gossip-style ring
// scatter-gather all-reduce with the paper's fault-tolerant bypass
// protocol (§III-D).
package p2p

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Kind discriminates message types on the wire.
type Kind uint8

// Message kinds.
const (
	KindParams    Kind = iota + 1 // model parameter vector (or chunk)
	KindGradient                  // gradient vector (distributed baseline)
	KindBroadcast                 // aggregated model broadcast to unselected devices
	KindHeartbeat                 // liveness probe
	KindHandshake                 // §III-D: downstream confirms a suspected-dead peer
	KindAck                       // reply to heartbeat/handshake
	KindWarning                   // §III-D: notify upstream to bypass a dead peer
	KindReform                    // ring reformation announcement after a bypass
	KindReport                    // device → coordinator runtime report (version, timing)
	KindConfig                    // coordinator → device training configuration

	// Dispatch-plane kinds (serve → worker job shipping; see dispatch.go
	// for the frame layout and internal/serve/dispatch for the protocol).
	KindDispatchHello   // dispatcher ⇄ worker registration (body: helloBody)
	KindDispatchRequest // dispatcher → worker: execute a run (body: requestBody)
	KindDispatchRound   // worker → dispatcher: per-round telemetry
	KindDispatchResult  // worker → dispatcher: terminal success + result
	KindDispatchError   // worker → dispatcher: terminal failure
	KindDispatchCancel  // dispatcher → worker: abort the run for a sequence
	KindDispatchChunk   // one slice of a chunk-streamed dispatch body (see chunk.go)
)

func (k Kind) String() string {
	switch k {
	case KindParams:
		return "params"
	case KindGradient:
		return "gradient"
	case KindBroadcast:
		return "broadcast"
	case KindHeartbeat:
		return "heartbeat"
	case KindHandshake:
		return "handshake"
	case KindAck:
		return "ack"
	case KindWarning:
		return "warning"
	case KindReform:
		return "reform"
	case KindReport:
		return "report"
	case KindConfig:
		return "config"
	case KindDispatchHello:
		return "dispatch-hello"
	case KindDispatchRequest:
		return "dispatch-request"
	case KindDispatchRound:
		return "dispatch-round"
	case KindDispatchResult:
		return "dispatch-result"
	case KindDispatchError:
		return "dispatch-error"
	case KindDispatchCancel:
		return "dispatch-cancel"
	case KindDispatchChunk:
		return "dispatch-chunk"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Message is the unit of communication between devices (and between
// devices and the coordinator). Payload carries parameter/gradient data;
// Meta carries small integer fields whose meaning depends on Kind (e.g.
// chunk index for ring all-reduce, dead-device id for warnings).
type Message struct {
	Kind    Kind
	From    int
	To      int
	Round   int
	Chunk   int // chunk index within a ring all-reduce step
	Meta    int // kind-specific small field
	Version float64
	Payload []float64
}

const headerBytes = 1 + 4*5 + 8 + 4 // kind + 5 int32 + version + payload len

// WireSize returns the encoded size in bytes, the quantity all
// communication-volume accounting uses.
func (m Message) WireSize() int {
	return headerBytes + 8*len(m.Payload)
}

// Marshal encodes the message into a self-delimiting byte slice.
func (m Message) Marshal() []byte {
	buf := make([]byte, m.WireSize())
	buf[0] = byte(m.Kind)
	off := 1
	for _, v := range []int{m.From, m.To, m.Round, m.Chunk, m.Meta} {
		binary.LittleEndian.PutUint32(buf[off:], uint32(int32(v)))
		off += 4
	}
	binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(m.Version))
	off += 8
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(m.Payload)))
	off += 4
	for _, v := range m.Payload {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	return buf
}

// Unmarshal decodes a message previously produced by Marshal.
func Unmarshal(buf []byte) (Message, error) {
	if len(buf) < headerBytes {
		return Message{}, fmt.Errorf("p2p: message too short: %d bytes", len(buf))
	}
	var m Message
	m.Kind = Kind(buf[0])
	off := 1
	ints := make([]int, 5)
	for i := range ints {
		ints[i] = int(int32(binary.LittleEndian.Uint32(buf[off:])))
		off += 4
	}
	m.From, m.To, m.Round, m.Chunk, m.Meta = ints[0], ints[1], ints[2], ints[3], ints[4]
	m.Version = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
	off += 8
	n := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if n < 0 || len(buf) != off+8*n {
		return Message{}, fmt.Errorf("p2p: payload length %d does not match buffer %d", n, len(buf))
	}
	if n > 0 {
		m.Payload = make([]float64, n)
		for i := range m.Payload {
			m.Payload[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	return m, nil
}
