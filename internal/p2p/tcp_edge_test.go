package p2p

import (
	"encoding/binary"
	"net"
	"testing"
	"time"
)

func TestTCPRejectsOversizeFrame(t *testing.T) {
	node, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	conn, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Claim a frame far beyond maxFrame; the node must drop the
	// connection without allocating or crashing.
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(maxFrame+1))
	if _, err := conn.Write(lenBuf[:]); err != nil {
		t.Fatal(err)
	}
	// The node should close its side promptly.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection still open after oversize frame")
	}
	// Node still serves legitimate peers.
	if _, ok := node.Recv(50 * time.Millisecond); ok {
		t.Fatal("phantom message delivered")
	}
}

func TestTCPRejectsZeroLengthFrame(t *testing.T) {
	node, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	conn, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var lenBuf [4]byte // zero length
	if _, err := conn.Write(lenBuf[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection still open after zero-length frame")
	}
}

func TestTCPGarbageFrameIgnored(t *testing.T) {
	node, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	conn, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A well-framed but undecodable payload closes the read loop without
	// delivering anything.
	garbage := []byte{1, 2, 3}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(garbage)))
	conn.Write(lenBuf[:])
	conn.Write(garbage)
	if _, ok := node.Recv(100 * time.Millisecond); ok {
		t.Fatal("garbage frame delivered as a message")
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b1, err := ListenTCP(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := b1.Addr()
	a.AddPeer(2, addr)
	if err := a.Send(Message{Kind: KindHeartbeat, To: 2}); err != nil {
		t.Fatal(err)
	}
	if _, ok := b1.Recv(2 * time.Second); !ok {
		t.Fatal("first message lost")
	}
	// Restart the peer on the same address.
	b1.Close()
	b2, err := ListenTCP(2, addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer b2.Close()
	// The cached connection is dead; the first send may fail and drop
	// it, after which a retry dials fresh.
	deadline := time.Now().Add(5 * time.Second)
	delivered := false
	for time.Now().Before(deadline) {
		_ = a.Send(Message{Kind: KindHeartbeat, To: 2})
		if _, ok := b2.Recv(200 * time.Millisecond); ok {
			delivered = true
			break
		}
	}
	if !delivered {
		t.Fatal("no delivery after peer restart")
	}
}
