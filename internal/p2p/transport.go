package p2p

import (
	"fmt"
	"sync"
	"time"
)

// Transport is a blocking point-to-point message channel, the abstraction
// the live (goroutine-per-device) protocols run over. Implementations:
// ChanHub nodes (in-process, for tests and local simulation of the live
// path) and TCPNode (real sockets).
type Transport interface {
	// ID returns this node's device id.
	ID() int
	// Send transmits m (m.From is overwritten with the node's id).
	// Sending to a dead or unknown peer is not an error at this layer;
	// failures surface as receive timeouts, as on a real network.
	Send(m Message) error
	// Recv blocks for the next inbound message, up to timeout.
	// ok=false means the timeout elapsed.
	Recv(timeout time.Duration) (msg Message, ok bool)
	// Close releases resources.
	Close() error
}

// ChanHub is an in-process message switchboard connecting ChanNode
// transports. It supports killing nodes (messages to/from them vanish),
// which the fault-tolerance tests use to emulate sudden disconnection.
type ChanHub struct {
	mu      sync.Mutex
	inboxes map[int]chan Message
	dead    map[int]bool
}

// NewChanHub returns an empty hub.
func NewChanHub() *ChanHub {
	return &ChanHub{
		inboxes: make(map[int]chan Message),
		dead:    make(map[int]bool),
	}
}

// Node creates (or returns) the transport endpoint for device id.
func (h *ChanHub) Node(id int) *ChanNode {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.inboxes[id]; !ok {
		h.inboxes[id] = make(chan Message, 1024)
	}
	return &ChanNode{hub: h, id: id}
}

// Kill makes a node unreachable: pending and future messages to it are
// dropped and its sends are swallowed, as if its link went down.
func (h *ChanHub) Kill(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.dead[id] = true
}

// Revive reverses Kill.
func (h *ChanHub) Revive(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.dead, id)
}

func (h *ChanHub) send(m Message) error {
	h.mu.Lock()
	if h.dead[m.From] || h.dead[m.To] {
		h.mu.Unlock()
		return nil // silently lost, like a dead NIC
	}
	ch, ok := h.inboxes[m.To]
	if !ok {
		// The peer has not attached yet; create its inbox so early
		// messages are queued rather than lost (mirrors a network where
		// the address exists before the process binds it).
		ch = make(chan Message, 1024)
		h.inboxes[m.To] = ch
	}
	h.mu.Unlock()
	select {
	case ch <- m:
		return nil
	default:
		return fmt.Errorf("p2p: inbox of %d full", m.To)
	}
}

// ChanNode is one endpoint on a ChanHub.
type ChanNode struct {
	hub *ChanHub
	id  int
}

// ID implements Transport.
func (n *ChanNode) ID() int { return n.id }

// Send implements Transport.
func (n *ChanNode) Send(m Message) error {
	m.From = n.id
	return n.hub.send(m)
}

// Recv implements Transport.
func (n *ChanNode) Recv(timeout time.Duration) (Message, bool) {
	n.hub.mu.Lock()
	ch := n.hub.inboxes[n.id]
	dead := n.hub.dead[n.id]
	n.hub.mu.Unlock()
	if ch == nil || dead {
		// A dead node never receives; emulate by sleeping out the timeout.
		time.Sleep(timeout)
		return Message{}, false
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case m := <-ch:
		return m, true
	case <-t.C:
		return Message{}, false
	}
}

// Close implements Transport (no-op for channel nodes).
func (n *ChanNode) Close() error { return nil }
