package p2p

import (
	"math"
	"sync"
	"testing"
	"time"
)

// runSegmented executes one segmented-gossip round on all peers
// concurrently and returns each peer's updated vector.
func runSegmented(t *testing.T, peers []int, vecs map[int][]float64, opt SegmentedGossipOptions) map[int][]float64 {
	t.Helper()
	hub := NewChanHub()
	var wg sync.WaitGroup
	var mu sync.Mutex
	out := make(map[int][]float64)
	for _, id := range peers {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := SegmentedGossip(hub.Node(id), peers, 1, vecs[id], opt)
			if err != nil {
				t.Errorf("peer %d: %v", id, err)
				return
			}
			mu.Lock()
			out[id] = res
			mu.Unlock()
		}()
	}
	wg.Wait()
	return out
}

// spread measures the maximum pairwise L2 distance between vectors.
func spread(vecs map[int][]float64) float64 {
	worst := 0.0
	for a, va := range vecs {
		for b, vb := range vecs {
			if a >= b {
				continue
			}
			s := 0.0
			for i := range va {
				d := va[i] - vb[i]
				s += d * d
			}
			if d := math.Sqrt(s); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestSegmentedGossipContracts(t *testing.T) {
	peers := []int{0, 1, 2, 3}
	vecs := map[int][]float64{}
	for _, id := range peers {
		v := make([]float64, 16)
		for i := range v {
			v[i] = float64(id * 10)
		}
		vecs[id] = v
	}
	before := spread(vecs)
	opt := DefaultSegmentedGossipOptions()
	opt.Window = 300 * time.Millisecond
	opt.Replicas = 3 // full fan-out for a deterministic-ish contraction
	after := runSegmented(t, peers, vecs, opt)
	if len(after) != 4 {
		t.Fatalf("%d peers finished", len(after))
	}
	if got := spread(after); got >= before {
		t.Fatalf("gossip did not contract the spread: %v → %v", before, got)
	}
}

func TestSegmentedGossipPreservesConsensus(t *testing.T) {
	// If everyone already agrees, gossip must not move the model.
	peers := []int{0, 1, 2}
	shared := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	vecs := map[int][]float64{}
	for _, id := range peers {
		vecs[id] = append([]float64(nil), shared...)
	}
	opt := DefaultSegmentedGossipOptions()
	opt.Window = 200 * time.Millisecond
	after := runSegmented(t, peers, vecs, opt)
	for id, v := range after {
		for i := range shared {
			if math.Abs(v[i]-shared[i]) > 1e-9 {
				t.Fatalf("peer %d drifted at %d: %v", id, i, v[i])
			}
		}
	}
}

func TestSegmentedGossipSinglePeer(t *testing.T) {
	hub := NewChanHub()
	v := []float64{1, 2, 3}
	out, err := SegmentedGossip(hub.Node(7), []int{7}, 1, v, DefaultSegmentedGossipOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if out[i] != v[i] {
			t.Fatal("single peer must keep its vector")
		}
	}
}

func TestSegmentedGossipValidation(t *testing.T) {
	hub := NewChanHub()
	opt := DefaultSegmentedGossipOptions()
	opt.Segments = 0
	if _, err := SegmentedGossip(hub.Node(0), []int{0, 1}, 1, []float64{1}, opt); err == nil {
		t.Fatal("segments=0 accepted")
	}
}

func TestSegmentedGossipReplicasClamped(t *testing.T) {
	// Replicas beyond the peer count are clamped, not an error.
	peers := []int{0, 1}
	vecs := map[int][]float64{0: {0, 0}, 1: {10, 10}}
	opt := DefaultSegmentedGossipOptions()
	opt.Segments = 2
	opt.Replicas = 99
	opt.Window = 200 * time.Millisecond
	after := runSegmented(t, peers, vecs, opt)
	// With full exchange both peers average to 5.
	for id, v := range after {
		for i := range v {
			if math.Abs(v[i]-5) > 1e-9 {
				t.Fatalf("peer %d got %v, want [5 5]", id, v)
			}
		}
	}
}
