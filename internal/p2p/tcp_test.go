package p2p

import (
	"math"
	"sync"
	"testing"
	"time"
)

func newTCPPair(t *testing.T) (*TCPNode, *TCPNode) {
	t.Helper()
	a, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP(2, "127.0.0.1:0")
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	a.AddPeer(2, b.Addr())
	b.AddPeer(1, a.Addr())
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestTCPSendRecv(t *testing.T) {
	a, b := newTCPPair(t)
	msg := Message{Kind: KindParams, To: 2, Round: 3, Version: 1.5, Payload: []float64{1, 2, 3}}
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, ok := b.Recv(2 * time.Second)
	if !ok {
		t.Fatal("no message received")
	}
	if got.From != 1 || got.Round != 3 || got.Version != 1.5 || len(got.Payload) != 3 {
		t.Fatalf("got %+v", got)
	}
}

func TestTCPBidirectional(t *testing.T) {
	a, b := newTCPPair(t)
	if err := a.Send(Message{Kind: KindHeartbeat, To: 2}); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Recv(2 * time.Second); !ok {
		t.Fatal("b did not receive")
	}
	if err := b.Send(Message{Kind: KindAck, To: 1}); err != nil {
		t.Fatal(err)
	}
	if m, ok := a.Recv(2 * time.Second); !ok || m.Kind != KindAck {
		t.Fatal("a did not receive ack")
	}
}

func TestTCPRecvTimeout(t *testing.T) {
	a, _ := newTCPPair(t)
	start := time.Now()
	_, ok := a.Recv(50 * time.Millisecond)
	if ok {
		t.Fatal("unexpected message")
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("timeout returned too early")
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, _ := newTCPPair(t)
	if err := a.Send(Message{To: 99}); err == nil {
		t.Fatal("unknown peer must error")
	}
}

func TestTCPManyMessagesInOrder(t *testing.T) {
	a, b := newTCPPair(t)
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(Message{Kind: KindParams, To: 2, Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		m, ok := b.Recv(2 * time.Second)
		if !ok {
			t.Fatalf("missing message %d", i)
		}
		if m.Round != i {
			t.Fatalf("out of order: got %d want %d", m.Round, i)
		}
	}
}

func TestTCPLargePayload(t *testing.T) {
	a, b := newTCPPair(t)
	payload := make([]float64, 100000)
	for i := range payload {
		payload[i] = float64(i)
	}
	if err := a.Send(Message{Kind: KindParams, To: 2, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	m, ok := b.Recv(5 * time.Second)
	if !ok || len(m.Payload) != len(payload) {
		t.Fatalf("large payload: ok=%v len=%d", ok, len(m.Payload))
	}
	if m.Payload[99999] != 99999 {
		t.Fatal("payload corrupted")
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close errored: %v", err)
	}
}

func TestTCPRingAllReduce(t *testing.T) {
	// Full ring all-reduce over real sockets on localhost.
	const n = 3
	nodes := make([]*TCPNode, n)
	ring := make([]int, n)
	for i := 0; i < n; i++ {
		node, err := ListenTCP(i, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		ring[i] = i
		defer node.Close()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				nodes[i].AddPeer(j, nodes[j].Addr())
			}
		}
	}
	vecs := [][]float64{{1, 2, 3, 4}, {10, 20, 30, 40}, {100, 200, 300, 400}}
	want := []float64{111, 222, 333, 444}
	var wg sync.WaitGroup
	var mu sync.Mutex
	results := make(map[int][]float64)
	opt := RingOptions{DataTimeout: 2 * time.Second, HandshakeTimeout: time.Second, MaxReforms: 2}
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _, err := RingAllReduce(nodes[i], ring, 1, vecs[i], opt)
			if err != nil {
				t.Errorf("node %d: %v", i, err)
				return
			}
			mu.Lock()
			results[i] = res
			mu.Unlock()
		}()
	}
	wg.Wait()
	for id, res := range results {
		for i := range want {
			if math.Abs(res[i]-want[i]) > 1e-9 {
				t.Fatalf("node %d: %v", id, res)
			}
		}
	}
}
