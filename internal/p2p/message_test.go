package p2p

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMessageRoundTrip(t *testing.T) {
	m := Message{
		Kind: KindParams, From: 3, To: 7, Round: 42, Chunk: 2, Meta: -1,
		Version: 13.5, Payload: []float64{1.5, -2.25, math.Pi},
	}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != m.Kind || got.From != m.From || got.To != m.To ||
		got.Round != m.Round || got.Chunk != m.Chunk || got.Meta != m.Meta ||
		got.Version != m.Version {
		t.Fatalf("header mismatch: %+v vs %+v", got, m)
	}
	for i := range m.Payload {
		if got.Payload[i] != m.Payload[i] {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
}

func TestMessageEmptyPayload(t *testing.T) {
	m := Message{Kind: KindHeartbeat, From: 1, To: 2}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 {
		t.Fatalf("payload %v", got.Payload)
	}
}

func TestUnmarshalRejectsTruncated(t *testing.T) {
	m := Message{Kind: KindParams, Payload: []float64{1, 2, 3}}
	buf := m.Marshal()
	for _, cut := range []int{0, 5, headerBytes - 1, len(buf) - 1} {
		if _, err := Unmarshal(buf[:cut]); err == nil {
			t.Errorf("truncation to %d bytes did not error", cut)
		}
	}
	// Extra bytes also rejected.
	if _, err := Unmarshal(append(buf, 0)); err == nil {
		t.Error("trailing garbage did not error")
	}
}

func TestWireSizeMatchesMarshal(t *testing.T) {
	m := Message{Kind: KindParams, Payload: make([]float64, 17)}
	if m.WireSize() != len(m.Marshal()) {
		t.Fatalf("WireSize %d vs Marshal %d", m.WireSize(), len(m.Marshal()))
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindParams, KindGradient, KindBroadcast, KindHeartbeat,
		KindHandshake, KindAck, KindWarning, KindReform, KindReport, KindConfig, Kind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("empty String for kind %d", k)
		}
	}
}

// Property: Marshal/Unmarshal is the identity for random messages,
// including negative ints and special floats.
func TestPropertyMessageRoundTrip(t *testing.T) {
	f := func(seed int64, kRaw uint8, from, to, round, chunk, meta int32, version float64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		if math.IsNaN(version) {
			version = 0
		}
		m := Message{
			Kind: Kind(kRaw%10 + 1), From: int(from), To: int(to),
			Round: int(round), Chunk: int(chunk), Meta: int(meta), Version: version,
			Payload: make([]float64, int(nRaw%64)),
		}
		for i := range m.Payload {
			m.Payload[i] = rng.NormFloat64() * 1e6
		}
		got, err := Unmarshal(m.Marshal())
		if err != nil {
			return false
		}
		if got.Kind != m.Kind || got.From != m.From || got.To != m.To ||
			got.Round != m.Round || got.Chunk != m.Chunk || got.Meta != m.Meta ||
			got.Version != m.Version || len(got.Payload) != len(m.Payload) {
			return false
		}
		for i := range m.Payload {
			if got.Payload[i] != m.Payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
