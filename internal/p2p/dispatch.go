package p2p

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Dispatch frames: the serve layer's remote-execution plane rides on
// the same Transport and Message codec as the training data plane, so
// every existing transport (ChanHub for in-process simulated networks,
// TCPNode for real deployments) carries dispatch traffic unchanged.
//
// A dispatch frame is a Message whose Kind is one of the KindDispatch*
// values and whose opaque body (JSON at the protocol layer above) is
// byte-packed into the float64 Payload:
//
//	Version — DispatchVersion (protocol major version; receivers
//	          reject mismatches rather than guessing at layouts)
//	Round   — the dispatcher-assigned sequence number identifying the
//	          in-flight run the frame belongs to
//	Meta    — exact body length in bytes (the payload rounds up to
//	          whole float64 words)
//	Payload — ceil(Meta/8) words holding the body little-endian
//
// DispatchBody is the single validating decoder: malformed, truncated
// or oversized frames return errors, never panic — the fuzz targets in
// fuzz_test.go pin that contract.

// DispatchVersion is the dispatch protocol version stamped on every
// frame. Bump it on any incompatible body or layout change; receivers
// reject other versions with ErrDispatchVersion.
const DispatchVersion = 1

// MaxDispatchBody bounds the body of a single dispatch frame (16 MiB).
// It is a per-frame (equivalently per-chunk) bound, not a ceiling on a
// logical body: result bodies routinely run to several megabytes (the
// reference tiny job in BENCH_dispatch.json ships ≈5.5 MB of JSON), and
// bodies larger than one frame travel as a chunk stream (see chunk.go),
// so model size is not capped here. The bound exists so a corrupt
// length field in any one frame cannot demand an absurd allocation.
const MaxDispatchBody = 16 << 20

// ErrDispatchVersion reports a frame from an incompatible protocol
// version.
var ErrDispatchVersion = fmt.Errorf("p2p: dispatch protocol version mismatch (want %d)", DispatchVersion)

// IsDispatchKind reports whether k belongs to the dispatch plane.
func IsDispatchKind(k Kind) bool {
	switch k {
	case KindDispatchHello, KindDispatchRequest, KindDispatchRound,
		KindDispatchResult, KindDispatchError, KindDispatchCancel,
		KindDispatchChunk:
		return true
	}
	return false
}

// PackBytes encodes an opaque byte body into float64 words (8 bytes per
// word, little-endian, zero-padded tail). The exact byte length must
// travel separately (dispatch frames use Meta).
func PackBytes(b []byte) []float64 {
	return PackBytesInto(nil, b)
}

// PackBytesInto is PackBytes with a caller-owned destination: dst is
// resized (reallocating only when capacity is short) and filled, so a
// sender encoding many bodies can reuse one word buffer instead of
// allocating per frame. The returned slice aliases dst when it fits —
// callers must not reuse the buffer until the frame built from it has
// been fully handed off (transports share payload slices with
// receivers; SplitChunks sidesteps this by packing a stream's whole
// body once and sub-slicing per chunk).
func PackBytesInto(dst []float64, b []byte) []float64 {
	n := (len(b) + 7) / 8
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
	}
	full := len(b) / 8
	for i := 0; i < full; i++ {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	if full < n {
		var tail [8]byte
		copy(tail[:], b[full*8:])
		dst[full] = math.Float64frombits(binary.LittleEndian.Uint64(tail[:]))
	}
	return dst
}

// UnpackBytes reverses PackBytes: it extracts n bytes from the word
// payload, rejecting lengths that do not fit the payload exactly
// (padding beyond the final word would mean a torn or forged frame).
func UnpackBytes(payload []float64, n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("p2p: negative dispatch body length %d", n)
	}
	if n > MaxDispatchBody {
		return nil, fmt.Errorf("p2p: dispatch body %d bytes exceeds cap %d", n, MaxDispatchBody)
	}
	if want := (n + 7) / 8; want != len(payload) {
		return nil, fmt.Errorf("p2p: dispatch body %d bytes needs %d payload words, frame has %d", n, want, len(payload))
	}
	out := make([]byte, len(payload)*8)
	for i, w := range payload {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(w))
	}
	return out[:n], nil
}

// NewDispatchFrame builds a dispatch-plane message: kind must be a
// KindDispatch* value, seq identifies the in-flight run, and body is
// the opaque protocol payload (the sender's transport fills From).
func NewDispatchFrame(kind Kind, to, seq int, body []byte) (Message, error) {
	if !IsDispatchKind(kind) {
		return Message{}, fmt.Errorf("p2p: %v is not a dispatch kind", kind)
	}
	if len(body) > MaxDispatchBody {
		return Message{}, fmt.Errorf("p2p: dispatch body %d bytes exceeds cap %d", len(body), MaxDispatchBody)
	}
	return Message{
		Kind:    kind,
		To:      to,
		Round:   seq,
		Meta:    len(body),
		Version: DispatchVersion,
		Payload: PackBytes(body),
	}, nil
}

// DispatchBody validates a dispatch frame and returns its body bytes.
// It errors on non-dispatch kinds, protocol version mismatches and any
// Meta/Payload inconsistency; it never panics, whatever the frame
// contents (fuzzed in fuzz_test.go).
func DispatchBody(m Message) ([]byte, error) {
	if !IsDispatchKind(m.Kind) {
		return nil, fmt.Errorf("p2p: %v is not a dispatch kind", m.Kind)
	}
	if m.Version != DispatchVersion {
		return nil, fmt.Errorf("%w, frame has %v", ErrDispatchVersion, m.Version)
	}
	return UnpackBytes(m.Payload, m.Meta)
}
