package p2p

import (
	"fmt"
	"math/rand"

	"hadfl/internal/simclock"
)

// Link models one directed connection's latency and bandwidth.
type Link struct {
	Latency   float64 // seconds added to every message
	Bandwidth float64 // bytes/second; 0 = infinite
}

// TransferTime returns how long a message of size bytes occupies the link.
func (l Link) TransferTime(bytes int) float64 {
	t := l.Latency
	if l.Bandwidth > 0 {
		t += float64(bytes) / l.Bandwidth
	}
	return t
}

// SimNet is a deterministic simulated network driven by a simclock
// engine. Nodes register handlers; Send schedules delivery events after
// the link's latency + transfer time. It models crashes (messages to or
// from a crashed node vanish), random loss, and partitions, and accounts
// every byte sent per node — the basis of the communication-volume
// experiment.
type SimNet struct {
	Engine *simclock.Engine

	DefaultLink Link
	DropRate    float64 // probability a message is silently lost
	rng         *rand.Rand

	handlers  map[int]func(Message)
	links     map[[2]int]Link
	down      map[int]bool
	partition map[[2]int]bool // blocked directed pairs

	bytesSent map[int]int64
	msgsSent  map[int]int64
	total     int64
}

// NewSimNet creates a network on the given engine. rng drives message
// loss; pass a seeded source for reproducibility.
func NewSimNet(engine *simclock.Engine, defaultLink Link, rng *rand.Rand) *SimNet {
	if engine == nil {
		panic("p2p: SimNet needs an engine")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(0))
	}
	return &SimNet{
		Engine:      engine,
		DefaultLink: defaultLink,
		rng:         rng,
		handlers:    make(map[int]func(Message)),
		links:       make(map[[2]int]Link),
		down:        make(map[int]bool),
		partition:   make(map[[2]int]bool),
		bytesSent:   make(map[int]int64),
		msgsSent:    make(map[int]int64),
	}
}

// Register installs the delivery handler for node id, replacing any
// previous handler.
func (n *SimNet) Register(id int, h func(Message)) {
	if h == nil {
		panic("p2p: nil handler")
	}
	n.handlers[id] = h
}

// SetLink overrides the link parameters for the directed pair from→to.
func (n *SimNet) SetLink(from, to int, l Link) {
	n.links[[2]int{from, to}] = l
}

// linkFor returns the effective link for a pair.
func (n *SimNet) linkFor(from, to int) Link {
	if l, ok := n.links[[2]int{from, to}]; ok {
		return l
	}
	return n.DefaultLink
}

// Crash marks a node as failed: it neither sends nor receives until
// Recover. In-flight messages to it are dropped at delivery time.
func (n *SimNet) Crash(id int) { n.down[id] = true }

// Recover brings a crashed node back.
func (n *SimNet) Recover(id int) { delete(n.down, id) }

// IsDown reports whether a node is crashed.
func (n *SimNet) IsDown(id int) bool { return n.down[id] }

// Partition blocks the directed pair from→to (both directions require
// two calls). Heal removes the block.
func (n *SimNet) Partition(from, to int) { n.partition[[2]int{from, to}] = true }

// Heal unblocks a previously partitioned directed pair.
func (n *SimNet) Heal(from, to int) { delete(n.partition, [2]int{from, to}) }

// Send schedules delivery of m from its From node to its To node. The
// send is charged to the sender's accounting even if the message is later
// lost (bytes leave the NIC either way). Sending from a crashed node is
// a silent no-op (the node is gone).
func (n *SimNet) Send(m Message) {
	if n.down[m.From] {
		return
	}
	size := m.WireSize()
	n.bytesSent[m.From] += int64(size)
	n.msgsSent[m.From]++
	n.total += int64(size)
	if n.partition[[2]int{m.From, m.To}] {
		return
	}
	if n.DropRate > 0 && n.rng.Float64() < n.DropRate {
		return
	}
	delay := n.linkFor(m.From, m.To).TransferTime(size)
	n.Engine.Schedule(simclock.Time(delay), func() {
		if n.down[m.To] {
			return
		}
		h, ok := n.handlers[m.To]
		if !ok {
			panic(fmt.Sprintf("p2p: no handler registered for node %d", m.To))
		}
		h(m)
	})
}

// BytesSent returns the bytes node id has sent so far.
func (n *SimNet) BytesSent(id int) int64 { return n.bytesSent[id] }

// MessagesSent returns the message count node id has sent so far.
func (n *SimNet) MessagesSent(id int) int64 { return n.msgsSent[id] }

// TotalBytes returns bytes sent across all nodes.
func (n *SimNet) TotalBytes() int64 { return n.total }

// ResetAccounting zeroes all byte/message counters.
func (n *SimNet) ResetAccounting() {
	n.bytesSent = make(map[int]int64)
	n.msgsSent = make(map[int]int64)
	n.total = 0
}

// CommModel provides the analytic communication-time formulas the
// simulation engine charges for collective operations. They follow the
// standard α–β cost model on a ring.
type CommModel struct {
	Link Link
}

// RingAllReduceTime returns the duration of a Horovod-style ring
// all-reduce of vecBytes bytes across n nodes: 2(n−1) steps, each moving
// vecBytes/n per node.
func (c CommModel) RingAllReduceTime(n, vecBytes int) float64 {
	if n <= 1 {
		return 0
	}
	chunk := vecBytes / n
	if chunk < 1 {
		chunk = 1
	}
	per := c.Link.TransferTime(chunk + headerBytes)
	return float64(2*(n-1)) * per
}

// BroadcastTime returns the duration for one node to send vecBytes to
// each of targets receivers sequentially (the paper's non-blocking
// broadcast overlaps with compute on the receiving side, but the sender
// still serializes onto its NIC).
func (c CommModel) BroadcastTime(targets, vecBytes int) float64 {
	if targets <= 0 {
		return 0
	}
	return float64(targets) * c.Link.TransferTime(vecBytes+headerBytes)
}
