package p2p

import (
	"math"
	"math/rand"
	"testing"
)

func testVec(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestParamCodecRegistry(t *testing.T) {
	names := ParamCodecNames()
	if len(names) < 4 || names[0] != ParamCodecRaw64 {
		t.Fatalf("builtin codecs missing or reordered: %v", names)
	}
	for _, name := range []string{ParamCodecRaw64, ParamCodecF32, ParamCodecDelta, ParamCodecTopK} {
		if _, ok := ParamCodecByName(name); !ok {
			t.Fatalf("codec %q not registered", name)
		}
	}
	if _, ok := ParamCodecByName("nope"); ok {
		t.Fatal("unknown codec resolved")
	}
	if err := RegisterParamCodec(raw64Codec{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

// TestParamCodecRoundTrips drives every registered codec over vectors
// with and without a reference: exact codecs must reproduce the input
// bit for bit, lossy ones must stay within their documented error.
func TestParamCodecRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	params := testVec(1000, rng)
	ref := make([]float64, len(params))
	for i := range ref {
		// A reference the params moved slightly away from, like a
		// trained model vs its init.
		ref[i] = params[i] + rng.NormFloat64()*1e-3
	}
	for _, name := range ParamCodecNames() {
		codec, _ := ParamCodecByName(name)
		for _, r := range [][]float64{nil, ref} {
			data, exact := codec.Encode(params, r)
			got, err := codec.Decode(data, r, len(params))
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if len(got) != len(params) {
				t.Fatalf("%s: %d params decoded, want %d", name, len(got), len(params))
			}
			if exact {
				for i := range got {
					if math.Float64bits(got[i]) != math.Float64bits(params[i]) {
						t.Fatalf("%s: claims exact but [%d] %v != %v", name, i, got[i], params[i])
					}
				}
			}
			switch name {
			case ParamCodecRaw64, ParamCodecDelta:
				if !exact {
					t.Fatalf("%s: must always be exact", name)
				}
			case ParamCodecF32:
				for i := range got {
					if drift := math.Abs(got[i] - params[i]); drift > math.Abs(params[i])*1e-6+1e-30 {
						t.Fatalf("f32: [%d] drifted %v", i, drift)
					}
				}
			}
		}
	}
}

// TestParamCodecDeltaCompresses pins the delta codec's reason to exist:
// encoding a vector against a nearby reference must beat raw64.
func TestParamCodecDeltaCompresses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := testVec(4096, rng)
	params := make([]float64, len(ref))
	copy(params, ref)
	// Perturb 5% of the values, as a lightly-trained model would be.
	for i := 0; i < len(params)/20; i++ {
		params[rng.Intn(len(params))] += rng.NormFloat64() * 1e-2
	}
	codec, _ := ParamCodecByName(ParamCodecDelta)
	data, exact := codec.Encode(params, ref)
	if !exact {
		t.Fatal("delta must be exact")
	}
	if len(data) >= 8*len(params)/2 {
		t.Fatalf("delta vs a near reference: %d bytes, want well under half of raw %d", len(data), 8*len(params))
	}
	got, err := codec.Decode(data, ref, len(params))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(params[i]) {
			t.Fatalf("[%d] %v != %v", i, got[i], params[i])
		}
	}
}

// TestParamCodecTopKExactnessBit: a vector that only moved in a few
// coordinates encodes exactly (bit set, decode bit-identical); a dense
// move encodes lossily (bit clear) with untouched coordinates decoding
// to the reference.
func TestParamCodecTopKExactnessBit(t *testing.T) {
	codec, _ := ParamCodecByName(ParamCodecTopK)
	n := 100
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = float64(i)
	}
	sparse := append([]float64(nil), ref...)
	sparse[3] += 10
	sparse[97] -= 4
	data, exact := codec.Encode(sparse, ref)
	if !exact {
		t.Fatal("2 moved values within top-10% of 100 must be exact")
	}
	if data[0]&topkFlagExact == 0 {
		t.Fatal("exactness bit not set in the section header")
	}
	got, err := codec.Decode(data, ref, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != sparse[i] {
			t.Fatalf("[%d] %v != %v", i, got[i], sparse[i])
		}
	}

	dense := make([]float64, n)
	for i := range dense {
		dense[i] = ref[i] + 0.5 + float64(i%7)
	}
	data, exact = codec.Encode(dense, ref)
	if exact || data[0]&topkFlagExact != 0 {
		t.Fatal("dense move claimed exactness")
	}
	got, err = codec.Decode(data, ref, n)
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for i := range got {
		if got[i] == dense[i] {
			kept++
		} else if got[i] != ref[i] {
			t.Fatalf("[%d] decoded %v, want the kept value %v or the reference %v", i, got[i], dense[i], ref[i])
		}
	}
	if want := n / 10; kept < want {
		t.Fatalf("only %d values survived top-k, want at least %d", kept, want)
	}
}

// TestParamCodecDecodeRejects: malformed sections and forged counts
// come back as errors, never panics or absurd allocations.
func TestParamCodecDecodeRejects(t *testing.T) {
	for _, name := range ParamCodecNames() {
		codec, _ := ParamCodecByName(name)
		if _, err := codec.Decode([]byte{1, 2, 3}, nil, 1000); err == nil {
			t.Errorf("%s: truncated section accepted", name)
		}
		if _, err := codec.Decode(nil, nil, -1); err == nil {
			t.Errorf("%s: negative count accepted", name)
		}
		if _, err := codec.Decode(nil, nil, maxParamCount+1); err == nil {
			t.Errorf("%s: forged count past the stream cap accepted", name)
		}
	}
	topk, _ := ParamCodecByName(ParamCodecTopK)
	// k claims more entries than the section carries.
	bad := make([]byte, 5+12)
	bad[1] = 200
	if _, err := topk.Decode(bad, nil, 300); err == nil {
		t.Error("topk: k/length mismatch accepted")
	}
	// An index outside the vector.
	good, _ := topk.Encode([]float64{1, 2, 3}, nil)
	if _, err := topk.Decode(good, nil, 1); err == nil {
		t.Error("topk: k larger than count accepted")
	}
}
