package p2p

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// reassemble routes a SplitChunks frame sequence through a ChunkStream
// the way a receiver would: chunks through Add, the terminal through
// Finish (or DispatchBody when the stream is monolithic).
func reassemble(t *testing.T, frames []Message) []byte {
	t.Helper()
	var s ChunkStream
	for _, m := range frames[:len(frames)-1] {
		if err := s.Add(m); err != nil {
			t.Fatalf("Add chunk %d: %v", m.Chunk, err)
		}
	}
	term := frames[len(frames)-1]
	if term.Chunk == 0 {
		body, err := DispatchBody(term)
		if err != nil {
			t.Fatalf("monolithic body: %v", err)
		}
		return body
	}
	body, err := s.Finish(term)
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return body
}

func TestSplitChunksRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 11, DispatchChunkBytes, DispatchChunkBytes + 1,
		2*DispatchChunkBytes + 12345} {
		body := make([]byte, n)
		rng.Read(body)
		frames, err := SplitChunks(KindDispatchResult, 3, 7, body)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		wantChunks := ChunkCount(n)
		if len(frames) != wantChunks+1 && !(wantChunks == 0 && len(frames) == 1) {
			t.Fatalf("n=%d: %d frames, want %d chunks + terminal", n, len(frames), wantChunks)
		}
		for _, m := range frames {
			if m.Round != 7 || m.To != 3 {
				t.Fatalf("n=%d: frame routing fields %+v", n, m)
			}
			if len(m.Payload)*8 > MaxDispatchBody+8 {
				t.Fatalf("n=%d: frame payload breaches per-chunk bound", n)
			}
		}
		if got := reassemble(t, frames); !bytes.Equal(got, body) {
			t.Fatalf("n=%d: reassembled body differs", n)
		}
	}
}

func TestSplitChunksSingleAllocation(t *testing.T) {
	body := make([]byte, 3*DispatchChunkBytes/2)
	frames, err := SplitChunks(KindDispatchResult, 1, 1, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 { // 2 chunks + terminal
		t.Fatalf("%d frames, want 3", len(frames))
	}
	// Both chunks' payloads must share one backing array — the
	// one-buffer-per-stream contract.
	a, b := frames[0].Payload, frames[1].Payload
	if &a[:cap(a)][cap(a)-1] != &b[len(b)-1] {
		t.Fatal("chunk payloads do not share a backing array")
	}
}

func TestChunkStreamRejectsCorruption(t *testing.T) {
	body := make([]byte, DispatchChunkBytes+100)
	for i := range body {
		body[i] = byte(i)
	}
	fresh := func() []Message {
		frames, err := SplitChunks(KindDispatchError, 1, 5, body)
		if err != nil {
			t.Fatal(err)
		}
		return frames
	}

	t.Run("out of order", func(t *testing.T) {
		frames := fresh()
		var s ChunkStream
		if err := s.Add(frames[1]); err == nil || !strings.Contains(err.Error(), "out of order") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("wrong count", func(t *testing.T) {
		frames := fresh()
		var s ChunkStream
		if err := s.Add(frames[0]); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Finish(frames[2]); err == nil {
			t.Fatal("terminal accepted with a missing chunk")
		}
	})
	t.Run("flipped byte", func(t *testing.T) {
		frames := fresh()
		var s ChunkStream
		corrupt := frames[0]
		words := append([]float64(nil), corrupt.Payload...)
		words[0] = 0
		corrupt.Payload = words
		if err := s.Add(corrupt); err != nil {
			t.Fatal(err) // per-chunk framing is still valid
		}
		if err := s.Add(frames[1]); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Finish(frames[2]); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("corrupted stream passed Finish: %v", err)
		}
	})
	t.Run("monolithic terminal never finishes", func(t *testing.T) {
		var s ChunkStream
		m, err := NewDispatchFrame(KindDispatchResult, 1, 5, make([]byte, chunkTrailerLen))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Finish(m); err == nil {
			t.Fatal("Chunk=0 terminal accepted as a stream trailer")
		}
	})
}

func TestSplitChunksRejectsOversizedStream(t *testing.T) {
	// Fabricate the length without allocating a gigabyte: SplitChunks
	// checks len(body) first.
	defer func() {
		if recover() != nil {
			t.Fatal("oversized body panicked")
		}
	}()
	if _, err := SplitChunks(KindDispatchResult, 1, 1, make([]byte, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := SplitChunks(KindDispatchChunk, 1, 1, []byte("x")); err == nil {
		t.Fatal("chunk kind accepted as stream terminal")
	}
}

func TestPackBytesIntoReusesBuffer(t *testing.T) {
	buf := make([]float64, 16)
	a := PackBytesInto(buf, []byte("hello world, packed tight"))
	if &a[0] != &buf[0] {
		t.Fatal("PackBytesInto reallocated despite sufficient capacity")
	}
	if got := PackBytes([]byte("hello world, packed tight")); len(got) != len(a) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(got))
	}
	for i := range a {
		if a[i] != PackBytes([]byte("hello world, packed tight"))[i] {
			t.Fatal("PackBytesInto and PackBytes disagree")
		}
	}
	// Growth path: short capacity must still produce a correct packing.
	b := PackBytesInto(make([]float64, 0, 1), bytes.Repeat([]byte{7}, 100))
	out, err := UnpackBytes(b, 100)
	if err != nil || !bytes.Equal(out, bytes.Repeat([]byte{7}, 100)) {
		t.Fatalf("grown packing round trip: %v", err)
	}
}
