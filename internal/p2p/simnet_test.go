package p2p

import (
	"math"
	"math/rand"
	"testing"

	"hadfl/internal/simclock"
)

func newTestNet(link Link) (*simclock.Engine, *SimNet) {
	e := simclock.New()
	return e, NewSimNet(e, link, rand.New(rand.NewSource(1)))
}

func TestSimNetDelivery(t *testing.T) {
	e, net := newTestNet(Link{Latency: 0.5})
	var got []Message
	net.Register(2, func(m Message) { got = append(got, m) })
	net.Send(Message{Kind: KindParams, From: 1, To: 2, Payload: []float64{7}})
	if len(got) != 0 {
		t.Fatal("delivered before latency elapsed")
	}
	e.Run(0)
	if len(got) != 1 || got[0].Payload[0] != 7 {
		t.Fatalf("got %v", got)
	}
	if e.Now() != 0.5 {
		t.Fatalf("delivery time %v, want 0.5", e.Now())
	}
}

func TestSimNetBandwidthDelay(t *testing.T) {
	e, net := newTestNet(Link{Latency: 1, Bandwidth: 800}) // 100 float64/s
	net.Register(2, func(m Message) {})
	m := Message{Kind: KindParams, From: 1, To: 2, Payload: make([]float64, 100)}
	net.Send(m)
	e.Run(0)
	want := 1 + float64(m.WireSize())/800
	if math.Abs(float64(e.Now())-want) > 1e-9 {
		t.Fatalf("delivery at %v, want %v", e.Now(), want)
	}
}

func TestSimNetCrash(t *testing.T) {
	e, net := newTestNet(Link{})
	delivered := 0
	net.Register(2, func(m Message) { delivered++ })
	net.Crash(2)
	net.Send(Message{From: 1, To: 2})
	e.Run(0)
	if delivered != 0 {
		t.Fatal("crashed node received a message")
	}
	// Crashed sender emits nothing (count stays at the one charged above).
	before := net.MessagesSent(1)
	net.Crash(1)
	net.Send(Message{From: 1, To: 2})
	if net.MessagesSent(1) != before {
		t.Fatal("crashed sender was charged a send")
	}
	// Recovery restores delivery.
	net.Recover(1)
	net.Recover(2)
	net.Send(Message{From: 1, To: 2})
	e.Run(0)
	if delivered != 1 {
		t.Fatalf("delivered %d after recovery", delivered)
	}
	if net.IsDown(1) || net.IsDown(2) {
		t.Fatal("IsDown after Recover")
	}
}

func TestSimNetCrashDropsInFlight(t *testing.T) {
	e, net := newTestNet(Link{Latency: 1})
	delivered := 0
	net.Register(2, func(m Message) { delivered++ })
	net.Send(Message{From: 1, To: 2})
	// Crash after the send but before delivery.
	e.Schedule(0.5, func() { net.Crash(2) })
	e.Run(0)
	if delivered != 0 {
		t.Fatal("in-flight message delivered to node that crashed first")
	}
}

func TestSimNetPartition(t *testing.T) {
	e, net := newTestNet(Link{})
	delivered := 0
	net.Register(2, func(m Message) { delivered++ })
	net.Partition(1, 2)
	net.Send(Message{From: 1, To: 2})
	e.Run(0)
	if delivered != 0 {
		t.Fatal("partitioned message delivered")
	}
	net.Heal(1, 2)
	net.Send(Message{From: 1, To: 2})
	e.Run(0)
	if delivered != 1 {
		t.Fatal("healed partition did not deliver")
	}
}

func TestSimNetDropRate(t *testing.T) {
	e, net := newTestNet(Link{})
	net.DropRate = 1.0
	delivered := 0
	net.Register(2, func(m Message) { delivered++ })
	for i := 0; i < 10; i++ {
		net.Send(Message{From: 1, To: 2})
	}
	e.Run(0)
	if delivered != 0 {
		t.Fatalf("DropRate=1 delivered %d", delivered)
	}
	// Accounting still charges the sender.
	if net.MessagesSent(1) != 10 {
		t.Fatalf("sender charged %d sends", net.MessagesSent(1))
	}
}

func TestSimNetAccounting(t *testing.T) {
	e, net := newTestNet(Link{})
	net.Register(2, func(m Message) {})
	m := Message{From: 1, To: 2, Payload: make([]float64, 10)}
	net.Send(m)
	net.Send(m)
	e.Run(0)
	want := int64(2 * m.WireSize())
	if net.BytesSent(1) != want || net.TotalBytes() != want {
		t.Fatalf("bytes %d total %d, want %d", net.BytesSent(1), net.TotalBytes(), want)
	}
	net.ResetAccounting()
	if net.TotalBytes() != 0 || net.BytesSent(1) != 0 {
		t.Fatal("ResetAccounting did not clear")
	}
}

func TestSimNetPerLinkOverride(t *testing.T) {
	e, net := newTestNet(Link{Latency: 10})
	net.SetLink(1, 2, Link{Latency: 0.1})
	net.Register(2, func(m Message) {})
	net.Send(Message{From: 1, To: 2})
	e.Run(0)
	if math.Abs(float64(e.Now())-0.1) > 1e-9 {
		t.Fatalf("override link latency not applied: %v", e.Now())
	}
}

func TestSimNetUnregisteredPanics(t *testing.T) {
	e, net := newTestNet(Link{})
	net.Send(Message{From: 1, To: 99})
	defer func() {
		if recover() == nil {
			t.Fatal("delivery to unregistered node did not panic")
		}
	}()
	e.Run(0)
}

func TestCommModel(t *testing.T) {
	c := CommModel{Link: Link{Latency: 0.01, Bandwidth: 1e6}}
	// Single node: free.
	if c.RingAllReduceTime(1, 1000) != 0 {
		t.Fatal("n=1 all-reduce should cost 0")
	}
	// More nodes → more steps but smaller chunks; time grows roughly with
	// the latency term.
	t4 := c.RingAllReduceTime(4, 80000)
	t2 := c.RingAllReduceTime(2, 80000)
	if t4 <= 0 || t2 <= 0 {
		t.Fatal("non-positive all-reduce time")
	}
	// Broadcast scales with target count.
	b1 := c.BroadcastTime(1, 80000)
	b3 := c.BroadcastTime(3, 80000)
	if math.Abs(b3-3*b1) > 1e-9 {
		t.Fatalf("broadcast %v vs 3×%v", b3, b1)
	}
	if c.BroadcastTime(0, 1000) != 0 {
		t.Fatal("broadcast to nobody should cost 0")
	}
}
