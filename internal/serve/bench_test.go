package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hadfl"
	"hadfl/internal/metrics"
)

// benchServer builds a server with nDone completed jobs in its cache
// and returns it plus their IDs. The runner is instantaneous so the
// benchmarks measure the serving layer, not compute.
func benchServer(b *testing.B, nDone int) (*Server, []string) {
	b.Helper()
	srv, err := New(Config{
		Workers:    4,
		QueueDepth: 64,
		JobTimeout: time.Minute,
		Runner: func(_ context.Context, scheme string, _ hadfl.Options, _ func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
			series := &metrics.Series{Name: scheme}
			for i := 1; i <= 16; i++ {
				series.Add(metrics.Point{Epoch: float64(i), Time: float64(i), Loss: 1 / float64(i), Accuracy: 1 - 1/float64(i)})
			}
			return &hadfl.Result{Scheme: scheme, Accuracy: 0.9, Time: 100, Rounds: 16, Series: series}, nil
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	})
	ids := make([]string, 0, nDone)
	for i := 0; i < nDone; i++ {
		job, _, err := srv.Submit(hadfl.SchemeHADFL, hadfl.Options{Powers: []float64{2, 1}, TargetEpochs: 1, Seed: int64(1000 + i)})
		if err != nil {
			b.Fatal(err)
		}
		select {
		case <-job.Done():
		case <-time.After(10 * time.Second):
			b.Fatalf("job %d did not finish", i)
		}
		ids = append(ids, job.ID)
	}
	return srv, ids
}

// BenchmarkStatusGet measures steady-state GET /runs/{id} for a
// completed job — the poll hot path the pre-encoded response bytes
// serve.
func BenchmarkStatusGet(b *testing.B) {
	srv, ids := benchServer(b, 1)
	h := srv.Handler()
	path := "/runs/" + ids[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("HTTP %d", rec.Code)
		}
	}
}

// BenchmarkStatusGetCurve is the same poll with the full curve riding
// along (?curve=1) — the second pre-encoded variant.
func BenchmarkStatusGetCurve(b *testing.B) {
	srv, ids := benchServer(b, 1)
	h := srv.Handler()
	path := "/runs/" + ids[0] + "?curve=1"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("HTTP %d", rec.Code)
		}
	}
}

// BenchmarkCachedSubmit measures POST /runs resolving to a completed
// cached result — the cache-hit submission hot path.
func BenchmarkCachedSubmit(b *testing.B) {
	srv, _ := benchServer(b, 1)
	h := srv.Handler()
	body := `{"scheme":"hadfl","options":{"powers":[2,1],"targetEpochs":1,"seed":1000}}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/runs", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkStatusGetParallel is the poll path under GOMAXPROCS-way
// concurrency — the contention profile the sharded cache and atomic
// registry target.
func BenchmarkStatusGetParallel(b *testing.B) {
	srv, ids := benchServer(b, 16)
	h := srv.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var i int
		for pb.Next() {
			req := httptest.NewRequest(http.MethodGet, "/runs/"+ids[i%len(ids)], nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("HTTP %d", rec.Code)
			}
			i++
		}
	})
}

// BenchmarkCacheGetOrCreate measures the raw result-cache lookup under
// parallel load: all hits, the common steady state.
func BenchmarkCacheGetOrCreate(b *testing.B) {
	reg := metrics.NewRegistry()
	c := NewBoundedCache(reg, 1024)
	const nJobs = 256
	fps := make([]string, nJobs)
	for i := range fps {
		fps[i] = fmt.Sprintf("%064x", i)
		j, existing := c.GetOrCreate(fps[i], func() *Job { return newJob(fps[i], "bench", hadfl.Options{}) })
		if existing {
			b.Fatal("expected create")
		}
		j.finish(&hadfl.Result{Scheme: "bench"}, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var i int
		for pb.Next() {
			if _, existing := c.GetOrCreate(fps[i%nJobs], func() *Job { b.Fatal("unexpected create"); return nil }); !existing {
				b.Fatal("unexpected create")
			}
			i++
		}
	})
}

// BenchmarkTokenBucketAllow measures the limiter's admission check
// under parallel load, rate high enough that every call admits.
func BenchmarkTokenBucketAllow(b *testing.B) {
	tb := NewTokenBucket(1e9, 1<<30)
	var denied atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if !tb.Allow() {
				denied.Add(1)
			}
		}
	})
	if denied.Load() > 0 {
		b.Fatalf("%d denials at effectively unlimited rate", denied.Load())
	}
}
