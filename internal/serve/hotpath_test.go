package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hadfl"
	"hadfl/internal/metrics"
)

// doneTestJob returns a terminal StateDone job with a small curve.
func doneTestJob(id string) *Job {
	j := newJob(id, "hadfl", hadfl.Options{Powers: []float64{2, 1}, TargetEpochs: 1, Seed: 7})
	series := &metrics.Series{Name: "hadfl"}
	for i := 1; i <= 4; i++ {
		series.Add(metrics.Point{Epoch: float64(i), Time: float64(i), Loss: 1 / float64(i), Accuracy: 1 - 1/float64(i)})
	}
	j.finish(&hadfl.Result{Scheme: "hadfl", Accuracy: 0.9, Time: 10, Rounds: 4, Series: series}, nil)
	return j
}

// TestStatusBytesZeroAlloc pins the steady-state allocation contract of
// the pre-encoded terminal-status path: after the first encode, serving
// a completed job's status bytes — the GET /runs/{id} and cache-hit
// POST hot path — performs zero allocations per request. This is the
// named alloc-guard gate (make alloc-guard).
func TestStatusBytesZeroAlloc(t *testing.T) {
	srv, err := New(Config{Workers: 1, QueueDepth: 1, JobTimeout: time.Minute,
		Runner: func(context.Context, string, hadfl.Options, func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
			return &hadfl.Result{Scheme: "hadfl"}, nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	}()
	job := doneTestJob("aaaabbbbccccdddd")
	for _, withCurve := range []bool{false, true} {
		if _, ok := srv.statusBytes(job, withCurve); !ok { // warm the slot
			t.Fatalf("statusBytes(withCurve=%v) not ready for a done job", withCurve)
		}
		allocs := testing.AllocsPerRun(1000, func() {
			if _, ok := srv.statusBytes(job, withCurve); !ok {
				t.Fatal("statusBytes lost its encoding")
			}
		})
		if allocs != 0 {
			t.Errorf("statusBytes(withCurve=%v) = %v allocs/op, want 0", withCurve, allocs)
		}
	}
}

// TestStatusBytesMatchEncoder pins the wire-compatibility contract: the
// pre-encoded bytes are byte-identical to what the generic
// json.Encoder path would have produced for the same status, so
// enabling the fast path cannot change a single response byte.
func TestStatusBytesMatchEncoder(t *testing.T) {
	srv, err := New(Config{Workers: 1, QueueDepth: 1, JobTimeout: time.Minute,
		Runner: func(context.Context, string, hadfl.Options, func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
			return &hadfl.Result{Scheme: "hadfl"}, nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	}()
	job := doneTestJob("ffffeeeeddddcccc")
	for _, withCurve := range []bool{false, true} {
		data, ok := srv.statusBytes(job, withCurve)
		if !ok {
			t.Fatalf("statusBytes(withCurve=%v) not ready", withCurve)
		}
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(srv.status(job, CacheHit, withCurve)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, want.Bytes()) {
			t.Errorf("withCurve=%v: pre-encoded bytes diverge from json.Encoder output:\n got %q\nwant %q",
				withCurve, data, want.Bytes())
		}
	}
}

// TestStatusGetUsesPreEncodedBytes drives the full HTTP handler twice
// and checks both responses are identical and carry an exact
// Content-Length — the observable signature of the stored-bytes path.
func TestStatusGetUsesPreEncodedBytes(t *testing.T) {
	srv, err := New(Config{Workers: 1, QueueDepth: 4, JobTimeout: time.Minute,
		Runner: func(context.Context, string, hadfl.Options, func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
			return &hadfl.Result{Scheme: "hadfl", Accuracy: 0.5}, nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	}()
	job, _, err := srv.Submit("hadfl", hadfl.Options{Powers: []float64{2, 1}, TargetEpochs: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("job did not finish")
	}
	get := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/runs/"+job.ID, nil))
		return rec
	}
	first, second := get(), get()
	if first.Code != http.StatusOK || second.Code != http.StatusOK {
		t.Fatalf("HTTP %d / %d", first.Code, second.Code)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("repeated GETs of a terminal job returned different bytes")
	}
	if cl := first.Header().Get("Content-Length"); cl != fmt.Sprint(first.Body.Len()) {
		t.Errorf("Content-Length %q != body length %d", cl, first.Body.Len())
	}
}

// TestShardedCacheHammer drives a bounded sharded cache with mixed
// hit / insert / evict / lookup traffic from many goroutines. Run
// under -race (test-race-short does) it is the data-race gate for the
// sharding; in any mode it checks the bound and the entry count stay
// coherent once the dust settles.
func TestShardedCacheHammer(t *testing.T) {
	reg := metrics.NewRegistry()
	const bound = 64
	c := NewBoundedCache(reg, bound)

	// A stable set of completed jobs: the hit traffic.
	stable := make([]string, 32)
	for i := range stable {
		stable[i] = fmt.Sprintf("%064x", 0xabc000+i)
		c.GetOrCreate(stable[i], func() *Job { return doneTestJob("") })
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				switch rng.Intn(4) {
				case 0: // hit
					id := stable[rng.Intn(len(stable))]
					c.GetOrCreate(id, func() *Job { return doneTestJob(id) })
				case 1: // fresh terminal insert → drives LRU eviction
					id := fmt.Sprintf("%064x", uint64(w)<<32|uint64(i))
					j, existing := c.GetOrCreate(id, func() *Job { return newJob(id, "hadfl", hadfl.Options{}) })
					if !existing {
						j.finish(&hadfl.Result{Scheme: "hadfl"}, nil)
					}
				case 2: // lookup (may miss after eviction; both fine)
					c.Get(stable[rng.Intn(len(stable))])
				case 3: // failed job then resubmit → the retry-evict path
					id := fmt.Sprintf("%064x", 0xdead0000+uint64(rng.Intn(64)))
					j, existing := c.GetOrCreate(id, func() *Job { return newJob(id, "hadfl", hadfl.Options{}) })
					if !existing {
						j.finish(nil, &JobError{JobID: id, Scheme: "hadfl", Err: fmt.Errorf("boom")})
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Eviction skips jobs that are momentarily live, so a shard can be
	// left marginally over its cap when the skipped job finishes after
	// that shard's last insert — the same transient the unsharded cache
	// allowed. One in-flight job per worker bounds it.
	if n := c.Len(); n > bound+workers {
		t.Errorf("cache holds %d entries, want <= bound %d + %d in-flight", n, bound, workers)
	}
	// Len must agree with a full walk of the shards.
	walked := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		if len(s.jobs) != s.lru.Len() {
			t.Errorf("shard %d: map has %d entries, lru list %d", i, len(s.jobs), s.lru.Len())
		}
		walked += len(s.jobs)
		s.mu.Unlock()
	}
	if walked != c.Len() {
		t.Errorf("shard walk counts %d entries, Len() reports %d", walked, c.Len())
	}
}
