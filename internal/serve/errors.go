package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"hadfl"
)

// Sentinel errors returned by Server and Pool entry points.
var (
	// ErrQueueFull rejects a submission when the job queue is at its
	// bound; the client should retry later (HTTP 503).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrShuttingDown rejects work arriving after Close began.
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrUnknownJob is returned for lookups of IDs never submitted.
	ErrUnknownJob = errors.New("serve: unknown job id")
	// ErrCanceledByClient is the cause recorded when DELETE /runs/{id}
	// (or Job.Cancel on a client's behalf) aborts a job.
	ErrCanceledByClient = errors.New("serve: canceled by client")
)

// JobError is the rich error attached to a failed, timed-out or
// canceled job. Beyond the underlying cause it captures what was
// being run (scheme + the exact input options), where along the
// service path the failure happened, how long the job had been
// executing, and whether the cause was a deadline or a cancellation —
// so an operator can reproduce the run from the error alone.
type JobError struct {
	// JobID is the content-addressed job (and cache) identifier.
	JobID string
	// Scheme and Options are the failed run's full input.
	Scheme  string
	Options hadfl.Options
	// Path traces where the failure occurred, outermost first,
	// e.g. ["queue", "worker-3", "run"].
	Path []string
	// Err is the underlying cause.
	Err error
	// Duration is how long the job had been running (zero if it never
	// left the queue).
	Duration time.Duration
	// Timeout and Canceled flag deadline-exceeded and canceled jobs.
	Timeout  bool
	Canceled bool
}

// Error implements the error interface.
func (e *JobError) Error() string {
	site := e.Scheme
	if len(e.Path) > 0 {
		site += " at " + strings.Join(e.Path, "→")
	}
	switch {
	case e.Timeout:
		return fmt.Sprintf("serve: job %.12s (%s) timed out after %v: %v", e.JobID, site, e.Duration, e.Err)
	case e.Canceled:
		return fmt.Sprintf("serve: job %.12s (%s) canceled after %v: %v", e.JobID, site, e.Duration, e.Err)
	default:
		return fmt.Sprintf("serve: job %.12s (%s) failed after %v: %v", e.JobID, site, e.Duration, e.Err)
	}
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *JobError) Unwrap() error { return e.Err }

// IsTimeout reports whether the job died to a deadline.
func (e *JobError) IsTimeout() bool {
	return e.Timeout || errors.Is(e.Err, context.DeadlineExceeded)
}

// IsCanceled reports whether the job was canceled (client abandonment
// or server shutdown).
func (e *JobError) IsCanceled() bool {
	return e.Canceled || errors.Is(e.Err, context.Canceled)
}
