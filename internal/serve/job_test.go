package serve

import (
	"context"
	"errors"
	"testing"

	"hadfl"
)

func TestJobLifecycleAndReplay(t *testing.T) {
	j := newJob("id1", hadfl.SchemeHADFL, hadfl.Options{Seed: 3})
	if j.State() != StateQueued {
		t.Fatalf("state %v", j.State())
	}
	replay, live, cancel := j.Subscribe()
	defer cancel()
	if len(replay) != 1 || replay[0].State != StateQueued {
		t.Fatalf("replay %+v", replay)
	}

	if !j.start(func() {}) {
		t.Fatal("start refused")
	}
	if j.start(func() {}) {
		t.Fatal("double start accepted")
	}
	j.publishRound(hadfl.RoundUpdate{Round: 1, Time: 10})
	j.finish(&hadfl.Result{Scheme: hadfl.SchemeHADFL}, nil)
	if j.State() != StateDone {
		t.Fatalf("state %v", j.State())
	}

	var got []Event
	for e := range live {
		got = append(got, e)
	}
	// running, round, done — in order.
	if len(got) != 3 || got[0].State != StateRunning || got[1].Type != "round" || got[2].State != StateDone {
		t.Fatalf("events %+v", got)
	}

	// A late subscriber replays everything and gets a closed channel.
	replay2, live2, cancel2 := j.Subscribe()
	defer cancel2()
	if len(replay2) != 4 {
		t.Fatalf("late replay has %d events", len(replay2))
	}
	if _, ok := <-live2; ok {
		t.Fatal("late live channel not closed")
	}

	select {
	case <-j.Done():
	default:
		t.Fatal("Done not closed")
	}
}

func TestJobCancelWhileQueued(t *testing.T) {
	j := newJob("id2", hadfl.SchemeFedAvg, hadfl.Options{})
	j.Cancel(ErrShuttingDown)
	if j.State() != StateCanceled {
		t.Fatalf("state %v", j.State())
	}
	_, jerr := j.Result()
	if jerr == nil || !jerr.Canceled || !errors.Is(jerr, ErrShuttingDown) {
		t.Fatalf("error %+v", jerr)
	}
	if j.start(func() {}) {
		t.Fatal("canceled job started")
	}
}

func TestJobCancelWhileRunningCutsContext(t *testing.T) {
	j := newJob("id3", hadfl.SchemeHADFL, hadfl.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	j.start(cancel)
	j.Cancel(errors.New("client gone"))
	select {
	case <-ctx.Done():
	default:
		t.Fatal("running job's context not cut")
	}
}

func TestJobFinishFirstWriterWins(t *testing.T) {
	j := newJob("id4", hadfl.SchemeHADFL, hadfl.Options{})
	j.start(func() {})
	j.finish(nil, &JobError{JobID: "id4", Err: context.DeadlineExceeded, Timeout: true})
	// A stale result from an abandoned runner arrives late: discarded.
	j.finish(&hadfl.Result{Accuracy: 0.9}, nil)
	if j.State() != StateFailed {
		t.Fatalf("state %v", j.State())
	}
	res, jerr := j.Result()
	if res != nil || jerr == nil {
		t.Fatal("stale result clobbered recorded failure")
	}
	// Rounds after termination are dropped too.
	before := len(j.events)
	j.publishRound(hadfl.RoundUpdate{Round: 99})
	if len(j.events) != before {
		t.Fatal("round published after terminal state")
	}
}
