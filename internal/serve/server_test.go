package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hadfl"
	"hadfl/internal/metrics"
)

func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func postRun(t *testing.T, url string, body string) (int, JobStatus) {
	t.Helper()
	resp, err := http.Post(url+"/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

func getStatus(t *testing.T, url, id string) (int, JobStatus) {
	t.Helper()
	resp, err := http.Get(url + "/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

func waitDone(t *testing.T, url, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, st := getStatus(t, url, id)
		if code != http.StatusOK {
			t.Fatalf("GET /runs/%s = %d", id, code)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobStatus{}
}

// TestConcurrentIdenticalSubmissionsRunOnce is the acceptance check:
// N identical concurrent POST /runs coalesce onto ONE underlying run,
// and a later identical request is served from cache.
func TestConcurrentIdenticalSubmissionsRunOnce(t *testing.T) {
	var runs atomic.Int64
	gate := make(chan struct{})
	openGate := sync.OnceFunc(func() { close(gate) })
	srv := mustNew(t, Config{Workers: 4, Runner: func(ctx context.Context, scheme string, _ hadfl.Options, _ func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
		runs.Add(1)
		<-gate // hold the run so every duplicate arrives while in flight
		return &hadfl.Result{Scheme: scheme, Accuracy: 0.9, Rounds: 3}, nil
	}})
	defer srv.Close(context.Background())
	defer openGate() // unblock the runner before Close waits on it
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 16
	body := `{"scheme":"hadfl","options":{"powers":[4,2,2,1],"targetEpochs":5,"seed":42}}`
	ids := make([]string, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes[i], ids[i] = func() (int, string) {
				code, st := postRun(t, ts.URL, body)
				return code, st.ID
			}()
		}()
	}
	wg.Wait()
	openGate()

	accepted := 0
	for i := 0; i < n; i++ {
		if ids[i] != ids[0] || ids[i] == "" {
			t.Fatalf("request %d got id %q, want %q", i, ids[i], ids[0])
		}
		if codes[i] == http.StatusAccepted {
			accepted++
		} else if codes[i] != http.StatusOK {
			t.Fatalf("request %d status %d", i, codes[i])
		}
	}
	if accepted != 1 {
		t.Fatalf("%d requests created a job, want exactly 1", accepted)
	}
	st := waitDone(t, ts.URL, ids[0])
	if st.State != StateDone || st.Result == nil || st.Result.Accuracy != 0.9 {
		t.Fatalf("final status %+v", st)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("%d underlying runs for %d identical submissions", got, n)
	}

	// Completed: a repeat is served from cache, still exactly one run.
	code, st2 := postRun(t, ts.URL, body)
	if code != http.StatusOK || !st2.Cached || st2.State != StateDone || st2.Result == nil {
		t.Fatalf("cached resubmit: code %d status %+v", code, st2)
	}
	if runs.Load() != 1 {
		t.Fatal("cached resubmit re-ran training")
	}
}

// TestSSEStreamsRoundsDuringLiveRun is the acceptance check for the
// events endpoint: a real (tiny) HADFL training run streams at least
// one per-round update over SSE before the terminal "done" event.
func TestSSEStreamsRoundsDuringLiveRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real training run in -short mode")
	}
	srv := mustNew(t, Config{Workers: 1})
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"scheme":"hadfl","options":{"powers":[4,2,2,1],"targetEpochs":8,"seed":11}}`
	code, st := postRun(t, ts.URL, body)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}

	resp, err := http.Get(ts.URL + "/runs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	rounds, states := 0, []State(nil)
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		switch e.Type {
		case "round":
			rounds++
			if e.Round == nil || e.Round.Time <= 0 {
				t.Fatalf("degenerate round event %+v", e)
			}
		case "state":
			states = append(states, e.State)
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if rounds < 1 {
		t.Fatal("no per-round SSE updates streamed")
	}
	if len(states) == 0 || states[len(states)-1] != StateDone {
		t.Fatalf("states %v, want trailing done", states)
	}
	final := waitDone(t, ts.URL, st.ID)
	if final.Result == nil || final.Result.Rounds != rounds {
		t.Fatalf("streamed %d rounds, result has %+v", rounds, final.Result)
	}
}

func TestStatusCurveParameter(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, Runner: func(context.Context, string, hadfl.Options, func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
		s := &metrics.Series{Name: "stub"}
		s.Add(metrics.Point{Epoch: 1, Time: 2, Loss: 0.5, Accuracy: 0.7})
		return &hadfl.Result{Scheme: "stub", Accuracy: 0.7, Series: s}, nil
	}})
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, st := postRun(t, ts.URL, `{"options":{"seed":5}}`)
	waitDone(t, ts.URL, st.ID)

	_, plain := getStatus(t, ts.URL, st.ID)
	if plain.Result == nil || plain.Result.Curve != nil || plain.Result.CurvePoints != 1 {
		t.Fatalf("plain status %+v", plain.Result)
	}
	code, withCurve := getStatus(t, ts.URL, st.ID+"?curve=1")
	if code != http.StatusOK || withCurve.Result == nil || len(withCurve.Result.Curve) != 1 {
		t.Fatalf("curve status %+v", withCurve.Result)
	}
}

func TestBadRequestsAndUnknownJobs(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1})
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := postRun(t, ts.URL, `{"scheme":"quantum"}`); code != http.StatusBadRequest {
		t.Fatalf("unknown scheme = %d", code)
	}
	if code, _ := postRun(t, ts.URL, `{"options":{"powers":[-1]}}`); code != http.StatusBadRequest {
		t.Fatalf("invalid options = %d", code)
	}
	if code, _ := postRun(t, ts.URL, `{not json`); code != http.StatusBadRequest {
		t.Fatalf("malformed body = %d", code)
	}
	if code, _ := postRun(t, ts.URL, `{"bogus":1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field = %d", code)
	}
	if code, _ := getStatus(t, ts.URL, "deadbeef"); code != http.StatusNotFound {
		t.Fatalf("unknown id = %d", code)
	}
	resp, err := http.Get(ts.URL + "/runs/deadbeef/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id events = %d", resp.StatusCode)
	}
}

func TestRateLimiterRejectsBursts(t *testing.T) {
	gate := make(chan struct{})
	srv := mustNew(t, Config{Workers: 1, RatePerSec: 0.001, Burst: 2,
		Runner: func(ctx context.Context, s string, _ hadfl.Options, _ func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
			<-gate
			return &hadfl.Result{Scheme: s}, nil
		}})
	defer srv.Close(context.Background())
	defer close(gate) // unblock the runner before Close waits on it
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	codes := map[int]int{}
	for i := 0; i < 4; i++ {
		code, _ := postRun(t, ts.URL, fmt.Sprintf(`{"options":{"seed":%d}}`, i+1))
		codes[code]++
	}
	if codes[http.StatusAccepted] != 2 || codes[http.StatusTooManyRequests] != 2 {
		t.Fatalf("codes %v", codes)
	}
	var buf bytes.Buffer
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Metrics metrics.Snapshot `json:"metrics"`
	}
	if err := json.NewDecoder(io.TeeReader(resp.Body, &buf)).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Metrics.Counters["rate_limited_total"] != 2 {
		t.Fatalf("stats %s", buf.String())
	}
}

func TestQueueFullReturns503(t *testing.T) {
	gate := make(chan struct{})
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 1,
		Runner: func(ctx context.Context, s string, _ hadfl.Options, _ func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
			select {
			case <-gate:
			case <-ctx.Done():
			}
			return &hadfl.Result{Scheme: s}, nil
		}})
	defer srv.Close(context.Background())
	defer close(gate) // unblock the runner before Close waits on it
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code1, st1 := postRun(t, ts.URL, `{"options":{"seed":1}}`)
	if code1 != http.StatusAccepted {
		t.Fatalf("first = %d", code1)
	}
	// Wait for the worker to hold job 1 so job 2 occupies the queue.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, st := getStatus(t, ts.URL, st1.ID); st.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if code, _ := postRun(t, ts.URL, `{"options":{"seed":2}}`); code != http.StatusAccepted {
		t.Fatalf("second = %d", code)
	}
	code3, _ := postRun(t, ts.URL, `{"options":{"seed":3}}`)
	if code3 != http.StatusServiceUnavailable {
		t.Fatalf("third = %d, want 503", code3)
	}
	// The rejected job was finished as failed, so resubmitting retries
	// (and is rejected again while the queue is still full) rather than
	// returning the dead job as a cache hit.
	code4, st4 := postRun(t, ts.URL, `{"options":{"seed":3}}`)
	if code4 != http.StatusServiceUnavailable || st4.Cached {
		t.Fatalf("resubmit = %d cached=%v", code4, st4.Cached)
	}
}

func TestHealthzAndStats(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, Runner: stubRunner(nil, nil, nil)})
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, st := postRun(t, ts.URL, `{"options":{"seed":9}}`)
	waitDone(t, ts.URL, st.ID)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["jobs"].(float64) != 1 {
		t.Fatalf("health %v", health)
	}

	resp2, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var stats struct {
		CacheJobs int              `json:"cacheJobs"`
		Config    map[string]any   `json:"config"`
		Metrics   metrics.Snapshot `json:"metrics"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.CacheJobs != 1 || stats.Config["workers"].(float64) != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.Metrics.Counters["runs_completed_total"] != 1 ||
		stats.Metrics.Counters["runs_scheme_"+hadfl.SchemeHADFL] != 1 {
		t.Fatalf("metrics %+v", stats.Metrics.Counters)
	}
}

// TestCacheDispositionConsistentAcrossEndpoints pins the cache field's
// contract: a fresh POST reports miss, a duplicate of an in-flight run
// reports coalesced, a POST of a completed result reports hit — and GET
// /runs/{id} (with and without ?curve=1) agrees with the submission
// path instead of staying silent: miss while the run is live, hit once
// it is done.
func TestCacheDispositionConsistentAcrossEndpoints(t *testing.T) {
	gate := make(chan struct{})
	srv := mustNew(t, Config{Workers: 1, Runner: func(ctx context.Context, scheme string, _ hadfl.Options, _ func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
		<-gate
		s := &metrics.Series{Name: scheme}
		s.Add(metrics.Point{Epoch: 1, Time: 1, Loss: 0.4, Accuracy: 0.8})
		return &hadfl.Result{Scheme: scheme, Accuracy: 0.8, Series: s}, nil
	}})
	defer srv.Close(context.Background())
	opened := false
	openGate := func() {
		if !opened {
			close(gate)
			opened = true
		}
	}
	defer openGate()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"options":{"seed":77}}`
	code, st := postRun(t, ts.URL, body)
	if code != http.StatusAccepted || st.Cache != CacheMiss || st.Cached {
		t.Fatalf("fresh POST: code=%d cache=%q cached=%v, want 202/miss/false", code, st.Cache, st.Cached)
	}
	// Still in flight (the runner is gated): duplicates coalesce, polls miss.
	code, dup := postRun(t, ts.URL, body)
	if code != http.StatusOK || dup.Cache != CacheCoalesced || !dup.Cached {
		t.Fatalf("in-flight duplicate: code=%d cache=%q cached=%v, want 200/coalesced/true", code, dup.Cache, dup.Cached)
	}
	if _, live := getStatus(t, ts.URL, st.ID); live.Cache != CacheMiss || live.Cached {
		t.Fatalf("live poll: cache=%q cached=%v, want miss/false", live.Cache, live.Cached)
	}

	openGate()
	done := waitDone(t, ts.URL, st.ID)
	if done.State != StateDone || done.Cache != CacheHit || !done.Cached {
		t.Fatalf("done poll: state=%v cache=%q cached=%v, want done/hit/true", done.State, done.Cache, done.Cached)
	}
	code, again := postRun(t, ts.URL, body)
	if code != http.StatusOK || again.Cache != CacheHit || !again.Cached {
		t.Fatalf("completed resubmit: code=%d cache=%q cached=%v, want 200/hit/true", code, again.Cache, again.Cached)
	}
	_, curved := getStatus(t, ts.URL, st.ID+"?curve=1")
	if curved.Cache != CacheHit || curved.Result == nil || len(curved.Result.Curve) != 1 {
		t.Fatalf("curve poll: cache=%q result=%+v, want hit with 1 curve point", curved.Cache, curved.Result)
	}
}

// TestCancelEndpoint covers DELETE /runs/{id}: a running job reaches
// Canceled with the client-cancel cause, an unknown id is 404, and a
// done job is untouched by a late cancel.
func TestCancelEndpoint(t *testing.T) {
	started := make(chan struct{}, 1)
	srv := mustNew(t, Config{Workers: 1, Runner: func(ctx context.Context, scheme string, _ hadfl.Options, _ func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	del := func(id string) (int, JobStatus) {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/runs/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		if resp.StatusCode < 300 {
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, st
	}

	if code, _ := del("deadbeef"); code != http.StatusNotFound {
		t.Fatalf("unknown id DELETE = %d, want 404", code)
	}
	_, st := postRun(t, ts.URL, `{"options":{"seed":99}}`)
	<-started
	if code, _ := del(st.ID); code != http.StatusAccepted {
		t.Fatalf("DELETE running job = %d, want 202", code)
	}
	final := waitDone(t, ts.URL, st.ID)
	if final.State != StateCanceled || !final.Canceled {
		t.Fatalf("final after cancel: %+v, want canceled", final)
	}
	job, ok := srv.cache.Get(st.ID)
	if !ok {
		t.Fatal("canceled job fell out of the cache")
	}
	if _, jerr := job.Result(); jerr == nil || !jerr.IsCanceled() {
		t.Fatalf("job error %v, want canceled", jerr)
	}
}

// TestSchemesEndpointListsRegistry checks that GET /schemes mirrors the
// façade registry — including asyncfl, which PR 3 made public.
func TestSchemesEndpointListsRegistry(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, Runner: stubRunner(nil, nil, nil)})
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/schemes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Schemes []string `json:"schemes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want := hadfl.Schemes()
	if len(got.Schemes) != len(want) {
		t.Fatalf("GET /schemes = %v, want %v", got.Schemes, want)
	}
	for i := range want {
		if got.Schemes[i] != want[i] {
			t.Fatalf("GET /schemes[%d] = %q, want %q", i, got.Schemes[i], want[i])
		}
	}
}

// TestAsyncFLThroughHTTPAPI round-trips the asyncfl scheme through the
// real runner: fingerprinted, trained, cached like any other scheme.
func TestAsyncFLThroughHTTPAPI(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1})
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"scheme":"asyncfl","options":{"powers":[2,1],"targetEpochs":2,"seed":7}}`
	code, st := postRun(t, ts.URL, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	wantFP, err := hadfl.Fingerprint(hadfl.SchemeAsyncFL, hadfl.Options{
		Powers: []float64{2, 1}, TargetEpochs: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != wantFP {
		t.Fatalf("job id %s, want fingerprint %s", st.ID, wantFP)
	}
	final := waitDone(t, ts.URL, st.ID)
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("final %+v", final)
	}
	if final.Result.Scheme != hadfl.SchemeAsyncFL || final.Result.Accuracy <= 0 ||
		final.Result.ServerBytes == 0 {
		t.Fatalf("asyncfl summary %+v (async-centralized FL must load the server)", final.Result)
	}
	// Identical resubmission: pure cache hit.
	code2, st2 := postRun(t, ts.URL, body)
	if code2 != http.StatusOK || !st2.Cached || st2.ID != st.ID {
		t.Fatalf("resubmit = %d cached=%v", code2, st2.Cached)
	}
}
