package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"hadfl/internal/metrics"
)

// Cache is the content-addressed job/result store. Keys are
// hadfl.Fingerprint values, so "the cache" and "the job table" are the
// same structure: a hit may be a completed result (served without
// retraining) or a queued/running job (the new request coalesces onto
// it). Failed, canceled and timed-out jobs are evicted at the next
// identical submission so that a retry actually reruns.
//
// A bounded cache additionally evicts least-recently-used *terminal*
// jobs once the entry count exceeds the cap — live (queued/running)
// jobs are never evicted, since subscribers and the pool still hold
// them, so the cache may transiently exceed the cap while more than
// maxEntries runs are in flight.
//
// The table is sharded by a hash of the fingerprint so concurrent
// submissions and polls contend per shard instead of on one global
// mutex (every request crosses the cache, making it the serving
// layer's hottest lock). Bounded caches shard only when the cap leaves
// each shard a meaningful LRU window (cap/8, up to 16 shards); small
// caps keep one shard and therefore exact global LRU order. Sharded
// LRU is per shard — an approximation of global LRU that can evict an
// entry up to a shard's width earlier than strict recency order would.
type Cache struct {
	shards []cacheShard
	total  atomic.Int64 // entries across all shards
	reg    *metrics.Registry
}

// cacheShard is one lock's worth of the table; cap 0 = unbounded.
type cacheShard struct {
	mu   sync.Mutex
	jobs map[string]*list.Element // value: *cacheEntry
	lru  *list.List               // front = most recently used
	cap  int
	_    [32]byte // pad toward a cache line to curb false sharing
}

type cacheEntry struct {
	id  string
	job *Job
}

// maxCacheShards bounds the shard fan-out; past ~16 ways the mutexes
// stop being the bottleneck and the per-shard LRU approximation keeps
// degrading.
const maxCacheShards = 16

// cacheShardCount picks the shard fan-out for a cap: unbounded caches
// take the full fan-out, bounded caches only as many shards as leave
// each one an LRU window of at least 8 entries (so small caps — the
// eviction-semantics tests and tiny deployments — keep one shard and
// exact global LRU). The result is rounded down to a power of two.
func cacheShardCount(maxEntries int) int {
	n := maxCacheShards
	if maxEntries > 0 && maxEntries/8 < n {
		n = maxEntries / 8
	}
	if n < 1 {
		return 1
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// NewCache returns an unbounded cache reporting hit/miss counters to
// reg.
func NewCache(reg *metrics.Registry) *Cache { return NewBoundedCache(reg, 0) }

// NewBoundedCache returns a cache reporting to reg that holds at most
// maxEntries jobs (0 or negative = unbounded), evicting the least
// recently used terminal job past the cap. Evictions are counted on
// the cache_evictions_lru_total metric.
func NewBoundedCache(reg *metrics.Registry, maxEntries int) *Cache {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	n := cacheShardCount(maxEntries)
	c := &Cache{shards: make([]cacheShard, n), reg: reg}
	base, rem := 0, 0
	if maxEntries > 0 {
		base, rem = maxEntries/n, maxEntries%n
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.jobs = make(map[string]*list.Element)
		s.lru = list.New()
		if maxEntries > 0 {
			s.cap = base
			if i < rem {
				s.cap++
			}
		}
	}
	return c
}

// shard maps a fingerprint to its shard by FNV-1a over the id's last
// 16 bytes: ids are uniformly distributed hex digests, so a 16-byte
// slice carries all the entropy the shard index needs and the hash
// stays off the lookup path's profile. (The tail rather than the head,
// so zero-padded numeric ids in tests still spread.)
func (c *Cache) shard(id string) *cacheShard {
	if len(c.shards) == 1 {
		return &c.shards[0]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	start := 0
	if len(id) > 16 {
		start = len(id) - 16
	}
	h := uint64(offset64)
	for i := start; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return &c.shards[h&uint64(len(c.shards)-1)]
}

// GetOrCreate returns the job for id, creating it with mk on a miss.
// existing is true when the returned job predates this call — the
// caller must then NOT enqueue it again. A terminal-but-unsuccessful
// job is replaced (the retry path), counted as a miss.
func (c *Cache) GetOrCreate(id string, mk func() *Job) (j *Job, existing bool) {
	defer c.observeLookup(time.Now())
	s := c.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.jobs[id]; ok {
		j := el.Value.(*cacheEntry).job
		if st := j.State(); !st.Terminal() || st == StateDone {
			s.lru.MoveToFront(el)
			c.reg.Inc("cache_hits_total")
			return j, true
		}
		// Terminal failure: evict so the retry reruns.
		c.removeLocked(s, el, "cache_evictions_total")
	}
	c.reg.Inc("cache_misses_total")
	j = mk()
	s.jobs[id] = s.lru.PushFront(&cacheEntry{id: id, job: j})
	c.total.Add(1)
	c.evictOverCapLocked(s)
	c.reg.SetGauge("cache_jobs", float64(c.total.Load()))
	return j, false
}

// observeLookup records a lookup's latency (deferred with the entry
// time, so it fires after the lock is released). Lookups are the
// coalescing hot path: a latency spike here means submissions are
// contending on their cache shard.
func (c *Cache) observeLookup(t0 time.Time) {
	c.reg.ObserveSince("cache_lookup_seconds", t0)
}

// Get looks up a job without creating one, refreshing its recency.
func (c *Cache) Get(id string) (*Job, bool) {
	defer c.observeLookup(time.Now())
	s := c.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).job, true
}

// Len returns the number of cached jobs (any state).
func (c *Cache) Len() int { return int(c.total.Load()) }

// removeLocked drops an entry from s (whose mutex the caller holds)
// and bumps the given eviction counter.
func (c *Cache) removeLocked(s *cacheShard, el *list.Element, counter string) {
	e := el.Value.(*cacheEntry)
	s.lru.Remove(el)
	delete(s.jobs, e.id)
	c.total.Add(-1)
	//lint:ignore metriccatalog both callers pass canonical cache_evictions_* literals
	c.reg.Inc(counter)
}

// evictOverCapLocked removes least-recently-used terminal jobs until
// shard s fits its cap (live jobs are skipped and survive).
func (c *Cache) evictOverCapLocked(s *cacheShard) {
	if s.cap <= 0 {
		return
	}
	for el := s.lru.Back(); el != nil && len(s.jobs) > s.cap; {
		prev := el.Prev()
		if el.Value.(*cacheEntry).job.State().Terminal() {
			c.removeLocked(s, el, "cache_evictions_lru_total")
		}
		el = prev
	}
}
