package serve

import (
	"container/list"
	"sync"
	"time"

	"hadfl/internal/metrics"
)

// Cache is the content-addressed job/result store. Keys are
// hadfl.Fingerprint values, so "the cache" and "the job table" are the
// same structure: a hit may be a completed result (served without
// retraining) or a queued/running job (the new request coalesces onto
// it). Failed, canceled and timed-out jobs are evicted at the next
// identical submission so that a retry actually reruns.
//
// A bounded cache additionally evicts least-recently-used *terminal*
// jobs once the entry count exceeds the cap — live (queued/running)
// jobs are never evicted, since subscribers and the pool still hold
// them, so the cache may transiently exceed the cap while more than
// maxEntries runs are in flight.
type Cache struct {
	mu         sync.Mutex
	jobs       map[string]*list.Element // value: *cacheEntry
	lru        *list.List               // front = most recently used
	maxEntries int
	reg        *metrics.Registry
}

type cacheEntry struct {
	id  string
	job *Job
}

// NewCache returns an unbounded cache reporting hit/miss counters to
// reg.
func NewCache(reg *metrics.Registry) *Cache { return NewBoundedCache(reg, 0) }

// NewBoundedCache returns a cache reporting to reg that holds at most
// maxEntries jobs (0 or negative = unbounded), evicting the least
// recently used terminal job past the cap. Evictions are counted on
// the cache_evictions_lru_total metric.
func NewBoundedCache(reg *metrics.Registry, maxEntries int) *Cache {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Cache{
		jobs:       make(map[string]*list.Element),
		lru:        list.New(),
		maxEntries: maxEntries,
		reg:        reg,
	}
}

// GetOrCreate returns the job for id, creating it with mk on a miss.
// existing is true when the returned job predates this call — the
// caller must then NOT enqueue it again. A terminal-but-unsuccessful
// job is replaced (the retry path), counted as a miss.
func (c *Cache) GetOrCreate(id string, mk func() *Job) (j *Job, existing bool) {
	defer c.observeLookup(time.Now())
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.jobs[id]; ok {
		j := el.Value.(*cacheEntry).job
		if s := j.State(); !s.Terminal() || s == StateDone {
			c.lru.MoveToFront(el)
			c.reg.Inc("cache_hits_total")
			return j, true
		}
		// Terminal failure: evict so the retry reruns.
		c.removeLocked(el, "cache_evictions_total")
	}
	c.reg.Inc("cache_misses_total")
	j = mk()
	c.jobs[id] = c.lru.PushFront(&cacheEntry{id: id, job: j})
	c.evictOverCapLocked()
	c.reg.SetGauge("cache_jobs", float64(len(c.jobs)))
	return j, false
}

// observeLookup records a lookup's latency (deferred with the entry
// time, so it fires after the lock is released). Lookups are the
// coalescing hot path: a latency spike here means submissions are
// contending on the cache mutex.
func (c *Cache) observeLookup(t0 time.Time) {
	c.reg.ObserveSince("cache_lookup_seconds", t0)
}

// Get looks up a job without creating one, refreshing its recency.
func (c *Cache) Get(id string) (*Job, bool) {
	defer c.observeLookup(time.Now())
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.jobs[id]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).job, true
}

// Len returns the number of cached jobs (any state).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.jobs)
}

// removeLocked drops an entry and bumps the given eviction counter.
func (c *Cache) removeLocked(el *list.Element, counter string) {
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.jobs, e.id)
	//lint:ignore metriccatalog both callers pass canonical cache_evictions_* literals
	c.reg.Inc(counter)
}

// evictOverCapLocked removes least-recently-used terminal jobs until
// the cache fits its cap (live jobs are skipped and survive).
func (c *Cache) evictOverCapLocked() {
	if c.maxEntries <= 0 {
		return
	}
	for el := c.lru.Back(); el != nil && len(c.jobs) > c.maxEntries; {
		prev := el.Prev()
		if el.Value.(*cacheEntry).job.State().Terminal() {
			c.removeLocked(el, "cache_evictions_lru_total")
		}
		el = prev
	}
}
