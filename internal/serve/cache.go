package serve

import (
	"sync"

	"hadfl/internal/metrics"
)

// Cache is the content-addressed job/result store. Keys are
// hadfl.Fingerprint values, so "the cache" and "the job table" are the
// same structure: a hit may be a completed result (served without
// retraining) or a queued/running job (the new request coalesces onto
// it). Failed, canceled and timed-out jobs are evicted at the next
// identical submission so that a retry actually reruns.
type Cache struct {
	mu   sync.Mutex
	jobs map[string]*Job
	reg  *metrics.Registry
}

// NewCache returns an empty cache reporting hit/miss counters to reg.
func NewCache(reg *metrics.Registry) *Cache {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Cache{jobs: make(map[string]*Job), reg: reg}
}

// GetOrCreate returns the job for id, creating it with mk on a miss.
// existing is true when the returned job predates this call — the
// caller must then NOT enqueue it again. A terminal-but-unsuccessful
// job is replaced (the retry path), counted as a miss.
func (c *Cache) GetOrCreate(id string, mk func() *Job) (j *Job, existing bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if j, ok := c.jobs[id]; ok {
		if s := j.State(); !s.Terminal() || s == StateDone {
			c.reg.Inc("cache_hits_total")
			return j, true
		}
		c.reg.Inc("cache_evictions_total")
	}
	c.reg.Inc("cache_misses_total")
	j = mk()
	c.jobs[id] = j
	c.reg.SetGauge("cache_jobs", float64(len(c.jobs)))
	return j, false
}

// Get looks up a job without creating one.
func (c *Cache) Get(id string) (*Job, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

// Len returns the number of cached jobs (any state).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.jobs)
}
