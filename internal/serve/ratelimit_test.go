package serve

import (
	"testing"
	"time"
)

func TestTokenBucketBurstThenRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewTokenBucket(10, 3) // 10/s, burst 3
	b.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("burst request %d refused", i)
		}
	}
	if b.Allow() {
		t.Fatal("empty bucket allowed a request")
	}
	// 100ms refills exactly one token at 10/s.
	now = now.Add(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("refilled token refused")
	}
	if b.Allow() {
		t.Fatal("second token granted after single refill")
	}
	// A long idle period must not exceed the burst cap.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("post-idle request %d refused", i)
		}
	}
	if b.Allow() {
		t.Fatal("burst cap exceeded after idle")
	}
}

func TestTokenBucketDisabled(t *testing.T) {
	b := NewTokenBucket(0, 1)
	for i := 0; i < 100; i++ {
		if !b.Allow() {
			t.Fatal("disabled limiter refused")
		}
	}
}
