// Package serve turns the one-shot HADFL simulator into a long-lived
// experiment service: a bounded job queue drained by a worker pool, a
// content-addressed result cache, and an HTTP/JSON API with per-round
// streaming progress. It is the entry point used by cmd/hadfl-serve.
//
// # API
//
//	POST   /runs              submit {"scheme": "...", "options": {...}};
//	                          202 with {id, state} for a new job, 200 with
//	                          cached:true when the content-addressed cache
//	                          already holds (or is computing) the result
//	GET    /runs/{id}         job status; includes the result summary once
//	                          done, and the full training curve with ?curve=1
//	DELETE /runs/{id}         cancel on the client's behalf: 202 acknowledges
//	                          the request (poll for the terminal state); a
//	                          queued job turns canceled immediately, a
//	                          running one within about a device step
//	GET    /runs/{id}/events  Server-Sent Events: one "state" event per
//	                          transition and one "round" event per
//	                          progress report (fed from
//	                          hadfl.Options.OnRound); past events are
//	                          replayed so late subscribers miss nothing
//	GET    /schemes           the registered training schemes, straight
//	                          from the hadfl scheme registry
//	GET    /healthz           liveness: {"status":"ok", uptime, jobs}
//	GET    /stats             metrics.Registry snapshot (queue depth, cache
//	                          hit/miss, per-scheme run counts, ...) plus
//	                          pool and cache configuration
//
// Every status payload carries a cache disposition field reporting
// where the response came from: POST answers "miss" (fresh enqueue),
// "coalesced" (joined an in-flight identical run) or "hit" (completed
// result served from cache); GET /runs/{id} answers "hit" once the job
// is done and "miss" otherwise. cached:true accompanies hit and
// coalesced. The disposition is per-response, so a poll of a job that
// later completes flips miss → hit.
//
// # Serving hot path
//
// The steady-state request mix (polls and cache-hit submissions
// against completed jobs) is engineered to stay off every global lock:
// the result cache is sharded by fingerprint hash, terminal job
// statuses are encoded to wire bytes once and then served verbatim
// (zero allocations per request, pinned by the alloc-guard), the POST
// rate limiter is a lock-free GCRA, and the metrics registry is atomic
// cells behind sync.Map. See DESIGN.md "Load testing and the serving
// hot path" and cmd/hadfl-loadgen for the measurement harness.
//
// # Cache semantics
//
// Runs are deterministic given their options (seeded simulation), so
// the result is content-addressed by hadfl.Fingerprint(scheme,
// options) — the job ID *is* the fingerprint. A resubmission of
// identical work returns the existing job whether it is still queued,
// running, or done: concurrent duplicates coalesce onto one in-flight
// run and completed results are served from memory without retraining.
// Failed, canceled and timed-out jobs are evicted on the next
// identical submission, which therefore retries the run. With
// Config.StoreDir set, completed results additionally persist to disk
// (ResultStore: final model via coordinator.ModelStore plus a summary
// sidecar) and rehydrate into the cache on boot, surviving restarts.
//
// Coalescing happens before admission: a duplicate arriving between a
// creator's cache insert and its enqueue shares that job's fate, so
// if the enqueue is then rejected (queue full) the duplicate's job
// reads as failed with the queue-full cause — an honest outcome for
// an async API; resubmitting evicts and retries it.
//
// # Concurrency and shutdown
//
// Submissions beyond the queue bound are rejected with 503 rather than
// accepted unboundedly, and a token bucket rate-limits POST /runs with
// 429. Each job runs under a per-job context (timeout + cancel); every
// registered scheme threads that context through its training loops
// via hadfl.RunContext and aborts within about one device step. A
// custom Runner that ignores its context is abandoned instead after a
// short grace (the worker moves on, the run's late result is
// discarded). Close drains nothing: queued jobs are marked canceled
// immediately and running jobs get a grace period before their
// contexts are cut.
package serve
