package serve

import (
	"errors"
	"testing"

	"hadfl"
	"hadfl/internal/metrics"
)

func TestCacheCoalescesAndServesDone(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCache(reg)
	mk := func() *Job { return newJob("fp", hadfl.SchemeHADFL, hadfl.Options{}) }

	j1, existing := c.GetOrCreate("fp", mk)
	if existing {
		t.Fatal("first lookup hit")
	}
	// Still queued: the duplicate coalesces onto the same job.
	j2, existing := c.GetOrCreate("fp", mk)
	if !existing || j2 != j1 {
		t.Fatal("queued job not coalesced")
	}
	// Done: served from cache.
	j1.start(func() {})
	j1.finish(&hadfl.Result{Accuracy: 0.8}, nil)
	j3, existing := c.GetOrCreate("fp", mk)
	if !existing || j3 != j1 {
		t.Fatal("done job not served from cache")
	}
	if reg.Counter("cache_hits_total") != 2 || reg.Counter("cache_misses_total") != 1 {
		t.Fatalf("hits=%d misses=%d", reg.Counter("cache_hits_total"), reg.Counter("cache_misses_total"))
	}
}

func TestBoundedCacheEvictsLRUTerminalJobs(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewBoundedCache(reg, 2)
	mk := func(id string) func() *Job {
		return func() *Job { return newJob(id, hadfl.SchemeHADFL, hadfl.Options{}) }
	}
	finish := func(j *Job) {
		j.start(func() {})
		j.finish(&hadfl.Result{}, nil)
	}

	a, _ := c.GetOrCreate("a", mk("a"))
	finish(a)
	b, _ := c.GetOrCreate("b", mk("b"))
	finish(b)
	// Touch a so b becomes the LRU entry.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	d, _ := c.GetOrCreate("d", mk("d"))
	finish(d)

	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2 after LRU eviction", c.Len())
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if _, ok := c.Get("d"); !ok {
		t.Fatal("new entry d missing")
	}
	if got := reg.Counter("cache_evictions_lru_total"); got != 1 {
		t.Fatalf("cache_evictions_lru_total = %d, want 1", got)
	}
}

func TestBoundedCacheNeverEvictsLiveJobs(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewBoundedCache(reg, 1)
	mk := func(id string) func() *Job {
		return func() *Job { return newJob(id, hadfl.SchemeHADFL, hadfl.Options{}) }
	}
	// Two live (queued) jobs: the cap is exceeded but nothing may go.
	c.GetOrCreate("a", mk("a"))
	c.GetOrCreate("b", mk("b"))
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2 (live jobs are not evictable)", c.Len())
	}
	if got := reg.Counter("cache_evictions_lru_total"); got != 0 {
		t.Fatalf("cache_evictions_lru_total = %d, want 0", got)
	}
	// Once one finishes, the next insertion trims back to the cap.
	a, _ := c.Get("a")
	a.start(func() {})
	a.finish(&hadfl.Result{}, nil)
	j, _ := c.GetOrCreate("d", mk("d"))
	j.start(func() {})
	j.finish(&hadfl.Result{}, nil)
	if _, ok := c.Get("a"); ok {
		t.Fatal("terminal LRU job a should have been evicted")
	}
	if c.Len() != 2 { // b (live) + d
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestCacheEvictsFailedJobsOnResubmit(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCache(reg)
	fresh := 0
	mk := func() *Job {
		fresh++
		return newJob("fp", hadfl.SchemeHADFL, hadfl.Options{})
	}
	j1, _ := c.GetOrCreate("fp", mk)
	j1.start(func() {})
	j1.finish(nil, &JobError{JobID: "fp", Err: errors.New("boom")})

	j2, existing := c.GetOrCreate("fp", mk)
	if existing || j2 == j1 {
		t.Fatal("failed job served instead of retried")
	}
	if fresh != 2 {
		t.Fatalf("%d jobs created", fresh)
	}
	if reg.Counter("cache_evictions_total") != 1 {
		t.Fatalf("evictions = %d", reg.Counter("cache_evictions_total"))
	}
	got, ok := c.Get("fp")
	if !ok || got != j2 {
		t.Fatal("cache does not hold the retry")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}
