package serve

import (
	"errors"
	"testing"

	"hadfl"
	"hadfl/internal/metrics"
)

func TestCacheCoalescesAndServesDone(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCache(reg)
	mk := func() *Job { return newJob("fp", hadfl.SchemeHADFL, hadfl.Options{}) }

	j1, existing := c.GetOrCreate("fp", mk)
	if existing {
		t.Fatal("first lookup hit")
	}
	// Still queued: the duplicate coalesces onto the same job.
	j2, existing := c.GetOrCreate("fp", mk)
	if !existing || j2 != j1 {
		t.Fatal("queued job not coalesced")
	}
	// Done: served from cache.
	j1.start(func() {})
	j1.finish(&hadfl.Result{Accuracy: 0.8}, nil)
	j3, existing := c.GetOrCreate("fp", mk)
	if !existing || j3 != j1 {
		t.Fatal("done job not served from cache")
	}
	if reg.Counter("cache_hits_total") != 2 || reg.Counter("cache_misses_total") != 1 {
		t.Fatalf("hits=%d misses=%d", reg.Counter("cache_hits_total"), reg.Counter("cache_misses_total"))
	}
}

func TestCacheEvictsFailedJobsOnResubmit(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCache(reg)
	fresh := 0
	mk := func() *Job {
		fresh++
		return newJob("fp", hadfl.SchemeHADFL, hadfl.Options{})
	}
	j1, _ := c.GetOrCreate("fp", mk)
	j1.start(func() {})
	j1.finish(nil, &JobError{JobID: "fp", Err: errors.New("boom")})

	j2, existing := c.GetOrCreate("fp", mk)
	if existing || j2 == j1 {
		t.Fatal("failed job served instead of retried")
	}
	if fresh != 2 {
		t.Fatalf("%d jobs created", fresh)
	}
	if reg.Counter("cache_evictions_total") != 1 {
		t.Fatalf("evictions = %d", reg.Counter("cache_evictions_total"))
	}
	got, ok := c.Get("fp")
	if !ok || got != j2 {
		t.Fatal("cache does not hold the retry")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}
