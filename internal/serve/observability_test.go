package serve

// Observability-layer coverage: the Prometheus exposition endpoint,
// process runtime gauges on /stats, the metric-name hygiene contract
// (every name a serve deployment registers is documented in the
// metrics catalog), and the full shared-registry dispatch path — one
// serve server whose pool Runner is a simnet dispatcher, proving that
// dispatch_* counters, cross-layer histograms and a single stitched
// trace all surface on the server's own endpoints.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hadfl"
	"hadfl/internal/metrics"
	"hadfl/internal/p2p"
	"hadfl/internal/serve/dispatch"
	"hadfl/internal/trace"
)

func TestMetricsEndpointServesPrometheus(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, Runner: stubRunner(nil, nil, nil)})
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, st := postRun(t, ts.URL, `{"options":{"seed":31}}`)
	waitDone(t, ts.URL, st.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE runs_completed_total counter",
		"runs_completed_total 1",
		"# TYPE run_duration_seconds histogram",
		`run_duration_seconds_bucket{le="+Inf"} 1`,
		"run_duration_seconds_count 1",
		"# TYPE process_goroutines gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestStatsIncludesRuntimeGaugesAndHistograms(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, Runner: stubRunner(nil, nil, nil)})
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, st := postRun(t, ts.URL, `{"options":{"seed":32}}`)
	waitDone(t, ts.URL, st.ID)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Metrics metrics.Snapshot `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	g := stats.Metrics.Gauges
	if g["process_uptime_seconds"] <= 0 || g["process_goroutines"] < 1 || g["process_heap_bytes"] <= 0 {
		t.Fatalf("runtime gauges %+v", g)
	}
	for _, name := range []string{"queue_wait_seconds", "run_duration_seconds"} {
		h, ok := stats.Metrics.Histograms[name]
		if !ok || h.Count < 1 {
			t.Fatalf("histogram %s missing from /stats (%+v)", name, stats.Metrics.Histograms)
		}
	}
}

// assertCanonicalNames fails on any registered metric name missing
// from the documented catalog — the CI tripwire against silent metric
// surface drift.
func assertCanonicalNames(t *testing.T, s metrics.Snapshot) {
	t.Helper()
	for name := range s.Counters {
		if !metrics.IsCanonical(name) {
			t.Errorf("undocumented counter %q (add it to internal/metrics/names.go)", name)
		}
	}
	for name := range s.Gauges {
		if !metrics.IsCanonical(name) {
			t.Errorf("undocumented gauge %q (add it to internal/metrics/names.go)", name)
		}
	}
	for name := range s.Histograms {
		if !metrics.IsCanonical(name) {
			t.Errorf("undocumented histogram %q (add it to internal/metrics/names.go)", name)
		}
	}
}

// TestServeDispatchSharedObservability is the issue's acceptance e2e:
// a serve server whose pool Runner is a dispatch backend, all three
// layers (pool, dispatcher, worker-side shipment) sharing ONE registry
// and ONE tracer. A single POST /runs must surface dispatch_* counters
// and cross-layer histograms on /stats, valid Prometheus text on
// /metrics, and exactly one trace on /debug/traces whose spans cover
// request → rounds → result on both sides of the wire under a single
// TraceID.
func TestServeDispatchSharedObservability(t *testing.T) {
	reg := metrics.NewRegistry()
	tracer := trace.NewTracer(0)
	hub := p2p.NewChanHub()
	worker, err := dispatch.NewWorker(dispatch.WorkerConfig{
		Transport:   hub.Node(1),
		RecvTimeout: 10 * time.Millisecond,
		Metrics:     reg,
		Tracer:      tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	workerCtx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		_ = worker.Serve(workerCtx)
	}()
	disp, err := dispatch.New(dispatch.Config{
		Transport:      hub.Node(0),
		Workers:        []int{1},
		HeartbeatEvery: 20 * time.Millisecond,
		RecvTimeout:    10 * time.Millisecond,
		Metrics:        reg,
		Tracer:         tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disp.Close()
	readyCtx, cancelReady := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelReady()
	if err := disp.WaitReady(readyCtx, 1); err != nil {
		t.Fatal(err)
	}

	srv := mustNew(t, Config{Workers: 1, Runner: disp.Run, Metrics: reg, Tracer: tracer})
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, st := postRun(t, ts.URL, `{"options":{"powers":[2,1],"targetEpochs":2,"seed":33}}`)
	final := waitDone(t, ts.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("dispatched job finished %v: %s", final.State, final.Error)
	}

	// /stats: dispatch counters and histograms from every layer, plus
	// the live-workers gauge, all on the one shared registry.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Metrics metrics.Snapshot `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	c := stats.Metrics.Counters
	if c["dispatch_requests_total"] < 1 || c["dispatch_remote_total"] != 1 || c["runs_completed_total"] != 1 {
		t.Fatalf("dispatch counters %+v", c)
	}
	if stats.Metrics.Gauges["dispatch_workers_live"] != 1 {
		t.Fatalf("dispatch_workers_live = %v", stats.Metrics.Gauges["dispatch_workers_live"])
	}
	for _, name := range []string{
		"queue_wait_seconds", "run_duration_seconds",
		"dispatch_rtt_seconds", "dispatch_result_frame_bytes", "worker_run_seconds",
	} {
		if h, ok := stats.Metrics.Histograms[name]; !ok || h.Count < 1 {
			t.Fatalf("histogram %s missing after a dispatched run", name)
		}
	}
	assertCanonicalNames(t, stats.Metrics)

	// /metrics: the same registry as Prometheus text, with the dispatch
	// histogram present.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mraw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mraw), "# TYPE dispatch_rtt_seconds histogram") {
		t.Fatal("/metrics missing the dispatch RTT histogram")
	}

	// /debug/traces: one job → one trace, spans from the pool, the
	// dispatcher and the worker stitched under a single TraceID, with
	// the serve.job span as the root.
	tresp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var body struct {
		Traces []trace.Trace `json:"traces"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Traces) != 1 {
		t.Fatalf("one dispatched job produced %d traces, want 1", len(body.Traces))
	}
	tr := body.Traces[0]
	byName := make(map[string]trace.SpanData)
	for _, sd := range tr.Spans {
		if sd.TraceID != tr.TraceID {
			t.Fatalf("span %q under trace %s carries TraceID %s", sd.Name, tr.TraceID, sd.TraceID)
		}
		byName[sd.Name] = sd
	}
	for _, name := range []string{"serve.job", "dispatch.run", "dispatch.request", "worker.run", "worker.result"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("trace missing span %q (have %v)", name, spanNames(tr.Spans))
		}
	}
	if byName["serve.job"].Parent != "" {
		t.Fatal("serve.job is not the trace root")
	}
	if byName["dispatch.run"].Parent != byName["serve.job"].SpanID {
		t.Fatal("dispatch.run not parented under serve.job")
	}
	if byName["worker.run"].Parent != byName["dispatch.request"].SpanID {
		t.Fatal("worker.run did not stitch under dispatch.request across the wire")
	}
	if byName["serve.job"].Attrs["jobID"] != st.ID {
		t.Fatalf("serve.job jobID attr %q, want %q", byName["serve.job"].Attrs["jobID"], st.ID)
	}
}

func spanNames(spans []trace.SpanData) []string {
	out := make([]string, len(spans))
	for i, sd := range spans {
		out[i] = sd.Name
	}
	return out
}

// TestMetricNameHygieneLocalPath covers the plain local server: every
// metric a no-dispatch deployment registers must be documented.
func TestMetricNameHygieneLocalPath(t *testing.T) {
	reg := metrics.NewRegistry()
	srv := mustNew(t, Config{Workers: 1, Metrics: reg, StoreDir: t.TempDir(), CacheMaxEntries: 8})
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, st := postRun(t, ts.URL, `{"options":{"powers":[2,1],"targetEpochs":1,"seed":34}}`)
	waitDone(t, ts.URL, st.ID)
	// Touch the SSE and rate-limit counters too.
	if resp, err := http.Get(ts.URL + "/runs/" + st.ID + "/events"); err == nil {
		resp.Body.Close()
	}
	metrics.SetRuntimeGauges(reg, time.Now())
	assertCanonicalNames(t, reg.Snapshot())
	if !metrics.IsCanonical("runs_scheme_" + metrics.SanitizeName(hadfl.SchemeHADFL)) {
		t.Fatal("per-scheme counter family undocumented")
	}
}
