package serve

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"hadfl"
)

// storeRunner is a fast fake run that still produces a persistable
// result (non-empty FinalParams).
func storeRunner(runs *atomic.Int64) Runner {
	return func(_ context.Context, scheme string, _ hadfl.Options, _ func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
		if runs != nil {
			runs.Add(1)
		}
		return &hadfl.Result{
			Scheme: scheme, Accuracy: 0.75, Time: 12.5, Rounds: 3,
			DeviceBytes: 1024, FinalParams: []float64{1, 2, 3},
		}, nil
	}
}

func waitStored(t *testing.T, dir, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(filepath.Join(dir, id+".json")); err == nil {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("result %s never persisted to %s", id, dir)
}

// TestResultStorePersistsAcrossRestart is the satellite acceptance
// check: a completed run is written to -store-dir and a freshly booted
// server serves the identical submission from the rehydrated cache
// without rerunning.
func TestResultStorePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64

	srv1 := mustNew(t, Config{Workers: 1, StoreDir: dir, Runner: storeRunner(&runs)})
	ts1 := httptest.NewServer(srv1.Handler())
	body := `{"scheme":"asyncfl","options":{"powers":[2,1],"targetEpochs":3,"seed":5}}`
	code, st := postRun(t, ts1.URL, body)
	if code != 202 {
		t.Fatalf("submit = %d", code)
	}
	final := waitDone(t, ts1.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("state %v", final.State)
	}
	waitStored(t, dir, st.ID)
	ts1.Close()
	if err := srv1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("runs before restart = %d", got)
	}

	// "Restart": a brand-new server over the same directory.
	srv2 := mustNew(t, Config{Workers: 1, StoreDir: dir, Runner: storeRunner(&runs)})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Close(context.Background())

	// The rehydrated job is queryable by ID before any submission...
	getCode, got := getStatus(t, ts2.URL, st.ID)
	if getCode != 200 || got.State != StateDone {
		t.Fatalf("rehydrated GET = %d state %v", getCode, got.State)
	}
	if got.Result == nil || got.Result.Accuracy != 0.75 || got.Result.Rounds != 3 {
		t.Fatalf("rehydrated summary %+v", got.Result)
	}
	// ...and an identical submission is a cache hit, not a rerun.
	code2, st2 := postRun(t, ts2.URL, body)
	if code2 != 200 || st2.ID != st.ID || !st2.Cached {
		t.Fatalf("resubmit = %d id %s cached %v", code2, st2.ID, st2.Cached)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("runs after restart = %d, want 1 (served from store)", got)
	}
}

func TestResultStoreSkipsCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bogus.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A well-formed summary whose fingerprint doesn't match its content
	// must not shadow the real cache slot.
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.json"),
		[]byte(`{"id":"deadbeef","scheme":"hadfl","options":{"seed":1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := mustNew(t, Config{Workers: 1, StoreDir: dir, Runner: storeRunner(nil)})
	defer srv.Close(context.Background())
	if n := srv.cache.Len(); n != 0 {
		t.Fatalf("cache rehydrated %d corrupt entries", n)
	}
}

func TestResultStoreRoundTripDirect(t *testing.T) {
	dir := t.TempDir()
	st, err := NewResultStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := hadfl.Options{Powers: []float64{2, 1}, TargetEpochs: 2, Seed: 3}
	fp, err := hadfl.Fingerprint(hadfl.SchemeFedAvg, opts)
	if err != nil {
		t.Fatal(err)
	}
	j := newJob(fp, hadfl.SchemeFedAvg, opts)
	j.finish(&hadfl.Result{
		Scheme: hadfl.SchemeFedAvg, Accuracy: 0.5, Time: 3, Rounds: 2,
		FinalParams: []float64{4, 5},
	}, nil)
	res, _ := j.Result()
	if err := st.Save(j, res); err != nil {
		t.Fatal(err)
	}
	jobs := st.Load()
	if len(jobs) != 1 {
		t.Fatalf("loaded %d jobs", len(jobs))
	}
	lj := jobs[0]
	if lj.ID != fp || lj.State() != StateDone {
		t.Fatalf("loaded job %s state %v", lj.ID, lj.State())
	}
	lres, ljerr := lj.Result()
	if ljerr != nil || lres.Accuracy != 0.5 || len(lres.FinalParams) != 2 {
		t.Fatalf("loaded result %+v err %v", lres, ljerr)
	}
}
