package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"hadfl"
	"hadfl/internal/metrics"
)

// Runner executes one training run, honoring ctx for timeout and
// cancellation and reporting per-round progress through onRound. The
// pool takes it as a seam so tests can substitute instrumented or
// failing runs.
type Runner func(ctx context.Context, scheme string, opts hadfl.Options, onRound func(hadfl.RoundUpdate)) (*hadfl.Result, error)

// runAbort carries ctx.Err() out of the simulation through the round
// callback; RunScheme offers no context plumbing, so cooperative
// cancellation unwinds via panic/recover the way encoding/json aborts
// marshaling.
type runAbort struct{ err error }

// DefaultRunner runs hadfl.RunScheme. Every built-in scheme reports
// progress through OnRound (HADFL per synchronization round, FedAvg
// per round, distributed per evaluation interval), so runs observe
// ctx at that cadence and abort cooperatively; the pool's
// goroutine-abandonment path remains only as a backstop for custom
// runners that ignore ctx.
func DefaultRunner(ctx context.Context, scheme string, opts hadfl.Options, onRound func(hadfl.RoundUpdate)) (res *hadfl.Result, err error) {
	opts.OnRound = func(u hadfl.RoundUpdate) {
		if onRound != nil {
			onRound(u)
		}
		if err := ctx.Err(); err != nil {
			panic(runAbort{err})
		}
	}
	defer func() {
		if r := recover(); r != nil {
			a, ok := r.(runAbort)
			if !ok {
				panic(r)
			}
			res, err = nil, a.err
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return hadfl.RunScheme(scheme, opts)
}

// PoolConfig sizes a Pool.
type PoolConfig struct {
	// Workers bounds concurrent runs. Default: GOMAXPROCS.
	Workers int
	// QueueDepth bounds jobs waiting beyond the running ones; Enqueue
	// returns ErrQueueFull past it. Default 64.
	QueueDepth int
	// JobTimeout bounds each run's execution time. 0 = unlimited.
	JobTimeout time.Duration
	// Runner executes runs. Default DefaultRunner.
	Runner Runner
	// Metrics receives queue/run telemetry. Default: private registry.
	Metrics *metrics.Registry
}

// Pool is a bounded job queue drained by a fixed set of workers. Jobs
// enter via Enqueue, run under a per-job context, and reach a terminal
// state exactly once; Close stops intake, cancels queued work, grants
// running jobs a grace period, then cuts their contexts.
type Pool struct {
	cfg   PoolConfig
	reg   *metrics.Registry
	queue chan *Job
	stop  chan struct{} // closed once: workers stop picking up work
	base  context.Context
	cut   context.CancelFunc // cancels every job context
	wg    sync.WaitGroup

	mu      sync.Mutex
	closing bool
}

// NewPool starts cfg.Workers workers and returns the running pool.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Runner == nil {
		cfg.Runner = DefaultRunner
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	base, cut := context.WithCancel(context.Background())
	p := &Pool{
		cfg:   cfg,
		reg:   cfg.Metrics,
		queue: make(chan *Job, cfg.QueueDepth),
		stop:  make(chan struct{}),
		base:  base,
		cut:   cut,
	}
	p.reg.SetGauge("pool_workers", float64(cfg.Workers))
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker(i)
	}
	return p
}

// Enqueue admits a job to the queue. It fails fast with ErrQueueFull
// at the bound and ErrShuttingDown after Close has begun.
func (p *Pool) Enqueue(j *Job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closing {
		return ErrShuttingDown
	}
	select {
	case p.queue <- j:
		p.reg.Inc("runs_submitted_total")
		p.reg.SetGauge("queue_depth", float64(len(p.queue)))
		return nil
	default:
		p.reg.Inc("queue_rejections_total")
		return ErrQueueFull
	}
}

// QueueDepth returns the number of jobs waiting (not running).
func (p *Pool) QueueDepth() int { return len(p.queue) }

// Close shuts the pool down: intake stops, queued jobs are canceled
// immediately, and running jobs may finish until ctx expires, after
// which their contexts are cut (HADFL runs abort at the next round;
// callback-free schemes are abandoned). Returns ctx.Err() when the
// grace period was exhausted, nil on a clean drain.
func (p *Pool) Close(ctx context.Context) error {
	p.mu.Lock()
	already := p.closing
	p.closing = true
	p.mu.Unlock()
	if !already {
		close(p.stop)
	drain:
		for {
			select {
			case j := <-p.queue:
				j.Cancel(ErrShuttingDown)
			default:
				break drain
			}
		}
		p.reg.SetGauge("queue_depth", 0)
	}

	idle := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		p.cut()
		<-idle
		return ctx.Err()
	}
}

func (p *Pool) worker(i int) {
	defer p.wg.Done()
	name := fmt.Sprintf("worker-%d", i)
	for {
		// Prefer stopping over racing the queue once Close has begun.
		select {
		case <-p.stop:
			return
		default:
		}
		select {
		case <-p.stop:
			return
		case j := <-p.queue:
			p.reg.SetGauge("queue_depth", float64(len(p.queue)))
			p.runJob(name, j)
		}
	}
}

// runJob executes one job under its own context and records the
// outcome. If the context dies before the runner returns (a scheme
// that never reports rounds, or a hard wall), the job is finished as
// timed-out/canceled and the runner goroutine is abandoned — its late
// result is discarded by Job.finish's first-writer-wins rule.
func (p *Pool) runJob(worker string, j *Job) {
	ctx := p.base
	var cancel context.CancelFunc
	if p.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, p.cfg.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	if !j.start(cancel) {
		return // canceled while queued
	}
	p.reg.AddGauge("jobs_running", 1)
	defer p.reg.AddGauge("jobs_running", -1)
	p.reg.Inc("runs_started_total")
	p.reg.Inc("runs_scheme_" + j.Scheme)

	type outcome struct {
		res *hadfl.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := p.cfg.Runner(ctx, j.Scheme, j.Options, j.publishRound)
		ch <- outcome{res, err}
	}()

	finishErr := func(cause error, path ...string) {
		jerr := &JobError{
			JobID: j.ID, Scheme: j.Scheme, Options: j.Options,
			Path:     append([]string{"pool", worker}, path...),
			Err:      cause,
			Duration: j.RunningFor(),
			Timeout:  errors.Is(cause, context.DeadlineExceeded),
			Canceled: errors.Is(cause, context.Canceled),
		}
		j.finish(nil, jerr)
		switch {
		case jerr.Timeout:
			p.reg.Inc("runs_timeout_total")
		case jerr.Canceled:
			p.reg.Inc("runs_canceled_total")
		default:
			p.reg.Inc("runs_failed_total")
		}
	}

	select {
	case o := <-ch:
		if o.err != nil {
			finishErr(o.err, "run")
			return
		}
		j.finish(o.res, nil)
		p.reg.Inc("runs_completed_total")
	case <-ctx.Done():
		finishErr(ctx.Err(), "run", "abandoned")
	}
}
