package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"hadfl"
	"hadfl/internal/metrics"
	"hadfl/internal/serve/dispatch"
	"hadfl/internal/trace"
)

// Runner executes one training run, honoring ctx for timeout and
// cancellation and reporting per-round progress through onRound. The
// pool takes it as a seam so tests can substitute instrumented or
// failing runs.
type Runner func(ctx context.Context, scheme string, opts hadfl.Options, onRound func(hadfl.RoundUpdate)) (*hadfl.Result, error)

// DefaultRunner runs hadfl.RunContext: every registered scheme checks
// ctx at its round and device-step boundaries, so a canceled or
// timed-out job aborts within about one device step and returns
// ctx.Err(). The pool's goroutine-abandonment path remains only as a
// backstop for custom runners that ignore ctx.
func DefaultRunner(ctx context.Context, scheme string, opts hadfl.Options, onRound func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
	opts.OnRound = onRound
	return hadfl.RunContext(ctx, scheme, opts)
}

// PoolConfig sizes a Pool.
type PoolConfig struct {
	// Workers bounds concurrent runs. Default: GOMAXPROCS.
	Workers int
	// QueueDepth bounds jobs waiting beyond the running ones; Enqueue
	// returns ErrQueueFull past it. Default 64.
	QueueDepth int
	// JobTimeout bounds each run's execution time. 0 = unlimited.
	JobTimeout time.Duration
	// Runner executes runs. Default DefaultRunner.
	Runner Runner
	// Metrics receives queue/run telemetry. Default: private registry.
	Metrics *metrics.Registry
	// Tracer receives the per-job root spans ("serve.job"); the run
	// context carries the span, so a dispatch-backed runner stitches
	// its remote spans under the same trace. Default: none.
	Tracer *trace.Tracer
	// Logger receives job lifecycle events. Default: discard.
	Logger *slog.Logger
}

// Pool is a bounded job queue drained by a fixed set of workers. Jobs
// enter via Enqueue, run under a per-job context, and reach a terminal
// state exactly once; Close stops intake, cancels queued work, grants
// running jobs a grace period, then cuts their contexts.
type Pool struct {
	cfg     PoolConfig
	reg     *metrics.Registry
	tracer  *trace.Tracer
	log     *slog.Logger
	queue   chan *Job
	stop    chan struct{} // closed once: workers stop picking up work
	base    context.Context
	cut     context.CancelFunc // cancels every job context
	cutDone chan struct{}      // closed alongside cut: shutdown hard deadline
	cutOnce sync.Once
	wg      sync.WaitGroup

	mu      sync.Mutex
	closing bool
}

// NewPool starts cfg.Workers workers and returns the running pool.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Runner == nil {
		cfg.Runner = DefaultRunner
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = trace.NopLogger()
	}
	//lint:ignore ctxbg the pool owns the process-lifetime root ctx; Close cuts it
	base, cut := context.WithCancel(context.Background())
	p := &Pool{
		cfg:     cfg,
		reg:     cfg.Metrics,
		tracer:  cfg.Tracer,
		log:     cfg.Logger,
		queue:   make(chan *Job, cfg.QueueDepth),
		stop:    make(chan struct{}),
		base:    base,
		cut:     cut,
		cutDone: make(chan struct{}),
	}
	p.reg.SetGauge("pool_workers", float64(cfg.Workers))
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker(i)
	}
	return p
}

// Enqueue admits a job to the queue. It fails fast with ErrQueueFull
// at the bound and ErrShuttingDown after Close has begun.
func (p *Pool) Enqueue(j *Job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closing {
		return ErrShuttingDown
	}
	select {
	case p.queue <- j:
		p.reg.Inc("runs_submitted_total")
		p.reg.SetGauge("queue_depth", float64(len(p.queue)))
		return nil
	default:
		p.reg.Inc("queue_rejections_total")
		return ErrQueueFull
	}
}

// QueueDepth returns the number of jobs waiting (not running).
func (p *Pool) QueueDepth() int { return len(p.queue) }

// Close shuts the pool down: intake stops, queued jobs are canceled
// immediately, and running jobs may finish until ctx expires, after
// which their contexts are cut (every registered scheme aborts within
// about one device step; custom runners that ignore ctx are
// abandoned). Returns ctx.Err() when the grace period was exhausted,
// nil on a clean drain.
func (p *Pool) Close(ctx context.Context) error {
	p.mu.Lock()
	already := p.closing
	p.closing = true
	p.mu.Unlock()
	if !already {
		close(p.stop)
	drain:
		for {
			select {
			case j := <-p.queue:
				j.Cancel(ErrShuttingDown)
			default:
				break drain
			}
		}
		p.reg.SetGauge("queue_depth", 0)
	}

	idle := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		p.cutAll()
		<-idle
		return ctx.Err()
	}
}

// cutAll cancels every job context and marks the shutdown hard
// deadline, so workers abandon uncooperative runners immediately
// instead of granting the per-job abandonGrace.
func (p *Pool) cutAll() {
	p.cutOnce.Do(func() {
		close(p.cutDone)
		p.cut()
	})
}

func (p *Pool) worker(i int) {
	defer p.wg.Done()
	name := fmt.Sprintf("worker-%d", i)
	for {
		// Prefer stopping over racing the queue once Close has begun.
		select {
		case <-p.stop:
			return
		default:
		}
		select {
		case <-p.stop:
			return
		case j := <-p.queue:
			p.reg.SetGauge("queue_depth", float64(len(p.queue)))
			p.runJob(name, j)
		}
	}
}

// runJob executes one job under its own context and records the
// outcome. If the context dies before the runner returns (a scheme
// that never reports rounds, or a hard wall), the job is finished as
// timed-out/canceled and the runner goroutine is abandoned — its late
// result is discarded by Job.finish's first-writer-wins rule.
func (p *Pool) runJob(worker string, j *Job) {
	ctx := p.base
	var cancel context.CancelFunc
	if p.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, p.cfg.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	if !j.start(cancel) {
		return // canceled while queued
	}
	queueWait := time.Since(j.Created)
	p.reg.Observe("queue_wait_seconds", queueWait.Seconds())
	p.reg.AddGauge("jobs_running", 1)
	defer p.reg.AddGauge("jobs_running", -1)
	p.reg.Inc("runs_started_total")
	p.reg.Inc("runs_scheme_" + metrics.SanitizeName(j.Scheme))

	// The job's root span: every span the runner opens under ctx —
	// including the dispatcher's remote attempts and the worker-side
	// spans they ship back — stitches under this trace.
	ctx, span := trace.Start(ctx, p.tracer, "serve.job")
	defer span.End()
	span.SetAttr("jobID", j.ID)
	span.SetAttr("scheme", j.Scheme)
	log := p.log.With("jobID", j.ID, "scheme", j.Scheme, "traceID", span.Context().TraceID)
	log.Info("job started", "worker", worker, "queueWaitSec", queueWait.Seconds())

	type outcome struct {
		res *hadfl.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := p.cfg.Runner(ctx, j.Scheme, j.Options, j.publishRound)
		ch <- outcome{res, err}
	}()

	finishErr := func(cause error, path ...string) {
		jerr := &JobError{
			JobID: j.ID, Scheme: j.Scheme, Options: j.Options,
			Path:     append([]string{"pool", worker}, path...),
			Err:      cause,
			Duration: j.RunningFor(),
			Timeout:  errors.Is(cause, context.DeadlineExceeded),
			Canceled: errors.Is(cause, context.Canceled),
		}
		j.finish(nil, jerr)
		p.reg.Observe("run_duration_seconds", jerr.Duration.Seconds())
		span.SetError(cause)
		log := log
		// A dispatched failure logs its journey, not just the flat cause:
		// which workers were tried (hedges included), how many attempts,
		// and how far the round stream got.
		var derr *dispatch.DispatchError
		if errors.As(cause, &derr) {
			log = log.With("dispatcher", derr.Dispatcher, "dispatchWorkers", derr.Workers(),
				"dispatchAttempts", len(derr.Attempts), "lastRound", derr.LastRound,
				"localFallback", derr.Fallback)
		}
		switch {
		case jerr.Timeout:
			p.reg.Inc("runs_timeout_total")
			log.Warn("job timed out", "durationSec", jerr.Duration.Seconds(), "path", jerr.Path)
		case jerr.Canceled:
			p.reg.Inc("runs_canceled_total")
			log.Info("job canceled", "durationSec", jerr.Duration.Seconds())
		default:
			p.reg.Inc("runs_failed_total")
			log.Error("job failed", "err", cause, "durationSec", jerr.Duration.Seconds())
		}
	}
	finishOK := func(res *hadfl.Result) {
		j.finish(res, nil)
		dur := j.RunningFor()
		p.reg.Inc("runs_completed_total")
		p.reg.Observe("run_duration_seconds", dur.Seconds())
		p.recordEval(res)
		rounds := 0
		if res != nil {
			rounds = res.Rounds
		}
		log.Info("job completed", "durationSec", dur.Seconds(), "rounds", rounds)
	}

	select {
	case o := <-ch:
		if o.err != nil {
			finishErr(o.err, "run")
			return
		}
		finishOK(o.res)
	case <-ctx.Done():
		// Registered schemes honor ctx within one device step, so the
		// runner's own ctx.Err() arrives almost immediately — wait
		// briefly for it and record a clean cooperative abort. Only a
		// custom runner that ignores ctx is abandoned — immediately
		// when the pool is past its shutdown grace (cutDone), so Close
		// never overruns its caller's deadline by the abandon wait.
		select {
		case o := <-ch:
			if o.err == nil {
				// Finished despite the cut — a photo-finish; keep it.
				finishOK(o.res)
				return
			}
			finishErr(o.err, "run")
		case <-time.After(abandonGrace):
			finishErr(ctx.Err(), "run", "abandoned")
		case <-p.cutDone:
			finishErr(ctx.Err(), "run", "abandoned")
		}
	}
}

// recordEval accumulates a completed run's evaluation-engine telemetry:
// how many scoring batches its evaluations forwarded and the wall-clock
// seconds they took. Cache hits re-run nothing, so they add nothing.
func (p *Pool) recordEval(res *hadfl.Result) {
	if res == nil {
		return
	}
	p.reg.Add("eval_batches_total", res.EvalBatches)
	p.reg.AddGauge("eval_seconds_total", res.EvalSeconds)
	p.reg.Observe("run_eval_seconds", res.EvalSeconds)
}

// abandonGrace is how long a worker waits, after a job's context dies,
// for the runner to return cooperatively before abandoning its
// goroutine. One device step is milliseconds; a second is generous.
const abandonGrace = time.Second
