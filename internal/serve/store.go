package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hadfl"
	"hadfl/internal/coordinator"
	"hadfl/internal/metrics"
)

// ResultStore persists completed runs across restarts, keyed by their
// fingerprint (the job ID). Each run becomes two files in the store
// directory:
//
//	<fp>.json   — the run's summary and the request that produced it
//	<fp>.model  — the final parameter vector, in the
//	              coordinator.ModelStore snapshot format
//
// On boot the server rehydrates every stored run into its result cache
// as an already-Done job, so identical submissions are served without
// retraining even after a restart. The training curve is not
// persisted: a rehydrated summary reports CurvePoints 0 and streams no
// round events. Cache eviction does not remove store files; an evicted
// result reappears on the next boot.
type ResultStore struct {
	dir string
	reg *metrics.Registry
}

// storedRun is the JSON sidecar: enough to rebuild the job's identity
// (scheme + options, revalidated against the fingerprint on load) and
// its summary without the model vector.
type storedRun struct {
	ID          string     `json:"id"`
	Scheme      string     `json:"scheme"`
	Options     RunOptions `json:"options"`
	Accuracy    float64    `json:"accuracy"`
	Time        float64    `json:"time"`
	Rounds      int        `json:"rounds"`
	DeviceBytes int64      `json:"deviceBytes"`
	ServerBytes int64      `json:"serverBytes"`
	Finished    time.Time  `json:"finished"`
}

// NewResultStore opens (creating if needed) a store directory.
func NewResultStore(dir string, reg *metrics.Registry) (*ResultStore, error) {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: result store: %w", err)
	}
	return &ResultStore{dir: dir, reg: reg}, nil
}

func (st *ResultStore) summaryPath(id string) string {
	return filepath.Join(st.dir, id+".json")
}

func (st *ResultStore) modelPath(id string) string {
	return filepath.Join(st.dir, id+".model")
}

// Save persists a completed run. Both files are written via
// tmp+rename, and the model lands before the summary, so a crash at
// any point leaves either no summary (orphaned model, ignored by
// Load) or a complete, untorn pair — never a summary pointing at a
// torn model, even when re-Saving over an earlier entry.
func (st *ResultStore) Save(j *Job, res *hadfl.Result) error {
	ms := coordinator.NewModelStore(1)
	ms.Save(res.Rounds, res.FinalParams)
	modelTmp := st.modelPath(j.ID) + ".tmp"
	if err := ms.WriteFile(modelTmp); err != nil {
		st.reg.Inc("store_errors_total")
		return err
	}
	if err := os.Rename(modelTmp, st.modelPath(j.ID)); err != nil {
		st.reg.Inc("store_errors_total")
		return err
	}
	_, finished := j.Times()
	sr := storedRun{
		ID:          j.ID,
		Scheme:      j.Scheme,
		Options:     runOptionsFrom(j.Options),
		Accuracy:    res.Accuracy,
		Time:        res.Time,
		Rounds:      res.Rounds,
		DeviceBytes: res.DeviceBytes,
		ServerBytes: res.ServerBytes,
		Finished:    finished,
	}
	data, err := json.Marshal(sr)
	if err != nil {
		st.reg.Inc("store_errors_total")
		return err
	}
	// Write-then-rename keeps a concurrent boot (or a crash mid-write)
	// from seeing a torn summary.
	tmp := st.summaryPath(j.ID) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		st.reg.Inc("store_errors_total")
		return err
	}
	if err := os.Rename(tmp, st.summaryPath(j.ID)); err != nil {
		st.reg.Inc("store_errors_total")
		return err
	}
	st.reg.Inc("store_saved_total")
	return nil
}

// Load rehydrates every persisted run as a terminal Done job. Corrupt
// or stale entries (unparsable JSON, missing model file, a fingerprint
// that no longer matches — e.g. after a canonicalization change or for
// a scheme no longer registered) are skipped and counted on
// store_skipped_total, never fatal: the worst outcome of a bad store
// entry is a retrain.
func (st *ResultStore) Load() []*Job {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		st.reg.Inc("store_errors_total")
		return nil
	}
	var jobs []*Job
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		j, ok := st.loadOne(filepath.Join(st.dir, e.Name()))
		if !ok {
			st.reg.Inc("store_skipped_total")
			continue
		}
		jobs = append(jobs, j)
	}
	st.reg.SetGauge("store_rehydrated", float64(len(jobs)))
	return jobs
}

func (st *ResultStore) loadOne(path string) (*Job, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var sr storedRun
	if err := json.Unmarshal(data, &sr); err != nil {
		return nil, false
	}
	opts := sr.Options.toOptions()
	// The fingerprint is the cache key: recompute it so a stale or
	// tampered entry cannot shadow a different run's slot.
	fp, err := hadfl.Fingerprint(sr.Scheme, opts)
	if err != nil || fp != sr.ID {
		return nil, false
	}
	rounds, params, err := coordinator.ReadSnapshotFile(st.modelPath(sr.ID))
	if err != nil || rounds != sr.Rounds {
		return nil, false
	}
	j := newJob(sr.ID, sr.Scheme, opts)
	j.finish(&hadfl.Result{
		Scheme:      sr.Scheme,
		Accuracy:    sr.Accuracy,
		Time:        sr.Time,
		Rounds:      sr.Rounds,
		DeviceBytes: sr.DeviceBytes,
		ServerBytes: sr.ServerBytes,
		FinalParams: params,
	}, nil)
	if !sr.Finished.IsZero() {
		j.mu.Lock()
		j.finished = sr.Finished
		j.mu.Unlock()
	}
	return j, true
}
