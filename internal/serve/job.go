package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"hadfl"
)

// State is a job's position in its lifecycle.
type State string

// Job lifecycle: Queued → Running → one of {Done, Failed, Canceled}.
// A queued job may jump straight to Canceled without running.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Round is the wire form of a per-round progress update, mirroring
// hadfl.RoundUpdate with the API's camelCase JSON convention.
type Round struct {
	Round    int     `json:"round"`
	Time     float64 `json:"time"`
	Loss     float64 `json:"loss"`
	Accuracy float64 `json:"accuracy"`
	Selected []int   `json:"selected,omitempty"`
	Bypassed int     `json:"bypassed,omitempty"`
}

// Event is one entry in a job's progress stream: either a state
// transition or a per-round training update.
type Event struct {
	Type  string `json:"type"` // "state" or "round"
	State State  `json:"state,omitempty"`
	Round *Round `json:"round,omitempty"`
}

// subBuffer is each subscriber's channel capacity; a subscriber that
// falls further behind than this skips round events (state events are
// re-derivable from GET /runs/{id}).
const subBuffer = 64

// Job is one unit of work flowing through the service: a scheme +
// options pair, content-addressed by ID (the hadfl.Fingerprint). It
// carries its own event log so any number of subscribers can replay
// and follow progress.
type Job struct {
	ID      string
	Scheme  string
	Options hadfl.Options
	Created time.Time

	mu       sync.Mutex
	state    State
	started  time.Time
	finished time.Time
	result   *hadfl.Result
	jerr     *JobError
	cancel   context.CancelFunc // installed by the pool while running
	done     chan struct{}
	events   []Event
	subs     map[int]chan Event
	nextSub  int

	// enc caches the job's terminal JobStatus wire bytes (index:
	// withCurve), written at most once per slot by Server.statusBytes.
	// A terminal job is immutable, so status polls and cache-hit
	// submissions write these stored bytes instead of re-marshaling the
	// same JSON on every request.
	enc [2]atomic.Pointer[[]byte]
}

func newJob(id, scheme string, opts hadfl.Options) *Job {
	j := &Job{
		ID:      id,
		Scheme:  scheme,
		Options: opts,
		Created: time.Now(),
		state:   StateQueued,
		done:    make(chan struct{}),
		subs:    make(map[int]chan Event),
	}
	j.events = append(j.events, Event{Type: "state", State: StateQueued})
	return j
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the run result and error; both are nil until the job
// is terminal, and exactly one is non-nil afterwards.
func (j *Job) Result() (*hadfl.Result, *JobError) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.jerr
}

// Times returns the started/finished timestamps (zero until reached).
func (j *Job) Times() (started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.started, j.finished
}

// RunningFor returns how long the job has been executing: zero while
// queued, live duration while running, final duration once terminal.
func (j *Job) RunningFor() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.runningForLocked()
}

func (j *Job) runningForLocked() time.Duration {
	switch {
	case j.started.IsZero():
		return 0
	case j.finished.IsZero():
		return time.Since(j.started)
	default:
		return j.finished.Sub(j.started)
	}
}

// jobView is a consistent point-in-time copy of a job's mutable state,
// taken under one mutex hold so a concurrently finishing job cannot
// yield a torn read (e.g. state "running" next to a final result).
type jobView struct {
	state    State
	started  time.Time
	finished time.Time
	running  time.Duration
	result   *hadfl.Result
	jerr     *JobError
}

func (j *Job) snapshot() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobView{
		state:    j.state,
		started:  j.started,
		finished: j.finished,
		running:  j.runningForLocked(),
		result:   j.result,
		jerr:     j.jerr,
	}
}

// start transitions Queued → Running and installs the cancel hook.
// It returns false if the job was canceled while still queued, in
// which case the worker must skip it.
func (j *Job) start(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.publishLocked(Event{Type: "state", State: StateRunning})
	return true
}

// publishRound fans a per-round update out to subscribers and the
// replay log.
func (j *Job) publishRound(u hadfl.RoundUpdate) {
	r := &Round{
		Round: u.Round, Time: u.Time, Loss: u.Loss,
		Accuracy: u.Accuracy, Selected: u.Selected, Bypassed: u.Bypassed,
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.publishLocked(Event{Type: "round", Round: r})
}

// finish moves the job to a terminal state. Exactly one of res / jerr
// must be non-nil; the terminal state derives from the error's flags.
// Later calls are no-ops, so an abandoned runner goroutine delivering
// a stale result after a timeout cannot clobber the recorded outcome.
func (j *Job) finish(res *hadfl.Result, jerr *JobError) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.result, j.jerr = res, jerr
	switch {
	case jerr == nil:
		j.state = StateDone
	case jerr.Canceled:
		j.state = StateCanceled
	default:
		j.state = StateFailed
	}
	j.finished = time.Now()
	j.publishLocked(Event{Type: "state", State: j.state})
	for id, ch := range j.subs {
		close(ch)
		delete(j.subs, id)
	}
	close(j.done)
}

// Cancel aborts the job: a queued job becomes Canceled immediately; a
// running job has its context cut (the worker records the terminal
// state). Canceling a terminal job is a no-op.
func (j *Job) Cancel(cause error) {
	j.mu.Lock()
	if j.state == StateQueued {
		j.mu.Unlock()
		j.finish(nil, &JobError{
			JobID: j.ID, Scheme: j.Scheme, Options: j.Options,
			Path: []string{"queue"}, Err: cause, Canceled: true,
		})
		return
	}
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Subscribe returns a replay of all events so far plus a live channel
// for subsequent ones. The channel is closed when the job finishes or
// when the returned cancel function runs. For an already-terminal job
// the replay is complete and the channel is closed immediately.
func (j *Job) Subscribe() (replay []Event, live <-chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]Event(nil), j.events...)
	ch := make(chan Event, subBuffer)
	if j.state.Terminal() {
		close(ch)
		return replay, ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	return replay, ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if ch, ok := j.subs[id]; ok {
			close(ch)
			delete(j.subs, id)
		}
	}
}

// publishLocked appends to the replay log and fans out without
// blocking: a subscriber more than subBuffer events behind misses the
// event. Callers hold j.mu.
func (j *Job) publishLocked(e Event) {
	j.events = append(j.events, e)
	for _, ch := range j.subs {
		select {
		case ch <- e:
		default:
		}
	}
}
