package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hadfl"
	"hadfl/internal/serve/dispatch"
)

// TestJobStatusCarriesDispatchJourney: a failed dispatched run must be
// debuggable from the POST /runs status payload alone — the dispatcher
// instance, every worker attempt (hedges marked, durations and causes
// included), the last streamed round and the fallback flag all ride on
// the wire.
func TestJobStatusCarriesDispatchJourney(t *testing.T) {
	derr := &dispatch.DispatchError{
		Dispatcher: "cafe0123",
		JobID:      "deadbeef",
		Scheme:     hadfl.SchemeHADFL,
		Attempts: []dispatch.DispatchAttempt{
			{Worker: 1, Duration: 120 * time.Millisecond, Err: "worker 1 lost mid-run"},
			{Worker: 2, Hedge: true, Duration: 80 * time.Millisecond, Err: "context canceled"},
		},
		LastRound: 3,
		Fallback:  true,
		Err:       errors.New("local fallback exploded"),
	}
	srv := mustNew(t, Config{
		Workers: 1,
		Runner: func(context.Context, string, hadfl.Options, func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
			return nil, derr
		},
	})
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, st := postRun(t, ts.URL, `{"scheme":"hadfl","options":{"powers":[2,1],"targetEpochs":2,"seed":7}}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /runs = %d", code)
	}
	st = waitDone(t, ts.URL, st.ID)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want %s", st.State, StateFailed)
	}
	if st.Dispatch == nil {
		t.Fatalf("terminal status has no dispatch journey: %+v", st)
	}
	ds := st.Dispatch
	if ds.Dispatcher != "cafe0123" || ds.LastRound != 3 || !ds.LocalFallback {
		t.Fatalf("journey header wrong: %+v", ds)
	}
	if len(ds.Attempts) != 2 {
		t.Fatalf("attempts = %+v, want 2", ds.Attempts)
	}
	if a := ds.Attempts[0]; a.Worker != 1 || a.Hedge || a.DurationSec != 0.12 || a.Error != "worker 1 lost mid-run" {
		t.Fatalf("attempt 0 wrong: %+v", a)
	}
	if a := ds.Attempts[1]; a.Worker != 2 || !a.Hedge || a.DurationSec != 0.08 || a.Error != "context canceled" {
		t.Fatalf("attempt 1 wrong: %+v", a)
	}
	// The flat error string carries the journey summary too, for
	// clients that only log Error.
	for _, frag := range []string{"cafe0123", "tried workers [1 2(hedge)]", "fell back to local", "local fallback exploded"} {
		if !strings.Contains(st.Error, frag) {
			t.Fatalf("status error %q missing %q", st.Error, frag)
		}
	}
}

// TestJobStatusOmitsDispatchForPlainFailures: non-dispatch failures
// must not grow a dispatch block.
func TestJobStatusOmitsDispatchForPlainFailures(t *testing.T) {
	srv := mustNew(t, Config{
		Workers: 1,
		Runner: func(context.Context, string, hadfl.Options, func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
			return nil, errors.New("plain boom")
		},
	})
	defer srv.Close(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, st := postRun(t, ts.URL, `{"scheme":"hadfl","options":{"powers":[2,1],"targetEpochs":2,"seed":8}}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /runs = %d", code)
	}
	st = waitDone(t, ts.URL, st.ID)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want %s", st.State, StateFailed)
	}
	if st.Dispatch != nil {
		t.Fatalf("plain failure grew a dispatch journey: %+v", st.Dispatch)
	}
}
