package serve

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"hadfl"
)

func TestJobErrorMessageVariants(t *testing.T) {
	base := JobError{
		JobID:    "abcdef0123456789",
		Scheme:   hadfl.SchemeHADFL,
		Options:  hadfl.Options{Seed: 7},
		Path:     []string{"pool", "worker-1", "run"},
		Err:      errors.New("boom"),
		Duration: 1500 * time.Millisecond,
	}
	plain := base
	if msg := plain.Error(); !strings.Contains(msg, "failed after 1.5s") ||
		!strings.Contains(msg, "abcdef012345") ||
		!strings.Contains(msg, "pool→worker-1→run") {
		t.Fatalf("message %q", msg)
	}
	timeout := base
	timeout.Timeout = true
	if msg := timeout.Error(); !strings.Contains(msg, "timed out") {
		t.Fatalf("timeout message %q", msg)
	}
	canceled := base
	canceled.Canceled = true
	if msg := canceled.Error(); !strings.Contains(msg, "canceled") {
		t.Fatalf("canceled message %q", msg)
	}
}

func TestJobErrorUnwrapAndFlags(t *testing.T) {
	cause := context.DeadlineExceeded
	e := &JobError{Err: cause}
	if !errors.Is(e, context.DeadlineExceeded) {
		t.Fatal("Unwrap broken")
	}
	// Flag set explicitly OR inferable from the cause.
	if !e.IsTimeout() {
		t.Fatal("deadline cause not detected as timeout")
	}
	if e.IsCanceled() {
		t.Fatal("deadline detected as canceled")
	}
	c := &JobError{Err: context.Canceled}
	if !c.IsCanceled() || c.IsTimeout() {
		t.Fatal("canceled cause misclassified")
	}
	flagged := &JobError{Err: errors.New("x"), Timeout: true}
	if !flagged.IsTimeout() {
		t.Fatal("explicit timeout flag ignored")
	}
}
