package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"hadfl"
	"hadfl/internal/metrics"
)

// stubRunner returns a Runner that reports into the given counters and
// blocks until release is closed (nil release = return immediately).
func stubRunner(running, peak *atomic.Int64, release <-chan struct{}) Runner {
	return func(ctx context.Context, _ string, _ hadfl.Options, _ func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
		if running != nil {
			n := running.Add(1)
			defer running.Add(-1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
		}
		if release != nil {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return &hadfl.Result{Scheme: "stub", Accuracy: 1}, nil
	}
}

func waitTerminal(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s stuck in state %v", j.ID, j.State())
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	var running, peak atomic.Int64
	release := make(chan struct{})
	p := NewPool(PoolConfig{Workers: 2, QueueDepth: 8, Runner: stubRunner(&running, &peak, release)})
	defer p.Close(context.Background())

	var jobs []*Job
	for i := 0; i < 6; i++ {
		j := newJob(fmt.Sprintf("job-%d", i), hadfl.SchemeHADFL, hadfl.Options{Seed: int64(i)})
		if err := p.Enqueue(j); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	time.Sleep(50 * time.Millisecond) // let both workers pick up work
	close(release)
	for _, j := range jobs {
		waitTerminal(t, j)
		if j.State() != StateDone {
			t.Fatalf("job %s state %v", j.ID, j.State())
		}
	}
	if got := peak.Load(); got > 2 {
		t.Fatalf("peak concurrency %d with 2 workers", got)
	}
}

func TestPoolQueueFull(t *testing.T) {
	release := make(chan struct{})
	p := NewPool(PoolConfig{Workers: 1, QueueDepth: 1, Runner: stubRunner(nil, nil, release)})
	defer p.Close(context.Background())

	a := newJob("a", hadfl.SchemeHADFL, hadfl.Options{})
	if err := p.Enqueue(a); err != nil {
		t.Fatal(err)
	}
	// Wait until the single worker holds job a, then fill the queue.
	deadline := time.Now().Add(5 * time.Second)
	for a.State() == StateQueued && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	b := newJob("b", hadfl.SchemeHADFL, hadfl.Options{})
	if err := p.Enqueue(b); err != nil {
		t.Fatal(err)
	}
	c := newJob("c", hadfl.SchemeHADFL, hadfl.Options{})
	if err := p.Enqueue(c); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	close(release)
	waitTerminal(t, a)
	waitTerminal(t, b)
}

func TestPoolJobTimeoutAbandonsCallbackFreeRun(t *testing.T) {
	reg := metrics.NewRegistry()
	// The runner ignores rounds and only honors ctx via the stub's
	// select — emulating a baseline scheme wrapped by DefaultRunner's
	// goroutine abandonment.
	blocked := make(chan struct{}) // never closed
	p := NewPool(PoolConfig{Workers: 1, JobTimeout: 50 * time.Millisecond, Metrics: reg,
		Runner: func(ctx context.Context, _ string, _ hadfl.Options, _ func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
			<-blocked
			return nil, nil
		}})
	defer p.Close(context.Background())

	j := newJob("t", hadfl.SchemeDistributed, hadfl.Options{})
	if err := p.Enqueue(j); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if j.State() != StateFailed {
		t.Fatalf("state %v", j.State())
	}
	_, jerr := j.Result()
	if jerr == nil || !jerr.IsTimeout() {
		t.Fatalf("error %+v", jerr)
	}
	if jerr.Duration <= 0 || len(jerr.Path) == 0 {
		t.Fatalf("error lacks context: %+v", jerr)
	}
	if reg.Counter("runs_timeout_total") != 1 {
		t.Fatalf("timeout counter %d", reg.Counter("runs_timeout_total"))
	}
}

func TestPoolCancelRunningJob(t *testing.T) {
	release := make(chan struct{}) // never closed: job must die to cancel
	p := NewPool(PoolConfig{Workers: 1, Runner: stubRunner(nil, nil, release)})
	defer p.Close(context.Background())

	j := newJob("c", hadfl.SchemeHADFL, hadfl.Options{})
	if err := p.Enqueue(j); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for j.State() == StateQueued && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	j.Cancel(errors.New("client gave up"))
	waitTerminal(t, j)
	if j.State() != StateCanceled {
		t.Fatalf("state %v", j.State())
	}
	_, jerr := j.Result()
	if jerr == nil || !jerr.IsCanceled() {
		t.Fatalf("error %+v", jerr)
	}
}

func TestPoolGracefulShutdown(t *testing.T) {
	release := make(chan struct{}) // never closed: running job outlives grace
	p := NewPool(PoolConfig{Workers: 1, QueueDepth: 4, Runner: stubRunner(nil, nil, release)})

	running := newJob("r", hadfl.SchemeHADFL, hadfl.Options{})
	if err := p.Enqueue(running); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for running.State() == StateQueued && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	queued := newJob("q", hadfl.SchemeHADFL, hadfl.Options{})
	if err := p.Enqueue(queued); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := p.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close = %v, want deadline exceeded", err)
	}
	waitTerminal(t, queued)
	waitTerminal(t, running)
	if queued.State() != StateCanceled {
		t.Fatalf("queued job state %v", queued.State())
	}
	if s := running.State(); s != StateCanceled && s != StateFailed {
		t.Fatalf("running job state %v", s)
	}
	// The pool rejects new work after Close.
	if err := p.Enqueue(newJob("late", hadfl.SchemeHADFL, hadfl.Options{})); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-close enqueue = %v", err)
	}
}

func TestDefaultRunnerCooperativeCancellation(t *testing.T) {
	// A long HADFL run aborts at the first synchronization round after
	// its deadline: the sentinel panic unwinds RunScheme cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := DefaultRunner(ctx, hadfl.SchemeHADFL,
		hadfl.Options{Powers: []float64{2, 1}, TargetEpochs: 5000, Seed: 1}, nil)
	if res != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("res %v err %v", res, err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cooperative abort took %v", elapsed)
	}
}

func TestDefaultRunnerCancelsBaselineSchemes(t *testing.T) {
	// Regression: baseline schemes used to ignore OnRound, so a huge
	// epoch budget produced an unkillable abandoned goroutine. They now
	// report per round / per eval interval and abort there.
	for _, scheme := range []string{hadfl.SchemeFedAvg, hadfl.SchemeDistributed} {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
		start := time.Now()
		res, err := DefaultRunner(ctx, scheme,
			hadfl.Options{Powers: []float64{2, 1}, TargetEpochs: 1e9, Seed: 1}, nil)
		cancel()
		if res != nil || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: res %v err %v", scheme, res, err)
		}
		if elapsed := time.Since(start); elapsed > 30*time.Second {
			t.Fatalf("%s: cooperative abort took %v", scheme, elapsed)
		}
	}
}

func TestDefaultRunnerPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DefaultRunner(ctx, hadfl.SchemeHADFL, hadfl.Options{}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestDefaultRunnerRunsTinyJob(t *testing.T) {
	if testing.Short() {
		t.Skip("real training run in -short mode")
	}
	rounds := 0
	res, err := DefaultRunner(context.Background(), hadfl.SchemeHADFL,
		hadfl.Options{Powers: []float64{2, 1}, TargetEpochs: 3, Seed: 2},
		func(hadfl.RoundUpdate) { rounds++ })
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 || rounds != res.Rounds {
		t.Fatalf("rounds %d, callback saw %d", res.Rounds, rounds)
	}
}
