package dispatch

// Dispatch-overhead benchmarks: the same tiny run executed straight
// through the scheme registry (the local pool's path) and through the
// full simnet dispatch round trip (request frame → worker execution →
// round/result frames). The difference is the protocol's per-job cost:
// encode/decode, byte-packing and channel hops — there is no socket in
// the loop. `make bench-dispatch` snapshots both into
// BENCH_dispatch.json.

import (
	"context"
	"testing"
	"time"

	"hadfl"
	"hadfl/internal/p2p"
)

func benchOpts() hadfl.Options {
	return hadfl.Options{Powers: []float64{2, 1}, TargetEpochs: 1, Seed: 1}
}

func BenchmarkDispatchLocal(b *testing.B) {
	opts := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := localRunner(context.Background(), hadfl.SchemeHADFL, opts, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireCodec measures bytes-on-wire per parameter codec for
// one reference job: the tiny benchmark run's trained parameter vector
// encoded against its own initial model (the reference both ends of
// the dispatch wire derive independently). wire-B vs raw-B is what the
// codec buys; `make bench-wire` snapshots every codec's row into
// BENCH_wire.json.
func BenchmarkWireCodec(b *testing.B) {
	opts := benchOpts()
	res, err := localRunner(context.Background(), hadfl.SchemeHADFL, opts, nil)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := hadfl.InitialParams(opts)
	if err != nil {
		b.Fatal(err)
	}
	raw := float64(8 * len(res.FinalParams))
	for _, name := range p2p.ParamCodecNames() {
		codec, _ := p2p.ParamCodecByName(name)
		b.Run(name, func(b *testing.B) {
			var r []float64
			if codec.UsesRef() {
				r = ref
			}
			var wire int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				section, _ := codec.Encode(res.FinalParams, r)
				if _, err := codec.Decode(section, r, len(res.FinalParams)); err != nil {
					b.Fatal(err)
				}
				wire = len(section)
			}
			b.ReportMetric(float64(wire), "wire-B")
			b.ReportMetric(raw, "raw-B")
			b.ReportMetric(float64(wire)/raw, "wire-ratio")
		})
	}
}

func BenchmarkDispatchSimnet(b *testing.B) {
	hub := p2p.NewChanHub()
	w, err := NewWorker(WorkerConfig{Transport: hub.Node(1), RecvTimeout: 5 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = w.Serve(ctx) }()
	d, err := New(Config{
		Transport:      hub.Node(0),
		Workers:        []int{1},
		HeartbeatEvery: 20 * time.Millisecond,
		RecvTimeout:    5 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	readyCtx, cancelReady := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelReady()
	if err := d.WaitReady(readyCtx, 1); err != nil {
		b.Fatal(err)
	}
	opts := benchOpts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Run(context.Background(), hadfl.SchemeHADFL, opts, nil); err != nil {
			b.Fatal(err)
		}
	}
}
