package dispatch

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"hadfl"
	"hadfl/internal/metrics"
	"hadfl/internal/p2p"
	"hadfl/internal/trace"
)

// Config assembles a Dispatcher.
type Config struct {
	// Transport is the dispatcher's endpoint on the dispatch network.
	Transport p2p.Transport
	// Workers lists the worker node ids reachable over the transport.
	Workers []int
	// ReplyAddr, when non-empty, is this dispatcher's dial-back address,
	// advertised to workers in hello frames (TCP transports); id-routed
	// transports leave it empty.
	ReplyAddr string
	// Local executes runs when no live worker can (the fallback path).
	// Default: the scheme registry in-process, so a dispatcher with no
	// reachable workers behaves exactly like the plain local pool.
	Local Runner
	// Codec is the preferred parameter wire codec for dispatched
	// results (see p2p.ParamCodecNames). A worker that does not
	// advertise it gets raw64; a worker advertising nothing (legacy)
	// gets the inline-JSON exchange. Default raw64 — bit-exact, so the
	// byte-determinism contract is untouched by default.
	Codec string
	// HeartbeatEvery is the liveness probe period. Default 500ms.
	HeartbeatEvery time.Duration
	// LivenessGrace is how long a worker may stay silent before it is
	// marked down (in-flight runs on it are retried elsewhere).
	// Default 4×HeartbeatEvery.
	LivenessGrace time.Duration
	// CancelGrace is how long, after sending a cancel frame, the
	// dispatcher waits for the worker's cooperative abort before
	// returning ctx.Err() without it. Default 2s.
	CancelGrace time.Duration
	// RecvTimeout is the receive loop's poll granularity. Default 100ms.
	RecvTimeout time.Duration
	// BreakerThreshold is how many consecutive transient failures open a
	// worker's circuit breaker (claimWorker then skips it until a
	// half-open probe succeeds). 0 = default (5); negative disables the
	// breaker entirely.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker stays open before a
	// liveness-proving frame (heartbeat ack, hello) half-opens it and
	// one trial job is admitted. Default 5s.
	BreakerCooldown time.Duration
	// RetryBackoff is the base delay between retry attempts of one job
	// after a transient worker fault; each retry doubles the ceiling and
	// the actual delay is full-jitter uniform in [0, ceiling). Busy
	// rejections skip the backoff (the worker answered promptly).
	// 0 = default (50ms); negative disables backoff.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential backoff ceiling. Default 2s.
	RetryBackoffMax time.Duration
	// HedgeAfter, when positive, arms hedged dispatch: an attempt still
	// running after this delay launches the same fingerprinted run on a
	// second live worker and the first terminal result wins (runs are
	// byte-deterministic, so the duplicate is free correctness-wise).
	// Once dispatch_rtt_seconds has enough observations the delay
	// tracks that histogram's HedgeQuantile instead. 0 disables hedging.
	HedgeAfter time.Duration
	// HedgeQuantile is the dispatch_rtt_seconds quantile that seeds the
	// hedge delay once the histogram is warm. Default 0.95.
	HedgeQuantile float64
	// Metrics receives dispatch telemetry (dispatch_* series). Pass the
	// serve registry to surface them on /stats. Default: private.
	Metrics *metrics.Registry
	// Tracer receives dispatch spans — including the worker-side spans
	// that terminal frames ship home. Pass the serve tracer so a
	// dispatched job's remote spans appear on GET /debug/traces under the
	// job's own trace. Default: none.
	Tracer *trace.Tracer
	// Logger receives worker liveness and retry events. Default: discard.
	Logger *slog.Logger
}

// workerState is the dispatcher's view of one worker.
type workerState struct {
	id       int
	alive    bool
	seen     time.Time // last frame proving a compatible worker
	capacity int       // from its hello ack; 0 = unknown (treated as 1)
	codecs   []string  // param codecs from its hello ack; empty = legacy
	inflight int
	probing  bool // a heartbeat/hello send is in flight to it

	// Circuit-breaker state (see resilience.go): consecutive transient
	// faults open the breaker, the cooldown plus a liveness-proving
	// frame half-opens it, and one trial job decides reclosure.
	breaker  breakerState
	failures int       // consecutive transient faults while closed
	openedAt time.Time // when the breaker last opened
	trial    bool      // a half-open trial job is in flight
}

// outcome is a terminal frame routed to a waiting call. corrupt marks
// a frame that failed to decode: it proves nothing about the run, so
// the attempt is retried like a lost worker rather than failing the
// job. paramData is the split body's still-encoded parameter section;
// the waiting call decodes it in finish() so a multi-megabyte (or
// reference-deriving) decode never stalls recvLoop's frame routing.
type outcome struct {
	res       *resultBody
	errb      *errorBody
	corrupt   bool
	paramData []byte
}

// call is one in-flight remote run awaiting frames.
type call struct {
	worker   int
	rounds   chan roundBody // telemetry; drop-on-full, never blocks routing
	done     chan outcome   // exactly one terminal delivery
	down     chan struct{}  // closed when the worker is marked down
	downOnce sync.Once
}

// Dispatcher load-balances serve jobs across remote workers: it
// registers and heartbeats them, ships requests, streams round
// telemetry to the job's callback, propagates cancellation, retries
// transient failures on another worker (safe — runs are deterministic)
// and falls back to local execution when no worker is live. Its Run
// method matches the serve pool's Runner seam.
type Dispatcher struct {
	cfg    Config
	reg    *metrics.Registry
	tracer *trace.Tracer
	log    *slog.Logger
	local  Runner
	// token is this instance's random identity, stamped on every
	// request and cancel so workers can tell apart dispatchers whose
	// node ids and sequence numbers coincide (every hadfl-serve
	// restarts at id 0, seq 1).
	token string

	// Injected clock and waiters (see resilience.go): production wires
	// the wall clock; tests substitute deterministic versions so
	// breaker, backoff and hedge schedules run without sleeping. The
	// walltime lint analyzer enforces that this package never calls
	// time.Now / time.Sleep directly.
	now    func() time.Time
	sleep  func(ctx context.Context, d time.Duration) bool
	jitter func(max time.Duration) time.Duration

	mu      sync.Mutex
	workers map[int]*workerState
	pending map[int]*call
	nextSeq int

	// chunks holds partially reassembled terminal-body streams, keyed by
	// sender and sequence. Only recvLoop touches the map, so it needs no
	// lock (addChunk takes d.mu just to consult pending); entries retire
	// with their terminal frame, and addChunk sweeps any left behind by
	// calls that were retried away mid-stream.
	chunks map[chunkKey]*p2p.ChunkStream

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New starts a dispatcher over cfg.Transport: hellos go out to every
// configured worker immediately, heartbeats keep their liveness fresh,
// and Run can be called as soon as it returns (runs beat workers'
// registration to the local fallback; WaitReady avoids that on boot).
func New(cfg Config) (*Dispatcher, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("dispatch: dispatcher needs a transport")
	}
	if cfg.Local == nil {
		cfg.Local = localRunner
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 500 * time.Millisecond
	}
	if cfg.LivenessGrace <= 0 {
		cfg.LivenessGrace = 4 * cfg.HeartbeatEvery
	}
	if cfg.CancelGrace <= 0 {
		cfg.CancelGrace = 2 * time.Second
	}
	if cfg.RecvTimeout <= 0 {
		cfg.RecvTimeout = 100 * time.Millisecond
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = trace.NopLogger()
	}
	if cfg.Codec == "" {
		cfg.Codec = p2p.ParamCodecRaw64
	} else if _, ok := p2p.ParamCodecByName(cfg.Codec); !ok {
		return nil, fmt.Errorf("dispatch: unknown param codec %q (have %v)", cfg.Codec, p2p.ParamCodecNames())
	}
	// Resilience knobs: zero means default, negative means disabled
	// (normalized to 0 here so the rest of the code tests > 0).
	switch {
	case cfg.BreakerThreshold == 0:
		cfg.BreakerThreshold = defaultBreakerThreshold
	case cfg.BreakerThreshold < 0:
		cfg.BreakerThreshold = 0
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = defaultBreakerCooldown
	}
	switch {
	case cfg.RetryBackoff == 0:
		cfg.RetryBackoff = defaultRetryBackoff
	case cfg.RetryBackoff < 0:
		cfg.RetryBackoff = 0
	}
	if cfg.RetryBackoffMax <= 0 {
		cfg.RetryBackoffMax = defaultRetryBackoffMax
	}
	if cfg.HedgeQuantile <= 0 || cfg.HedgeQuantile >= 1 {
		cfg.HedgeQuantile = defaultHedgeQuantile
	}
	// 16 random bytes: the first 8 are the instance token, the last 8
	// seed the jitter PRNG.
	var tok [16]byte
	if _, err := rand.Read(tok[:]); err != nil {
		return nil, fmt.Errorf("dispatch: instance token: %w", err)
	}
	d := &Dispatcher{
		cfg:     cfg,
		reg:     cfg.Metrics,
		tracer:  cfg.Tracer,
		log:     cfg.Logger,
		local:   cfg.Local,
		token:   hex.EncodeToString(tok[:8]),
		now:     time.Now,
		jitter:  newJitter(int64(binary.LittleEndian.Uint64(tok[8:]))),
		workers: make(map[int]*workerState, len(cfg.Workers)),
		pending: make(map[int]*call),
		chunks:  make(map[chunkKey]*p2p.ChunkStream),
		closed:  make(chan struct{}),
	}
	d.sleep = d.waitSleep
	for _, id := range cfg.Workers {
		d.workers[id] = &workerState{id: id}
	}
	d.reg.SetGauge("dispatch_workers_configured", float64(len(d.workers)))
	d.reg.SetGauge("dispatch_workers_live", 0)
	d.reg.SetGauge("dispatch_breaker_open_workers", 0)
	d.wg.Add(2)
	go d.recvLoop()
	go d.heartbeatLoop()
	return d, nil
}

// Close stops the loops, waits them out and closes the transport. Call
// it only after the serve pool has drained: a Run still in flight when
// Close lands returns a dispatcher-closed error.
func (d *Dispatcher) Close() error {
	d.closeOnce.Do(func() { close(d.closed) })
	d.wg.Wait()
	return d.cfg.Transport.Close()
}

// LiveWorkers reports how many workers are currently considered alive.
func (d *Dispatcher) LiveWorkers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, ws := range d.workers {
		if ws.alive {
			n++
		}
	}
	return n
}

// WaitReady blocks until at least n workers are live or ctx expires —
// the boot-time barrier that keeps the first submissions from falling
// back to local execution while workers are still registering.
func (d *Dispatcher) WaitReady(ctx context.Context, n int) error {
	for {
		if d.LiveWorkers() >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("dispatch: %d of %d workers live: %w", d.LiveWorkers(), n, ctx.Err())
		case <-d.closed:
			return fmt.Errorf("dispatch: dispatcher closed while waiting for workers")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// recvLoop routes every inbound frame. Liveness refreshes only on
// frames that prove a protocol-compatible worker — heartbeat acks,
// hello acks whose version matches, and frames for a pending call —
// so a version-skewed worker rejecting our hellos is never marked
// live (its jobs would all fail non-transiently; leaving it down
// routes them to healthy workers or the local fallback instead).
// Bodies are JSON-decoded before taking d.mu: a multi-megabyte result
// must not stall claimWorker or the liveness probe. Stale frames — a
// late result from a worker the run was already retried away from —
// find no pending entry and are dropped.
func (d *Dispatcher) recvLoop() {
	defer d.wg.Done()
	for {
		select {
		case <-d.closed:
			return
		default:
		}
		m, ok := d.cfg.Transport.Recv(d.cfg.RecvTimeout)
		if !ok {
			continue
		}
		switch m.Kind {
		case p2p.KindAck:
			d.mu.Lock()
			d.refreshLocked(m.From)
			d.mu.Unlock()
		case p2p.KindDispatchHello:
			var h helloBody
			if err := decodeBody(m, &h); err != nil || h.Proto != proto {
				d.reg.Inc("dispatch_bad_hellos_total")
				continue
			}
			d.mu.Lock()
			d.refreshLocked(m.From)
			if ws := d.workers[m.From]; ws != nil {
				if h.Capacity > 0 {
					ws.capacity = h.Capacity
				}
				ws.codecs = h.Codecs
			}
			d.mu.Unlock()
		case p2p.KindDispatchRound:
			var r roundBody
			if err := decodeBody(m, &r); err != nil || r.Token != d.token {
				// Not ours: a predecessor instance's orphaned run can
				// share our (worker, sequence) pair, but never our token.
				continue
			}
			d.mu.Lock()
			c := d.pending[m.Round]
			if c != nil && c.worker == m.From {
				d.refreshLocked(m.From)
			} else {
				c = nil
			}
			d.mu.Unlock()
			if c != nil {
				select {
				case c.rounds <- r:
				default: // slow consumer: telemetry drops, routing never blocks
				}
			}
		case p2p.KindDispatchChunk:
			d.addChunk(m)
		case p2p.KindDispatchResult, p2p.KindDispatchError:
			var o outcome
			body, err := d.terminalBody(m)
			if err == nil {
				var jsonData []byte
				jsonData, o.paramData, err = decodeSplitBody(body)
				if err == nil {
					if m.Kind == p2p.KindDispatchResult {
						// The body's full size on the wire — reassembled
						// when it arrived as a chunk stream.
						d.reg.ObserveBytes("dispatch_result_frame_bytes", float64(len(body)))
						o.res = &resultBody{}
						err = json.Unmarshal(jsonData, o.res)
					} else {
						o.errb = &errorBody{}
						err = json.Unmarshal(jsonData, o.errb)
					}
				}
			}
			if err != nil {
				o = outcome{errb: &errorBody{Message: err.Error()}, corrupt: true}
			}
			// Token gate: a result must carry our instance token, or it
			// belongs to another dispatcher's run that shares our
			// (worker, sequence) pair — adopting it would cache a wrong
			// job's model. Error frames get one concession: an empty
			// token means the worker could not even decode the request
			// (token unknowable), which for a pending sequence is a
			// corrupt-exchange signal, safe to treat as transient.
			switch {
			case o.res != nil && o.res.Token != d.token:
				d.reg.Inc("dispatch_stray_results_total")
				continue
			case o.errb != nil && o.errb.Token != d.token:
				if o.errb.Token != "" {
					d.reg.Inc("dispatch_stray_errors_total")
					continue
				}
				o.corrupt = true
			}
			d.mu.Lock()
			c := d.pending[m.Round]
			if c != nil && c.worker == m.From {
				d.refreshLocked(m.From)
				delete(d.pending, m.Round)
			} else {
				// Retired sequence, or a frame that never had a call
				// (e.g. a request rejection from before registration):
				// drop it, but make rejections visible on /stats.
				if o.errb != nil {
					d.reg.Inc("dispatch_stray_errors_total")
				}
				c = nil
			}
			d.mu.Unlock()
			if c != nil {
				c.done <- o // buffered 1; at most one terminal per sequence
			}
		}
	}
}

// chunkKey identifies one sequence's chunk stream.
type chunkKey struct {
	from int
	seq  int
}

// addChunk buffers one chunk frame into its sequence's reassembly
// stream. Chunks are accepted only for a pending call on the sending
// worker — anything else (a retired sequence, a foreign instance's
// stream) is dropped along with any partial stream, and a sweep retires
// streams whose calls have moved on, so abandoned buffers cannot pile
// up. A chunk that fails stream validation poisons the entry; the
// terminal frame then fails its count/checksum check and the attempt
// retries as transient.
func (d *Dispatcher) addChunk(m p2p.Message) {
	key := chunkKey{m.From, m.Round}
	var stale []chunkKey
	d.mu.Lock()
	c := d.pending[m.Round]
	ours := c != nil && c.worker == m.From
	if ours {
		d.refreshLocked(m.From)
	}
	for k := range d.chunks {
		if pc := d.pending[k.seq]; pc == nil || pc.worker != k.from {
			stale = append(stale, k)
		}
	}
	d.mu.Unlock()
	for _, k := range stale {
		delete(d.chunks, k)
	}
	if !ours {
		return
	}
	s := d.chunks[key]
	if s == nil {
		s = &p2p.ChunkStream{}
		d.chunks[key] = s
	}
	if err := s.Add(m); err != nil {
		delete(d.chunks, key)
		return
	}
	d.reg.Inc("dispatch_wire_chunks_total")
}

// terminalBody yields a terminal frame's complete body: the frame's
// own body when monolithic (Chunk=0, the legacy shape), otherwise the
// reassembled stream the frame's trailer closes and checksums. Either
// way the sequence's stream entry is retired.
func (d *Dispatcher) terminalBody(m p2p.Message) ([]byte, error) {
	key := chunkKey{m.From, m.Round}
	s := d.chunks[key]
	delete(d.chunks, key)
	if m.Chunk == 0 {
		return p2p.DispatchBody(m)
	}
	d.reg.Inc("dispatch_wire_chunked_results_total")
	if s == nil {
		s = &p2p.ChunkStream{} // no chunks arrived; Finish reports the mismatch
	}
	return s.Finish(m)
}

// refreshLocked marks a configured worker as seen (and alive), and —
// because a fresh frame proves the worker is responsive — gives an
// open breaker past its cooldown the half-open nudge. Callers hold
// d.mu and must only call it for frames that prove a compatible,
// responsive worker.
func (d *Dispatcher) refreshLocked(id int) {
	ws := d.workers[id]
	if ws == nil {
		return
	}
	ws.seen = d.now()
	if !ws.alive {
		ws.alive = true
		d.updateLiveGaugeLocked()
		d.log.Info("dispatch worker live", "worker", id)
	}
	d.maybeHalfOpenLocked(ws)
}

// heartbeatLoop probes workers every HeartbeatEvery: live workers get
// heartbeats, silent ones past LivenessGrace are marked down (waking
// any calls parked on them), and down workers get fresh hellos so a
// restarted or healed worker re-registers on its own.
func (d *Dispatcher) heartbeatLoop() {
	defer d.wg.Done()
	d.probe() // immediate hello burst at boot
	t := time.NewTicker(d.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-d.closed:
			return
		case <-t.C:
			d.probe()
		}
	}
}

func (d *Dispatcher) probe() {
	now := d.now()
	var beat, hello []int
	d.mu.Lock()
	for id, ws := range d.workers {
		if ws.alive && now.Sub(ws.seen) > d.cfg.LivenessGrace {
			ws.alive = false
			d.updateLiveGaugeLocked()
			d.reg.Inc("dispatch_workers_lost_total")
			d.log.Warn("dispatch worker lost", "worker", id, "silentSec", now.Sub(ws.seen).Seconds())
			for _, c := range d.pending {
				if c.worker == id {
					c.downOnce.Do(func() { close(c.down) })
				}
			}
		}
		if ws.probing {
			continue // previous probe still blocked on this peer; skip
		}
		ws.probing = true
		if ws.alive {
			beat = append(beat, id)
		} else {
			hello = append(hello, id)
		}
	}
	d.mu.Unlock()
	// Sends go out on one goroutine per worker: a TCP transport can
	// block for seconds dialing (or writing to) a blackholed peer, and
	// probing serially would delay heartbeats to healthy workers past
	// LivenessGrace and flap them down. The probing flag caps it at one
	// outstanding send per worker, so a wedged peer costs one parked
	// goroutine, not a pile-up.
	send := func(id int, f func()) {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			f()
			d.mu.Lock()
			if ws := d.workers[id]; ws != nil {
				ws.probing = false
			}
			d.mu.Unlock()
		}()
	}
	for _, id := range beat {
		id := id
		send(id, func() {
			_ = d.cfg.Transport.Send(p2p.Message{Kind: p2p.KindHeartbeat, To: id})
		})
	}
	for _, id := range hello {
		id := id
		send(id, func() {
			_ = sendFrame(d.cfg.Transport, p2p.KindDispatchHello, id, 0, helloBody{
				Proto: proto, ReplyAddr: d.cfg.ReplyAddr,
			})
		})
	}
}

func (d *Dispatcher) updateLiveGaugeLocked() {
	n := 0
	for _, ws := range d.workers {
		if ws.alive {
			n++
		}
	}
	d.reg.SetGauge("dispatch_workers_live", float64(n))
}

// Run executes one run remotely if it can: pick the least-loaded live
// worker, ship the request, stream rounds to onRound, and return the
// rebuilt result. Transient failures (send error, busy rejection,
// worker lost or shut down mid-run, torn parameter exchange) move the
// run to the next live worker after a jittered exponential backoff;
// workers whose circuit breaker is open are skipped; a slow attempt
// may be hedged on a second worker (see attempt); and when no worker
// remains — after one reconsideration pass re-admitting tried workers
// that recovered — the run executes locally. Failures come back as a
// *DispatchError carrying the whole journey. It matches the serve
// pool's Runner seam.
func (d *Dispatcher) Run(ctx context.Context, scheme string, opts hadfl.Options, onRound func(hadfl.RoundUpdate)) (res *hadfl.Result, err error) {
	fp, err := hadfl.Fingerprint(scheme, opts)
	if err != nil {
		return nil, err
	}
	// Child of the pool's serve.job span when the pool threaded one
	// through ctx; otherwise the root of a fresh trace.
	ctx, span := trace.Start(ctx, d.tracer, "dispatch.run")
	defer func() {
		span.SetError(err)
		span.End()
	}()
	span.SetAttr("jobID", fp)
	span.SetAttr("scheme", scheme)
	gate := newRoundGate(onRound)
	jr := &journey{dispatcher: d.token, jobID: fp, scheme: scheme}
	defer func() { span.SetAttr("attempts", fmt.Sprint(len(jr.attempts))) }()
	tried := make(map[int]bool)
	reconsidered := false
	retries := 0
	for {
		if cerr := ctx.Err(); cerr != nil {
			return nil, jr.wrap(cerr, gate.lastRound(), false)
		}
		ws := d.claimWorker(tried)
		if ws == nil {
			// Before giving up on the fleet: one pass re-admitting tried
			// workers that recovered (re-registered, breaker no longer
			// open) while later attempts were failing.
			if !reconsidered && len(tried) > 0 {
				reconsidered = true
				if back := d.reconsiderTried(tried); len(back) > 0 {
					d.reg.Inc("dispatch_reconsider_total")
					d.log.Info("dispatch reconsidering recovered workers", "jobID", fp, "workers", back)
					continue
				}
			}
			break
		}
		res, aerr, transient := d.attempt(ctx, ws, fp, scheme, opts, gate, tried, jr)
		if !transient {
			if aerr != nil {
				return nil, jr.wrap(aerr, gate.lastRound(), false)
			}
			return res, nil
		}
		d.reg.Inc("dispatch_retries_total")
		d.log.Warn("dispatch retry", "jobID", fp, "worker", ws.id, "err", aerr)
		// Busy rejections skip the backoff: the worker answered promptly
		// and another may have a free slot right now. Everything else —
		// lost workers, corrupt frames, torn parameter exchanges — waits
		// out a full-jitter exponential delay so a sick-but-alive fleet
		// is not hammered at full rate.
		if d.cfg.RetryBackoff > 0 && !errors.Is(aerr, errWorkerBusy) {
			delay := d.jitter(backoffCeiling(d.cfg.RetryBackoff, d.cfg.RetryBackoffMax, retries))
			retries++
			d.reg.Observe("dispatch_retry_backoff_seconds", delay.Seconds())
			if !d.sleep(ctx, delay) {
				if cerr := ctx.Err(); cerr != nil {
					return nil, jr.wrap(cerr, gate.lastRound(), false)
				}
				return nil, jr.wrap(errors.New("dispatch: dispatcher closed mid-run"), gate.lastRound(), false)
			}
		}
	}
	d.reg.Inc("dispatch_local_fallback_total")
	d.log.Info("dispatch local fallback", "jobID", fp, "tried", len(tried))
	span.SetAttr("fallback", "local")
	res, lerr := d.local(ctx, scheme, opts, gate.forward)
	if lerr != nil {
		return nil, jr.wrap(lerr, gate.lastRound(), true)
	}
	return res, nil
}

// claimWorker picks the live worker with the most free capacity (ties
// to the lowest id, so placement is deterministic) and reserves a slot
// on it; nil means the local fallback is next. Workers in exclude or
// with an open breaker are skipped; a half-open worker is used only
// when no healthy worker has a free slot, and admits one trial job at
// a time.
func (d *Dispatcher) claimWorker(exclude map[int]bool) *workerState {
	d.mu.Lock()
	defer d.mu.Unlock()
	var best, trial *workerState
	bestFree := 0
	for _, ws := range d.workers {
		if !ws.alive || exclude[ws.id] || ws.breaker == breakerOpen {
			continue
		}
		cap := ws.capacity
		if cap <= 0 {
			cap = 1
		}
		free := cap - ws.inflight
		if free <= 0 {
			continue
		}
		if ws.breaker == breakerHalfOpen {
			if !ws.trial && (trial == nil || ws.id < trial.id) {
				trial = ws
			}
			continue
		}
		if best == nil || free > bestFree || (free == bestFree && ws.id < best.id) {
			best, bestFree = ws, free
		}
	}
	if best == nil && trial != nil {
		trial.trial = true
		best = trial
	}
	if best != nil {
		best.inflight++
	}
	return best
}

// runOn executes one attempt on one worker. The third return reports
// whether the failure is transient (retry on another worker) — results
// and genuine run errors are not. hedge marks a hedged leg, for the
// span only.
func (d *Dispatcher) runOn(ctx context.Context, ws *workerState, fp, scheme string, opts hadfl.Options, onRound func(hadfl.RoundUpdate), hedge bool) (_ *hadfl.Result, retErr error, transient bool) {
	ctx, span := trace.Start(ctx, d.tracer, "dispatch.request")
	defer func() {
		span.SetError(retErr)
		span.End()
	}()
	span.SetAttr("worker", fmt.Sprint(ws.id))
	if hedge {
		span.SetAttr("hedge", "true")
	}
	sent := d.now()
	d.mu.Lock()
	d.nextSeq++
	seq := d.nextSeq
	c := &call{
		worker: ws.id,
		rounds: make(chan roundBody, 64),
		done:   make(chan outcome, 1),
		down:   make(chan struct{}),
	}
	d.pending[seq] = c
	codec := chooseCodec(d.cfg.Codec, ws.codecs)
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		delete(d.pending, seq)
		ws.inflight--
		// Clearing trial here (not just on the trial leg) can admit an
		// extra half-open probe when an older job finishes first — a
		// benign over-probe, never an under-probe.
		ws.trial = false
		d.mu.Unlock()
	}()

	req := requestBody{Proto: proto, Token: d.token, JobID: fp, Scheme: scheme, Options: toWire(opts), Codec: codec}
	span.SetAttr("codec", codec)
	if sc := span.Context(); sc.Valid() {
		req.Trace = &wireTrace{TraceID: sc.TraceID, SpanID: sc.SpanID}
	}
	if dl, ok := ctx.Deadline(); ok {
		rem := dl.Sub(d.now())
		if rem <= 0 {
			// The deadline has passed but ctx's timer may not have
			// fired yet (ctx.Err() can still be nil) — report the
			// expiry explicitly so the caller never sees (nil, nil).
			return nil, context.DeadlineExceeded, false
		}
		req.DeadlineSec = rem.Seconds()
	}
	if err := sendFrame(d.cfg.Transport, p2p.KindDispatchRequest, ws.id, seq, req); err != nil {
		return nil, err, true
	}
	d.reg.Inc("dispatch_requests_total")

	ctxDone := ctx.Done()
	var cancelExpired <-chan time.Time
	canceled := false
	forward := func(r roundBody) {
		if onRound != nil && !canceled {
			onRound(hadfl.RoundUpdate{
				Scheme: scheme, Round: r.Round, Time: r.Time, Loss: r.Loss,
				Accuracy: r.Accuracy, Selected: r.Selected, Bypassed: r.Bypassed,
			})
		}
	}
	// drainRounds flushes telemetry still queued behind a terminal
	// frame: recvLoop delivers rounds before the outcome, but select
	// picks ready cases at random, so without the drain the run's last
	// round(s) could be dropped on the floor.
	drainRounds := func() {
		for {
			select {
			case r := <-c.rounds:
				forward(r)
			default:
				return
			}
		}
	}
	for {
		select {
		case <-ctxDone:
			// Propagate the abort and give the worker CancelGrace to
			// confirm cooperatively; disarm this case so the closed
			// channel cannot spin the loop.
			ctxDone = nil
			canceled = true
			d.reg.Inc("dispatch_cancels_total")
			_ = sendFrame(d.cfg.Transport, p2p.KindDispatchCancel, ws.id, seq, cancelBody{Token: d.token})
			t := time.NewTimer(d.cfg.CancelGrace)
			defer t.Stop()
			cancelExpired = t.C
		case <-cancelExpired:
			return nil, ctx.Err(), false
		case <-d.closed:
			return nil, errors.New("dispatch: dispatcher closed mid-run"), false
		case r := <-c.rounds:
			forward(r)
		case <-c.down:
			// Prefer a terminal frame that raced the down mark.
			select {
			case o := <-c.done:
				drainRounds()
				return d.finish(ctx, ws, o, canceled, sent, opts)
			default:
			}
			// Best-effort cancel to the lost worker: if it was merely
			// slow (not dead) the orphaned run frees its capacity slot
			// within one device step instead of training to completion
			// and busy-bouncing jobs after the worker heals.
			_ = sendFrame(d.cfg.Transport, p2p.KindDispatchCancel, ws.id, seq, cancelBody{Token: d.token})
			if canceled {
				return nil, ctx.Err(), false
			}
			return nil, fmt.Errorf("dispatch: worker %d lost mid-run", ws.id), true
		case o := <-c.done:
			drainRounds()
			return d.finish(ctx, ws, o, canceled, sent, opts)
		}
	}
}

// finish maps a terminal frame to the Runner contract's (result, error)
// and classifies retryability. sent anchors the attempt's round-trip
// histogram; the frame's shipped-home worker spans land in the tracer
// here, stitching the remote half of the trace into the local ring.
func (d *Dispatcher) finish(ctx context.Context, ws *workerState, o outcome, canceled bool, sent time.Time, opts hadfl.Options) (*hadfl.Result, error, bool) {
	d.reg.Observe("dispatch_rtt_seconds", d.now().Sub(sent).Seconds())
	d.recordRemoteSpans(o)
	if o.errb != nil {
		eb := o.errb
		switch {
		case eb.Busy:
			d.reg.Inc("dispatch_busy_rejections_total")
			return nil, fmt.Errorf("%w: worker %d: %s", errWorkerBusy, ws.id, eb.Message), true
		case o.corrupt && !canceled:
			// The frame failed, not the run: reruns are deterministic
			// and safe, so treat it like a lost worker.
			return nil, fmt.Errorf("dispatch: worker %d sent an undecodable terminal frame: %s", ws.id, eb.Message), true
		case canceled:
			// Our abort, confirmed cooperatively: surface ctx's error so
			// the pool records a clean cancel/timeout.
			return nil, ctx.Err(), false
		case eb.Canceled:
			// The worker aborted on its own (its shutdown, not our
			// cancel): the run is healthy, the worker is not — retry.
			return nil, errors.New(eb.Message), true
		case eb.Timeout:
			return nil, context.DeadlineExceeded, false
		default:
			return nil, fmt.Errorf("dispatch: worker %d: %s", ws.id, eb.Message), false
		}
	}
	if err := d.decodeParams(o.res, o.paramData, opts); err != nil {
		// The section failed, not the run: reruns are deterministic and
		// safe, so a torn or undecodable parameter exchange retries like
		// a lost worker.
		return nil, fmt.Errorf("dispatch: worker %d result params: %w", ws.id, err), true
	}
	d.reg.Inc("dispatch_remote_total")
	return o.res.toResult(), nil, false
}

// chooseCodec negotiates the parameter wire codec for one request:
// the dispatcher's preference if the worker advertised it, otherwise
// raw64 (which every codec-speaking worker advertises), otherwise ""
// — the legacy inline-JSON exchange for workers that advertised
// nothing.
func chooseCodec(preferred string, advertised []string) string {
	raw := false
	for _, name := range advertised {
		if name == preferred {
			return preferred
		}
		raw = raw || name == p2p.ParamCodecRaw64
	}
	if raw {
		return p2p.ParamCodecRaw64
	}
	return ""
}

// decodeParams rebuilds a codec-path result's final parameter vector
// from its still-encoded binary section — in the waiting call's
// goroutine, never recvLoop's, because reference-based codecs derive
// the run's initial model here and that must not stall frame routing.
// Legacy bodies (no codec) pass through: their FinalParams came inline.
func (d *Dispatcher) decodeParams(res *resultBody, paramData []byte, opts hadfl.Options) error {
	if res.ParamCodec == "" {
		return nil
	}
	codec, ok := p2p.ParamCodecByName(res.ParamCodec)
	if !ok {
		return fmt.Errorf("unknown param codec %q", res.ParamCodec)
	}
	var ref []float64
	if codec.UsesRef() && res.ParamRef == paramRefInit {
		r, err := hadfl.InitialParams(opts)
		if err != nil {
			return fmt.Errorf("derive %q reference: %w", res.ParamRef, err)
		}
		ref = r
	}
	params, err := codec.Decode(paramData, ref, res.ParamCount)
	if err != nil {
		return err
	}
	res.FinalParams = params
	d.reg.Add("dispatch_wire_raw_bytes_total", int64(8*res.ParamCount))
	d.reg.Add("dispatch_wire_encoded_bytes_total", int64(len(paramData)))
	d.reg.Inc("dispatch_wire_codec_" + metrics.SanitizeName(res.ParamCodec) + "_total")
	if !res.ParamExact {
		d.reg.Inc("dispatch_wire_lossy_results_total")
	}
	return nil
}

// recordRemoteSpans lands the worker-side spans a terminal frame
// carried into the dispatcher's tracer ring.
func (d *Dispatcher) recordRemoteSpans(o outcome) {
	if d.tracer == nil {
		return
	}
	var wt *wireTrace
	switch {
	case o.res != nil:
		wt = o.res.Trace
	case o.errb != nil:
		wt = o.errb.Trace
	}
	if wt == nil {
		return
	}
	for _, sd := range wt.Spans {
		d.tracer.Record(sd)
	}
}
