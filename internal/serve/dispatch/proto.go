// Package dispatch is the serve layer's remote-execution backend: it
// ships canonicalized run requests from a dispatcher (embedded in
// hadfl-serve) to worker nodes (cmd/hadfl-worker) over any
// p2p.Transport, streams per-round telemetry back, and propagates
// context cancellation and deadlines across the wire.
//
// # Wire protocol
//
// Every exchange is a p2p dispatch frame (p2p.NewDispatchFrame): a
// versioned Message whose JSON body is byte-packed into the payload and
// whose Round field carries the dispatcher-assigned sequence number
// identifying the in-flight run. The frames:
//
//	hello    dispatcher → worker   registration probe; body carries the
//	                               protocol version and (on TCP) the
//	                               dispatcher's dial-back address
//	hello    worker → dispatcher   registration ack; body carries the
//	                               worker's capacity
//	request  dispatcher → worker   a run: job fingerprint, scheme,
//	                               options, remaining deadline, and the
//	                               dispatcher's random instance token
//	                               (workers key runs by sender + token +
//	                               sequence, so serve restarts cannot
//	                               collide with their predecessor's runs)
//	round    worker → dispatcher   per-round telemetry (RoundUpdate)
//	chunk    worker → dispatcher   one slice of a chunk-streamed terminal
//	                               body (p2p.KindDispatchChunk); the
//	                               closing result/error frame carries the
//	                               stream's length + checksum trailer
//	result   worker → dispatcher   terminal success: summary, curve and
//	                               final parameter vector
//	error    worker → dispatcher   terminal failure: message + flags
//	                               (canceled / timeout / busy)
//	cancel   dispatcher → worker   abort the sequence's run; the worker
//	                               cancels its RunContext, which aborts
//	                               cooperatively within about one device
//	                               step and reports back an error frame
//
// Plain p2p heartbeat/ack messages (KindHeartbeat/KindAck) probe worker
// liveness between runs; any frame from a worker refreshes it.
//
// # Determinism contract
//
// Runs are deterministic given scheme + canonical options (see
// hadfl.Fingerprint), so executing remotely must not change results.
// The worker re-derives the fingerprint from the request and rejects
// mismatches, and every float64 crosses the wire exactly: summary and
// curve values through Go's JSON shortest-round-trip encoding, the
// final parameter vector through the negotiated p2p.ParamCodec — raw64
// (the default) and delta are bit-exact, and every result body stamps
// the codec's exactness bit so a deliberately lossy choice (f32, topk)
// is visible, never silent. A dispatched run's summary, curve and
// final parameter vector are byte-identical to a local run of the same
// request under any exact codec (pinned by the simnet e2e suite).
//
// # Failure and fallback semantics
//
// Transient failures — a send that errors, a worker that dies or goes
// silent mid-run, a busy rejection — move the run to another live
// worker (each worker is tried at most once per run; reruns are safe
// because runs are deterministic). When no live worker remains, the
// dispatcher falls back to executing locally, so `hadfl-serve` with no
// reachable workers degrades to exactly the single-process behavior.
// Run errors reported by the worker (bad options, cancellation) are
// not transient: they surface to the caller unchanged.
package dispatch

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"hadfl"
	"hadfl/internal/metrics"
	"hadfl/internal/p2p"
	"hadfl/internal/trace"
)

// proto is the dispatch protocol version carried inside hello and
// request bodies (the frame layer has its own p2p.DispatchVersion).
// Workers reject requests from other protocol versions.
const proto = 1

// helloBody rides registration probes (dispatcher → worker) and acks
// (worker → dispatcher).
type helloBody struct {
	Proto int `json:"proto"`
	// ReplyAddr is the dispatcher's transport address for dial-back
	// replies; empty on transports with id-based routing (ChanHub).
	ReplyAddr string `json:"replyAddr,omitempty"`
	// Capacity is the worker's concurrent-run budget (ack direction).
	Capacity int `json:"capacity,omitempty"`
	// Codecs advertises the parameter wire codecs the worker can encode
	// (ack direction), in its order of preference. An empty list marks a
	// legacy worker: the dispatcher then requests no codec and the result
	// comes back as one monolithic JSON frame with FinalParams inline.
	Codecs []string `json:"codecs,omitempty"`
}

// reqOptions is hadfl.Options on the wire, minus the callback field
// (round telemetry flows back as round frames). It mirrors the serve
// layer's RunOptions JSON shape but cannot reuse it: serve's in-package
// tests import this package, so dispatch importing serve would be a
// test import cycle. TestWireOptionsCoverEveryOptionsField pins the
// mirror field-for-field (as serve's own guard pins RunOptions), so a
// new Options field missing here fails at unit-test time.
type reqOptions struct {
	Powers       []float64       `json:"powers,omitempty"`
	Model        string          `json:"model,omitempty"`
	Full         bool            `json:"full,omitempty"`
	TargetEpochs float64         `json:"targetEpochs,omitempty"`
	NonIIDAlpha  float64         `json:"nonIIDAlpha,omitempty"`
	Seed         int64           `json:"seed,omitempty"`
	FailAt       map[int]float64 `json:"failAt,omitempty"`
	GroupSize    int             `json:"groupSize,omitempty"`
	InterEvery   int             `json:"interEvery,omitempty"`
	Parallelism  int             `json:"parallelism,omitempty"`
}

func toWire(o hadfl.Options) reqOptions {
	return reqOptions{
		Powers:       o.Powers,
		Model:        o.Model,
		Full:         o.Full,
		TargetEpochs: o.TargetEpochs,
		NonIIDAlpha:  o.NonIIDAlpha,
		Seed:         o.Seed,
		FailAt:       o.FailAt,
		GroupSize:    o.GroupSize,
		InterEvery:   o.InterEvery,
		Parallelism:  o.Parallelism,
	}
}

func (o reqOptions) toOptions() hadfl.Options {
	return hadfl.Options{
		Powers:       o.Powers,
		Model:        o.Model,
		Full:         o.Full,
		TargetEpochs: o.TargetEpochs,
		NonIIDAlpha:  o.NonIIDAlpha,
		Seed:         o.Seed,
		FailAt:       o.FailAt,
		GroupSize:    o.GroupSize,
		InterEvery:   o.InterEvery,
		Parallelism:  o.Parallelism,
	}
}

// requestBody asks a worker to execute one run.
type requestBody struct {
	Proto int `json:"proto"`
	// Token is the dispatcher instance's random identity. Workers key
	// in-flight runs by (sender, token, sequence), so a restarted or
	// second serve process — whose sequence numbers restart at 1 and
	// whose transport may reuse node id 0 — can neither collide with
	// nor cancel another instance's runs.
	Token  string `json:"token"`
	JobID  string `json:"jobID"` // hadfl.Fingerprint(scheme, options); the worker re-derives and verifies it
	Scheme string `json:"scheme"`
	// DeadlineSec, when > 0, is the remaining wall budget at send time.
	// The worker applies it as its own context deadline, so a run whose
	// dispatcher vanishes still stops on schedule (a relative duration
	// survives clock skew; the cancel frame remains the primary path).
	DeadlineSec float64    `json:"deadlineSec,omitempty"`
	Options     reqOptions `json:"options"`
	// Codec names the parameter wire codec the worker should encode the
	// final parameter vector with (chosen from the worker's advertised
	// list). Empty means legacy: FinalParams inline in the JSON body, one
	// monolithic frame. Non-empty doubles as the capability signal that
	// this dispatcher reassembles split bodies and chunk streams; a
	// worker that does not recognize the name falls back to raw64, never
	// to legacy.
	Codec string `json:"codec,omitempty"`
	// Trace carries the dispatcher's span context so the worker's spans
	// join the same trace (see wireTrace). Tracing is passive: this field
	// never influences execution, and the byte-determinism oracle ignores
	// it.
	Trace *wireTrace `json:"trace,omitempty"`
}

// wireTrace propagates trace context across the dispatch protocol. On a
// request it carries the dispatcher-side parent span (TraceID + SpanID);
// on a terminal result/error frame it carries the spans the worker
// recorded for the run, so the dispatcher can stitch them into its own
// ring and GET /debug/traces shows one trace spanning both processes.
type wireTrace struct {
	TraceID string           `json:"traceID,omitempty"`
	SpanID  string           `json:"spanID,omitempty"`
	Spans   []trace.SpanData `json:"spans,omitempty"`
}

// spanContext rebuilds the propagated parent span context (zero when t
// is nil or carries no IDs — trace.Start then mints a fresh root).
func (t *wireTrace) spanContext() trace.SpanContext {
	if t == nil {
		return trace.SpanContext{}
	}
	return trace.SpanContext{TraceID: t.TraceID, SpanID: t.SpanID}
}

// cancelBody aborts one in-flight run; Token must match the request
// that started it (see requestBody.Token).
type cancelBody struct {
	Token string `json:"token"`
}

// roundBody is per-round telemetry streamed back while a run executes.
// Token echoes the originating request's instance token (as on every
// worker → dispatcher frame about a run): the dispatcher drops frames
// whose token is not its own, so it can never adopt a round — or a
// result — belonging to a predecessor instance's orphaned run whose
// (worker, sequence) pair collides with one of its own.
type roundBody struct {
	Token    string  `json:"token,omitempty"`
	Round    int     `json:"round"`
	Time     float64 `json:"time"`
	Loss     float64 `json:"loss"`
	Accuracy float64 `json:"accuracy"`
	Selected []int   `json:"selected,omitempty"`
	Bypassed int     `json:"bypassed,omitempty"`
}

// paramRefInit is the ParamRef value naming the run's deterministic
// initial parameter vector — both ends derive it independently with
// hadfl.InitialParams, so reference-based codecs never ship it.
const paramRefInit = "init"

// resultBody is a terminal success: everything needed to rebuild the
// hadfl.Result the run would have produced locally.
type resultBody struct {
	Token       string          `json:"token,omitempty"` // echoes requestBody.Token, see roundBody
	Scheme      string          `json:"scheme"`
	Accuracy    float64         `json:"accuracy"`
	Time        float64         `json:"time"`
	Rounds      int             `json:"rounds"`
	DeviceBytes int64           `json:"deviceBytes"`
	ServerBytes int64           `json:"serverBytes"`
	EvalBatches int64           `json:"evalBatches,omitempty"`
	EvalSeconds float64         `json:"evalSeconds,omitempty"`
	CurveName   string          `json:"curveName,omitempty"`
	Curve       []metrics.Point `json:"curve,omitempty"`
	// FinalParams carries the final parameter vector inline on the
	// legacy path only (request had no Codec). On the codec path it is
	// empty and the vector travels as the split body's binary parameter
	// section, described by the Param* fields below.
	FinalParams []float64 `json:"finalParams,omitempty"`
	// ParamCodec names the codec that encoded the binary parameter
	// section; empty means FinalParams is inline (legacy).
	ParamCodec string `json:"paramCodec,omitempty"`
	// ParamCount is the encoded vector's length; the receiver validates
	// it before allocating.
	ParamCount int `json:"paramCount,omitempty"`
	// ParamExact reports the codec's exactness bit for this encode: true
	// means the decoded vector is bit-identical to the worker's.
	ParamExact bool `json:"paramExact,omitempty"`
	// ParamRef names the reference vector the codec encoded against:
	// paramRefInit for the run's deterministic initial model (the
	// receiver re-derives it from the job options), empty for none.
	ParamRef string `json:"paramRef,omitempty"`
	// Trace ships the worker-side spans home (see wireTrace). Excluded
	// from the byte-determinism oracle, which compares rebuilt
	// hadfl.Result values, never raw frames.
	Trace *wireTrace `json:"trace,omitempty"`
}

func toResultBody(res *hadfl.Result) resultBody {
	b := resultBody{
		Scheme:      res.Scheme,
		Accuracy:    res.Accuracy,
		Time:        res.Time,
		Rounds:      res.Rounds,
		DeviceBytes: res.DeviceBytes,
		ServerBytes: res.ServerBytes,
		EvalBatches: res.EvalBatches,
		EvalSeconds: res.EvalSeconds,
		FinalParams: res.FinalParams,
	}
	if res.Series != nil {
		b.CurveName = res.Series.Name
		b.Curve = res.Series.Points
	}
	return b
}

func (b resultBody) toResult() *hadfl.Result {
	return &hadfl.Result{
		Scheme:      b.Scheme,
		Accuracy:    b.Accuracy,
		Time:        b.Time,
		Rounds:      b.Rounds,
		DeviceBytes: b.DeviceBytes,
		ServerBytes: b.ServerBytes,
		EvalBatches: b.EvalBatches,
		EvalSeconds: b.EvalSeconds,
		Series:      &metrics.Series{Name: b.CurveName, Points: b.Curve},
		FinalParams: b.FinalParams,
	}
}

// errorBody is a terminal failure. Busy marks a capacity rejection
// (retryable elsewhere); Canceled/Timeout mirror the context error the
// worker's run returned, so the dispatcher can rebuild an errors.Is-
// compatible error on its side of the wire. Token echoes the request's
// instance token; it is empty only when the worker could not decode
// the request at all (the dispatcher treats such unattributable
// rejections of a pending sequence as transient).
type errorBody struct {
	Token    string `json:"token,omitempty"`
	Message  string `json:"message"`
	Canceled bool   `json:"canceled,omitempty"`
	Timeout  bool   `json:"timeout,omitempty"`
	Busy     bool   `json:"busy,omitempty"`
	// Trace ships the worker-side spans home even on failure, so an
	// errored run's trace still shows where the time went.
	Trace *wireTrace `json:"trace,omitempty"`
}

// sendFrame JSON-encodes body into a dispatch frame and sends it. A
// frame that cannot be built (oversized body) or sent surfaces as an
// error; transports treat unreachable peers as timeouts, not errors,
// so an error here means a local/structural problem.
func sendFrame(t p2p.Transport, kind p2p.Kind, to, seq int, body any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("dispatch: encode %v: %w", kind, err)
	}
	m, err := p2p.NewDispatchFrame(kind, to, seq, data)
	if err != nil {
		return fmt.Errorf("dispatch: frame %v: %w", kind, err)
	}
	return t.Send(m)
}

// decodeBody validates a dispatch frame and unmarshals its JSON body.
func decodeBody(m p2p.Message, into any) error {
	data, err := p2p.DispatchBody(m)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, into); err != nil {
		return fmt.Errorf("dispatch: decode %v body: %w", m.Kind, err)
	}
	return nil
}

// Split bodies: on the codec path a terminal result body is not plain
// JSON but a two-section container —
//
//	"HDW1" | uint32 jsonLen (LE) | jsonLen bytes of JSON | param section
//
// so the multi-megabyte parameter vector ships as the codec's compact
// binary section instead of base-10 JSON text. The magic cannot collide
// with the legacy format (JSON bodies start with '{'), so receivers
// sniff it and accept both generations.

// splitMagic opens every split body.
var splitMagic = []byte("HDW1")

// encodeSplitBody frames a JSON section and a binary parameter section
// into one split body.
func encodeSplitBody(jsonData, paramData []byte) []byte {
	out := make([]byte, 0, len(splitMagic)+4+len(jsonData)+len(paramData))
	out = append(out, splitMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(jsonData)))
	out = append(out, jsonData...)
	return append(out, paramData...)
}

// decodeSplitBody separates a body into its JSON and parameter
// sections. A body without the magic is legacy whole-JSON: it comes
// back unchanged with a nil parameter section.
func decodeSplitBody(body []byte) (jsonData, paramData []byte, err error) {
	if len(body) < len(splitMagic)+4 || !bytes.Equal(body[:len(splitMagic)], splitMagic) {
		return body, nil, nil
	}
	n := int(binary.LittleEndian.Uint32(body[len(splitMagic):]))
	rest := body[len(splitMagic)+4:]
	if n > len(rest) {
		return nil, nil, fmt.Errorf("dispatch: split body claims %d JSON bytes, has %d", n, len(rest))
	}
	return rest[:n], rest[n:], nil
}
