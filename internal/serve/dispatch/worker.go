package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"hadfl"
	"hadfl/internal/metrics"
	"hadfl/internal/p2p"
	"hadfl/internal/trace"
)

// Runner executes one training run; it matches the serve layer's
// runner seam so the same function type plugs into the pool and the
// dispatcher, and so tests can substitute instrumented runs.
type Runner func(ctx context.Context, scheme string, opts hadfl.Options, onRound func(hadfl.RoundUpdate)) (*hadfl.Result, error)

// localRunner executes through the scheme registry in-process — the
// worker's default executor and the dispatcher's local fallback.
func localRunner(ctx context.Context, scheme string, opts hadfl.Options, onRound func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
	opts.OnRound = onRound
	return hadfl.RunContext(ctx, scheme, opts)
}

// WorkerConfig assembles a Worker.
type WorkerConfig struct {
	// Transport is the worker's endpoint on the dispatch network.
	Transport p2p.Transport
	// Capacity bounds concurrent runs; requests beyond it are rejected
	// with a busy error frame (the dispatcher retries elsewhere).
	// Default 1.
	Capacity int
	// AddPeer, when non-nil, registers a dispatcher's dial-back address
	// learned from its hello frame (TCPNode.AddPeer); transports with
	// id-based routing leave it nil.
	AddPeer func(id int, addr string)
	// Codecs is the parameter wire codecs this worker advertises in its
	// hello ack, in preference order. Default: every registered codec.
	// Unknown names are rejected at construction; raw64 is always
	// appended if missing, because it is the fallback every request with
	// an unrecognized codec name encodes with.
	Codecs []string
	// Runner executes runs. Default: the scheme registry in-process.
	Runner Runner
	// RecvTimeout is the serve loop's poll granularity (how quickly
	// Serve notices its context is done). Default 200ms.
	RecvTimeout time.Duration
	// Metrics receives worker telemetry. Default: private registry.
	Metrics *metrics.Registry
	// Tracer receives this worker's run spans locally (the same spans
	// also ship back to the dispatcher on terminal frames). Default:
	// none.
	Tracer *trace.Tracer
	// Logger receives run lifecycle events. Default: discard.
	Logger *slog.Logger
}

// Worker executes dispatched runs: it registers with dispatchers that
// hello it, acks their heartbeats, runs requests through the scheme
// registry (streaming round telemetry back), and aborts runs
// cooperatively when a cancel frame arrives or the request's deadline
// expires.
type Worker struct {
	cfg WorkerConfig
	reg *metrics.Registry
	log *slog.Logger
	// now is the injected clock (run-duration stamps only); the walltime
	// lint analyzer keeps this package off time.Now.
	now func() time.Time

	mu      sync.Mutex
	running map[runKey]context.CancelFunc
	wg      sync.WaitGroup
}

// runKey identifies an in-flight run. Sequence numbers are unique only
// within one dispatcher instance, and transport node ids may recur
// across serve processes (every hadfl-serve dials from id 0), so the
// request's random instance token does the real disambiguation — a
// restarted dispatcher cannot collide with or cancel the runs of the
// one it replaced.
type runKey struct {
	from  int
	token string
	seq   int
}

// NewWorker builds a Worker; call Serve to start handling frames.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("dispatch: worker needs a transport")
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1
	}
	if cfg.Runner == nil {
		cfg.Runner = localRunner
	}
	if cfg.RecvTimeout <= 0 {
		cfg.RecvTimeout = 200 * time.Millisecond
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = trace.NopLogger()
	}
	if len(cfg.Codecs) == 0 {
		cfg.Codecs = p2p.ParamCodecNames()
	} else {
		raw := false
		for _, name := range cfg.Codecs {
			if _, ok := p2p.ParamCodecByName(name); !ok {
				return nil, fmt.Errorf("dispatch: unknown param codec %q (have %v)", name, p2p.ParamCodecNames())
			}
			raw = raw || name == p2p.ParamCodecRaw64
		}
		if !raw {
			cfg.Codecs = append(append([]string(nil), cfg.Codecs...), p2p.ParamCodecRaw64)
		}
	}
	w := &Worker{
		cfg:     cfg,
		reg:     cfg.Metrics,
		log:     cfg.Logger,
		now:     time.Now,
		running: make(map[runKey]context.CancelFunc),
	}
	w.reg.SetGauge("worker_capacity", float64(cfg.Capacity))
	return w, nil
}

// Serve handles frames until ctx is done, then cancels every in-flight
// run, waits for their cooperative aborts and returns ctx.Err(). It
// does not close the transport — its owner does.
func (w *Worker) Serve(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			w.mu.Lock()
			for _, cancel := range w.running {
				cancel()
			}
			w.mu.Unlock()
			w.wg.Wait()
			return err
		}
		m, ok := w.cfg.Transport.Recv(w.cfg.RecvTimeout)
		if !ok {
			continue
		}
		w.handle(ctx, m)
	}
}

// ActiveRuns reports how many runs are executing right now.
func (w *Worker) ActiveRuns() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.running)
}

func (w *Worker) handle(ctx context.Context, m p2p.Message) {
	switch m.Kind {
	case p2p.KindHeartbeat:
		w.reg.Inc("worker_heartbeats_total")
		_ = w.cfg.Transport.Send(p2p.Message{Kind: p2p.KindAck, To: m.From, Round: m.Round})
	case p2p.KindDispatchHello:
		w.handleHello(m)
	case p2p.KindDispatchCancel:
		var cb cancelBody
		if err := decodeBody(m, &cb); err != nil {
			return
		}
		w.mu.Lock()
		cancel := w.running[runKey{m.From, cb.Token, m.Round}]
		w.mu.Unlock()
		if cancel != nil {
			w.reg.Inc("worker_cancels_total")
			cancel()
		}
	case p2p.KindDispatchRequest:
		w.handleRequest(ctx, m)
	default:
		// Data-plane or future kinds: not ours, drop.
		w.reg.Inc("worker_unknown_frames_total")
	}
}

// handleHello registers the dispatcher (learning its dial-back address
// on address-based transports) and acks with this worker's capacity. A
// protocol version mismatch is answered with an error frame — a
// compatible dispatcher never sends one at hello, and an incompatible
// one gets an observable rejection on the wire instead of silence (and
// never a hello ack, so it will not consider this worker live).
func (w *Worker) handleHello(m p2p.Message) {
	var h helloBody
	if err := decodeBody(m, &h); err != nil {
		return
	}
	if h.ReplyAddr != "" && w.cfg.AddPeer != nil {
		w.cfg.AddPeer(m.From, h.ReplyAddr)
	}
	if h.Proto != proto {
		_ = sendFrame(w.cfg.Transport, p2p.KindDispatchError, m.From, m.Round, errorBody{
			Message: fmt.Sprintf("dispatch: protocol version %d, worker speaks %d", h.Proto, proto),
		})
		return
	}
	w.reg.Inc("worker_hellos_total")
	_ = sendFrame(w.cfg.Transport, p2p.KindDispatchHello, m.From, m.Round, helloBody{
		Proto: proto, Capacity: w.cfg.Capacity, Codecs: w.cfg.Codecs,
	})
}

// sendResult ships a terminal result body. Legacy bodies (no codec) go
// as one monolithic JSON frame exactly as every worker before chunking
// did. Codec-path bodies are framed as a split body (JSON + binary
// parameter section) and handed to the chunk streamer, which stays
// monolithic when the body fits one frame and otherwise streams it —
// lifting the per-frame cap off the model size.
func (w *Worker) sendResult(to, seq int, body resultBody, paramSection []byte) error {
	if body.ParamCodec == "" {
		return sendFrame(w.cfg.Transport, p2p.KindDispatchResult, to, seq, body)
	}
	jsonData, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("dispatch: encode result: %w", err)
	}
	chunks, err := p2p.SendChunked(w.cfg.Transport, p2p.KindDispatchResult, to, seq, encodeSplitBody(jsonData, paramSection))
	if err != nil {
		return err
	}
	if chunks > 0 {
		w.reg.Inc("worker_chunked_results_total")
	}
	return nil
}

// handleRequest admits a run if capacity allows and executes it on its
// own goroutine; every terminal path reports exactly one result or
// error frame carrying the request's sequence number.
func (w *Worker) handleRequest(ctx context.Context, m p2p.Message) {
	reject := func(b errorBody) {
		_ = sendFrame(w.cfg.Transport, p2p.KindDispatchError, m.From, m.Round, b)
	}
	var req requestBody
	if err := decodeBody(m, &req); err != nil {
		// Undecodable request: the token is unknowable, so this is the
		// one rejection that goes out without it.
		reject(errorBody{Message: err.Error()})
		return
	}
	if req.Proto != proto {
		reject(errorBody{Token: req.Token, Message: fmt.Sprintf("dispatch: protocol version %d, worker speaks %d", req.Proto, proto)})
		return
	}
	opts := req.Options.toOptions()
	// The request is content-addressed: re-derive the fingerprint so a
	// canonicalization disagreement (mismatched versions, tampering)
	// fails loudly here instead of caching a wrong result upstream.
	fp, err := hadfl.Fingerprint(req.Scheme, opts)
	if err != nil {
		reject(errorBody{Token: req.Token, Message: err.Error()})
		return
	}
	if fp != req.JobID {
		reject(errorBody{Token: req.Token, Message: fmt.Sprintf("dispatch: fingerprint mismatch: request says %.12s…, worker derives %.12s…", req.JobID, fp)})
		return
	}

	key := runKey{m.From, req.Token, m.Round}
	runCtx := ctx
	var cancel context.CancelFunc
	if req.DeadlineSec > 0 {
		runCtx, cancel = context.WithTimeout(runCtx, time.Duration(req.DeadlineSec*float64(time.Second)))
	} else {
		runCtx, cancel = context.WithCancel(runCtx)
	}
	w.mu.Lock()
	if _, dup := w.running[key]; dup {
		w.mu.Unlock()
		cancel()
		reject(errorBody{Token: req.Token, Message: fmt.Sprintf("dispatch: sequence %d already running", m.Round)})
		return
	}
	if len(w.running) >= w.cfg.Capacity {
		w.mu.Unlock()
		cancel()
		w.reg.Inc("worker_busy_rejections_total")
		w.log.Warn("dispatched run rejected at capacity", "jobID", req.JobID, "capacity", w.cfg.Capacity)
		reject(errorBody{Token: req.Token, Message: fmt.Sprintf("dispatch: worker at capacity %d", w.cfg.Capacity), Busy: true})
		return
	}
	w.running[key] = cancel
	w.reg.SetGauge("worker_running", float64(len(w.running)))
	w.mu.Unlock()

	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		defer cancel()
		w.reg.Inc("worker_runs_total")
		t0 := w.now()
		// The run's spans parent under the dispatcher's propagated span
		// context, so both processes' spans share one TraceID. A Buffer
		// tees everything recorded locally for shipment home on the
		// terminal frame (whatever kind it turns out to be).
		buf := &trace.Buffer{}
		rec := trace.MultiRecorder(w.cfg.Tracer, buf)
		spanCtx := trace.ContextWith(runCtx, req.Trace.spanContext())
		spanCtx, span := trace.Start(spanCtx, rec, "worker.run")
		span.SetAttr("jobID", req.JobID)
		span.SetAttr("scheme", req.Scheme)
		log := w.log.With("jobID", req.JobID, "scheme", req.Scheme, "traceID", span.Context().TraceID)
		log.Info("dispatched run started", "from", m.From, "seq", m.Round)
		var rounds atomic.Int64
		res, err := w.cfg.Runner(spanCtx, req.Scheme, opts, func(u hadfl.RoundUpdate) {
			rounds.Add(1)
			_ = sendFrame(w.cfg.Transport, p2p.KindDispatchRound, m.From, m.Round, roundBody{
				Token: req.Token, Round: u.Round, Time: u.Time, Loss: u.Loss,
				Accuracy: u.Accuracy, Selected: u.Selected, Bypassed: u.Bypassed,
			})
		})
		w.mu.Lock()
		delete(w.running, key)
		w.reg.SetGauge("worker_running", float64(len(w.running)))
		w.mu.Unlock()
		dur := w.now().Sub(t0)
		w.reg.Observe("worker_run_seconds", dur.Seconds())
		span.SetAttr("rounds", fmt.Sprint(rounds.Load()))
		// shipHome ends the run span, drains every span this run
		// recorded and attaches them to the outbound terminal body.
		shipHome := func() *wireTrace {
			span.End()
			return &wireTrace{TraceID: span.Context().TraceID, Spans: buf.Drain()}
		}
		if err != nil {
			canceled := errors.Is(err, context.Canceled)
			if canceled {
				log.Info("dispatched run canceled", "durationSec", dur.Seconds())
			} else {
				log.Error("dispatched run failed", "err", err, "durationSec", dur.Seconds())
			}
			span.SetError(err)
			w.reg.Inc("worker_runs_failed_total")
			reject(errorBody{
				Token:    req.Token,
				Message:  err.Error(),
				Canceled: canceled,
				Timeout:  errors.Is(err, context.DeadlineExceeded),
				Trace:    shipHome(),
			})
			return
		}
		w.reg.Inc("worker_runs_completed_total")
		log.Info("dispatched run completed", "durationSec", dur.Seconds(), "rounds", rounds.Load())
		// The result span times the terminal frame's assembly — on big
		// models the final parameter vector dominates the encode cost.
		_, rspan := trace.Start(spanCtx, rec, "worker.result")
		body := toResultBody(res)
		body.Token = req.Token
		var paramSection []byte
		// Empty vectors stay inline: JSON keeps the nil-vs-empty
		// distinction a binary section cannot carry.
		if req.Codec != "" && len(res.FinalParams) > 0 {
			// Codec path: a non-empty request codec proves the dispatcher
			// reassembles split bodies and chunk streams, so the parameter
			// vector leaves the JSON and ships as the negotiated codec's
			// binary section. An unrecognized codec name degrades to raw64
			// (the fallback every fleet shares), never back to legacy.
			codec, ok := p2p.ParamCodecByName(req.Codec)
			if !ok {
				codec, _ = p2p.ParamCodecByName(p2p.ParamCodecRaw64)
			}
			var ref []float64
			if codec.UsesRef() {
				if r, rerr := hadfl.InitialParams(opts); rerr == nil {
					ref = r
					body.ParamRef = paramRefInit
				}
			}
			paramSection, body.ParamExact = codec.Encode(res.FinalParams, ref)
			body.ParamCodec = codec.Name()
			body.ParamCount = len(res.FinalParams)
			body.FinalParams = nil
		}
		rspan.End()
		body.Trace = shipHome()
		if err := w.sendResult(m.From, m.Round, body, paramSection); err != nil {
			// The run finished but its result frame cannot be built or
			// sent (NaN in the parameters defeats JSON, or the body
			// outgrew the frame cap). Falling silent would leave the
			// dispatcher waiting out the job timeout on a healthy,
			// heartbeating worker — report the failure as the terminal
			// error frame instead (tiny, always encodable).
			w.reg.Inc("worker_result_send_errors_total")
			log.Error("dispatched result undeliverable", "err", err)
			reject(errorBody{
				Token:   req.Token,
				Message: fmt.Sprintf("dispatch: result undeliverable: %v", err),
			})
		}
	}()
}
