package dispatch

// Wire-codec and chunk-streaming suite: codec negotiation across mixed
// fleets, the >16 MiB chunked result path, exact-codec byte identity
// and the lossy codecs' drift bounds — all over the same simnet the
// e2e suite uses.

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"hadfl"
	"hadfl/internal/metrics"
	"hadfl/internal/p2p"
	"hadfl/internal/trace"
)

// startCodecHarness is startHarness with the codec knobs exposed: the
// dispatcher's preferred codec and the workers' advertised lists. The
// liveness grace is generous — these tests exercise the wire encoding,
// not failure detection, and a tight grace on a loaded 1-core CI host
// can mark the worker down mid-encode and silently fall back to local
// execution, voiding what the assertions think they proved.
func startCodecHarness(t *testing.T, codec string, workerCodecs []string, workerIDs []int, runner Runner) *harness {
	t.Helper()
	h := &harness{
		t:       t,
		hub:     p2p.NewChanHub(),
		workers: make(map[int]*Worker),
		reg:     metrics.NewRegistry(),
		tracer:  trace.NewTracer(0),
	}
	ctx, cancel := context.WithCancel(context.Background())
	h.stop = cancel
	for _, id := range workerIDs {
		w, err := NewWorker(WorkerConfig{
			Transport:   h.hub.Node(id),
			Capacity:    1,
			Codecs:      workerCodecs,
			Runner:      runner,
			RecvTimeout: 10 * time.Millisecond,
			Metrics:     h.reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		h.workers[id] = w
		h.done.Add(1)
		go func() {
			defer h.done.Done()
			_ = w.Serve(ctx)
		}()
	}
	d, err := New(Config{
		Transport:      h.hub.Node(dispatcherID),
		Workers:        workerIDs,
		Codec:          codec,
		HeartbeatEvery: 50 * time.Millisecond,
		LivenessGrace:  5 * time.Second,
		RecvTimeout:    10 * time.Millisecond,
		Metrics:        h.reg,
		Tracer:         h.tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.disp = d
	readyCtx, cancelReady := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelReady()
	if err := d.WaitReady(readyCtx, len(workerIDs)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		h.stop()
		h.done.Wait()
		_ = h.disp.Close()
	})
	return h
}

func TestChooseCodec(t *testing.T) {
	all := p2p.ParamCodecNames()
	cases := []struct {
		preferred  string
		advertised []string
		want       string
	}{
		{p2p.ParamCodecRaw64, all, p2p.ParamCodecRaw64},
		{p2p.ParamCodecDelta, all, p2p.ParamCodecDelta},
		// Preference not advertised: the shared fallback wins.
		{p2p.ParamCodecTopK, []string{p2p.ParamCodecRaw64, p2p.ParamCodecF32}, p2p.ParamCodecRaw64},
		// A fleet member advertising nothing is legacy: no codec at all.
		{p2p.ParamCodecRaw64, nil, ""},
		// A worker somehow advertising only exotic codecs we did not ask
		// for: nothing shared, fall back to the legacy exchange.
		{p2p.ParamCodecDelta, []string{"zstd9000"}, ""},
	}
	for _, c := range cases {
		if got := chooseCodec(c.preferred, c.advertised); got != c.want {
			t.Errorf("chooseCodec(%q, %v) = %q, want %q", c.preferred, c.advertised, got, c.want)
		}
	}
}

// TestSimnetDispatchLegacyWorkerInterop pins mixed-fleet compatibility:
// a worker whose hello ack advertises no codecs (an older build) must
// be asked for the legacy exchange — request without a codec, result
// with FinalParams inline in the JSON — and its result adopted.
func TestSimnetDispatchLegacyWorkerInterop(t *testing.T) {
	hub := p2p.NewChanHub()
	legacy := hub.Node(worker1ID)
	var gotCodec atomic.Value
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for ctx.Err() == nil {
			m, ok := legacy.Recv(10 * time.Millisecond)
			if !ok {
				continue
			}
			switch m.Kind {
			case p2p.KindDispatchHello:
				// The pre-codec hello ack: proto + capacity, nothing else.
				_ = sendFrame(legacy, p2p.KindDispatchHello, m.From, m.Round, helloBody{Proto: proto, Capacity: 1})
			case p2p.KindHeartbeat:
				_ = legacy.Send(p2p.Message{Kind: p2p.KindAck, To: m.From, Round: m.Round})
			case p2p.KindDispatchRequest:
				var req requestBody
				if err := decodeBody(m, &req); err != nil {
					continue
				}
				gotCodec.Store(req.Codec)
				_ = sendFrame(legacy, p2p.KindDispatchResult, m.From, m.Round, resultBody{
					Token: req.Token, Scheme: req.Scheme, Accuracy: 0.75, Rounds: 3,
					FinalParams: []float64{1.5, -2.25, 3.125},
				})
			}
		}
	}()
	reg := metrics.NewRegistry()
	d, err := New(Config{
		Transport:      hub.Node(dispatcherID),
		Workers:        []int{worker1ID},
		Codec:          p2p.ParamCodecDelta, // preference is irrelevant to a legacy worker
		HeartbeatEvery: 50 * time.Millisecond,
		LivenessGrace:  5 * time.Second,
		RecvTimeout:    10 * time.Millisecond,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	readyCtx, cancelReady := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelReady()
	if err := d.WaitReady(readyCtx, 1); err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background(), hadfl.SchemeHADFL, fastOpts(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := gotCodec.Load().(string); c != "" {
		t.Fatalf("legacy worker was asked for codec %q, want none", c)
	}
	if res.Accuracy != 0.75 || len(res.FinalParams) != 3 || res.FinalParams[2] != 3.125 {
		t.Fatalf("legacy result mangled: %+v", res)
	}
	if n := reg.Counter("dispatch_wire_codec_raw64_total"); n != 0 {
		t.Fatalf("legacy exchange counted as a codec decode (%d)", n)
	}
	if n := reg.Counter("dispatch_wire_chunks_total"); n != 0 {
		t.Fatalf("legacy exchange produced %d chunk frames", n)
	}
}

// TestSimnetDispatchChunkedLargeResult is the chunk streamer's
// acceptance test: a result whose raw body exceeds the 16 MiB frame cap
// — impossible to ship before chunking — completes, bit for bit. The
// stub runner returns a ~17.6 MB parameter vector (2.2M float64s), so
// the raw64 split body must travel as multiple chunk frames.
func TestSimnetDispatchChunkedLargeResult(t *testing.T) {
	const n = 2_200_000 // 8n = 17.6 MB raw64 > p2p.MaxDispatchBody
	if 8*n <= p2p.MaxDispatchBody {
		t.Fatalf("test vector no longer exceeds the frame cap (%d <= %d)", 8*n, p2p.MaxDispatchBody)
	}
	big := make([]float64, n)
	rng := rand.New(rand.NewSource(99))
	for i := range big {
		big[i] = rng.NormFloat64()
	}
	stub := func(ctx context.Context, scheme string, opts hadfl.Options, onRound func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
		return &hadfl.Result{Scheme: scheme, Accuracy: 0.9, Rounds: 1, FinalParams: big}, nil
	}
	h := startCodecHarness(t, p2p.ParamCodecRaw64, nil, []int{worker1ID}, stub)
	res, err := h.disp.Run(context.Background(), hadfl.SchemeHADFL, fastOpts(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalParams) != n {
		t.Fatalf("%d params survived, want %d", len(res.FinalParams), n)
	}
	for i := range big {
		if math.Float64bits(res.FinalParams[i]) != math.Float64bits(big[i]) {
			t.Fatalf("FinalParams[%d] drifted across the chunk stream", i)
		}
	}
	if n := h.reg.Counter("dispatch_wire_chunked_results_total"); n != 1 {
		t.Fatalf("dispatch_wire_chunked_results_total = %d, want 1", n)
	}
	// ≥ ceil(17.6MB / 4MiB) = 5 chunk frames.
	if n := h.reg.Counter("dispatch_wire_chunks_total"); n < 5 {
		t.Fatalf("dispatch_wire_chunks_total = %d, want >= 5", n)
	}
	if n := h.reg.Counter("worker_chunked_results_total"); n != 1 {
		t.Fatalf("worker_chunked_results_total = %d, want 1", n)
	}
	if n := h.reg.Counter("dispatch_wire_raw_bytes_total"); n != 8*int64(len(big)) {
		t.Fatalf("dispatch_wire_raw_bytes_total = %d, want %d", n, 8*len(big))
	}
}

// TestSimnetDispatchDeltaByteIdentical runs a real job under the delta
// codec: both ends derive the run's initial model independently as the
// reference, and the dispatched result must still match the local run
// byte for byte — delta is exact by construction.
func TestSimnetDispatchDeltaByteIdentical(t *testing.T) {
	opts := fastOpts(17)
	local, err := hadfl.RunContext(context.Background(), hadfl.SchemeHADFL, opts)
	if err != nil {
		t.Fatal(err)
	}
	h := startCodecHarness(t, p2p.ParamCodecDelta, nil, []int{worker1ID}, nil)
	remote, err := h.disp.Run(context.Background(), hadfl.SchemeHADFL, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := summaryJSON(t, remote), summaryJSON(t, local); string(got) != string(want) {
		t.Fatalf("delta-coded summary differs from local:\nremote %s\nlocal  %s", got, want)
	}
	if n := h.reg.Counter("dispatch_wire_codec_delta_total"); n != 1 {
		t.Fatalf("dispatch_wire_codec_delta_total = %d, want 1", n)
	}
	if n := h.reg.Counter("dispatch_wire_lossy_results_total"); n != 0 {
		t.Fatalf("delta counted as lossy (%d)", n)
	}
	raw := h.reg.Counter("dispatch_wire_raw_bytes_total")
	enc := h.reg.Counter("dispatch_wire_encoded_bytes_total")
	if raw != 8*int64(len(local.FinalParams)) {
		t.Fatalf("dispatch_wire_raw_bytes_total = %d, want %d", raw, 8*len(local.FinalParams))
	}
	if enc <= 0 || enc >= raw {
		t.Fatalf("delta encoded %d bytes of %d raw, want a real reduction", enc, raw)
	}
}

// TestSimnetDispatchLossyF32DriftBound dispatches under the f32 codec —
// deliberately lossy — and bounds the damage: every parameter within
// float32 relative precision of the local run's, model quality within
// 0.02 accuracy of it, and the loss visible on the lossy counter.
func TestSimnetDispatchLossyF32DriftBound(t *testing.T) {
	opts := fastOpts(23)
	local, err := hadfl.RunContext(context.Background(), hadfl.SchemeHADFL, opts)
	if err != nil {
		t.Fatal(err)
	}
	h := startCodecHarness(t, p2p.ParamCodecF32, nil, []int{worker1ID}, nil)
	remote, err := h.disp.Run(context.Background(), hadfl.SchemeHADFL, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.FinalParams) != len(local.FinalParams) {
		t.Fatalf("param count %d, want %d", len(remote.FinalParams), len(local.FinalParams))
	}
	for i, want := range local.FinalParams {
		if drift := math.Abs(remote.FinalParams[i] - want); drift > math.Abs(want)*1e-6+1e-30 {
			t.Fatalf("FinalParams[%d] drifted %v past float32 precision", i, drift)
		}
	}
	// The narrowed model must still be the same model in practice.
	_, acc, err := hadfl.EvaluateParams(opts, remote.FinalParams)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-local.Accuracy) > 0.02 {
		t.Fatalf("f32 model accuracy %v, local %v: drift past 0.02", acc, local.Accuracy)
	}
	if n := h.reg.Counter("dispatch_wire_codec_f32_total"); n != 1 {
		t.Fatalf("dispatch_wire_codec_f32_total = %d, want 1", n)
	}
	if n := h.reg.Counter("dispatch_wire_lossy_results_total"); n != 1 {
		t.Fatalf("dispatch_wire_lossy_results_total = %d, want 1 (trained float64s cannot all survive f32)", n)
	}
	// Half the bytes, by construction.
	raw := h.reg.Counter("dispatch_wire_raw_bytes_total")
	enc := h.reg.Counter("dispatch_wire_encoded_bytes_total")
	if enc*2 != raw {
		t.Fatalf("f32 encoded %d bytes of %d raw, want exactly half", enc, raw)
	}
}

// TestWorkerFallsBackToRaw64OnUnknownCodec: a request naming a codec
// this worker does not know (a newer dispatcher's invention) must come
// back raw64-encoded — never legacy, never an error.
func TestWorkerFallsBackToRaw64OnUnknownCodec(t *testing.T) {
	hub := p2p.NewChanHub()
	stub := func(ctx context.Context, scheme string, opts hadfl.Options, onRound func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
		return &hadfl.Result{Scheme: scheme, Accuracy: 0.5, Rounds: 1, FinalParams: []float64{1, 2, 3}}, nil
	}
	w, err := NewWorker(WorkerConfig{Transport: hub.Node(worker1ID), Runner: stub, RecvTimeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = w.Serve(ctx) }()
	probe := hub.Node(dispatcherID)

	opts := fastOpts(1)
	fp, err := hadfl.Fingerprint(hadfl.SchemeHADFL, opts)
	if err != nil {
		t.Fatal(err)
	}
	req := requestBody{Proto: proto, Token: "tok", JobID: fp, Scheme: hadfl.SchemeHADFL, Options: toWire(opts), Codec: "zstd9000"}
	if err := sendFrame(probe, p2p.KindDispatchRequest, worker1ID, 7, req); err != nil {
		t.Fatal(err)
	}
	m, ok := probe.Recv(5 * time.Second)
	if !ok || m.Kind != p2p.KindDispatchResult {
		t.Fatalf("reply (%v, %v), want a result frame", m.Kind, ok)
	}
	body, err := p2p.DispatchBody(m)
	if err != nil {
		t.Fatal(err)
	}
	jsonData, paramData, err := decodeSplitBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(paramData) == 0 {
		t.Fatal("unknown codec fell back to the legacy inline exchange, want a raw64 split body")
	}
	var rb resultBody
	if err := json.Unmarshal(jsonData, &rb); err != nil {
		t.Fatal(err)
	}
	if rb.ParamCodec != p2p.ParamCodecRaw64 || rb.ParamCount != 3 || !rb.ParamExact {
		t.Fatalf("fallback encoding %+v, want exact raw64 of 3 params", rb)
	}
	if len(rb.FinalParams) != 0 {
		t.Fatal("split body still carries FinalParams inline")
	}
}
