package dispatch

// End-to-end suite over the in-process simulated network: a ChanHub
// connects one dispatcher node and worker nodes exactly as TCP would in
// a deployment, but with no real sockets, plus the hub's Kill switch
// for fault injection. The suite pins the subsystem's two contracts:
//
//   - determinism: a dispatched run's summary, curve and final
//     parameter vector are byte-identical to the same request run
//     locally (same fingerprint → same result, wherever it executes);
//   - failure semantics: cancel frames abort the worker's run
//     cooperatively, a worker lost mid-run retries on another and still
//     reproduces the local result, heartbeat loss marks workers down,
//     and with no live worker the dispatcher falls back to local
//     execution.

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"hadfl"
	"hadfl/internal/metrics"
	"hadfl/internal/p2p"
	"hadfl/internal/trace"
)

const (
	dispatcherID = 0
	worker1ID    = 1
	worker2ID    = 2
)

// fastOpts is a seconds-scale run: 2 devices, a short epoch budget.
func fastOpts(seed int64) hadfl.Options {
	return hadfl.Options{Powers: []float64{2, 1}, TargetEpochs: 2, Seed: seed}
}

// harness is one simnet deployment: a hub, a dispatcher, and workers
// serving on their own goroutines.
type harness struct {
	t       *testing.T
	hub     *p2p.ChanHub
	disp    *Dispatcher
	workers map[int]*Worker
	reg     *metrics.Registry
	tracer  *trace.Tracer
	stop    context.CancelFunc
	done    sync.WaitGroup
}

// startHarness boots a dispatcher plus one worker per entry of
// workerIDs (each capacity 1 unless overridden) and waits for every
// worker to register. Tracing is always on — the whole suite,
// byte-identity tests included, runs instrumented, pinning the
// passivity contract (spans never change results).
func startHarness(t *testing.T, workerIDs []int, capacity int, runner Runner) *harness {
	t.Helper()
	h := &harness{
		t:       t,
		hub:     p2p.NewChanHub(),
		workers: make(map[int]*Worker),
		reg:     metrics.NewRegistry(),
		tracer:  trace.NewTracer(0),
	}
	ctx, cancel := context.WithCancel(context.Background())
	h.stop = cancel
	for _, id := range workerIDs {
		w, err := NewWorker(WorkerConfig{
			Transport:   h.hub.Node(id),
			Capacity:    capacity,
			Runner:      runner,
			RecvTimeout: 10 * time.Millisecond,
			Metrics:     h.reg,
			Tracer:      trace.NewTracer(0), // the worker's own ring; spans also ship home
		})
		if err != nil {
			t.Fatal(err)
		}
		h.workers[id] = w
		h.done.Add(1)
		go func() {
			defer h.done.Done()
			_ = w.Serve(ctx)
		}()
	}
	d, err := New(Config{
		Transport:      h.hub.Node(dispatcherID),
		Workers:        workerIDs,
		HeartbeatEvery: 20 * time.Millisecond,
		LivenessGrace:  100 * time.Millisecond,
		RecvTimeout:    10 * time.Millisecond,
		Metrics:        h.reg,
		Tracer:         h.tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.disp = d
	if len(workerIDs) > 0 {
		readyCtx, cancelReady := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancelReady()
		if err := d.WaitReady(readyCtx, len(workerIDs)); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		h.stop()
		h.done.Wait()
		_ = h.disp.Close()
	})
	return h
}

// summaryJSON renders a result the way GET /runs/{id}?curve=1 would —
// the byte-identity oracle. Eval telemetry (wall-clock) is excluded,
// exactly as the serve wire format excludes it.
func summaryJSON(t *testing.T, res *hadfl.Result) []byte {
	t.Helper()
	data, err := json.Marshal(map[string]any{
		"scheme":      res.Scheme,
		"accuracy":    res.Accuracy,
		"time":        res.Time,
		"rounds":      res.Rounds,
		"deviceBytes": res.DeviceBytes,
		"serverBytes": res.ServerBytes,
		"curveName":   res.Series.Name,
		"curve":       res.Series.Points,
		"finalParams": res.FinalParams,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSimnetDispatchByteIdentical is the subsystem's core contract: a
// run dispatched over the simnet returns a summary byte-identical to
// the same request run locally — same fingerprint, same accuracy
// curve, same final parameter vector, bit for bit — and streams the
// same number of round updates the local run reported.
func TestSimnetDispatchByteIdentical(t *testing.T) {
	opts := fastOpts(1)
	scheme := hadfl.SchemeHADFL

	var localRounds []hadfl.RoundUpdate
	localOpts := opts
	localOpts.OnRound = func(u hadfl.RoundUpdate) { localRounds = append(localRounds, u) }
	local, err := hadfl.RunContext(context.Background(), scheme, localOpts)
	if err != nil {
		t.Fatal(err)
	}

	h := startHarness(t, []int{worker1ID}, 1, nil)
	var remoteRounds []hadfl.RoundUpdate
	var mu sync.Mutex
	remote, err := h.disp.Run(context.Background(), scheme, opts, func(u hadfl.RoundUpdate) {
		mu.Lock()
		remoteRounds = append(remoteRounds, u)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}

	if got, want := summaryJSON(t, remote), summaryJSON(t, local); string(got) != string(want) {
		t.Fatalf("dispatched summary differs from local:\nremote %s\nlocal  %s", got, want)
	}
	for i, p := range local.FinalParams {
		if remote.FinalParams[i] != p {
			t.Fatalf("FinalParams[%d]: remote %v != local %v", i, remote.FinalParams[i], p)
		}
	}
	fpLocal, err := hadfl.Fingerprint(scheme, opts)
	if err != nil {
		t.Fatal(err)
	}
	fpRemote, err := hadfl.Fingerprint(remote.Scheme, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fpRemote != fpLocal {
		t.Fatalf("fingerprint drift: remote %s local %s", fpRemote, fpLocal)
	}
	mu.Lock()
	nRemote := len(remoteRounds)
	mu.Unlock()
	if nRemote != len(localRounds) {
		t.Fatalf("round telemetry: remote streamed %d updates, local %d", nRemote, len(localRounds))
	}
	if h.reg.Counter("dispatch_remote_total") != 1 {
		t.Fatalf("dispatch_remote_total = %d, want 1", h.reg.Counter("dispatch_remote_total"))
	}
	if h.reg.Counter("dispatch_local_fallback_total") != 0 {
		t.Fatal("local fallback used despite a live worker")
	}
}

// TestSimnetDispatchEverySchemeByteIdentical sweeps the whole registry
// through the wire once (guarded by -short): any scheme whose result
// does not survive the round trip exactly is a protocol bug.
func TestSimnetDispatchEverySchemeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full-registry dispatch sweep in -short mode")
	}
	h := startHarness(t, []int{worker1ID}, 1, nil)
	opts := fastOpts(3)
	for _, scheme := range hadfl.Schemes() {
		local, err := hadfl.RunContext(context.Background(), scheme, opts)
		if err != nil {
			t.Fatalf("%s local: %v", scheme, err)
		}
		remote, err := h.disp.Run(context.Background(), scheme, opts, nil)
		if err != nil {
			t.Fatalf("%s dispatched: %v", scheme, err)
		}
		if got, want := summaryJSON(t, remote), summaryJSON(t, local); string(got) != string(want) {
			t.Errorf("%s: dispatched summary differs from local", scheme)
		}
	}
}

// TestSimnetDispatchCancelMidRound cancels the caller's context after
// the first round frame arrives: the cancel frame must reach the
// worker, whose RunContext aborts cooperatively, and the dispatcher
// must surface context.Canceled — not a made-up error — while the
// worker drains to zero active runs.
func TestSimnetDispatchCancelMidRound(t *testing.T) {
	h := startHarness(t, []int{worker1ID}, 1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// A run long enough to always be mid-flight when the cancel lands.
	opts := hadfl.Options{Powers: []float64{2, 1}, TargetEpochs: 5000, Seed: 1}
	var once sync.Once
	res, err := h.disp.Run(ctx, hadfl.SchemeHADFL, opts, func(hadfl.RoundUpdate) {
		once.Do(cancel)
	})
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled dispatch returned (%v, %v), want (nil, context.Canceled)", res, err)
	}
	// The worker's run must wind down cooperatively (within about one
	// device step), not linger as an orphan.
	deadline := time.Now().Add(5 * time.Second)
	for h.workers[worker1ID].ActiveRuns() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker still has active runs after cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h.reg.Counter("dispatch_cancels_total") != 1 {
		t.Fatalf("dispatch_cancels_total = %d, want 1", h.reg.Counter("dispatch_cancels_total"))
	}
}

// TestSimnetDispatchDeadlinePropagation ships the remaining deadline
// with the request: the run aborts with DeadlineExceeded.
func TestSimnetDispatchDeadlinePropagation(t *testing.T) {
	h := startHarness(t, []int{worker1ID}, 1, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	opts := hadfl.Options{Powers: []float64{2, 1}, TargetEpochs: 5000, Seed: 1}
	res, err := h.disp.Run(ctx, hadfl.SchemeHADFL, opts, nil)
	if res != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline dispatch returned (%v, %v), want (nil, DeadlineExceeded)", res, err)
	}
}

// TestSimnetDispatchWorkerCrashMidRound kills the executing worker
// after its first round frame. The dispatcher must notice via
// heartbeat loss, retry the run on the surviving worker, and the
// result must still match the local run byte for byte — the retry is
// a full deterministic rerun, not a resume.
func TestSimnetDispatchWorkerCrashMidRound(t *testing.T) {
	// Enough rounds that the kill always lands while the run is still
	// in flight (a run that finishes before the liveness grace expires
	// would complete without ever needing the retry).
	opts := fastOpts(5)
	opts.TargetEpochs = 6
	local, err := hadfl.RunContext(context.Background(), hadfl.SchemeHADFL, opts)
	if err != nil {
		t.Fatal(err)
	}
	h := startHarness(t, []int{worker1ID, worker2ID}, 1, nil)
	// Kill whichever worker sends the first round frame. Round frames
	// carry From, but the dispatcher's onRound does not expose it, so
	// watch both workers' activity instead.
	var killOnce sync.Once
	res, err := h.disp.Run(context.Background(), hadfl.SchemeHADFL, opts, func(hadfl.RoundUpdate) {
		killOnce.Do(func() {
			for id, w := range h.workers {
				if w.ActiveRuns() > 0 {
					h.hub.Kill(id)
				}
			}
		})
	})
	if err != nil {
		t.Fatalf("dispatch with mid-run crash: %v", err)
	}
	if got, want := summaryJSON(t, res), summaryJSON(t, local); string(got) != string(want) {
		t.Fatalf("post-crash retry summary differs from local:\nremote %s\nlocal  %s", got, want)
	}
	if h.reg.Counter("dispatch_retries_total") == 0 {
		t.Fatal("crash produced no retry")
	}
	if h.reg.Counter("dispatch_local_fallback_total") != 0 {
		t.Fatal("fell back to local despite a surviving worker")
	}
}

// TestSimnetDispatchHeartbeatLoss kills an idle worker's link: the
// dispatcher must mark it down after the liveness grace and route the
// next run to local fallback (it is the only worker), then re-register
// it on its own once the link heals.
func TestSimnetDispatchHeartbeatLoss(t *testing.T) {
	h := startHarness(t, []int{worker1ID}, 1, nil)
	h.hub.Kill(worker1ID)
	deadline := time.Now().Add(5 * time.Second)
	for h.disp.LiveWorkers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("silent worker never marked down")
		}
		time.Sleep(10 * time.Millisecond)
	}
	res, err := h.disp.Run(context.Background(), hadfl.SchemeHADFL, fastOpts(7), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Scheme != hadfl.SchemeHADFL {
		t.Fatalf("fallback result %+v", res)
	}
	if h.reg.Counter("dispatch_local_fallback_total") != 1 {
		t.Fatalf("dispatch_local_fallback_total = %d, want 1", h.reg.Counter("dispatch_local_fallback_total"))
	}
	// Heal the link: the dispatcher's hello retries must re-register
	// the worker with no outside help.
	h.hub.Revive(worker1ID)
	readyCtx, cancelReady := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelReady()
	if err := h.disp.WaitReady(readyCtx, 1); err != nil {
		t.Fatalf("worker never re-registered after heal: %v", err)
	}
}

// TestSimnetDispatchNoWorkersConfigured: a dispatcher with an empty
// worker list is exactly the local pool.
func TestSimnetDispatchNoWorkersConfigured(t *testing.T) {
	h := startHarness(t, nil, 1, nil)
	res, err := h.disp.Run(context.Background(), hadfl.SchemeHADFL, fastOpts(9), nil)
	if err != nil {
		t.Fatal(err)
	}
	local, err := hadfl.RunContext(context.Background(), hadfl.SchemeHADFL, fastOpts(9))
	if err != nil {
		t.Fatal(err)
	}
	if string(summaryJSON(t, res)) != string(summaryJSON(t, local)) {
		t.Fatal("fallback result differs from a plain local run")
	}
}

// TestSimnetDispatchBusyOverflow saturates a capacity-1 worker with
// two concurrent runs: one executes remotely, the overflow lands on
// the local fallback, and both reproduce the local results.
func TestSimnetDispatchBusyOverflow(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 4-run saturation test in -short mode")
	}
	h := startHarness(t, []int{worker1ID}, 1, nil)
	var wg sync.WaitGroup
	results := make([]*hadfl.Result, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = h.disp.Run(context.Background(), hadfl.SchemeHADFL, fastOpts(int64(11+i)), nil)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		local, err := hadfl.RunContext(context.Background(), hadfl.SchemeHADFL, fastOpts(int64(11+i)))
		if err != nil {
			t.Fatal(err)
		}
		if string(summaryJSON(t, results[i])) != string(summaryJSON(t, local)) {
			t.Errorf("run %d differs from its local twin", i)
		}
	}
}

// TestWorkerDisambiguatesDispatcherInstances pins the instance-token
// contract: two dispatchers that share a transport id and sequence
// number (a restarted hadfl-serve reuses id 0 and restarts sequences
// at 1) must not collide — both runs execute, and a cancel only
// aborts the run whose token it carries.
func TestWorkerDisambiguatesDispatcherInstances(t *testing.T) {
	hub := p2p.NewChanHub()
	blocker := func(ctx context.Context, _ string, _ hadfl.Options, _ func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	w, err := NewWorker(WorkerConfig{
		Transport:   hub.Node(worker1ID),
		Capacity:    2,
		Runner:      blocker,
		RecvTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = w.Serve(ctx) }()
	probe := hub.Node(dispatcherID)

	fp, err := hadfl.Fingerprint(hadfl.SchemeHADFL, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	const seq = 1
	for _, token := range []string{"instance-a", "instance-b"} {
		req := requestBody{Proto: proto, Token: token, JobID: fp, Scheme: hadfl.SchemeHADFL, Options: toWire(fastOpts(1))}
		if err := sendFrame(probe, p2p.KindDispatchRequest, worker1ID, seq, req); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for w.ActiveRuns() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("want 2 concurrent runs under colliding (id, seq), have %d — second instance's run was treated as a duplicate", w.ActiveRuns())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Cancel instance-a's run only: exactly one run must abort.
	if err := sendFrame(probe, p2p.KindDispatchCancel, worker1ID, seq, cancelBody{Token: "instance-a"}); err != nil {
		t.Fatal(err)
	}
	m, ok := probe.Recv(5 * time.Second)
	if !ok || m.Kind != p2p.KindDispatchError {
		t.Fatalf("expected instance-a's canceled error frame, got (%v, %v)", m.Kind, ok)
	}
	var eb errorBody
	if err := decodeBody(m, &eb); err != nil || !eb.Canceled {
		t.Fatalf("error frame %+v (%v), want canceled", eb, err)
	}
	if n := w.ActiveRuns(); n != 1 {
		t.Fatalf("after one targeted cancel: %d active runs, want 1 (instance-b untouched)", n)
	}
	if err := sendFrame(probe, p2p.KindDispatchCancel, worker1ID, seq, cancelBody{Token: "instance-b"}); err != nil {
		t.Fatal(err)
	}
	for w.ActiveRuns() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("instance-b's run never canceled")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDispatcherRejectsForeignResults pins the dispatcher side of the
// instance-token contract: a result frame whose token is not ours —
// a predecessor instance's orphaned run reporting in on a colliding
// (worker, sequence) pair — must be dropped, never adopted as our
// job's result.
func TestDispatcherRejectsForeignResults(t *testing.T) {
	hub := p2p.NewChanHub()
	imposter := hub.Node(worker1ID)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for ctx.Err() == nil {
			m, ok := imposter.Recv(10 * time.Millisecond)
			if !ok {
				continue
			}
			switch m.Kind {
			case p2p.KindDispatchHello:
				_ = sendFrame(imposter, p2p.KindDispatchHello, m.From, m.Round, helloBody{Proto: proto, Capacity: 1})
			case p2p.KindHeartbeat:
				_ = imposter.Send(p2p.Message{Kind: p2p.KindAck, To: m.From, Round: m.Round})
			case p2p.KindDispatchRequest:
				var req requestBody
				if err := decodeBody(m, &req); err != nil {
					continue
				}
				// A stale orphan's result lands first: same worker, same
				// sequence, different instance token. Then the real one.
				_ = sendFrame(imposter, p2p.KindDispatchResult, m.From, m.Round, resultBody{
					Token: "stale-instance", Scheme: req.Scheme, Accuracy: 0.99, Rounds: 9,
					FinalParams: []float64{6, 6, 6},
				})
				_ = sendFrame(imposter, p2p.KindDispatchResult, m.From, m.Round, resultBody{
					Token: req.Token, Scheme: req.Scheme, Accuracy: 0.5, Rounds: 2,
					FinalParams: []float64{1, 2},
				})
			}
		}
	}()
	reg := metrics.NewRegistry()
	d, err := New(Config{
		Transport:      hub.Node(dispatcherID),
		Workers:        []int{worker1ID},
		HeartbeatEvery: 20 * time.Millisecond,
		RecvTimeout:    10 * time.Millisecond,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	readyCtx, cancelReady := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelReady()
	if err := d.WaitReady(readyCtx, 1); err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background(), hadfl.SchemeHADFL, fastOpts(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 0.5 || res.Rounds != 2 || len(res.FinalParams) != 2 {
		t.Fatalf("adopted a foreign instance's result: %+v", res)
	}
	if reg.Counter("dispatch_stray_results_total") != 1 {
		t.Fatalf("dispatch_stray_results_total = %d, want 1", reg.Counter("dispatch_stray_results_total"))
	}
}

// TestDispatcherIgnoresVersionSkewedWorker: a worker that rejects our
// hellos (protocol mismatch) must never be marked live — no frame it
// sends proves compatibility — so runs route to the local fallback
// instead of failing non-transiently on it.
func TestDispatcherIgnoresVersionSkewedWorker(t *testing.T) {
	hub := p2p.NewChanHub()
	skewed := hub.Node(worker1ID)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for ctx.Err() == nil {
			m, ok := skewed.Recv(10 * time.Millisecond)
			if !ok {
				continue
			}
			if m.Kind == p2p.KindDispatchHello {
				// What any worker speaking another protocol version does:
				// reject the registration with an error frame.
				_ = sendFrame(skewed, p2p.KindDispatchError, m.From, m.Round, errorBody{Message: "version mismatch"})
			}
		}
	}()
	reg := metrics.NewRegistry()
	d, err := New(Config{
		Transport:      hub.Node(dispatcherID),
		Workers:        []int{worker1ID},
		HeartbeatEvery: 20 * time.Millisecond,
		LivenessGrace:  100 * time.Millisecond,
		RecvTimeout:    10 * time.Millisecond,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Give several hello/reject cycles a chance to run.
	time.Sleep(200 * time.Millisecond)
	if n := d.LiveWorkers(); n != 0 {
		t.Fatalf("version-skewed worker marked live (%d)", n)
	}
	res, err := d.Run(context.Background(), hadfl.SchemeHADFL, fastOpts(13), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Scheme != hadfl.SchemeHADFL {
		t.Fatalf("fallback result %+v", res)
	}
	if reg.Counter("dispatch_local_fallback_total") != 1 {
		t.Fatalf("dispatch_local_fallback_total = %d, want 1", reg.Counter("dispatch_local_fallback_total"))
	}
	if reg.Counter("dispatch_stray_errors_total") == 0 {
		t.Fatal("rejections never surfaced on the stray-error counter")
	}
}

// TestWorkerRejectsBadRequests exercises the worker's validation edge:
// wrong protocol version, fingerprint mismatch, junk options — every
// one must come back as an error frame carrying the right sequence,
// never silence or a crash.
func TestWorkerRejectsBadRequests(t *testing.T) {
	hub := p2p.NewChanHub()
	w, err := NewWorker(WorkerConfig{Transport: hub.Node(worker1ID), RecvTimeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = w.Serve(ctx) }()
	probe := hub.Node(dispatcherID)

	goodFP, err := hadfl.Fingerprint(hadfl.SchemeHADFL, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]requestBody{
		"wrong proto":          {Proto: proto + 1, JobID: goodFP, Scheme: hadfl.SchemeHADFL, Options: toWire(fastOpts(1))},
		"fingerprint mismatch": {Proto: proto, JobID: "deadbeef", Scheme: hadfl.SchemeHADFL, Options: toWire(fastOpts(1))},
		"unknown scheme":       {Proto: proto, JobID: goodFP, Scheme: "nope", Options: toWire(fastOpts(1))},
		"invalid options":      {Proto: proto, JobID: goodFP, Scheme: hadfl.SchemeHADFL, Options: reqOptions{Powers: []float64{-4}}},
	}
	seq := 100
	for name, req := range cases {
		seq++
		if err := sendFrame(probe, p2p.KindDispatchRequest, worker1ID, seq, req); err != nil {
			t.Fatalf("%s: send: %v", name, err)
		}
		m, ok := probe.Recv(2 * time.Second)
		if !ok {
			t.Fatalf("%s: no reply", name)
		}
		if m.Kind != p2p.KindDispatchError || m.Round != seq {
			t.Fatalf("%s: reply %v seq %d, want error frame seq %d", name, m.Kind, m.Round, seq)
		}
		var eb errorBody
		if err := decodeBody(m, &eb); err != nil {
			t.Fatalf("%s: decode reply: %v", name, err)
		}
		if eb.Message == "" {
			t.Errorf("%s: empty error message", name)
		}
	}
	// A malformed frame (truncated body claim) must be rejected too.
	m, _ := p2p.NewDispatchFrame(p2p.KindDispatchRequest, worker1ID, 999, []byte(`{"proto":1`))
	if err := probe.Send(m); err != nil {
		t.Fatal(err)
	}
	if rep, ok := probe.Recv(2 * time.Second); !ok || rep.Kind != p2p.KindDispatchError {
		t.Fatalf("malformed request: reply (%v, %v), want an error frame", rep.Kind, ok)
	}
}

// TestSimnetDispatchTraceStitching pins the cross-node tracing
// contract: one dispatched run yields ONE trace in the dispatcher's
// ring whose spans cover both sides of the wire — dispatch.run and
// dispatch.request from the dispatcher, worker.run and worker.result
// shipped home on the result frame — all under a single TraceID, with
// the worker.run span parented under the propagated dispatch.request.
func TestSimnetDispatchTraceStitching(t *testing.T) {
	h := startHarness(t, []int{worker1ID}, 1, nil)
	if _, err := h.disp.Run(context.Background(), hadfl.SchemeHADFL, fastOpts(21), nil); err != nil {
		t.Fatal(err)
	}
	traces := h.tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("one dispatched run produced %d traces, want 1", len(traces))
	}
	tr := traces[0]
	byName := make(map[string]trace.SpanData)
	for _, sd := range tr.Spans {
		if sd.TraceID != tr.TraceID {
			t.Fatalf("span %q carries trace %s, filed under %s", sd.Name, sd.TraceID, tr.TraceID)
		}
		byName[sd.Name] = sd
	}
	for _, name := range []string{"dispatch.run", "dispatch.request", "worker.run", "worker.result"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("trace is missing span %q (have %d spans)", name, len(tr.Spans))
		}
	}
	if byName["dispatch.request"].Parent != byName["dispatch.run"].SpanID {
		t.Fatal("dispatch.request is not a child of dispatch.run")
	}
	if byName["worker.run"].Parent != byName["dispatch.request"].SpanID {
		t.Fatal("worker.run did not stitch under the propagated dispatch.request span")
	}
	if byName["worker.result"].Parent != byName["worker.run"].SpanID {
		t.Fatal("worker.result is not a child of worker.run")
	}
	if byName["worker.run"].Attrs["scheme"] != hadfl.SchemeHADFL {
		t.Fatalf("worker.run attrs %+v", byName["worker.run"].Attrs)
	}
	// The run's histograms observed on the shared registry.
	if hs, ok := h.reg.Histogram("dispatch_rtt_seconds"); !ok || hs.Count == 0 {
		t.Fatal("dispatch_rtt_seconds never observed")
	}
	if hs, ok := h.reg.Histogram("dispatch_result_frame_bytes"); !ok || hs.Count == 0 {
		t.Fatal("dispatch_result_frame_bytes never observed")
	}
	if hs, ok := h.reg.Histogram("worker_run_seconds"); !ok || hs.Count == 0 {
		t.Fatal("worker_run_seconds never observed")
	}
}

// TestSimnetDispatchTraceOnFailure: a canceled run's trace still ships
// the worker-side spans home on the error frame, so failed runs are as
// legible as successful ones.
func TestSimnetDispatchTraceOnFailure(t *testing.T) {
	h := startHarness(t, []int{worker1ID}, 1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := hadfl.Options{Powers: []float64{2, 1}, TargetEpochs: 5000, Seed: 1}
	var once sync.Once
	_, err := h.disp.Run(ctx, hadfl.SchemeHADFL, opts, func(hadfl.RoundUpdate) {
		once.Do(cancel)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	var workerSpan *trace.SpanData
	for _, sd := range h.tracer.Spans() {
		if sd.Name == "worker.run" {
			sd := sd
			workerSpan = &sd
		}
	}
	if workerSpan == nil {
		t.Fatal("canceled run shipped no worker.run span home")
	}
	if workerSpan.Error == "" {
		t.Fatal("canceled worker.run span carries no error")
	}
}
