package dispatch

// The dispatch resilience layer: per-worker circuit breakers, full-
// jitter exponential backoff between retry attempts, hedged dispatch,
// and the typed DispatchError that carries a failed job's whole
// journey. Everything time-related runs on the dispatcher's injected
// clock (d.now / d.sleep / d.jitter) so tests drive the schedules
// without sleeping — the walltime lint analyzer enforces that this
// package never reads the wall clock directly.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"hadfl"
)

// Resilience defaults, overridable through Config.
const (
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 5 * time.Second
	defaultRetryBackoff     = 50 * time.Millisecond
	defaultRetryBackoffMax  = 2 * time.Second
	defaultHedgeQuantile    = 0.95
	// hedgeWarmSamples is how many dispatch_rtt_seconds observations the
	// histogram needs before the hedge delay tracks its quantile instead
	// of the configured HedgeAfter constant.
	hedgeWarmSamples = 16
	// hedgeMinDelay floors the hedge delay so a warmed-up histogram of
	// near-zero RTTs cannot turn hedging into double-dispatching
	// everything immediately.
	hedgeMinDelay = time.Millisecond
)

// errWorkerBusy marks a capacity rejection. The worker is healthy and
// answered promptly, so the retry loop moves to the next worker without
// backoff and the circuit breaker does not count it as a fault.
var errWorkerBusy = errors.New("dispatch: worker busy")

// breakerState is one worker's circuit-breaker position.
type breakerState int

const (
	// breakerClosed: healthy; jobs flow normally.
	breakerClosed breakerState = iota
	// breakerOpen: too many consecutive transient failures; claimWorker
	// skips the worker until the cooldown elapses and a liveness-proving
	// frame half-opens it.
	breakerOpen
	// breakerHalfOpen: one trial job is admitted; success closes the
	// breaker, another transient failure re-opens it.
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breakerEnabled reports whether the per-worker circuit breaker is on
// (Config.BreakerThreshold normalized to > 0).
func (d *Dispatcher) breakerEnabled() bool { return d.cfg.BreakerThreshold > 0 }

// noteWorkerFault records one transient, non-busy failure against a
// worker's breaker: N consecutive faults open it, and a fault during a
// half-open trial re-opens it immediately.
func (d *Dispatcher) noteWorkerFault(id int) {
	if !d.breakerEnabled() {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	ws := d.workers[id]
	if ws == nil {
		return
	}
	ws.trial = false
	ws.failures++
	switch ws.breaker {
	case breakerClosed:
		if ws.failures >= d.cfg.BreakerThreshold {
			d.openBreakerLocked(ws)
		}
	case breakerHalfOpen:
		// The trial job failed: the worker is still sick.
		d.openBreakerLocked(ws)
	}
}

func (d *Dispatcher) openBreakerLocked(ws *workerState) {
	ws.breaker = breakerOpen
	ws.openedAt = d.now()
	d.reg.Inc("dispatch_breaker_open_total")
	d.updateBreakerGaugeLocked()
	d.log.Warn("dispatch breaker open", "worker", ws.id, "failures", ws.failures)
}

// noteWorkerPass resets a worker's fault streak and closes its breaker:
// the worker just proved it can execute runs (a completed run, or a
// genuine run error — the run's fault, not the worker's).
func (d *Dispatcher) noteWorkerPass(id int) {
	if !d.breakerEnabled() {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	ws := d.workers[id]
	if ws == nil {
		return
	}
	ws.failures = 0
	ws.trial = false
	if ws.breaker != breakerClosed {
		ws.breaker = breakerClosed
		d.reg.Inc("dispatch_breaker_close_total")
		d.updateBreakerGaugeLocked()
		d.log.Info("dispatch breaker closed", "worker", ws.id)
	}
}

// maybeHalfOpenLocked moves an open breaker to half-open once the
// cooldown has elapsed. It piggybacks on the heartbeat/hello machinery:
// callers invoke it from refreshLocked, so the transition happens
// exactly when a liveness-proving frame shows the worker is back.
func (d *Dispatcher) maybeHalfOpenLocked(ws *workerState) {
	if ws.breaker != breakerOpen || d.now().Sub(ws.openedAt) < d.cfg.BreakerCooldown {
		return
	}
	ws.breaker = breakerHalfOpen
	d.reg.Inc("dispatch_breaker_halfopen_total")
	d.updateBreakerGaugeLocked()
	d.log.Info("dispatch breaker half-open", "worker", ws.id)
}

func (d *Dispatcher) updateBreakerGaugeLocked() {
	n := 0
	for _, ws := range d.workers {
		if ws.breaker == breakerOpen {
			n++
		}
	}
	d.reg.SetGauge("dispatch_breaker_open_workers", float64(n))
}

// noteLegOutcome classifies one finished attempt for the breaker:
// transient non-busy failures are worker faults; completed runs and
// genuine run errors prove the worker healthy; busy rejections and
// context-driven aborts (our cancel, the job's deadline) say nothing.
func (d *Dispatcher) noteLegOutcome(id int, err error, transient bool) {
	switch {
	case transient:
		if !errors.Is(err, errWorkerBusy) {
			d.noteWorkerFault(id)
		}
	case err == nil:
		d.noteWorkerPass(id)
	case !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded):
		d.noteWorkerPass(id)
	}
}

// reconsiderTried re-admits tried workers that have recovered — alive
// again (re-registered, heartbeat back), breaker not open, and with a
// free slot — so a job whose later attempts kept failing gets one more
// pass at a healed worker before falling back to local. Returns the
// re-admitted ids (sorted; empty means none recovered).
func (d *Dispatcher) reconsiderTried(tried map[int]bool) []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var back []int
	for id := range tried {
		ws := d.workers[id]
		if ws == nil || !ws.alive || ws.breaker == breakerOpen {
			continue
		}
		capacity := ws.capacity
		if capacity <= 0 {
			capacity = 1
		}
		if capacity-ws.inflight <= 0 {
			continue
		}
		back = append(back, id)
	}
	sort.Ints(back)
	for _, id := range back {
		delete(tried, id)
	}
	return back
}

// backoffCeiling is the exponential cap for the k-th retry (0-based):
// min(base<<k, max). The actual delay is full-jitter: uniform in
// [0, ceiling), so synchronized retry storms decorrelate.
func backoffCeiling(base, max time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 0; i < attempt; i++ {
		if d >= max {
			break
		}
		d <<= 1
	}
	if d > max {
		d = max
	}
	return d
}

// newJitter returns the production jitter source: a mutex-guarded
// seeded PRNG drawing uniformly in [0, max). The seed comes from the
// same kernel randomness as the instance token, so concurrent
// dispatchers never share a sequence; tests inject a deterministic
// replacement instead.
func newJitter(seed int64) func(time.Duration) time.Duration {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func(max time.Duration) time.Duration {
		if max <= 0 {
			return 0
		}
		mu.Lock()
		defer mu.Unlock()
		return time.Duration(rng.Int63n(int64(max)))
	}
}

// waitSleep is the production sleep: a timer wait that aborts early
// when ctx dies or the dispatcher closes. Reports whether the full
// delay elapsed.
func (d *Dispatcher) waitSleep(ctx context.Context, dur time.Duration) bool {
	if dur <= 0 {
		return true
	}
	t := time.NewTimer(dur)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	case <-d.closed:
		return false
	}
}

// hedgeDelay is how long an attempt waits before launching its hedge
// leg: the configured HedgeAfter until dispatch_rtt_seconds has
// hedgeWarmSamples observations, then that histogram's HedgeQuantile —
// the trigger tracks the fleet's real latency tail instead of a
// hand-tuned constant. Never below hedgeMinDelay.
func (d *Dispatcher) hedgeDelay() time.Duration {
	delay := d.cfg.HedgeAfter
	if snap, ok := d.reg.Histogram("dispatch_rtt_seconds"); ok && snap.Count >= hedgeWarmSamples {
		if q := time.Duration(snap.Quantile(d.cfg.HedgeQuantile) * float64(time.Second)); q > 0 {
			delay = q
		}
	}
	if delay < hedgeMinDelay {
		delay = hedgeMinDelay
	}
	return delay
}

// roundGate deduplicates round telemetry across retried and hedged
// attempts: runs are byte-deterministic, so every attempt replays the
// same round sequence, and the job's subscribers should see each round
// exactly once. Only rounds beyond the furthest already forwarded pass
// through; delivery stays ordered because the callback runs under the
// gate's lock.
type roundGate struct {
	mu   sync.Mutex
	last int
	fn   func(hadfl.RoundUpdate)
}

func newRoundGate(fn func(hadfl.RoundUpdate)) *roundGate {
	return &roundGate{last: -1, fn: fn}
}

func (g *roundGate) forward(u hadfl.RoundUpdate) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if u.Round <= g.last {
		return
	}
	g.last = u.Round
	if g.fn != nil {
		g.fn(u)
	}
}

// lastRound is the furthest round any attempt streamed back (-1: none).
func (g *roundGate) lastRound() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.last
}

// DispatchAttempt is one worker attempt in a job's dispatch journey.
type DispatchAttempt struct {
	// Worker is the worker id the attempt ran on.
	Worker int
	// Hedge marks a leg launched by hedged dispatch rather than the
	// primary placement.
	Hedge bool
	// Duration is how long the attempt was in flight.
	Duration time.Duration
	// Err is why the attempt ended (empty for a winning attempt).
	Err string
}

// DispatchError is the typed failure a dispatched job surfaces: the
// full journey (dispatcher instance → every worker tried, with
// per-attempt durations → the last streamed round) plus timeout and
// cancellation flags, wrapping the final cause. The serve layer
// threads it through JobError into the HTTP error payload and the
// structured logs, so a POST /runs failure is debuggable from the
// response alone.
type DispatchError struct {
	// Dispatcher is the dispatcher instance token that owned the job.
	Dispatcher string
	// JobID is the run's content-addressed fingerprint.
	JobID string
	// Scheme is the requested training scheme.
	Scheme string
	// Attempts is the worker journey in order, hedge legs included.
	Attempts []DispatchAttempt
	// LastRound is the furthest round any attempt streamed back before
	// the job failed (-1: no round telemetry ever arrived).
	LastRound int
	// Fallback reports that the local fallback ran and Err is its error
	// (false: Err came from the last remote attempt or the context).
	Fallback bool
	// Timeout / Canceled mirror the context error classification so the
	// serve layer keeps its errors.Is-based accounting.
	Timeout  bool
	Canceled bool
	// Err is the final underlying cause.
	Err error
}

// Workers lists the worker ids tried, in attempt order (duplicates
// kept: a reconsidered worker appears once per attempt).
func (e *DispatchError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dispatch: job %.12s (%s) via dispatcher %.8s", e.JobID, e.Scheme, e.Dispatcher)
	if len(e.Attempts) > 0 {
		b.WriteString(" tried workers [")
		for i, a := range e.Attempts {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", a.Worker)
			if a.Hedge {
				b.WriteString("(hedge)")
			}
		}
		b.WriteByte(']')
	}
	if e.Fallback {
		b.WriteString(", fell back to local")
	}
	fmt.Fprintf(&b, ", last round %d: %v", e.LastRound, e.Err)
	return b.String()
}

// Unwrap exposes the cause to errors.Is / errors.As, so context
// classification (Canceled / DeadlineExceeded) survives the wrap.
func (e *DispatchError) Unwrap() error { return e.Err }

// Workers lists the worker ids tried, in attempt order.
func (e *DispatchError) Workers() []int {
	ids := make([]int, len(e.Attempts))
	for i, a := range e.Attempts {
		ids[i] = a.Worker
	}
	return ids
}

// journey accumulates the attempt log Run wraps into a DispatchError
// on failure. Records happen only on Run's goroutine (attempt's select
// loop), so it needs no lock.
type journey struct {
	dispatcher string
	jobID      string
	scheme     string
	attempts   []DispatchAttempt
}

func (j *journey) record(worker int, hedge bool, dur time.Duration, err error) {
	a := DispatchAttempt{Worker: worker, Hedge: hedge, Duration: dur}
	if err != nil {
		a.Err = err.Error()
	}
	j.attempts = append(j.attempts, a)
}

// wrap turns the final cause into the job's DispatchError; nil stays
// nil so success paths pass through untouched.
func (j *journey) wrap(err error, lastRound int, fallback bool) error {
	if err == nil {
		return nil
	}
	return &DispatchError{
		Dispatcher: j.dispatcher,
		JobID:      j.jobID,
		Scheme:     j.scheme,
		Attempts:   j.attempts,
		LastRound:  lastRound,
		Fallback:   fallback,
		Timeout:    errors.Is(err, context.DeadlineExceeded),
		Canceled:   errors.Is(err, context.Canceled),
		Err:        err,
	}
}

// attempt executes one placement of the job: the primary worker plus,
// when hedging is armed and the primary outlasts the hedge delay, one
// hedge leg on a different live worker. The first non-transient
// outcome wins and the losing leg is canceled — runs are
// byte-deterministic, so either leg's result is the same bytes. Legs
// that die transiently are recorded in the journey, marked tried and
// counted against their worker's breaker; transient=true means every
// launched leg failed transiently (the caller backs off and retries).
func (d *Dispatcher) attempt(ctx context.Context, primary *workerState, fp, scheme string, opts hadfl.Options, gate *roundGate, tried map[int]bool, jr *journey) (*hadfl.Result, error, bool) {
	type leg struct {
		ws        *workerState
		hedge     bool
		cancel    context.CancelFunc
		start     time.Time
		done      bool
		res       *hadfl.Result
		err       error
		transient bool
	}
	out := make(chan *leg, 2)
	launch := func(ws *workerState, hedge bool) *leg {
		lctx, cancel := context.WithCancel(ctx)
		l := &leg{ws: ws, hedge: hedge, cancel: cancel, start: d.now()}
		go func() {
			l.res, l.err, l.transient = d.runOn(lctx, ws, fp, scheme, opts, gate.forward, hedge)
			out <- l
		}()
		return l
	}
	legs := []*leg{launch(primary, false)}
	// The hedge arm: a clock-injected wait on its own goroutine, torn
	// down with the attempt so a fast primary never leaks it.
	var armed chan struct{}
	if d.cfg.HedgeAfter > 0 {
		armed = make(chan struct{})
		armCtx, disarm := context.WithCancel(ctx)
		defer disarm()
		arm := armed
		go func() {
			if d.sleep(armCtx, d.hedgeDelay()) {
				close(arm)
			}
		}()
	}
	live := 1
	for {
		select {
		case <-armed:
			armed = nil // one hedge leg at most
			exclude := make(map[int]bool, len(tried)+len(legs))
			for id := range tried {
				exclude[id] = true
			}
			for _, l := range legs {
				exclude[l.ws.id] = true
			}
			if ws2 := d.claimWorker(exclude); ws2 != nil {
				legs = append(legs, launch(ws2, true))
				live++
				d.reg.Inc("dispatch_hedges_total")
				d.log.Info("dispatch hedge launched", "jobID", fp, "primary", primary.id, "hedge", ws2.id)
			}
		case l := <-out:
			live--
			l.done = true
			jr.record(l.ws.id, l.hedge, d.now().Sub(l.start), l.err)
			d.noteLegOutcome(l.ws.id, l.err, l.transient)
			if !l.transient {
				// Terminal outcome — a result, a genuine run error, or a
				// context abort. Cancel the losing leg; its runOn winds
				// down cooperatively and frees the worker's slot.
				for _, other := range legs {
					if other != l && !other.done {
						other.cancel()
						d.reg.Inc("dispatch_hedge_cancels_total")
						d.log.Info("dispatch hedge loser canceled", "jobID", fp, "worker", other.ws.id)
					}
				}
				if l.hedge && l.err == nil {
					d.reg.Inc("dispatch_hedge_wins_total")
				}
				return l.res, l.err, false
			}
			tried[l.ws.id] = true
			if live == 0 {
				return nil, l.err, true
			}
			// The surviving leg carries on as the attempt's last hope.
		}
	}
}
