package dispatch

// Resilience-layer suite over the simnet: circuit-breaker state
// transitions, backoff schedule determinism under the injected
// clock/sleep/jitter (no test here ever sleeps out a backoff),
// hedged-dispatch byte-identity with loser cancellation, the
// DispatchError journey, and the acceptance scenario — a persistently
// flaky worker inside a 3-worker fleet causing zero failed jobs.

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hadfl"
	"hadfl/internal/metrics"
	"hadfl/internal/p2p"
	"hadfl/internal/trace"
)

const worker3ID = 3

// startResilientHarness is startHarness with per-worker runners (nil =
// the real local runner) and a Config hook for the resilience knobs.
func startResilientHarness(t *testing.T, runners map[int]Runner, capacity int, mutate func(*Config)) *harness {
	t.Helper()
	h := &harness{
		t:       t,
		hub:     p2p.NewChanHub(),
		workers: make(map[int]*Worker),
		reg:     metrics.NewRegistry(),
		tracer:  trace.NewTracer(0),
	}
	ctx, cancel := context.WithCancel(context.Background())
	h.stop = cancel
	var ids []int
	for id := range runners {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		w, err := NewWorker(WorkerConfig{
			Transport:   h.hub.Node(id),
			Capacity:    capacity,
			Runner:      runners[id],
			RecvTimeout: 10 * time.Millisecond,
			Metrics:     h.reg,
			Tracer:      trace.NewTracer(0),
		})
		if err != nil {
			t.Fatal(err)
		}
		h.workers[id] = w
		h.done.Add(1)
		go func() {
			defer h.done.Done()
			_ = w.Serve(ctx)
		}()
	}
	cfg := Config{
		Transport:      h.hub.Node(dispatcherID),
		Workers:        ids,
		HeartbeatEvery: 20 * time.Millisecond,
		LivenessGrace:  100 * time.Millisecond,
		RecvTimeout:    10 * time.Millisecond,
		Metrics:        h.reg,
		Tracer:         h.tracer,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.disp = d
	if len(ids) > 0 {
		readyCtx, cancelReady := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancelReady()
		if err := d.WaitReady(readyCtx, len(ids)); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		h.stop()
		h.done.Wait()
		_ = h.disp.Close()
	})
	return h
}

// flakyRunner fails every run with a worker-side abort, which the
// dispatcher classifies as transient (the worker is sick, the run is
// fine).
func flakyRunner(context.Context, string, hadfl.Options, func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
	return nil, context.Canceled
}

// stubLocal is a local-fallback stand-in so resilience tests never pay
// for a real training run just to terminate the retry loop.
func stubLocal(_ context.Context, scheme string, _ hadfl.Options, _ func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
	return &hadfl.Result{Scheme: scheme, Accuracy: 0.5, Rounds: 1, FinalParams: []float64{1}}, nil
}

// waitWorkerSlotsIdle polls until no worker slot or pending call is
// held — the no-leaked-slots oracle for hedged dispatch.
func waitWorkerSlotsIdle(t *testing.T, d *Dispatcher) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		d.mu.Lock()
		inflight := 0
		for _, ws := range d.workers {
			inflight += ws.inflight
		}
		pend := len(d.pending)
		d.mu.Unlock()
		if inflight == 0 && pend == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("leaked slots after hedged run: inflight %d, pending %d", inflight, pend)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitCounter polls the registry until name reaches at least want.
func waitCounter(t *testing.T, reg *metrics.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter(name) < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, never reached %d", name, reg.Counter(name), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDispatchBackoffScheduleDeterministic pins the retry pacing under
// the injected clock: with base 10ms, cap 40ms, identity jitter and two
// persistently flaky workers, one job's retry loop must request
// exactly the sleeps [10ms 20ms 40ms 40ms] — exponential per retry,
// capped, covering the post-reconsideration attempts too — without the
// test ever actually sleeping.
func TestDispatchBackoffScheduleDeterministic(t *testing.T) {
	h := startResilientHarness(t, map[int]Runner{worker1ID: flakyRunner, worker2ID: flakyRunner}, 1, func(cfg *Config) {
		cfg.RetryBackoff = 10 * time.Millisecond
		cfg.RetryBackoffMax = 40 * time.Millisecond
		cfg.BreakerThreshold = -1 // isolate backoff from breaker skips
		cfg.Local = stubLocal
	})
	var mu sync.Mutex
	var slept []time.Duration
	// Deterministic injection: jitter returns its ceiling, sleep records
	// and returns instantly. Set before any Run, so nothing reads them
	// concurrently.
	h.disp.jitter = func(max time.Duration) time.Duration { return max }
	h.disp.sleep = func(ctx context.Context, d time.Duration) bool {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
		return true
	}

	res, err := h.disp.Run(context.Background(), hadfl.SchemeHADFL, fastOpts(41), nil)
	if err != nil {
		t.Fatalf("run with flaky fleet: %v", err)
	}
	if res.Accuracy != 0.5 {
		t.Fatalf("result did not come from the local fallback: %+v", res)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 40 * time.Millisecond}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) != len(want) {
		t.Fatalf("backoff sleeps %v, want %v", slept, want)
	}
	for i, w := range want {
		if slept[i] != w {
			t.Fatalf("backoff sleeps %v, want %v", slept, want)
		}
	}
	if got := h.reg.Counter("dispatch_retries_total"); got != 4 {
		t.Fatalf("dispatch_retries_total = %d, want 4 (two workers, one reconsideration pass)", got)
	}
	if got := h.reg.Counter("dispatch_reconsider_total"); got != 1 {
		t.Fatalf("dispatch_reconsider_total = %d, want 1", got)
	}
	if hs, ok := h.reg.Histogram("dispatch_retry_backoff_seconds"); !ok || hs.Count != 4 {
		t.Fatalf("dispatch_retry_backoff_seconds observed %d delays, want 4", hs.Count)
	}
	if got := h.reg.Counter("dispatch_local_fallback_total"); got != 1 {
		t.Fatalf("dispatch_local_fallback_total = %d, want 1", got)
	}
}

// TestDispatchBreakerTransitions walks one worker's breaker through
// the full machine: closed → open (threshold faults), open skips the
// worker entirely, cooldown + heartbeat → half-open, a successful
// trial closes it; then a second trip whose half-open trial FAILS
// re-opens it immediately.
func TestDispatchBreakerTransitions(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	switchable := func(ctx context.Context, scheme string, opts hadfl.Options, onRound func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
		if failing.Load() {
			return nil, context.Canceled
		}
		return &hadfl.Result{Scheme: scheme, Accuracy: 0.9, Rounds: 2, FinalParams: []float64{1, 2}}, nil
	}
	h := startResilientHarness(t, map[int]Runner{worker1ID: switchable}, 1, func(cfg *Config) {
		cfg.BreakerThreshold = 2
		cfg.BreakerCooldown = 30 * time.Millisecond // heartbeats at 20ms deliver the half-open nudge fast
		cfg.RetryBackoff = -1
		cfg.Local = stubLocal
	})

	// Job A: two transient faults (initial attempt + the reconsideration
	// pass) trip the breaker, then the job lands on the local fallback.
	if _, err := h.disp.Run(context.Background(), hadfl.SchemeHADFL, fastOpts(42), nil); err != nil {
		t.Fatalf("job A: %v", err)
	}
	if got := h.reg.Counter("dispatch_breaker_open_total"); got != 1 {
		t.Fatalf("dispatch_breaker_open_total = %d, want 1", got)
	}
	if got := h.reg.Gauge("dispatch_breaker_open_workers"); got != 1 {
		t.Fatalf("dispatch_breaker_open_workers = %v, want 1", got)
	}

	// Job B while open: the worker must not even be asked.
	requestsBefore := h.reg.Counter("dispatch_requests_total")
	if _, err := h.disp.Run(context.Background(), hadfl.SchemeHADFL, fastOpts(43), nil); err != nil {
		t.Fatalf("job B: %v", err)
	}
	if got := h.reg.Counter("dispatch_requests_total"); got != requestsBefore {
		t.Fatalf("open breaker still sent requests: %d -> %d", requestsBefore, got)
	}

	// Heal the worker; the cooldown plus a heartbeat ack half-opens the
	// breaker with no job traffic at all.
	failing.Store(false)
	waitCounter(t, h.reg, "dispatch_breaker_halfopen_total", 1)

	// Job C is the trial: it runs remotely and closes the breaker.
	res, err := h.disp.Run(context.Background(), hadfl.SchemeHADFL, fastOpts(44), nil)
	if err != nil {
		t.Fatalf("trial job: %v", err)
	}
	if res.Accuracy != 0.9 {
		t.Fatalf("trial job did not run remotely: %+v", res)
	}
	if got := h.reg.Counter("dispatch_breaker_close_total"); got != 1 {
		t.Fatalf("dispatch_breaker_close_total = %d, want 1", got)
	}
	if got := h.reg.Gauge("dispatch_breaker_open_workers"); got != 0 {
		t.Fatalf("dispatch_breaker_open_workers = %v after close, want 0", got)
	}

	// Second trip, and this time the half-open trial fails: the breaker
	// must re-open immediately (open_total reaches 3: trip, trip, failed
	// trial), never close.
	failing.Store(true)
	if _, err := h.disp.Run(context.Background(), hadfl.SchemeHADFL, fastOpts(45), nil); err != nil {
		t.Fatalf("job D: %v", err)
	}
	waitCounter(t, h.reg, "dispatch_breaker_open_total", 2)
	waitCounter(t, h.reg, "dispatch_breaker_halfopen_total", 2)
	if _, err := h.disp.Run(context.Background(), hadfl.SchemeHADFL, fastOpts(46), nil); err != nil {
		t.Fatalf("failed-trial job: %v", err)
	}
	if got := h.reg.Counter("dispatch_breaker_open_total"); got != 3 {
		t.Fatalf("dispatch_breaker_open_total = %d, want 3 (failed trial re-opens)", got)
	}
	if got := h.reg.Counter("dispatch_breaker_close_total"); got != 1 {
		t.Fatalf("dispatch_breaker_close_total = %d, want 1 still", got)
	}
}

// TestDispatchHedgedRunByteIdentical forces a hedge: the primary
// worker stalls, the hedge delay elapses, the duplicate lands on the
// second worker and wins — and its result is byte-identical to the
// unhedged local run. The loser is canceled (counter asserted) and no
// worker slot or pending call leaks.
func TestDispatchHedgedRunByteIdentical(t *testing.T) {
	opts := fastOpts(51)
	local, err := hadfl.RunContext(context.Background(), hadfl.SchemeHADFL, opts)
	if err != nil {
		t.Fatal(err)
	}
	stall := func(ctx context.Context, scheme string, o hadfl.Options, onRound func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(30 * time.Second):
			return nil, errors.New("stall runner timed out")
		}
	}
	h := startResilientHarness(t, map[int]Runner{worker1ID: stall, worker2ID: nil}, 1, func(cfg *Config) {
		cfg.HedgeAfter = 30 * time.Millisecond
	})

	res, err := h.disp.Run(context.Background(), hadfl.SchemeHADFL, opts, nil)
	if err != nil {
		t.Fatalf("hedged run: %v", err)
	}
	if got, want := summaryJSON(t, res), summaryJSON(t, local); string(got) != string(want) {
		t.Fatalf("hedged result differs from the unhedged local run:\nhedged %s\nlocal  %s", got, want)
	}
	if got := h.reg.Counter("dispatch_hedges_total"); got != 1 {
		t.Fatalf("dispatch_hedges_total = %d, want 1", got)
	}
	if got := h.reg.Counter("dispatch_hedge_wins_total"); got != 1 {
		t.Fatalf("dispatch_hedge_wins_total = %d, want 1", got)
	}
	if got := h.reg.Counter("dispatch_hedge_cancels_total"); got != 1 {
		t.Fatalf("dispatch_hedge_cancels_total = %d, want 1", got)
	}
	if got := h.reg.Counter("dispatch_local_fallback_total"); got != 0 {
		t.Fatalf("hedged run fell back to local (%d)", got)
	}
	waitWorkerSlotsIdle(t, h.disp)
	// The stalled primary must have been aborted cooperatively.
	deadline := time.Now().Add(5 * time.Second)
	for h.workers[worker1ID].ActiveRuns() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("losing leg still running on the primary worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDispatchHedgeNotArmedForFastRuns: a run that finishes inside the
// hedge delay never launches (or leaks) a hedge leg.
func TestDispatchHedgeNotArmedForFastRuns(t *testing.T) {
	h := startResilientHarness(t, map[int]Runner{worker1ID: nil, worker2ID: nil}, 1, func(cfg *Config) {
		cfg.HedgeAfter = 30 * time.Second
	})
	if _, err := h.disp.Run(context.Background(), hadfl.SchemeHADFL, fastOpts(52), nil); err != nil {
		t.Fatal(err)
	}
	if got := h.reg.Counter("dispatch_hedges_total"); got != 0 {
		t.Fatalf("dispatch_hedges_total = %d, want 0", got)
	}
	if got := h.reg.Counter("dispatch_hedge_cancels_total"); got != 0 {
		t.Fatalf("dispatch_hedge_cancels_total = %d, want 0", got)
	}
	waitWorkerSlotsIdle(t, h.disp)
}

// TestDispatchErrorCarriesJourney pins the typed failure shape: a job
// whose every attempt (including the reconsideration pass) fails
// transiently and whose local fallback then errors must surface a
// *DispatchError carrying the dispatcher instance, every worker
// attempt in order, the fallback flag and the last streamed round.
func TestDispatchErrorCarriesJourney(t *testing.T) {
	localErr := errors.New("local fallback exploded")
	h := startResilientHarness(t, map[int]Runner{worker1ID: flakyRunner}, 1, func(cfg *Config) {
		cfg.BreakerThreshold = -1
		cfg.RetryBackoff = -1
		cfg.Local = func(context.Context, string, hadfl.Options, func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
			return nil, localErr
		}
	})
	res, err := h.disp.Run(context.Background(), hadfl.SchemeHADFL, fastOpts(61), nil)
	if res != nil || err == nil {
		t.Fatalf("want a failure, got (%v, %v)", res, err)
	}
	var derr *DispatchError
	if !errors.As(err, &derr) {
		t.Fatalf("error is not a *DispatchError: %v", err)
	}
	if derr.Dispatcher == "" || derr.JobID == "" || derr.Scheme != hadfl.SchemeHADFL {
		t.Fatalf("journey identity incomplete: %+v", derr)
	}
	fp, _ := hadfl.Fingerprint(hadfl.SchemeHADFL, fastOpts(61))
	if derr.JobID != fp {
		t.Fatalf("journey JobID %s, want fingerprint %s", derr.JobID, fp)
	}
	// Initial attempt plus the reconsideration pass, both on worker 1.
	if got := derr.Workers(); len(got) != 2 || got[0] != worker1ID || got[1] != worker1ID {
		t.Fatalf("journey workers %v, want [1 1]", got)
	}
	for i, a := range derr.Attempts {
		if a.Err == "" || a.Hedge {
			t.Fatalf("attempt %d incomplete: %+v", i, a)
		}
	}
	if !derr.Fallback {
		t.Fatal("journey does not record the local fallback")
	}
	if derr.LastRound != -1 {
		t.Fatalf("LastRound = %d, want -1 (no round ever streamed)", derr.LastRound)
	}
	if derr.Timeout || derr.Canceled {
		t.Fatalf("spurious timeout/cancel flags: %+v", derr)
	}
	if !errors.Is(err, localErr) {
		t.Fatal("DispatchError does not unwrap to the fallback's cause")
	}
	msg := err.Error()
	for _, frag := range []string{"tried workers [1 1]", "fell back to local", "last round -1", "local fallback exploded"} {
		if !strings.Contains(msg, frag) {
			t.Fatalf("Error() = %q, missing %q", msg, frag)
		}
	}
}

// TestDispatchErrorPreservesContextClassification: wrapping must not
// break the serve pool's errors.Is accounting — a canceled dispatched
// job still reads as context.Canceled with the journey attached.
func TestDispatchErrorPreservesContextClassification(t *testing.T) {
	h := startResilientHarness(t, map[int]Runner{worker1ID: nil}, 1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := hadfl.Options{Powers: []float64{2, 1}, TargetEpochs: 5000, Seed: 1}
	var once sync.Once
	_, err := h.disp.Run(ctx, hadfl.SchemeHADFL, opts, func(hadfl.RoundUpdate) {
		once.Do(cancel)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(context.Canceled)", err)
	}
	var derr *DispatchError
	if !errors.As(err, &derr) {
		t.Fatalf("canceled run lost its journey: %v", err)
	}
	if !derr.Canceled || derr.Timeout {
		t.Fatalf("journey flags %+v, want Canceled", derr)
	}
	if derr.LastRound < 0 {
		t.Fatalf("LastRound = %d: the cancel fired on a streamed round, so at least round 0 arrived", derr.LastRound)
	}
}

// TestSimnetFlakyWorkerFleetZeroFailures is the acceptance scenario:
// one persistently flaky worker inside a 3-worker fleet, breaker and
// hedging armed. Every job must succeed, every result must be
// byte-identical to its unhedged local twin, the breaker must open on
// the flaky worker, and nothing may fall back to local execution.
func TestSimnetFlakyWorkerFleetZeroFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run fleet scenario in -short mode")
	}
	h := startResilientHarness(t, map[int]Runner{worker1ID: flakyRunner, worker2ID: nil, worker3ID: nil}, 1, func(cfg *Config) {
		cfg.BreakerThreshold = 2
		cfg.BreakerCooldown = 10 * time.Minute // stays open for the whole test
		cfg.RetryBackoff = time.Millisecond
		cfg.HedgeAfter = 50 * time.Millisecond
	})
	for i, seed := range []int64{71, 72, 73} {
		opts := fastOpts(seed)
		local, err := hadfl.RunContext(context.Background(), hadfl.SchemeHADFL, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.disp.Run(context.Background(), hadfl.SchemeHADFL, opts, nil)
		if err != nil {
			t.Fatalf("job %d failed despite two healthy workers: %v", i, err)
		}
		if got, want := summaryJSON(t, res), summaryJSON(t, local); string(got) != string(want) {
			t.Fatalf("job %d differs from its local twin:\nfleet %s\nlocal %s", i, got, want)
		}
	}
	if got := h.reg.Counter("dispatch_breaker_open_total"); got < 1 {
		t.Fatalf("dispatch_breaker_open_total = %d, want >= 1", got)
	}
	if got := h.reg.Counter("dispatch_local_fallback_total"); got != 0 {
		t.Fatalf("dispatch_local_fallback_total = %d, want 0", got)
	}
	waitWorkerSlotsIdle(t, h.disp)
}
