package dispatch

import (
	"reflect"
	"testing"

	"hadfl"
)

// TestWireOptionsCoverEveryOptionsField is the drift guard for the
// wire copy of hadfl.Options: it populates every Options field with a
// non-zero value via reflection and requires toWire → toOptions to
// round-trip it exactly. The day a new Options field lands without a
// matching reqOptions field, this fails — at unit-test time, not as a
// fingerprint mismatch rejecting every remote run in production.
func TestWireOptionsCoverEveryOptionsField(t *testing.T) {
	var o hadfl.Options
	v := reflect.ValueOf(&o).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		name := v.Type().Field(i).Name
		if name == "OnRound" {
			continue // the callback observes a run, it is not wire data
		}
		switch f.Kind() {
		case reflect.Slice:
			s := reflect.MakeSlice(f.Type(), 1, 1)
			fillScalar(t, name, s.Index(0), i)
			f.Set(s)
		case reflect.Map:
			m := reflect.MakeMap(f.Type())
			k := reflect.New(f.Type().Key()).Elem()
			fillScalar(t, name, k, i)
			val := reflect.New(f.Type().Elem()).Elem()
			fillScalar(t, name, val, i+1)
			m.SetMapIndex(k, val)
			f.Set(m)
		default:
			fillScalar(t, name, f, i)
		}
	}
	got := toWire(o).toOptions()
	if !reflect.DeepEqual(got, o) {
		t.Fatalf("wire round trip dropped data:\n got %+v\nwant %+v\n(extend reqOptions/toWire/toOptions — and serve.RunOptions — for the new field)", got, o)
	}
}

func fillScalar(t *testing.T, name string, f reflect.Value, i int) {
	t.Helper()
	switch f.Kind() {
	case reflect.Bool:
		f.SetBool(true)
	case reflect.Int, reflect.Int64:
		f.SetInt(int64(i + 3))
	case reflect.Float64:
		f.SetFloat(float64(i) + 1.5)
	case reflect.String:
		f.SetString(name + "-v")
	default:
		t.Fatalf("Options field %s has kind %v this guard cannot populate — extend fillScalar and the wire structs", name, f.Kind())
	}
}
