package serve

import (
	"reflect"
	"testing"

	"hadfl"
)

// TestRunOptionsCoverEveryOptionsField is the serve-layer drift guard
// (mirroring dispatch's): every hadfl.Options field, populated with a
// non-zero value via reflection, must survive runOptionsFrom →
// toOptions exactly. A future Options field that is not threaded
// through RunOptions fails here at unit-test time instead of silently
// dropping data in the HTTP API or the persisted store sidecars.
func TestRunOptionsCoverEveryOptionsField(t *testing.T) {
	var o hadfl.Options
	v := reflect.ValueOf(&o).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		name := v.Type().Field(i).Name
		if name == "OnRound" {
			continue // progress callback: not wire data by design
		}
		switch f.Kind() {
		case reflect.Slice:
			s := reflect.MakeSlice(f.Type(), 1, 1)
			fillWireScalar(t, name, s.Index(0), i)
			f.Set(s)
		case reflect.Map:
			m := reflect.MakeMap(f.Type())
			k := reflect.New(f.Type().Key()).Elem()
			fillWireScalar(t, name, k, i)
			val := reflect.New(f.Type().Elem()).Elem()
			fillWireScalar(t, name, val, i+1)
			m.SetMapIndex(k, val)
			f.Set(m)
		default:
			fillWireScalar(t, name, f, i)
		}
	}
	got := runOptionsFrom(o).toOptions()
	if !reflect.DeepEqual(got, o) {
		t.Fatalf("RunOptions round trip dropped data:\n got %+v\nwant %+v\n(extend RunOptions/toOptions/runOptionsFrom for the new field)", got, o)
	}
}

func fillWireScalar(t *testing.T, name string, f reflect.Value, i int) {
	t.Helper()
	switch f.Kind() {
	case reflect.Bool:
		f.SetBool(true)
	case reflect.Int, reflect.Int64:
		f.SetInt(int64(i + 3))
	case reflect.Float64:
		f.SetFloat(float64(i) + 1.5)
	case reflect.String:
		f.SetString(name + "-v")
	default:
		t.Fatalf("Options field %s has kind %v this guard cannot populate — extend fillWireScalar and RunOptions", name, f.Kind())
	}
}
