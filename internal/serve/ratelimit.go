package serve

import (
	"sync"
	"time"
)

// TokenBucket is a minimal token-bucket rate limiter: capacity `burst`
// tokens, refilled continuously at `rate` tokens/second. Allow is
// non-blocking — the HTTP layer turns a refusal into 429 rather than
// queueing the request. It is a stateful singleton: create one per
// protected resource and share it across requests.
type TokenBucket struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	rate   float64
	last   time.Time
	now    func() time.Time // injectable clock for tests
}

// NewTokenBucket returns a full bucket sustaining rate requests/second
// with bursts up to burst. A rate <= 0 disables limiting (Allow always
// succeeds).
func NewTokenBucket(rate float64, burst int) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{
		tokens: float64(burst),
		burst:  float64(burst),
		rate:   rate,
		now:    time.Now,
	}
}

// Allow consumes one token if available and reports whether the caller
// may proceed.
func (b *TokenBucket) Allow() bool {
	if b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
