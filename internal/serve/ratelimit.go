package serve

import (
	"sync/atomic"
	"time"
)

// TokenBucket is a non-blocking rate limiter admitting `rate` requests
// per second with bursts up to `burst` — the HTTP layer turns a
// refusal into 429 rather than queueing the request. It is a stateful
// singleton: create one per protected resource and share it across
// requests.
//
// The implementation is GCRA (the generic cell rate algorithm), which
// compresses the classic token bucket's {tokens, last-refill} pair into
// a single theoretical-arrival-time cursor: an admission advances the
// cursor by one emission interval, and a request is refused while the
// cursor runs more than burst intervals ahead of now. One atomic CAS
// per admission — under a request flood every in-flight Allow races on
// a single int64 instead of convoying behind a mutex. The admission
// sequence is exactly the mutex implementation's: a full burst from
// idle, then one admission per interval.
type TokenBucket struct {
	tat      atomic.Int64 // theoretical arrival time, ns since the Unix epoch
	interval int64        // ns between sustained admissions (1/rate)
	burstNs  int64        // how far tat may run ahead of now
	rate     float64
	now      func() time.Time // injectable clock for tests
}

// NewTokenBucket returns a full bucket sustaining rate requests/second
// with bursts up to burst. A rate <= 0 disables limiting (Allow always
// succeeds).
func NewTokenBucket(rate float64, burst int) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	b := &TokenBucket{rate: rate, now: time.Now}
	if rate > 0 {
		b.interval = int64(float64(time.Second) / rate)
		if b.interval < 1 {
			b.interval = 1 // sub-nanosecond intervals round up
		}
		b.burstNs = int64(burst) * b.interval
	}
	return b
}

// Allow consumes one admission if available and reports whether the
// caller may proceed.
func (b *TokenBucket) Allow() bool {
	if b.rate <= 0 {
		return true
	}
	now := b.now().UnixNano()
	for {
		tat := b.tat.Load()
		newTat := tat
		if now > newTat {
			newTat = now // idle gap: the cursor never lags behind now
		}
		newTat += b.interval
		if newTat-now > b.burstNs {
			return false
		}
		if b.tat.CompareAndSwap(tat, newTat) {
			return true
		}
	}
}
