package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"hadfl"
	"hadfl/internal/metrics"
	"hadfl/internal/trace"
)

// Config assembles a Server.
type Config struct {
	// Workers / QueueDepth / JobTimeout size the pool (see PoolConfig).
	Workers    int
	QueueDepth int
	JobTimeout time.Duration
	// RatePerSec / Burst shape the POST /runs token bucket; RatePerSec
	// <= 0 disables limiting.
	RatePerSec float64
	Burst      int
	// RunParallelism is the per-run device concurrency applied to
	// submissions that leave options.parallelism unset. The default 0
	// keeps runs sequential (1): the pool already runs Workers jobs
	// concurrently, so per-run parallelism is an explicit opt-in to
	// trade job throughput for single-run latency. Parallelism never
	// changes results, so it does not participate in the cache key.
	RunParallelism int
	// CacheMaxEntries bounds the result cache (LRU eviction of
	// terminal jobs past the cap; <= 0 means unbounded).
	CacheMaxEntries int
	// StoreDir, when non-empty, persists completed results there (final
	// model + summary keyed by fingerprint, via ResultStore) and
	// rehydrates them into the cache on boot, so identical submissions
	// are served without retraining across restarts.
	StoreDir string
	// Runner overrides the run executor (tests). Default DefaultRunner.
	Runner Runner
	// Metrics receives service telemetry. Default: private registry.
	Metrics *metrics.Registry
	// Tracer collects per-job spans, served at GET /debug/traces. Pass
	// the same tracer to a dispatch backend so remote spans stitch into
	// the same ring. Default: a private trace.DefaultCapacity ring, so
	// the endpoint always works.
	Tracer *trace.Tracer
	// Logger receives structured lifecycle events (job start/finish,
	// failures). Default: discard.
	Logger *slog.Logger
}

// Server wires cache, pool, limiter and metrics behind an
// http.Handler. See the package documentation for the API.
type Server struct {
	cfg     Config
	reg     *metrics.Registry
	tracer  *trace.Tracer
	cache   *Cache
	pool    *Pool
	limiter *TokenBucket
	store   *ResultStore // nil unless cfg.StoreDir is set
	savers  sync.WaitGroup
	start   time.Time
	mux     *http.ServeMux
}

// Tracer returns the server's span ring (for sharing with a dispatch
// backend or inspecting in tests).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// New builds a Server and starts its worker pool. When cfg.StoreDir is
// set, previously persisted results are rehydrated into the cache
// before the server accepts requests; an unusable store directory is
// the only error path.
func New(cfg Config) (*Server, error) {
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.NewTracer(0)
	}
	if cfg.Logger == nil {
		cfg.Logger = trace.NopLogger()
	}
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Metrics,
		tracer:  cfg.Tracer,
		cache:   NewBoundedCache(cfg.Metrics, cfg.CacheMaxEntries),
		limiter: NewTokenBucket(cfg.RatePerSec, cfg.Burst),
		start:   time.Now(),
		mux:     http.NewServeMux(),
	}
	if cfg.StoreDir != "" {
		store, err := NewResultStore(cfg.StoreDir, cfg.Metrics)
		if err != nil {
			return nil, err
		}
		s.store = store
		for _, j := range store.Load() {
			s.cache.GetOrCreate(j.ID, func() *Job { return j })
		}
	}
	s.pool = NewPool(PoolConfig{
		Workers:    cfg.Workers,
		QueueDepth: cfg.QueueDepth,
		JobTimeout: cfg.JobTimeout,
		Runner:     cfg.Runner,
		Metrics:    cfg.Metrics,
		Tracer:     cfg.Tracer,
		Logger:     cfg.Logger,
	})
	s.mux.HandleFunc("POST /runs", s.handleSubmit)
	s.mux.HandleFunc("GET /runs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /schemes", s.handleSchemes)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.Handle("GET /metrics", metrics.Handler(cfg.Metrics, s.start))
	s.mux.Handle("GET /debug/traces", s.tracer.Handler())
	return s, nil
}

// Handler returns the service's HTTP entry point.
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts the pool down (see Pool.Close), then waits for any
// in-flight result persistence: once every job is terminal the pending
// saves are short file writes, so a completed run is never lost to a
// shutdown race.
func (s *Server) Close(ctx context.Context) error {
	err := s.pool.Close(ctx)
	s.savers.Wait()
	return err
}

// Submit is the programmatic submission path behind POST /runs:
// fingerprint, coalesce through the cache, enqueue on a miss. cached
// reports whether an existing job (in any live state, or done) was
// reused. On enqueue failure the fresh job is finished as failed so a
// later identical submission retries it.
func (s *Server) Submit(scheme string, opts hadfl.Options) (job *Job, cached bool, err error) {
	fp, err := hadfl.Fingerprint(scheme, opts)
	if err != nil {
		return nil, false, err
	}
	if opts.Parallelism <= 0 {
		// Unset (or nonsense-negative) means the server default;
		// unlike the library (where 0 is GOMAXPROCS), a serve job
		// defaults to sequential because the pool already runs jobs
		// concurrently.
		if s.cfg.RunParallelism > 0 {
			opts.Parallelism = s.cfg.RunParallelism
		} else {
			opts.Parallelism = 1
		}
	}
	job, cached = s.cache.GetOrCreate(fp, func() *Job { return newJob(fp, scheme, opts) })
	if cached {
		return job, true, nil
	}
	if err := s.pool.Enqueue(job); err != nil {
		job.finish(nil, &JobError{
			JobID: fp, Scheme: scheme, Options: opts,
			Path: []string{"submit"}, Err: err,
			Canceled: errors.Is(err, ErrShuttingDown),
		})
		return nil, false, err
	}
	if s.store != nil {
		s.savers.Add(1)
		go func() {
			defer s.savers.Done()
			<-job.Done()
			if res, jerr := job.Result(); jerr == nil && res != nil {
				_ = s.store.Save(job, res)
			}
		}()
	}
	return job, false, nil
}

// handleSchemes lists the registered training schemes; new schemes
// appear here (and become submittable) without any serve-layer change.
func (s *Server) handleSchemes(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"schemes": hadfl.Schemes()})
}

// RunRequest is the POST /runs body.
type RunRequest struct {
	Scheme  string     `json:"scheme"`
	Options RunOptions `json:"options"`
}

// RunOptions mirrors hadfl.Options minus the callback field (progress
// flows through /events instead). Parallelism is a throughput hint
// only — it never changes the run's result and is excluded from the
// cache fingerprint, so requests differing only here coalesce.
type RunOptions struct {
	Powers       []float64       `json:"powers,omitempty"`
	Model        string          `json:"model,omitempty"`
	Full         bool            `json:"full,omitempty"`
	TargetEpochs float64         `json:"targetEpochs,omitempty"`
	NonIIDAlpha  float64         `json:"nonIIDAlpha,omitempty"`
	Seed         int64           `json:"seed,omitempty"`
	FailAt       map[int]float64 `json:"failAt,omitempty"`
	// GroupSize / InterEvery sweep the hadfl-grouped hierarchy (0 =
	// scheme default). They change results, so unlike Parallelism they
	// are part of the fingerprint: distinct knobs, distinct cache keys.
	GroupSize   int `json:"groupSize,omitempty"`
	InterEvery  int `json:"interEvery,omitempty"`
	Parallelism int `json:"parallelism,omitempty"`
}

func (o RunOptions) toOptions() hadfl.Options {
	return hadfl.Options{
		Powers:       o.Powers,
		Model:        o.Model,
		Full:         o.Full,
		TargetEpochs: o.TargetEpochs,
		NonIIDAlpha:  o.NonIIDAlpha,
		Seed:         o.Seed,
		FailAt:       o.FailAt,
		GroupSize:    o.GroupSize,
		InterEvery:   o.InterEvery,
		Parallelism:  o.Parallelism,
	}
}

// runOptionsFrom is toOptions' inverse, shared by everything that
// writes options back out (the result store's sidecar files). The
// round trip through both is pinned field-for-field by a reflection
// guard test, so a new hadfl.Options field that is not threaded
// through here fails at unit-test time instead of silently dropping
// data on persistence.
func runOptionsFrom(o hadfl.Options) RunOptions {
	return RunOptions{
		Powers:       o.Powers,
		Model:        o.Model,
		Full:         o.Full,
		TargetEpochs: o.TargetEpochs,
		NonIIDAlpha:  o.NonIIDAlpha,
		Seed:         o.Seed,
		FailAt:       o.FailAt,
		GroupSize:    o.GroupSize,
		InterEvery:   o.InterEvery,
		Parallelism:  o.Parallelism,
	}
}

// JobStatus is the wire form of a job.
type JobStatus struct {
	ID          string      `json:"id"`
	Scheme      string      `json:"scheme"`
	State       State       `json:"state"`
	Cached      bool        `json:"cached,omitempty"`
	Created     time.Time   `json:"created"`
	Started     *time.Time  `json:"started,omitempty"`
	Finished    *time.Time  `json:"finished,omitempty"`
	DurationSec float64     `json:"durationSec,omitempty"`
	Error       string      `json:"error,omitempty"`
	Timeout     bool        `json:"timeout,omitempty"`
	Canceled    bool        `json:"canceled,omitempty"`
	Result      *RunSummary `json:"result,omitempty"`
}

// RunSummary is the wire form of a hadfl.Result; the full curve rides
// along only when requested (?curve=1).
type RunSummary struct {
	Scheme      string          `json:"scheme"`
	Accuracy    float64         `json:"accuracy"`
	Time        float64         `json:"time"`
	Rounds      int             `json:"rounds"`
	DeviceBytes int64           `json:"deviceBytes"`
	ServerBytes int64           `json:"serverBytes"`
	CurvePoints int             `json:"curvePoints"`
	Curve       []metrics.Point `json:"curve,omitempty"`
}

func (s *Server) status(j *Job, cached, withCurve bool) JobStatus {
	v := j.snapshot()
	st := JobStatus{
		ID:      j.ID,
		Scheme:  j.Scheme,
		State:   v.state,
		Cached:  cached,
		Created: j.Created,
	}
	if !v.started.IsZero() {
		started := v.started
		st.Started = &started
		if !v.finished.IsZero() {
			finished := v.finished
			st.Finished = &finished
		}
		st.DurationSec = v.running.Seconds()
	}
	if v.jerr != nil {
		st.Error = v.jerr.Error()
		st.Timeout = v.jerr.IsTimeout()
		st.Canceled = v.jerr.IsCanceled()
	}
	if v.result != nil {
		sum := &RunSummary{
			Scheme:      v.result.Scheme,
			Accuracy:    v.result.Accuracy,
			Time:        v.result.Time,
			Rounds:      v.result.Rounds,
			DeviceBytes: v.result.DeviceBytes,
			ServerBytes: v.result.ServerBytes,
		}
		if v.result.Series != nil {
			sum.CurvePoints = v.result.Series.Len()
			if withCurve {
				sum.Curve = v.result.Series.Points
			}
		}
		st.Result = sum
	}
	return st
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.limiter.Allow() {
		s.reg.Inc("rate_limited_total")
		httpError(w, http.StatusTooManyRequests, "rate limit exceeded")
		return
	}
	var req RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Scheme == "" {
		req.Scheme = hadfl.SchemeHADFL
	}
	job, cached, err := s.Submit(req.Scheme, req.Options.toOptions())
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShuttingDown):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	default:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	code := http.StatusAccepted
	if cached {
		code = http.StatusOK
	}
	writeJSON(w, code, s.status(job, cached, false))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.cache.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, ErrUnknownJob.Error())
		return
	}
	withCurve := r.URL.Query().Get("curve") == "1"
	writeJSON(w, http.StatusOK, s.status(job, false, withCurve))
}

// handleEvents streams a job's progress as Server-Sent Events: the
// full replay first, then live events until the job finishes or the
// client disconnects. Event names are the Event.Type values ("state",
// "round"); payloads are the Event JSON.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.cache.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, ErrUnknownJob.Error())
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	s.reg.Inc("sse_streams_total")

	replay, live, cancel := job.Subscribe()
	defer cancel()
	for _, e := range replay {
		if err := writeSSE(w, e); err != nil {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-live:
			if !ok {
				return
			}
			if err := writeSSE(w, e); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptimeSec": time.Since(s.start).Seconds(),
		"jobs":      s.cache.Len(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	metrics.SetRuntimeGauges(s.reg, s.start)
	writeJSON(w, http.StatusOK, map[string]any{
		"uptimeSec":  time.Since(s.start).Seconds(),
		"queueDepth": s.pool.QueueDepth(),
		"cacheJobs":  s.cache.Len(),
		"config": map[string]any{
			"workers":       s.pool.cfg.Workers,
			"queueDepth":    s.pool.cfg.QueueDepth,
			"jobTimeoutSec": s.cfg.JobTimeout.Seconds(),
			"ratePerSec":    s.cfg.RatePerSec,
			"burst":         s.cfg.Burst,
		},
		"metrics": s.reg.Snapshot(),
	})
}

func writeSSE(w http.ResponseWriter, e Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
	return err
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
