package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"hadfl"
	"hadfl/internal/metrics"
	"hadfl/internal/serve/dispatch"
	"hadfl/internal/trace"
)

// Config assembles a Server.
type Config struct {
	// Workers / QueueDepth / JobTimeout size the pool (see PoolConfig).
	Workers    int
	QueueDepth int
	JobTimeout time.Duration
	// RatePerSec / Burst shape the POST /runs token bucket; RatePerSec
	// <= 0 disables limiting.
	RatePerSec float64
	Burst      int
	// RunParallelism is the per-run device concurrency applied to
	// submissions that leave options.parallelism unset. The default 0
	// keeps runs sequential (1): the pool already runs Workers jobs
	// concurrently, so per-run parallelism is an explicit opt-in to
	// trade job throughput for single-run latency. Parallelism never
	// changes results, so it does not participate in the cache key.
	RunParallelism int
	// CacheMaxEntries bounds the result cache (LRU eviction of
	// terminal jobs past the cap; <= 0 means unbounded).
	CacheMaxEntries int
	// StoreDir, when non-empty, persists completed results there (final
	// model + summary keyed by fingerprint, via ResultStore) and
	// rehydrates them into the cache on boot, so identical submissions
	// are served without retraining across restarts.
	StoreDir string
	// Runner overrides the run executor (tests). Default DefaultRunner.
	Runner Runner
	// Metrics receives service telemetry. Default: private registry.
	Metrics *metrics.Registry
	// Tracer collects per-job spans, served at GET /debug/traces. Pass
	// the same tracer to a dispatch backend so remote spans stitch into
	// the same ring. Default: a private trace.DefaultCapacity ring, so
	// the endpoint always works.
	Tracer *trace.Tracer
	// Logger receives structured lifecycle events (job start/finish,
	// failures). Default: discard.
	Logger *slog.Logger
}

// Server wires cache, pool, limiter and metrics behind an
// http.Handler. See the package documentation for the API.
type Server struct {
	cfg     Config
	reg     *metrics.Registry
	tracer  *trace.Tracer
	cache   *Cache
	pool    *Pool
	limiter *TokenBucket
	store   *ResultStore // nil unless cfg.StoreDir is set
	savers  sync.WaitGroup
	start   time.Time
	mux     *http.ServeMux
}

// Tracer returns the server's span ring (for sharing with a dispatch
// backend or inspecting in tests).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// New builds a Server and starts its worker pool. When cfg.StoreDir is
// set, previously persisted results are rehydrated into the cache
// before the server accepts requests; an unusable store directory is
// the only error path.
func New(cfg Config) (*Server, error) {
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.NewTracer(0)
	}
	if cfg.Logger == nil {
		cfg.Logger = trace.NopLogger()
	}
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Metrics,
		tracer:  cfg.Tracer,
		cache:   NewBoundedCache(cfg.Metrics, cfg.CacheMaxEntries),
		limiter: NewTokenBucket(cfg.RatePerSec, cfg.Burst),
		start:   time.Now(),
		mux:     http.NewServeMux(),
	}
	if cfg.StoreDir != "" {
		store, err := NewResultStore(cfg.StoreDir, cfg.Metrics)
		if err != nil {
			return nil, err
		}
		s.store = store
		for _, j := range store.Load() {
			s.cache.GetOrCreate(j.ID, func() *Job { return j })
		}
	}
	s.pool = NewPool(PoolConfig{
		Workers:    cfg.Workers,
		QueueDepth: cfg.QueueDepth,
		JobTimeout: cfg.JobTimeout,
		Runner:     cfg.Runner,
		Metrics:    cfg.Metrics,
		Tracer:     cfg.Tracer,
		Logger:     cfg.Logger,
	})
	s.mux.HandleFunc("POST /runs", s.instrument("post_runs", s.handleSubmit))
	s.mux.HandleFunc("GET /runs/{id}", s.instrument("get_runs_id", s.handleStatus))
	s.mux.HandleFunc("DELETE /runs/{id}", s.instrument("delete_runs_id", s.handleCancel))
	s.mux.HandleFunc("GET /runs/{id}/events", s.instrument("get_runs_id_events", s.handleEvents))
	s.mux.HandleFunc("GET /schemes", s.instrument("get_schemes", s.handleSchemes))
	s.mux.HandleFunc("GET /healthz", s.instrument("get_healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /stats", s.instrument("get_stats", s.handleStats))
	s.mux.HandleFunc("GET /metrics", s.instrument("get_metrics", metrics.Handler(cfg.Metrics, s.start).ServeHTTP))
	s.mux.HandleFunc("GET /debug/traces", s.instrument("get_debug_traces", s.tracer.Handler().ServeHTTP))
	return s, nil
}

// instrument wraps an endpoint handler with the canonical per-endpoint
// latency histogram (http_request_seconds_<route>) and the shared
// response-byte counter. route is a short snake_case endpoint key, not
// the raw mux pattern, so the metric name is computed once here and the
// per-request path does no string building. For the SSE endpoint the
// observed latency is the whole stream's lifetime, by design.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	name := "http_request_seconds_" + metrics.SanitizeName(route)
	return func(w http.ResponseWriter, r *http.Request) {
		cw := countingWriter{ResponseWriter: w}
		t0 := time.Now()
		h(&cw, r)
		//lint:ignore metriccatalog name is documented prefix + SanitizeName, precomputed at route registration
		s.reg.ObserveSince(name, t0)
		s.reg.Add("http_response_bytes_total", cw.bytes)
	}
}

// countingWriter counts body bytes on their way out. It implements
// http.Flusher unconditionally (forwarding when the underlying writer
// supports it) so the SSE handler's flusher assertion still holds
// through the instrumentation layer.
type countingWriter struct {
	http.ResponseWriter
	bytes int64
}

func (c *countingWriter) Write(b []byte) (int, error) {
	n, err := c.ResponseWriter.Write(b)
	c.bytes += int64(n)
	return n, err
}

func (c *countingWriter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Handler returns the service's HTTP entry point.
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts the pool down (see Pool.Close), then waits for any
// in-flight result persistence: once every job is terminal the pending
// saves are short file writes, so a completed run is never lost to a
// shutdown race.
func (s *Server) Close(ctx context.Context) error {
	err := s.pool.Close(ctx)
	s.savers.Wait()
	return err
}

// Submit is the programmatic submission path behind POST /runs:
// fingerprint, coalesce through the cache, enqueue on a miss. cached
// reports whether an existing job (in any live state, or done) was
// reused. On enqueue failure the fresh job is finished as failed so a
// later identical submission retries it.
func (s *Server) Submit(scheme string, opts hadfl.Options) (job *Job, cached bool, err error) {
	fp, err := hadfl.Fingerprint(scheme, opts)
	if err != nil {
		return nil, false, err
	}
	if opts.Parallelism <= 0 {
		// Unset (or nonsense-negative) means the server default;
		// unlike the library (where 0 is GOMAXPROCS), a serve job
		// defaults to sequential because the pool already runs jobs
		// concurrently.
		if s.cfg.RunParallelism > 0 {
			opts.Parallelism = s.cfg.RunParallelism
		} else {
			opts.Parallelism = 1
		}
	}
	job, cached = s.cache.GetOrCreate(fp, func() *Job { return newJob(fp, scheme, opts) })
	if cached {
		return job, true, nil
	}
	if err := s.pool.Enqueue(job); err != nil {
		job.finish(nil, &JobError{
			JobID: fp, Scheme: scheme, Options: opts,
			Path: []string{"submit"}, Err: err,
			Canceled: errors.Is(err, ErrShuttingDown),
		})
		return nil, false, err
	}
	if s.store != nil {
		s.savers.Add(1)
		go func() {
			defer s.savers.Done()
			<-job.Done()
			if res, jerr := job.Result(); jerr == nil && res != nil {
				_ = s.store.Save(job, res)
			}
		}()
	}
	return job, false, nil
}

// handleSchemes lists the registered training schemes; new schemes
// appear here (and become submittable) without any serve-layer change.
func (s *Server) handleSchemes(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"schemes": hadfl.Schemes()})
}

// RunRequest is the POST /runs body.
type RunRequest struct {
	Scheme  string     `json:"scheme"`
	Options RunOptions `json:"options"`
}

// RunOptions mirrors hadfl.Options minus the callback field (progress
// flows through /events instead). Parallelism is a throughput hint
// only — it never changes the run's result and is excluded from the
// cache fingerprint, so requests differing only here coalesce.
type RunOptions struct {
	Powers       []float64       `json:"powers,omitempty"`
	Model        string          `json:"model,omitempty"`
	Full         bool            `json:"full,omitempty"`
	TargetEpochs float64         `json:"targetEpochs,omitempty"`
	NonIIDAlpha  float64         `json:"nonIIDAlpha,omitempty"`
	Seed         int64           `json:"seed,omitempty"`
	FailAt       map[int]float64 `json:"failAt,omitempty"`
	// GroupSize / InterEvery sweep the hadfl-grouped hierarchy (0 =
	// scheme default). They change results, so unlike Parallelism they
	// are part of the fingerprint: distinct knobs, distinct cache keys.
	GroupSize   int `json:"groupSize,omitempty"`
	InterEvery  int `json:"interEvery,omitempty"`
	Parallelism int `json:"parallelism,omitempty"`
}

func (o RunOptions) toOptions() hadfl.Options {
	return hadfl.Options{
		Powers:       o.Powers,
		Model:        o.Model,
		Full:         o.Full,
		TargetEpochs: o.TargetEpochs,
		NonIIDAlpha:  o.NonIIDAlpha,
		Seed:         o.Seed,
		FailAt:       o.FailAt,
		GroupSize:    o.GroupSize,
		InterEvery:   o.InterEvery,
		Parallelism:  o.Parallelism,
	}
}

// runOptionsFrom is toOptions' inverse, shared by everything that
// writes options back out (the result store's sidecar files). The
// round trip through both is pinned field-for-field by a reflection
// guard test, so a new hadfl.Options field that is not threaded
// through here fails at unit-test time instead of silently dropping
// data on persistence.
func runOptionsFrom(o hadfl.Options) RunOptions {
	return RunOptions{
		Powers:       o.Powers,
		Model:        o.Model,
		Full:         o.Full,
		TargetEpochs: o.TargetEpochs,
		NonIIDAlpha:  o.NonIIDAlpha,
		Seed:         o.Seed,
		FailAt:       o.FailAt,
		GroupSize:    o.GroupSize,
		InterEvery:   o.InterEvery,
		Parallelism:  o.Parallelism,
	}
}

// Cache dispositions reported on the JobStatus "cache" field: where
// this response's payload came from, consistently across POST /runs
// and GET /runs/{id}.
//
//   - CacheHit: served from the completed-result cache (a POST whose
//     result already existed, or any GET of a done job).
//   - CacheCoalesced: the submission joined an identical in-flight run
//     instead of starting its own.
//   - CacheMiss: nothing cached — a fresh submission that enqueued, or
//     a GET of a job with no completed result yet (failed and canceled
//     jobs also read as miss: their slot reruns on resubmission).
const (
	CacheHit       = "hit"
	CacheMiss      = "miss"
	CacheCoalesced = "coalesced"
)

// JobStatus is the wire form of a job.
type JobStatus struct {
	ID          string     `json:"id"`
	Scheme      string     `json:"scheme"`
	State       State      `json:"state"`
	Cached      bool       `json:"cached,omitempty"`
	Cache       string     `json:"cache,omitempty"`
	Created     time.Time  `json:"created"`
	Started     *time.Time `json:"started,omitempty"`
	Finished    *time.Time `json:"finished,omitempty"`
	DurationSec float64    `json:"durationSec,omitempty"`
	Error       string     `json:"error,omitempty"`
	Timeout     bool       `json:"timeout,omitempty"`
	Canceled    bool       `json:"canceled,omitempty"`
	// Dispatch carries the failure journey when a dispatched run failed:
	// which dispatcher owned it, every worker attempt with durations,
	// the last streamed round, and whether the local fallback ran — so a
	// POST /runs failure is debuggable from the response alone.
	Dispatch *DispatchStatus `json:"dispatch,omitempty"`
	Result   *RunSummary     `json:"result,omitempty"`
}

// DispatchStatus is the wire form of a dispatch.DispatchError journey.
type DispatchStatus struct {
	Dispatcher    string                  `json:"dispatcher"`
	Attempts      []DispatchAttemptStatus `json:"attempts,omitempty"`
	LastRound     int                     `json:"lastRound"`
	LocalFallback bool                    `json:"localFallback,omitempty"`
}

// DispatchAttemptStatus is one worker attempt of the journey.
type DispatchAttemptStatus struct {
	Worker      int     `json:"worker"`
	Hedge       bool    `json:"hedge,omitempty"`
	DurationSec float64 `json:"durationSec"`
	Error       string  `json:"error,omitempty"`
}

// dispatchStatus extracts the journey from a job error's cause chain;
// nil when the failure did not come from the dispatcher.
func dispatchStatus(jerr *JobError) *DispatchStatus {
	var derr *dispatch.DispatchError
	if jerr == nil || !errors.As(jerr.Err, &derr) {
		return nil
	}
	ds := &DispatchStatus{
		Dispatcher:    derr.Dispatcher,
		LastRound:     derr.LastRound,
		LocalFallback: derr.Fallback,
	}
	for _, a := range derr.Attempts {
		ds.Attempts = append(ds.Attempts, DispatchAttemptStatus{
			Worker:      a.Worker,
			Hedge:       a.Hedge,
			DurationSec: a.Duration.Seconds(),
			Error:       a.Err,
		})
	}
	return ds
}

// RunSummary is the wire form of a hadfl.Result; the full curve rides
// along only when requested (?curve=1).
type RunSummary struct {
	Scheme      string          `json:"scheme"`
	Accuracy    float64         `json:"accuracy"`
	Time        float64         `json:"time"`
	Rounds      int             `json:"rounds"`
	DeviceBytes int64           `json:"deviceBytes"`
	ServerBytes int64           `json:"serverBytes"`
	CurvePoints int             `json:"curvePoints"`
	Curve       []metrics.Point `json:"curve,omitempty"`
}

func (s *Server) status(j *Job, disp string, withCurve bool) JobStatus {
	v := j.snapshot()
	st := JobStatus{
		ID:      j.ID,
		Scheme:  j.Scheme,
		State:   v.state,
		Cached:  disp == CacheHit || disp == CacheCoalesced,
		Cache:   disp,
		Created: j.Created,
	}
	if !v.started.IsZero() {
		started := v.started
		st.Started = &started
		if !v.finished.IsZero() {
			finished := v.finished
			st.Finished = &finished
		}
		st.DurationSec = v.running.Seconds()
	}
	if v.jerr != nil {
		st.Error = v.jerr.Error()
		st.Timeout = v.jerr.IsTimeout()
		st.Canceled = v.jerr.IsCanceled()
		st.Dispatch = dispatchStatus(v.jerr)
	}
	if v.result != nil {
		sum := &RunSummary{
			Scheme:      v.result.Scheme,
			Accuracy:    v.result.Accuracy,
			Time:        v.result.Time,
			Rounds:      v.result.Rounds,
			DeviceBytes: v.result.DeviceBytes,
			ServerBytes: v.result.ServerBytes,
		}
		if v.result.Series != nil {
			sum.CurvePoints = v.result.Series.Len()
			if withCurve {
				sum.Curve = v.result.Series.Points
			}
		}
		st.Result = sum
	}
	return st
}

// statusBytes returns the pre-encoded terminal wire form of j, lazily
// encoding it on first use. ok is false while the job is live (its
// status still changes, so callers fall back to Server.status). The
// disposition a terminal job reports is a function of its state alone —
// done jobs are cache hits everywhere they are served, failed and
// canceled ones misses — so one encoding per curve variant serves every
// endpoint. Concurrent first encodes may both marshal; the bytes are
// identical, so whichever Store lands is fine.
func (s *Server) statusBytes(j *Job, withCurve bool) (data []byte, ok bool) {
	idx := 0
	if withCurve {
		idx = 1
	}
	if b := j.enc[idx].Load(); b != nil {
		return *b, true
	}
	state := j.State()
	if !state.Terminal() {
		return nil, false
	}
	disp := CacheMiss
	if state == StateDone {
		disp = CacheHit
	}
	// A local, not the named return: storing &data would make the
	// return slot escape and put one allocation back on the fast path.
	encoded, err := json.Marshal(s.status(j, disp, withCurve))
	if err != nil {
		return nil, false
	}
	encoded = append(encoded, '\n') // byte-identical to json.Encoder.Encode
	j.enc[idx].Store(&encoded)
	return encoded, true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.limiter.Allow() {
		s.reg.Inc("rate_limited_total")
		httpError(w, http.StatusTooManyRequests, "rate limit exceeded")
		return
	}
	var req RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Scheme == "" {
		req.Scheme = hadfl.SchemeHADFL
	}
	job, cached, err := s.Submit(req.Scheme, req.Options.toOptions())
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShuttingDown):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	default:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !cached {
		writeJSON(w, http.StatusAccepted, s.status(job, CacheMiss, false))
		return
	}
	if job.State() == StateDone {
		if data, ok := s.statusBytes(job, false); ok {
			writeRawJSON(w, http.StatusOK, data)
			return
		}
		writeJSON(w, http.StatusOK, s.status(job, CacheHit, false))
		return
	}
	writeJSON(w, http.StatusOK, s.status(job, CacheCoalesced, false))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.cache.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, ErrUnknownJob.Error())
		return
	}
	withCurve := curveRequested(r.URL.RawQuery)
	if data, ok := s.statusBytes(job, withCurve); ok {
		writeRawJSON(w, http.StatusOK, data)
		return
	}
	disp := CacheMiss
	if job.State() == StateDone {
		disp = CacheHit
	}
	writeJSON(w, http.StatusOK, s.status(job, disp, withCurve))
}

// curveRequested reports whether the raw query string carries curve=1.
// The steady-state poll path hits this on every request, so it scans
// the raw string instead of materializing a url.Values map; the curve
// flag needs no unescaping ("curve=1" is its own escaped form).
func curveRequested(raw string) bool {
	for raw != "" {
		kv := raw
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			kv, raw = raw[:i], raw[i+1:]
		} else {
			raw = ""
		}
		if kv == "curve=1" {
			return true
		}
	}
	return false
}

// handleCancel aborts a job on the client's behalf: a queued job turns
// Canceled immediately, a running one has its context cut and reaches
// Canceled within about one device step; canceling a terminal job is a
// no-op. 202 acknowledges the request, not the completed cancellation —
// poll GET /runs/{id} for the terminal state. Like every terminal
// failure, a canceled job is evicted (and rerun) by the next identical
// submission.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.cache.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, ErrUnknownJob.Error())
		return
	}
	job.Cancel(ErrCanceledByClient)
	s.reg.Inc("cancels_requested_total")
	writeJSON(w, http.StatusAccepted, s.status(job, CacheMiss, false))
}

// handleEvents streams a job's progress as Server-Sent Events: the
// full replay first, then live events until the job finishes or the
// client disconnects. Event names are the Event.Type values ("state",
// "round"); payloads are the Event JSON.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.cache.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, ErrUnknownJob.Error())
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	s.reg.Inc("sse_streams_total")

	replay, live, cancel := job.Subscribe()
	defer cancel()
	for _, e := range replay {
		if err := writeSSE(w, e); err != nil {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-live:
			if !ok {
				return
			}
			if err := writeSSE(w, e); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptimeSec": time.Since(s.start).Seconds(),
		"jobs":      s.cache.Len(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	metrics.SetRuntimeGauges(s.reg, s.start)
	writeJSON(w, http.StatusOK, map[string]any{
		"uptimeSec":  time.Since(s.start).Seconds(),
		"queueDepth": s.pool.QueueDepth(),
		"cacheJobs":  s.cache.Len(),
		"config": map[string]any{
			"workers":       s.pool.cfg.Workers,
			"queueDepth":    s.pool.cfg.QueueDepth,
			"jobTimeoutSec": s.cfg.JobTimeout.Seconds(),
			"ratePerSec":    s.cfg.RatePerSec,
			"burst":         s.cfg.Burst,
		},
		"metrics": s.reg.Snapshot(),
	})
}

func writeSSE(w http.ResponseWriter, e Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
	return err
}

// jsonBuf is a pooled buffer with its encoder pre-bound, so the
// response-encoding path allocates neither on steady state.
type jsonBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonBufPool = sync.Pool{New: func() any {
	jb := &jsonBuf{}
	jb.enc = json.NewEncoder(&jb.buf)
	return jb
}}

// jsonBufMaxRecycle caps the buffer size returned to the pool; the
// occasional huge curve payload should not pin its footprint forever.
const jsonBufMaxRecycle = 1 << 16

// writeJSON encodes v through a pooled buffer (one write syscall, no
// per-request encoder allocation) and sends it with the given code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	jb := jsonBufPool.Get().(*jsonBuf)
	jb.buf.Reset()
	if err := jb.enc.Encode(v); err != nil {
		jsonBufPool.Put(jb)
		httpError(w, http.StatusInternalServerError, "encoding response: "+err.Error())
		return
	}
	writeRawJSON(w, code, jb.buf.Bytes())
	if jb.buf.Cap() <= jsonBufMaxRecycle {
		jsonBufPool.Put(jb)
	}
}

// writeRawJSON sends already-encoded JSON bytes (the pre-encoded
// terminal-status path and writeJSON's buffered output).
func writeRawJSON(w http.ResponseWriter, code int, data []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(code)
	_, _ = w.Write(data)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
