package serve

// Edge-case coverage for the serve pool and cache that the happy-path
// suites skip: submissions racing Server.Close, cache hits racing LRU
// eviction, and rehydration of a result that was executed remotely by
// the dispatch backend.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hadfl"
	"hadfl/internal/p2p"
	"hadfl/internal/serve/dispatch"
)

// TestSubmitDuringServerClose races submissions against an in-flight
// Close: once shutdown has begun every new submission must fail with
// ErrShuttingDown and leave behind a terminal canceled job (so nothing
// dangles un-finished), while the running job still drains cleanly.
func TestSubmitDuringServerClose(t *testing.T) {
	release := make(chan struct{})
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 4, Runner: stubRunner(nil, nil, release)})

	blocker, cached, err := srv.Submit("hadfl", hadfl.Options{Powers: []float64{2, 1}, TargetEpochs: 1, Seed: 1})
	if err != nil || cached {
		t.Fatalf("Submit blocker: cached=%v err=%v", cached, err)
	}
	// Wait until it is actually running so Close has to wait on it.
	deadline := time.Now().Add(5 * time.Second)
	for blocker.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("blocker stuck in %v", blocker.State())
		}
		time.Sleep(time.Millisecond)
	}

	closeErr := make(chan error, 1)
	closeCtx, cancelClose := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelClose()
	go func() { closeErr <- srv.Close(closeCtx) }()

	// Submissions succeed until the pool flips to closing, then must
	// fail fast with ErrShuttingDown.
	var rejected *Job
	for seed := int64(2); ; seed++ {
		if time.Now().After(deadline) {
			t.Fatal("Close never started rejecting submissions")
		}
		_, _, err := srv.Submit("hadfl", hadfl.Options{Powers: []float64{2, 1}, TargetEpochs: 1, Seed: seed})
		if err == nil || errors.Is(err, ErrQueueFull) {
			// Not closing yet (a full queue just means the blocker is
			// still holding the only worker); keep probing.
			time.Sleep(time.Millisecond)
			continue
		}
		if !errors.Is(err, ErrShuttingDown) {
			t.Fatalf("Submit during Close: %v, want ErrShuttingDown", err)
		}
		// The job the failed submission created must be terminal, not a
		// zombie: canceled, with the shutdown as its cause.
		id, ferr := hadfl.Fingerprint("hadfl", hadfl.Options{Powers: []float64{2, 1}, TargetEpochs: 1, Seed: seed})
		if ferr != nil {
			t.Fatal(ferr)
		}
		cj, ok := srv.cache.Get(id)
		if !ok {
			t.Fatal("rejected submission left no job in the cache")
		}
		rejected = cj
		break
	}
	waitTerminal(t, rejected)
	if st := rejected.State(); st != StateCanceled {
		t.Fatalf("rejected job state %v, want %v", st, StateCanceled)
	}
	if _, jerr := rejected.Result(); jerr == nil || !errors.Is(jerr, ErrShuttingDown) {
		t.Fatalf("rejected job error %v, want ErrShuttingDown cause", jerr)
	}

	close(release) // let the running job finish inside the grace period
	if err := <-closeErr; err != nil {
		t.Fatalf("Close: %v", err)
	}
	waitTerminal(t, blocker)
	if blocker.State() != StateDone {
		t.Fatalf("blocker state %v, want done (it finished within grace)", blocker.State())
	}
}

// TestCacheHitRacingEviction hammers a bounded cache from concurrent
// hitters and evictors (run it under -race): a live job must never be
// evicted — every concurrent lookup of it yields the same *Job — and
// terminal jobs may come and go but each GetOrCreate must return a
// usable entry that is either the existing one or the one just made.
func TestCacheHitRacingEviction(t *testing.T) {
	cache := NewBoundedCache(nil, 4)
	live := newJob("live", "hadfl", hadfl.Options{})
	if j, existing := cache.GetOrCreate("live", func() *Job { return live }); existing || j != live {
		t.Fatalf("seeding live job: existing=%v", existing)
	}

	const hammers = 8
	const iters = 500
	var wg sync.WaitGroup
	var mismatches atomic.Int64
	for g := 0; g < hammers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Churn terminal jobs through the bound to force LRU
				// evictions while hitting the live entry.
				id := fmt.Sprintf("done-%d-%d", g, i)
				j, _ := cache.GetOrCreate(id, func() *Job {
					nj := newJob(id, "hadfl", hadfl.Options{})
					nj.finish(&hadfl.Result{Scheme: "hadfl"}, nil)
					return nj
				})
				if j == nil {
					mismatches.Add(1)
					continue
				}
				if got, ok := cache.Get("live"); !ok || got != live {
					mismatches.Add(1)
				}
				if j, existing := cache.GetOrCreate("live", func() *Job {
					return newJob("live", "hadfl", hadfl.Options{})
				}); !existing || j != live {
					mismatches.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := mismatches.Load(); n != 0 {
		t.Fatalf("%d racing lookups lost or replaced the live job", n)
	}
	if cache.Len() > 4+1 {
		t.Fatalf("cache settled at %d entries, want <= bound+live", cache.Len())
	}
}

// TestGroupedKnobsDistinctCacheKeys covers the serve half of the
// grouped-knob satellite: submissions differing only in groupSize or
// interEvery must land on distinct jobs (distinct fingerprints), while
// resubmitting identical knobs coalesces onto the cached one.
func TestGroupedKnobsDistinctCacheKeys(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, Runner: stubRunner(nil, nil, nil)})
	defer srv.Close(context.Background())
	base := hadfl.Options{Powers: []float64{4, 2, 2, 1}, TargetEpochs: 2, Seed: 1}

	ids := make(map[string]string)
	for name, opts := range map[string]hadfl.Options{
		"default": base,
		"group3":  {Powers: base.Powers, TargetEpochs: 2, Seed: 1, GroupSize: 3},
		"inter4":  {Powers: base.Powers, TargetEpochs: 2, Seed: 1, InterEvery: 4},
		"both":    {Powers: base.Powers, TargetEpochs: 2, Seed: 1, GroupSize: 3, InterEvery: 4},
	} {
		j, _, err := srv.Submit("hadfl-grouped", opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for prev, id := range ids {
			if id == j.ID {
				t.Errorf("%s and %s share a cache key", name, prev)
			}
		}
		ids[name] = j.ID
	}
	again, cached, err := srv.Submit("hadfl-grouped", hadfl.Options{Powers: base.Powers, TargetEpochs: 2, Seed: 1, GroupSize: 3})
	if err != nil || !cached || again.ID != ids["group3"] {
		t.Fatalf("identical knobs did not coalesce: cached=%v err=%v", cached, err)
	}
}

// TestResultStoreRehydratesDispatchedResult proves the persistence
// path is executor-agnostic: a run executed remotely (simnet dispatch
// backend as the pool's Runner) persists to the store like a local
// one, and a restarted server serves the identical submission from
// the rehydrated cache — byte-identical final parameters included —
// without touching any runner.
func TestResultStoreRehydratesDispatchedResult(t *testing.T) {
	hub := p2p.NewChanHub()
	worker, err := dispatch.NewWorker(dispatch.WorkerConfig{
		Transport:   hub.Node(1),
		RecvTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	workerCtx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		_ = worker.Serve(workerCtx)
	}()
	disp, err := dispatch.New(dispatch.Config{
		Transport:      hub.Node(0),
		Workers:        []int{1},
		HeartbeatEvery: 20 * time.Millisecond,
		RecvTimeout:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disp.Close()
	readyCtx, cancelReady := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelReady()
	if err := disp.WaitReady(readyCtx, 1); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opts := hadfl.Options{Powers: []float64{2, 1}, TargetEpochs: 2, Seed: 21}
	srv := mustNew(t, Config{Workers: 1, StoreDir: dir, Runner: disp.Run})
	job, cached, err := srv.Submit("hadfl", opts)
	if err != nil || cached {
		t.Fatalf("Submit: cached=%v err=%v", cached, err)
	}
	waitTerminal(t, job)
	res, jerr := job.Result()
	if jerr != nil {
		t.Fatalf("dispatched job failed: %v", jerr)
	}
	waitStored(t, dir, job.ID)
	closeCtx, cancelClose := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelClose()
	if err := srv.Close(closeCtx); err != nil {
		t.Fatal(err)
	}

	// Reboot on the same store with a runner that must never fire.
	srv2 := mustNew(t, Config{Workers: 1, StoreDir: dir, Runner: func(context.Context, string, hadfl.Options, func(hadfl.RoundUpdate)) (*hadfl.Result, error) {
		t.Error("rehydrated submission re-ran")
		return nil, errors.New("must not run")
	}})
	defer srv2.Close(context.Background())
	job2, cached2, err := srv2.Submit("hadfl", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !cached2 || job2.State() != StateDone {
		t.Fatalf("rehydrated submission: cached=%v state=%v", cached2, job2.State())
	}
	res2, jerr2 := job2.Result()
	if jerr2 != nil {
		t.Fatal(jerr2)
	}
	if res2.Accuracy != res.Accuracy || res2.Rounds != res.Rounds || res2.Time != res.Time {
		t.Fatalf("rehydrated summary drifted: %+v vs %+v", res2, res)
	}
	if len(res2.FinalParams) != len(res.FinalParams) {
		t.Fatalf("FinalParams length %d vs %d", len(res2.FinalParams), len(res.FinalParams))
	}
	for i := range res.FinalParams {
		if res2.FinalParams[i] != res.FinalParams[i] {
			t.Fatalf("FinalParams[%d] drifted through dispatch+store: %v vs %v", i, res2.FinalParams[i], res.FinalParams[i])
		}
	}
}
