package metrics

import (
	"math"
	"strings"
	"testing"
)

func curve(pts ...[4]float64) *Series {
	s := &Series{Name: "test"}
	for _, p := range pts {
		s.Add(Point{Epoch: p[0], Time: p[1], Loss: p[2], Accuracy: p[3]})
	}
	return s
}

func TestMaxAccuracy(t *testing.T) {
	s := curve(
		[4]float64{1, 10, 2.0, 0.3},
		[4]float64{2, 20, 1.0, 0.8},
		[4]float64{3, 30, 0.9, 0.8}, // ties keep the first point
		[4]float64{4, 40, 0.8, 0.7},
	)
	best, ok := s.MaxAccuracy()
	if !ok || best.Accuracy != 0.8 || best.Time != 20 {
		t.Fatalf("MaxAccuracy = %+v %v", best, ok)
	}
	empty := &Series{}
	if _, ok := empty.MaxAccuracy(); ok {
		t.Fatal("empty series reported a max")
	}
}

func TestTimeToAccuracy(t *testing.T) {
	s := curve(
		[4]float64{1, 10, 2, 0.3},
		[4]float64{2, 20, 1, 0.6},
		[4]float64{3, 30, 0.5, 0.9},
	)
	if tt, ok := s.TimeToAccuracy(0.5); !ok || tt != 20 {
		t.Fatalf("TimeToAccuracy(0.5) = %v %v", tt, ok)
	}
	if tt, ok := s.TimeToAccuracy(0.95); ok {
		t.Fatalf("unreachable target returned %v", tt)
	}
}

func TestTimeToAccuracyUnsortedInput(t *testing.T) {
	// Points recorded out of time order must still give earliest time.
	s := curve(
		[4]float64{3, 30, 0.5, 0.9},
		[4]float64{1, 10, 2, 0.9},
	)
	if tt, ok := s.TimeToAccuracy(0.9); !ok || tt != 10 {
		t.Fatalf("TimeToAccuracy = %v %v", tt, ok)
	}
}

func TestTimeToMaxAccuracy(t *testing.T) {
	s := curve(
		[4]float64{1, 10, 2, 0.3},
		[4]float64{2, 25, 1, 0.91},
		[4]float64{3, 30, 0.5, 0.6},
	)
	tt, acc, ok := s.TimeToMaxAccuracy()
	if !ok || tt != 25 || math.Abs(acc-0.91) > 1e-12 {
		t.Fatalf("TimeToMaxAccuracy = %v %v %v", tt, acc, ok)
	}
}

func TestFinalLoss(t *testing.T) {
	s := curve([4]float64{1, 1, 2, 0}, [4]float64{2, 2, 0.7, 0})
	if l, ok := s.FinalLoss(); !ok || l != 0.7 {
		t.Fatalf("FinalLoss = %v %v", l, ok)
	}
	if _, ok := (&Series{}).FinalLoss(); ok {
		t.Fatal("empty FinalLoss ok")
	}
}

func TestSpeedup(t *testing.T) {
	fast := curve([4]float64{1, 100, 0, 0.9})
	slow := curve([4]float64{1, 300, 0, 0.9})
	sp, ok := Speedup(fast, slow, 0.9)
	if !ok || math.Abs(sp-3) > 1e-12 {
		t.Fatalf("Speedup = %v %v", sp, ok)
	}
	if _, ok := Speedup(fast, slow, 0.99); ok {
		t.Fatal("speedup on unreachable target succeeded")
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	s := curve([4]float64{1, 10, 2.5, 0.5})
	s.Name = "hadfl"
	if err := WriteCSV(&sb, []*Series{s}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "series,epoch,time,loss,accuracy\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "hadfl,1.0000,10.0000,2.500000,0.5000") {
		t.Fatalf("missing row: %q", out)
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{Header: []string{"scheme", "time"}}
	tbl.AddRow("hadfl", "805.00")
	tbl.AddRow("distributed-training", "2431.38")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines", len(lines))
	}
	// Columns aligned: "time" column starts at the same offset everywhere.
	off := strings.Index(lines[0], "time")
	if off < 0 {
		t.Fatal("header missing")
	}
	if !strings.HasPrefix(lines[1][off:], "805.00") && !strings.Contains(lines[1], "805.00") {
		t.Fatalf("row misaligned: %q", lines[1])
	}
}
