package metrics

import (
	"sync"
	"time"
)

// Registry is a concurrency-safe set of named monotonic counters,
// free-floating gauges and fixed-bucket histograms. The serve layer
// uses one to track queue depth, cache hit rate, per-scheme run counts
// and latency distributions, and exposes a Snapshot at GET /stats (and
// Prometheus text at GET /metrics); any long-lived component can hang
// its operational telemetry here.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*histogram),
	}
}

// Inc adds 1 to the named counter, creating it at zero first.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Add adds delta to the named counter, creating it at zero first.
func (r *Registry) Add(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counter returns the current value of the named counter (0 if never
// touched).
func (r *Registry) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// SetGauge sets the named gauge to v.
func (r *Registry) SetGauge(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// AddGauge adds delta to the named gauge, creating it at zero first.
func (r *Registry) AddGauge(name string, delta float64) {
	r.mu.Lock()
	r.gauges[name] += delta
	r.mu.Unlock()
}

// Gauge returns the current value of the named gauge (0 if never set).
func (r *Registry) Gauge(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Observe records v into the named duration histogram (log-scale
// LatencyBuckets, seconds), creating it on first touch. A name's
// bucket layout is fixed by whichever Observe* call touches it first.
func (r *Registry) Observe(name string, v float64) {
	r.observe(name, LatencyBuckets, v)
}

// ObserveSince records the seconds elapsed since t0 into the named
// duration histogram — the one-liner for the common "time this
// section" pattern.
func (r *Registry) ObserveSince(name string, t0 time.Time) {
	r.Observe(name, time.Since(t0).Seconds())
}

// ObserveBytes records a size observation into the named histogram
// using ByteBuckets (256 B … 16 MiB, log-scale).
func (r *Registry) ObserveBytes(name string, v float64) {
	r.observe(name, ByteBuckets, v)
}

func (r *Registry) observe(name string, bounds []float64, v float64) {
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// Histogram returns the named histogram's snapshot; ok is false if it
// was never observed.
func (r *Registry) Histogram(name string) (HistogramSnapshot, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		return HistogramSnapshot{}, false
	}
	return h.snapshot(), true
}

// Snapshot is a point-in-time copy of a registry's contents.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry. The maps in the result are owned by
// the caller.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}
