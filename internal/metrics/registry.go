package metrics

import "sync"

// Registry is a concurrency-safe set of named monotonic counters and
// free-floating gauges. The serve layer uses one to track queue depth,
// cache hit rate and per-scheme run counts, and exposes a Snapshot at
// GET /stats; any long-lived component can hang its operational
// telemetry here.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
	}
}

// Inc adds 1 to the named counter, creating it at zero first.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Add adds delta to the named counter, creating it at zero first.
func (r *Registry) Add(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counter returns the current value of the named counter (0 if never
// touched).
func (r *Registry) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// SetGauge sets the named gauge to v.
func (r *Registry) SetGauge(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// AddGauge adds delta to the named gauge, creating it at zero first.
func (r *Registry) AddGauge(name string, delta float64) {
	r.mu.Lock()
	r.gauges[name] += delta
	r.mu.Unlock()
}

// Gauge returns the current value of the named gauge (0 if never set).
func (r *Registry) Gauge(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Snapshot is a point-in-time copy of a registry's contents.
type Snapshot struct {
	Counters map[string]int64   `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
}

// Snapshot copies the registry. The maps in the result are owned by
// the caller.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]float64, len(r.gauges)),
	}
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	return s
}
