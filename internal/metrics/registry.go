package metrics

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a concurrency-safe set of named monotonic counters,
// free-floating gauges and fixed-bucket histograms. The serve layer
// uses one to track queue depth, cache hit rate, per-scheme run counts
// and latency distributions, and exposes a Snapshot at GET /stats (and
// Prometheus text at GET /metrics); any long-lived component can hang
// its operational telemetry here.
//
// Internally each metric is an atomic cell reached through a sync.Map,
// so concurrent updates to different metrics never contend and updates
// to the same metric contend only on that metric's cell — every served
// request touches the registry several times, which made a global
// mutex here the serving path's hidden serialization point. The metric
// name set is small and stabilizes immediately (the canonical catalog
// in names.go), which is exactly the read-mostly shape sync.Map is
// built for: after the first touch every operation is a lock-free load
// plus one atomic RMW.
type Registry struct {
	counters sync.Map // name → *atomic.Int64
	gauges   sync.Map // name → *atomic.Uint64 (float64 bits)
	hists    sync.Map // name → *histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) counter(name string) *atomic.Int64 {
	if c, ok := r.counters.Load(name); ok {
		return c.(*atomic.Int64)
	}
	c, _ := r.counters.LoadOrStore(name, new(atomic.Int64))
	return c.(*atomic.Int64)
}

// Inc adds 1 to the named counter, creating it at zero first.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Add adds delta to the named counter, creating it at zero first.
func (r *Registry) Add(name string, delta int64) {
	r.counter(name).Add(delta)
}

// Counter returns the current value of the named counter (0 if never
// touched).
func (r *Registry) Counter(name string) int64 {
	if c, ok := r.counters.Load(name); ok {
		return c.(*atomic.Int64).Load()
	}
	return 0
}

func (r *Registry) gauge(name string) *atomic.Uint64 {
	if g, ok := r.gauges.Load(name); ok {
		return g.(*atomic.Uint64)
	}
	g, _ := r.gauges.LoadOrStore(name, new(atomic.Uint64))
	return g.(*atomic.Uint64)
}

// SetGauge sets the named gauge to v.
func (r *Registry) SetGauge(name string, v float64) {
	r.gauge(name).Store(math.Float64bits(v))
}

// AddGauge adds delta to the named gauge, creating it at zero first.
func (r *Registry) AddGauge(name string, delta float64) {
	g := r.gauge(name)
	for {
		old := g.Load()
		if g.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Gauge returns the current value of the named gauge (0 if never set).
func (r *Registry) Gauge(name string) float64 {
	if g, ok := r.gauges.Load(name); ok {
		return math.Float64frombits(g.(*atomic.Uint64).Load())
	}
	return 0
}

// Observe records v into the named duration histogram (log-scale
// LatencyBuckets, seconds), creating it on first touch. A name's
// bucket layout is fixed by whichever Observe* call touches it first.
func (r *Registry) Observe(name string, v float64) {
	r.observe(name, LatencyBuckets, v)
}

// ObserveSince records the seconds elapsed since t0 into the named
// duration histogram — the one-liner for the common "time this
// section" pattern.
func (r *Registry) ObserveSince(name string, t0 time.Time) {
	r.Observe(name, time.Since(t0).Seconds())
}

// ObserveBytes records a size observation into the named histogram
// using ByteBuckets (256 B … 16 MiB, log-scale).
func (r *Registry) ObserveBytes(name string, v float64) {
	r.observe(name, ByteBuckets, v)
}

func (r *Registry) observe(name string, bounds []float64, v float64) {
	h, ok := r.hists.Load(name)
	if !ok {
		h, _ = r.hists.LoadOrStore(name, newHistogram(bounds))
	}
	h.(*histogram).observe(v)
}

// Histogram returns the named histogram's snapshot; ok is false if it
// was never observed.
func (r *Registry) Histogram(name string) (HistogramSnapshot, bool) {
	h, ok := r.hists.Load(name)
	if !ok {
		return HistogramSnapshot{}, false
	}
	return h.(*histogram).snapshot(), true
}

// Snapshot is a point-in-time copy of a registry's contents.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry. The maps in the result are owned by
// the caller. Each cell is read atomically; cells updated while the
// snapshot walks are individually consistent but not mutually so —
// the usual monitoring-scrape contract.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	r.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = math.Float64frombits(v.(*atomic.Uint64).Load())
		return true
	})
	r.hists.Range(func(k, v any) bool {
		s.Histograms[k.(string)] = v.(*histogram).snapshot()
		return true
	})
	return s
}
