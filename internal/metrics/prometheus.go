package metrics

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text-format exposition (version 0.0.4) for a Snapshot:
// counters and gauges as single samples, histograms as the standard
// _bucket{le=…}/_sum/_count triplet with cumulative bucket counts.
// Names pass through SanitizeName defensively so the output is always
// scrapeable even if a non-conforming name slips into a registry (the
// hygiene test exists to keep that from happening at all).

// WritePrometheus renders s in Prometheus text format. Families are
// emitted in sorted name order so output is stable and diffable.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	writeHeader := func(name, kind string) error {
		if help, ok := Help(name); ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		return err
	}
	for _, name := range sortedKeys(s.Counters) {
		v := s.Counters[name]
		name = SanitizeName(name)
		if err := writeHeader(name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, v); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		v := s.Gauges[name]
		name = SanitizeName(name)
		if err := writeHeader(name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(v)); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		name = SanitizeName(name)
		if err := writeHeader(name, "histogram"); err != nil {
			return err
		}
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SetRuntimeGauges stamps the process runtime gauges (uptime,
// goroutines, heap bytes) onto r. /stats and /metrics handlers call it
// per request so the values are scrape-fresh.
func SetRuntimeGauges(r *Registry, start time.Time) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.SetGauge("process_uptime_seconds", time.Since(start).Seconds())
	r.SetGauge("process_goroutines", float64(runtime.NumGoroutine()))
	r.SetGauge("process_heap_bytes", float64(ms.HeapAlloc))
}

// Handler serves r in Prometheus text format, refreshing the runtime
// gauges first; mount it at GET /metrics. start anchors the uptime
// gauge.
func Handler(r *Registry, start time.Time) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		SetRuntimeGauges(r, start)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var sb strings.Builder
		if err := r.Snapshot().WritePrometheus(&sb); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = io.WriteString(w, sb.String())
	})
}
