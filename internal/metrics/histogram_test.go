package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramObservePlacement(t *testing.T) {
	r := NewRegistry()
	// le semantics: a value equal to a bound lands in that bound's bucket.
	r.Observe("lat", 0.001)
	r.Observe("lat", 0.0009)
	r.Observe("lat", 1e9) // past the last bound: +Inf bucket
	h, ok := r.Histogram("lat")
	if !ok {
		t.Fatal("histogram not registered")
	}
	if h.Count != 3 {
		t.Fatalf("count = %d", h.Count)
	}
	if got := h.Sum; math.Abs(got-(0.001+0.0009+1e9)) > 1e-6 {
		t.Fatalf("sum = %v", got)
	}
	if len(h.Counts) != len(h.Bounds)+1 {
		t.Fatalf("counts %d vs bounds %d", len(h.Counts), len(h.Bounds))
	}
	var idx001 int
	for i, b := range h.Bounds {
		if b == 0.001 {
			idx001 = i
		}
	}
	if h.Counts[idx001] != 2 {
		t.Fatalf("0.001 bucket = %d (both 0.001 and 0.0009 belong there)", h.Counts[idx001])
	}
	if h.Counts[len(h.Counts)-1] != 1 {
		t.Fatalf("+Inf bucket = %d", h.Counts[len(h.Counts)-1])
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	// 100 observations spread evenly through (0.1, 0.25]: the p50
	// estimate interpolates to roughly the middle of that bucket.
	for i := 0; i < 100; i++ {
		r.Observe("lat", 0.1+0.15*float64(i+1)/100)
	}
	h, _ := r.Histogram("lat")
	if h.P50 <= 0.1 || h.P50 > 0.25 {
		t.Fatalf("p50 = %v, want within (0.1, 0.25]", h.P50)
	}
	if h.P95 < h.P50 || h.P99 < h.P95 {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", h.P50, h.P95, h.P99)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	r := NewRegistry()
	r.Observe("lat", 1e9) // only the +Inf bucket is populated
	h, _ := r.Histogram("lat")
	last := h.Bounds[len(h.Bounds)-1]
	if got := h.Quantile(0.99); got != last {
		t.Fatalf("+Inf-bucket quantile = %v, want clamp to %v", got, last)
	}
	if got := h.Quantile(-1); got < 0 {
		t.Fatalf("q<0 = %v", got)
	}
	if got := h.Quantile(2); got != last {
		t.Fatalf("q>1 = %v", got)
	}
}

func TestHistogramByteBuckets(t *testing.T) {
	r := NewRegistry()
	r.ObserveBytes("frame", 512)
	h, _ := r.Histogram("frame")
	if len(h.Bounds) != len(ByteBuckets) {
		t.Fatalf("bounds = %v, want byte layout", h.Bounds)
	}
	if h.Counts[1] != 1 { // 512 ≤ 1024
		t.Fatalf("1KiB bucket = %d", h.Counts[1])
	}
}

func TestObserveSince(t *testing.T) {
	r := NewRegistry()
	r.ObserveSince("lat", time.Now().Add(-10*time.Millisecond))
	h, ok := r.Histogram("lat")
	if !ok || h.Count != 1 {
		t.Fatalf("histogram = %+v ok=%v", h, ok)
	}
	if h.Sum < 0.005 || h.Sum > 5 {
		t.Fatalf("elapsed = %v s, want around 10ms", h.Sum)
	}
}

func TestHistogramSnapshotIsACopy(t *testing.T) {
	r := NewRegistry()
	r.Observe("lat", 0.5)
	s := r.Snapshot()
	s.Histograms["lat"].Counts[0] = 99
	h, _ := r.Histogram("lat")
	for _, c := range h.Counts[:1] {
		if c == 99 {
			t.Fatal("snapshot aliased histogram state")
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Observe("lat", float64(j)*0.0001)
				r.ObserveBytes("bytes", float64(j))
			}
		}()
	}
	wg.Wait()
	if h, _ := r.Histogram("lat"); h.Count != 8000 {
		t.Fatalf("count = %d", h.Count)
	}
}
