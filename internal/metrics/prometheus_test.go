package metrics

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

// parsePrometheus is a minimal exposition-format checker: every
// non-comment line must be `name{labels} value` or `name value` with a
// parseable float, and every # TYPE must precede its family's samples.
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]bool)
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty", ln+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, parts[3])
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value: %q", ln+1, line)
		}
		key, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, val, err)
		}
		family := key
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		family = strings.TrimSuffix(family, "_bucket")
		family = strings.TrimSuffix(family, "_sum")
		family = strings.TrimSuffix(family, "_count")
		if !typed[family] {
			t.Fatalf("line %d: sample %q precedes its # TYPE", ln+1, key)
		}
		samples[key] = v
	}
	return samples
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Add("runs_completed_total", 3)
	r.SetGauge("queue_depth", 2)
	r.Observe("run_duration_seconds", 0.2)
	r.Observe("run_duration_seconds", 0.4)
	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	samples := parsePrometheus(t, text)
	if samples["runs_completed_total"] != 3 {
		t.Fatalf("counter sample = %v", samples["runs_completed_total"])
	}
	if samples["queue_depth"] != 2 {
		t.Fatalf("gauge sample = %v", samples["queue_depth"])
	}
	if samples[`run_duration_seconds_bucket{le="+Inf"}`] != 2 {
		t.Fatalf("+Inf bucket = %v", samples[`run_duration_seconds_bucket{le="+Inf"}`])
	}
	if samples["run_duration_seconds_count"] != 2 {
		t.Fatalf("_count = %v", samples["run_duration_seconds_count"])
	}
	if got := samples["run_duration_seconds_sum"]; got < 0.59 || got > 0.61 {
		t.Fatalf("_sum = %v", got)
	}
	// Buckets must be cumulative: each le bucket >= the previous.
	prev := -1.0
	for _, b := range LatencyBuckets {
		key := fmt.Sprintf("run_duration_seconds_bucket{le=%q}", strconv.FormatFloat(b, 'g', -1, 64))
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if v < prev {
			t.Fatalf("bucket %s = %v not cumulative (prev %v)", key, v, prev)
		}
		prev = v
	}
	// Documented names carry HELP lines.
	if !strings.Contains(text, "# HELP runs_completed_total ") {
		t.Fatal("no HELP line for a documented metric")
	}
}

func TestWritePrometheusSanitizesNames(t *testing.T) {
	r := NewRegistry()
	r.Inc("runs_scheme_decentralized-fedavg") // hyphen would be invalid on the wire
	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "fedavg-") || strings.Contains(out, "-fedavg") {
		t.Fatalf("unsanitized name leaked:\n%s", out)
	}
	if !strings.Contains(out, "runs_scheme_decentralized_fedavg 1") {
		t.Fatalf("sanitized sample missing:\n%s", out)
	}
}

func TestSetRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	SetRuntimeGauges(r, time.Now().Add(-time.Second))
	if up := r.Gauge("process_uptime_seconds"); up < 0.9 {
		t.Fatalf("uptime = %v", up)
	}
	if g := r.Gauge("process_goroutines"); g < 1 {
		t.Fatalf("goroutines = %v", g)
	}
	if hb := r.Gauge("process_heap_bytes"); hb <= 0 {
		t.Fatalf("heap bytes = %v", hb)
	}
}
