package metrics

import (
	"testing"
	"time"
)

// BenchmarkRegistryInc measures counter increments under parallel
// load — the hottest registry call on the serving path (several per
// HTTP request).
func BenchmarkRegistryInc(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Inc("cache_hits_total")
		}
	})
}

// BenchmarkRegistryObserve measures histogram observations under
// parallel load (request-latency histograms observe once per request).
func BenchmarkRegistryObserve(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var i int
		for pb.Next() {
			r.Observe("cache_lookup_seconds", float64(i%1000)*1e-6)
			i++
		}
	})
}

// BenchmarkRegistryMixed interleaves the counter/gauge/histogram calls
// one served request makes, under parallel load.
func BenchmarkRegistryMixed(b *testing.B) {
	r := NewRegistry()
	t0 := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Inc("cache_hits_total")
			r.Add("http_response_bytes_total", 512)
			r.SetGauge("queue_depth", 3)
			r.ObserveSince("cache_lookup_seconds", t0)
		}
	})
}
