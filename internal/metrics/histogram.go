package metrics

import (
	"math"
	"sort"
	"sync/atomic"
)

// Fixed-bucket histograms. Buckets are log-scale (1–2.5–5 decades for
// latencies, powers of four for byte sizes) because the quantities the
// serve stack measures span orders of magnitude: a cache lookup is
// microseconds, a dispatched training run is seconds to minutes, and a
// result frame is kilobytes to megabytes. Observations are O(buckets)
// and allocation-free after the first touch, so the hot seams (queue
// wait, run duration, dispatch round-trips) can observe on every event.

// LatencyBuckets are the default upper bounds, in seconds, for
// duration histograms: log-scale from 10µs to 5 minutes.
var LatencyBuckets = []float64{
	0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 25, 50,
	100, 300,
}

// ByteBuckets are the default upper bounds for size histograms:
// powers of four from 256 B to the 16 MiB dispatch frame cap.
var ByteBuckets = []float64{
	256, 1024, 4096, 16384, 65536,
	262144, 1048576, 4194304, 16777216,
}

// histogram is the internal fixed-bucket accumulator. counts has one
// slot per finite bound plus the +Inf overflow slot. Every field is
// atomic — an observation is one bucket increment, one count increment
// and a CAS-accumulated sum, so concurrent observers never serialize
// on a lock (the registry's request-latency histograms observe on
// every served request).
type histogram struct {
	bounds []float64      // strictly increasing finite upper bounds; immutable
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistogramSnapshot is a histogram's point-in-time copy as exposed on
// /stats: per-bucket counts (not cumulative) against the finite upper
// bounds, plus count/sum and interpolated p50/p95/p99.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"` // finite upper bounds; Counts has one extra +Inf slot
	Counts []int64   `json:"counts"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: counts,
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation within the bucket containing the target rank —
// Prometheus's histogram_quantile estimator. The first bucket
// interpolates from zero; ranks landing in the +Inf bucket report the
// largest finite bound (the histogram cannot see past it). An empty
// histogram reports 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		prev := float64(cum)
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		return lower + (upper-lower)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}
