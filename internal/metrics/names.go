package metrics

import "strings"

// The canonical metric-name catalog. Every name a Registry in this
// repo registers must appear here (or match a documented dynamic
// prefix): the help strings become Prometheus # HELP lines, and the
// hygiene tests fail CI when an undocumented or non-snake_case name
// shows up on /stats — so the metric surface cannot drift silently.
// The contract is also enforced statically: the metriccatalog analyzer
// (internal/lint, `make lint`) resolves every name literal passed to a
// Registry method against this catalog at lint time, and requires
// dynamic names to be built from a documented prefix + SanitizeName.

// canonicalNames maps every static metric name to its help text.
var canonicalNames = map[string]string{
	// serve pool + queue
	"pool_workers":           "configured pool worker count",
	"queue_depth":            "jobs waiting in the pool queue (not running)",
	"queue_rejections_total": "submissions rejected because the queue was full",
	"runs_submitted_total":   "jobs admitted to the pool queue",
	"runs_started_total":     "jobs that began executing",
	"runs_completed_total":   "jobs that finished successfully",
	"runs_failed_total":      "jobs that finished with a non-cancel error",
	"runs_canceled_total":    "jobs canceled before completion",
	"runs_timeout_total":     "jobs that hit their wall-clock limit",
	"jobs_running":           "jobs executing right now",
	"queue_wait_seconds":     "histogram: submission-to-start wait per job",
	"run_duration_seconds":   "histogram: execution time per finished job",
	"run_eval_seconds":       "histogram: evaluation-engine wall seconds per run",
	"eval_batches_total":     "evaluation batches forwarded across completed runs",
	"eval_seconds_total":     "evaluation wall-clock seconds across completed runs",

	// serve cache + store
	"cache_hits_total":          "submissions served from the result cache",
	"cache_misses_total":        "submissions that missed the cache and enqueued",
	"cache_jobs":                "jobs held in the cache (any state)",
	"cache_evictions_total":     "terminal-failure evictions (retry path)",
	"cache_evictions_lru_total": "LRU evictions of terminal jobs past the cap",
	"cache_lookup_seconds":      "histogram: result-cache lookup latency",
	"store_saved_total":         "results persisted to the store directory",
	"store_skipped_total":       "persisted results skipped on rehydration (corrupt or mismatched)",
	"store_errors_total":        "result-store I/O failures",
	"store_rehydrated":          "results rehydrated into the cache at boot",

	// serve HTTP surface
	"rate_limited_total":        "POST /runs rejections by the token bucket",
	"sse_streams_total":         "SSE event-stream connections opened",
	"cancels_requested_total":   "DELETE /runs/{id} cancellations accepted",
	"http_response_bytes_total": "response body bytes written across all HTTP endpoints",

	// process runtime (set at scrape/stats time)
	"process_uptime_seconds": "seconds since the process started",
	"process_goroutines":     "live goroutines",
	"process_heap_bytes":     "heap bytes in use (runtime.MemStats.HeapAlloc)",

	// dispatcher
	"dispatch_workers_configured":    "workers in the dispatcher's configured list",
	"dispatch_workers_live":          "workers currently considered alive",
	"dispatch_workers_lost_total":    "liveness-grace expiries marking a worker down",
	"dispatch_bad_hellos_total":      "undecodable or version-skewed hello acks",
	"dispatch_requests_total":        "run requests shipped to workers",
	"dispatch_remote_total":          "runs completed remotely",
	"dispatch_retries_total":         "transient failures retried on another worker",
	"dispatch_local_fallback_total":  "runs executed locally because no worker was live",
	"dispatch_cancels_total":         "cancel frames sent for aborted runs",
	"dispatch_busy_rejections_total": "capacity rejections received from workers",
	"dispatch_stray_results_total":   "result frames dropped for a foreign instance token",
	"dispatch_stray_errors_total":    "error frames dropped as stray or unattributable",
	"dispatch_rtt_seconds":           "histogram: request-to-terminal-frame round trip per attempt",
	"dispatch_result_frame_bytes":    "histogram: result body size on the wire (reassembled when chunk-streamed)",

	// dispatch wire codecs + chunk streaming
	"dispatch_wire_raw_bytes_total":       "parameter bytes results would have shipped as raw64",
	"dispatch_wire_encoded_bytes_total":   "parameter bytes results actually shipped after codec encoding",
	"dispatch_wire_chunks_total":          "chunk frames received on the dispatch wire",
	"dispatch_wire_chunked_results_total": "terminal frames that arrived as chunk streams",
	"dispatch_wire_lossy_results_total":   "dispatched results whose codec reported an inexact decode",

	// dispatch resilience: circuit breakers, retry backoff, hedging
	"dispatch_breaker_open_total":     "breaker trips: consecutive transient faults (or a failed half-open trial) opened a worker's circuit",
	"dispatch_breaker_halfopen_total": "open breakers moved to half-open by a liveness-proving frame after the cooldown",
	"dispatch_breaker_close_total":    "breakers closed by a successful half-open trial run",
	"dispatch_breaker_open_workers":   "workers whose circuit breaker is currently open",
	"dispatch_retry_backoff_seconds":  "histogram: jittered delay before re-dispatching after a transient worker fault",
	"dispatch_hedges_total":           "hedge legs launched after an attempt outlasted the hedge delay",
	"dispatch_hedge_wins_total":       "hedged runs whose hedge leg produced the winning result",
	"dispatch_hedge_cancels_total":    "losing legs canceled after the other leg finished first",
	"dispatch_reconsider_total":       "retry passes that re-admitted recovered workers a job had already tried",

	// worker
	"worker_capacity":                 "configured concurrent-run budget",
	"worker_running":                  "dispatched runs executing right now",
	"worker_hellos_total":             "dispatcher registrations answered",
	"worker_heartbeats_total":         "liveness probes acked",
	"worker_runs_total":               "dispatched runs started",
	"worker_runs_completed_total":     "dispatched runs finished successfully",
	"worker_runs_failed_total":        "dispatched runs finished with an error",
	"worker_cancels_total":            "cancel frames that aborted a run",
	"worker_busy_rejections_total":    "requests rejected at capacity",
	"worker_unknown_frames_total":     "frames of kinds the worker does not handle",
	"worker_result_send_errors_total": "results that could not be framed or sent",
	"worker_chunked_results_total":    "results shipped as chunk streams (body outgrew one frame)",
	"worker_run_seconds":              "histogram: dispatched run execution time",
}

// canonicalPrefixes documents name families minted at runtime; the
// suffix must itself be snake_case (SanitizeName enforces that at the
// registration site).
var canonicalPrefixes = map[string]string{
	"runs_scheme_":          "jobs started per scheme (suffix: sanitized scheme name)",
	"dispatch_wire_codec_":  "dispatched results decoded per wire codec (suffix: sanitized codec name)",
	"http_request_seconds_": "histogram: request latency per HTTP endpoint (suffix: sanitized method+route)",
}

// Help returns the documented help text for a metric name, resolving
// dynamic prefixes; ok is false for undocumented names.
func Help(name string) (help string, ok bool) {
	if h, ok := canonicalNames[name]; ok {
		return h, true
	}
	for p, h := range canonicalPrefixes {
		if strings.HasPrefix(name, p) && len(name) > len(p) {
			return h, true
		}
	}
	return "", false
}

// IsCanonical reports whether name is part of the documented metric
// surface (exact name or documented prefix).
func IsCanonical(name string) bool {
	_, ok := Help(name)
	return ok
}

// CanonicalNames returns the static catalog (name → help); dynamic
// prefix families are listed by CanonicalPrefixes. The maps are
// copies, owned by the caller.
func CanonicalNames() map[string]string {
	out := make(map[string]string, len(canonicalNames))
	for k, v := range canonicalNames {
		out[k] = v
	}
	return out
}

// CanonicalPrefixes returns the documented dynamic prefixes.
func CanonicalPrefixes() map[string]string {
	out := make(map[string]string, len(canonicalPrefixes))
	for k, v := range canonicalPrefixes {
		out[k] = v
	}
	return out
}

// SanitizeName lowercases s and maps every byte outside [a-z0-9_] to
// '_', yielding a valid snake_case metric-name fragment (scheme names
// like "decentralized-fedavg" become "decentralized_fedavg").
func SanitizeName(s string) string {
	b := []byte(strings.ToLower(s))
	for i, c := range b {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			b[i] = '_'
		}
	}
	return string(b)
}
