// Package metrics records training curves (loss/accuracy against epochs
// and virtual time) and derives the quantities the paper reports: time
// to reach maximum test accuracy (Table I) and speedups between schemes.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Point is one measurement on a training curve. The JSON tags match
// the serve layer's camelCase wire convention (?curve=1 responses).
type Point struct {
	Epoch    float64 `json:"epoch"`    // global epoch count (fractional for async schemes)
	Time     float64 `json:"time"`     // virtual seconds since training start
	Loss     float64 `json:"loss"`     // training loss at this point
	Accuracy float64 `json:"accuracy"` // test accuracy in [0,1]
}

// Series is a named training curve, e.g. "hadfl/resnet/[4,2,2,1]".
type Series struct {
	Name   string
	Points []Point
}

// Add appends a measurement.
func (s *Series) Add(p Point) { s.Points = append(s.Points, p) }

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// MaxAccuracy returns the highest accuracy reached and the first point
// reaching it. ok is false for an empty series.
func (s *Series) MaxAccuracy() (best Point, ok bool) {
	if len(s.Points) == 0 {
		return Point{}, false
	}
	bestAcc := math.Inf(-1)
	for _, p := range s.Points {
		if p.Accuracy > bestAcc {
			bestAcc = p.Accuracy
			best = p
		}
	}
	return best, true
}

// TimeToAccuracy returns the earliest virtual time at which accuracy ≥
// target, scanning in time order. ok is false if never reached.
func (s *Series) TimeToAccuracy(target float64) (t float64, ok bool) {
	pts := append([]Point(nil), s.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Time < pts[j].Time })
	for _, p := range pts {
		if p.Accuracy >= target {
			return p.Time, true
		}
	}
	return 0, false
}

// TimeToMaxAccuracy returns Table I's metric: the (first) time the
// series reaches its own maximum accuracy, and that accuracy.
func (s *Series) TimeToMaxAccuracy() (t, acc float64, ok bool) {
	best, ok := s.MaxAccuracy()
	if !ok {
		return 0, 0, false
	}
	return best.Time, best.Accuracy, true
}

// FinalLoss returns the loss of the last point.
func (s *Series) FinalLoss() (float64, bool) {
	if len(s.Points) == 0 {
		return 0, false
	}
	return s.Points[len(s.Points)-1].Loss, true
}

// Speedup returns how many times faster a reaches accuracy target than
// b (b's time / a's time). ok is false unless both reach the target.
func Speedup(a, b *Series, target float64) (float64, bool) {
	ta, oka := a.TimeToAccuracy(target)
	tb, okb := b.TimeToAccuracy(target)
	if !oka || !okb || ta <= 0 {
		return 0, false
	}
	return tb / ta, true
}

// WriteCSV renders series in long form: name,epoch,time,loss,accuracy.
func WriteCSV(w io.Writer, series []*Series) error {
	if _, err := fmt.Fprintln(w, "series,epoch,time,loss,accuracy"); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%.4f,%.4f,%.6f,%.4f\n",
				s.Name, p.Epoch, p.Time, p.Loss, p.Accuracy); err != nil {
				return err
			}
		}
	}
	return nil
}

// Table formats rows of cells with aligned columns, used by the bench
// harness to print Table I-style output.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with space-aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		for i, c := range cells {
			pad := widths[i] - len(c)
			if _, err := fmt.Fprintf(w, "%s%s  ", c, spaces(pad)); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

func spaces(n int) string {
	if n <= 0 {
		return ""
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = ' '
	}
	return string(b)
}
