package metrics

import (
	"regexp"
	"testing"
)

// snakeCase is the shape every documented metric name must have:
// lowercase snake_case starting with a letter.
var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func TestCanonicalCatalogIsSnakeCase(t *testing.T) {
	for name, help := range CanonicalNames() {
		if !snakeCase.MatchString(name) {
			t.Errorf("catalog name %q is not snake_case", name)
		}
		if help == "" {
			t.Errorf("catalog name %q has no help text", name)
		}
	}
	for prefix, help := range CanonicalPrefixes() {
		if !snakeCase.MatchString(prefix[:len(prefix)-1]) || prefix[len(prefix)-1] != '_' {
			t.Errorf("catalog prefix %q must be snake_case ending in _", prefix)
		}
		if help == "" {
			t.Errorf("catalog prefix %q has no help text", prefix)
		}
	}
}

func TestHelpResolvesPrefixes(t *testing.T) {
	if _, ok := Help("runs_completed_total"); !ok {
		t.Fatal("static name undocumented")
	}
	if _, ok := Help("runs_scheme_hadfl"); !ok {
		t.Fatal("prefixed name undocumented")
	}
	if _, ok := Help("runs_scheme_"); ok {
		t.Fatal("bare prefix must not resolve (empty suffix)")
	}
	if _, ok := Help("made_up_metric"); ok {
		t.Fatal("unknown name resolved")
	}
	if IsCanonical("made_up_metric") {
		t.Fatal("unknown name canonical")
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"decentralized-fedavg": "decentralized_fedavg",
		"Already_fine":         "already_fine",
		"with.dots and spaces": "with_dots_and_spaces",
		"hadfl":                "hadfl",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
