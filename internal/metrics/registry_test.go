package metrics

import (
	"sync"
	"testing"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	if r.Counter("absent") != 0 || r.Gauge("absent") != 0 {
		t.Fatal("untouched names not zero")
	}
	r.Inc("runs")
	r.Add("runs", 4)
	r.SetGauge("depth", 3)
	r.AddGauge("depth", -1)
	if got := r.Counter("runs"); got != 5 {
		t.Fatalf("runs = %d", got)
	}
	if got := r.Gauge("depth"); got != 2 {
		t.Fatalf("depth = %v", got)
	}
}

func TestRegistrySnapshotIsACopy(t *testing.T) {
	r := NewRegistry()
	r.Inc("a")
	r.SetGauge("g", 1.5)
	s := r.Snapshot()
	s.Counters["a"] = 99
	s.Gauges["g"] = 99
	if r.Counter("a") != 1 || r.Gauge("g") != 1.5 {
		t.Fatal("snapshot aliased registry state")
	}
	if len(s.Counters) != 1 || len(s.Gauges) != 1 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Inc("hits")
				r.AddGauge("depth", 1)
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits"); got != 8000 {
		t.Fatalf("hits = %d", got)
	}
	if got := r.Gauge("depth"); got != 8000 {
		t.Fatalf("depth = %v", got)
	}
}
