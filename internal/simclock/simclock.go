// Package simclock is a deterministic discrete-event simulator. All
// experiment "time" in this repository is virtual time advanced by this
// engine, mirroring how the paper injects sleep() to emulate heterogeneous
// compute: per-batch compute costs, link latencies and synchronization
// waits are all scheduled events.
//
// Determinism: events firing at the same instant run in scheduling order
// (FIFO), so a simulation with fixed rng seeds reproduces exactly.
package simclock

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual time in seconds.
type Time float64

// Engine is a discrete-event simulation loop. The zero value is not
// usable; construct with New.
type Engine struct {
	now   Time
	queue eventHeap
	seq   uint64
}

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // heap index, -1 once fired/cancelled
	cancelled bool
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// New returns an empty engine at time 0.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule registers fn to run after delay. A negative delay panics; a
// zero delay runs fn at the current instant, after already-queued events
// for that instant.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v", delay))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt registers fn to run at absolute time t (≥ now).
func (e *Engine) ScheduleAt(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("simclock: schedule at %v before now %v", t, e.now))
	}
	if math.IsNaN(float64(t)) || math.IsInf(float64(t), 0) {
		panic(fmt.Sprintf("simclock: invalid time %v", t))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.index < 0 {
		return
	}
	ev.cancelled = true
	heap.Remove(&e.queue, ev.index)
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It returns false if the queue is empty.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run fires events until the queue is empty. The maxEvents guard converts
// runaway simulations (e.g. a protocol bug that reschedules forever) into
// a panic instead of a hang.
func (e *Engine) Run(maxEvents int) {
	for i := 0; e.Step(); i++ {
		if maxEvents > 0 && i >= maxEvents {
			panic(fmt.Sprintf("simclock: exceeded %d events — runaway simulation?", maxEvents))
		}
	}
}

// RunUntil fires events with timestamps ≤ t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	for e.queue.Len() > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunWhile fires events while cond() holds and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// eventHeap orders events by (time, sequence number).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
