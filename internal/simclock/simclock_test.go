package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order %v", got)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of FIFO order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var got []Time
	e.Schedule(1, func() {
		got = append(got, e.Now())
		e.Schedule(2, func() { got = append(got, e.Now()) })
	})
	e.Run(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("nested times %v", got)
	}
}

func TestZeroDelayRunsAfterQueuedSameInstant(t *testing.T) {
	e := New()
	var got []string
	e.Schedule(0, func() {
		got = append(got, "a")
		e.Schedule(0, func() { got = append(got, "c") })
	})
	e.Schedule(0, func() { got = append(got, "b") })
	e.Run(0)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestScheduleAtPastPanics(t *testing.T) {
	e := New()
	e.Schedule(5, func() {})
	e.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("schedule in the past did not panic")
		}
	}()
	e.ScheduleAt(1, func() {})
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	e.Cancel(ev)
	e.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and cancel-after-fire are no-ops.
	e.Cancel(ev)
	ev2 := e.Schedule(1, func() {})
	e.Run(0)
	e.Cancel(ev2)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var got []int
	var evs []*Event
	for i := 0; i < 10; i++ {
		i := i
		evs = append(evs, e.Schedule(Time(i), func() { got = append(got, i) }))
	}
	e.Cancel(evs[5])
	e.Cancel(evs[2])
	e.Run(0)
	if len(got) != 8 {
		t.Fatalf("fired %d events, want 8: %v", len(got), got)
	}
	for _, v := range got {
		if v == 2 || v == 5 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var got []Time
	for _, d := range []Time{1, 2, 3, 4, 5} {
		d := d
		e.Schedule(d, func() { got = append(got, d) })
	}
	e.RunUntil(3)
	if len(got) != 3 {
		t.Fatalf("fired %d events by t=3", len(got))
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	// RunUntil past the queue advances the clock.
	e.RunUntil(100)
	if e.Now() != 100 || e.Pending() != 0 {
		t.Fatalf("Now=%v Pending=%d", e.Now(), e.Pending())
	}
}

func TestRunWhile(t *testing.T) {
	e := New()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func() { count++ })
	}
	e.RunWhile(func() bool { return count < 4 })
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
}

func TestRunawayGuard(t *testing.T) {
	e := New()
	var loop func()
	loop = func() { e.Schedule(1, loop) }
	e.Schedule(1, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("runaway simulation did not panic")
		}
	}()
	e.Run(1000)
}

// Property: events always fire in non-decreasing time order regardless of
// insertion order.
func TestPropertyMonotonicFiring(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var fired []Time
		n := rng.Intn(50) + 1
		for i := 0; i < n; i++ {
			d := Time(rng.Float64() * 100)
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run(0)
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: a random mix of schedules and cancels fires exactly the
// non-cancelled events.
func TestPropertyCancelExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		fired := map[int]bool{}
		var evs []*Event
		n := rng.Intn(40) + 10
		for i := 0; i < n; i++ {
			i := i
			evs = append(evs, e.Schedule(Time(rng.Float64()*10), func() { fired[i] = true }))
		}
		cancelled := map[int]bool{}
		for i := 0; i < n/3; i++ {
			j := rng.Intn(n)
			e.Cancel(evs[j])
			cancelled[j] = true
		}
		e.Run(0)
		for i := 0; i < n; i++ {
			if cancelled[i] && fired[i] {
				return false
			}
			if !cancelled[i] && !fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
