package coordinator

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"hadfl/internal/strategy"
)

func TestLivenessAvailability(t *testing.T) {
	l := NewLiveness()
	l.Heartbeat(1, 10)
	l.Heartbeat(2, 12)
	l.Heartbeat(3, 2)
	got := l.Available(13, 5)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Available = %v", got)
	}
	if known := l.Known(); len(known) != 3 {
		t.Fatalf("Known = %v", known)
	}
}

func TestLivenessMarkDead(t *testing.T) {
	l := NewLiveness()
	l.Heartbeat(1, 10)
	l.MarkDead(1)
	if got := l.Available(10, 100); len(got) != 0 {
		t.Fatalf("marked-dead device still available: %v", got)
	}
	// A fresh heartbeat revives it.
	l.Heartbeat(1, 11)
	if got := l.Available(11, 100); len(got) != 1 {
		t.Fatalf("heartbeat did not revive: %v", got)
	}
}

func TestLivenessOldHeartbeatIgnored(t *testing.T) {
	l := NewLiveness()
	l.Heartbeat(1, 10)
	l.Heartbeat(1, 5) // out-of-order heartbeat must not regress lastSeen
	if got := l.Available(12, 3); len(got) != 1 {
		t.Fatalf("Available = %v", got)
	}
}

func TestModelStoreSaveGetLatest(t *testing.T) {
	s := NewModelStore(0)
	s.Save(1, []float64{1})
	s.Save(5, []float64{5})
	s.Save(3, []float64{3})
	if p, ok := s.Get(3); !ok || p[0] != 3 {
		t.Fatalf("Get(3) = %v %v", p, ok)
	}
	round, p, ok := s.Latest()
	if !ok || round != 5 || p[0] != 5 {
		t.Fatalf("Latest = %d %v %v", round, p, ok)
	}
	if _, ok := s.Get(99); ok {
		t.Fatal("Get of unknown round succeeded")
	}
}

func TestModelStoreEviction(t *testing.T) {
	s := NewModelStore(2)
	s.Save(1, []float64{1})
	s.Save(2, []float64{2})
	s.Save(3, []float64{3})
	if _, ok := s.Get(1); ok {
		t.Fatal("oldest snapshot not evicted")
	}
	if rounds := s.Rounds(); len(rounds) != 2 || rounds[0] != 2 || rounds[1] != 3 {
		t.Fatalf("Rounds = %v", rounds)
	}
}

func TestModelStoreCopiesData(t *testing.T) {
	s := NewModelStore(0)
	p := []float64{1, 2}
	s.Save(1, p)
	p[0] = 99
	got, _ := s.Get(1)
	if got[0] != 1 {
		t.Fatal("Save must copy")
	}
	got[1] = 99
	again, _ := s.Get(1)
	if again[1] != 2 {
		t.Fatal("Get must copy")
	}
}

func TestModelStorePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	s := NewModelStore(0)
	s.Save(7, []float64{1.5, -2.5, 3.25})
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	round, params, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if round != 7 || len(params) != 3 || params[2] != 3.25 {
		t.Fatalf("round %d params %v", round, params)
	}
	// Corrupt file rejected.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshotFile(path); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestModelStoreWriteEmptyErrors(t *testing.T) {
	s := NewModelStore(0)
	if err := s.WriteFile(filepath.Join(t.TempDir(), "x.bin")); err == nil {
		t.Fatal("persisting empty store must error")
	}
}

func newTestCoordinator() *Coordinator {
	cfg := strategy.Config{Tsync: 1, Np: 2}
	return New(cfg, 0.5, 10, rand.New(rand.NewSource(1)))
}

func TestCoordinatorFullRoundTrip(t *testing.T) {
	c := newTestCoordinator()
	// Profile 4 devices with power ratio [4,2,2,1] (epoch times 1,2,2,4).
	for i, et := range []float64{1, 2, 2, 4} {
		err := c.RegisterProfile(DeviceProfile{
			ID: i, EpochTime: et, StepTime: et / 10, WarmupTime: et, WarmupEpochs: 1,
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	plan, avail, err := c.NextPlan(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(avail) != 4 {
		t.Fatalf("available %v", avail)
	}
	if math.Abs(plan.Hyperperiod-4) > 1e-9 {
		t.Fatalf("Hyperperiod %v", plan.Hyperperiod)
	}
	// Fast device gets 4× the local steps of the slowest.
	if plan.LocalSteps[0] != 4*plan.LocalSteps[3] {
		t.Fatalf("LocalSteps %v", plan.LocalSteps)
	}
	if len(plan.Selected) != 2 {
		t.Fatalf("Selected %v", plan.Selected)
	}
	if c.Round() != 1 {
		t.Fatalf("Round = %d", c.Round())
	}
	// Report versions and re-plan: forecasts update.
	for i := 0; i < 4; i++ {
		c.ReportVersion(i, float64(40/(i+1)), 4)
	}
	f := c.Forecasts([]int{0, 1, 2, 3})
	if len(f) != 4 {
		t.Fatalf("Forecasts %v", f)
	}
	if _, _, err := c.NextPlan(4, 100); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatorShrinksNpToPopulation(t *testing.T) {
	cfg := strategy.Config{Tsync: 1, Np: 3}
	c := New(cfg, 0.5, 1, rand.New(rand.NewSource(2)))
	c.RegisterProfile(DeviceProfile{ID: 0, EpochTime: 1, StepTime: 0.1, WarmupTime: 1, WarmupEpochs: 1}, 0)
	c.RegisterProfile(DeviceProfile{ID: 1, EpochTime: 1, StepTime: 0.1, WarmupTime: 1, WarmupEpochs: 1}, 0)
	plan, _, err := c.NextPlan(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Selected) != 2 {
		t.Fatalf("Np not shrunk: %v", plan.Selected)
	}
}

func TestCoordinatorExcludesStaleDevices(t *testing.T) {
	c := newTestCoordinator()
	c.RegisterProfile(DeviceProfile{ID: 0, EpochTime: 1, StepTime: 0.1, WarmupTime: 1, WarmupEpochs: 1}, 0)
	c.RegisterProfile(DeviceProfile{ID: 1, EpochTime: 1, StepTime: 0.1, WarmupTime: 1, WarmupEpochs: 1}, 0)
	// Device 1 heartbeats recently; device 0 went silent.
	c.Liveness.Heartbeat(1, 50)
	plan, avail, err := c.NextPlan(50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(avail) != 1 || avail[0] != 1 {
		t.Fatalf("avail %v", avail)
	}
	if len(plan.Selected) != 1 || plan.Selected[0] != 1 {
		t.Fatalf("Selected %v", plan.Selected)
	}
}

func TestCoordinatorNoDevicesErrors(t *testing.T) {
	c := newTestCoordinator()
	if _, _, err := c.NextPlan(0, 10); err == nil {
		t.Fatal("plan with no devices must error")
	}
}

func TestCoordinatorRejectsBadProfile(t *testing.T) {
	c := newTestCoordinator()
	if err := c.RegisterProfile(DeviceProfile{ID: 0}, 0); err == nil {
		t.Fatal("zero profile accepted")
	}
}

func TestCoordinatorBackup(t *testing.T) {
	c := newTestCoordinator()
	c.Backup(3, []float64{1, 2, 3})
	round, p, ok := c.Store.Latest()
	if !ok || round != 3 || len(p) != 3 {
		t.Fatalf("backup round %d %v %v", round, p, ok)
	}
}
