// Package coordinator implements HADFL's cloud coordinator (paper
// §III-A): the liveness monitor that tracks device availability, the
// runtime supervisor that collects parameter versions and forecasts the
// next round, the strategy-generator service producing per-round
// training plans, and the model manager that backs up aggregated models.
//
// The coordinator is control-plane only: it never relays model
// parameters between devices (those travel peer-to-peer), which is the
// source of HADFL's central-bandwidth savings.
package coordinator

import (
	"sort"
	"sync"
)

// Liveness tracks device heartbeats and answers "which devices are
// available for this round" (workflow step 1).
type Liveness struct {
	mu       sync.Mutex
	lastSeen map[int]float64
	marked   map[int]bool // devices explicitly marked dead (overrides heartbeats)
}

// NewLiveness returns an empty monitor.
func NewLiveness() *Liveness {
	return &Liveness{
		lastSeen: make(map[int]float64),
		marked:   make(map[int]bool),
	}
}

// Heartbeat records that device id was alive at time t (virtual or wall
// seconds — the monitor is agnostic).
func (l *Liveness) Heartbeat(id int, t float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if t > l.lastSeen[id] || !l.has(id) {
		l.lastSeen[id] = t
	}
	delete(l.marked, id)
}

func (l *Liveness) has(id int) bool {
	_, ok := l.lastSeen[id]
	return ok
}

// MarkDead forces a device unavailable until its next heartbeat (e.g.
// after a ring member was bypassed).
func (l *Liveness) MarkDead(id int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.marked[id] = true
}

// Available returns the sorted ids of devices whose last heartbeat is
// within timeout of now and that are not marked dead.
func (l *Liveness) Available(now, timeout float64) []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []int
	for id, seen := range l.lastSeen {
		if l.marked[id] {
			continue
		}
		if now-seen <= timeout {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Known returns all ids ever seen, sorted.
func (l *Liveness) Known() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]int, 0, len(l.lastSeen))
	for id := range l.lastSeen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
