package coordinator

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"hadfl/internal/predict"
	"hadfl/internal/strategy"
)

// DeviceProfile is what the mutual-negotiation phase (workflow step 3)
// teaches the coordinator about one device.
type DeviceProfile struct {
	ID           int
	EpochTime    float64 // measured seconds per local epoch
	StepTime     float64 // measured seconds per local step
	WarmupTime   float64 // total calculation time T_i over the warm-up
	WarmupEpochs int
}

// Coordinator is the cloud control plane: liveness monitoring, runtime
// version prediction, strategy generation and model backup. It is safe
// for concurrent use (the live TCP deployment calls it from many
// connection goroutines; the simulation calls it single-threaded).
type Coordinator struct {
	Liveness *Liveness
	Store    *ModelStore

	mu       sync.Mutex
	cfg      strategy.Config
	tracker  *predict.Tracker
	profiles map[int]DeviceProfile
	rng      *rand.Rand
	round    int
}

// New creates a coordinator. alpha is the smoothing factor of the
// version predictor (Eq. 7); keep is the number of model snapshots the
// model manager retains.
func New(cfg strategy.Config, alpha float64, keep int, rng *rand.Rand) *Coordinator {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Coordinator{
		Liveness: NewLiveness(),
		Store:    NewModelStore(keep),
		cfg:      cfg,
		tracker:  predict.NewTracker(alpha),
		profiles: make(map[int]DeviceProfile),
		rng:      rng,
	}
}

// Config returns the strategy configuration.
func (c *Coordinator) Config() strategy.Config {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg
}

// RegisterProfile stores a device's warm-up measurements and seeds the
// version predictor with the Eq. 6 expected version. It also counts as a
// heartbeat at time now.
func (c *Coordinator) RegisterProfile(p DeviceProfile, now float64) error {
	if p.EpochTime <= 0 || p.StepTime <= 0 || p.WarmupTime <= 0 || p.WarmupEpochs <= 0 {
		return fmt.Errorf("coordinator: invalid profile %+v", p)
	}
	c.mu.Lock()
	c.profiles[p.ID] = p
	c.mu.Unlock()
	c.Liveness.Heartbeat(p.ID, now)

	// Seeding needs a sync period; use the profile's own epoch time as a
	// provisional hyperperiod (it is refined after the first real plan).
	provisional := float64(c.Config().Tsync) * p.EpochTime
	v := predict.ExpectedVersion(provisional, p.WarmupTime, p.WarmupEpochs)
	c.mu.Lock()
	c.tracker.Seed(p.ID, v)
	c.mu.Unlock()
	return nil
}

// ReportVersion records a device's actual parameter version after a
// synchronization round (workflow step 7) and counts as a heartbeat.
func (c *Coordinator) ReportVersion(id int, version, now float64) {
	c.mu.Lock()
	c.tracker.Observe(id, version)
	c.mu.Unlock()
	c.Liveness.Heartbeat(id, now)
}

// NextPlan generates the training configuration for the next round from
// the devices currently available (heartbeat within timeout of now). It
// implements workflow steps 1 and 4.
func (c *Coordinator) NextPlan(now, timeout float64) (strategy.Plan, []int, error) {
	avail := c.Liveness.Available(now, timeout)
	c.mu.Lock()
	defer c.mu.Unlock()
	var ests []strategy.DeviceEstimate
	for _, id := range avail {
		p, ok := c.profiles[id]
		if !ok {
			continue // never profiled; cannot schedule it
		}
		v, ok := c.tracker.Forecast(id, 1)
		if !ok {
			v = 0
		}
		ests = append(ests, strategy.DeviceEstimate{
			ID: id, EpochTime: p.EpochTime, StepTime: p.StepTime, Version: v,
		})
	}
	if len(ests) == 0 {
		return strategy.Plan{}, nil, fmt.Errorf("coordinator: no available profiled devices")
	}
	cfg := c.cfg
	if cfg.Np > len(ests) {
		cfg.Np = len(ests) // shrink selection to the live population
	}
	plan, err := strategy.Generate(c.rng, cfg, ests)
	if err != nil {
		return strategy.Plan{}, nil, err
	}
	c.round++
	ids := make([]int, len(ests))
	for i, e := range ests {
		ids[i] = e.ID
	}
	sort.Ints(ids)
	return plan, ids, nil
}

// Round returns how many plans have been generated.
func (c *Coordinator) Round() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.round
}

// Backup stores an aggregated model snapshot (workflow step 9).
func (c *Coordinator) Backup(round int, params []float64) {
	c.Store.Save(round, params)
}

// Forecasts exposes the tracker's next-round forecasts for testing and
// diagnostics.
func (c *Coordinator) Forecasts(ids []int) map[int]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tracker.ForecastAll(ids)
}
