package coordinator

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
)

// ModelStore is the model manager's backup database (workflow step 9):
// it retains up to Keep recent model snapshots in memory and can persist
// the latest snapshot to disk in a simple binary format.
type ModelStore struct {
	Keep int // snapshots retained; ≤0 means unlimited

	mu    sync.Mutex
	snaps map[int][]float64 // round → parameters (copied)
	order []int             // insertion order of rounds
}

// NewModelStore returns a store retaining keep snapshots.
func NewModelStore(keep int) *ModelStore {
	return &ModelStore{Keep: keep, snaps: make(map[int][]float64)}
}

// Save records a snapshot of params for the given round. The vector is
// copied; callers may reuse their buffer.
func (s *ModelStore) Save(round int, params []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.snaps[round]; !exists {
		s.order = append(s.order, round)
	}
	s.snaps[round] = append([]float64(nil), params...)
	if s.Keep > 0 {
		for len(s.order) > s.Keep {
			oldest := s.order[0]
			s.order = s.order[1:]
			delete(s.snaps, oldest)
		}
	}
}

// Get returns the snapshot for a round, if present.
func (s *ModelStore) Get(round int) ([]float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.snaps[round]
	if !ok {
		return nil, false
	}
	return append([]float64(nil), p...), true
}

// Latest returns the snapshot with the highest round number.
func (s *ModelStore) Latest() (round int, params []float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.snaps) == 0 {
		return 0, nil, false
	}
	best := math.MinInt32
	for r := range s.snaps {
		if r > best {
			best = r
		}
	}
	return best, append([]float64(nil), s.snaps[best]...), true
}

// Rounds returns the retained round numbers in ascending order.
func (s *ModelStore) Rounds() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]int(nil), s.order...)
	sort.Ints(out)
	return out
}

const storeMagic = uint32(0x48414446) // "HADF"

// WriteFile persists the latest snapshot to path.
func (s *ModelStore) WriteFile(path string) error {
	round, params, ok := s.Latest()
	if !ok {
		return fmt.Errorf("coordinator: no snapshot to persist")
	}
	buf := make([]byte, 4+4+4+8*len(params))
	binary.LittleEndian.PutUint32(buf[0:], storeMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(int32(round)))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(params)))
	off := 12
	for _, v := range params {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	return os.WriteFile(path, buf, 0o644)
}

// ReadSnapshotFile loads a snapshot previously written by WriteFile.
func ReadSnapshotFile(path string) (round int, params []float64, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	if len(buf) < 12 || binary.LittleEndian.Uint32(buf[0:]) != storeMagic {
		return 0, nil, fmt.Errorf("coordinator: %s is not a model snapshot", path)
	}
	round = int(int32(binary.LittleEndian.Uint32(buf[4:])))
	n := int(binary.LittleEndian.Uint32(buf[8:]))
	if len(buf) != 12+8*n {
		return 0, nil, fmt.Errorf("coordinator: snapshot %s truncated", path)
	}
	params = make([]float64, n)
	off := 12
	for i := range params {
		params[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return round, params, nil
}
