package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hadfl/internal/tensor"
)

func TestParametersRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, 5, []int{7}, 3)
	flat := m.Parameters()
	if len(flat) != m.NumParams() {
		t.Fatalf("Parameters len %d, NumParams %d", len(flat), m.NumParams())
	}
	want := 5*7 + 7 + 7*3 + 3
	if m.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", m.NumParams(), want)
	}
	// Perturb, reload, verify.
	mod := make([]float64, len(flat))
	for i, v := range flat {
		mod[i] = v + float64(i)
	}
	m.SetParameters(mod)
	got := m.Parameters()
	for i := range got {
		if got[i] != mod[i] {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, got[i], mod[i])
		}
	}
}

func TestSetParametersLengthPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, 3, nil, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("SetParameters with wrong length did not panic")
		}
	}()
	m.SetParameters([]float64{1, 2, 3})
}

func TestTwoModelsSameParamsSameOutput(t *testing.T) {
	rngA := rand.New(rand.NewSource(3))
	rngB := rand.New(rand.NewSource(99))
	a := NewResMLP(rngA, 6, 8, 2, 4)
	b := NewResMLP(rngB, 6, 8, 2, 4)
	b.SetParameters(a.Parameters())
	x := tensor.RandNormal(rand.New(rand.NewSource(4)), 0, 1, 5, 6)
	ya := a.Forward(x, false)
	yb := b.Forward(x, false)
	if !ya.Equal(yb, 1e-12) {
		t.Fatal("identical parameters must give identical outputs")
	}
}

func TestPredictAndAccuracy(t *testing.T) {
	// Hand-built model: identity-ish dense that makes class = argmax(x).
	m := NewModel("ident", &Dense{
		W:  tensor.FromSlice([]float64{1, 0, 0, 1}, 2, 2),
		B:  tensor.New(2),
		dW: tensor.New(2, 2),
		dB: tensor.New(2),
	})
	x := tensor.FromSlice([]float64{5, 1, 0, 3, 2, 2.5}, 3, 2)
	pred := m.Predict(x)
	want := []int{0, 1, 1}
	for i := range want {
		if pred[i] != want[i] {
			t.Fatalf("Predict = %v, want %v", pred, want)
		}
	}
	if acc := m.Accuracy(x, []int{0, 1, 0}); math.Abs(acc-2.0/3.0) > 1e-12 {
		t.Fatalf("Accuracy = %v", acc)
	}
}

func TestGradientVectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, 4, []int{5}, 3)
	x := tensor.RandNormal(rng, 0, 1, 2, 4)
	_, g := SoftmaxCrossEntropy(m.Forward(x, true), []int{0, 1})
	m.Backward(g)
	vec := m.GradientVector()
	if len(vec) != m.NumParams() {
		t.Fatalf("GradientVector len %d", len(vec))
	}
	scaled := make([]float64, len(vec))
	for i, v := range vec {
		scaled[i] = 2 * v
	}
	m.SetGradientVector(scaled)
	got := m.GradientVector()
	for i := range got {
		if math.Abs(got[i]-scaled[i]) > 1e-15 {
			t.Fatal("SetGradientVector round trip failed")
		}
	}
}

func TestZeroGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP(rng, 4, []int{5}, 3)
	x := tensor.RandNormal(rng, 0, 1, 2, 4)
	_, g := SoftmaxCrossEntropy(m.Forward(x, true), []int{0, 1})
	m.Backward(g)
	m.ZeroGrads()
	for _, v := range m.GradientVector() {
		if v != 0 {
			t.Fatal("ZeroGrads left a nonzero gradient")
		}
	}
}

// Property: gradient accumulates additively — two backward passes double
// the gradient of one.
func TestPropertyGradAccumulation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMLP(rng, 3, []int{4}, 2)
		x := tensor.RandNormal(rng, 0, 1, 2, 3)
		labels := []int{0, 1}
		m.ZeroGrads()
		logits := m.Forward(x, true)
		_, g := SoftmaxCrossEntropy(logits, labels)
		m.Backward(g)
		once := m.GradientVector()
		logits = m.Forward(x, true)
		_, g = SoftmaxCrossEntropy(logits, labels)
		m.Backward(g)
		twice := m.GradientVector()
		for i := range once {
			if math.Abs(twice[i]-2*once[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	logits := tensor.RandNormal(rng, 0, 5, 6, 10)
	p := Softmax(logits)
	for i := 0; i < 6; i++ {
		s := 0.0
		for j := 0; j < 10; j++ {
			v := p.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax value out of [0,1]: %v", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("softmax row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits → loss = log(C).
	logits := tensor.New(2, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-9 {
		t.Fatalf("loss = %v, want log 4 = %v", loss, math.Log(4))
	}
	// Gradient rows sum to zero (softmax minus one-hot).
	for i := 0; i < 2; i++ {
		s := 0.0
		for j := 0; j < 4; j++ {
			s += grad.At(i, j)
		}
		if math.Abs(s) > 1e-9 {
			t.Fatalf("grad row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxCrossEntropyLabelRangePanic(t *testing.T) {
	logits := tensor.New(1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range label did not panic")
		}
	}()
	SoftmaxCrossEntropy(logits, []int{3})
}

func TestBatchNormNormalizesTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	bn := NewBatchNorm(3)
	x := tensor.RandNormal(rng, 5, 2, 64, 3)
	y := bn.Forward(x, true)
	// With γ=1, β=0 the per-feature output should be ~N(0,1).
	for f := 0; f < 3; f++ {
		var s, s2 float64
		for i := 0; i < 64; i++ {
			v := y.At(i, f)
			s += v
			s2 += v * v
		}
		mean := s / 64
		variance := s2/64 - mean*mean
		// Variance comes out as σ²/(σ²+ε) ≈ 1 − ε/σ².
		if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-4 {
			t.Fatalf("feature %d: mean=%v var=%v", f, mean, variance)
		}
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bn := NewBatchNorm(2)
	// Train on several batches to populate running stats.
	for i := 0; i < 50; i++ {
		bn.Forward(tensor.RandNormal(rng, 3, 2, 32, 2), true)
	}
	// Inference on a constant input: output should reflect running stats,
	// not the (degenerate) batch stats.
	x := tensor.New(4, 2)
	x.Fill(3)
	y := bn.Forward(x, false)
	for _, v := range y.Data() {
		if math.Abs(v) > 0.5 {
			t.Fatalf("inference output %v, want ≈0 (input at running mean)", v)
		}
	}
}

func TestReLUTrainVsInfer(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float64{-1, 2, -3, 4}, 4)
	y := r.Forward(x, true)
	want := tensor.FromSlice([]float64{0, 2, 0, 4}, 4)
	if !y.Equal(want, 0) {
		t.Fatalf("ReLU = %v", y.Data())
	}
	g := r.Backward(tensor.FromSlice([]float64{10, 10, 10, 10}, 4))
	wantG := tensor.FromSlice([]float64{0, 10, 0, 10}, 4)
	if !g.Equal(wantG, 0) {
		t.Fatalf("ReLU backward = %v", g.Data())
	}
}

func TestModelZooShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cases := []struct {
		name string
		m    *Model
		x    *tensor.Tensor
	}{
		{"mlp", NewMLP(rng, 16, []int{32}, 10), tensor.RandNormal(rng, 0, 1, 3, 16)},
		{"resmlp", NewResMLP(rng, 16, 24, 2, 10), tensor.RandNormal(rng, 0, 1, 3, 16)},
		{"plainmlp", NewPlainMLP(rng, 16, 24, 2, 10), tensor.RandNormal(rng, 0, 1, 3, 16)},
		{"vggtiny", NewVGGTiny(rng, 3, 8, 10), tensor.RandNormal(rng, 0, 1, 3, 3, 8, 8)},
		{"resnettiny", NewResNetTiny(rng, 3, 8, 10), tensor.RandNormal(rng, 0, 1, 3, 3, 8, 8)},
	}
	for _, c := range cases {
		y := c.m.Forward(c.x, false)
		if y.Dims() != 2 || y.Dim(0) != 3 || y.Dim(1) != 10 {
			t.Errorf("%s: output shape %v, want [3 10]", c.name, y.Shape())
		}
		if c.m.NumParams() == 0 {
			t.Errorf("%s: no parameters", c.name)
		}
	}
}

func TestVGGTinySizePanic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	defer func() {
		if recover() == nil {
			t.Fatal("VGGTiny with size not divisible by 4 did not panic")
		}
	}()
	NewVGGTiny(rng, 3, 10, 10)
}
