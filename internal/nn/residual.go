package nn

import (
	"fmt"

	"hadfl/internal/tensor"
)

// Residual wraps a body sub-network with a skip connection:
//
//	y = ReLU(body(x) + shortcut(x))
//
// If Shortcut is nil the skip is the identity, which requires body(x) to
// have the same shape as x. This is the structural element distinguishing
// ResNetTiny from VGGTiny, mirroring ResNet-18 vs VGG-16 in the paper.
type Residual struct {
	Body     []Layer
	Shortcut []Layer // nil means identity

	reluMask []bool
	// Persistent buffers: block output, masked incoming gradient, and
	// the summed input gradient.
	out, gmask, dx *tensor.Tensor
}

// NewResidual builds a residual block with the given body and optional
// projection shortcut.
func NewResidual(body []Layer, shortcut []Layer) *Residual {
	return &Residual{Body: body, Shortcut: shortcut}
}

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := x
	for _, l := range r.Body {
		y = l.Forward(y, train)
	}
	s := x
	for _, l := range r.Shortcut {
		s = l.Forward(s, train)
	}
	if !y.SameShape(s) {
		panic(fmt.Sprintf("nn: Residual body %v vs shortcut %v", y.Shape(), s.Shape()))
	}
	r.out = tensor.Ensure(r.out, y.Shape()...)
	out := r.out
	if train {
		if cap(r.reluMask) < out.Len() {
			r.reluMask = make([]bool, out.Len())
		}
		r.reluMask = r.reluMask[:out.Len()]
	}
	yd, sd, od := y.Data(), s.Data(), out.Data()
	for i, v := range yd {
		v += sd[i]
		if v < 0 {
			od[i] = 0
			if train {
				r.reluMask[i] = false
			}
		} else {
			od[i] = v
			if train {
				r.reluMask[i] = true
			}
		}
	}
	return out
}

// Backward implements Layer.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	r.gmask = tensor.Ensure(r.gmask, grad.Shape()...)
	g := r.gmask
	gd, md := grad.Data(), g.Data()
	for i, v := range gd {
		if r.reluMask[i] {
			md[i] = v
		} else {
			md[i] = 0
		}
	}
	gBody := g
	for i := len(r.Body) - 1; i >= 0; i-- {
		gBody = r.Body[i].Backward(gBody)
	}
	gShort := g
	for i := len(r.Shortcut) - 1; i >= 0; i-- {
		gShort = r.Shortcut[i].Backward(gShort)
	}
	r.dx = tensor.Ensure(r.dx, gBody.Shape()...)
	dd, bd, sd := r.dx.Data(), gBody.Data(), gShort.Data()
	for i := range dd {
		dd[i] = bd[i] + sd[i]
	}
	return r.dx
}

// Params implements Layer.
func (r *Residual) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, l := range r.Body {
		ps = append(ps, l.Params()...)
	}
	for _, l := range r.Shortcut {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Grads implements Layer.
func (r *Residual) Grads() []*tensor.Tensor {
	var gs []*tensor.Tensor
	for _, l := range r.Body {
		gs = append(gs, l.Grads()...)
	}
	for _, l := range r.Shortcut {
		gs = append(gs, l.Grads()...)
	}
	return gs
}
